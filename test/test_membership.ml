(* Tests for the online-membership plane: the epoch fence on the v7
   cluster verbs (a property test — every cross-version Replicate /
   Cache_query is rejected with Stale_ring and never silently applied),
   ring-config adoption (strictly-newer wins, idempotent otherwise),
   replica GC on a replication shrink, and graceful drain under
   concurrent submissions — no warm entry lost, zero kernel re-runs on
   the drained range. *)

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let ok_or_fail = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error: %s" (Dse_error.to_string e)

let temp_socket_path () =
  let path = Filename.temp_file "dse_member" ".sock" in
  Sys.remove path;
  path

(* Replica GC fires a grace delay (1 s) after adoption, so assertions
   on it poll longer than the usual propagation waits. *)
let eventually ?(tries = 400) what f =
  let rec go tries =
    if f () then ()
    else if tries = 0 then Alcotest.failf "timed out waiting for %s" what
    else begin
      Unix.sleepf 0.02;
      go (tries - 1)
    end
  in
  go tries

let server_config ?(workers = 2) ?wal_path ?(peers = []) ?(replication = 2)
    ?(anti_entropy = false) socket =
  { Server.socket_path = socket; tcp = None; node_id = None; workers; max_pending = 16;
    cache_entries = Result_cache.default_capacity; wal_path; hang_timeout = 30.;
    max_job_refs = None; memory_budget = None;
    peers; replication; replication_queue = 256; anti_entropy }

let start_server ?on_job_start config =
  let server =
    match Server.create ?on_job_start ~log:(fun _ -> ()) config with
    | Ok s -> s
    | Error e -> Alcotest.failf "server create: %s" (Dse_error.to_string e)
  in
  let runner = Domain.spawn (fun () -> Server.run server) in
  (server, runner)

let stop_server (server, runner) =
  Server.stop server;
  Domain.join runner

let trace_of_seed seed = Synthetic.zipfian ~seed:(seed + 71) ~span:4096 ~skew:1.1 ~length:1200

let request socket r = ok_or_fail (Client.request ~socket r)

let digest_keys socket =
  match request socket (Protocol.Cache_query { ring_version = 0; keys = [] }) with
  | Protocol.Cache_reply { keys; _ } -> keys
  | _ -> Alcotest.fail "expected Cache_reply"

(* -- the epoch fence, as a property -- *)

(* Whatever version a peer claims — as long as it is non-zero and not
   ours — both fenced verbs must answer Stale_ring carrying exactly the
   two versions, and must not have touched the cache. The receiver sits
   at v1 (a one-peer cluster); the record pushed is real warm state
   fetched from a standalone donor, so a fence bug would actually
   store it. *)
let test_stale_fence_property () =
  let a = temp_socket_path () and b = temp_socket_path () in
  let donor = start_server (server_config a) in
  let receiver = start_server (server_config ~peers:[ a ] b) in
  Fun.protect
    ~finally:(fun () ->
      stop_server donor;
      stop_server receiver;
      List.iter (fun s -> if Sys.file_exists s then Sys.remove s) [ a; b ])
    (fun () ->
      let trace = trace_of_seed 1 in
      ignore (ok_or_fail (Client.submit ~socket:a ~name:"donor" trace));
      let key =
        match digest_keys a with
        | [ key ] -> key
        | keys -> Alcotest.failf "expected one donor key, got %d" (List.length keys)
      in
      let record =
        match request a (Protocol.Cache_query { ring_version = 0; keys = [ key ] }) with
        | Protocol.Cache_reply { records = [ record ]; _ } -> record
        | _ -> Alcotest.fail "expected the donor's record"
      in
      let fenced seen r =
        match request b r with
        | Protocol.Server_error (Dse_error.Stale_ring { seen = s; expected }) ->
          s = seen && expected = 1
        | _ -> false
      in
      QCheck2.Test.check_exn
        (QCheck2.Test.make ~count:40 ~name:"cross-version verbs are fenced"
           QCheck2.Gen.(pair (int_range 2 1_000_000) bool)
           (fun (seen, use_replicate) ->
             let rejected =
               if use_replicate then
                 fenced seen (Protocol.Replicate { ring_version = seen; records = [ record ] })
               else fenced seen (Protocol.Cache_query { ring_version = seen; keys = [ key ] })
             in
             let h = ok_or_fail (Client.health ~socket:b) in
             rejected && h.Protocol.cache_entries = 0 && h.Protocol.replicated_in = 0));
      (* control: the matching epoch (and the unfenced 0) are accepted *)
      (match request b (Protocol.Replicate { ring_version = 1; records = [ record ] }) with
      | Protocol.Replicate_ack { stored } -> check_int "matching epoch stores" 1 stored
      | _ -> Alcotest.fail "expected Replicate_ack");
      (match request b (Protocol.Cache_query { ring_version = 0; keys = [ key ] }) with
      | Protocol.Cache_reply { records; _ } ->
        check_int "unfenced query answered" 1 (List.length records)
      | _ -> Alcotest.fail "expected Cache_reply"))

(* -- adoption rules -- *)

let test_adoption_strictly_newer () =
  let a = temp_socket_path () and b = temp_socket_path () in
  let server = start_server (server_config ~peers:[ b ] a) in
  Fun.protect
    ~finally:(fun () ->
      stop_server server;
      if Sys.file_exists a then Sys.remove a)
    (fun () ->
      let status () =
        match request a Protocol.Ring_status with
        | Protocol.Ring_reply { config; draining; _ } -> (config, draining)
        | _ -> Alcotest.fail "expected Ring_reply"
      in
      let v1, draining = status () in
      check_int "a peered daemon starts versioned" 1 v1.Protocol.ring_version;
      check_bool "not draining" false draining;
      check_int "initial nodes" 2 (List.length v1.Protocol.nodes);
      (* an equal-or-older config changes nothing *)
      let stale = { v1 with Protocol.ring_version = 1; nodes = [ a ] } in
      (match request a (Protocol.Ring_update { config = stale }) with
      | Protocol.Ring_reply { config; _ } ->
        check_int "equal version not adopted" 2 (List.length config.Protocol.nodes)
      | _ -> Alcotest.fail "expected Ring_reply");
      (* a strictly newer one is adopted verbatim *)
      let c = temp_socket_path () in
      let newer =
        { Protocol.ring_version = 5; nodes = [ a; b; c ]; replication = 3 }
      in
      (match request a (Protocol.Ring_update { config = newer }) with
      | Protocol.Ring_reply { config; _ } ->
        check_int "newer version adopted" 5 config.Protocol.ring_version;
        check_int "nodes adopted" 3 (List.length config.Protocol.nodes);
        check_int "replication adopted" 3 config.Protocol.replication
      | _ -> Alcotest.fail "expected Ring_reply");
      (* a malformed config is refused, not adopted *)
      (match
         Client.request ~socket:a
           (Protocol.Ring_update
              { config = { Protocol.ring_version = 9; nodes = [ a; a ]; replication = 1 } })
       with
      | Ok (Protocol.Server_error (Dse_error.Constraint_violation _)) -> ()
      | _ -> Alcotest.fail "expected a constraint violation for duplicate nodes");
      let after, _ = status () in
      check_int "malformed config left the ring alone" 5 after.Protocol.ring_version;
      let h = ok_or_fail (Client.health ~socket:a) in
      check_int "health reports the epoch" 5 h.Protocol.ring_version)

(* -- replica GC on a replication shrink -- *)

let test_replica_gc_on_shrink () =
  let sockets = List.init 2 (fun _ -> temp_socket_path ()) in
  let a, b = (List.nth sockets 0, List.nth sockets 1) in
  let servers =
    List.map
      (fun s ->
        let peers = List.filter (fun p -> p <> s) sockets in
        start_server (server_config ~peers ~replication:2 s))
      sockets
  in
  Fun.protect
    ~finally:(fun () ->
      List.iter stop_server servers;
      List.iter (fun s -> if Sys.file_exists s then Sys.remove s) sockets)
    (fun () ->
      (* with R=2 over two nodes, every result lives on both *)
      let n = 6 in
      List.iter
        (fun i ->
          ignore
            (ok_or_fail
               (Client.submit ~socket:a ~name:(Printf.sprintf "gc%d" i) (trace_of_seed (100 + i)))))
        (List.init n Fun.id);
      eventually "full replication" (fun () ->
          List.length (digest_keys a) = n && List.length (digest_keys b) = n);
      (* shrink to R=1: each node owes only the keys it owns *)
      let shrunk = { Protocol.ring_version = 2; nodes = sockets; replication = 1 } in
      check_bool "both adopt the shrink" true (Admin.push_config shrunk sockets = []);
      let ring = Ring.create sockets in
      let owner key = Ring.route ring key.Result_cache.fingerprint in
      eventually ~tries:600 "replica GC after the grace delay" (fun () ->
          List.length (digest_keys a) + List.length (digest_keys b) = n);
      List.iter
        (fun s ->
          List.iter
            (fun key -> check_bool "each survivor is owned" true (owner key = s))
            (digest_keys s))
        sockets;
      let ha = ok_or_fail (Client.health ~socket:a) in
      let hb = ok_or_fail (Client.health ~socket:b) in
      check_int "every extra copy was GC'd, nothing else" n
        (ha.Protocol.replica_gc_dropped + hb.Protocol.replica_gc_dropped);
      check_int "epochs agree" 2 ha.Protocol.ring_version;
      check_int "epochs agree" 2 hb.Protocol.ring_version)

(* -- graceful drain under concurrent submissions -- *)

let test_drain_under_load () =
  let sockets = List.init 2 (fun _ -> temp_socket_path ()) in
  let a, b = (List.nth sockets 0, List.nth sockets 1) in
  let servers =
    List.map
      (fun s ->
        let peers = List.filter (fun p -> p <> s) sockets in
        start_server (server_config ~peers ~replication:2 s))
      sockets
  in
  Fun.protect
    ~finally:(fun () ->
      List.iter stop_server servers;
      List.iter (fun s -> if Sys.file_exists s then Sys.remove s) sockets)
    (fun () ->
      (* warm the fleet through the node about to leave *)
      let warm = List.init 5 (fun i -> (Printf.sprintf "warm%d" i, trace_of_seed (200 + i))) in
      let expected =
        List.map
          (fun (name, trace) -> (name, Protocol.Table (Analytical_dse.run ~name trace)))
          warm
      in
      List.iter
        (fun (name, trace) -> ignore (ok_or_fail (Client.submit ~socket:a ~name trace)))
        warm;
      eventually "warm replication" (fun () -> List.length (digest_keys b) = 5);
      (* drain A while fresh submissions keep landing on the survivor *)
      let load =
        List.init 3 (fun i ->
            Domain.spawn (fun () ->
                Client.submit ~socket:b ~retries:4 ~name:(Printf.sprintf "live%d" i)
                  (trace_of_seed (300 + i))))
      in
      let config, pushed, failed = ok_or_fail (Admin.drain ~contacts:sockets a) in
      check_bool "drain pushed the warm range" true (pushed >= 5);
      check_bool "no push failures" true (failed = []);
      check_int "post-drain ring excludes the leaver" 1 (List.length config.Protocol.nodes);
      List.iter (fun d -> ignore (ok_or_fail (Domain.join d))) load;
      (* the drained node reports its state while it still runs *)
      let ha = ok_or_fail (Client.health ~socket:a) in
      check_bool "drained node is shedding" true ha.Protocol.draining;
      check_int "drained node adopted the post-drain epoch" config.Protocol.ring_version
        ha.Protocol.ring_version;
      (* no warm entry was lost: every pre-drain answer repeats warm
         from the survivor, bit-identical, with zero kernel re-runs *)
      let jobs () = (ok_or_fail (Client.server_stats ~socket:b)).Protocol.jobs_completed in
      let before = jobs () in
      List.iter
        (fun (name, trace) ->
          let payload = ok_or_fail (Client.submit ~socket:b ~name trace) in
          check_bool "repeat is warm" true payload.Protocol.cache_hit;
          check_bool "repeat is bit-identical" true
            (payload.Protocol.outcome = List.assoc name expected))
        warm;
      check_int "zero kernel re-runs on the drained range" before (jobs ());
      (* replica GC empties the node that left the ring *)
      eventually ~tries:600 "the drained node to GC its cache" (fun () ->
          (ok_or_fail (Client.health ~socket:a)).Protocol.cache_entries = 0))

let suites =
  [
    ( "membership",
      [
        Alcotest.test_case "stale fence property" `Slow test_stale_fence_property;
        Alcotest.test_case "adoption strictly newer" `Quick test_adoption_strictly_newer;
        Alcotest.test_case "replica GC on shrink" `Slow test_replica_gc_on_shrink;
        Alcotest.test_case "drain under load" `Slow test_drain_under_load;
      ] );
  ]
