(* Tests for the streaming fused MRCT->histogram kernel: bit-identical
   to the materialized DFS path, exact against the reference simulator,
   shard-count invariant, and well-behaved on degenerate traces. *)

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let prop ?(count = 120) name gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen f)

let gen_addresses = QCheck2.Gen.(array_size (int_range 1 250) (int_bound 127))

let gen_line_words = QCheck2.Gen.map (fun k -> 1 lsl k) (QCheck2.Gen.int_bound 3)

let materialized_histograms stripped ~max_level =
  Dfs_optimizer.histograms ~addresses:stripped.Strip.uniques (Mrct.build stripped) ~max_level

(* -- equivalence with the materialized path -- *)

let test_streaming_paper () =
  let stripped = Strip.strip (Paper_example.trace ()) in
  let max_level = Strip.address_bits stripped in
  Alcotest.(check bool)
    "histograms identical" true
    (Streaming.histograms stripped ~max_level = materialized_histograms stripped ~max_level);
  let result = Streaming.explore stripped ~max_level ~k:0 in
  Alcotest.(check (list (pair int int)))
    "pairs" [ (1, 5); (2, 3); (4, 2); (8, 2); (16, 1) ]
    (Optimizer.optimal_pairs result)

let prop_streaming_equals_materialized =
  prop "streaming histograms = materialized DFS histograms (random line_words)"
    QCheck2.Gen.(pair gen_addresses gen_line_words)
    (fun (addrs, line_words) ->
      let prepared = Analytical.prepare ~line_words (Trace.of_addresses addrs) in
      let stripped = Analytical.stripped prepared in
      let max_level = Analytical.max_level prepared in
      Streaming.histograms stripped ~max_level = materialized_histograms stripped ~max_level)

let prop_streaming_shard_invariant =
  prop ~count:60 "streaming histograms independent of domain count"
    QCheck2.Gen.(pair gen_addresses (int_range 2 6))
    (fun (addrs, domains) ->
      let stripped = Strip.strip_addresses addrs in
      let max_level = Strip.address_bits stripped in
      Streaming.histograms ~domains stripped ~max_level
      = Streaming.histograms stripped ~max_level)

(* the fallback threshold hides the sharded path from small random
   traces, so exercise the window kernel directly through a trace long
   enough to shard: a loop both wraps shard boundaries and keeps every
   occurrence warm *)
let test_streaming_sharded_long_trace () =
  let body = 37 and iterations = (4 * Streaming.min_shard_refs / 37) + 1 in
  let stripped = Strip.strip (Synthetic.loop ~base:0 ~body ~iterations) in
  let max_level = Strip.address_bits stripped in
  check_bool "trace long enough to shard" true
    (Strip.num_refs stripped >= 4 * Streaming.min_shard_refs);
  let seq = Streaming.histograms stripped ~max_level in
  check_bool "4 shards identical" true (Streaming.histograms ~domains:4 stripped ~max_level = seq);
  check_bool "matches materialized" true (materialized_histograms stripped ~max_level = seq)

(* -- three-way exactness: streaming = DFS = simulator -- *)

let prop_streaming_exact_vs_simulator =
  prop ~count:150 "streaming misses = DFS misses = simulated LRU non-cold misses"
    QCheck2.Gen.(
      quad gen_addresses (map (fun k -> 1 lsl k) (int_bound 5)) (int_range 1 6) gen_line_words)
    (fun (addrs, depth, associativity, line_words) ->
      QCheck2.assume (Array.length addrs > 0);
      let trace = Trace.of_addresses addrs in
      let prepared = Analytical.prepare ~line_words trace in
      let depth = min depth (1 lsl Analytical.max_level prepared) in
      let streaming =
        Analytical.misses ~method_:Analytical.Streaming prepared ~depth ~associativity
      in
      let dfs = Analytical.misses ~method_:Analytical.Dfs prepared ~depth ~associativity in
      let sim =
        (Cache.simulate (Config.make ~line_words ~depth ~associativity ()) trace).Cache.misses
      in
      streaming = dfs && streaming = sim)

let prop_explore_methods_agree =
  prop ~count:80 "explore: streaming = dfs = bcat walk" gen_addresses (fun addrs ->
      QCheck2.assume (Array.length addrs > 0);
      let prepared = Analytical.prepare (Trace.of_addresses addrs) in
      let pairs method_ =
        Optimizer.optimal_pairs (Analytical.explore_prepared ~method_ prepared ~k:7)
      in
      pairs Analytical.Streaming = pairs Analytical.Dfs
      && pairs Analytical.Streaming = pairs Analytical.Bcat_walk)

(* -- edge cases -- *)

let test_streaming_empty_trace () =
  let stripped = Strip.strip (Trace.create ()) in
  let hists = Streaming.histograms stripped ~max_level:3 in
  check_int "levels" 4 (Array.length hists);
  Array.iter (fun h -> Alcotest.(check (array int)) "empty level" [| 0 |] h) hists;
  let sharded = Streaming.histograms ~domains:8 stripped ~max_level:3 in
  check_bool "sharded empty identical" true (hists = sharded)

let test_streaming_single_ref () =
  let stripped = Strip.strip_addresses [| 42 |] in
  let max_level = Strip.address_bits stripped in
  let hists = Streaming.histograms stripped ~max_level in
  Array.iter (fun h -> Alcotest.(check (array int)) "cold only" [| 0 |] h) hists;
  check_int "no non-cold misses" 0 (Streaming.misses stripped ~level:0 ~associativity:1)

let test_streaming_repeated_single_address () =
  (* every occurrence after the first is warm with an empty conflict set:
     no misses at any depth or associativity *)
  let stripped = Strip.strip_addresses (Array.make 1000 5) in
  let hists = Streaming.histograms stripped ~max_level:2 in
  Array.iter (fun h -> Alcotest.(check (array int)) "no conflicts" [| 0 |] h) hists

let test_streaming_rejects_negative_level () =
  Alcotest.check_raises "negative max_level" (Invalid_argument "Streaming: negative max_level")
    (fun () -> ignore (Streaming.histograms (Strip.strip_addresses [| 1 |]) ~max_level:(-1)))

(* -- the analytical facade defaults to the arena method -- *)

let test_facade_default_is_arena () =
  let trace = Paper_example.trace () in
  let prepared = Analytical.prepare trace in
  ignore (Analytical.explore_prepared prepared ~k:0);
  check_bool "boxed strip not forced by default explore" true
    (not (Analytical.stripped_forced prepared));
  check_bool "mrct not forced by default explore" true (not (Analytical.mrct_forced prepared));
  check_int "misses facade" 5 (Analytical.misses prepared ~depth:1 ~associativity:1);
  (* the boxed streaming method forces the strip view but not the MRCT *)
  ignore (Analytical.misses ~method_:Analytical.Streaming prepared ~depth:1 ~associativity:1);
  check_bool "streaming forces only the boxed strip" true
    (Analytical.stripped_forced prepared && not (Analytical.mrct_forced prepared));
  check_bool "mrct forced on demand" true
    (ignore (Analytical.mrct prepared);
     Analytical.mrct_forced prepared)

let prop_domains_facade_invariant =
  prop ~count:50 "explore_prepared invariant in domains" gen_addresses (fun addrs ->
      QCheck2.assume (Array.length addrs > 0);
      let prepared = Analytical.prepare (Trace.of_addresses addrs) in
      let pairs domains =
        Optimizer.optimal_pairs (Analytical.explore_prepared ~domains prepared ~k:3)
      in
      pairs 1 = pairs 4)

let suites =
  [
    ( "streaming:equivalence",
      [
        Alcotest.test_case "paper example" `Quick test_streaming_paper;
        prop_streaming_equals_materialized;
        prop_streaming_shard_invariant;
        Alcotest.test_case "sharded long trace" `Slow test_streaming_sharded_long_trace;
        prop_streaming_exact_vs_simulator;
        prop_explore_methods_agree;
      ] );
    ( "streaming:edges",
      [
        Alcotest.test_case "empty trace" `Quick test_streaming_empty_trace;
        Alcotest.test_case "single reference" `Quick test_streaming_single_ref;
        Alcotest.test_case "repeated single address" `Quick test_streaming_repeated_single_address;
        Alcotest.test_case "negative level rejected" `Quick test_streaming_rejects_negative_level;
        Alcotest.test_case "facade defaults" `Quick test_facade_default_is_arena;
        prop_domains_facade_invariant;
      ] );
  ]
