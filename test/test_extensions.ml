(* Tests for the extensions beyond the paper's core: line-size-aware
   analysis, filter-based trace reduction, the multicore postlude, and
   the synthetic trace generators. *)

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let prop ?(count = 120) name gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen f)

let gen_addresses = QCheck2.Gen.(array_size (int_range 1 250) (int_bound 127))

let gen_pow2 upper = QCheck2.Gen.map (fun k -> 1 lsl k) (QCheck2.Gen.int_bound upper)

(* -- line-size-aware analytical model -- *)

let prop_line_size_exact =
  prop "analytical with line_words = simulated non-cold misses"
    QCheck2.Gen.(quad gen_addresses (gen_pow2 4) (int_range 1 4) (gen_pow2 3))
    (fun (addrs, depth, associativity, line_words) ->
      let trace = Trace.of_addresses addrs in
      let prepared = Analytical.prepare ~line_words trace in
      let depth = min depth (1 lsl Analytical.max_level prepared) in
      let analytical = Analytical.misses prepared ~depth ~associativity in
      let sim =
        Cache.simulate (Config.make ~line_words ~depth ~associativity ()) trace
      in
      analytical = sim.Cache.misses)

let test_line_size_validation () =
  Alcotest.check_raises "line_words"
    (Invalid_argument "Analytical.prepare: line_words must be a positive power of two")
    (fun () -> ignore (Analytical.prepare ~line_words:3 (Trace.of_addresses [| 1 |])))

let test_line_size_folds_uniques () =
  (* words 0..7 fold to 2 lines of 4 words *)
  let trace = Trace.of_addresses [| 0; 1; 2; 3; 4; 5; 6; 7 |] in
  let prepared = Analytical.prepare ~line_words:4 trace in
  check_int "unique lines" 2 (Strip.num_unique (Analytical.stripped prepared))

(* -- trace reduction -- *)

let test_reduce_basic () =
  let trace = Trace.of_addresses [| 0; 0; 0; 1; 1; 0 |] in
  let r = Reduce.filter ~depth:2 trace in
  (* 0 cold, 0 hit, 0 hit, 1 cold, 1 hit, 0 miss(row conflict? 0 and 1 in
     different rows of depth 2, so 0 still cached) -> hits: positions 2,3,5,6 *)
  check_int "kept" 2 (Trace.length r.Reduce.reduced);
  check_int "hits removed" 4 r.Reduce.filter_hits;
  check_bool "ratio" true (abs_float (Reduce.reduction_ratio r -. (2.0 /. 6.0)) < 1e-9)

let test_reduce_validation () =
  Alcotest.check_raises "depth"
    (Invalid_argument "Reduce.filter: depth must be a positive power of two") (fun () ->
      ignore (Reduce.filter ~depth:3 (Trace.create ())))

let prop_reduce_preserves_misses =
  prop "stripped trace preserves misses for caches >= filter depth"
    QCheck2.Gen.(quad gen_addresses (gen_pow2 3) (gen_pow2 2) (int_range 1 4))
    (fun (addrs, filter_depth, extra_depth, associativity) ->
      let trace = Trace.of_addresses addrs in
      let r = Reduce.filter ~depth:filter_depth trace in
      let depth = filter_depth * extra_depth in
      let config = Config.make ~depth ~associativity () in
      let original = Cache.simulate config trace in
      let reduced = Cache.simulate config r.Reduce.reduced in
      original.Cache.misses = reduced.Cache.misses
      && original.Cache.cold_misses = reduced.Cache.cold_misses)

let prop_reduce_preserves_analytical =
  prop "stripped trace preserves the analytical table at depths >= filter"
    QCheck2.Gen.(pair gen_addresses (gen_pow2 3))
    (fun (addrs, filter_depth) ->
      let trace = Trace.of_addresses addrs in
      let r = Reduce.filter ~depth:filter_depth trace in
      let level0 =
        let rec log2 n acc = if n <= 1 then acc else log2 (n lsr 1) (acc + 1) in
        log2 filter_depth 0
      in
      let table trace =
        let prepared = Analytical.prepare trace in
        let result = Analytical.explore_prepared prepared ~k:2 in
        Array.to_list result.Optimizer.levels
        |> List.filter (fun (l : Optimizer.level_result) -> l.Optimizer.level >= level0)
        |> List.map (fun (l : Optimizer.level_result) ->
               (l.Optimizer.level, l.Optimizer.min_associativity, l.Optimizer.misses))
      in
      (* the two traces can have different address_bits; compare on the
         common levels *)
      let a = table trace and b = table r.Reduce.reduced in
      let common = min (List.length a) (List.length b) in
      let take n xs = List.filteri (fun i _ -> i < n) xs in
      take common a = take common b)

let prop_reduce_keeps_uniques =
  prop "reduction keeps every unique address" gen_addresses (fun addrs ->
      let trace = Trace.of_addresses addrs in
      let r = Reduce.filter ~depth:4 trace in
      let uniques t = (Strip.strip t).Strip.uniques |> Array.to_list |> List.sort compare in
      uniques trace = uniques r.Reduce.reduced)

(* -- parallel optimizer -- *)

let prop_parallel_equals_sequential =
  prop ~count:60 "parallel histograms = sequential (1..5 domains)"
    QCheck2.Gen.(pair gen_addresses (int_range 1 5))
    (fun (addrs, domains) ->
      let stripped = Strip.strip_addresses addrs in
      let mrct = Mrct.build stripped in
      let max_level = Strip.address_bits stripped in
      let seq = Dfs_optimizer.histograms ~addresses:stripped.Strip.uniques mrct ~max_level in
      let par =
        Parallel_optimizer.histograms ~domains ~addresses:stripped.Strip.uniques mrct
          ~max_level
      in
      seq = par)

let test_parallel_real_trace () =
  let trace = Workload.data_trace (Registry.find "engine") in
  let prepared = Analytical.prepare trace in
  let addresses = (Analytical.stripped prepared).Strip.uniques in
  let mrct = Analytical.mrct prepared in
  let seq =
    Dfs_optimizer.explore ~addresses mrct ~max_level:(Analytical.max_level prepared) ~k:50
  in
  let par =
    Parallel_optimizer.explore ~domains:4 ~addresses mrct
      ~max_level:(Analytical.max_level prepared) ~k:50
  in
  check_bool "same pairs" true (Optimizer.optimal_pairs seq = Optimizer.optimal_pairs par)

(* the satellite guarantee behind `dse explore --method dfs --domains N`:
   identifier-partitioned histograms match the sequential DFS bit for bit
   on a real PowerStone trace *)
let test_parallel_powerstone_histograms () =
  let trace = Workload.data_trace (Registry.find "compress") in
  let stripped = Strip.strip trace in
  let mrct = Mrct.build stripped in
  let max_level = Strip.address_bits stripped in
  let seq = Dfs_optimizer.histograms ~addresses:stripped.Strip.uniques mrct ~max_level in
  let par =
    Parallel_optimizer.histograms ~domains:4 ~addresses:stripped.Strip.uniques mrct ~max_level
  in
  check_bool "histograms identical" true (seq = par)

let test_parallel_degenerate () =
  let stripped = Strip.strip_addresses [||] in
  let mrct = Mrct.build stripped in
  let h = Parallel_optimizer.histograms ~domains:8 ~addresses:[||] mrct ~max_level:3 in
  check_int "levels" 4 (Array.length h)

(* -- synthetic generators -- *)

let test_synthetic_sequential () =
  let t = Synthetic.sequential ~start:5 ~length:4 in
  Alcotest.(check (array int)) "addresses" [| 5; 6; 7; 8 |] (Trace.addresses t)

let test_synthetic_loop () =
  let t = Synthetic.loop ~base:0 ~body:3 ~iterations:2 in
  Alcotest.(check (array int)) "addresses" [| 0; 1; 2; 0; 1; 2 |] (Trace.addresses t);
  check_bool "fetch kind" true (Trace.equal_kind Trace.Fetch (Trace.kind t 0));
  (* a loop fits: zero non-cold misses once depth >= body *)
  let stats = Cache.simulate (Config.make ~depth:4 ~associativity:1 ()) t in
  check_int "loop fits" 0 stats.Cache.misses

let test_synthetic_strided_conflicts () =
  (* stride 8 with depth 8: every access maps to row 0 *)
  let t = Synthetic.strided ~base:0 ~stride:8 ~count:4 ~iterations:3 in
  let direct = Cache.simulate (Config.make ~depth:8 ~associativity:1 ()) t in
  check_int "all conflict" 8 direct.Cache.misses;
  let assoc = Cache.simulate (Config.make ~depth:8 ~associativity:4 ()) t in
  check_int "4 ways absorb the stride" 0 assoc.Cache.misses

let test_synthetic_hot_cold () =
  let t = Synthetic.hot_cold ~seed:7 ~hot:8 ~cold:1000 ~hot_percent:90 ~length:2000 in
  check_int "length" 2000 (Trace.length t);
  let hot_hits =
    Trace.fold (fun acc (a : Trace.access) -> if a.Trace.addr < 8 then acc + 1 else acc) 0 t
  in
  check_bool "mostly hot" true (hot_hits > 1500)

let test_synthetic_validation () =
  Alcotest.check_raises "length" (Invalid_argument "Synthetic: length must be positive")
    (fun () -> ignore (Synthetic.uniform ~seed:1 ~span:4 ~length:0));
  Alcotest.check_raises "hot_percent"
    (Invalid_argument "Synthetic: hot_percent must be within 0..100") (fun () ->
      ignore (Synthetic.hot_cold ~seed:1 ~hot:1 ~cold:1 ~hot_percent:101 ~length:1))

let test_synthetic_deterministic () =
  let a = Synthetic.uniform ~seed:9 ~span:64 ~length:100 in
  let b = Synthetic.uniform ~seed:9 ~span:64 ~length:100 in
  check_bool "same" true (Trace.addresses a = Trace.addresses b)

let suites =
  [
    ( "extensions:line_size",
      [
        prop_line_size_exact;
        Alcotest.test_case "validation" `Quick test_line_size_validation;
        Alcotest.test_case "folds uniques" `Quick test_line_size_folds_uniques;
      ] );
    ( "extensions:reduce",
      [
        Alcotest.test_case "basic filtering" `Quick test_reduce_basic;
        Alcotest.test_case "validation" `Quick test_reduce_validation;
        prop_reduce_preserves_misses;
        prop_reduce_preserves_analytical;
        prop_reduce_keeps_uniques;
      ] );
    ( "extensions:parallel",
      [
        prop_parallel_equals_sequential;
        Alcotest.test_case "real trace" `Slow test_parallel_real_trace;
        Alcotest.test_case "PowerStone histograms x4" `Slow test_parallel_powerstone_histograms;
        Alcotest.test_case "degenerate inputs" `Quick test_parallel_degenerate;
      ] );
    ( "extensions:synthetic",
      [
        Alcotest.test_case "sequential" `Quick test_synthetic_sequential;
        Alcotest.test_case "loop" `Quick test_synthetic_loop;
        Alcotest.test_case "strided conflicts" `Quick test_synthetic_strided_conflicts;
        Alcotest.test_case "hot/cold mix" `Quick test_synthetic_hot_cold;
        Alcotest.test_case "validation" `Quick test_synthetic_validation;
        Alcotest.test_case "deterministic" `Quick test_synthetic_deterministic;
      ] );
  ]
