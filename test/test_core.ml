(* Tests for the analytical model: zero/one sets (Table 3), BCAT
   (Algorithm 1, Figure 3), MRCT (Algorithm 2, Table 4), the postlude
   optimizer (Algorithm 3) and its DFS variant — including the central
   exactness property against the reference cache simulator. *)

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let sorted_sets sets = List.sort compare sets

let paper_stripped () = Strip.strip (Paper_example.trace ())

(* -- zero/one sets -- *)

let test_zero_one_paper () =
  let zo = Zero_one.build (paper_stripped ()) in
  check_int "bits" 4 (Zero_one.bits zo);
  check_int "N'" 5 (Zero_one.num_unique zo);
  List.iteri
    (fun bit expected ->
      Alcotest.(check (list int))
        (Printf.sprintf "Z_%d" bit) expected
        (Bitset.elements (Zero_one.zero zo bit)))
    Paper_example.zero_sets;
  List.iteri
    (fun bit expected ->
      Alcotest.(check (list int))
        (Printf.sprintf "O_%d" bit) expected
        (Bitset.elements (Zero_one.one zo bit)))
    Paper_example.one_sets;
  Alcotest.(check (list int)) "universe" [ 0; 1; 2; 3; 4 ] (Bitset.elements (Zero_one.universe zo))

let test_zero_one_partition () =
  let zo = Zero_one.build (paper_stripped ()) in
  for bit = 0 to Zero_one.bits zo - 1 do
    let z = Zero_one.zero zo bit and o = Zero_one.one zo bit in
    check_bool "disjoint" true (Bitset.disjoint z o);
    check_bool "cover" true (Bitset.equal (Bitset.union z o) (Zero_one.universe zo))
  done

let test_zero_one_bounds () =
  let zo = Zero_one.build (paper_stripped ()) in
  Alcotest.check_raises "bit out of range" (Invalid_argument "Zero_one: bit 4 out of [0, 4)")
    (fun () -> ignore (Zero_one.zero zo 4))

(* -- BCAT -- *)

let paper_bcat () = Bcat.build (Zero_one.build (paper_stripped ()))

let node_sets bcat level =
  sorted_sets (List.map (fun n -> Array.to_list n.Bcat.ids) (Bcat.nodes_at_level bcat level))

let test_bcat_figure3 () =
  let bcat = paper_bcat () in
  check_int "max level" 4 (Bcat.max_level bcat);
  Alcotest.(check (list (list int)))
    "root" [ [ 0; 1; 2; 3; 4 ] ] (node_sets bcat 0);
  Alcotest.(check (list (list int))) "level 1" (sorted_sets Paper_example.level1) (node_sets bcat 1);
  Alcotest.(check (list (list int))) "level 2" (sorted_sets Paper_example.level2) (node_sets bcat 2);
  Alcotest.(check (list (list int))) "level 3" (sorted_sets Paper_example.level3) (node_sets bcat 3);
  Alcotest.(check (list (list int))) "level 4" (sorted_sets Paper_example.level4) (node_sets bcat 4)

let test_bcat_rows_are_low_bits () =
  let bcat = paper_bcat () in
  let stripped = paper_stripped () in
  for level = 0 to Bcat.max_level bcat do
    List.iter
      (fun node ->
        Array.iter
          (fun id ->
            check_int "row = low bits of address"
              (stripped.Strip.uniques.(id) land ((1 lsl level) - 1))
              node.Bcat.row)
          node.Bcat.ids)
      (Bcat.nodes_at_level bcat level)
  done

let test_bcat_children_partition () =
  let bcat = paper_bcat () in
  let rec walk node =
    match node.Bcat.children with
    | None -> ()
    | Some (z, o) ->
      let combined = List.sort compare (Array.to_list z.Bcat.ids @ Array.to_list o.Bcat.ids) in
      Alcotest.(check (list int)) "children partition parent" (Array.to_list node.Bcat.ids) combined;
      walk z;
      walk o
  in
  walk (Bcat.root bcat)

let test_bcat_max_level_clamped () =
  let bcat = Bcat.build ~max_level:2 (Zero_one.build (paper_stripped ())) in
  check_int "clamped" 2 (Bcat.max_level bcat);
  let bcat = Bcat.build ~max_level:99 (Zero_one.build (paper_stripped ())) in
  check_int "clamped to bits" 4 (Bcat.max_level bcat)

let test_bcat_conflict_sets () =
  let bcat = paper_bcat () in
  Alcotest.(check (list (list int)))
    "level 2 multi-reference rows"
    (sorted_sets [ [ 1; 4 ]; [ 0; 3 ] ])
    (sorted_sets (List.map Array.to_list (Bcat.conflict_sets_at_level bcat 2)));
  check_int "max row population level 0" 5 (Bcat.max_row_population bcat 0);
  check_int "max row population level 1" 3 (Bcat.max_row_population bcat 1);
  check_int "max row population level 4" 1 (Bcat.max_row_population bcat 4)

let test_bcat_singleton_trace () =
  let bcat = Bcat.build (Zero_one.build (Strip.strip (Trace.of_addresses [| 5 |]))) in
  check_int "node count" 1 (Bcat.node_count bcat);
  check_int "root size" 1 (Array.length (Bcat.root bcat).Bcat.ids)

(* -- MRCT -- *)

let test_mrct_paper () =
  let mrct = Mrct.build (paper_stripped ()) in
  List.iter
    (fun (id, expected) ->
      Alcotest.(check (list (list int)))
        (Printf.sprintf "conflicts of %d" id)
        expected
        (List.map
           (fun c -> List.sort compare (Array.to_list c))
           (Array.to_list (Mrct.conflict_sets mrct id))))
    Paper_example.mrct

let test_mrct_totals () =
  let mrct = Mrct.build (paper_stripped ()) in
  check_int "total sets = N - N'" 5 (Mrct.total_sets mrct);
  check_int "volume" (3 + 3 + 4 + 4 + 3) (Mrct.volume mrct)

(* Brute-force MRCT: for each warm occurrence scan the window directly. *)
let mrct_brute (s : Strip.t) =
  let module Iset = Set.Make (Int) in
  let last = Hashtbl.create 16 in
  let out = Array.make (Strip.num_unique s) [] in
  Array.iteri
    (fun j id ->
      (match Hashtbl.find_opt last id with
      | Some p ->
        let window = ref Iset.empty in
        for k = p + 1 to j - 1 do
          if s.Strip.ids.(k) <> id then window := Iset.add s.Strip.ids.(k) !window
        done;
        out.(id) <- Iset.elements !window :: out.(id)
      | None -> ());
      Hashtbl.replace last id j)
    s.Strip.ids;
  Array.map List.rev out

let prop ?(count = 150) name gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen f)

let gen_addresses = QCheck2.Gen.(array_size (int_range 1 250) (int_bound 63))

let prop_mrct_matches_brute_force =
  prop "MRCT = brute-force window scan" gen_addresses (fun addrs ->
      let s = Strip.strip_addresses addrs in
      let mrct = Mrct.build s in
      let brute = mrct_brute s in
      let ok = ref true in
      for id = 0 to Strip.num_unique s - 1 do
        let got =
          List.map
            (fun c -> List.sort compare (Array.to_list c))
            (Array.to_list (Mrct.conflict_sets mrct id))
        in
        if got <> brute.(id) then ok := false
      done;
      !ok)

let prop_mrct_no_self =
  prop "conflict sets never contain the reference" gen_addresses (fun addrs ->
      let mrct = Mrct.build (Strip.strip_addresses addrs) in
      let ok = ref true in
      Mrct.iter (fun u set -> if Array.exists (fun v -> v = u) set then ok := false) mrct;
      !ok)

let prop_mrct_set_count =
  prop "total sets = N - N'" gen_addresses (fun addrs ->
      let s = Strip.strip_addresses addrs in
      Mrct.total_sets (Mrct.build s) = Strip.num_refs s - Strip.num_unique s)

(* -- optimizer: paper example, hand-computed -- *)

let paper_optimizer k =
  let stripped = paper_stripped () in
  Optimizer.explore (paper_bcat ()) (Mrct.build stripped) ~k

let test_optimizer_paper_histograms () =
  let bcat = paper_bcat () in
  let mrct = Mrct.build (paper_stripped ()) in
  (* level 0: conflict cardinalities 3,3,4,4,3 *)
  Alcotest.(check (array int)) "level 0" [| 0; 0; 0; 3; 2 |]
    (Optimizer.histogram_at bcat mrct ~level:0);
  (* level 1: 1,1,2,2,1 *)
  Alcotest.(check (array int)) "level 1" [| 0; 3; 2 |]
    (Optimizer.histogram_at bcat mrct ~level:1);
  (* level 2: 1,1,1,1 *)
  Alcotest.(check (array int)) "level 2" [| 0; 4 |]
    (Optimizer.histogram_at bcat mrct ~level:2)

let test_optimizer_paper_misses () =
  let bcat = paper_bcat () in
  let mrct = Mrct.build (paper_stripped ()) in
  check_int "depth 1, direct" 5 (Optimizer.misses_at bcat mrct ~level:0 ~associativity:1);
  check_int "depth 1, 4-way" 2 (Optimizer.misses_at bcat mrct ~level:0 ~associativity:4);
  check_int "depth 1, 5-way" 0 (Optimizer.misses_at bcat mrct ~level:0 ~associativity:5);
  check_int "depth 2, direct" 5 (Optimizer.misses_at bcat mrct ~level:1 ~associativity:1);
  check_int "depth 2, 2-way" 2 (Optimizer.misses_at bcat mrct ~level:1 ~associativity:2);
  check_int "depth 4, direct" 4 (Optimizer.misses_at bcat mrct ~level:2 ~associativity:1);
  check_int "depth 4, 2-way" 0 (Optimizer.misses_at bcat mrct ~level:2 ~associativity:2);
  (* bit 3 is the first bit separating 0 from 3 and 1 from 4, so depth 8
     still pairs them up: 4 direct-mapped misses remain *)
  check_int "depth 8, direct" 4 (Optimizer.misses_at bcat mrct ~level:3 ~associativity:1);
  check_int "depth 8, 2-way" 0 (Optimizer.misses_at bcat mrct ~level:3 ~associativity:2);
  check_int "depth 16, direct" 0 (Optimizer.misses_at bcat mrct ~level:4 ~associativity:1)

let test_optimizer_zero_budget () =
  let result = paper_optimizer 0 in
  let assoc level = result.Optimizer.levels.(level).Optimizer.min_associativity in
  check_int "K=0 depth 1" 5 (assoc 0);
  check_int "K=0 depth 2" 3 (assoc 1);
  check_int "K=0 depth 4" 2 (assoc 2);
  check_int "K=0 depth 8" 2 (assoc 3);
  check_int "K=0 depth 16" 1 (assoc 4);
  (* the paper: with zero misses, A = max row cardinality *)
  check_int "matches A_zero at level 1" (Bcat.max_row_population (paper_bcat ()) 1) (assoc 1)

let test_optimizer_budget_two () =
  let result = paper_optimizer 2 in
  let level l = result.Optimizer.levels.(l) in
  check_int "K=2 depth 1" 4 (level 0).Optimizer.min_associativity;
  check_int "K=2 depth 1 misses" 2 (level 0).Optimizer.misses;
  check_int "K=2 depth 2" 2 (level 1).Optimizer.min_associativity;
  check_int "K=2 depth 4" 2 (level 2).Optimizer.min_associativity;
  check_int "zero-miss assoc at depth 1" 5 (level 0).Optimizer.zero_miss_associativity

let test_optimizer_rejects_negative_budget () =
  Alcotest.check_raises "negative" (Invalid_argument "Optimizer.explore: negative miss budget")
    (fun () -> ignore (paper_optimizer (-1)))

let test_optimal_pairs () =
  let result = paper_optimizer 0 in
  Alcotest.(check (list (pair int int)))
    "pairs" [ (1, 5); (2, 3); (4, 2); (8, 2); (16, 1) ]
    (Optimizer.optimal_pairs result)

(* -- DFS variant equivalence -- *)

let dfs_result stripped ~k =
  Dfs_optimizer.explore ~addresses:stripped.Strip.uniques (Mrct.build stripped)
    ~max_level:(Strip.address_bits stripped) ~k

let test_dfs_paper () =
  let result = dfs_result (paper_stripped ()) ~k:0 in
  Alcotest.(check (list (pair int int)))
    "pairs" [ (1, 5); (2, 3); (4, 2); (8, 2); (16, 1) ]
    (Optimizer.optimal_pairs result)

let prop_dfs_equals_bcat_walk =
  prop ~count:100 "DFS histograms = BCAT-walk histograms" gen_addresses (fun addrs ->
      let stripped = Strip.strip_addresses addrs in
      let mrct = Mrct.build stripped in
      let zo = Zero_one.build stripped in
      let bcat = Bcat.build zo in
      let max_level = Bcat.max_level bcat in
      let dfs = Dfs_optimizer.histograms ~addresses:stripped.Strip.uniques mrct ~max_level in
      let ok = ref true in
      for level = 0 to max_level do
        if Optimizer.histogram_at bcat mrct ~level <> dfs.(level) then ok := false
      done;
      !ok)

(* -- histogram accounting invariants -- *)

let prop_histogram_accounting =
  prop "level-0 histogram counts the non-empty conflict sets" gen_addresses (fun addrs ->
      let stripped = Strip.strip_addresses addrs in
      let mrct = Mrct.build stripped in
      let hists =
        Dfs_optimizer.histograms ~addresses:stripped.Strip.uniques mrct ~max_level:0
      in
      let recorded = Array.fold_left ( + ) 0 hists.(0) in
      let non_empty = ref 0 in
      Mrct.iter (fun _ set -> if Array.length set > 0 then incr non_empty) mrct;
      recorded = !non_empty)

let prop_level0_misses_formula =
  prop "depth-1 direct-mapped misses = N - N' - consecutive repeats" gen_addresses
    (fun addrs ->
      QCheck2.assume (Array.length addrs > 0);
      let stripped = Strip.strip_addresses addrs in
      let mrct = Mrct.build stripped in
      let hists =
        Dfs_optimizer.histograms ~addresses:stripped.Strip.uniques mrct ~max_level:0
      in
      let misses = Optimizer.misses_of_histogram hists.(0) ~associativity:1 in
      let repeats = ref 0 in
      Array.iteri
        (fun idx a -> if idx > 0 && addrs.(idx - 1) = a then incr repeats)
        addrs;
      misses
      = Strip.num_refs stripped - Strip.num_unique stripped - !repeats)

(* -- the central exactness property -- *)

let analytical_misses addrs ~depth ~associativity =
  let prepared = Analytical.prepare (Trace.of_addresses addrs) in
  Analytical.misses prepared ~depth ~associativity

let simulated_misses addrs ~depth ~associativity =
  (Cache.simulate_addresses (Config.make ~depth ~associativity ()) addrs).Cache.misses

let prop_model_exact_vs_simulator =
  prop ~count:200 "analytical misses = simulated LRU non-cold misses"
    QCheck2.Gen.(triple gen_addresses (map (fun k -> 1 lsl k) (int_bound 5)) (int_range 1 6))
    (fun (addrs, depth, associativity) ->
      QCheck2.assume (Array.length addrs > 0);
      (* clamp depth to the model's address range *)
      let bits = Trace.address_bits (Trace.of_addresses addrs) in
      let depth = min depth (1 lsl bits) in
      analytical_misses addrs ~depth ~associativity
      = simulated_misses addrs ~depth ~associativity)

let prop_model_monotone_in_k =
  prop ~count:100 "required associativity non-increasing in K" gen_addresses (fun addrs ->
      QCheck2.assume (Array.length addrs > 0);
      let prepared = Analytical.prepare (Trace.of_addresses addrs) in
      let explore k = Analytical.explore_prepared prepared ~k in
      let r0 = explore 0 and r5 = explore 5 and r50 = explore 50 in
      Array.for_all2
        (fun (a : Optimizer.level_result) (b : Optimizer.level_result) ->
          b.Optimizer.min_associativity <= a.Optimizer.min_associativity)
        r0.Optimizer.levels r5.Optimizer.levels
      && Array.for_all2
           (fun (a : Optimizer.level_result) (b : Optimizer.level_result) ->
             b.Optimizer.min_associativity <= a.Optimizer.min_associativity)
           r5.Optimizer.levels r50.Optimizer.levels)

let prop_model_monotone_in_depth =
  prop ~count:100 "analytical misses non-increasing in depth (fixed assoc)" gen_addresses
    (fun addrs ->
      QCheck2.assume (Array.length addrs > 0);
      let prepared = Analytical.prepare (Trace.of_addresses addrs) in
      let result = Analytical.explore_prepared prepared ~k:0 in
      let misses level =
        let hist =
          Dfs_optimizer.histograms ~addresses:(Analytical.stripped prepared).Strip.uniques
            (Analytical.mrct prepared) ~max_level:level
        in
        Optimizer.misses_of_histogram hist.(level) ~associativity:2
      in
      let levels = Array.length result.Optimizer.levels in
      let rec check level prev =
        level >= levels
        || (let m = misses level in
            m <= prev && check (level + 1) m)
      in
      check 1 (misses 0))

let test_analytical_facade () =
  let trace = Paper_example.trace () in
  let via_dfs = Analytical.explore trace ~k:0 in
  let via_bcat = Analytical.explore ~method_:Analytical.Bcat_walk trace ~k:0 in
  check_bool "methods agree" true
    (Optimizer.optimal_pairs via_dfs = Optimizer.optimal_pairs via_bcat);
  let prepared = Analytical.prepare trace in
  check_int "misses facade" 5 (Analytical.misses prepared ~depth:1 ~associativity:1);
  check_int "misses facade bcat" 5
    (Analytical.misses ~method_:Analytical.Bcat_walk prepared ~depth:1 ~associativity:1);
  Alcotest.check_raises "bad depth"
    (Invalid_argument "Analytical.misses: depth must be a positive power of two") (fun () ->
      ignore (Analytical.misses prepared ~depth:3 ~associativity:1))

let prop_explore_many_equals_singles =
  prop ~count:80 "explore_many = per-budget explore" gen_addresses (fun addrs ->
      QCheck2.assume (Array.length addrs > 0);
      let prepared = Analytical.prepare (Trace.of_addresses addrs) in
      let ks = [ 0; 3; 17; 100 ] in
      let many = Analytical.explore_many prepared ~ks in
      let singles = List.map (fun k -> Analytical.explore_prepared prepared ~k) ks in
      List.for_all2
        (fun a b -> Optimizer.optimal_pairs a = Optimizer.optimal_pairs b)
        many singles)

let test_empty_trace () =
  let result = Analytical.explore (Trace.create ()) ~k:0 in
  check_bool "all depths direct-mapped" true
    (List.for_all (fun (_, a) -> a = 1) (Optimizer.optimal_pairs result))

let suites =
  [
    ( "core:zero_one",
      [
        Alcotest.test_case "paper Table 3" `Quick test_zero_one_paper;
        Alcotest.test_case "partition per bit" `Quick test_zero_one_partition;
        Alcotest.test_case "bit bounds" `Quick test_zero_one_bounds;
      ] );
    ( "core:bcat",
      [
        Alcotest.test_case "paper Figure 3" `Quick test_bcat_figure3;
        Alcotest.test_case "rows are low address bits" `Quick test_bcat_rows_are_low_bits;
        Alcotest.test_case "children partition parent" `Quick test_bcat_children_partition;
        Alcotest.test_case "max level clamped" `Quick test_bcat_max_level_clamped;
        Alcotest.test_case "conflict sets and populations" `Quick test_bcat_conflict_sets;
        Alcotest.test_case "singleton trace" `Quick test_bcat_singleton_trace;
      ] );
    ( "core:mrct",
      [
        Alcotest.test_case "paper Table 4" `Quick test_mrct_paper;
        Alcotest.test_case "totals" `Quick test_mrct_totals;
        prop_mrct_matches_brute_force;
        prop_mrct_no_self;
        prop_mrct_set_count;
      ] );
    ( "core:optimizer",
      [
        Alcotest.test_case "paper histograms" `Quick test_optimizer_paper_histograms;
        Alcotest.test_case "paper miss counts" `Quick test_optimizer_paper_misses;
        Alcotest.test_case "zero budget" `Quick test_optimizer_zero_budget;
        Alcotest.test_case "budget of two" `Quick test_optimizer_budget_two;
        Alcotest.test_case "negative budget rejected" `Quick test_optimizer_rejects_negative_budget;
        Alcotest.test_case "optimal pairs" `Quick test_optimal_pairs;
        Alcotest.test_case "DFS on paper example" `Quick test_dfs_paper;
        prop_dfs_equals_bcat_walk;
      ] );
    ( "core:exactness",
      [
        prop_histogram_accounting;
        prop_level0_misses_formula;
        prop_model_exact_vs_simulator;
        prop_model_monotone_in_k;
        prop_model_monotone_in_depth;
        Alcotest.test_case "facade" `Quick test_analytical_facade;
        prop_explore_many_equals_singles;
        Alcotest.test_case "empty trace" `Quick test_empty_trace;
      ] );
  ]
