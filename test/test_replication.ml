(* Tests for the warm-state replication plane: the net fault grammar,
   the v6 cluster verbs (Replicate / Cache_query) on the wire, ring
   neighbour enumeration, replicate-on-completion between live daemons,
   the router's peer cache lookup past a dead owner, anti-entropy pulls
   on (re)join (exactly the missing keys), least-loaded spill under a
   loaded owner, chaos-injected connection drops never corrupting
   answers, and the respawn reset of a backend's hedge latency window. *)

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let ok_or_fail = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error: %s" (Dse_error.to_string e)

let temp_socket_path () =
  let path = Filename.temp_file "dse_repl" ".sock" in
  Sys.remove path;
  path

(* Poll [f] for up to ~5 s; replication and health polling are
   asynchronous, so assertions on their counters must wait for the
   propagation they assert. *)
let eventually what f =
  let rec go tries =
    if f () then ()
    else if tries = 0 then Alcotest.failf "timed out waiting for %s" what
    else begin
      Unix.sleepf 0.02;
      go (tries - 1)
    end
  in
  go 250

let server_config ?(workers = 2) ?wal_path ?(peers = []) ?(replication = 2)
    ?(anti_entropy = false) socket =
  { Server.socket_path = socket; tcp = None; node_id = None; workers; max_pending = 16;
    cache_entries = Result_cache.default_capacity; wal_path; hang_timeout = 30.;
    max_job_refs = None; memory_budget = None;
    peers; replication; replication_queue = 256; anti_entropy }

let start_server ?on_job_start config =
  let server =
    match Server.create ?on_job_start ~log:(fun _ -> ()) config with
    | Ok s -> s
    | Error e -> Alcotest.failf "server create: %s" (Dse_error.to_string e)
  in
  let runner = Domain.spawn (fun () -> Server.run server) in
  (server, runner)

let stop_server (server, runner) =
  Server.stop server;
  Domain.join runner

(* Starts an [n]-node cluster on fresh Unix sockets, each node peered
   with all the others (socket paths are the node ids, so every party
   derives the same ring), and hands the socket list to [f]. *)
let with_cluster ?(replication = 2) n f =
  let sockets = List.init n (fun _ -> temp_socket_path ()) in
  let servers =
    List.map
      (fun s ->
        let peers = List.filter (fun p -> p <> s) sockets in
        start_server (server_config ~peers ~replication s))
      sockets
  in
  Fun.protect
    ~finally:(fun () ->
      List.iter stop_server servers;
      List.iter (fun s -> if Sys.file_exists s then Sys.remove s) sockets)
    (fun () -> f sockets servers)

let with_router config f =
  let router =
    match Router.create ~log:(fun _ -> ()) config with
    | Ok r -> r
    | Error e -> Alcotest.failf "router create: %s" (Dse_error.to_string e)
  in
  let runner = Domain.spawn (fun () -> Router.run router) in
  Fun.protect
    ~finally:(fun () ->
      Router.stop router;
      Domain.join runner;
      if Sys.file_exists config.Router.listen then Sys.remove config.Router.listen)
    (fun () -> f config.Router.listen router)

let router_config ?spill_threshold backends =
  { Router.default_config with
    Router.listen = temp_socket_path ();
    backends;
    request_timeout = 60.;
    health_interval = 0.2;
    health_timeout = 1.;
    breaker = { Breaker.default_config with Breaker.cooldown_base = 0.2 };
    spill_threshold }

let trace_of_seed seed = Synthetic.zipfian ~seed:(seed + 23) ~span:4096 ~skew:1.1 ~length:1500

let expect_table label trace payload =
  check_bool label true
    (payload.Protocol.outcome = Protocol.Table (Analytical_dse.run ~name:label trace))

(* -- the net fault grammar -- *)

let test_net_fault_parse () =
  check_bool "net:drop:2" true
    (Fault.parse "net:drop:2" = Some { Fault.kind = Fault.Net_drop; shard = 0; times = 2 });
  check_bool "net:delay:3:25" true
    (Fault.parse "net:delay:3:25"
    = Some { Fault.kind = Fault.Net_delay 25; shard = 0; times = 3 });
  check_bool "zero-ms delay is legal" true
    (Fault.parse "net:delay:1:0"
    = Some { Fault.kind = Fault.Net_delay 0; shard = 0; times = 1 });
  List.iter
    (fun s -> check_bool (s ^ " rejected") true (Fault.parse s = None))
    [ "net:drop:0"; "net:drop"; "net:drop:x"; "net:delay:1"; "net:delay:1:-1"; "net:delay:0:5" ];
  (* the armed budget is consumed exactly [times] times *)
  Fault.set (Fault.parse "net:drop:2");
  check_bool "first drop fires" true (Fault.net_drop ());
  check_bool "second drop fires" true (Fault.net_drop ());
  check_bool "budget exhausted" false (Fault.net_drop ());
  Fault.set (Fault.parse "net:delay:1:40");
  check_bool "delay fires with its ms" true (Fault.net_delay () = Some 40);
  check_bool "delay budget exhausted" true (Fault.net_delay () = None);
  (* a drop spec never answers delay queries and vice versa *)
  Fault.set (Fault.parse "net:drop:5");
  check_bool "drop spec is not a delay" true (Fault.net_delay () = None);
  Fault.set None

(* -- v6 verbs on the wire -- *)

let with_socketpair f =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      try Unix.close b with Unix.Unix_error _ -> ())
    (fun () -> f a b)

let test_cluster_verbs_roundtrip () =
  let keys =
    [
      { Result_cache.fingerprint = 0x0123456789abcdefL; method_tag = 3; domains = 1;
        max_level = -1 };
      { Result_cache.fingerprint = Int64.minus_one; method_tag = 0; domains = 8; max_level = 12 };
    ]
  in
  let records = [ "DSEW\x01raw-bytes\xff"; "" ] in
  let requests =
    [ Protocol.Replicate { ring_version = 0; records };
      Protocol.Replicate { ring_version = 42; records };
      Protocol.Cache_query { ring_version = 0; keys = [] };
      Protocol.Cache_query { ring_version = 7; keys };
      Protocol.Ring_status;
      Protocol.Ring_update
        { config = { ring_version = 2; nodes = [ "127.0.0.1:7701"; "127.0.0.1:7702" ]; replication = 2 } };
      Protocol.Drain
        { config = { ring_version = 3; nodes = [ "127.0.0.1:7702" ]; replication = 1 } } ]
  in
  List.iter
    (fun request ->
      with_socketpair (fun a b ->
          ok_or_fail (Protocol.write_request a request);
          match ok_or_fail (Protocol.read_request b) with
          | Some got -> check_bool "request round trips" true (got = request)
          | None -> Alcotest.fail "request read as a clean close"))
    requests;
  let responses =
    [ Protocol.Replicate_ack { stored = 0 };
      Protocol.Replicate_ack { stored = 7 };
      Protocol.Cache_reply { keys; records = [] };
      Protocol.Cache_reply { keys = []; records };
      Protocol.Ring_reply
        {
          config = { ring_version = 5; nodes = [ "a"; "b"; "c" ]; replication = 2 };
          draining = false;
          pushed = 0;
        };
      Protocol.Ring_reply
        {
          config = { ring_version = 1; nodes = [ "a" ]; replication = 1 };
          draining = true;
          pushed = 31;
        } ]
  in
  List.iter
    (fun response ->
      with_socketpair (fun a b ->
          ok_or_fail (Protocol.write_response a response);
          check_bool "response round trips" true
            (ok_or_fail (Protocol.read_response b) = response)))
    responses

(* -- ring neighbours -- *)

let test_ring_neighbors () =
  let nodes = [ "n0"; "n1"; "n2" ] in
  let ring = Ring.create nodes in
  List.iter
    (fun node ->
      let neighbors = Ring.neighbors ring node in
      check_bool (node ^ " never neighbours itself") false (List.mem node neighbors);
      (* on a small fleet the virtual points interleave everywhere: the
         neighbour set is every other node *)
      check_bool (node ^ " neighbours the rest of the fleet") true
        (List.sort String.compare neighbors
        = List.sort String.compare (List.filter (fun n -> n <> node) nodes));
      check_bool (node ^ " is deterministic") true (Ring.neighbors ring node = neighbors))
    nodes;
  (match Ring.neighbors ring "ghost" with
  | _ -> Alcotest.fail "unknown node accepted"
  | exception Invalid_argument _ -> ());
  (* a single-node ring has nobody to exchange with *)
  check_bool "singleton ring" true (Ring.neighbors (Ring.create [ "solo" ]) "solo" = [])

(* -- replicate on completion -- *)

let test_replicate_on_completion () =
  with_cluster 3 (fun sockets _servers ->
      let ring = Ring.create sockets in
      (* a trace owned by sockets[0], so the push target is the walk's
         second distinct node *)
      let owner = List.nth sockets 0 in
      let trace =
        let rec pick i =
          let t = trace_of_seed (300 + i) in
          if Ring.route ring (Trace.fingerprint t) = owner then t else pick (i + 1)
        in
        pick 0
      in
      let target =
        match Ring.successors ring (Trace.fingerprint trace) with
        | _ :: next :: _ -> next
        | _ -> Alcotest.fail "ring walk too short"
      in
      let payload = ok_or_fail (Client.submit ~socket:owner ~name:"repl" trace) in
      expect_table "repl" trace payload;
      check_bool "first answer is a miss" false payload.Protocol.cache_hit;
      (* the push is asynchronous: wait for both ends to account it *)
      eventually "the owner to push the record" (fun () ->
          (ok_or_fail (Client.health ~socket:owner)).Protocol.replicated_out = 1);
      eventually "the successor to store the record" (fun () ->
          (ok_or_fail (Client.health ~socket:target)).Protocol.replicated_in = 1);
      let target_health = ok_or_fail (Client.health ~socket:target) in
      check_int "replica landed in the successor's cache" 1
        target_health.Protocol.cache_entries;
      check_int "no kernel ran on the successor" 0 target_health.Protocol.jobs_completed;
      check_int "no queued pushes left behind" 0
        (ok_or_fail (Client.health ~socket:owner)).Protocol.replication_lag;
      (* the third node is off the R=2 placement: no copy *)
      let third = List.find (fun s -> s <> owner && s <> target) sockets in
      check_int "R=2 never touches the third node" 0
        (ok_or_fail (Client.health ~socket:third)).Protocol.replicated_in;
      (* the replica re-serves bit-identically, straight from cache *)
      let warm = ok_or_fail (Client.submit ~socket:target ~name:"repl" trace) in
      check_bool "replica serves as a cache hit" true warm.Protocol.cache_hit;
      check_bool "replica is bit-identical" true
        (warm.Protocol.outcome = payload.Protocol.outcome);
      check_int "still no kernel run on the successor" 0
        (ok_or_fail (Client.health ~socket:target)).Protocol.jobs_completed)

(* -- router peer lookup past a dead owner -- *)

let test_router_peer_lookup_on_failover () =
  with_cluster 3 (fun sockets servers ->
      with_router (router_config sockets) (fun addr router ->
          let ring = Ring.create ~replicas:64 sockets in
          let owner_index = 0 in
          let owner = List.nth sockets owner_index in
          let trace =
            let rec pick i =
              let t = trace_of_seed (400 + i) in
              if Ring.route ring (Trace.fingerprint t) = owner then t else pick (i + 1)
            in
            pick 0
          in
          let payload = ok_or_fail (Client.submit ~socket:addr ~name:"warm" trace) in
          expect_table "warm" trace payload;
          eventually "replication to a survivor" (fun () ->
              (ok_or_fail (Client.health ~socket:owner)).Protocol.replicated_out = 1);
          let survivors = List.filter (fun s -> s <> owner) sockets in
          let jobs_before =
            List.map
              (fun s -> (ok_or_fail (Client.server_stats ~socket:s)).Protocol.jobs_completed)
              survivors
          in
          (* kill the owner; its warm range lives on in the replicas *)
          stop_server (List.nth servers owner_index);
          if Sys.file_exists owner then Sys.remove owner;
          let again = ok_or_fail (Client.submit ~socket:addr ~name:"warm" trace) in
          check_bool "peer relay is bit-identical" true
            (again.Protocol.outcome = payload.Protocol.outcome);
          check_bool "peer relay reads as a cache hit" true again.Protocol.cache_hit;
          check_int "one peer hit counted" 1 (Router.stats router).Router.peer_hits;
          (* zero kernel work anywhere: no survivor completed a job *)
          List.iter2
            (fun s before ->
              check_int "survivor ran no kernel" before
                (ok_or_fail (Client.server_stats ~socket:s)).Protocol.jobs_completed)
            survivors jobs_before))

(* -- anti-entropy on (re)join -- *)

let submit_n sockets n =
  List.init n (fun i ->
      let trace = trace_of_seed (500 + i) in
      let name = Printf.sprintf "ae%d" i in
      let payload = ok_or_fail (Client.submit ~socket:(List.hd sockets) ~name trace) in
      expect_table name trace payload;
      (name, trace, payload))

let test_anti_entropy_rewarns_walless_restart () =
  let sockets = List.init 2 (fun _ -> temp_socket_path ()) in
  let a, b = (List.nth sockets 0, List.nth sockets 1) in
  let server_b = start_server (server_config ~peers:[ a ] b) in
  let server_a = ref (start_server (server_config ~peers:[ b ] a)) in
  Fun.protect
    ~finally:(fun () ->
      stop_server !server_a;
      stop_server server_b;
      List.iter (fun s -> if Sys.file_exists s then Sys.remove s) sockets)
    (fun () ->
      (* with two nodes and R=2, every result computed on A also lands
         on B *)
      let jobs = submit_n sockets 4 in
      eventually "all four records to replicate to B" (fun () ->
          (ok_or_fail (Client.health ~socket:b)).Protocol.replicated_in = 4);
      (* A dies with no WAL: its cache is gone... *)
      stop_server !server_a;
      server_a := start_server (server_config ~peers:[ b ] ~anti_entropy:true a);
      (* ...and anti-entropy pulls its whole range back from B *)
      eventually "A to re-warm from its peer" (fun () ->
          let h = ok_or_fail (Client.health ~socket:a) in
          h.Protocol.cache_entries = 4 && h.Protocol.replicated_in = 4);
      check_int "B served the pulls as peer hits" 4
        (ok_or_fail (Client.health ~socket:b)).Protocol.peer_hits;
      (* every re-warmed entry answers bit-identically with zero kernel
         work on the respawned node *)
      List.iter
        (fun (name, trace, payload) ->
          let warm = ok_or_fail (Client.submit ~socket:a ~name trace) in
          check_bool (name ^ " served warm") true warm.Protocol.cache_hit;
          check_bool (name ^ " bit-identical") true
            (warm.Protocol.outcome = payload.Protocol.outcome))
        jobs;
      check_int "no kernel ran after the respawn" 0
        (ok_or_fail (Client.health ~socket:a)).Protocol.jobs_completed)

let test_anti_entropy_pulls_only_missing () =
  let sockets = List.init 2 (fun _ -> temp_socket_path ()) in
  let a, b = (List.nth sockets 0, List.nth sockets 1) in
  let wal = Filename.temp_file "dse_repl" ".wal" in
  let server_b = start_server (server_config ~peers:[ a ] b) in
  let server_a = ref (start_server (server_config ~peers:[ b ] ~wal_path:wal a)) in
  Fun.protect
    ~finally:(fun () ->
      stop_server !server_a;
      stop_server server_b;
      if Sys.file_exists wal then Sys.remove wal;
      List.iter (fun s -> if Sys.file_exists s then Sys.remove s) sockets)
    (fun () ->
      ignore (submit_n sockets 4);
      eventually "replication to B" (fun () ->
          (ok_or_fail (Client.health ~socket:b)).Protocol.replicated_in = 4);
      stop_server !server_a;
      (* the WAL restored everything, so the digest exchange finds
         nothing missing: anti-entropy pulls exactly zero entries *)
      server_a := start_server (server_config ~peers:[ b ] ~wal_path:wal ~anti_entropy:true a);
      eventually "the WAL replay to finish" (fun () ->
          (ok_or_fail (Client.health ~socket:a)).Protocol.cache_entries = 4);
      (* give the anti-entropy domain time to run its exchange, then
         hold it to its contract *)
      Unix.sleepf 0.3;
      check_int "a WAL-restored restart pulls nothing" 0
        (ok_or_fail (Client.health ~socket:a)).Protocol.replicated_in)

(* -- least-loaded spill -- *)

let test_spill_least_loaded () =
  let sockets = List.init 2 (fun _ -> temp_socket_path ()) in
  let ring = Ring.create ~replicas:64 sockets in
  let owner = List.hd sockets in
  (* traces owned by [owner], distinct fingerprints *)
  let owned_trace =
    let rec pick i acc n =
      if n = 0 then List.rev acc
      else
        let t = trace_of_seed (600 + i) in
        if Ring.route ring (Trace.fingerprint t) = owner then pick (i + 1) (t :: acc) (n - 1)
        else pick (i + 1) acc n
    in
    pick 0 [] 4
  in
  let gate = Atomic.make true in
  let servers =
    List.map
      (fun s ->
        let on_job_start =
          (* only the owner wedges; the spill target must stay fast *)
          if s = owner then fun () -> while Atomic.get gate do Unix.sleepf 0.002 done
          else fun () -> ()
        in
        start_server ~on_job_start (server_config ~workers:1 s))
      sockets
  in
  Fun.protect
    ~finally:(fun () ->
      Atomic.set gate false;
      List.iter stop_server servers;
      List.iter (fun s -> if Sys.file_exists s then Sys.remove s) sockets)
    (fun () ->
      with_router (router_config ~spill_threshold:1.0 sockets) (fun addr router ->
          (* pile jobs onto the owner directly: one held in flight by
             the gate, the rest queued behind it *)
          let background =
            List.mapi
              (fun i trace ->
                Domain.spawn (fun () ->
                    Client.submit ~socket:owner ~name:(Printf.sprintf "bg%d" i) trace))
              (List.tl owned_trace)
          in
          eventually "the router to see the owner loaded" (fun () ->
              List.exists
                (fun v ->
                  v.Router.backend = owner && v.Router.queue >= 2 && v.Router.seen > 0.)
                (Router.snapshot router)
              && List.exists
                   (fun v -> v.Router.backend <> owner && v.Router.seen > 0.)
                   (Router.snapshot router));
          (* a submission owned by the loaded node spills to the idle
             one and still answers (the owner would block on the gate) *)
          let trace = List.hd owned_trace in
          let payload = ok_or_fail (Client.submit ~socket:addr ~name:"spill" trace) in
          expect_table "spill" trace payload;
          check_bool "spill counted" true ((Router.stats router).Router.spilled >= 1);
          let other = List.nth sockets 1 in
          check_int "the idle node ran the job" 1
            (ok_or_fail (Client.server_stats ~socket:other)).Protocol.jobs_completed;
          (* release the gate and let the background jobs drain *)
          Atomic.set gate false;
          List.iter (fun d -> ignore (Domain.join d)) background))

(* -- chaos: net faults never corrupt answers -- *)

let test_net_drop_never_corrupts () =
  let socket = temp_socket_path () in
  let server = start_server (server_config socket) in
  Fun.protect
    ~finally:(fun () ->
      Fault.set None;
      stop_server server;
      if Sys.file_exists socket then Sys.remove socket)
    (fun () ->
      let trace = trace_of_seed 700 in
      (* two injected resets somewhere in the frame I/O; retries ride
         through and the final answer must still be exact *)
      Fault.set (Fault.parse "net:drop:2");
      let payload =
        ok_or_fail
          (Client.submit ~socket ~retries:10 ~retry_base:0.05 ~retry_cap:20. ~name:"chaos"
             trace)
      in
      expect_table "chaos" trace payload;
      check_bool "drop budget was consumed" false (Fault.net_drop ());
      (* injected latency delays but never damages a frame *)
      Fault.set (Fault.parse "net:delay:3:10");
      let slow = ok_or_fail (Client.submit ~socket ~name:"chaos" trace) in
      check_bool "delayed repeat is a cache hit" true slow.Protocol.cache_hit;
      check_bool "delayed repeat is bit-identical" true
        (slow.Protocol.outcome = payload.Protocol.outcome))

(* -- respawn clears the hedge latency window -- *)

let test_respawn_clears_hedge_window () =
  let socket = temp_socket_path () in
  let server = ref (start_server (server_config ~workers:2 socket)) in
  Fun.protect
    ~finally:(fun () ->
      stop_server !server;
      if Sys.file_exists socket then Sys.remove socket)
    (fun () ->
      with_router (router_config [ socket ]) (fun addr router ->
          let view () =
            match Router.snapshot router with
            | [ v ] -> v
            | _ -> Alcotest.fail "expected one backend"
          in
          List.iter
            (fun i ->
              let trace = trace_of_seed (800 + i) in
              let name = Printf.sprintf "lat%d" i in
              expect_table name trace (ok_or_fail (Client.submit ~socket:addr ~name trace)))
            [ 0; 1; 2 ];
          check_int "forwarded answers fill the window" 3 (view ()).Router.hedge_samples;
          let old_epoch =
            eventually "the health poll to learn the epoch" (fun () -> (view ()).Router.epoch > 0.);
            (view ()).Router.epoch
          in
          (* respawn: same socket, same node id, a fresh process *)
          stop_server !server;
          server := start_server (server_config ~workers:2 socket);
          eventually "the router to notice the respawn" (fun () ->
              let v = view () in
              v.Router.epoch > old_epoch);
          check_int "respawn cleared the hedge window" 0 (view ()).Router.hedge_samples))

let suites =
  [
    ( "replication:faults",
      [ Alcotest.test_case "net fault grammar and budgets" `Quick test_net_fault_parse ] );
    ( "replication:protocol",
      [
        Alcotest.test_case "cluster verbs round trip" `Quick test_cluster_verbs_roundtrip;
        Alcotest.test_case "ring neighbours" `Quick test_ring_neighbors;
      ] );
    ( "replication:cluster",
      [
        Alcotest.test_case "replicate on completion" `Quick test_replicate_on_completion;
        Alcotest.test_case "anti-entropy re-warms a WAL-less restart" `Quick
          test_anti_entropy_rewarns_walless_restart;
        Alcotest.test_case "anti-entropy pulls only the missing keys" `Quick
          test_anti_entropy_pulls_only_missing;
      ] );
    ( "replication:router",
      [
        Alcotest.test_case "peer cache lookup past a dead owner" `Quick
          test_router_peer_lookup_on_failover;
        Alcotest.test_case "least-loaded spill" `Quick test_spill_least_loaded;
        Alcotest.test_case "respawn clears the hedge window" `Quick
          test_respawn_clears_hedge_window;
      ] );
    ( "replication:chaos",
      [ Alcotest.test_case "net drops never corrupt answers" `Quick test_net_drop_never_corrupts ]
    );
  ]
