(* Tests for the serving layer: wire protocol roundtrips and damage
   detection, the bounded job queue's backpressure, the content-addressed
   result cache, loopback request/response identity against the direct
   pipeline, queue overflow, corrupt submissions, and SIGTERM drain. *)

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let ok_or_fail = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error: %s" (Dse_error.to_string e)

let small_traces =
  lazy
    (List.map
       (fun name -> (name, Workload.data_trace (Registry.find name)))
       [ "bcnt"; "crc"; "fir" ])

(* -- wire protocol -- *)

let with_socketpair f =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      try Unix.close b with Unix.Unix_error _ -> ())
    (fun () -> f a b)

let roundtrip_request request =
  with_socketpair (fun a b ->
      ok_or_fail (Protocol.write_request a request);
      match ok_or_fail (Protocol.read_request b) with
      | Some request -> request
      | None -> Alcotest.fail "request read as a clean close")

let roundtrip_response response =
  with_socketpair (fun a b ->
      ok_or_fail (Protocol.write_response a response);
      ok_or_fail (Protocol.read_response b))

let test_request_roundtrip () =
  let trace = Trace.of_list [ { Trace.addr = 11; kind = Trace.Fetch };
                              { Trace.addr = 0; kind = Trace.Read };
                              { Trace.addr = 4096; kind = Trace.Write } ] in
  (match
     roundtrip_request
       (Protocol.Submit
          {
            name = "t";
            trace = Protocol.Full trace;
            query = Protocol.Percents [ 5; 10 ];
            method_ = Protocol.Exact Analytical.Dfs;
            domains = 3;
            max_level = Some 7;
            deadline = Some 1.5;
          })
   with
  | Protocol.Submit s ->
    check_int "name" 1 (String.length s.name);
    check_bool "trace" true
      (match s.trace with
      | Protocol.Full t -> Trace.to_list t = Trace.to_list trace
      | Protocol.Sketched _ -> false);
    check_bool "query" true (s.query = Protocol.Percents [ 5; 10 ]);
    check_bool "method" true (s.method_ = Protocol.Exact Analytical.Dfs);
    check_int "domains" 3 s.domains;
    check_bool "max_level" true (s.max_level = Some 7);
    check_bool "deadline" true (s.deadline = Some 1.5)
  | _ -> Alcotest.fail "expected Submit");
  (match
     roundtrip_request
       (Protocol.Submit
          {
            name = "";
            trace = Protocol.Full trace;
            query = Protocol.Budget 42;
            method_ = Protocol.Exact Analytical.Streaming;
            domains = 1;
            max_level = None;
            deadline = None;
          })
   with
  | Protocol.Submit s ->
    check_bool "budget" true (s.query = Protocol.Budget 42);
    check_bool "no max_level" true (s.max_level = None);
    check_bool "no deadline" true (s.deadline = None)
  | _ -> Alcotest.fail "expected Submit");
  check_bool "ping" true (roundtrip_request Protocol.Ping = Protocol.Ping);
  check_bool "stats" true (roundtrip_request Protocol.Server_stats = Protocol.Server_stats)

let test_response_roundtrip () =
  let trace = Workload.data_trace (Registry.find "bcnt") in
  let table = Analytical_dse.run ~name:"bcnt" trace in
  (match roundtrip_response (Protocol.Result { outcome = Protocol.Table table; cache_hit = true })
   with
  | Protocol.Result { outcome = Protocol.Table t; cache_hit } ->
    check_bool "cache_hit" true cache_hit;
    check_bool "table" true (t = table)
  | _ -> Alcotest.fail "expected Table result");
  let optimal = Analytical.explore trace ~k:25 in
  (match
     roundtrip_response (Protocol.Result { outcome = Protocol.Optimal optimal; cache_hit = false })
   with
  | Protocol.Result { outcome = Protocol.Optimal r; cache_hit } ->
    check_bool "cache_hit" false cache_hit;
    check_bool "optimal" true (r = optimal)
  | _ -> Alcotest.fail "expected Optimal result");
  let errors =
    [
      Dse_error.Parse_error { file = "f"; line = 3; message = "m" };
      Dse_error.Corrupt_binary { file = "f"; offset = 9; message = "m" };
      Dse_error.Constraint_violation { context = "c"; message = "m" };
      Dse_error.Shard_failure { shard = 1; attempts = 3; message = "m" };
      Dse_error.Io_error { file = "f"; message = "m" };
      Dse_error.Queue_full { pending = 4; max_pending = 4; retry_after = 0.75 };
      Dse_error.Deadline_exceeded { elapsed = 2.25; limit = 1.5 };
      Dse_error.Worker_stalled { elapsed = 3.5; job = "loop-139264" };
      Dse_error.Resource_exhausted
        { resource = "trace references"; needed = 200_000; budget = 4096 };
      Dse_error.Backend_unavailable { node = "127.0.0.1:7701"; attempts = 3 };
    ]
  in
  List.iter
    (fun e ->
      match roundtrip_response (Protocol.Server_error e) with
      | Protocol.Server_error e' -> check_bool "error" true (e = e')
      | _ -> Alcotest.fail "expected Server_error")
    errors;
  let stats =
    {
      Protocol.jobs_completed = 5;
      cache_hits = 2;
      cache_misses = 3;
      cache_entries = 3;
      cache_evictions = 1;
      coalesced_hits = 2;
      pending = 1;
      workers = 4;
    }
  in
  (match roundtrip_response (Protocol.Stats_reply stats) with
  | Protocol.Stats_reply s -> check_bool "stats" true (s = stats)
  | _ -> Alcotest.fail "expected Stats_reply");
  check_bool "pong" true (roundtrip_response Protocol.Pong = Protocol.Pong)

let expect_corrupt label = function
  | Error (Dse_error.Corrupt_binary _) -> ()
  | Error e -> Alcotest.failf "%s: wrong error class: %s" label (Dse_error.to_string e)
  | Ok _ -> Alcotest.failf "%s: damage not detected" label

let test_protocol_damage () =
  (* garbage bytes: bad magic *)
  with_socketpair (fun a b ->
      let garbage = Bytes.of_string "GARBAGEGARBAGE" in
      ignore (Unix.write a garbage 0 (Bytes.length garbage));
      Unix.close a;
      expect_corrupt "garbage" (Protocol.read_request b));
  (* a flipped payload byte: CRC mismatch *)
  with_socketpair (fun a b ->
      let read_end, write_end = Unix.pipe () in
      ok_or_fail (Protocol.write_request write_end Protocol.Ping);
      let frame = Bytes.create 64 in
      let n = Unix.read read_end frame 0 64 in
      Unix.close read_end;
      Unix.close write_end;
      (* flip a bit inside the header, after the magic *)
      Bytes.set frame 5 (Char.chr (Char.code (Bytes.get frame 5) lxor 1));
      ignore (Unix.write a frame 0 n);
      Unix.close a;
      expect_corrupt "bitflip" (Protocol.read_request b));
  (* truncation mid-frame *)
  with_socketpair (fun a b ->
      let read_end, write_end = Unix.pipe () in
      ok_or_fail
        (Protocol.write_request write_end
           (Protocol.Submit
              {
                name = "t";
                trace = Protocol.Full (Trace.of_addresses [| 1; 2; 3; 4; 5 |]);
                query = Protocol.Budget 1;
                method_ = Protocol.Exact Analytical.Streaming;
                domains = 1;
                max_level = None;
                deadline = None;
              }));
      let frame = Bytes.create 256 in
      let n = Unix.read read_end frame 0 256 in
      Unix.close read_end;
      Unix.close write_end;
      ignore (Unix.write a frame 0 (n - 6));
      Unix.close a;
      expect_corrupt "truncation" (Protocol.read_request b))

(* -- fingerprint -- *)

let test_fingerprint () =
  let t1 = Trace.of_addresses [| 1; 2; 3 |] in
  let t2 = Trace.of_addresses [| 1; 2; 3 |] in
  let t3 = Trace.of_addresses [| 3; 2; 1 |] in
  let t4 = Trace.of_addresses [| 1; 2; 3; 4 |] in
  check_bool "deterministic" true (Trace.fingerprint t1 = Trace.fingerprint t2);
  check_bool "order-sensitive" false (Trace.fingerprint t1 = Trace.fingerprint t3);
  check_bool "length-sensitive" false (Trace.fingerprint t1 = Trace.fingerprint t4);
  (* kinds are deliberately excluded: the model depends on addresses only *)
  let reads = Trace.of_addresses ~kind:Trace.Read [| 7; 8 |] in
  let writes = Trace.of_addresses ~kind:Trace.Write [| 7; 8 |] in
  check_bool "kind-insensitive" true (Trace.fingerprint reads = Trace.fingerprint writes);
  (* the known FNV-1a offset/prime: empty trace digests only the length *)
  check_bool "empty stable" true
    (Trace.fingerprint (Trace.create ()) = Trace.fingerprint (Trace.create ()))

(* -- of_histograms: cached-histogram answers equal the full run -- *)

let test_of_histograms_identity () =
  List.iter
    (fun (name, trace) ->
      let direct = Analytical_dse.run ~name trace in
      let prepared = Analytical.prepare trace in
      let stats = Analytical.stats prepared in
      let histograms = Analytical.histograms prepared in
      let replayed = Analytical_dse.of_histograms ~name ~stats histograms in
      check_bool (name ^ " table") true (direct = replayed);
      (* a K-only re-query straight off the histograms *)
      let k = Stats.budget stats ~percent:10 in
      let direct_k = Analytical.explore trace ~k in
      let replayed_k = Optimizer.of_histograms ~k histograms in
      check_bool (name ^ " k-query") true (direct_k = replayed_k))
    (Lazy.force small_traces)

(* -- job queue -- *)

let test_job_queue () =
  let q = Job_queue.create ~max_pending:2 in
  check_bool "push 1" true (Job_queue.push q 1 = `Ok);
  check_bool "push 2" true (Job_queue.push q 2 = `Ok);
  check_bool "push 3 rejected" true (Job_queue.push q 3 = `Full 2);
  check_int "length" 2 (Job_queue.length q);
  check_bool "fifo 1" true (Job_queue.pop q = Some 1);
  check_bool "refill" true (Job_queue.push q 4 = `Ok);
  check_bool "fifo 2" true (Job_queue.pop q = Some 2);
  Job_queue.close q;
  check_bool "closed push" true (Job_queue.push q 5 = `Closed);
  check_bool "drain after close" true (Job_queue.pop q = Some 4);
  check_bool "empty after drain" true (Job_queue.pop q = None);
  check_bool "bad depth" true
    (match Job_queue.create ~max_pending:0 with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* -- loopback server fixtures -- *)

let temp_socket_path () =
  let path = Filename.temp_file "dse_server" ".sock" in
  Sys.remove path;
  path

let with_server ?(workers = 2) ?(max_pending = 16) ?(cache_entries = Result_cache.default_capacity)
    ?wal_path ?on_job_start ?(hang_timeout = 30.) ?max_job_refs ?memory_budget f =
  let path = temp_socket_path () in
  let server =
    match
      Server.create ?on_job_start ~log:(fun _ -> ())
        { Server.socket_path = path; tcp = None; node_id = None; workers; max_pending;
          cache_entries; wal_path; hang_timeout; max_job_refs; memory_budget;
          peers = []; replication = 2; replication_queue = 256; anti_entropy = false }
    with
    | Ok s -> s
    | Error e -> Alcotest.failf "server create: %s" (Dse_error.to_string e)
  in
  let runner = Domain.spawn (fun () -> Server.run server) in
  Fun.protect
    ~finally:(fun () ->
      Server.stop server;
      Domain.join runner;
      if Sys.file_exists path then Sys.remove path)
    (fun () -> f path server)

let test_loopback_identity () =
  with_server (fun socket _server ->
      List.iter
        (fun (name, trace) ->
          let payload = ok_or_fail (Client.submit ~socket ~name trace) in
          check_bool (name ^ " cold is a miss") false payload.Protocol.cache_hit;
          let direct = Analytical_dse.run ~name trace in
          match payload.Protocol.outcome with
          | Protocol.Table t -> check_bool (name ^ " identity") true (t = direct)
          | _ -> Alcotest.fail "expected a table")
        (Lazy.force small_traces))

let test_cache_hit_identity () =
  with_server (fun socket _server ->
      let name, trace = List.hd (Lazy.force small_traces) in
      let first = ok_or_fail (Client.submit ~socket ~name trace) in
      let second = ok_or_fail (Client.submit ~socket ~name trace) in
      check_bool "first misses" false first.Protocol.cache_hit;
      check_bool "second hits" true second.Protocol.cache_hit;
      check_bool "hit is identical" true (first.Protocol.outcome = second.Protocol.outcome);
      (* a K-only re-query of the solved trace: answered purely from the
         cached histograms, no recomputation *)
      let k = 25 in
      let k_payload = ok_or_fail (Client.submit ~socket ~k ~name trace) in
      check_bool "k-query hits" true k_payload.Protocol.cache_hit;
      (match k_payload.Protocol.outcome with
      | Protocol.Optimal r -> check_bool "k identity" true (r = Analytical.explore trace ~k)
      | _ -> Alcotest.fail "expected an optimizer result");
      let stats = ok_or_fail (Client.server_stats ~socket) in
      check_int "one kernel job" 1 stats.Protocol.jobs_completed;
      check_bool "hits counted" true (stats.Protocol.cache_hits >= 2);
      check_int "one entry" 1 stats.Protocol.cache_entries)

let test_sharded_submission () =
  with_server (fun socket _server ->
      let name, trace = List.nth (Lazy.force small_traces) 1 in
      let sequential = ok_or_fail (Client.submit ~socket ~name trace) in
      (* a different shard count is a different cache key: fresh job *)
      let sharded = ok_or_fail (Client.submit ~socket ~domains:4 ~name trace) in
      check_bool "sharded cold" false sharded.Protocol.cache_hit;
      check_bool "shard invariance" true
        (sequential.Protocol.outcome = sharded.Protocol.outcome))

let test_empty_trace_rejected () =
  with_server (fun socket _server ->
      match Client.submit ~socket ~name:"empty" (Trace.create ()) with
      | Error (Dse_error.Constraint_violation _) -> ()
      | Error e -> Alcotest.failf "wrong error: %s" (Dse_error.to_string e)
      | Ok _ -> Alcotest.fail "empty trace accepted")

(* -- queue overflow: rejected with Queue_full, never a hang -- *)

let test_queue_overflow () =
  let started = Semaphore.Counting.make 0 in
  let gate = Semaphore.Counting.make 0 in
  let hook () =
    Semaphore.Counting.release started;
    Semaphore.Counting.acquire gate
  in
  with_server ~workers:1 ~max_pending:1 ~on_job_start:hook (fun socket _server ->
      let trace_a = Trace.of_addresses (Array.init 64 (fun i -> i * 3)) in
      let trace_b = Trace.of_addresses (Array.init 64 (fun i -> i * 5)) in
      let trace_c = Trace.of_addresses (Array.init 64 (fun i -> i * 7)) in
      (* A occupies the single worker (held by the hook) *)
      let client_a = Domain.spawn (fun () -> Client.submit ~socket ~name:"a" trace_a) in
      Semaphore.Counting.acquire started;
      (* B fills the one queue slot *)
      let client_b = Domain.spawn (fun () -> Client.submit ~socket ~name:"b" trace_b) in
      let rec wait_pending tries =
        if tries = 0 then Alcotest.fail "job B never queued";
        let s = ok_or_fail (Client.server_stats ~socket) in
        if s.Protocol.pending < 1 then begin
          Unix.sleepf 0.02;
          wait_pending (tries - 1)
        end
      in
      wait_pending 250;
      (* C must be rejected immediately — not buffered, not hung *)
      (match Client.submit ~socket ~name:"c" trace_c with
      | Error (Dse_error.Queue_full { pending; max_pending; _ }) ->
        check_int "pending" 1 pending;
        check_int "max_pending" 1 max_pending
      | Error e -> Alcotest.failf "wrong error: %s" (Dse_error.to_string e)
      | Ok _ -> Alcotest.fail "overflow submission accepted");
      (* let A and B finish; both clients still get correct answers *)
      Semaphore.Counting.release gate;
      Semaphore.Counting.release gate;
      let payload_a = ok_or_fail (Domain.join client_a) in
      let payload_b = ok_or_fail (Domain.join client_b) in
      check_bool "a correct" true
        (payload_a.Protocol.outcome = Protocol.Table (Analytical_dse.run ~name:"a" trace_a));
      check_bool "b correct" true
        (payload_b.Protocol.outcome = Protocol.Table (Analytical_dse.run ~name:"b" trace_b));
      (* the daemon is still serving after the rejection *)
      ok_or_fail (Client.ping ~socket))

(* -- corrupt submission beside a good one -- *)

let test_corrupt_submission () =
  with_server (fun socket _server ->
      let name, trace = List.nth (Lazy.force small_traces) 2 in
      let good = Domain.spawn (fun () -> Client.submit ~socket ~name trace) in
      (* raw garbage down the wire: that client gets a structured error *)
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX socket);
      let garbage = Bytes.of_string "DSRVthis is not a frame at all" in
      ignore (Unix.write fd garbage 0 (Bytes.length garbage));
      Unix.shutdown fd Unix.SHUTDOWN_SEND;
      (match Protocol.read_response ~peer:socket fd with
      | Ok (Protocol.Server_error (Dse_error.Corrupt_binary _)) -> ()
      | Ok (Protocol.Server_error e) ->
        Alcotest.failf "wrong error class: %s" (Dse_error.to_string e)
      | Ok _ -> Alcotest.fail "corrupt frame produced a result"
      | Error e -> Alcotest.failf "no structured reply: %s" (Dse_error.to_string e));
      Unix.close fd;
      (* the concurrent good job completed correctly; daemon still up *)
      let payload = ok_or_fail (Domain.join good) in
      check_bool "good job correct" true
        (payload.Protocol.outcome = Protocol.Table (Analytical_dse.run ~name trace));
      ok_or_fail (Client.ping ~socket))

(* -- SIGTERM drains in-flight work before exiting -- *)

let test_sigterm_drains () =
  let started = Semaphore.Counting.make 0 in
  let gate = Semaphore.Counting.make 0 in
  let hook () =
    Semaphore.Counting.release started;
    Semaphore.Counting.acquire gate
  in
  let previous = Sys.signal Sys.sigterm Sys.Signal_ignore in
  Fun.protect
    ~finally:(fun () -> Sys.set_signal Sys.sigterm previous)
    (fun () ->
      let path = temp_socket_path () in
      let server =
        ok_or_fail
          (Server.create ~on_job_start:hook ~log:(fun _ -> ())
             { Server.socket_path = path; tcp = None; node_id = None; workers = 1;
               max_pending = 4; cache_entries = Result_cache.default_capacity;
               wal_path = None; hang_timeout = 30.; max_job_refs = None;
               memory_budget = None;
               peers = []; replication = 2; replication_queue = 256; anti_entropy = false })
      in
      Server.install_signal_handlers server;
      let runner = Domain.spawn (fun () -> Server.run server) in
      let trace = Trace.of_addresses (Array.init 48 (fun i -> i * 2)) in
      let client = Domain.spawn (fun () -> Client.submit ~socket:path ~name:"inflight" trace) in
      Semaphore.Counting.acquire started;
      (* the job is in flight; deliver a real SIGTERM to this process *)
      Unix.kill (Unix.getpid ()) Sys.sigterm;
      (* give the handler a chance to run at a safe point *)
      Unix.sleepf 0.05;
      Semaphore.Counting.release gate;
      (* the daemon must answer the in-flight job, then exit cleanly *)
      let payload = ok_or_fail (Domain.join client) in
      check_bool "drained job correct" true
        (payload.Protocol.outcome = Protocol.Table (Analytical_dse.run ~name:"inflight" trace));
      Domain.join runner;
      check_bool "socket unlinked" false (Sys.file_exists path))

(* -- shard-fault recovery applies per job -- *)

let test_job_shard_recovery () =
  with_server ~workers:1 (fun socket _server ->
      let name, trace = List.hd (Lazy.force small_traces) in
      let clean = ok_or_fail (Client.submit ~socket ~method_:Analytical.Dfs ~name trace) in
      Fault.set (Some { Fault.kind = Fault.Fail; shard = 1; times = 1 });
      Fun.protect
        ~finally:(fun () -> Fault.set None)
        (fun () ->
          (* domains=2 is a fresh cache key; the injected fault exercises
             the retry rung inside the worker, invisibly to the client *)
          let silence = Dse_error.(!on_degradation) in
          Dse_error.on_degradation := (fun _ -> ());
          Fun.protect
            ~finally:(fun () -> Dse_error.on_degradation := silence)
            (fun () ->
              let faulted =
                ok_or_fail
                  (Client.submit ~socket ~method_:Analytical.Dfs ~domains:2 ~name trace)
              in
              check_bool "recovered identically" true
                (clean.Protocol.outcome = faulted.Protocol.outcome))))

let suites =
  [
    ( "server:protocol",
      [
        Alcotest.test_case "request roundtrip" `Quick test_request_roundtrip;
        Alcotest.test_case "response roundtrip" `Quick test_response_roundtrip;
        Alcotest.test_case "damage detection" `Quick test_protocol_damage;
      ] );
    ( "server:components",
      [
        Alcotest.test_case "trace fingerprint" `Quick test_fingerprint;
        Alcotest.test_case "of_histograms identity" `Quick test_of_histograms_identity;
        Alcotest.test_case "job queue backpressure" `Quick test_job_queue;
      ] );
    ( "server:loopback",
      [
        Alcotest.test_case "identity vs direct run" `Quick test_loopback_identity;
        Alcotest.test_case "cache hit identity" `Quick test_cache_hit_identity;
        Alcotest.test_case "sharded submission" `Quick test_sharded_submission;
        Alcotest.test_case "empty trace rejected" `Quick test_empty_trace_rejected;
        Alcotest.test_case "queue overflow" `Quick test_queue_overflow;
        Alcotest.test_case "corrupt submission" `Quick test_corrupt_submission;
        Alcotest.test_case "sigterm drains" `Quick test_sigterm_drains;
        Alcotest.test_case "shard recovery per job" `Quick test_job_shard_recovery;
      ] );
  ]
