(* Tests for the multi-node serving stack: the transport address
   grammar, frame I/O under byte-at-a-time delivery (short reads), the
   consistent-hash ring (unit + qcheck membership-churn properties),
   the per-backend circuit breaker state machine, client retry through
   a daemon restart, node identity across respawns, and the routing
   gateway end to end — fingerprint locality, failover past a dead
   backend, typed exhaustion, and hedged requests. *)

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let ok_or_fail = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error: %s" (Dse_error.to_string e)

let temp_socket_path () =
  let path = Filename.temp_file "dse_router" ".sock" in
  Sys.remove path;
  path

let free_port () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
      match Unix.getsockname fd with
      | Unix.ADDR_INET (_, port) -> port
      | _ -> Alcotest.fail "unexpected sockname")

let server_config ?(workers = 2) ?tcp ?node_id socket =
  { Server.socket_path = socket; tcp; node_id; workers; max_pending = 16;
    cache_entries = Result_cache.default_capacity; wal_path = None; hang_timeout = 30.;
    max_job_refs = None; memory_budget = None;
    peers = []; replication = 2; replication_queue = 256; anti_entropy = false }

let start_server config =
  let server =
    match Server.create ~log:(fun _ -> ()) config with
    | Ok s -> s
    | Error e -> Alcotest.failf "server create: %s" (Dse_error.to_string e)
  in
  let runner = Domain.spawn (fun () -> Server.run server) in
  (server, runner)

let stop_server (server, runner) =
  Server.stop server;
  Domain.join runner

(* Starts [n] daemons on fresh Unix sockets and hands their socket
   paths (also their ring names) to [f]. *)
let with_backends ?workers n f =
  let sockets = List.init n (fun _ -> temp_socket_path ()) in
  let servers = List.map (fun s -> start_server (server_config ?workers s)) sockets in
  Fun.protect
    ~finally:(fun () ->
      List.iter stop_server servers;
      List.iter (fun s -> if Sys.file_exists s then Sys.remove s) sockets)
    (fun () -> f sockets servers)

let router_config ?(hedge = Router.Adaptive) ?(request_timeout = 60.) backends =
  { Router.default_config with
    Router.listen = temp_socket_path ();
    backends;
    request_timeout;
    hedge;
    (* poll briskly so breaker resets after a respawn are timely *)
    health_interval = 0.2;
    health_timeout = 1.;
    breaker = { Breaker.default_config with Breaker.cooldown_base = 0.2 } }

let with_router config f =
  let router =
    match Router.create ~log:(fun _ -> ()) config with
    | Ok r -> r
    | Error e -> Alcotest.failf "router create: %s" (Dse_error.to_string e)
  in
  let runner = Domain.spawn (fun () -> Router.run router) in
  Fun.protect
    ~finally:(fun () ->
      Router.stop router;
      Domain.join runner;
      if Sys.file_exists config.Router.listen then Sys.remove config.Router.listen)
    (fun () -> f config.Router.listen router)

(* Distinct, cheap traces with well-spread fingerprints. *)
let trace_of_seed seed = Synthetic.zipfian ~seed:(seed + 11) ~span:4096 ~skew:1.1 ~length:1500

(* [label] must be the name the trace was submitted under: the
   rendered table embeds it. *)
let expect_table label trace payload =
  check_bool label true
    (payload.Protocol.outcome = Protocol.Table (Analytical_dse.run ~name:label trace))

(* -- transport: address grammar and listeners -- *)

let test_transport_parse () =
  let tcp host port = Transport.Tcp { host; port } in
  List.iter
    (fun (input, expected) ->
      check_bool input true (Transport.parse input = expected))
    [
      ("127.0.0.1:7700", tcp "127.0.0.1" 7700);
      (":7700", tcp "" 7700);
      ("node7.rack2:65535", tcp "node7.rack2" 65535);
      ("/tmp/dse.sock", Transport.Unix_socket "/tmp/dse.sock");
      (* a colon whose suffix is not a valid port stays a path *)
      ("/tmp/dse:sock", Transport.Unix_socket "/tmp/dse:sock");
      ("host:notaport", Transport.Unix_socket "host:notaport");
      ("host:0", Transport.Unix_socket "host:0");
      ("host:65536", Transport.Unix_socket "host:65536");
      (* a '/' anywhere before the colon means filesystem, not DNS *)
      ("/var/run/x:7700", Transport.Unix_socket "/var/run/x:7700");
      ("relative.sock", Transport.Unix_socket "relative.sock");
    ];
  (* to_string survives a parse round trip for both transports *)
  List.iter
    (fun s -> check_bool ("roundtrip " ^ s) true (Transport.to_string (Transport.parse s) = s))
    [ "127.0.0.1:7700"; "/tmp/dse.sock" ]

let test_transport_listeners () =
  (* TCP: binding port 0 yields an ephemeral port we can read back *)
  let fd = ok_or_fail (Transport.listen (Transport.Tcp { host = "127.0.0.1"; port = 0 })) in
  (match Transport.bound_port fd with
  | Some port -> check_bool "ephemeral port" true (port > 0)
  | None -> Alcotest.fail "no port for a TCP listener");
  Unix.close fd;
  (* Unix socket: a stale file from a crashed daemon is reclaimed *)
  let path = temp_socket_path () in
  let addr = Transport.Unix_socket path in
  let first = ok_or_fail (Transport.listen addr) in
  check_bool "no port for a unix listener" true (Transport.bound_port first = None);
  Unix.close first;
  (* the socket file is still on disk but nobody listens: a second
     listen must probe, unlink, and succeed *)
  check_bool "stale file left behind" true (Sys.file_exists path);
  let second = ok_or_fail (Transport.listen addr) in
  Unix.close second;
  Transport.unlink addr;
  check_bool "unlinked" false (Sys.file_exists path)

let test_tcp_loopback_identity () =
  let socket = temp_socket_path () in
  let port = free_port () in
  let tcp_addr = Printf.sprintf "127.0.0.1:%d" port in
  let server = start_server (server_config ~tcp:tcp_addr socket) in
  Fun.protect
    ~finally:(fun () ->
      stop_server server;
      if Sys.file_exists socket then Sys.remove socket)
    (fun () ->
      ok_or_fail (Client.ping ~socket:tcp_addr);
      let trace = trace_of_seed 1 in
      let over_tcp = ok_or_fail (Client.submit ~socket:tcp_addr ~name:"tcp" trace) in
      expect_table "tcp" trace over_tcp;
      (* the very same daemon over its Unix socket answers from cache:
         one service, two transports *)
      let over_uds = ok_or_fail (Client.submit ~socket ~name:"tcp" trace) in
      check_bool "shared cache across transports" true over_uds.Protocol.cache_hit;
      check_bool "identical payload" true
        (over_uds.Protocol.outcome = over_tcp.Protocol.outcome))

(* -- frame I/O under short reads -- *)

(* Capture the exact bytes a frame writer emits. *)
let capture_frame write =
  let r, w = Unix.pipe () in
  ok_or_fail (write w);
  Unix.close w;
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 4096 in
  let rec drain () =
    match Unix.read r chunk 0 (Bytes.length chunk) with
    | 0 -> ()
    | n ->
      Buffer.add_subbytes buf chunk 0 n;
      drain ()
  in
  drain ();
  Unix.close r;
  Buffer.to_bytes buf

(* Deliver [bytes] one at a time with a pause between writes, so the
   reader's kernel buffer holds at most a byte or two per read and
   every multi-byte field — magic, LEB128 length, payload, CRC — is
   assembled across short reads. *)
let drip_feed bytes fd =
  Domain.spawn (fun () ->
      Bytes.iter
        (fun c ->
          ignore (Unix.write fd (Bytes.make 1 c) 0 1);
          Unix.sleepf 0.0005)
        bytes;
      Unix.close fd)

let test_frame_reads_survive_dripping () =
  let trace = Trace.of_list [ { Trace.addr = 16; kind = Trace.Fetch };
                              { Trace.addr = 4096; kind = Trace.Write } ] in
  let request =
    Protocol.Submit
      { name = "drip"; trace = Protocol.Full trace; query = Protocol.Percents [ 5; 10 ];
        method_ = Protocol.Exact Analytical.Dfs; domains = 2; max_level = Some 6;
        deadline = None }
  in
  let request_bytes = capture_frame (fun fd -> Protocol.write_request fd request) in
  check_bool "frame spans many reads" true (Bytes.length request_bytes > 16);
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let feeder = drip_feed request_bytes a in
  let read_back =
    match Protocol.read_request b with
    | Ok (Some r) -> r
    | Ok None -> Alcotest.fail "dripped request read as a clean close"
    | Error e -> Alcotest.failf "dripped request rejected: %s" (Dse_error.to_string e)
  in
  Domain.join feeder;
  Unix.close b;
  (match (read_back, request) with
  | Protocol.Submit got, Protocol.Submit sent ->
    check_bool "trace intact" true
      (match (got.trace, sent.trace) with
      | Protocol.Full g, Protocol.Full s -> Trace.to_list g = Trace.to_list s
      | _ -> false);
    check_bool "query intact" true (got.query = sent.query);
    check_int "domains intact" sent.domains got.domains
  | _ -> Alcotest.fail "expected Submit");
  (* and the response direction, which carries floats and histograms *)
  let response =
    Protocol.Server_error (Dse_error.Backend_unavailable { node = "n1"; attempts = 3 })
  in
  let response_bytes = capture_frame (fun fd -> Protocol.write_response fd response) in
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let feeder = drip_feed response_bytes a in
  (match Protocol.read_response b with
  | Ok r -> check_bool "response intact" true (r = response)
  | Error e -> Alcotest.failf "dripped response rejected: %s" (Dse_error.to_string e));
  Domain.join feeder;
  Unix.close b

(* -- consistent-hash ring -- *)

let fingerprints n =
  (* spread deterministic pseudo-fingerprints over the 64-bit space *)
  List.init n (fun i -> Int64.mul (Int64.of_int (i + 1)) 0x9E3779B97F4A7C15L)

let test_ring_basics () =
  let nodes = [ "n0"; "n1"; "n2"; "n3" ] in
  let ring = Ring.create nodes in
  check_bool "nodes echoed" true (Ring.nodes ring = nodes);
  List.iter
    (fun fp ->
      let owner = Ring.route ring fp in
      check_bool "owner is a member" true (List.mem owner nodes);
      check_bool "routing is deterministic" true (Ring.route ring fp = owner);
      let order = Ring.successors ring fp in
      check_bool "successors start at the owner" true (List.hd order = owner);
      check_bool "successors are a permutation of the nodes" true
        (List.sort String.compare order = List.sort String.compare nodes))
    (fingerprints 64);
  (* construction rejects degenerate inputs *)
  List.iter
    (fun bad ->
      match bad () with
      | _ -> Alcotest.fail "accepted a degenerate ring"
      | exception Invalid_argument _ -> ())
    [
      (fun () -> Ring.create []);
      (fun () -> Ring.create [ "a"; "a" ]);
      (fun () -> Ring.create ~replicas:0 [ "a" ]);
    ]

let test_ring_membership_churn () =
  let four = [ "n0"; "n1"; "n2"; "n3" ] in
  let ring4 = Ring.create four in
  let ring5 = Ring.create (four @ [ "n4" ]) in
  let keys = fingerprints 2000 in
  let moved = ref 0 in
  List.iter
    (fun fp ->
      let before = Ring.route ring4 fp in
      let after = Ring.route ring5 fp in
      if before <> after then begin
        incr moved;
        (* a join steals keys for the new node only: survivors never
           trade keys among themselves... *)
        check_bool "moved keys land on the joiner" true (after = "n4")
      end;
      (* ...and symmetrically, a leave returns the leaver's keys and
         touches nothing else (same two rings read in reverse) *)
      if after <> "n4" then check_bool "leave only moves the leaver's keys" true (before = after))
    keys;
  let fraction = float_of_int !moved /. float_of_int (List.length keys) in
  check_bool
    (Printf.sprintf "~1/5 of keys move on a 4->5 join (got %.3f)" fraction)
    true
    (fraction > 0.08 && fraction < 0.4)

let qcheck count name gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen f)

let gen_ring_case =
  QCheck2.Gen.(pair (int_range 2 8) (list_size (int_range 1 64) int64))

let prop_ring_membership (n, keys) =
  let nodes = List.init n (Printf.sprintf "node%d") in
  let ring = Ring.create ~replicas:32 nodes in
  List.for_all
    (fun fp ->
      let order = Ring.successors ring fp in
      List.hd order = Ring.route ring fp
      && List.sort String.compare order = List.sort String.compare nodes)
    keys

let prop_ring_join_moves_only_to_joiner (n, keys) =
  let nodes = List.init n (Printf.sprintf "node%d") in
  let joiner = "joiner" in
  let before = Ring.create ~replicas:32 nodes in
  let after = Ring.create ~replicas:32 (nodes @ [ joiner ]) in
  List.for_all
    (fun fp ->
      let a = Ring.route before fp and b = Ring.route after fp in
      b = a || b = joiner)
    keys

(* -- circuit breaker -- *)

let test_breaker_state_machine () =
  let config =
    { Breaker.failure_threshold = 2; cooldown_base = 0.5; cooldown_cap = 1.25 }
  in
  let b = Breaker.create ~config () in
  let now = 1000. in
  check_bool "starts closed" true (Breaker.state b = Breaker.Closed);
  check_bool "closed admits" true (Breaker.acquire b ~now);
  (* failures below the threshold keep it closed *)
  Breaker.record_failure b ~now;
  check_bool "one failure stays closed" true (Breaker.state b = Breaker.Closed);
  (* a success clears the count: the threshold is consecutive *)
  Breaker.record_success b;
  Breaker.record_failure b ~now;
  check_bool "count was reset" true (Breaker.state b = Breaker.Closed);
  Breaker.record_failure b ~now;
  check_bool "threshold trips open" true (Breaker.state b = Breaker.Open);
  check_bool "open rejects" false (Breaker.acquire b ~now:(now +. 0.1));
  (* a straggler failure during the open period must not extend it *)
  Breaker.record_failure b ~now:(now +. 0.4);
  check_bool "cooldown elapsed: one probe admitted" true (Breaker.acquire b ~now:(now +. 0.6));
  check_bool "half-open" true (Breaker.state b = Breaker.Half_open);
  check_bool "half-open admits only the probe" false (Breaker.acquire b ~now:(now +. 0.6));
  (* a failed probe re-opens with the cooldown doubled *)
  Breaker.record_failure b ~now:(now +. 0.6);
  check_bool "re-opened" true (Breaker.state b = Breaker.Open);
  check_bool "doubled cooldown" true (Breaker.cooldown b = 1.0);
  check_bool "still cooling at +0.9" false (Breaker.acquire b ~now:(now +. 1.5));
  check_bool "probe after the longer cooldown" true (Breaker.acquire b ~now:(now +. 1.7));
  Breaker.record_failure b ~now:(now +. 1.7);
  check_bool "backoff capped" true (Breaker.cooldown b = 1.25);
  (* a successful probe closes and forgets the backoff *)
  check_bool "probe admitted at the cap" true (Breaker.acquire b ~now:(now +. 3.))
  ;
  Breaker.record_success b;
  check_bool "closed again" true (Breaker.state b = Breaker.Closed);
  check_bool "cooldown back to base" true (Breaker.cooldown b = 0.5);
  (* reset forgives an open breaker outright (respawned backend) *)
  Breaker.record_failure b ~now;
  Breaker.record_failure b ~now;
  check_bool "tripped for the reset test" true (Breaker.state b = Breaker.Open);
  Breaker.reset b;
  check_bool "reset closes" true (Breaker.state b = Breaker.Closed);
  check_bool "reset admits" true (Breaker.acquire b ~now);
  (* construction rejects nonsense *)
  List.iter
    (fun config ->
      match Breaker.create ~config () with
      | _ -> Alcotest.fail "accepted a degenerate breaker config"
      | exception Invalid_argument _ -> ())
    [
      { Breaker.failure_threshold = 0; cooldown_base = 0.5; cooldown_cap = 10. };
      { Breaker.failure_threshold = 3; cooldown_base = 0.; cooldown_cap = 10. };
      { Breaker.failure_threshold = 3; cooldown_base = 0.5; cooldown_cap = 0.1 };
    ]

(* -- client retry through a daemon restart -- *)

let test_clean_close_is_retryable () =
  (* a peer that vanishes between accept and reply must classify as a
     transient Io_error (exit 3, retried), never Corrupt_binary *)
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.close a;
  (match Protocol.read_response b with
  | Error (Dse_error.Io_error _) -> ()
  | Error e -> Alcotest.failf "wrong class for a clean close: %s" (Dse_error.to_string e)
  | Ok _ -> Alcotest.fail "read a response from a closed socket");
  Unix.close b

let test_retry_rides_through_restart () =
  let socket = temp_socket_path () in
  (* leave a stale socket file behind, as a crashed daemon would: the
     first attempts see ECONNREFUSED rather than ENOENT *)
  let stale = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind stale (Unix.ADDR_UNIX socket);
  Unix.close stale;
  let slot = Atomic.make None in
  let starter =
    Domain.spawn (fun () ->
        Unix.sleepf 0.4;
        let server, runner = start_server (server_config socket) in
        Atomic.set slot (Some server);
        Domain.join runner)
  in
  Fun.protect
    ~finally:(fun () ->
      let rec wait () =
        match Atomic.get slot with
        | Some server -> Server.stop server
        | None ->
          Unix.sleepf 0.01;
          wait ()
      in
      wait ();
      Domain.join starter;
      if Sys.file_exists socket then Sys.remove socket)
    (fun () ->
      let trace = trace_of_seed 2 in
      (* without retries the window is fatal... *)
      (match Client.submit ~socket ~name:"eager" trace with
      | Error (Dse_error.Io_error _) -> ()
      | Error e -> Alcotest.failf "wrong error class: %s" (Dse_error.to_string e)
      | Ok _ -> Alcotest.fail "submit succeeded before the daemon started");
      (* ...with retries the same call rides through the restart *)
      let payload =
        ok_or_fail
          (Client.submit ~socket ~retries:10 ~retry_base:0.1 ~retry_cap:20. ~name:"patient"
             trace)
      in
      expect_table "patient" trace payload)

(* -- node identity across respawns -- *)

let test_node_identity_across_restart () =
  let socket = temp_socket_path () in
  let run_once () =
    let server = start_server (server_config ~node_id:"alpha" socket) in
    Fun.protect
      ~finally:(fun () -> stop_server server)
      (fun () -> ok_or_fail (Client.health ~socket))
  in
  let first = run_once () in
  Unix.sleepf 0.02;
  let second = run_once () in
  if Sys.file_exists socket then Sys.remove socket;
  check_bool "configured id" true (first.Protocol.node_id = "alpha");
  check_bool "id is stable across the respawn" true
    (second.Protocol.node_id = first.Protocol.node_id);
  check_bool "epoch is positive" true (first.Protocol.start_epoch > 0.);
  check_bool "respawn has a newer epoch" true
    (second.Protocol.start_epoch > first.Protocol.start_epoch);
  (* defaults: a TCP daemon identifies by its TCP address, a local one
     by its socket path *)
  let port = free_port () in
  let tcp_addr = Printf.sprintf "127.0.0.1:%d" port in
  let tcp_socket = temp_socket_path () in
  let server = start_server (server_config ~tcp:tcp_addr tcp_socket) in
  let tcp_health =
    Fun.protect
      ~finally:(fun () ->
        stop_server server;
        if Sys.file_exists tcp_socket then Sys.remove tcp_socket)
      (fun () -> ok_or_fail (Client.health ~socket:tcp_socket))
  in
  check_bool "default tcp identity" true (tcp_health.Protocol.node_id = tcp_addr);
  let uds_socket = temp_socket_path () in
  let server = start_server (server_config uds_socket) in
  let uds_health =
    Fun.protect
      ~finally:(fun () ->
        stop_server server;
        if Sys.file_exists uds_socket then Sys.remove uds_socket)
      (fun () -> ok_or_fail (Client.health ~socket:uds_socket))
  in
  check_bool "default uds identity" true (uds_health.Protocol.node_id = uds_socket)

(* -- the routing gateway -- *)

let test_router_identity_and_locality () =
  with_backends 3 (fun backends _servers ->
      with_router (router_config backends) (fun addr router ->
          ok_or_fail (Client.ping ~socket:addr);
          let traces = List.init 12 (fun i -> (Printf.sprintf "t%d" i, trace_of_seed i)) in
          (* every routed answer is bit-identical to the direct pipeline *)
          List.iter
            (fun (name, trace) ->
              let payload = ok_or_fail (Client.submit ~socket:addr ~name trace) in
              expect_table name trace payload)
            traces;
          (* fingerprint routing spread the jobs over several backends *)
          let loads =
            List.map
              (fun socket -> (ok_or_fail (Client.server_stats ~socket)).Protocol.jobs_completed)
              backends
          in
          check_int "all jobs accounted for" (List.length traces)
            (List.fold_left ( + ) 0 loads);
          check_bool "load spread over >= 2 backends" true
            (List.length (List.filter (fun n -> n > 0) loads) >= 2);
          (* a repeat routes to the same backend and hits its cache *)
          let name, trace = List.hd traces in
          let repeat = ok_or_fail (Client.submit ~socket:addr ~name trace) in
          check_bool "repeat is a cache hit" true repeat.Protocol.cache_hit;
          (* health through the gateway reaches a real backend *)
          let h = ok_or_fail (Client.health ~socket:addr) in
          check_bool "health forwarded to a member" true (List.mem h.Protocol.node_id backends);
          let s = Router.stats router in
          check_bool "no failovers on a healthy fleet" true (s.Router.failovers = 0);
          check_bool "no hedges on a fast fleet" true (s.Router.hedged = 0)))

let test_router_failover_past_dead_backend () =
  with_backends 3 (fun backends servers ->
      with_router (router_config backends) (fun addr router ->
          (* predict routing with an identical ring, then kill exactly
             the backend that owns a chosen trace *)
          let ring = Ring.create ~replicas:64 backends in
          let victim_name, victim_trace =
            let rec pick i =
              let trace = trace_of_seed (100 + i) in
              let owner = Ring.route ring (Trace.fingerprint trace) in
              if owner = List.nth backends 0 then trace else pick (i + 1)
            in
            (List.nth backends 0, pick 0)
          in
          stop_server (List.nth servers 0);
          if Sys.file_exists victim_name then Sys.remove victim_name;
          (* the victim's hash range fails over; the answer is still
             bit-identical *)
          let payload = ok_or_fail (Client.submit ~socket:addr ~name:"orphan" victim_trace) in
          expect_table "orphan" victim_trace payload;
          let s = Router.stats router in
          check_bool "failover recorded" true (s.Router.failovers >= 1);
          check_int "no exhaustion" 0 s.Router.unavailable;
          (* repeats of the rerouted trace warm the fallback's cache *)
          let again = ok_or_fail (Client.submit ~socket:addr ~name:"orphan" victim_trace) in
          check_bool "spill cache warmed" true again.Protocol.cache_hit;
          (* and unrelated traffic still round-robins over the survivors *)
          List.iter
            (fun i ->
              let trace = trace_of_seed (200 + i) in
              let name = Printf.sprintf "after%d" i in
              expect_table name trace (ok_or_fail (Client.submit ~socket:addr ~name trace)))
            [ 0; 1; 2; 3 ]))

let test_router_exhaustion_is_typed () =
  (* two configured backends, neither running *)
  let ghosts = [ temp_socket_path (); temp_socket_path () ] in
  with_router (router_config ghosts) (fun addr _router ->
      let trace = trace_of_seed 3 in
      match Client.submit ~socket:addr ~name:"doomed" trace with
      | Error (Dse_error.Backend_unavailable { node; attempts } as e) ->
        check_bool "owning node reported" true (List.mem node ghosts);
        check_bool "attempts counted" true (attempts >= 1 && attempts <= 2);
        check_int "exit code 9" 9 (Dse_error.exit_code e)
      | Error e -> Alcotest.failf "wrong error class: %s" (Dse_error.to_string e)
      | Ok _ -> Alcotest.fail "a dead fleet produced a result")

let test_router_config_validation () =
  List.iter
    (fun config ->
      match Router.create ~log:(fun _ -> ()) config with
      | Ok _ -> Alcotest.fail "accepted a degenerate router config"
      | Error (Dse_error.Constraint_violation _) -> ()
      | Error e -> Alcotest.failf "wrong error class: %s" (Dse_error.to_string e))
    [
      { Router.default_config with Router.listen = temp_socket_path (); backends = [] };
      { Router.default_config with
        Router.listen = temp_socket_path ();
        backends = [ "/tmp/a.sock"; "/tmp/a.sock" ] };
      { (router_config [ "/tmp/a.sock" ]) with Router.forwarders = 0 };
      { (router_config [ "/tmp/a.sock" ]) with Router.hedge = Router.Fixed 0. };
      { (router_config [ "/tmp/a.sock" ]) with Router.replicas = 0 };
    ]

(* Wide enough to shard at --domains 2 (>= 2 x Streaming.min_shard_refs),
   tiny working set so the healthy run is sub-second — the same shape
   the watchdog tests use. *)
let hang_trace = lazy (Synthetic.loop ~base:0 ~body:256 ~iterations:544)

let test_router_hedges_slow_backend () =
  let trace = Lazy.force hang_trace in
  check_bool "trace shards at 2 domains" true
    (Trace.length trace >= 2 * Streaming.min_shard_refs);
  with_backends ~workers:1 2 (fun backends _servers ->
      with_router
        (router_config ~hedge:(Router.Fixed 0.3) backends)
        (fun addr router ->
          (* the first worker to run shard 0 wedges silently; the
             hedge must win on the other backend *)
          Fault.set (Some { Fault.kind = Fault.Hang; shard = 0; times = 1 });
          Fun.protect
            ~finally:(fun () ->
              Fault.set None;
              Fault.release_hangs ())
            (fun () ->
              let started = Unix.gettimeofday () in
              let payload =
                ok_or_fail (Client.submit ~socket:addr ~domains:2 ~name:"slow" trace)
              in
              let elapsed = Unix.gettimeofday () -. started in
              check_bool "hedge answer is bit-identical" true
                (payload.Protocol.outcome
                = Protocol.Table (Analytical_dse.run ~name:"slow" trace));
              let s = Router.stats router in
              check_bool "a hedge was fired" true (s.Router.hedged >= 1);
              check_bool "the hedge won" true (s.Router.hedge_wins >= 1);
              (* rescued well before the request timeout *)
              check_bool
                (Printf.sprintf "rescued by the hedge (%.2f s)" elapsed)
                true (elapsed < 30.))))

let suites =
  [
    ( "router:transport",
      [
        Alcotest.test_case "address grammar" `Quick test_transport_parse;
        Alcotest.test_case "listeners and stale sockets" `Quick test_transport_listeners;
        Alcotest.test_case "tcp loopback identity" `Quick test_tcp_loopback_identity;
        Alcotest.test_case "frames survive byte-at-a-time delivery" `Quick
          test_frame_reads_survive_dripping;
      ] );
    ( "router:ring",
      [
        Alcotest.test_case "routing and successors" `Quick test_ring_basics;
        Alcotest.test_case "membership churn moves ~1/N keys" `Quick test_ring_membership_churn;
        qcheck 150 "successors are a rotation of the node set" gen_ring_case
          prop_ring_membership;
        qcheck 150 "a join moves keys only to the joiner" gen_ring_case
          prop_ring_join_moves_only_to_joiner;
      ] );
    ( "router:breaker",
      [ Alcotest.test_case "state machine and backoff" `Quick test_breaker_state_machine ] );
    ( "router:retry",
      [
        Alcotest.test_case "clean close is retryable" `Quick test_clean_close_is_retryable;
        Alcotest.test_case "retry rides through a restart" `Quick
          test_retry_rides_through_restart;
        Alcotest.test_case "node identity across restarts" `Quick
          test_node_identity_across_restart;
      ] );
    ( "router:gateway",
      [
        Alcotest.test_case "identity and cache locality" `Quick
          test_router_identity_and_locality;
        Alcotest.test_case "failover past a dead backend" `Quick
          test_router_failover_past_dead_backend;
        Alcotest.test_case "exhaustion is typed" `Quick test_router_exhaustion_is_typed;
        Alcotest.test_case "config validation" `Quick test_router_config_validation;
        Alcotest.test_case "hedging rescues a wedged backend" `Quick
          test_router_hedges_slow_backend;
      ] );
  ]
