(* Separate entry point for the fork-based supervisor tests: OCaml
   forbids [Unix.fork] in a process that has ever spawned a domain, and
   the main [runner] exercises worker-pool domains long before the
   supervision suites run. This executable forks first, so the
   restriction never bites. *)

let () = Alcotest.run "cache_dse_supervisor" Test_supervision.supervisor_suites
