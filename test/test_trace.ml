(* Tests for the trace substrate: builder, stripping (paper Tables 1/2),
   statistics (Tables 5/6 methodology), and file I/O. *)

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let check_int_array = Alcotest.(check (array int))

let test_build_and_get () =
  let t = Trace.create ~capacity:2 () in
  Trace.add t ~addr:5 ~kind:Trace.Read;
  Trace.add t ~addr:6 ~kind:Trace.Write;
  Trace.add t ~addr:7 ~kind:Trace.Fetch;
  check_int "length" 3 (Trace.length t);
  check_int "addr 1" 6 (Trace.addr t 1);
  check_bool "kind 1" true (Trace.equal_kind Trace.Write (Trace.kind t 1));
  check_bool "kind 2" true (Trace.equal_kind Trace.Fetch (Trace.kind t 2));
  let a = Trace.get t 0 in
  check_int "get addr" 5 a.Trace.addr

let test_growth () =
  let t = Trace.create ~capacity:1 () in
  for k = 0 to 999 do
    Trace.add t ~addr:k ~kind:Trace.Read
  done;
  check_int "length" 1000 (Trace.length t);
  check_int "last" 999 (Trace.addr t 999)

let test_negative_address_rejected () =
  let t = Trace.create () in
  Alcotest.check_raises "negative" (Invalid_argument "Trace.add: negative address")
    (fun () -> Trace.add t ~addr:(-1) ~kind:Trace.Read)

let test_index_out_of_range () =
  let t = Trace.of_addresses [| 1 |] in
  Alcotest.check_raises "get" (Invalid_argument "Trace: index 1 out of [0, 1)") (fun () ->
      ignore (Trace.get t 1))

let test_of_to_list () =
  let accesses =
    [
      { Trace.addr = 1; kind = Trace.Fetch };
      { Trace.addr = 2; kind = Trace.Read };
      { Trace.addr = 1; kind = Trace.Write };
    ]
  in
  let t = Trace.of_list accesses in
  check_bool "roundtrip" true (Trace.to_list t = accesses)

let test_filter_kinds () =
  let t =
    Trace.of_list
      [
        { Trace.addr = 1; kind = Trace.Fetch };
        { Trace.addr = 2; kind = Trace.Read };
        { Trace.addr = 3; kind = Trace.Write };
      ]
  in
  let data = Trace.filter Trace.is_data t in
  let fetches = Trace.filter Trace.is_fetch t in
  check_int_array "data" [| 2; 3 |] (Trace.addresses data);
  check_int_array "fetches" [| 1 |] (Trace.addresses fetches)

let test_max_addr_bits () =
  check_int "empty max" 0 (Trace.max_addr (Trace.create ()));
  check_int "empty bits" 1 (Trace.address_bits (Trace.create ()));
  let t = Trace.of_addresses [| 0; 7; 3 |] in
  check_int "max" 7 (Trace.max_addr t);
  check_int "bits 7" 3 (Trace.address_bits t);
  check_int "bits 8" 4 (Trace.address_bits (Trace.of_addresses [| 8 |]))

let test_append () =
  let a = Trace.of_addresses [| 1; 2 |] in
  let b = Trace.of_addresses ~kind:Trace.Write [| 3 |] in
  Trace.append a b;
  check_int "length" 3 (Trace.length a);
  check_bool "kind" true (Trace.equal_kind Trace.Write (Trace.kind a 2))

(* -- stripping -- *)

let test_strip_paper_example () =
  let s = Strip.strip (Paper_example.trace ()) in
  check_int "N" 10 (Strip.num_refs s);
  check_int "N'" 5 (Strip.num_unique s);
  check_int_array "uniques in first-occurrence order" Paper_example.uniques s.Strip.uniques;
  check_int_array "reconstruct" Paper_example.addresses (Strip.reconstruct s);
  check_int "address bits" 4 (Strip.address_bits s)

let test_strip_ids_dense () =
  let s = Strip.strip (Paper_example.trace ()) in
  check_int_array "ids" [| 0; 1; 2; 3; 0; 4; 1; 3; 0; 2 |] s.Strip.ids

let test_strip_empty () =
  let s = Strip.strip (Trace.create ()) in
  check_int "N" 0 (Strip.num_refs s);
  check_int "N'" 0 (Strip.num_unique s)

let test_strip_all_same () =
  let s = Strip.strip (Trace.of_addresses (Array.make 50 9)) in
  check_int "N'" 1 (Strip.num_unique s);
  check_int "address_of" 9 (Strip.address_of s 0)

let prop name gen f = QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count:200 ~name gen f)

let gen_addresses = QCheck2.Gen.(array_size (int_range 0 300) (int_bound 63))

let prop_strip_reconstruct =
  prop "strip/reconstruct roundtrip" gen_addresses (fun addrs ->
      Strip.reconstruct (Strip.strip_addresses addrs) = addrs)

let prop_strip_unique_count =
  prop "N' = distinct count" gen_addresses (fun addrs ->
      let module Iset = Set.Make (Int) in
      Strip.num_unique (Strip.strip_addresses addrs)
      = Iset.cardinal (Iset.of_list (Array.to_list addrs)))

let prop_strip_first_occurrence_order =
  prop "uniques keep first-occurrence order" gen_addresses (fun addrs ->
      let s = Strip.strip_addresses addrs in
      let seen = Hashtbl.create 16 in
      let firsts = ref [] in
      Array.iter
        (fun a ->
          if not (Hashtbl.mem seen a) then begin
            Hashtbl.add seen a ();
            firsts := a :: !firsts
          end)
        addrs;
      s.Strip.uniques = Array.of_list (List.rev !firsts))

(* -- statistics -- *)

let test_stats_paper_example () =
  let stats = Stats.compute (Paper_example.trace ()) in
  check_int "N" 10 stats.Stats.n;
  check_int "N'" 5 stats.Stats.n_unique;
  check_int "bits" 4 stats.Stats.address_bits;
  (* no consecutive repeats: depth-1 total misses = 10, minus 5 cold *)
  check_int "max misses" 5 stats.Stats.max_misses

let test_stats_repeats () =
  let stats = Stats.compute (Trace.of_addresses [| 4; 4; 4 |]) in
  check_int "max misses all-same" 0 stats.Stats.max_misses;
  let stats = Stats.compute (Trace.of_addresses [| 1; 2; 1; 2 |]) in
  check_int "max misses alternating" 2 stats.Stats.max_misses

let test_stats_budget () =
  let stats = Stats.compute (Trace.of_addresses [| 1; 2; 1; 2; 1; 2; 1; 2; 1; 2; 1; 2 |]) in
  check_int "max misses" 10 stats.Stats.max_misses;
  check_int "5%" 0 (Stats.budget stats ~percent:5);
  check_int "20%" 2 (Stats.budget stats ~percent:20);
  check_int "100%" 10 (Stats.budget stats ~percent:100);
  Alcotest.check_raises "negative percent"
    (Invalid_argument "Stats.budget: negative percent") (fun () ->
      ignore (Stats.budget stats ~percent:(-1)))

let prop_stats_max_misses_vs_simulator =
  prop "max_misses equals depth-1 simulator" gen_addresses (fun addrs ->
      let trace = Trace.of_addresses addrs in
      let stats = Stats.compute trace in
      let sim = Cache.simulate (Config.make ~depth:1 ~associativity:1 ()) trace in
      stats.Stats.max_misses = sim.Cache.misses)

(* -- file I/O -- *)

let io_ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected I/O error: %s" (Dse_error.to_string e)

let roundtrip trace =
  let path = Filename.temp_file "dse_trace" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      io_ok (Trace_io.save path trace);
      (io_ok (Trace_io.load path)).Trace_io.trace)

let test_io_roundtrip () =
  let t =
    Trace.of_list
      [
        { Trace.addr = 0x1a3f; kind = Trace.Read };
        { Trace.addr = 0; kind = Trace.Fetch };
        { Trace.addr = 77; kind = Trace.Write };
      ]
  in
  check_bool "roundtrip" true (Trace.to_list (roundtrip t) = Trace.to_list t)

let test_io_comments_and_blanks () =
  let contents = "# a comment\n\nR 0x10\n  W 0x20  \n" in
  let path = Filename.temp_file "dse_trace" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc contents;
      close_out oc;
      let t = (io_ok (Trace_io.load path)).Trace_io.trace in
      check_int "length" 2 (Trace.length t);
      check_int_array "addresses" [| 0x10; 0x20 |] (Trace.addresses t))

let test_io_malformed () =
  let attempt contents =
    let path = Filename.temp_file "dse_trace" ".txt" in
    Fun.protect
      ~finally:(fun () -> Sys.remove path)
      (fun () ->
        let oc = open_out path in
        output_string oc contents;
        close_out oc;
        match Trace_io.load path with Ok _ -> None | Error e -> Some e)
  in
  check_bool "bad kind" true (attempt "Q 0x10\n" <> None);
  check_bool "bad address" true (attempt "R zz\n" <> None);
  check_bool "missing field" true (attempt "R\n" <> None);
  check_bool "line number reported" true
    (match attempt "R 0x1\nQ 0x2\n" with
    | Some (Dse_error.Parse_error { line; _ }) -> line = 2
    | Some _ | None -> false)

let test_binary_roundtrip () =
  let t =
    Trace.of_list
      [
        { Trace.addr = 0; kind = Trace.Fetch };
        { Trace.addr = 0x7FFFFFF; kind = Trace.Read };
        { Trace.addr = 129; kind = Trace.Write };
      ]
  in
  let path = Filename.temp_file "dse_trace" ".bin" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      io_ok (Trace_io.save_binary path t);
      let back = (io_ok (Trace_io.load_binary path)).Trace_io.trace in
      check_bool "roundtrip" true (Trace.to_list back = Trace.to_list t))

let prop_binary_roundtrip =
  prop "binary roundtrip (random traces)" gen_addresses (fun addrs ->
      let t = Trace.of_addresses addrs in
      let path = Filename.temp_file "dse_trace" ".bin" in
      Fun.protect
        ~finally:(fun () -> Sys.remove path)
        (fun () ->
          match Trace_io.save_binary path t with
          | Error _ -> false
          | Ok () -> (
            match Trace_io.load_binary path with
            | Ok i -> Trace.to_list i.Trace_io.trace = Trace.to_list t
            | Error _ -> false)))

let test_binary_bad_magic () =
  let path = Filename.temp_file "dse_trace" ".bin" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out_bin path in
      output_string oc "NOPE";
      close_out oc;
      check_bool "rejected" true
        (match Trace_io.load_binary path with
        | Error (Dse_error.Corrupt_binary _) -> true
        | Ok _ | Error _ -> false))

let test_dinero_import () =
  let contents = "0 1a3f\n1 0\n2 7f\n\n0 0x10\n" in
  let path = Filename.temp_file "dse_trace" ".din" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc contents;
      close_out oc;
      let t = (io_ok (Trace_io.load_dinero path)).Trace_io.trace in
      check_int "length" 4 (Trace.length t);
      check_int_array "addresses" [| 0x1a3f; 0; 0x7f; 0x10 |] (Trace.addresses t);
      check_bool "kinds" true
        (Trace.equal_kind Trace.Read (Trace.kind t 0)
        && Trace.equal_kind Trace.Write (Trace.kind t 1)
        && Trace.equal_kind Trace.Fetch (Trace.kind t 2)))

let test_dinero_malformed () =
  let attempt contents =
    let path = Filename.temp_file "dse_trace" ".din" in
    Fun.protect
      ~finally:(fun () -> Sys.remove path)
      (fun () ->
        let oc = open_out path in
        output_string oc contents;
        close_out oc;
        match Trace_io.load_dinero path with
        | Error (Dse_error.Parse_error _) -> true
        | Ok _ | Error _ -> false)
  in
  check_bool "bad label" true (attempt "9 1a\n");
  check_bool "bad address" true (attempt "0 zz\n")

let suites =
  [
    ( "trace:unit",
      [
        Alcotest.test_case "build and get" `Quick test_build_and_get;
        Alcotest.test_case "growth" `Quick test_growth;
        Alcotest.test_case "negative address rejected" `Quick test_negative_address_rejected;
        Alcotest.test_case "index out of range" `Quick test_index_out_of_range;
        Alcotest.test_case "of/to list" `Quick test_of_to_list;
        Alcotest.test_case "filter by kind" `Quick test_filter_kinds;
        Alcotest.test_case "max_addr / address_bits" `Quick test_max_addr_bits;
        Alcotest.test_case "append" `Quick test_append;
      ] );
    ( "trace:strip",
      [
        Alcotest.test_case "paper running example (Tables 1/2)" `Quick test_strip_paper_example;
        Alcotest.test_case "identifier sequence" `Quick test_strip_ids_dense;
        Alcotest.test_case "empty trace" `Quick test_strip_empty;
        Alcotest.test_case "single repeated address" `Quick test_strip_all_same;
        prop_strip_reconstruct;
        prop_strip_unique_count;
        prop_strip_first_occurrence_order;
      ] );
    ( "trace:stats",
      [
        Alcotest.test_case "paper running example" `Quick test_stats_paper_example;
        Alcotest.test_case "repeats" `Quick test_stats_repeats;
        Alcotest.test_case "budget" `Quick test_stats_budget;
        prop_stats_max_misses_vs_simulator;
      ] );
    ( "trace:io",
      [
        Alcotest.test_case "roundtrip" `Quick test_io_roundtrip;
        Alcotest.test_case "comments and blanks" `Quick test_io_comments_and_blanks;
        Alcotest.test_case "malformed input" `Quick test_io_malformed;
        Alcotest.test_case "binary roundtrip" `Quick test_binary_roundtrip;
        prop_binary_roundtrip;
        Alcotest.test_case "binary bad magic" `Quick test_binary_bad_magic;
        Alcotest.test_case "dinero import" `Quick test_dinero_import;
        Alcotest.test_case "dinero malformed" `Quick test_dinero_malformed;
      ] );
  ]
