(* Tests for the self-healing serving features: cooperative deadlines
   through the kernels, the single-flight inflight table, the LRU bound
   on the result cache, the crash-safe WAL (torn tails, bit flips,
   compaction, warm restart), client retry with a wall-clock cap, and
   the quiet handling of liveness probes and stalled peers. *)

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let ok_or_fail = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error: %s" (Dse_error.to_string e)

let expect_deadline label = function
  | Error (Dse_error.Deadline_exceeded { elapsed; limit }) ->
    check_bool (label ^ ": elapsed >= limit") true (elapsed >= limit)
  | Error e -> Alcotest.failf "%s: wrong error class: %s" label (Dse_error.to_string e)
  | Ok _ -> Alcotest.failf "%s: expired deadline produced a result" label

let raises_deadline label f =
  match f () with
  | _ -> Alcotest.failf "%s: expired token did not stop the kernel" label
  | exception Dse_error.Error (Dse_error.Deadline_exceeded _) -> ()
  | exception e -> Alcotest.failf "%s: wrong exception: %s" label (Printexc.to_string e)

(* -- cancel tokens -- *)

let expired_token () =
  let cancel = Cancel.after 3600. in
  Cancel.cancel cancel;
  cancel

let test_cancel_token () =
  Cancel.check Cancel.none;
  check_bool "none never expires" false (Cancel.expired Cancel.none);
  check_bool "none has no limit" true (Cancel.limit Cancel.none = None);
  let live = Cancel.after 3600. in
  Cancel.check live;
  check_bool "live" false (Cancel.expired live);
  check_bool "limit echoed" true (Cancel.limit live = Some 3600.);
  let cancel = expired_token () in
  check_bool "cancelled" true (Cancel.expired cancel);
  (match Cancel.check cancel with
  | () -> Alcotest.fail "cancelled token passed check"
  | exception Dse_error.Error (Dse_error.Deadline_exceeded { limit; _ }) ->
    check_bool "limit reported" true (limit = 3600.));
  (* a real expiry, not just an explicit cancel *)
  let tiny = Cancel.after 1e-6 in
  Unix.sleepf 0.002;
  check_bool "tiny expired" true (Cancel.expired tiny);
  List.iter
    (fun bad ->
      match Cancel.after bad with
      | _ -> Alcotest.failf "accepted deadline %f" bad
      | exception Invalid_argument _ -> ())
    [ 0.; -1.; infinity; nan ];
  check_int "exit code 7" 7
    (Dse_error.exit_code (Dse_error.Deadline_exceeded { elapsed = 1.; limit = 0.5 }))

let test_kernels_honour_cancellation () =
  let trace = Synthetic.loop ~base:0 ~body:512 ~iterations:8 in
  let prepared = Analytical.prepare trace in
  List.iter
    (fun (label, method_, domains) ->
      raises_deadline label (fun () ->
          Analytical.histograms ~cancel:(expired_token ()) ~method_ ~domains prepared);
      (* an un-expired token changes nothing *)
      let unconstrained = Analytical.histograms ~method_ ~domains prepared in
      let watched =
        Analytical.histograms ~cancel:(Cancel.after 3600.) ~method_ ~domains prepared
      in
      check_bool (label ^ ": identical under a live token") true (unconstrained = watched))
    [
      ("streaming", Analytical.Streaming, 1);
      ("streaming-x4", Analytical.Streaming, 4);
      ("dfs", Analytical.Dfs, 1);
      ("dfs-x4", Analytical.Dfs, 4);
      ("bcat", Analytical.Bcat_walk, 1);
    ];
  (* cancellation must not be eaten by the shard recovery ladder: the
     expiry surfaces as Deadline_exceeded, never as a Shard_failure
     after three futile retries *)
  raises_deadline "no shard retries" (fun () ->
      Streaming.histograms ~cancel:(expired_token ()) ~domains:4 ~shard_threshold:1
        (Analytical.stripped prepared) ~max_level:(Analytical.max_level prepared))

(* -- LRU result cache -- *)

let key fp = { Result_cache.fingerprint = Int64.of_int fp; method_tag = 0; domains = 1; max_level = -1 }

let entry seed =
  Result_cache.Exact
    {
      stats = { Stats.n = 10 * seed; n_unique = seed; address_bits = 3; max_misses = 9 };
      histograms = [| [| seed |]; [| seed; seed + 1 |] |];
    }

let test_cache_lru_bound () =
  let cache = Result_cache.create ~capacity:2 () in
  Result_cache.store cache (key 1) (entry 1);
  Result_cache.store cache (key 2) (entry 2);
  (* touching key 1 makes key 2 the eviction victim *)
  check_bool "hit 1" true (Result_cache.find cache (key 1) = Some (entry 1));
  Result_cache.store cache (key 3) (entry 3);
  let c = Result_cache.counters cache in
  check_int "entries bounded" 2 c.Result_cache.entries;
  check_int "one eviction" 1 c.Result_cache.evictions;
  check_bool "lru evicted" true (Result_cache.find cache (key 2) = None);
  check_bool "recent survived" true (Result_cache.find cache (key 1) = Some (entry 1));
  check_bool "new present" true (Result_cache.find cache (key 3) = Some (entry 3));
  (* snapshot is oldest-first: replaying it through store reproduces
     contents and recency *)
  let snap = Result_cache.snapshot cache in
  check_int "snapshot size" 2 (List.length snap);
  let replayed = Result_cache.create ~capacity:2 () in
  List.iter (fun (k, e) -> Result_cache.store replayed k e) snap;
  check_bool "snapshot order preserves recency" true
    (Result_cache.snapshot replayed = snap);
  check_bool "capacity validated" true
    (match Result_cache.create ~capacity:0 () with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* -- inflight table -- *)

let test_inflight () =
  let t = Inflight.create () in
  let dummy_fd = Unix.stdin in
  let waiter name = { Inflight.fd = dummy_fd; name; query = Protocol.Budget 1 } in
  check_bool "leader" true (Inflight.begin_ t (key 1) (waiter "a") = `Leader);
  check_bool "attached" true (Inflight.begin_ t (key 1) (waiter "b") = `Attached);
  check_bool "attached 2" true (Inflight.begin_ t (key 1) (waiter "c") = `Attached);
  (* a different key is its own flight *)
  check_bool "other key leads" true (Inflight.begin_ t (key 2) (waiter "d") = `Leader);
  check_int "coalesced" 2 (Inflight.coalesced t);
  let waiters = Inflight.complete t (key 1) in
  check_bool "attach order" true (List.map (fun w -> w.Inflight.name) waiters = [ "b"; "c" ]);
  check_bool "flight gone" true (Inflight.complete t (key 1) = []);
  check_bool "next leader" true (Inflight.begin_ t (key 1) (waiter "e") = `Leader)

(* -- WAL -- *)

let temp_wal () =
  let path = Filename.temp_file "dse_wal" ".log" in
  Sys.remove path;
  path

let with_wal ?(capacity = 64) ?compact_factor path f =
  let store = Hashtbl.create 8 in
  let wal =
    ok_or_fail
      (Wal.open_ ?compact_factor ~capacity
         ~snapshot:(fun () -> Hashtbl.fold (fun k e acc -> (k, e) :: acc) store [])
         path)
  in
  Fun.protect ~finally:(fun () -> Wal.close wal) (fun () -> f wal store)

let read_file path = In_channel.with_open_bin path In_channel.input_all

let write_file path data =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc data)

let test_wal_roundtrip () =
  let path = temp_wal () in
  check_bool "missing file is empty" true ((ok_or_fail (Wal.replay path)).Wal.entries = []);
  with_wal path (fun wal _ ->
      List.iter (fun i -> ok_or_fail (Wal.append wal (key i) (entry i))) [ 1; 2; 3 ]);
  let r = ok_or_fail (Wal.replay path) in
  check_int "intact" 3 r.Wal.intact;
  check_int "no damage" 0 r.Wal.damaged;
  check_bool "no truncation" false r.Wal.truncated;
  check_bool "append order" true (r.Wal.entries = [ (key 1, entry 1); (key 2, entry 2); (key 3, entry 3) ]);
  Sys.remove path

let test_wal_torn_tail () =
  let path = temp_wal () in
  with_wal path (fun wal _ ->
      List.iter (fun i -> ok_or_fail (Wal.append wal (key i) (entry i))) [ 1; 2; 3 ]);
  (* kill -9 mid-append: the final record is torn a few bytes short *)
  let data = read_file path in
  write_file path (String.sub data 0 (String.length data - 5));
  let r = ok_or_fail (Wal.replay path) in
  check_int "two intact" 2 r.Wal.intact;
  check_bool "truncated flagged" true r.Wal.truncated;
  check_bool "intact prefix" true (r.Wal.entries = [ (key 1, entry 1); (key 2, entry 2) ]);
  Sys.remove path

let test_wal_bitflip () =
  let path = temp_wal () in
  with_wal path (fun wal _ ->
      List.iter (fun i -> ok_or_fail (Wal.append wal (key i) (entry i))) [ 1; 2; 3 ]);
  (* flip one payload byte inside the middle record: its CRC fails, the
     replay resyncs on the next magic, and both neighbours survive *)
  let data = read_file path in
  let record_len = String.length data / 3 in
  let flip_at = record_len + (record_len / 2) in
  let flipped = Bytes.of_string data in
  Bytes.set flipped flip_at (Char.chr (Char.code (Bytes.get flipped flip_at) lxor 0x40));
  write_file path (Bytes.to_string flipped);
  let r = ok_or_fail (Wal.replay path) in
  check_int "two intact" 2 r.Wal.intact;
  check_bool "damage counted" true (r.Wal.damaged >= 1);
  check_bool "neighbours recovered" true
    (r.Wal.entries = [ (key 1, entry 1); (key 3, entry 3) ]);
  Sys.remove path

let test_wal_compaction () =
  let path = temp_wal () in
  with_wal ~capacity:2 ~compact_factor:2 path (fun wal store ->
      (* 4 appends of the same key reach the 2*2 trigger; the log is
         rewritten as the live snapshot — one record *)
      Hashtbl.replace store (key 9) (entry 4);
      List.iter (fun i -> ok_or_fail (Wal.append wal (key 9) (entry i))) [ 1; 2; 3; 4 ];
      check_int "counter reset" 0 (Wal.appended_since_compact wal);
      let r = ok_or_fail (Wal.replay path) in
      check_int "compacted to the snapshot" 1 r.Wal.intact;
      check_bool "live value" true (r.Wal.entries = [ (key 9, entry 4) ]);
      (* the log keeps accepting appends after compaction *)
      ok_or_fail (Wal.append wal (key 10) (entry 10));
      check_int "post-compaction append" 1 (Wal.appended_since_compact wal);
      check_int "two records" 2 (ok_or_fail (Wal.replay path)).Wal.intact);
  Sys.remove path

(* -- protocol edges: liveness probes and stalled peers -- *)

let with_socketpair f =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      try Unix.close b with Unix.Unix_error _ -> ())
    (fun () -> f a b)

let test_zero_byte_close () =
  with_socketpair (fun a b ->
      Unix.close a;
      match Protocol.read_request b with
      | Ok None -> ()
      | Ok (Some _) -> Alcotest.fail "phantom request from a closed peer"
      | Error e -> Alcotest.failf "probe treated as damage: %s" (Dse_error.to_string e));
  (* bytes followed by a close is still damage, not a probe *)
  with_socketpair (fun a b ->
      ignore (Unix.write a (Bytes.of_string "DS") 0 2);
      Unix.close a;
      match Protocol.read_request b with
      | Error (Dse_error.Corrupt_binary _) -> ()
      | Error e -> Alcotest.failf "wrong class: %s" (Dse_error.to_string e)
      | Ok _ -> Alcotest.fail "truncated frame accepted")

let test_receive_timeout_typed () =
  with_socketpair (fun _a b ->
      (* the peer never sends: SO_RCVTIMEO expires as EAGAIN, which must
         surface as the recognisable typed timeout, not a raw exception *)
      Unix.setsockopt_float b Unix.SO_RCVTIMEO 0.05;
      match Protocol.read_request b with
      | Error e ->
        check_bool "recognised by the predicate" true (Protocol.timed_out e);
        (match e with
        | Dse_error.Io_error _ -> ()
        | _ -> Alcotest.failf "wrong class: %s" (Dse_error.to_string e))
      | Ok _ -> Alcotest.fail "read succeeded with a silent peer");
  check_bool "predicate is specific" false
    (Protocol.timed_out (Dse_error.Io_error { file = "f"; message = "connection refused" }))

(* -- loopback fixtures -- *)

let temp_socket_path () =
  let path = Filename.temp_file "dse_selfheal" ".sock" in
  Sys.remove path;
  path

let with_server ?(workers = 2) ?(max_pending = 16) ?(cache_entries = Result_cache.default_capacity)
    ?wal_path ?on_job_start ?(log = fun _ -> ()) f =
  let path = temp_socket_path () in
  let server =
    match
      Server.create ?on_job_start ~log
        { Server.socket_path = path; tcp = None; node_id = None; workers; max_pending;
          cache_entries; wal_path; hang_timeout = 30.; max_job_refs = None;
          memory_budget = None;
          peers = []; replication = 2; replication_queue = 256; anti_entropy = false }
    with
    | Ok s -> s
    | Error e -> Alcotest.failf "server create: %s" (Dse_error.to_string e)
  in
  let runner = Domain.spawn (fun () -> Server.run server) in
  Fun.protect
    ~finally:(fun () ->
      Server.stop server;
      Domain.join runner;
      if Sys.file_exists path then Sys.remove path)
    (fun () -> f path server)

(* heavy enough that a millisecond deadline always expires at a poll
   point inside the kernel, cheap enough to prepare *)
let heavy_trace = lazy (Synthetic.loop ~base:0 ~body:16384 ~iterations:8)

let small_trace = lazy (Workload.data_trace (Registry.find "bcnt"))

let test_deadline_expiry_frees_worker () =
  with_server ~workers:1 (fun socket _server ->
      expect_deadline "submit"
        (Client.submit ~socket ~deadline:0.001 ~name:"doomed" (Lazy.force heavy_trace));
      (* the same worker serves the next job normally *)
      let trace = Lazy.force small_trace in
      let payload = ok_or_fail (Client.submit ~socket ~name:"bcnt" trace) in
      check_bool "worker lives on" true
        (payload.Protocol.outcome = Protocol.Table (Analytical_dse.run ~name:"bcnt" trace));
      (* an expired job is not cached: resubmitting without a deadline
         computes and succeeds *)
      let healed =
        ok_or_fail (Client.submit ~socket ~name:"healed" (Lazy.force heavy_trace))
      in
      check_bool "no poisoned cache entry" false healed.Protocol.cache_hit;
      (* a generous deadline changes nothing *)
      let relaxed =
        ok_or_fail (Client.submit ~socket ~deadline:3600. ~name:"healed" (Lazy.force heavy_trace))
      in
      check_bool "generous deadline hits cache" true relaxed.Protocol.cache_hit;
      check_bool "identical" true (healed.Protocol.outcome = relaxed.Protocol.outcome))

let test_deadline_validation () =
  with_server (fun socket _server ->
      match Client.submit ~socket ~deadline:(-1.) ~name:"bad" (Lazy.force small_trace) with
      | Error (Dse_error.Constraint_violation _) -> ()
      | Error e -> Alcotest.failf "wrong class: %s" (Dse_error.to_string e)
      | Ok _ -> Alcotest.fail "negative deadline accepted")

(* -- single flight -- *)

let test_single_flight_coalesces () =
  let kernel_runs = Atomic.make 0 in
  let started = Semaphore.Counting.make 0 in
  let gate = Semaphore.Counting.make 0 in
  let hook () =
    Atomic.incr kernel_runs;
    Semaphore.Counting.release started;
    Semaphore.Counting.acquire gate
  in
  with_server ~workers:1 ~on_job_start:hook (fun socket _server ->
      let trace = Lazy.force small_trace in
      let clients =
        List.init 8 (fun i ->
            let d = Domain.spawn (fun () -> Client.submit ~socket ~name:"burst" trace) in
            (* the first submission must become leader before the rest
               arrive, otherwise a duplicate could win the race to the
               queue *)
            if i = 0 then Semaphore.Counting.acquire started;
            d)
      in
      (* with the one worker gated, the 7 duplicates can only attach;
         wait until the daemon has seen them all *)
      let rec wait_coalesced tries =
        if tries = 0 then Alcotest.fail "duplicates never coalesced";
        let s = ok_or_fail (Client.server_stats ~socket) in
        if s.Protocol.coalesced_hits < 7 then begin
          Unix.sleepf 0.02;
          wait_coalesced (tries - 1)
        end
      in
      wait_coalesced 250;
      Semaphore.Counting.release gate;
      let payloads = List.map (fun d -> ok_or_fail (Domain.join d)) clients in
      check_int "kernel ran exactly once" 1 (Atomic.get kernel_runs);
      let reference = Analytical_dse.run ~name:"burst" trace in
      List.iter
        (fun (p : Protocol.result_payload) ->
          check_bool "every client answered identically" true
            (p.Protocol.outcome = Protocol.Table reference))
        payloads;
      let s = ok_or_fail (Client.server_stats ~socket) in
      check_int "coalesced counted" 7 s.Protocol.coalesced_hits;
      check_int "one job completed" 1 s.Protocol.jobs_completed)

(* -- crash-safe persistence -- *)

let test_restart_answers_warm () =
  let wal = temp_wal () in
  let trace = Lazy.force small_trace in
  let cold =
    with_server ~wal_path:wal (fun socket _server ->
        ok_or_fail (Client.submit ~socket ~name:"bcnt" trace))
  in
  check_bool "cold missed" false cold.Protocol.cache_hit;
  (* every append hits the log before the reply goes out, so the WAL's
     contents at any kill -9 point include every answered job; a fresh
     daemon over the same WAL answers warm and byte-identically *)
  let warm =
    with_server ~wal_path:wal (fun socket _server ->
        ok_or_fail (Client.submit ~socket ~name:"bcnt" trace))
  in
  check_bool "restart hit" true warm.Protocol.cache_hit;
  check_bool "identical across restart" true (cold.Protocol.outcome = warm.Protocol.outcome);
  check_bool "matches the direct pipeline" true
    (warm.Protocol.outcome = Protocol.Table (Analytical_dse.run ~name:"bcnt" trace));
  Sys.remove wal

let test_restart_survives_damage () =
  let wal = temp_wal () in
  let trace_a = Lazy.force small_trace in
  let trace_b = Workload.data_trace (Registry.find "crc") in
  with_server ~wal_path:wal (fun socket _server ->
      ignore (ok_or_fail (Client.submit ~socket ~name:"a" trace_a));
      ignore (ok_or_fail (Client.submit ~socket ~name:"b" trace_b)));
  (* crash damage: a torn append at the tail plus a bit flip inside the
     first record; only record B survives intact *)
  let data = read_file wal in
  let flipped = Bytes.of_string (data ^ "DSEWgarbage-torn-tail") in
  Bytes.set flipped 40 (Char.chr (Char.code (Bytes.get flipped 40) lxor 0x10));
  write_file wal (Bytes.to_string flipped);
  with_server ~wal_path:wal (fun socket _server ->
      let b = ok_or_fail (Client.submit ~socket ~name:"b" trace_b) in
      check_bool "intact record answers warm" true b.Protocol.cache_hit;
      check_bool "intact record correct" true
        (b.Protocol.outcome = Protocol.Table (Analytical_dse.run ~name:"b" trace_b));
      (* the damaged record is simply recomputed — correctly *)
      let a = ok_or_fail (Client.submit ~socket ~name:"a" trace_a) in
      check_bool "damaged record recomputes" false a.Protocol.cache_hit;
      check_bool "recomputed correctly" true
        (a.Protocol.outcome = Protocol.Table (Analytical_dse.run ~name:"a" trace_a)));
  Sys.remove wal

(* -- client retry -- *)

let test_retry_gives_up_at_cap () =
  let missing = temp_socket_path () in
  let started = Unix.gettimeofday () in
  (match
     Client.submit ~socket:missing ~retries:50 ~retry_base:0.02 ~retry_cap:0.3 ~name:"r"
       (Lazy.force small_trace)
   with
  | Error (Dse_error.Io_error _) -> ()
  | Error e -> Alcotest.failf "wrong class: %s" (Dse_error.to_string e)
  | Ok _ -> Alcotest.fail "submit to a missing socket succeeded");
  let elapsed = Unix.gettimeofday () -. started in
  (* 50 attempts at exponential growth would take minutes; the cap must
     have cut in well before *)
  check_bool "wall-clock capped" true (elapsed < 2.0)

let test_retry_recovers_from_queue_full () =
  let started = Semaphore.Counting.make 0 in
  let gate = Semaphore.Counting.make 0 in
  let hook () =
    Semaphore.Counting.release started;
    Semaphore.Counting.acquire gate
  in
  with_server ~workers:1 ~max_pending:1 ~on_job_start:hook (fun socket _server ->
      let trace_a = Trace.of_addresses (Array.init 64 (fun i -> i * 3)) in
      let trace_b = Trace.of_addresses (Array.init 64 (fun i -> i * 5)) in
      let trace_c = Trace.of_addresses (Array.init 64 (fun i -> i * 7)) in
      let client_a = Domain.spawn (fun () -> Client.submit ~socket ~name:"a" trace_a) in
      Semaphore.Counting.acquire started;
      let client_b = Domain.spawn (fun () -> Client.submit ~socket ~name:"b" trace_b) in
      let rec wait_pending tries =
        if tries = 0 then Alcotest.fail "job B never queued";
        let s = ok_or_fail (Client.server_stats ~socket) in
        if s.Protocol.pending < 1 then begin
          Unix.sleepf 0.02;
          wait_pending (tries - 1)
        end
      in
      wait_pending 250;
      (* C's first attempt hits Queue_full; the backoff outlives the
         gate release below, so a later attempt lands *)
      let client_c =
        Domain.spawn (fun () ->
            Client.submit ~socket ~retries:20 ~retry_base:0.05 ~retry_cap:20. ~name:"c" trace_c)
      in
      Unix.sleepf 0.15;
      Semaphore.Counting.release gate;
      Semaphore.Counting.release gate;
      Semaphore.Counting.release gate;
      let payload_c = ok_or_fail (Domain.join client_c) in
      check_bool "retried to success" true
        (payload_c.Protocol.outcome = Protocol.Table (Analytical_dse.run ~name:"c" trace_c));
      ignore (ok_or_fail (Domain.join client_a));
      ignore (ok_or_fail (Domain.join client_b)))

(* -- liveness probes leave no trace in the daemon's log -- *)

let test_probe_is_silent () =
  let logged = ref [] in
  let mutex = Mutex.create () in
  let log line =
    Mutex.lock mutex;
    logged := line :: !logged;
    Mutex.unlock mutex
  in
  with_server ~log (fun socket _server ->
      (* a monitoring-style probe: connect, send nothing, close *)
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX socket);
      Unix.close fd;
      (* a subsequent real request confirms the probe was processed *)
      ok_or_fail (Client.ping ~socket);
      check_bool "no log line for the probe" true (!logged = []))

let suites =
  [
    ( "selfheal:cancel",
      [
        Alcotest.test_case "token semantics" `Quick test_cancel_token;
        Alcotest.test_case "kernels honour cancellation" `Quick test_kernels_honour_cancellation;
      ] );
    ( "selfheal:components",
      [
        Alcotest.test_case "LRU bound and eviction" `Quick test_cache_lru_bound;
        Alcotest.test_case "inflight table" `Quick test_inflight;
        Alcotest.test_case "wal roundtrip" `Quick test_wal_roundtrip;
        Alcotest.test_case "wal torn tail" `Quick test_wal_torn_tail;
        Alcotest.test_case "wal bit flip" `Quick test_wal_bitflip;
        Alcotest.test_case "wal compaction" `Quick test_wal_compaction;
        Alcotest.test_case "zero-byte close" `Quick test_zero_byte_close;
        Alcotest.test_case "receive timeout is typed" `Quick test_receive_timeout_typed;
      ] );
    ( "selfheal:service",
      [
        Alcotest.test_case "deadline expiry frees the worker" `Quick
          test_deadline_expiry_frees_worker;
        Alcotest.test_case "deadline validation" `Quick test_deadline_validation;
        Alcotest.test_case "single flight coalesces" `Quick test_single_flight_coalesces;
        Alcotest.test_case "restart answers warm" `Quick test_restart_answers_warm;
        Alcotest.test_case "restart survives damage" `Quick test_restart_survives_damage;
        Alcotest.test_case "retry gives up at the cap" `Quick test_retry_gives_up_at_cap;
        Alcotest.test_case "retry recovers from queue-full" `Quick
          test_retry_recovers_from_queue_full;
        Alcotest.test_case "probes are silent" `Quick test_probe_is_silent;
      ] );
  ]
