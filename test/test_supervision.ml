(* Tests for the supervision plane: heartbeats, the worker watchdog
   (wedged incarnations replaced, slow-but-beating workers left alone),
   admission control before trace allocation, overload shedding with
   retry hints, the health plane, and the crash-loop supervisor. *)

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let prop ?(count = 120) name gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen f)

let ok_or_fail = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error: %s" (Dse_error.to_string e)

(* -- heartbeats -- *)

let test_heartbeat () =
  let hb = Heartbeat.create () in
  check_bool "fresh heartbeat is young" true (Heartbeat.age hb < 1.);
  check_bool "age grows monotonically" true
    (Heartbeat.age ~now:(Heartbeat.last hb +. 5.) hb = 5.);
  Unix.sleepf 0.02;
  let before = Heartbeat.last hb in
  Heartbeat.beat hb;
  check_bool "beat refreshes" true (Heartbeat.last hb > before);
  (* the kernel side: a token carrying a heartbeat beats it at every
     cancellation poll, so poll cadence == beat cadence *)
  let cancel = Cancel.with_heartbeat hb (Cancel.after 3600.) in
  Unix.sleepf 0.02;
  let stale = Heartbeat.age hb in
  Cancel.check cancel;
  check_bool "check beats the heartbeat" true (Heartbeat.age hb < stale);
  (* an uncancellable token still beats *)
  let hb2 = Heartbeat.create () in
  Cancel.check (Cancel.with_heartbeat hb2 (Cancel.cancellable ()));
  check_bool "cancellable token beats too" true (Heartbeat.age hb2 < 1.)

(* -- admission estimate -- *)

let test_estimate_bytes () =
  check_bool "zero refs still costs the envelope" true
    (Trace.estimate_bytes ~model:`Boxed ~refs:0 > 0);
  check_bool "monotone" true
    (Trace.estimate_bytes ~model:`Boxed ~refs:1000
    < Trace.estimate_bytes ~model:`Boxed ~refs:2000);
  (* the arena model is strictly cheaper per reference — the whole point
     of pricing admission per kernel family *)
  check_bool "arena cheaper than boxed" true
    (Trace.estimate_bytes ~model:`Arena ~refs:1_000_000
    < Trace.estimate_bytes ~model:`Boxed ~refs:1_000_000 / 2);
  (* pessimistic: a real trace's storage never exceeds either estimate *)
  let trace = Trace.of_addresses (Array.init 4096 (fun i -> i)) in
  let words = Obj.reachable_words (Obj.repr trace) in
  check_bool "boxed upper bound on real storage" true
    (words * 8 < Trace.estimate_bytes ~model:`Boxed ~refs:(Trace.length trace));
  check_bool "arena upper bound on real storage" true
    (words * 8 < Trace.estimate_bytes ~model:`Arena ~refs:(Trace.length trace));
  (match Trace.estimate_bytes ~model:`Arena ~refs:(-1) with
  | _ -> Alcotest.fail "negative refs accepted"
  | exception Invalid_argument _ -> ())

(* -- stats --json (satellite) -- *)

let test_stats_json () =
  let trace = Trace.of_addresses [| 1; 2; 3; 1 |] in
  let stats = Stats.compute trace in
  let line = Report.stats_to_json ~name:"loop\"x" ~fingerprint:(Trace.fingerprint trace) stats in
  let contains needle =
    let n = String.length needle and l = String.length line in
    let rec scan i = i + n <= l && (String.sub line i n = needle || scan (i + 1)) in
    scan 0
  in
  check_bool "quote escaped" true (contains "loop\\\"x");
  check_bool "n field" true (contains "\"n\": 4");
  check_bool "n_unique field" true (contains "\"n_unique\": 3");
  check_bool "fingerprint is a 16-digit hex string" true
    (contains (Printf.sprintf "\"%016Lx\"" (Trace.fingerprint trace)));
  check_bool "single line" true (not (String.contains line '\n'))

(* -- protocol v3: health round trip, new error constructors -- *)

let with_socketpair f =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      try Unix.close b with Unix.Unix_error _ -> ())
    (fun () -> f a b)

let test_health_roundtrip () =
  with_socketpair (fun a b ->
      ok_or_fail (Protocol.write_request a Protocol.Health);
      match ok_or_fail (Protocol.read_request b) with
      | Some Protocol.Health -> ()
      | _ -> Alcotest.fail "expected Health");
  let health =
    {
      Protocol.node_id = "127.0.0.1:7700";
      start_epoch = 1722400000.5;
      uptime = 12.5;
      workers =
        [
          { Protocol.slot = 0; busy = true; job = "loop-139264"; heartbeat_age = 0.25; jobs_done = 3 };
          { Protocol.slot = 1; busy = false; job = ""; heartbeat_age = 0.; jobs_done = 7 };
        ];
      workers_replaced = 1;
      queue_depth = 2;
      queue_watermark = 3;
      max_pending = 4;
      shed = 5;
      admission_rejected = 6;
      jobs_completed = 10;
      cache_hits = 4;
      cache_misses = 6;
      cache_entries = 6;
      cache_evictions = 0;
      coalesced_hits = 2;
      wal_enabled = true;
      wal_appends = 6;
      wal_failures = 1;
      peer_hits = 3;
      replicated_in = 4;
      replicated_out = 5;
      replication_lag = 1;
      replication_dropped = 2;
      ring_version = 3;
      draining = true;
      replica_gc_dropped = 4;
    }
  in
  with_socketpair (fun a b ->
      ok_or_fail (Protocol.write_response a (Protocol.Health_reply health));
      match ok_or_fail (Protocol.read_response b) with
      | Protocol.Health_reply h -> check_bool "health round trips" true (h = health)
      | _ -> Alcotest.fail "expected Health_reply")

let test_new_exit_codes () =
  check_int "worker stalled is exit 8" 8
    (Dse_error.exit_code (Dse_error.Worker_stalled { elapsed = 2.; job = "j" }));
  check_int "resource exhausted is exit 8" 8
    (Dse_error.exit_code
       (Dse_error.Resource_exhausted { resource = "trace references"; needed = 2; budget = 1 }))

(* -- pool + watchdog, deterministically, no daemon -- *)

type unit_job = Wedge | Note of int

let test_watchdog_replaces_wedged_worker () =
  let queue = Job_queue.create ~max_pending:4 in
  let release = Atomic.make false in
  let wedged = Semaphore.Counting.make 0 in
  let note = Atomic.make 0 in
  let run ~heartbeat job =
    match job with
    | Wedge ->
      (* wedge: signal arrival, then block without ever beating *)
      Semaphore.Counting.release wedged;
      while not (Atomic.get release) do
        Unix.sleepf 0.002
      done
    | Note n ->
      Heartbeat.beat heartbeat;
      Atomic.set note n
  in
  let pool = Worker_pool.start ~workers:1 ~run queue in
  (match Job_queue.push queue Wedge with `Ok -> () | _ -> Alcotest.fail "push");
  Semaphore.Counting.acquire wedged;
  (* a scan before the timeout elapses must not shoot the worker *)
  check_bool "young worker spared" true (Watchdog.scan pool ~hang_timeout:60. = []);
  Unix.sleepf 0.12;
  (match Watchdog.scan pool ~hang_timeout:0.1 with
  | [ s ] ->
    check_int "slot" 0 s.Watchdog.slot;
    check_bool "the wedged job is reported" true (s.Watchdog.job = Wedge);
    check_bool "silence tripped the timeout" true (s.Watchdog.silent_for > 0.1);
    check_bool "elapsed covers the silence" true (s.Watchdog.elapsed >= s.Watchdog.silent_for -. 0.01)
  | l -> Alcotest.failf "expected one stalled worker, got %d" (List.length l));
  check_int "one replacement" 1 (Worker_pool.replaced pool);
  (* the replacement is fresh: nothing left to shoot *)
  check_bool "second scan idle" true (Watchdog.scan pool ~hang_timeout:0.1 = []);
  (* the replacement serves the queue *)
  (match Job_queue.push queue (Note 7) with `Ok -> () | _ -> Alcotest.fail "push");
  let rec wait tries =
    if tries = 0 then Alcotest.fail "replacement never served";
    if Atomic.get note <> 7 then begin
      Unix.sleepf 0.01;
      wait (tries - 1)
    end
  in
  wait 500;
  (* unwedge the abandoned incarnation so its domain can exit; it must
     finish without touching the queue again *)
  Atomic.set release true;
  Job_queue.close queue;
  Worker_pool.join pool;
  check_int "still exactly one replacement" 1 (Worker_pool.replaced pool);
  match Watchdog.scan pool ~hang_timeout:0. with
  | _ -> Alcotest.fail "non-positive hang_timeout accepted"
  | exception Invalid_argument _ -> ()

let prop_heartbeating_worker_never_killed =
  (* a slow job that keeps beating at poll cadence is never replaced,
     however long it outlives the hang timeout *)
  prop ~count:4 "slow-but-heartbeating worker is never replaced"
    QCheck2.Gen.(float_range 0.15 0.3)
    (fun duration ->
      let queue = Job_queue.create ~max_pending:2 in
      let finished = Atomic.make false in
      let run ~heartbeat () =
        let stop = Unix.gettimeofday () +. duration in
        while Unix.gettimeofday () < stop do
          Heartbeat.beat heartbeat;
          Unix.sleepf 0.002
        done;
        Atomic.set finished true
      in
      let pool = Worker_pool.start ~workers:1 ~run queue in
      (match Job_queue.push queue () with `Ok -> () | _ -> failwith "push");
      (* hang_timeout is a fraction of the job's runtime but far above
         the beat cadence: the watchdog must stay quiet throughout *)
      let never_shot = ref true in
      let deadline = Unix.gettimeofday () +. duration +. 2. in
      while (not (Atomic.get finished)) && Unix.gettimeofday () < deadline do
        if Watchdog.scan pool ~hang_timeout:0.1 <> [] then never_shot := false;
        Unix.sleepf 0.01
      done;
      Job_queue.close queue;
      Worker_pool.join pool;
      !never_shot && Atomic.get finished && Worker_pool.replaced pool = 0)

(* -- crash-loop supervisor -- *)

let test_supervisor_respawns_then_exits_clean () =
  let path = Filename.temp_file "dse_sup" ".runs" in
  let runs () = (Unix.stat path).Unix.st_size in
  (* each run appends one byte; the first two incarnations crash hard
     (exit 9 straight at the syscall, as a kill -9'd daemon would look
     to waitpid), the third returns cleanly *)
  let child () =
    let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_APPEND ] 0o600 in
    ignore (Unix.write fd (Bytes.of_string "x") 0 1);
    Unix.close fd;
    if (Unix.stat path).Unix.st_size <= 2 then Unix._exit 9
  in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      let logged = ref 0 in
      let code =
        Supervisor.run ~backoff_base:0.01 ~backoff_cap:0.05 ~log:(fun _ -> incr logged) child
      in
      check_int "supervisor exits clean" 0 code;
      check_int "two crashes, one clean run" 3 (runs ());
      check_bool "respawns were logged" true (!logged >= 2))

let test_supervisor_gives_up_on_crash_loop () =
  let code =
    Supervisor.run ~max_rapid_crashes:2 ~rapid_window:30. ~backoff_base:0.005 ~backoff_cap:0.01
      ~log:(fun _ -> ())
      (fun () -> Unix._exit 9)
  in
  check_int "crash loop ends in exit 1" 1 code

(* -- daemon-level supervision -- *)

let temp_socket_path () =
  let path = Filename.temp_file "dse_supervision" ".sock" in
  Sys.remove path;
  path

let with_server ?(workers = 2) ?(max_pending = 16) ?(hang_timeout = 30.) ?max_job_refs
    ?memory_budget ?on_job_start f =
  let path = temp_socket_path () in
  let server =
    match
      Server.create ?on_job_start ~log:(fun _ -> ())
        {
          Server.socket_path = path;
          tcp = None;
          node_id = None;
          workers;
          max_pending;
          cache_entries = Result_cache.default_capacity;
          wal_path = None;
          hang_timeout;
          max_job_refs;
          memory_budget;
          peers = [];
          replication = 2;
          replication_queue = 256;
          anti_entropy = false;
        }
    with
    | Ok s -> s
    | Error e -> Alcotest.failf "server create: %s" (Dse_error.to_string e)
  in
  let runner = Domain.spawn (fun () -> Server.run server) in
  Fun.protect
    ~finally:(fun () ->
      Server.stop server;
      Domain.join runner;
      if Sys.file_exists path then Sys.remove path)
    (fun () -> f path server)

(* Wide but cheap: 139264 references (>= 2 x Streaming.min_shard_refs,
   so --domains 2 takes the sharded path the hang injection lives on)
   over only 256 uniques. The small working set matters twice: the
   healthy shard — whose polls beat the job's shared heartbeat — drains
   in well under the hang timeout, so the silence the watchdog measures
   starts promptly; and recency walks stay short, so the replacement's
   rerun is sub-second. *)
let hang_trace = lazy (Synthetic.loop ~base:0 ~body:256 ~iterations:544)

let test_watchdog_answers_hung_job () =
  let trace = Lazy.force hang_trace in
  check_bool "trace is wide enough to shard at 2 domains" true
    (Trace.length trace >= 2 * Streaming.min_shard_refs);
  let hang_timeout = 0.75 in
  Fault.set (Some { Fault.kind = Fault.Hang; shard = 0; times = 1 });
  Fun.protect
    ~finally:(fun () ->
      (* disarm first (release survives until the next [set]), then
         unwedge the abandoned domain so it can run to completion *)
      Fault.set None;
      Fault.release_hangs ())
    (fun () ->
      with_server ~workers:1 ~hang_timeout (fun socket _server ->
          let started = Unix.gettimeofday () in
          (match Client.submit ~socket ~domains:2 ~name:"wedge" trace with
          | Error (Dse_error.Worker_stalled { elapsed; job } as e) ->
            check_bool "stall elapsed reported" true (elapsed >= hang_timeout);
            check_bool "job named" true (String.length job > 0);
            check_int "exit code 8" 8 (Dse_error.exit_code e)
          | Error e -> Alcotest.failf "wrong error class: %s" (Dse_error.to_string e)
          | Ok _ -> Alcotest.fail "hung job produced a result");
          let detection = Unix.gettimeofday () -. started in
          (* acceptance bound: detected within 2 x hang-timeout *)
          check_bool "detected within 2 x hang-timeout" true (detection < 2. *. hang_timeout);
          (* the daemon stayed up and spawned a replacement... *)
          let h = ok_or_fail (Client.health ~socket) in
          check_int "one replacement" 1 h.Protocol.workers_replaced;
          check_int "still one worker slot" 1 (List.length h.Protocol.workers);
          (* ...which answers the identical resubmission, bit-identical
             to the sequential pipeline (the hang budget is spent) *)
          let payload = ok_or_fail (Client.submit ~socket ~domains:2 ~name:"wedge" trace) in
          check_bool "replacement answers bit-identically" true
            (payload.Protocol.outcome = Protocol.Table (Analytical_dse.run ~name:"wedge" trace))))

let test_slow_job_with_heartbeats_survives () =
  (* a genuinely slow job (~1s of kernel work) against a hang timeout
     it dwarfs: the heartbeat at every cancellation poll keeps the
     watchdog away, and the answer matches the sequential pipeline.
     1024 uniques keep the per-reference recency walk short, so polls —
     and therefore beats — stay orders of magnitude denser than the
     timeout (a 16k-unique trace can gap ~0.4 s between 1024-reference
     polls and would flap this test). *)
  let trace = Synthetic.loop ~base:0 ~body:1024 ~iterations:136 in
  with_server ~workers:1 ~hang_timeout:0.4 (fun socket _server ->
      let started = Unix.gettimeofday () in
      let payload = ok_or_fail (Client.submit ~socket ~name:"slow" trace) in
      let elapsed = Unix.gettimeofday () -. started in
      check_bool "job genuinely outlived the hang timeout" true (elapsed > 0.4);
      check_bool "histograms identical to sequential" true
        (payload.Protocol.outcome = Protocol.Table (Analytical_dse.run ~name:"slow" trace));
      let h = ok_or_fail (Client.health ~socket) in
      check_int "never replaced" 0 h.Protocol.workers_replaced;
      check_int "job completed" 1 h.Protocol.jobs_completed)

(* -- admission control -- *)

let test_admission_rejects_oversized_trace () =
  with_server ~max_job_refs:4096 (fun socket _server ->
      let oversized = Trace.of_addresses (Array.init 8192 (fun i -> i land 255)) in
      (match Client.submit ~socket ~name:"big" oversized with
      | Error (Dse_error.Resource_exhausted { resource; needed; budget } as e) ->
        check_bool "resource named" true (resource = "trace references");
        check_int "needed" 8192 needed;
        check_int "budget" 4096 budget;
        check_int "exit code 8" 8 (Dse_error.exit_code e)
      | Error e -> Alcotest.failf "wrong error class: %s" (Dse_error.to_string e)
      | Ok _ -> Alcotest.fail "oversized submission accepted");
      (* the daemon keeps serving, and jobs under the bound still land *)
      let small = Trace.of_addresses (Array.init 64 (fun i -> i * 3)) in
      let payload = ok_or_fail (Client.submit ~socket ~name:"small" small) in
      check_bool "small job served" true
        (payload.Protocol.outcome = Protocol.Table (Analytical_dse.run ~name:"small" small));
      let h = ok_or_fail (Client.health ~socket) in
      check_int "rejection counted" 1 h.Protocol.admission_rejected)

(* Admission prices per kernel family: under one memory budget the same
   trace is rejected as a streaming job (50 B/ref boxed model) and
   accepted as an arena job (18 B/ref off-heap model) — the operational
   payoff of the arena kernel. *)
let test_admission_prices_per_kernel () =
  let refs = 100_000 in
  let trace = Trace.of_addresses (Array.init refs (fun i -> i land 255)) in
  (* 3 MiB sits between the arena estimate (~1.8 MB) and the boxed
     estimate (~5.0 MB) for 100k references *)
  let budget = 3 * 1024 * 1024 in
  check_bool "budget splits the two cost models" true
    (Trace.estimate_bytes ~model:`Arena ~refs <= budget
    && Trace.estimate_bytes ~model:`Boxed ~refs > budget);
  with_server ~memory_budget:budget (fun socket _server ->
      (match Client.submit ~socket ~method_:Analytical.Streaming ~name:"j" trace with
      | Error (Dse_error.Resource_exhausted { resource; needed; budget = echoed }) ->
        check_bool "estimate named" true (resource = "estimated bytes");
        check_int "boxed pricing" (Trace.estimate_bytes ~model:`Boxed ~refs) needed;
        check_int "budget echoed" budget echoed
      | Error e -> Alcotest.failf "wrong error class: %s" (Dse_error.to_string e)
      | Ok _ -> Alcotest.fail "streaming job admitted over budget");
      let cold = ok_or_fail (Client.submit ~socket ~method_:Analytical.Arena ~name:"j" trace) in
      check_bool "arena job admitted and computed" true (not cold.Protocol.cache_hit);
      check_bool "arena result is the boxed kernel's result" true
        (cold.Protocol.outcome = Protocol.Table (Analytical_dse.run ~name:"j" trace));
      (* cached re-query of the admitted job is bit-identical *)
      let warm = ok_or_fail (Client.submit ~socket ~method_:Analytical.Arena ~name:"j" trace) in
      check_bool "cache hit" true warm.Protocol.cache_hit;
      check_bool "bit-identical outcome" true (warm.Protocol.outcome = cold.Protocol.outcome);
      let h = ok_or_fail (Client.health ~socket) in
      check_int "one admission rejection" 1 h.Protocol.admission_rejected;
      check_int "one kernel run" 1 h.Protocol.jobs_completed;
      check_int "one cache hit" 1 h.Protocol.cache_hits)

(* A submission frame declaring [refs] references but carrying none of
   them: admission must judge the declared varint, not the bytes. *)
let declared_refs_frame ~refs =
  let varint buf v =
    let v = ref v in
    let continue = ref true in
    while !continue do
      let byte = !v land 0x7F in
      v := !v lsr 7;
      if !v = 0 then begin
        Buffer.add_char buf (Char.chr byte);
        continue := false
      end
      else Buffer.add_char buf (Char.chr (byte lor 0x80))
    done
  in
  let payload = Buffer.create 64 in
  varint payload 4;
  Buffer.add_string payload "huge";
  Buffer.add_char payload '\000' (* method: streaming *);
  varint payload 1 (* domains *);
  Buffer.add_char payload '\000' (* no max_level *);
  Buffer.add_char payload '\000' (* no deadline *);
  Buffer.add_char payload '\001' (* query: budget *);
  varint payload 1;
  varint payload refs (* declared trace length; no accesses follow *);
  let payload = Buffer.contents payload in
  let frame = Buffer.create 64 in
  Buffer.add_string frame "DSRV";
  Buffer.add_char frame (Char.chr Protocol.version);
  Buffer.add_char frame '\001' (* tag: submit *);
  varint frame (String.length payload);
  Buffer.add_string frame payload;
  let body = Buffer.contents frame in
  let crc = Crc32.digest_string body in
  for i = 0 to 3 do
    Buffer.add_char frame (Char.chr ((crc lsr (8 * i)) land 0xFF))
  done;
  Buffer.contents frame

let test_admission_runs_before_allocation () =
  (* 400M declared references estimate to ~20 GB; if the daemon tried
     to materialise the trace before judging it, the heap high-water
     mark would explode (or the machine would). It must instead answer
     from the declared varint alone. *)
  let declared = 400_000_000 in
  with_server ~memory_budget:(64 * 1024 * 1024) (fun socket _server ->
      let before = (Gc.quick_stat ()).Gc.top_heap_words in
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          Unix.connect fd (Unix.ADDR_UNIX socket);
          let frame = Bytes.of_string (declared_refs_frame ~refs:declared) in
          let rec write_all off =
            if off < Bytes.length frame then
              write_all (off + Unix.write fd frame off (Bytes.length frame - off))
          in
          write_all 0;
          match ok_or_fail (Protocol.read_response fd) with
          | Protocol.Server_error (Dse_error.Resource_exhausted { resource; needed; budget }) ->
            check_bool "estimate named" true (resource = "estimated bytes");
            (* the raw frame declares method streaming, so the boxed
               cost model prices it *)
            check_bool "needed reflects the declaration" true
              (needed = Trace.estimate_bytes ~model:`Boxed ~refs:declared);
            check_int "budget echoed" (64 * 1024 * 1024) budget
          | Protocol.Server_error e -> Alcotest.failf "wrong error: %s" (Dse_error.to_string e)
          | _ -> Alcotest.fail "declared-oversized submission accepted");
      let after = (Gc.quick_stat ()).Gc.top_heap_words in
      (* 400M references would need >= 400M heap words just for the
         access array; the high-water mark must not have moved anywhere
         near that *)
      check_bool "no allocation anywhere near the declared size" true
        (after - before < declared / 8))

(* -- overload shedding -- *)

let test_shedding_heavy_jobs_past_watermark () =
  let started = Semaphore.Counting.make 0 in
  let gate = Semaphore.Counting.make 0 in
  let hook () =
    Semaphore.Counting.release started;
    Semaphore.Counting.acquire gate
  in
  (* max_pending 4 => watermark 3 *)
  with_server ~workers:1 ~max_pending:4 ~on_job_start:hook (fun socket _server ->
      let light seed = Trace.of_addresses (Array.init 64 (fun i -> i * seed)) in
      let heavy =
        Trace.of_addresses (Array.init Streaming.min_shard_refs (fun i -> i land 1023))
      in
      let submit_async name trace =
        Domain.spawn (fun () -> Client.submit ~socket ~name trace)
      in
      let a = submit_async "a" (light 3) in
      Semaphore.Counting.acquire started;
      let queued = List.map (fun s -> submit_async (string_of_int s) (light s)) [ 5; 7; 11 ] in
      let rec wait_depth tries =
        if tries = 0 then Alcotest.fail "queue never filled to the watermark";
        let h = ok_or_fail (Client.health ~socket) in
        if h.Protocol.queue_depth < h.Protocol.queue_watermark then begin
          Unix.sleepf 0.02;
          wait_depth (tries - 1)
        end
      in
      wait_depth 250;
      (* past the watermark a heavy job is shed, with a positive hint *)
      (match Client.submit ~socket ~name:"heavy" heavy with
      | Error (Dse_error.Queue_full { pending; retry_after; _ }) ->
        check_bool "shed at the watermark, not at capacity" true (pending < 4);
        check_bool "retry hint positive" true (retry_after > 0.)
      | Error e -> Alcotest.failf "wrong error class: %s" (Dse_error.to_string e)
      | Ok _ -> Alcotest.fail "heavy job accepted past the watermark");
      (* ...while the control plane and light jobs keep being served *)
      ok_or_fail (Client.ping ~socket);
      let h = ok_or_fail (Client.health ~socket) in
      check_int "shed counted" 1 h.Protocol.shed;
      check_int "watermark surfaced" 3 h.Protocol.queue_watermark;
      let f = submit_async "f" (light 13) in
      (* the queue still had one light slot: depth must reach capacity *)
      let rec wait_full tries =
        if tries = 0 then Alcotest.fail "light job never queued";
        let h = ok_or_fail (Client.health ~socket) in
        if h.Protocol.queue_depth < 4 then begin
          Unix.sleepf 0.02;
          wait_full (tries - 1)
        end
      in
      wait_full 250;
      (* at capacity even light jobs are refused — with the same hint,
         which client backoff honours: one retry must sleep at least
         the server's hint before giving up *)
      let hinted = Unix.gettimeofday () in
      (match
         Client.submit ~socket ~retries:1 ~retry_base:0.0001 ~retry_cap:30. ~name:"g" (light 17)
       with
      | Error (Dse_error.Queue_full { retry_after; _ }) ->
        check_bool "full reply carries a hint" true (retry_after > 0.);
        check_bool "client slept at least the hint" true
          (Unix.gettimeofday () -. hinted >= retry_after *. 0.9)
      | Error e -> Alcotest.failf "wrong error class: %s" (Dse_error.to_string e)
      | Ok _ -> Alcotest.fail "submission accepted at capacity");
      (* release the gated worker and drain everything that was accepted *)
      for _ = 1 to 5 do
        Semaphore.Counting.release gate
      done;
      let check_done name d =
        let p = ok_or_fail (Domain.join d) in
        check_bool (name ^ " answered") true
          (match p.Protocol.outcome with Protocol.Table _ -> true | _ -> false)
      in
      check_done "a" a;
      List.iteri (fun i d -> check_done (Printf.sprintf "queued %d" i) d) queued;
      check_done "f" f;
      let h = ok_or_fail (Client.health ~socket) in
      check_int "all accepted jobs completed" 5 h.Protocol.jobs_completed;
      check_bool "uptime sane" true (h.Protocol.uptime > 0.))

let suites =
  [
    ( "supervision:units",
      [
        Alcotest.test_case "heartbeat semantics" `Quick test_heartbeat;
        Alcotest.test_case "admission estimate" `Quick test_estimate_bytes;
        Alcotest.test_case "stats to json" `Quick test_stats_json;
        Alcotest.test_case "health round trip" `Quick test_health_roundtrip;
        Alcotest.test_case "exit code 8" `Quick test_new_exit_codes;
      ] );
    ( "supervision:pool",
      [
        Alcotest.test_case "wedged worker replaced" `Quick test_watchdog_replaces_wedged_worker;
        prop_heartbeating_worker_never_killed;
      ] );
    ( "supervision:daemon",
      [
        Alcotest.test_case "watchdog answers a hung job" `Quick test_watchdog_answers_hung_job;
        Alcotest.test_case "slow heartbeating job survives" `Quick
          test_slow_job_with_heartbeats_survives;
        Alcotest.test_case "admission rejects oversized" `Quick
          test_admission_rejects_oversized_trace;
        Alcotest.test_case "admission precedes allocation" `Quick
          test_admission_runs_before_allocation;
        Alcotest.test_case "admission prices per kernel" `Quick
          test_admission_prices_per_kernel;
        Alcotest.test_case "sheds heavy jobs past watermark" `Quick
          test_shedding_heavy_jobs_past_watermark;
      ] );
  ]

(* [Unix.fork] is forbidden once any domain has ever been spawned, and
   the aggregated runner exercises worker pools long before this file's
   suites come up — so the fork-based supervisor tests live in their own
   executable ([supervisor_runner.ml]) that forks before any domain
   exists. *)
let supervisor_suites =
  [
    ( "supervision:supervisor",
      [
        Alcotest.test_case "respawns then exits clean" `Quick
          test_supervisor_respawns_then_exits_clean;
        Alcotest.test_case "gives up on a crash loop" `Quick test_supervisor_gives_up_on_crash_loop;
      ] );
  ]
