(* Tests for the robustness layer: the typed error taxonomy, the v2
   binary framing (version byte + CRC-32 footer), lenient ingestion,
   and shard-isolated parallel exploration with fault injection. *)

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let prop ?(count = 120) name gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen f)

let gen_addresses = QCheck2.Gen.(array_size (int_range 1 250) (int_bound 127))

let with_temp_file suffix f =
  let path = Filename.temp_file "dse_robust" suffix in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let write_file path bytes =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_bytes oc bytes)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> Bytes.of_string (really_input_string ic (in_channel_length ic)))

let io_ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error: %s" (Dse_error.to_string e)

(* -- error taxonomy -- *)

let test_exit_codes () =
  let parse = Dse_error.Parse_error { file = "t"; line = 1; message = "m" } in
  let corrupt = Dse_error.Corrupt_binary { file = "t"; offset = 0; message = "m" } in
  let usage = Dse_error.Constraint_violation { context = "c"; message = "m" } in
  let shard = Dse_error.Shard_failure { shard = 1; attempts = 3; message = "m" } in
  let io = Dse_error.Io_error { file = "t"; message = "m" } in
  check_int "usage" 2 (Dse_error.exit_code usage);
  check_int "io" 3 (Dse_error.exit_code io);
  check_int "parse" 4 (Dse_error.exit_code parse);
  check_int "corrupt" 4 (Dse_error.exit_code corrupt);
  check_int "shard" 5 (Dse_error.exit_code shard);
  check_bool "to_string carries the line" true
    (String.length (Dse_error.to_string parse) > 0
    && String.contains (Dse_error.to_string parse) '1')

let test_crc32_vector () =
  (* the canonical IEEE 802.3 check value *)
  check_int "crc32(123456789)" 0xCBF43926 (Crc32.digest_string "123456789")

let test_fault_parse () =
  check_bool "shard:2" true
    (Fault.parse "shard:2" = Some { Fault.kind = Fault.Fail; shard = 2; times = 1 });
  check_bool "shard:0:3" true
    (Fault.parse "shard:0:3" = Some { Fault.kind = Fault.Fail; shard = 0; times = 3 });
  check_bool "hang:1" true
    (Fault.parse "hang:1" = Some { Fault.kind = Fault.Hang; shard = 1; times = 1 });
  check_bool "hang:0:2" true
    (Fault.parse "hang:0:2" = Some { Fault.kind = Fault.Hang; shard = 0; times = 2 });
  check_bool "garbage" true (Fault.parse "shard" = None);
  check_bool "negative" true (Fault.parse "shard:-1" = None);
  check_bool "hang negative" true (Fault.parse "hang:-1" = None);
  check_bool "zero times" true (Fault.parse "shard:1:0" = None)

(* -- binary v2 framing -- *)

let save_v2 path trace = io_ok (Trace_io.save_binary path trace)

let test_v2_header_and_footer () =
  with_temp_file ".bin" (fun path ->
      save_v2 path (Trace.of_addresses [| 1; 2; 1 |]);
      let data = read_file path in
      check_bool "magic" true (Bytes.sub_string data 0 4 = "DSEB");
      check_int "version byte" 2 (Char.code (Bytes.get data 4));
      let body = Bytes.sub_string data 0 (Bytes.length data - 4) in
      let stored = ref 0 in
      for i = 0 to 3 do
        stored :=
          !stored lor (Char.code (Bytes.get data (Bytes.length data - 4 + i)) lsl (8 * i))
      done;
      check_int "footer is the CRC of the body" (Crc32.digest_string body) !stored)

(* a legacy v1 writer, byte-for-byte what the seed emitted *)
let write_v1 path trace =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc "DSET";
      let varint v =
        let v = ref v in
        let continue = ref true in
        while !continue do
          let byte = !v land 0x7F in
          v := !v lsr 7;
          if !v = 0 then begin
            output_byte oc byte;
            continue := false
          end
          else output_byte oc (byte lor 0x80)
        done
      in
      varint (Trace.length trace);
      Trace.iter
        (fun (a : Trace.access) ->
          let tag =
            match a.kind with Trace.Fetch -> 0 | Trace.Read -> 1 | Trace.Write -> 2
          in
          varint ((a.Trace.addr lsl 2) lor tag))
        trace)

let prop_v1_still_readable =
  prop "legacy v1 binary files still load" gen_addresses (fun addrs ->
      let t = Trace.of_addresses addrs in
      with_temp_file ".bin" (fun path ->
          write_v1 path t;
          match Trace_io.load_binary path with
          | Ok i -> Trace.to_list i.Trace_io.trace = Trace.to_list t
          | Error _ -> false))

let prop_corruption_always_structured =
  prop ~count:300 "any byte flip or truncation of a v2 file yields Error (exit code 4)"
    QCheck2.Gen.(triple gen_addresses (int_bound 1_000_000) bool)
    (fun (addrs, pick, truncate) ->
      let t = Trace.of_addresses addrs in
      with_temp_file ".bin" (fun path ->
          save_v2 path t;
          let data = read_file path in
          let len = Bytes.length data in
          let damaged =
            if truncate then Bytes.sub data 0 (pick mod len)
            else begin
              let i = pick mod len in
              let flip = 1 + (pick / len) mod 255 in
              Bytes.set data i (Char.chr (Char.code (Bytes.get data i) lxor flip));
              data
            end
          in
          write_file path damaged;
          match Trace_io.load_binary path with
          | Ok _ -> false
          | Error e -> Dse_error.exit_code e = 4
          | exception _ -> false))

let prop_random_bytes_never_crash =
  prop ~count:300 "the binary loader never raises on arbitrary bytes"
    QCheck2.Gen.(string_size (int_bound 120))
    (fun junk ->
      with_temp_file ".bin" (fun path ->
          write_file path (Bytes.of_string junk);
          match Trace_io.load_binary path with
          | Ok _ | Error _ -> true
          | exception _ -> false))

let test_truncation_reports_offset () =
  with_temp_file ".bin" (fun path ->
      save_v2 path (Trace.of_addresses (Array.init 40 (fun i -> i * 129)));
      let data = read_file path in
      write_file path (Bytes.sub data 0 (Bytes.length data - 9));
      match Trace_io.load_binary path with
      | Error (Dse_error.Corrupt_binary { offset; file; _ }) ->
        check_bool "offset within the file" true (offset >= 0 && offset <= Bytes.length data);
        check_bool "file recorded" true (file = path)
      | Ok _ | Error _ -> Alcotest.fail "expected Corrupt_binary")

let test_declared_length_guard () =
  (* a huge declared length must be rejected up front, not allocated *)
  with_temp_file ".bin" (fun path ->
      let oc = open_out_bin path in
      output_string oc "DSET";
      (* LEB128 for 2^40: won't fit the 3 remaining payload bytes *)
      List.iter (output_byte oc) [ 0x80; 0x80; 0x80; 0x80; 0x80; 0x80; 0x01; 5; 9; 13 ];
      close_out oc;
      match Trace_io.load_binary path with
      | Error (Dse_error.Corrupt_binary _) -> ()
      | Ok _ | Error _ -> Alcotest.fail "expected Corrupt_binary")

(* -- lenient ingestion -- *)

let load_text ?on_error contents =
  with_temp_file ".txt" (fun path ->
      write_file path (Bytes.of_string contents);
      Trace_io.load ?on_error path)

let test_text_lenient_modes () =
  let contents = "R 0x10\nQ zz\nW 0x20\n\nR !!\nF 0x30\n" in
  (match load_text contents with
  | Error (Dse_error.Parse_error { line; _ }) -> check_int "fail stops at line 2" 2 line
  | Ok _ | Error _ -> Alcotest.fail "expected Parse_error");
  (match load_text ~on_error:Trace_io.Skip contents with
  | Ok { trace; skipped; errors } ->
    check_int "skip keeps the good lines" 3 (Trace.length trace);
    check_int "skip counts" 2 skipped;
    check_int "skip reports" 2 (List.length errors)
  | Error _ -> Alcotest.fail "skip must succeed");
  (match load_text ~on_error:(Trace_io.Stop_after 1) contents with
  | Error (Dse_error.Parse_error { line; _ }) -> check_int "budget exhausted at line 5" 5 line
  | Ok _ | Error _ -> Alcotest.fail "expected Parse_error");
  match load_text ~on_error:(Trace_io.Stop_after 2) contents with
  | Ok { skipped; _ } -> check_int "stop-after:2 tolerates both" 2 skipped
  | Error _ -> Alcotest.fail "stop-after:2 must succeed"

let test_text_overlong_line () =
  let long = String.make 5000 'R' in
  (match load_text (long ^ "\n") with
  | Error (Dse_error.Parse_error { message; _ }) ->
    check_bool "mentions the limit" true
      (String.length message > 0 && String.contains message 'e')
  | Ok _ | Error _ -> Alcotest.fail "expected Parse_error");
  match load_text ~on_error:Trace_io.Skip ("R 0x1\n" ^ long ^ "\nR 0x2\n") with
  | Ok { trace; skipped; _ } ->
    check_int "overlong line skipped" 1 skipped;
    check_int "rest kept" 2 (Trace.length trace)
  | Error _ -> Alcotest.fail "skip must succeed"

let test_dinero_lenient () =
  with_temp_file ".din" (fun path ->
      write_file path (Bytes.of_string "0 1a3f\n\n9 10\n2 zz\n1 7f\n");
      (match Trace_io.load_dinero path with
      | Error (Dse_error.Parse_error { line; _ }) -> check_int "first bad line" 3 line
      | Ok _ | Error _ -> Alcotest.fail "expected Parse_error");
      match Trace_io.load_dinero ~on_error:Trace_io.Skip path with
      | Ok { trace; skipped; _ } ->
        check_int "blank line is not an error" 2 skipped;
        check_int "good lines kept" 2 (Trace.length trace)
      | Error _ -> Alcotest.fail "skip must succeed")

let test_binary_lenient_salvage () =
  (* truncated v2 file: Fail aborts, Skip salvages the parsed prefix *)
  with_temp_file ".bin" (fun path ->
      save_v2 path (Trace.of_addresses (Array.init 50 (fun i -> i)));
      let data = read_file path in
      write_file path (Bytes.sub data 0 (Bytes.length data - 10));
      (match Trace_io.load_binary path with
      | Error (Dse_error.Corrupt_binary _) -> ()
      | Ok _ | Error _ -> Alcotest.fail "expected Corrupt_binary");
      match Trace_io.load_binary ~on_error:Trace_io.Skip path with
      | Ok { trace; skipped; _ } ->
        check_int "one structural defect" 1 skipped;
        check_bool "salvaged a prefix" true
          (Trace.length trace > 0 && Trace.length trace < 50)
      | Error _ -> Alcotest.fail "skip must salvage")

let test_missing_file_is_io_error () =
  match Trace_io.load "/nonexistent/definitely/missing.trace" with
  | Error (Dse_error.Io_error _ as e) -> check_int "exit code 3" 3 (Dse_error.exit_code e)
  | Ok _ | Error _ -> Alcotest.fail "expected Io_error"

(* -- strip constraints -- *)

let test_strip_negative_address () =
  (match Strip.strip_addresses_result [| 3; -1; 5 |] with
  | Error (Dse_error.Constraint_violation _ as e) ->
    check_int "exit code 2" 2 (Dse_error.exit_code e)
  | Ok _ | Error _ -> Alcotest.fail "expected Constraint_violation");
  match Strip.address_of (Strip.strip_addresses [| 3 |]) 7 with
  | _ -> Alcotest.fail "expected Constraint_violation"
  | exception Dse_error.Error (Dse_error.Constraint_violation _) -> ()

(* -- shard-isolated parallel exploration -- *)

let with_fault spec f =
  let logs = ref [] in
  let old = !Dse_error.on_degradation in
  Fault.set spec;
  Dse_error.on_degradation := (fun m -> logs := m :: !logs);
  Fun.protect
    ~finally:(fun () ->
      Fault.set None;
      Dse_error.on_degradation := old)
    (fun () -> f logs)

let recovery_stripped () =
  Strip.strip (Synthetic.loop ~base:0 ~body:37 ~iterations:30)

let streaming_with_fault ~times =
  let stripped = recovery_stripped () in
  let max_level = Strip.address_bits stripped in
  let expected = Streaming.histograms stripped ~max_level in
  with_fault (Some { Fault.kind = Fault.Fail; shard = 2; times }) (fun logs ->
      let got = Streaming.histograms ~domains:4 ~shard_threshold:64 stripped ~max_level in
      (got = expected, List.length !logs))

let test_shard_retry_recovers () =
  let identical, degradations = streaming_with_fault ~times:1 in
  check_bool "histograms identical to sequential" true identical;
  check_int "one degradation logged (retry)" 1 degradations

let test_shard_sequential_fallback () =
  let identical, degradations = streaming_with_fault ~times:2 in
  check_bool "histograms identical to sequential" true identical;
  check_int "two degradations logged (retry + sequential)" 2 degradations

let test_shard_failure_exhausted () =
  let stripped = recovery_stripped () in
  let max_level = Strip.address_bits stripped in
  with_fault (Some { Fault.kind = Fault.Fail; shard = 2; times = 3 }) (fun _logs ->
      match Streaming.histograms ~domains:4 ~shard_threshold:64 stripped ~max_level with
      | _ -> Alcotest.fail "expected Shard_failure"
      | exception Dse_error.Error (Dse_error.Shard_failure { shard; attempts; _ } as e) ->
        check_int "shard" 2 shard;
        check_int "attempts" 3 attempts;
        check_int "exit code 5" 5 (Dse_error.exit_code e))

let test_parallel_optimizer_recovers () =
  let stripped = recovery_stripped () in
  let max_level = Strip.address_bits stripped in
  let addresses = stripped.Strip.uniques in
  let mrct = Mrct.build stripped in
  let expected = Dfs_optimizer.histograms ~addresses mrct ~max_level in
  with_fault (Some { Fault.kind = Fault.Fail; shard = 1; times = 2 }) (fun logs ->
      let got = Parallel_optimizer.histograms ~domains:3 ~addresses mrct ~max_level in
      check_bool "identifier-sharded histograms identical" true (got = expected);
      check_int "degradations logged" 2 (List.length !logs))

let test_explore_invariant_under_fault () =
  (* the user-facing result (--domains N) is invariant under an injected
     shard failure *)
  let trace = Synthetic.loop ~base:0 ~body:37 ~iterations:30 in
  let prepared = Analytical.prepare trace in
  let baseline =
    Optimizer.optimal_pairs (Analytical.explore_prepared ~method_:Analytical.Dfs prepared ~k:5)
  in
  with_fault (Some { Fault.kind = Fault.Fail; shard = 1; times = 1 }) (fun _logs ->
      let faulted =
        Optimizer.optimal_pairs
          (Analytical.explore_prepared ~method_:Analytical.Dfs ~domains:3 prepared ~k:5)
      in
      check_bool "optimal pairs invariant" true (faulted = baseline))

let prop_streaming_shards_with_faults =
  prop ~count:40 "sharded streaming under injected fault = sequential"
    QCheck2.Gen.(triple gen_addresses (int_range 2 5) (int_range 0 4))
    (fun (addrs, domains, faulty_shard) ->
      let stripped = Strip.strip_addresses addrs in
      let max_level = Strip.address_bits stripped in
      let expected = Streaming.histograms stripped ~max_level in
      with_fault (Some { Fault.kind = Fault.Fail; shard = faulty_shard; times = 1 }) (fun _logs ->
          Streaming.histograms ~domains ~shard_threshold:1 stripped ~max_level = expected))

let suites =
  [
    ( "robustness:errors",
      [
        Alcotest.test_case "exit-code scheme" `Quick test_exit_codes;
        Alcotest.test_case "CRC-32 check value" `Quick test_crc32_vector;
        Alcotest.test_case "DSE_FAULT parsing" `Quick test_fault_parse;
        Alcotest.test_case "missing file is Io_error" `Quick test_missing_file_is_io_error;
        Alcotest.test_case "strip rejects negative addresses" `Quick
          test_strip_negative_address;
      ] );
    ( "robustness:binary-v2",
      [
        Alcotest.test_case "header and CRC footer" `Quick test_v2_header_and_footer;
        prop_v1_still_readable;
        prop_corruption_always_structured;
        prop_random_bytes_never_crash;
        Alcotest.test_case "truncation reports the offset" `Quick
          test_truncation_reports_offset;
        Alcotest.test_case "absurd declared length rejected" `Quick test_declared_length_guard;
      ] );
    ( "robustness:lenient",
      [
        Alcotest.test_case "text fail/skip/stop-after" `Quick test_text_lenient_modes;
        Alcotest.test_case "overlong lines" `Quick test_text_overlong_line;
        Alcotest.test_case "dinero lenient" `Quick test_dinero_lenient;
        Alcotest.test_case "binary salvage" `Quick test_binary_lenient_salvage;
      ] );
    ( "robustness:shards",
      [
        Alcotest.test_case "retry recovers" `Quick test_shard_retry_recovers;
        Alcotest.test_case "sequential fallback recovers" `Quick
          test_shard_sequential_fallback;
        Alcotest.test_case "exhausted recovery raises Shard_failure" `Quick
          test_shard_failure_exhausted;
        Alcotest.test_case "parallel optimizer recovers" `Quick
          test_parallel_optimizer_recovers;
        Alcotest.test_case "explore invariant under fault" `Quick
          test_explore_invariant_under_fault;
        prop_streaming_shards_with_faults;
      ] );
  ]
