(* The approximate plane: sketch accuracy, the Che/Fagin estimator, and
   the headline acceptance property — the exact miss count falls inside
   the reported error bars for >= 95% of (depth, associativity) points,
   pooled over every PowerStone trace and a synthetic zipfian grid.
   Approximate mode is allowed to be wrong, not confidently wrong. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let prop ?(count = 60) name gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen f)

(* -- HyperLogLog -- *)

let hll_of_list xs =
  let h = Sketch.Hll.create () in
  List.iter (Sketch.Hll.add h) xs;
  h

let test_hll_accuracy () =
  (* one decade per order of magnitude; the default 2^14 registers give
     ~0.8% standard error, so 4 sigma plus small-range slack is a
     comfortably deterministic bound *)
  List.iter
    (fun n ->
      let h = Sketch.Hll.create () in
      for i = 1 to n do
        Sketch.Hll.add h (i * 7919)
      done;
      let est = Sketch.Hll.estimate h in
      let err = Float.abs (est -. float_of_int n) /. float_of_int n in
      if err > 0.05 then
        Alcotest.failf "HLL at n=%d: estimate %.1f is %.1f%% off" n est (100. *. err))
    [ 100; 1_000; 10_000; 100_000 ]

let gen_small_ints = QCheck2.Gen.(list_size (int_range 0 400) (int_bound 10_000))

let hll_merge_props =
  [
    prop "HLL merge commutes" QCheck2.Gen.(pair gen_small_ints gen_small_ints)
      (fun (xs, ys) ->
        let a = hll_of_list xs and b = hll_of_list ys in
        Sketch.Hll.equal (Sketch.Hll.merge a b) (Sketch.Hll.merge b a));
    prop "HLL merge associates"
      QCheck2.Gen.(triple gen_small_ints gen_small_ints gen_small_ints)
      (fun (xs, ys, zs) ->
        let a = hll_of_list xs and b = hll_of_list ys and c = hll_of_list zs in
        Sketch.Hll.equal
          (Sketch.Hll.merge (Sketch.Hll.merge a b) c)
          (Sketch.Hll.merge a (Sketch.Hll.merge b c)));
    prop "HLL merge is idempotent" gen_small_ints (fun xs ->
        let a = hll_of_list xs in
        Sketch.Hll.equal (Sketch.Hll.merge a a) a);
    prop "HLL merge sketches the union" QCheck2.Gen.(pair gen_small_ints gen_small_ints)
      (fun (xs, ys) ->
        Sketch.Hll.equal
          (Sketch.Hll.merge (hll_of_list xs) (hll_of_list ys))
          (hll_of_list (xs @ ys)));
  ]

let test_distinct_hybrid () =
  (* below the overflow limit the hybrid counter is exact, bit for bit *)
  let d = Sketch.Distinct.create ~limit:512 () in
  for i = 1 to 300 do
    Sketch.Distinct.add d (i * 31)
  done;
  for i = 1 to 300 do
    Sketch.Distinct.add d (i * 31) (* repeats must not count *)
  done;
  check_bool "still exact" true (Sketch.Distinct.exact d);
  check_bool "exact count" true (Sketch.Distinct.estimate d = 300.);
  check_bool "zero reported error" true (Sketch.Distinct.rel_error d = 0.);
  (* past the limit it degrades to HLL, not to garbage *)
  for i = 1 to 5_000 do
    Sketch.Distinct.add d (1_000_000 + (i * 13))
  done;
  check_bool "overflowed" false (Sketch.Distinct.exact d);
  let est = Sketch.Distinct.estimate d in
  let err = Float.abs (est -. 5_300.) /. 5_300. in
  check_bool "HLL-mode estimate within 5%" true (err < 0.05)

(* -- Space-Saving heavy hitters -- *)

let test_heavy_hitter_guarantee () =
  let trace = Synthetic.power_law ~seed:7 ~span:4096 ~skew:1.1 ~length:120_000 () in
  let true_counts = Hashtbl.create 4096 in
  Trace.iter
    (fun { Trace.addr; _ } ->
      Hashtbl.replace true_counts addr (1 + Option.value ~default:0 (Hashtbl.find_opt true_counts addr)))
    trace;
  let profile = Sketch.of_trace trace in
  check_bool "some heavy hitters" true (Array.length profile.Sketch.heavy > 0);
  Array.iter
    (fun (h : Sketch.heavy) ->
      let truth = Option.value ~default:0 (Hashtbl.find_opt true_counts h.Sketch.addr) in
      if truth > h.Sketch.count || truth < h.Sketch.count - h.Sketch.overcount then
        Alcotest.failf "heavy hitter %d: true count %d outside [%d, %d]" h.Sketch.addr truth
          (h.Sketch.count - h.Sketch.overcount)
          h.Sketch.count)
    profile.Sketch.heavy;
  (* counts must come back rank-descending: the fit input ordering *)
  let sorted = ref true in
  Array.iteri
    (fun i (h : Sketch.heavy) ->
      if i > 0 && h.Sketch.count > profile.Sketch.heavy.(i - 1).Sketch.count then sorted := false)
    profile.Sketch.heavy;
  check_bool "count-descending" true !sorted

(* -- Che/Fagin fixed point -- *)

let test_che_fixed_point () =
  let trace = Synthetic.power_law ~seed:3 ~span:2048 ~skew:0.9 ~length:60_000 () in
  let model = Che.of_profile (Sketch.of_trace trace) in
  (* phi(solve_t C) = C: the defining identity, at several capacities *)
  List.iter
    (fun c ->
      let capacity = float_of_int c in
      if capacity < model.Che.distinct then begin
        let t = Che.solve_t model ~capacity in
        let back = Che.phi model t in
        let err = Float.abs (back -. capacity) /. capacity in
        if err > 0.01 then
          Alcotest.failf "fixed point at C=%d: phi(T)=%.2f (%.2f%% off)" c back (100. *. err)
      end)
    [ 2; 8; 32; 128; 512 ];
  (* a cache holding the whole working set has no warm misses *)
  check_bool "saturated solve" true
    (Che.solve_t model ~capacity:(model.Che.distinct +. 1.) = infinity);
  check_bool "saturated misses" true
    (Che.warm_misses_fa model ~capacity:(model.Che.distinct +. 1.) = 0.);
  (* miss count is monotone non-increasing in capacity *)
  let last = ref infinity in
  List.iter
    (fun c ->
      let m = Che.warm_misses_fa model ~capacity:(float_of_int c) in
      check_bool "monotone in capacity" true (m <= !last +. 1e-6);
      last := m)
    [ 1; 2; 4; 8; 16; 32; 64; 128; 256; 512; 1024 ]

let test_zipf_closed_form () =
  (* unit vectors for the alpha > 1 closed form *)
  let r1 = Che.zipf_miss_rate ~alpha:1.5 ~capacity:10. in
  let r2 = Che.zipf_miss_rate ~alpha:1.5 ~capacity:100. in
  let r3 = Che.zipf_miss_rate ~alpha:2.5 ~capacity:100. in
  check_bool "rate in (0, 1]" true (r1 > 0. && r1 <= 1.);
  check_bool "decreasing in capacity" true (r2 < r1);
  check_bool "steeper law misses less" true (r3 < r2);
  (* M(C) ~ (C+1)^(1-alpha): doubling capacity at alpha=2 halves it *)
  let a = Che.zipf_miss_rate ~alpha:2.0 ~capacity:999. in
  let b = Che.zipf_miss_rate ~alpha:2.0 ~capacity:1999. in
  let ratio = a /. b in
  check_bool "scaling exponent" true (Float.abs (ratio -. 2.) < 0.02);
  check_bool "alpha <= 1 rejected" true
    (match Che.zipf_miss_rate ~alpha:1.0 ~capacity:8. with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_fit_recovery () =
  (* regression over a noiseless law recovers its exponent *)
  List.iter
    (fun alpha ->
      let counts =
        Array.init 500 (fun i -> 1e6 *. ((float_of_int (i + 1)) ** (-.alpha)))
      in
      let fit = Che.fit_power_law counts in
      check_bool
        (Printf.sprintf "alpha %.1f recovered" alpha)
        true
        (Float.abs (fit.Che.alpha -. alpha) < 0.02 && fit.Che.r2 > 0.999))
    [ 0.6; 1.0; 1.7 ];
  (* degenerate input falls back instead of exploding *)
  let fallback = Che.fit_power_law [| 3.; 2. |] in
  check_bool "degenerate fallback" true (fallback.Che.alpha = 1.0 && fallback.Che.r2 = 0.)

(* -- streaming ingestion: iter/scan agree with the materialising path -- *)

let with_temp_file suffix f =
  let path = Filename.temp_file "dse_approx" suffix in
  Fun.protect ~finally:(fun () -> if Sys.file_exists path then Sys.remove path) (fun () -> f path)

let test_iter_matches_load () =
  let trace = Synthetic.power_law ~seed:11 ~span:512 ~skew:0.8 ~length:5_000 () in
  with_temp_file ".trace" (fun path ->
      (match Trace_io.save path trace with
      | Ok () -> ()
      | Error e -> Alcotest.failf "save: %s" (Dse_error.to_string e));
      let collected = Trace.create () in
      let stream =
        match Trace_io.iter path (fun ~addr ~kind -> Trace.add collected ~addr ~kind) with
        | Ok s -> s
        | Error e -> Alcotest.failf "iter: %s" (Dse_error.to_string e)
      in
      check_int "streamed refs" (Trace.length trace) stream.Trace_io.refs;
      check_int "nothing skipped" 0 stream.Trace_io.skipped;
      check_bool "same accesses" true (Trace.to_list collected = Trace.to_list trace))

let test_write_binary_stream_roundtrip () =
  let seed = 19 and span = 256 and skew = 1.0 and length = 4_000 in
  let materialised = Synthetic.power_law ~seed ~span ~skew ~length () in
  with_temp_file ".bin" (fun path ->
      let oc = open_out_bin path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () ->
          Trace_io.write_binary_stream oc ~length
            (Synthetic.iter_power_law ~seed ~span ~skew ~length));
      match Trace_io.load_binary path with
      | Ok ingest ->
        check_bool "stream-written file loads identically" true
          (Trace.to_list ingest.Trace_io.trace = Trace.to_list materialised)
      | Error e -> Alcotest.failf "load_binary: %s" (Dse_error.to_string e))

let test_sketch_file_matches_sketch_trace () =
  let trace = Synthetic.power_law ~seed:23 ~span:1024 ~skew:1.2 ~length:20_000 () in
  with_temp_file ".bin" (fun path ->
      (match Trace_io.save_binary path trace with
      | Ok () -> ()
      | Error e -> Alcotest.failf "save_binary: %s" (Dse_error.to_string e));
      match Approx_dse.sketch_file ~format:`Binary path with
      | Error e -> Alcotest.failf "sketch_file: %s" (Dse_error.to_string e)
      | Ok (streamed, stream) ->
        check_int "refs" (Trace.length trace) stream.Trace_io.refs;
        check_bool "identical profile" true (streamed = Sketch.of_trace trace);
        check_bool "fingerprint is the trace's" true
          (streamed.Sketch.fingerprint = Trace.fingerprint trace))

(* -- dse stats cross-check: the sketch's N' against the exact one -- *)

let test_distinct_approx_on_powerstone () =
  List.iter
    (fun (b : Workload.t) ->
      let itrace, dtrace = Workload.traces b in
      List.iter
        (fun (label, trace) ->
          let exact = (Stats.compute trace).Stats.n_unique in
          let approx = Sketch.distinct_of_trace trace in
          let err = Float.abs (approx -. float_of_int exact) /. Float.max 1. (float_of_int exact) in
          if err >= 0.02 then
            Alcotest.failf "%s.%s: distinct_addrs_approx %.1f vs exact %d (%.2f%% error)"
              b.Workload.name label approx exact (100. *. err))
        [ ("i", itrace); ("d", dtrace) ])
    Registry.all

(* -- the acceptance property: exact inside the bars, pooled >= 95% -- *)

let assocs = [ 1; 2; 4; 8; 16 ]

type tally = { mutable points : int; mutable covered : int }

let tally_trace pooled name trace =
  let prepared = Analytical.prepare trace in
  let hists = Analytical.histograms prepared in
  let approx = Approx_dse.prepare (Sketch.of_trace trace) in
  let worst = ref None in
  for level = 0 to Analytical.max_level prepared do
    List.iter
      (fun assoc ->
        let exact =
          float_of_int (Optimizer.misses_of_histogram hists.(level) ~associativity:assoc)
        in
        let b = Approx_dse.misses approx ~depth:(1 lsl level) ~assoc in
        pooled.points <- pooled.points + 1;
        if exact >= b.Approx_dse.lo -. 1e-9 && exact <= b.Approx_dse.hi +. 1e-9 then
          pooled.covered <- pooled.covered + 1
        else if !worst = None then worst := Some (level, assoc, exact, b))
      assocs
  done;
  match !worst with
  | None -> ()
  | Some (level, assoc, exact, b) ->
    (* individual misses are tolerated (the property is pooled), but
       leave a breadcrumb in the test log *)
    Printf.eprintf "approx miss: %s L%d A%d exact=%.0f bars=[%.0f, %.0f]\n%!" name level assoc
      exact b.Approx_dse.lo b.Approx_dse.hi

let test_bars_cover_exact_powerstone () =
  let pooled = { points = 0; covered = 0 } in
  List.iter
    (fun (b : Workload.t) ->
      let itrace, dtrace = Workload.traces b in
      tally_trace pooled (b.Workload.name ^ ".i") itrace;
      tally_trace pooled (b.Workload.name ^ ".d") dtrace)
    Registry.all;
  check_bool "grid evaluated" true (pooled.points > 500);
  let coverage = float_of_int pooled.covered /. float_of_int pooled.points in
  if coverage < 0.95 then
    Alcotest.failf "pooled coverage %.2f%% (%d/%d) below 95%%" (100. *. coverage) pooled.covered
      pooled.points

let test_bars_cover_exact_synthetic () =
  let pooled = { points = 0; covered = 0 } in
  List.iter
    (fun (seed, span, skew, churn) ->
      let trace = Synthetic.power_law ~seed ~span ~skew ~churn ~length:100_000 () in
      let name = Printf.sprintf "zipf(s=%d,span=%d,a=%.1f,c=%.2f)" seed span skew churn in
      tally_trace pooled name trace)
    [
      (1, 1024, 0.6, 0.0);
      (2, 4096, 0.9, 0.0);
      (3, 4096, 1.3, 0.0);
      (4, 2048, 0.8, 0.01);
      (5, 8192, 1.1, 0.002);
    ];
  check_bool "grid evaluated" true (pooled.points > 200);
  let coverage = float_of_int pooled.covered /. float_of_int pooled.points in
  if coverage < 0.95 then
    Alcotest.failf "synthetic pooled coverage %.2f%% (%d/%d) below 95%%" (100. *. coverage)
      pooled.covered pooled.points

(* -- table/optimal shape and internal consistency -- *)

let test_table_shape () =
  let trace = Workload.data_trace (Registry.find "bcnt") in
  let prepared = Approx_dse.prepare (Sketch.of_trace trace) in
  let table = Approx_dse.table ~name:"bcnt" prepared in
  check_bool "default percents" true (table.Approx_dse.percents = Approx_dse.default_percents);
  check_int "budgets per percent" (List.length table.Approx_dse.percents)
    (List.length table.Approx_dse.budgets);
  List.iter
    (fun (depth, cells) ->
      check_bool "depth is a power of two" true (depth land (depth - 1) = 0);
      check_int "cells per row" (List.length table.Approx_dse.percents) (List.length cells);
      List.iter
        (fun (c : Approx_dse.cell) ->
          check_bool "bracket ordered" true
            (c.Approx_dse.assoc_lo <= c.Approx_dse.assoc
            && c.Approx_dse.assoc <= c.Approx_dse.assoc_hi))
        cells)
    table.Approx_dse.rows;
  (* trim keeps the first all-direct-mapped row and drops the rest,
     like the exact presentation rule *)
  let trimmed = Approx_dse.trim table in
  check_bool "trim never grows" true
    (List.length trimmed.Approx_dse.rows <= List.length table.Approx_dse.rows);
  let k = max 1 (int_of_float table.Approx_dse.max_misses.Approx_dse.est / 10) in
  let optimal = Approx_dse.optimal ~k prepared in
  check_int "k echoed" k optimal.Approx_dse.k;
  List.iter
    (fun (l : Approx_dse.level_estimate) ->
      check_int "depth = 2^level" (1 lsl l.Approx_dse.level) l.Approx_dse.depth;
      check_bool "miss bars ordered" true
        (l.Approx_dse.misses.Approx_dse.lo <= l.Approx_dse.misses.Approx_dse.est
        && l.Approx_dse.misses.Approx_dse.est <= l.Approx_dse.misses.Approx_dse.hi))
    optimal.Approx_dse.levels

(* -- daemon smoke: --method approx end to end, cached repeat identical -- *)

let temp_socket_path () =
  let path = Filename.temp_file "dse_approx" ".sock" in
  Sys.remove path;
  path

let test_daemon_approx_smoke () =
  let path = temp_socket_path () in
  let server =
    match
      Server.create ~log:(fun _ -> ())
        { Server.socket_path = path; tcp = None; node_id = None; workers = 2; max_pending = 16;
          cache_entries = 64; wal_path = None; hang_timeout = 30.; max_job_refs = None;
          memory_budget = Some (8 * 1024 * 1024);
          peers = []; replication = 2; replication_queue = 256; anti_entropy = false }
    with
    | Ok s -> s
    | Error e -> Alcotest.failf "server create: %s" (Dse_error.to_string e)
  in
  let runner = Domain.spawn (fun () -> Server.run server) in
  Fun.protect
    ~finally:(fun () ->
      Server.stop server;
      Domain.join runner;
      if Sys.file_exists path then Sys.remove path)
    (fun () ->
      let socket = path in
      (* big enough that an exact submission (18 bytes/ref under the
         default arena pricing) blows the 8 MiB admission budget —
         approx is priced at the sketch's fixed footprint, so it passes
         where exact is rejected *)
      let trace = Synthetic.power_law ~seed:29 ~span:2048 ~skew:1.0 ~length:600_000 () in
      (match Client.submit ~socket ~name:"big" trace with
      | Error (Dse_error.Resource_exhausted _) -> ()
      | Error e -> Alcotest.failf "exact admission: wrong error %s" (Dse_error.to_string e)
      | Ok _ -> Alcotest.fail "exact submission should exceed the memory budget");
      let first =
        match Client.submit ~socket ~approx:true ~name:"big" trace with
        | Ok p -> p
        | Error e -> Alcotest.failf "approx submit: %s" (Dse_error.to_string e)
      in
      check_bool "cold miss" false first.Protocol.cache_hit;
      (match first.Protocol.outcome with
      | Protocol.Approx_table t ->
        check_int "n is the trace length" (Trace.length trace) t.Approx_dse.n
      | _ -> Alcotest.fail "expected an approx table");
      let second =
        match Client.submit ~socket ~approx:true ~name:"big" trace with
        | Ok p -> p
        | Error e -> Alcotest.failf "approx re-submit: %s" (Dse_error.to_string e)
      in
      check_bool "cached" true second.Protocol.cache_hit;
      (* bit-identical: every float crossed the wire as raw IEEE-754
         bits and the cached answer recomputes deterministically *)
      check_bool "bit-identical repeat" true (first.Protocol.outcome = second.Protocol.outcome);
      (* a K re-query of the same profile is answered from the cache *)
      let k_payload =
        match Client.submit ~socket ~approx:true ~k:50 ~name:"big" trace with
        | Ok p -> p
        | Error e -> Alcotest.failf "approx k-query: %s" (Dse_error.to_string e)
      in
      check_bool "k-query hits" true k_payload.Protocol.cache_hit;
      match k_payload.Protocol.outcome with
      | Protocol.Approx_optimal r -> check_int "k echoed" 50 r.Approx_dse.k
      | _ -> Alcotest.fail "expected an approx optimal")

let suites =
  [
    ( "approx:sketch",
      [
        Alcotest.test_case "HLL accuracy across decades" `Quick test_hll_accuracy;
        Alcotest.test_case "hybrid distinct counter" `Quick test_distinct_hybrid;
        Alcotest.test_case "space-saving guarantee" `Quick test_heavy_hitter_guarantee;
      ]
      @ hll_merge_props );
    ( "approx:che",
      [
        Alcotest.test_case "characteristic-time fixed point" `Quick test_che_fixed_point;
        Alcotest.test_case "zipf closed form" `Quick test_zipf_closed_form;
        Alcotest.test_case "power-law fit recovery" `Quick test_fit_recovery;
      ] );
    ( "approx:streaming",
      [
        Alcotest.test_case "iter matches load" `Quick test_iter_matches_load;
        Alcotest.test_case "write_binary_stream round-trip" `Quick
          test_write_binary_stream_roundtrip;
        Alcotest.test_case "sketch_file = sketch of loaded trace" `Quick
          test_sketch_file_matches_sketch_trace;
      ] );
    ( "approx:acceptance",
      [
        Alcotest.test_case "distinct_addrs_approx < 2% on PowerStone" `Slow
          test_distinct_approx_on_powerstone;
        Alcotest.test_case "bars cover exact: PowerStone" `Slow test_bars_cover_exact_powerstone;
        Alcotest.test_case "bars cover exact: synthetic zipf" `Slow
          test_bars_cover_exact_synthetic;
        Alcotest.test_case "table and optimal shape" `Quick test_table_shape;
      ] );
    ( "approx:daemon",
      [ Alcotest.test_case "approx submissions end to end" `Quick test_daemon_approx_smoke ] );
  ]
