(* Tests for the end-to-end exploration drivers: the analytical flow
   must agree with the simulation baselines on real benchmark traces,
   and the produced instances must actually meet their miss budgets. *)

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let data_trace name = Workload.data_trace (Registry.find name)

let instruction_trace name = Workload.instruction_trace (Registry.find name)

(* -- agreement between the analytical flow and the one-pass simulator -- *)

let agreement_case fetch kind name =
  Alcotest.test_case (Printf.sprintf "%s %s trace" name kind) `Slow (fun () ->
      let outcome = Compare.trace ~max_level:8 (fetch name) in
      Alcotest.(check string)
        "agreement" "agree"
        (if Compare.agree outcome then "agree" else Format.asprintf "%a" Compare.pp outcome))

let agreement_cases =
  List.map (agreement_case data_trace "data") [ "qurt"; "engine"; "blit"; "adpcm" ]
  @ List.map (agreement_case instruction_trace "instruction") [ "qurt"; "crc" ]

(* -- the paper's guarantee: produced instances meet the budget -- *)

let test_instances_meet_budget () =
  let trace = data_trace "engine" in
  let table = Analytical_dse.run ~max_level:6 ~name:"engine" trace in
  List.iter
    (fun (depth, assocs) ->
      List.iteri
        (fun column associativity ->
          let budget = List.nth table.Analytical_dse.budgets column in
          let misses = Simulated_dse.non_cold_misses trace ~depth ~associativity in
          check_bool
            (Printf.sprintf "depth %d col %d: %d misses within %d" depth column misses
               budget)
            true (misses <= budget))
        assocs)
    table.Analytical_dse.rows

(* -- minimality: one fewer way must violate the budget -- *)

let test_instances_minimal () =
  let trace = data_trace "blit" in
  let table = Analytical_dse.run ~max_level:6 ~name:"blit" trace in
  List.iter
    (fun (depth, assocs) ->
      List.iteri
        (fun column associativity ->
          if associativity > 1 then begin
            let budget = List.nth table.Analytical_dse.budgets column in
            let misses =
              Simulated_dse.non_cold_misses trace ~depth ~associativity:(associativity - 1)
            in
            check_bool
              (Printf.sprintf "depth %d: %d-way would miss the budget" depth
                 (associativity - 1))
              true (misses > budget)
          end)
        assocs)
    table.Analytical_dse.rows

(* -- baselines agree with each other -- *)

let test_exhaustive_equals_one_pass () =
  let trace = data_trace "qurt" in
  List.iter
    (fun depth ->
      List.iter
        (fun k ->
          check_int
            (Printf.sprintf "depth %d k %d" depth k)
            (Simulated_dse.min_associativity_one_pass trace ~depth ~k)
            (Simulated_dse.min_associativity_exhaustive trace ~depth ~k))
        [ 0; 10; 100 ])
    [ 1; 4; 16; 64 ]

(* -- table mechanics -- *)

let toy_table () =
  Analytical_dse.run ~name:"toy" (Paper_example.trace ())

let test_table_structure () =
  let table = toy_table () in
  check_int "budget count" 4 (List.length table.Analytical_dse.budgets);
  Alcotest.(check (list int)) "percents" [ 5; 10; 15; 20 ] table.Analytical_dse.percents;
  check_int "rows" 5 (List.length table.Analytical_dse.rows);
  Alcotest.(check (list int))
    "depths" [ 1; 2; 4; 8; 16 ]
    (List.map fst table.Analytical_dse.rows)

let test_table_trim () =
  let table = Analytical_dse.trim (toy_table ()) in
  (* associativity 1 is first sufficient at depth 16, the last row, so
     trimming keeps everything here *)
  Alcotest.(check (list int))
    "depths" [ 1; 2; 4; 8; 16 ]
    (List.map fst table.Analytical_dse.rows);
  let last = List.nth table.Analytical_dse.rows 4 in
  check_bool "last row all ones" true (List.for_all (fun a -> a = 1) (snd last))

let test_compare_detects_mismatch () =
  let table = toy_table () in
  let broken =
    {
      table with
      Analytical_dse.rows =
        List.map
          (fun (d, assocs) -> if d = 2 then (d, List.map (fun a -> a + 1) assocs) else (d, assocs))
          table.Analytical_dse.rows;
    }
  in
  let outcome = Compare.tables table broken in
  check_bool "disagree" false (Compare.agree outcome);
  check_int "four mismatches" 4 (List.length outcome.Compare.mismatches);
  check_int "all checked" 20 outcome.Compare.checked

let test_compare_shape_mismatch () =
  let table = toy_table () in
  let truncated = { table with Analytical_dse.rows = List.tl table.Analytical_dse.rows } in
  Alcotest.check_raises "shape" (Invalid_argument "Compare.tables: table shapes differ")
    (fun () -> ignore (Compare.tables table truncated))

let test_report_rendering () =
  let table = toy_table () in
  let text = Format.asprintf "%a" Report.pp_instances table in
  check_bool "mentions depth header" true
    (String.length text > 0
    &&
    let contains s sub =
      let n = String.length s and m = String.length sub in
      let rec scan k = k + m <= n && (String.sub s k m = sub || scan (k + 1)) in
      scan 0
    in
    contains text "depth" && contains text "5%" && contains text "toy")

let test_csv_output () =
  let csv = Report.instances_to_csv (toy_table ()) in
  let lines = String.split_on_char '\n' csv |> List.filter (fun l -> l <> "") in
  check_int "lines" 6 (List.length lines);
  Alcotest.(check string) "header" "depth,5%,10%,15%,20%" (List.hd lines)

let test_stats_report () =
  let rows = [ ("toy", Stats.compute (Paper_example.trace ())) ] in
  let text = Format.asprintf "%a" Report.pp_stats_table rows in
  check_bool "has benchmark" true (String.length text > 20)

(* -- codesign budget partitioning -- *)

let test_codesign_meets_budgets () =
  let bench = Registry.find "crc" in
  let itrace, dtrace = Workload.traces bench in
  let k_total = 4000 in
  let best = Codesign.partition ~steps:8 ~itrace ~dtrace ~k_total () in
  check_int "budgets sum" k_total (best.Codesign.k_instruction + best.Codesign.k_data);
  let misses trace (instance : Codesign.instance) =
    Simulated_dse.non_cold_misses trace ~depth:instance.Codesign.depth
      ~associativity:instance.Codesign.associativity
  in
  check_bool "instruction side meets its budget" true
    (misses itrace best.Codesign.instruction <= best.Codesign.k_instruction);
  check_bool "data side meets its budget" true
    (misses dtrace best.Codesign.data <= best.Codesign.k_data);
  check_int "total size consistent"
    best.Codesign.total_size
    (best.Codesign.instruction.Codesign.size_words + best.Codesign.data.Codesign.size_words)

let test_codesign_beats_naive_split () =
  let bench = Registry.find "crc" in
  let itrace, dtrace = Workload.traces bench in
  let k_total = 4000 in
  let sweep = Codesign.sweep ~steps:8 ~itrace ~dtrace ~k_total () in
  let best = Codesign.partition ~steps:8 ~itrace ~dtrace ~k_total () in
  check_bool "best is minimal over the sweep" true
    (List.for_all (fun c -> best.Codesign.total_size <= c.Codesign.total_size) sweep);
  check_int "sweep size" 9 (List.length sweep)

let test_codesign_validation () =
  let t = Paper_example.trace () in
  let violation message =
    Dse_error.Error (Dse_error.Constraint_violation { context = "codesign"; message })
  in
  Alcotest.check_raises "negative" (violation "negative budget") (fun () ->
      ignore (Codesign.sweep ~itrace:t ~dtrace:t ~k_total:(-1) ()));
  Alcotest.check_raises "steps" (violation "steps must be >= 1") (fun () ->
      ignore (Codesign.sweep ~steps:0 ~itrace:t ~dtrace:t ~k_total:1 ()))

let test_smallest_instance () =
  let prepared = Analytical.prepare (Paper_example.trace ()) in
  let instance = Codesign.smallest_instance prepared ~k:0 in
  (* candidates: 1x5, 2x3, 4x2, 8x2, 16x1 -> 1x5 is the smallest (5 words) *)
  check_int "depth" 1 instance.Codesign.depth;
  check_int "assoc" 5 instance.Codesign.associativity;
  check_int "size" 5 instance.Codesign.size_words

(* -- timing -- *)

let test_linear_fit_perfect () =
  let samples =
    List.map
      (fun (name, n, n', s) -> { Timing.name; n; n_unique = n'; seconds = s })
      [ ("a", 10, 10, 0.1); ("b", 100, 10, 1.0); ("c", 1000, 10, 10.0) ]
  in
  let slope, intercept, r2 = Timing.linear_fit samples in
  check_bool "slope" true (abs_float (slope -. 0.001) < 1e-9);
  check_bool "intercept" true (abs_float intercept < 1e-9);
  check_bool "r2" true (abs_float (r2 -. 1.0) < 1e-9)

let test_linear_fit_needs_samples () =
  Alcotest.check_raises "one sample" (Invalid_argument "Timing.linear_fit: need at least two samples")
    (fun () ->
      ignore (Timing.linear_fit [ { Timing.name = "x"; n = 1; n_unique = 1; seconds = 0.0 } ]))

let test_timing_sample () =
  let sample = Timing.analytical_sample ~name:"toy" (Paper_example.trace ()) in
  check_int "n" 10 sample.Timing.n;
  check_int "n'" 5 sample.Timing.n_unique;
  check_bool "time non-negative" true (sample.Timing.seconds >= 0.0);
  check_bool "work" true (Timing.work sample = 50.0)

let suites =
  [
    ("explorer:agreement", agreement_cases);
    ( "explorer:guarantee",
      [
        Alcotest.test_case "instances meet budget (simulated)" `Slow test_instances_meet_budget;
        Alcotest.test_case "instances are minimal" `Slow test_instances_minimal;
        Alcotest.test_case "exhaustive = one-pass baseline" `Slow test_exhaustive_equals_one_pass;
      ] );
    ( "explorer:tables",
      [
        Alcotest.test_case "structure" `Quick test_table_structure;
        Alcotest.test_case "trim" `Quick test_table_trim;
        Alcotest.test_case "compare detects mismatch" `Quick test_compare_detects_mismatch;
        Alcotest.test_case "compare shape mismatch" `Quick test_compare_shape_mismatch;
        Alcotest.test_case "report rendering" `Quick test_report_rendering;
        Alcotest.test_case "csv output" `Quick test_csv_output;
        Alcotest.test_case "stats report" `Quick test_stats_report;
      ] );
    ( "explorer:codesign",
      [
        Alcotest.test_case "meets both budgets" `Slow test_codesign_meets_budgets;
        Alcotest.test_case "minimal over sweep" `Slow test_codesign_beats_naive_split;
        Alcotest.test_case "validation" `Quick test_codesign_validation;
        Alcotest.test_case "smallest instance" `Quick test_smallest_instance;
      ] );
    ( "explorer:timing",
      [
        Alcotest.test_case "linear fit" `Quick test_linear_fit_perfect;
        Alcotest.test_case "fit needs samples" `Quick test_linear_fit_needs_samples;
        Alcotest.test_case "sample" `Quick test_timing_sample;
      ] );
  ]
