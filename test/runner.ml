(* Single Alcotest entry point aggregating every area's suites. *)

let () =
  Alcotest.run "cache_dse"
    (List.concat
       [
         Test_bitset.suites;
         Test_trace.suites;
         Test_robustness.suites;
         Test_cachesim.suites;
         Test_core.suites;
         Test_streaming.suites;
         Test_arena.suites;
         Test_vm.suites;
         Test_asm_parser.suites;
         Test_powerstone.suites;
         Test_explorer.suites;
         Test_approx.suites;
         Test_server.suites;
         Test_router.suites;
         Test_selfheal.suites;
         Test_replication.suites;
         Test_membership.suites;
         Test_supervision.suites;
         Test_extensions.suites;
         Test_cost.suites;
         Test_hierarchy.suites;
         Test_minic.suites;
         Test_minic_programs.suites;
         Test_hierarchy_dse.suites;
       ])
