(* Tests for the off-heap arena kernel: the Arena primitives (bitsets,
   growable word arenas), the arena strip builder against the boxed
   prelude, and bit-identity of the arena histograms with the streaming
   kernel, the materialized DFS path, and the reference simulator —
   including the zero-copy guarantee that sharding never clones the
   strip onto the GC heap. *)

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let prop ?(count = 120) name gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen f)

let gen_addresses = QCheck2.Gen.(array_size (int_range 1 250) (int_bound 127))

let gen_line_words = QCheck2.Gen.map (fun k -> 1 lsl k) (QCheck2.Gen.int_bound 3)

let materialized_histograms stripped ~max_level =
  Dfs_optimizer.histograms ~addresses:stripped.Strip.uniques (Mrct.build stripped) ~max_level

(* -- Arena primitives -- *)

let test_i32_roundtrip () =
  let a = Arena.i32_create 5 in
  check_int "zero-filled" 0 (Arena.i32_get a 3);
  Arena.i32_set a 3 123456;
  check_int "set/get" 123456 (Arena.i32_get a 3);
  Arena.i32_set a 0 (-7);
  check_int "negative survives the int32 round-trip" (-7) (Arena.i32_get a 0);
  Arena.i32_fill a 9;
  check_int "fill" 9 (Arena.i32_get a 4);
  check_int "length" 5 (Arena.i32_length a);
  (* a requested size of 0 still allocates a sentinel slot *)
  check_int "empty arena still addressable" 1 (Arena.i32_length (Arena.i32_create 0))

let test_word_grow () =
  let a = Arena.word_create 4 in
  for i = 0 to 3 do
    Arena.word_set a i (10 * i)
  done;
  let b = Arena.word_grow a ~len:4 ~capacity:10 in
  check_int "grown length" 10 (Arena.word_length b);
  for i = 0 to 3 do
    check_int "prefix preserved" (10 * i) (Arena.word_get b i)
  done;
  for i = 4 to 9 do
    check_int "tail zeroed" 0 (Arena.word_get b i)
  done

let test_bits_basic () =
  (* indices straddling the 63-bit word boundary *)
  let b = Arena.Bits.create 200 in
  check_int "length" 200 (Arena.Bits.length b);
  List.iter
    (fun i ->
      check_bool "initially clear" false (Arena.Bits.get b i);
      Arena.Bits.set b i;
      check_bool "set" true (Arena.Bits.get b i))
    [ 0; 62; 63; 64; 125; 126; 127; 199 ];
  check_int "popcount" 8 (Arena.Bits.popcount b);
  Arena.Bits.unset b 63;
  check_bool "unset" false (Arena.Bits.get b 63);
  check_bool "neighbours untouched" true (Arena.Bits.get b 62 && Arena.Bits.get b 64);
  check_int "popcount after unset" 7 (Arena.Bits.popcount b);
  Arena.Bits.clear b;
  check_int "popcount after clear" 0 (Arena.Bits.popcount b);
  check_bool "cleared" false (Arena.Bits.get b 126);
  Alcotest.check_raises "negative size" (Invalid_argument "Arena.Bits.create: negative size")
    (fun () -> ignore (Arena.Bits.create (-1)))

let prop_bits_popcount =
  prop "Bits.popcount = cardinality of the set index set"
    QCheck2.Gen.(list_size (int_bound 80) (int_bound 499))
    (fun indices ->
      let b = Arena.Bits.create 500 in
      List.iter (Arena.Bits.set b) indices;
      let distinct = List.sort_uniq compare indices in
      Arena.Bits.popcount b = List.length distinct
      && List.for_all (Arena.Bits.get b) distinct)

(* -- the arena strip vs the boxed prelude -- *)

let test_strip_paper_example () =
  let trace = Paper_example.trace () in
  let astrip = Arena_kernel.of_trace trace in
  let stripped = Strip.strip trace in
  check_int "num_refs" (Strip.num_refs stripped) (Arena_kernel.num_refs astrip);
  check_int "num_unique" (Strip.num_unique stripped) (Arena_kernel.num_unique astrip);
  check_int "address_bits" (Strip.address_bits stripped) (Arena_kernel.address_bits astrip);
  check_bool "to_strip = Strip.strip" true (Arena_kernel.to_strip astrip = stripped);
  check_bool "stats = compute_stripped" true
    (Arena_kernel.stats astrip = Stats.compute_stripped stripped)

let prop_strip_equals_boxed =
  prop "arena strip = boxed strip (ids, uniques, stats; random line_words)"
    QCheck2.Gen.(pair gen_addresses gen_line_words)
    (fun (addrs, line_words) ->
      let prepared = Analytical.prepare ~line_words (Trace.of_addresses addrs) in
      let astrip = Analytical.arena_strip prepared in
      let stripped = Analytical.stripped prepared in
      Arena_kernel.to_strip astrip = stripped
      && Arena_kernel.stats astrip = Stats.compute_stripped stripped)

let test_strip_empty_trace () =
  let astrip = Arena_kernel.of_trace (Trace.create ()) in
  check_int "no refs" 0 (Arena_kernel.num_refs astrip);
  check_int "no uniques" 0 (Arena_kernel.num_unique astrip);
  check_int "address_bits floor" 1 (Arena_kernel.address_bits astrip);
  let hists = Arena_kernel.histograms astrip ~max_level:3 in
  check_int "levels" 4 (Array.length hists);
  Array.iter (fun h -> Alcotest.(check (array int)) "empty level" [| 0 |] h) hists;
  check_bool "sharded empty identical" true
    (Arena_kernel.histograms ~domains:8 astrip ~max_level:3 = hists)

let test_strip_rejects_bad_line_words () =
  let trace = Trace.of_addresses [| 1; 2; 3 |] in
  List.iter
    (fun line_words ->
      Alcotest.check_raises "bad line_words"
        (Invalid_argument "Arena_kernel.of_trace: line_words must be a positive power of two")
        (fun () -> ignore (Arena_kernel.of_trace ~line_words trace)))
    [ 0; -4; 3; 12 ]

(* -- histogram identity: arena = streaming = materialized = simulator -- *)

let prop_arena_equals_streaming =
  prop "arena histograms = streaming = materialized DFS (random line_words)"
    QCheck2.Gen.(pair gen_addresses gen_line_words)
    (fun (addrs, line_words) ->
      let prepared = Analytical.prepare ~line_words (Trace.of_addresses addrs) in
      let stripped = Analytical.stripped prepared in
      let max_level = Analytical.max_level prepared in
      let arena = Arena_kernel.histograms (Analytical.arena_strip prepared) ~max_level in
      arena = Streaming.histograms stripped ~max_level
      && arena = materialized_histograms stripped ~max_level)

let prop_arena_shard_invariant =
  prop ~count:60 "arena histograms independent of domain count (forced sharding)"
    QCheck2.Gen.(pair gen_addresses (int_range 2 6))
    (fun (addrs, domains) ->
      let astrip = Arena_kernel.of_trace (Trace.of_addresses addrs) in
      let max_level = Arena_kernel.address_bits astrip in
      let seq = Arena_kernel.histograms astrip ~max_level in
      (* shard_threshold 8 defeats the min_shard_refs fallback, so even
         these small traces genuinely split into windows *)
      Arena_kernel.histograms ~domains ~shard_threshold:8 astrip ~max_level = seq
      && Arena_kernel.histograms ~domains astrip ~max_level = seq)

let prop_arena_exact_vs_simulator =
  prop ~count:150 "arena misses = streaming misses = simulated LRU non-cold misses"
    QCheck2.Gen.(
      quad gen_addresses (map (fun k -> 1 lsl k) (int_bound 5)) (int_range 1 6) gen_line_words)
    (fun (addrs, depth, associativity, line_words) ->
      QCheck2.assume (Array.length addrs > 0);
      let trace = Trace.of_addresses addrs in
      let prepared = Analytical.prepare ~line_words trace in
      let depth = min depth (1 lsl Analytical.max_level prepared) in
      let arena = Analytical.misses ~method_:Analytical.Arena prepared ~depth ~associativity in
      let streaming =
        Analytical.misses ~method_:Analytical.Streaming prepared ~depth ~associativity
      in
      let sim =
        (Cache.simulate (Config.make ~line_words ~depth ~associativity ()) trace).Cache.misses
      in
      arena = streaming && arena = sim)

let prop_explore_arena_agrees =
  prop ~count:80 "explore: arena = streaming = dfs" gen_addresses (fun addrs ->
      QCheck2.assume (Array.length addrs > 0);
      let prepared = Analytical.prepare (Trace.of_addresses addrs) in
      let pairs method_ =
        Optimizer.optimal_pairs (Analytical.explore_prepared ~method_ prepared ~k:7)
      in
      pairs Analytical.Arena = pairs Analytical.Streaming
      && pairs Analytical.Arena = pairs Analytical.Dfs)

(* the fallback threshold hides the sharded path from small random
   traces, so also drive a trace long enough to shard for real *)
let test_arena_sharded_long_trace () =
  let body = 37 and iterations = (4 * Streaming.min_shard_refs / 37) + 1 in
  let trace = Synthetic.loop ~base:0 ~body ~iterations in
  let astrip = Arena_kernel.of_trace trace in
  let max_level = Arena_kernel.address_bits astrip in
  check_bool "trace long enough to shard" true
    (Arena_kernel.num_refs astrip >= 4 * Streaming.min_shard_refs);
  let seq = Arena_kernel.histograms astrip ~max_level in
  check_bool "4 shards identical" true
    (Arena_kernel.histograms ~domains:4 astrip ~max_level = seq);
  check_bool "matches streaming" true
    (Streaming.histograms (Strip.strip trace) ~max_level = seq)

(* every PowerStone workload, both trace kinds: the kernel that ships as
   the default must agree with the boxed one on all 24 real traces *)
let powerstone_identity_case (b : Workload.t) =
  Alcotest.test_case (b.Workload.name ^ " arena = streaming (inst + data)") `Slow (fun () ->
      let itrace, dtrace = Workload.traces b in
      List.iter
        (fun trace ->
          let stripped = Strip.strip trace in
          let max_level = Strip.address_bits stripped in
          check_bool "identical histograms" true
            (Arena_kernel.histograms (Arena_kernel.of_trace trace) ~max_level
            = Streaming.histograms stripped ~max_level))
        [ itrace; dtrace ])

(* -- the zero-copy guarantee -- *)

let test_sharded_run_copies_no_strip () =
  (* 4 x min_shard_refs references: a boxed clone of the ids array alone
     would put >= 262144 words on the major heap (large arrays are
     allocated there directly). The sharded arena run hands every domain
     the same bigarray handles, so cumulative major-heap allocation
     stays orders of magnitude below one strip copy. *)
  let refs = 4 * Streaming.min_shard_refs in
  let trace = Synthetic.loop ~base:0 ~body:48 ~iterations:((refs + 47) / 48) in
  let astrip = Arena_kernel.of_trace trace in
  let max_level = Arena_kernel.address_bits astrip in
  Gc.full_major ();
  let before = (Gc.stat ()).Gc.major_words in
  let hists = Arena_kernel.histograms ~domains:4 astrip ~max_level in
  let major_delta = (Gc.stat ()).Gc.major_words -. before in
  check_bool
    (Printf.sprintf "major-heap allocation (%.0f words) below half a strip copy" major_delta)
    true
    (major_delta < float_of_int (Arena_kernel.num_refs astrip) /. 2.);
  check_bool "and the result is right" true
    (Streaming.histograms (Strip.strip trace) ~max_level = hists)

(* -- errors and degenerate input -- *)

let test_arena_rejects_negative_level () =
  let astrip = Arena_kernel.of_trace (Trace.of_addresses [| 1 |]) in
  Alcotest.check_raises "negative max_level"
    (Invalid_argument "Arena_kernel: negative max_level") (fun () ->
      ignore (Arena_kernel.histograms astrip ~max_level:(-1)));
  Alcotest.check_raises "negative misses level"
    (Invalid_argument "Arena_kernel.misses: negative level") (fun () ->
      ignore (Arena_kernel.misses astrip ~level:(-1) ~associativity:1))

let test_arena_repeated_single_address () =
  let astrip = Arena_kernel.of_trace (Trace.of_addresses (Array.make 1000 5)) in
  let hists = Arena_kernel.histograms astrip ~max_level:2 in
  Array.iter (fun h -> Alcotest.(check (array int)) "no conflicts" [| 0 |] h) hists;
  check_int "no non-cold misses" 0 (Arena_kernel.misses astrip ~level:0 ~associativity:1)

let test_arena_cancellation () =
  let astrip =
    Arena_kernel.of_trace (Synthetic.loop ~base:0 ~body:48 ~iterations:4096)
  in
  let cancel = Cancel.cancellable () in
  Cancel.cancel cancel;
  match Arena_kernel.histograms ~cancel astrip ~max_level:(Arena_kernel.address_bits astrip) with
  | exception Dse_error.Error (Dse_error.Deadline_exceeded _) -> ()
  | _ -> Alcotest.fail "already-cancelled token did not stop the kernel"

let suites =
  [
    ( "arena",
      [
        Alcotest.test_case "i32 arena round-trip" `Quick test_i32_roundtrip;
        Alcotest.test_case "word_grow preserves prefix, zeroes tail" `Quick test_word_grow;
        Alcotest.test_case "bitset across word boundaries" `Quick test_bits_basic;
        prop_bits_popcount;
      ] );
    ( "arena-kernel",
      [
        Alcotest.test_case "paper example strip" `Quick test_strip_paper_example;
        prop_strip_equals_boxed;
        Alcotest.test_case "empty trace" `Quick test_strip_empty_trace;
        Alcotest.test_case "bad line_words rejected" `Quick test_strip_rejects_bad_line_words;
        prop_arena_equals_streaming;
        prop_arena_shard_invariant;
        prop_arena_exact_vs_simulator;
        prop_explore_arena_agrees;
        Alcotest.test_case "sharded long trace" `Quick test_arena_sharded_long_trace;
        Alcotest.test_case "sharded run copies no strip" `Quick
          test_sharded_run_copies_no_strip;
        Alcotest.test_case "negative levels rejected" `Quick test_arena_rejects_negative_level;
        Alcotest.test_case "repeated single address" `Quick test_arena_repeated_single_address;
        Alcotest.test_case "pre-cancelled token" `Quick test_arena_cancellation;
      ] );
    ("arena-powerstone", List.map powerstone_identity_case Registry.all);
  ]
