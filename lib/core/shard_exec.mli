(** Shard-isolated parallel execution.

    [Domain.spawn] as used naively propagates any worker exception
    through [Domain.join], so one crashing shard used to take down an
    entire [--domains N] exploration. This module isolates each shard:
    exceptions are captured per shard, a failed shard is retried once in
    a fresh domain, and if the retry fails too the shard's work is
    recomputed sequentially in the calling domain (both degradations are
    reported through {!Dse_error.on_degradation}). Only when all three
    attempts fail does a typed {!Dse_error.Shard_failure} escape.

    {!Fault} is consulted before every attempt, making each rung of the
    recovery ladder testable.

    Cooperative cancellation cuts through the ladder: [cancel] is
    checked before every attempt, and a {!Dse_error.Deadline_exceeded}
    escaping a shard is re-raised immediately — an expired shard is
    never retried or recomputed, so an expired job frees its domains at
    the next poll instead of burning the full ladder. *)

(** [map ?cancel f count] computes [[f 0; f 1; ...; f (count-1)]], one
    shard per domain — shard [0] in the calling domain, the rest
    spawned. [f] must be safe to re-execute (the shard kernels are
    pure). Raises {!Dse_error.Error} ([Shard_failure]) only after retry
    and sequential recomputation of a shard have both failed, or
    ([Deadline_exceeded]) as soon as [cancel] (default {!Cancel.none})
    expires. *)
val map : ?cancel:Cancel.t -> (int -> 'a) -> int -> 'a list
