(** Typed error taxonomy for the DSE pipeline.

    The analytical kernel is exact — but exactness is only as
    trustworthy as the inputs and the engine. Every recoverable failure
    in trace ingestion and parallel exploration is classified here, so
    callers can react per class (and the [dse] CLI can map each class to
    a distinct process exit code) instead of pattern-matching on
    [Failure] strings. *)

type t =
  | Parse_error of { file : string; line : int; message : string }
      (** A malformed line in a text or Dinero trace file. *)
  | Corrupt_binary of { file : string; offset : int; message : string }
      (** Structural damage in a binary trace: bad magic, truncated or
          overlong varint, bad kind tag, length/CRC mismatch. [offset]
          is the byte position where the damage was detected. *)
  | Constraint_violation of { context : string; message : string }
      (** A caller-supplied parameter outside its domain (usage error). *)
  | Shard_failure of { shard : int; attempts : int; message : string }
      (** A parallel shard kept failing after every recovery path
          (respawn retry, then sequential recomputation) was exhausted. *)
  | Io_error of { file : string; message : string }
      (** The operating system refused an open/read/write. *)
  | Queue_full of { pending : int; max_pending : int; retry_after : float }
      (** The [dse serve] job queue is at its [--max-pending] depth — or
          past its shed watermark for heavy jobs — so the submission was
          rejected, not buffered. Retryable by design; [retry_after] is
          the server's hint (seconds) for when capacity should free up,
          and the client backoff never sleeps less than it. *)
  | Deadline_exceeded of { elapsed : float; limit : float }
      (** A job's cooperative-cancellation deadline expired: the kernel
          polled its [Cancel] token past the [limit] (seconds) and
          stopped after [elapsed] seconds. The worker is freed; whether
          a retry makes sense is the submitter's call. *)
  | Worker_stalled of { elapsed : float; job : string }
      (** The watchdog saw no heartbeat from the worker running [job]
          for [elapsed] seconds (past [--hang-timeout]): the worker
          stopped reaching its cancellation poll points. The wedged
          domain was abandoned and a replacement spawned; the job itself
          is lost and deliberately not retried (a deterministic hang
          would wedge the replacement too). *)
  | Resource_exhausted of { resource : string; needed : int; budget : int }
      (** Admission control rejected the job up front — its declared
          size exceeds [--max-job-refs] or its estimated footprint
          exceeds [--memory-budget] — before any trace allocation, so an
          oversized submission cannot OOM the daemon. Not retryable
          against the same server. *)
  | Backend_unavailable of { node : string; attempts : int }
      (** The [dse route] gateway exhausted failover: the ring node
          owning the job's fingerprint ([node]) and every fallback
          candidate were dead, wedged, or breaker-open across [attempts]
          forwarding attempts. Raised only after the whole ring was
          tried — a single backend death never surfaces this. Retryable
          once any backend returns. *)
  | Stale_ring of { seen : int; expected : int }
      (** A cluster-internal exchange ([Replicate], [Cache_query], or an
          anti-entropy digest) carried ring version [seen] while the
          receiver's membership is at version [expected]. The exchange
          was rejected {e before} any state was applied — a peer with an
          outdated fleet view must never place warm state under a stale
          ring. The sender's recovery is a config refetch
          ([Ring_status]) followed by a retry under the adopted
          version. *)

exception Error of t

(** [fail e] raises {!Error}. *)
val fail : t -> 'a

(** [to_string e] renders the error with its location context. *)
val to_string : t -> string

(** [exit_code e] maps the class to the [dse] CLI exit-code scheme:
    2 = usage ([Constraint_violation]), 3 = I/O ([Io_error]),
    4 = corrupt data ([Parse_error], [Corrupt_binary]),
    5 = internal ([Shard_failure]), 6 = server busy ([Queue_full]),
    7 = deadline expired ([Deadline_exceeded]), 8 = supervision
    ([Worker_stalled], [Resource_exhausted]), 9 = routing
    ([Backend_unavailable]), 10 = membership ([Stale_ring]). *)
val exit_code : t -> int

(** Hook invoked whenever the parallel engine degrades (a shard retry or
    a fall-back to sequential recomputation). Defaults to printing on
    stderr; tests redirect it to capture or silence the log. *)
val on_degradation : (string -> unit) ref

(** [degraded msg] invokes {!on_degradation}. *)
val degraded : string -> unit
