let merge_histograms parts =
  match parts with
  | [] -> [||]
  | first :: _ ->
    let levels = Array.length first in
    Array.init levels (fun level ->
        let width =
          List.fold_left (fun acc part -> max acc (Array.length part.(level))) 1 parts
        in
        let merged = Array.make width 0 in
        List.iter
          (fun part ->
            Array.iteri (fun c n -> merged.(c) <- merged.(c) + n) part.(level))
          parts;
        merged)

let histograms ?(cancel = Cancel.none) ~domains ~addresses mrct ~max_level =
  let domains = max 1 domains in
  let n' = Mrct.num_unique mrct in
  Cancel.check cancel;
  if domains = 1 || n' = 0 then Dfs_optimizer.histograms ~addresses mrct ~max_level
  else begin
    let chunk = (n' + domains - 1) / domains in
    match
      List.init domains (fun d -> (d * chunk, min n' ((d + 1) * chunk)))
      |> List.filter (fun (lo, hi) -> lo < hi)
      |> Array.of_list
    with
    | [||] -> Dfs_optimizer.histograms ~addresses mrct ~max_level
    | chunks ->
      (* one shard-isolated domain per identifier chunk (shard 0 runs
         here); a crashed shard is retried, then recomputed sequentially *)
      merge_histograms
        (Shard_exec.map ~cancel
           (fun shard ->
             let lo, hi = chunks.(shard) in
             Dfs_optimizer.histograms_range ~addresses mrct ~max_level ~lo ~hi)
           (Array.length chunks))
  end

let explore ?cancel ~domains ~addresses mrct ~max_level ~k =
  Optimizer.of_histograms ~k (histograms ?cancel ~domains ~addresses mrct ~max_level)
