type kind = Fail | Hang | Net_drop | Net_delay of int

type spec = { kind : kind; shard : int; times : int }

(* The armed state is written before any domain is spawned and only read
   concurrently; the per-attempt budget is an atomic so parallel shards
   cannot double-consume it. *)
let state : (kind * int * int Atomic.t) option ref = ref None

(* Hung shards spin on this flag (via Shard_exec) instead of sleeping
   forever, so tests and benches can unwedge their zombie domains during
   teardown. Releases are sticky until the next [set]. *)
let released = Atomic.make false

let set spec =
  Atomic.set released false;
  match spec with
  | None -> state := None
  | Some { kind; shard; times } -> state := Some (kind, shard, Atomic.make times)

let parse s =
  let spec kind shard times = Some { kind; shard; times } in
  match String.split_on_char ':' s with
  | [ ("shard" | "hang") as which; k ] -> (
    match int_of_string_opt k with
    | Some shard when shard >= 0 ->
      spec (if which = "hang" then Hang else Fail) shard 1
    | _ -> None)
  | [ ("shard" | "hang") as which; k; t ] -> (
    match (int_of_string_opt k, int_of_string_opt t) with
    | Some shard, Some times when shard >= 0 && times >= 1 ->
      spec (if which = "hang" then Hang else Fail) shard times
    | _ -> None)
  | [ "net"; "drop"; k ] -> (
    match int_of_string_opt k with
    | Some times when times >= 1 -> spec Net_drop 0 times
    | _ -> None)
  | [ "net"; "delay"; k; ms ] -> (
    match (int_of_string_opt k, int_of_string_opt ms) with
    | Some times, Some ms when times >= 1 && ms >= 0 -> spec (Net_delay ms) 0 times
    | _ -> None)
  | _ -> None

let arm s =
  match parse s with
  | Some spec ->
    set (Some spec);
    true
  | None -> false

let install_from_env () =
  set (Option.bind (Sys.getenv_opt "DSE_FAULT") parse)

let take remaining =
  let rec take () =
    let r = Atomic.get remaining in
    if r <= 0 then false
    else if Atomic.compare_and_set remaining r (r - 1) then true
    else take ()
  in
  take ()

let claim want ~shard =
  match !state with
  | None -> false
  | Some (kind, target, remaining) -> kind = want && target = shard && take remaining

let should_fail = claim Fail

let should_hang = claim Hang

let net_drop () =
  match !state with
  | Some (Net_drop, _, remaining) -> take remaining
  | _ -> false

let net_delay () =
  match !state with
  | Some (Net_delay ms, _, remaining) -> if take remaining then Some ms else None
  | _ -> None

let release_hangs () = Atomic.set released true

let hang_released () = Atomic.get released
