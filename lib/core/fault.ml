type spec = { shard : int; times : int }

(* The armed state is written before any domain is spawned and only read
   concurrently; the per-attempt budget is an atomic so parallel shards
   cannot double-consume it. *)
let state : (int * int Atomic.t) option ref = ref None

let set = function
  | None -> state := None
  | Some { shard; times } -> state := Some (shard, Atomic.make times)

let parse s =
  match String.split_on_char ':' s with
  | [ "shard"; k ] -> (
    match int_of_string_opt k with
    | Some shard when shard >= 0 -> Some { shard; times = 1 }
    | _ -> None)
  | [ "shard"; k; t ] -> (
    match (int_of_string_opt k, int_of_string_opt t) with
    | Some shard, Some times when shard >= 0 && times >= 1 -> Some { shard; times }
    | _ -> None)
  | _ -> None

let install_from_env () =
  set (Option.bind (Sys.getenv_opt "DSE_FAULT") parse)

let should_fail ~shard =
  match !state with
  | None -> false
  | Some (target, remaining) ->
    target = shard
    &&
    let rec claim () =
      let r = Atomic.get remaining in
      if r <= 0 then false
      else if Atomic.compare_and_set remaining r (r - 1) then true
      else claim ()
    in
    claim ()
