(** Fault injection for testing shard recovery.

    The parallel engine ({!Shard_exec}) consults this hook before each
    shard attempt, so the recovery ladder — spawn, retry in a fresh
    domain, sequential recomputation — is exercisable in CI without OS
    tricks. An injection names one shard and how many consecutive
    attempts on it must fail:

    - [times = 1]: the first attempt dies, the retry succeeds;
    - [times = 2]: the retry dies too, the sequential fall-back succeeds;
    - [times >= 3]: every path dies and {!Dse_error.Shard_failure}
      escapes.

    The hook is off unless armed via {!set} (tests) or the [DSE_FAULT]
    environment variable (CLI, see {!install_from_env}). *)

type spec = { shard : int; times : int }

(** [parse s] reads ["shard:K"] (one failure on shard [K]) or
    ["shard:K:T"] ([T] failures). Returns [None] on anything else. *)
val parse : string -> spec option

(** [set spec] arms ([Some]) or disarms ([None]) the injection. The
    attempt budget is reset. *)
val set : spec option -> unit

(** [install_from_env ()] arms from [DSE_FAULT] if set and well-formed;
    disarms otherwise. *)
val install_from_env : unit -> unit

(** [should_fail ~shard] is [true] when this attempt on [shard] must be
    failed; each [true] consumes one unit of the armed budget. Safe to
    call from any domain. *)
val should_fail : shard:int -> bool
