(** Fault injection for testing shard recovery and worker supervision.

    The parallel engine ({!Shard_exec}) consults this hook before each
    shard attempt, so the recovery ladder — spawn, retry in a fresh
    domain, sequential recomputation — and the [dse serve] watchdog are
    exercisable in CI without OS tricks. An injection names one shard, a
    kind, and how many consecutive attempts on it are affected.

    With [kind = Fail] (the ladder):
    - [times = 1]: the first attempt dies, the retry succeeds;
    - [times = 2]: the retry dies too, the sequential fall-back succeeds;
    - [times >= 3]: every path dies and {!Dse_error.Shard_failure}
      escapes.

    With [kind = Hang] (the watchdog): the attempt blocks silently —
    no exception, no cancellation poll, no heartbeat — until
    {!release_hangs}, simulating a wedged worker. Under [dse serve] the
    watchdog detects the silence past [--hang-timeout], abandons the
    domain and answers {!Dse_error.Worker_stalled}.

    The hook is off unless armed via {!set} (tests) or the [DSE_FAULT]
    environment variable (CLI, see {!install_from_env}). *)

type kind =
  | Fail  (** The attempt raises {!Dse_error.Shard_failure}. *)
  | Hang  (** The attempt blocks until {!release_hangs}. *)
  | Net_drop
      (** The next transport read/write raises [ECONNRESET] — a peer
          vanishing mid-frame. Consulted by [Transport], not the shard
          engine; [shard] is ignored. *)
  | Net_delay of int
      (** The next transport read/write stalls for the given number of
          milliseconds before proceeding — a congested or lossy link.
          [shard] is ignored. *)

type spec = { kind : kind; shard : int; times : int }

(** [parse s] reads ["shard:K"] / ["shard:K:T"] ([Fail] on shard [K],
    once or [T] times), ["hang:K"] / ["hang:K:T"] (same for [Hang]),
    ["net:drop:K"] ([Net_drop] on the next [K] transport operations) or
    ["net:delay:K:MS"] ([Net_delay MS], same budget scheme).
    Returns [None] on anything else. *)
val parse : string -> spec option

(** [set spec] arms ([Some]) or disarms ([None]) the injection. The
    attempt budget is reset and any previous {!release_hangs} is
    forgotten. *)
val set : spec option -> unit

(** [arm s] parses and arms in one step: [true] when [s] is a valid
    spec (now armed), [false] otherwise (armed state unchanged). The
    [dse chaos] harness uses it to fire schedule-scripted faults inside
    its own transport path. *)
val arm : string -> bool

(** [install_from_env ()] arms from [DSE_FAULT] if set and well-formed;
    disarms otherwise. *)
val install_from_env : unit -> unit

(** [should_fail ~shard] is [true] when this attempt on [shard] must
    raise; each [true] consumes one unit of the armed budget. Safe to
    call from any domain. *)
val should_fail : shard:int -> bool

(** [should_hang ~shard] is [true] when this attempt on [shard] must
    block (see {!Shard_exec}); each [true] consumes one unit of the
    armed budget. Safe to call from any domain. *)
val should_hang : shard:int -> bool

(** [release_hangs ()] unwedges every hung attempt, current and future,
    until the next {!set}. Tests call it during teardown so abandoned
    zombie domains can run to completion instead of leaking a spinning
    core past the process's lifetime. *)
val release_hangs : unit -> unit

(** [hang_released ()] is polled by the hung attempt's wait loop. *)
val hang_released : unit -> bool

(** [net_drop ()] is [true] when the next transport operation must fail
    with a connection reset; each [true] consumes one unit of the armed
    budget. Safe to call from any domain. *)
val net_drop : unit -> bool

(** [net_delay ()] is [Some ms] when the next transport operation must
    stall for [ms] milliseconds; each [Some] consumes one unit of the
    armed budget. Safe to call from any domain. *)
val net_delay : unit -> int option
