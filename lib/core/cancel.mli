(** Cooperative cancellation tokens for long-running kernel work.

    A pathological job (huge trace, deep [max_level]) must not pin a
    worker domain forever. A token carries an absolute wall-clock
    deadline in an atomic cell; the kernels poll it at cheap boundaries
    — every {!poll_mask}+1 references inside the streaming loops, before
    every shard attempt in [Shard_exec], and at each level of the BCAT
    walk — and expiry raises a typed
    {!Dse_error.Deadline_exceeded}[ {elapsed; limit}] (CLI exit 7) from
    whichever domain notices first.

    A token may also carry a {!Heartbeat.t}: every poll then doubles as
    a liveness beat, which is how the [dse serve] watchdog distinguishes
    a slow-but-alive worker (still polling, still beating) from a wedged
    one (stopped polling, heartbeat age grows past [--hang-timeout]).

    Tokens are shared freely across domains: {!cancel} is an atomic
    store, {!check} an atomic load plus a clock read (plus one atomic
    store when a heartbeat is attached). {!none} never expires and makes
    the polls nearly free, so every kernel entry point takes [?cancel]
    with it as the default. *)

type t

(** The token that never expires ({!check} never raises) and carries no
    heartbeat. *)
val none : t

(** [after seconds] expires [seconds] from now. [seconds] must be
    positive and finite; raises [Invalid_argument] otherwise. *)
val after : float -> t

(** [cancellable ()] never expires on its own but can be {!cancel}ed —
    the token for jobs without a deadline that the watchdog must still
    be able to reclaim (the abandoned worker's kernel aborts at its next
    poll instead of burning a core to completion). *)
val cancellable : unit -> t

(** [with_heartbeat hb t] is [t] with every {!check} also beating [hb].
    The deadline cell is shared with [t], so cancelling either token
    cancels both. *)
val with_heartbeat : Heartbeat.t -> t -> t

(** [cancel t] expires the token immediately (no-op on {!none}); every
    subsequent {!check} in any domain raises. *)
val cancel : t -> unit

(** [expired t] is [true] once the deadline has passed or {!cancel} ran. *)
val expired : t -> bool

(** [check t] beats the attached heartbeat (if any), then raises
    {!Dse_error.Error} ([Deadline_exceeded] with the elapsed time since
    the token was created and the configured limit) iff the token has
    expired. *)
val check : t -> unit

(** [limit t] echoes the configured limit in seconds ([None] for
    {!none} and {!cancellable} tokens). *)
val limit : t -> float option

(** Kernels poll on positions [p] with [p land poll_mask = 0]: every
    1024 references — frequent enough that even conflict-heavy traces
    notice expiry within milliseconds, cheap enough to vanish against
    the per-reference work. *)
val poll_mask : int
