(** Off-heap flat arenas for the hot analysis state.

    [Bigarray]-backed storage the GC never scans, copies, or counts:
    the data plane of the [--method arena] kernel. A handle is a small
    on-heap proxy; the payload lives outside the OCaml heap, so domains
    can share one read-only arena by reference and [top_heap_words]
    stays proportional to the boxed control state, not the trace.

    Accessors are bounds-unchecked by design — every index in the
    kernel is derived from a length the arena was created with. The
    int32/int conversions at the boundary are erased by the compiler's
    local unboxing (no per-access allocation; property-checked by the
    bench minor-word assertions). *)

(** 4-byte entries: per-reference tables (ids, recency links). Callers
    must keep values within int32 range; the strip builder enforces
    N' < 2^31. *)
type i32 = (int32, Bigarray.int32_elt, Bigarray.c_layout) Bigarray.Array1.t

(** 8-byte native-int entries: address and counter tables. *)
type word = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

(** Creation zero-fills. A requested size of 0 still allocates one
    entry, so sentinel-at-[n] layouts stay addressable on empty input. *)
val i32_create : int -> i32

val word_create : int -> word

val i32_length : i32 -> int

val word_length : word -> int

val i32_get : i32 -> int -> int

val i32_set : i32 -> int -> int -> unit

val i32_fill : i32 -> int -> unit

val word_get : word -> int -> int

val word_set : word -> int -> int -> unit

val word_fill : word -> int -> unit

(** [word_grow a ~len ~capacity] is a zeroed arena of [capacity] entries
    with [a]'s first [len] entries blitted in — the doubling step of the
    growable tally and unique tables, bigarray-to-bigarray. *)
val word_grow : word -> len:int -> capacity:int -> word

(** Packed bitsets at 63 bits per word-arena entry: membership flags for
    up to [length] elements in [length/63] words, off-heap. 63 (not 64)
    keeps every mask an immediate OCaml int — no [Int64] boxing. *)
module Bits : sig
  type t

  val bits_per_word : int

  (** [create n] is a cleared set over [0, n). Raises [Invalid_argument]
      on a negative [n]. *)
  val create : int -> t

  val length : t -> int

  val get : t -> int -> bool

  val set : t -> int -> unit

  val unset : t -> int -> unit

  val clear : t -> unit

  (** [popcount t] is the number of set bits (SWAR, no branches). *)
  val popcount : t -> int
end
