type method_ = Bcat_walk | Dfs | Streaming | Arena

(* The arena strip is the strict, primary representation: prepare builds
   it directly from the trace with no boxed intermediates. The boxed
   Strip.t is a lazy view forced only by the methods that materialize
   (Dfs, Bcat_walk), by the boxed Streaming kernel, or by callers that
   need explicit arrays; the MRCT forces the boxed view in turn. The
   default Arena path touches neither. *)
type prepared = {
  arena : Arena_kernel.strip;
  stripped_lazy : Strip.t Lazy.t;
  mrct_lazy : Mrct.t Lazy.t;
  max_level : int;
  line_words : int;
}

let arena_strip prepared = prepared.arena

let stripped prepared = Lazy.force prepared.stripped_lazy

let stripped_forced prepared = Lazy.is_val prepared.stripped_lazy

let mrct prepared = Lazy.force prepared.mrct_lazy

let mrct_forced prepared = Lazy.is_val prepared.mrct_lazy

let max_level prepared = prepared.max_level

let line_words prepared = prepared.line_words

let stats prepared = Arena_kernel.stats prepared.arena

let prepare ?max_level ?(line_words = 1) trace =
  if line_words < 1 || line_words land (line_words - 1) <> 0 then
    invalid_arg "Analytical.prepare: line_words must be a positive power of two";
  let arena = Arena_kernel.of_trace ~line_words trace in
  let stripped_lazy = lazy (Arena_kernel.to_strip arena) in
  let bits = Arena_kernel.address_bits arena in
  let max_level =
    match max_level with None -> bits | Some m -> max 0 (min m bits)
  in
  {
    arena;
    stripped_lazy;
    mrct_lazy = lazy (Mrct.build (Lazy.force stripped_lazy));
    max_level;
    line_words;
  }

let histograms ?(cancel = Cancel.none) ?(method_ = Arena) ?(domains = 1) prepared =
  match method_ with
  | Arena ->
    Arena_kernel.histograms ~cancel ~domains prepared.arena ~max_level:prepared.max_level
  | Streaming ->
    Streaming.histograms ~cancel ~domains (stripped prepared)
      ~max_level:prepared.max_level
  | Dfs ->
    if domains > 1 then
      Parallel_optimizer.histograms ~cancel ~domains
        ~addresses:(stripped prepared).Strip.uniques (mrct prepared)
        ~max_level:prepared.max_level
    else begin
      Cancel.check cancel;
      Dfs_optimizer.histograms ~addresses:(stripped prepared).Strip.uniques
        (mrct prepared) ~max_level:prepared.max_level
    end
  | Bcat_walk ->
    let zero_one = Zero_one.build (stripped prepared) in
    let bcat = Bcat.build ~max_level:prepared.max_level zero_one in
    Array.init (Bcat.max_level bcat + 1) (fun level ->
        (* level boundary: one poll per histogram of the walk *)
        Cancel.check cancel;
        Optimizer.histogram_at bcat (mrct prepared) ~level)

let explore_prepared ?cancel ?(method_ = Arena) ?domains prepared ~k =
  match method_ with
  | Bcat_walk ->
    let zero_one = Zero_one.build (stripped prepared) in
    let bcat = Bcat.build ~max_level:prepared.max_level zero_one in
    Optimizer.explore bcat (mrct prepared) ~k
  | Dfs | Streaming | Arena ->
    Optimizer.of_histograms ~k (histograms ?cancel ~method_ ?domains prepared)

let explore_many ?(method_ = Arena) ?domains prepared ~ks =
  let histograms = histograms ~method_ ?domains prepared in
  List.map (fun k -> Optimizer.of_histograms ~k histograms) ks

let explore ?max_level ?line_words ?method_ ?domains trace ~k =
  explore_prepared ?method_ ?domains (prepare ?max_level ?line_words trace) ~k

let level_of_depth depth max_level =
  let rec log2 n acc = if n <= 1 then acc else log2 (n lsr 1) (acc + 1) in
  if depth < 1 || depth land (depth - 1) <> 0 then
    invalid_arg "Analytical.misses: depth must be a positive power of two";
  let level = log2 depth 0 in
  if level > max_level then
    invalid_arg
      (Printf.sprintf "Analytical.misses: depth %d exceeds max level %d" depth max_level);
  level

let misses ?(method_ = Arena) ?domains prepared ~depth ~associativity =
  let level = level_of_depth depth prepared.max_level in
  match method_ with
  | Arena -> Arena_kernel.misses ?domains prepared.arena ~level ~associativity
  | Streaming -> Streaming.misses ?domains (stripped prepared) ~level ~associativity
  | Dfs ->
    let hists =
      Dfs_optimizer.histograms ~addresses:(stripped prepared).Strip.uniques
        (mrct prepared) ~max_level:level
    in
    Optimizer.misses_of_histogram hists.(level) ~associativity
  | Bcat_walk ->
    let zero_one = Zero_one.build (stripped prepared) in
    let bcat = Bcat.build ~max_level:level zero_one in
    Optimizer.misses_at bcat (mrct prepared) ~level ~associativity
