type method_ = Bcat_walk | Dfs | Streaming

type prepared = {
  stripped : Strip.t;
  mrct_lazy : Mrct.t Lazy.t;
  max_level : int;
  line_words : int;
}

let mrct prepared = Lazy.force prepared.mrct_lazy

let prepare ?max_level ?(line_words = 1) trace =
  if line_words < 1 || line_words land (line_words - 1) <> 0 then
    invalid_arg "Analytical.prepare: line_words must be a positive power of two";
  let offset_bits =
    let rec log2 n acc = if n <= 1 then acc else log2 (n lsr 1) (acc + 1) in
    log2 line_words 0
  in
  let line_addresses =
    Array.map (fun a -> a lsr offset_bits) (Trace.addresses trace)
  in
  let stripped = Strip.strip_addresses line_addresses in
  let bits = Strip.address_bits stripped in
  let max_level =
    match max_level with None -> bits | Some m -> max 0 (min m bits)
  in
  { stripped; mrct_lazy = lazy (Mrct.build stripped); max_level; line_words }

let histograms ?(cancel = Cancel.none) ?(method_ = Streaming) ?(domains = 1) prepared =
  match method_ with
  | Streaming ->
    Streaming.histograms ~cancel ~domains prepared.stripped ~max_level:prepared.max_level
  | Dfs ->
    if domains > 1 then
      Parallel_optimizer.histograms ~cancel ~domains
        ~addresses:prepared.stripped.Strip.uniques (mrct prepared)
        ~max_level:prepared.max_level
    else begin
      Cancel.check cancel;
      Dfs_optimizer.histograms ~addresses:prepared.stripped.Strip.uniques (mrct prepared)
        ~max_level:prepared.max_level
    end
  | Bcat_walk ->
    let zero_one = Zero_one.build prepared.stripped in
    let bcat = Bcat.build ~max_level:prepared.max_level zero_one in
    Array.init (Bcat.max_level bcat + 1) (fun level ->
        (* level boundary: one poll per histogram of the walk *)
        Cancel.check cancel;
        Optimizer.histogram_at bcat (mrct prepared) ~level)

let explore_prepared ?cancel ?(method_ = Streaming) ?domains prepared ~k =
  match method_ with
  | Bcat_walk ->
    let zero_one = Zero_one.build prepared.stripped in
    let bcat = Bcat.build ~max_level:prepared.max_level zero_one in
    Optimizer.explore bcat (mrct prepared) ~k
  | Dfs | Streaming -> Optimizer.of_histograms ~k (histograms ?cancel ~method_ ?domains prepared)

let explore_many ?(method_ = Streaming) ?domains prepared ~ks =
  let histograms = histograms ~method_ ?domains prepared in
  List.map (fun k -> Optimizer.of_histograms ~k histograms) ks

let explore ?max_level ?line_words ?method_ ?domains trace ~k =
  explore_prepared ?method_ ?domains (prepare ?max_level ?line_words trace) ~k

let level_of_depth depth max_level =
  let rec log2 n acc = if n <= 1 then acc else log2 (n lsr 1) (acc + 1) in
  if depth < 1 || depth land (depth - 1) <> 0 then
    invalid_arg "Analytical.misses: depth must be a positive power of two";
  let level = log2 depth 0 in
  if level > max_level then
    invalid_arg
      (Printf.sprintf "Analytical.misses: depth %d exceeds max level %d" depth max_level);
  level

let misses ?(method_ = Streaming) ?domains prepared ~depth ~associativity =
  let level = level_of_depth depth prepared.max_level in
  match method_ with
  | Streaming -> Streaming.misses ?domains prepared.stripped ~level ~associativity
  | Dfs ->
    let hists =
      Dfs_optimizer.histograms ~addresses:prepared.stripped.Strip.uniques (mrct prepared)
        ~max_level:level
    in
    Optimizer.misses_of_histogram hists.(level) ~associativity
  | Bcat_walk ->
    let zero_one = Zero_one.build prepared.stripped in
    let bcat = Bcat.build ~max_level:level zero_one in
    Optimizer.misses_at bcat (mrct prepared) ~level ~associativity
