(* The streaming fused kernel ported onto off-heap arenas.

   Same algorithm as [Streaming] — intrusive recency list, per-window
   replay prologue, prefix walk folding shared-bit counts straight into
   per-level histograms — but every hot table is a [Arena] bigarray the
   GC neither scans nor copies:

     ids          i32 arena, 4 B/ref   (vs 8 B boxed + GC scan)
     uniques      word arena, 8 B/unique
     next/prev    i32 arenas, 8 B/unique combined
     in_list      packed bitset, 1 bit/unique
     tallies      word arenas, grown geometrically off-heap

   The strip is built ONCE, directly from the trace — the boxed
   line-address array, [Hashtbl], and [Strip.t] of the classic prelude
   are never allocated — and shared by reference across shard domains:
   each [Shard_exec] closure captures the same handles, so a sharded run
   adds per-shard recency state (O(N')) and nothing proportional to N.

   Outputs are bit-identical to [Streaming.histograms] (property
   tested): identical first-occurrence id assignment, identical walk
   order, identical histogram growth/trim semantics. *)

type strip = {
  ids : Arena.i32;  (* per-reference unique ids, read-only after build *)
  uniques : Arena.word;  (* id -> folded line address; first n' entries live *)
  n : int;
  n_unique : int;
  address_bits : int;
  max_misses : int;  (* depth-1 direct-mapped non-cold misses, free at build *)
}

(* Hot-path accessors duplicated from [Arena], local to this unit: the
   dev profile compiles interfaces opaquely, so a cross-module
   [Arena.i32_get] in the walk is a generic [caml_apply2] per element —
   measured 3x slower than [Streaming] on the 10M-reference bench.
   Applied here the bigarray primitives compile to direct loads. *)
let i32_get (a : Arena.i32) i = Int32.to_int (Bigarray.Array1.unsafe_get a i) [@@inline]

let i32_set (a : Arena.i32) i v = Bigarray.Array1.unsafe_set a i (Int32.of_int v) [@@inline]

let word_get (a : Arena.word) i : int = Bigarray.Array1.unsafe_get a i [@@inline]

let word_set (a : Arena.word) i (v : int) = Bigarray.Array1.unsafe_set a i v [@@inline]

(* Recency-membership bitset in [Arena.Bits]' packed layout (63 bits per
   word entry), accessed through the same local primitives. *)
let bit_get w i = (word_get w (i / 63) lsr (i mod 63)) land 1 = 1 [@@inline]

let bit_set w i =
  let j = i / 63 in
  word_set w j (word_get w j lor (1 lsl (i mod 63)))
  [@@inline]

let num_refs s = s.n

let num_unique s = s.n_unique

let address_bits s = s.address_bits

(* ids are narrowed to int32; the sentinel n' must fit too. Any trace
   with this many distinct lines is far past what the daemon admits, but
   the guard turns silent truncation into a typed refusal. *)
let max_uniques = 0x7FFFFFFE

let too_many_uniques () =
  Dse_error.fail
    (Dse_error.Constraint_violation
       {
         context = "Arena_kernel.of_trace";
         message =
           Printf.sprintf "more than %d unique line addresses overflow the int32 arena"
             max_uniques;
       })

(* Open-addressing hash table over a word arena: slot holds id+1 (0 =
   empty), keys compared through [uniques]. Fibonacci-style multiplicative
   hash; power-of-two capacity kept at most half full. *)
let hash_mix a = a * 0x2545F4914F6CDD1D

let of_trace ?(line_words = 1) trace =
  if line_words < 1 || line_words land (line_words - 1) <> 0 then
    invalid_arg "Arena_kernel.of_trace: line_words must be a positive power of two";
  let offset_bits =
    let rec log2 n acc = if n <= 1 then acc else log2 (n lsr 1) (acc + 1) in
    log2 line_words 0
  in
  let n = Trace.length trace in
  let ids = Arena.i32_create n in
  let uniques = ref (Arena.word_create (min (max 16 n) 4096)) in
  let table_bits = ref 13 in
  let table = ref (Arena.word_create (1 lsl !table_bits)) in
  let count = ref 0 in
  let max_address = ref 0 in
  let direct_misses = ref 0 in
  let last_id = ref (-1) in
  let pos = ref 0 in
  let probe a =
    let mask = (1 lsl !table_bits) - 1 in
    let slot = ref (hash_mix a lsr (63 - !table_bits) land mask) in
    let found = ref (-1) in
    let stop = ref false in
    while not !stop do
      let entry = word_get !table !slot in
      if entry = 0 then stop := true
      else if word_get !uniques (entry - 1) = a then begin
        found := entry - 1;
        stop := true
      end
      else slot := (!slot + 1) land mask
    done;
    (!found, !slot)
  in
  let rehash () =
    table_bits := !table_bits + 1;
    table := Arena.word_create (1 lsl !table_bits);
    for id = 0 to !count - 1 do
      let _, slot = probe (word_get !uniques id) in
      word_set !table slot (id + 1)
    done
  in
  (* Trace.add already rejected negative addresses, and folding by
     [offset_bits] preserves the sign, so no per-element validity check
     is needed here. *)
  Trace.iter_addrs
    (fun raw ->
      let a = raw lsr offset_bits in
      let id =
        match probe a with
        | id, _ when id >= 0 -> id
        | _, slot ->
          if !count > max_uniques then too_many_uniques ();
          let id = !count in
          if id = Arena.word_length !uniques then
            uniques :=
              Arena.word_grow !uniques ~len:id ~capacity:(2 * Arena.word_length !uniques);
          word_set !uniques id a;
          word_set !table slot (id + 1);
          incr count;
          if a > !max_address then max_address := a;
          if 2 * !count >= 1 lsl !table_bits then rehash ();
          id
      in
      i32_set ids !pos id;
      if id <> !last_id then incr direct_misses;
      last_id := id;
      incr pos)
    trace;
  let address_bits =
    let rec bits v acc = if v = 0 then max acc 1 else bits (v lsr 1) (acc + 1) in
    bits !max_address 0
  in
  {
    ids;
    uniques = !uniques;
    n;
    n_unique = !count;
    address_bits;
    max_misses = max 0 (!direct_misses - !count);
  }

(* O(1) from fields recorded during the build: no trace re-scan, no
   boxed strip — the admission and reporting path for [--method arena]. *)
let stats s =
  {
    Stats.n = s.n;
    n_unique = s.n_unique;
    address_bits = s.address_bits;
    max_misses = s.max_misses;
  }

(* Boxed view for the materializing methods (Dfs, Bcat_walk) and the
   Table-4 printers. Identical to [Strip.strip] by construction: ids are
   assigned in first-occurrence order in both builders. *)
let to_strip s =
  {
    Strip.uniques = Array.init s.n_unique (Arena.word_get s.uniques);
    ids = Array.init s.n (Arena.i32_get s.ids);
  }

(* -- the fused kernel -------------------------------------------------- *)

let rec ctz_clamped x acc limit =
  if acc >= limit then limit
  else if x land 1 = 1 then acc
  else ctz_clamped (x lsr 1) (acc + 1) limit

(* Growable per-level histograms in word arenas; growth and trim match
   [Streaming]/[Dfs_optimizer] exactly so all paths stay bit-identical.
   [max_c] is on-heap control state (levels+1 small ints), not data. *)
type tally = {
  hists : Arena.word array;
  max_c : int array;
  depth_count : Arena.word;
  max_level : int;
}

let tally_create max_level =
  if max_level < 0 then invalid_arg "Arena_kernel: negative max_level";
  {
    hists = Array.init (max_level + 1) (fun _ -> Arena.word_create 1);
    max_c = Array.make (max_level + 1) 0;
    depth_count = Arena.word_create (max_level + 1);
    max_level;
  }

let record t level c =
  let h = t.hists.(level) in
  let h =
    if c >= Arena.word_length h then begin
      let bigger =
        Arena.word_grow h ~len:(Arena.word_length h)
          ~capacity:(max (c + 1) (2 * Arena.word_length h))
      in
      t.hists.(level) <- bigger;
      bigger
    end
    else h
  in
  word_set h c (word_get h c + 1);
  if c > t.max_c.(level) then t.max_c.(level) <- c

let tally_finish t =
  Array.init (t.max_level + 1) (fun l ->
      Array.init (t.max_c.(l) + 1) (Arena.word_get t.hists.(l)))

(* Merge shard tallies straight from their arenas into the final boxed
   histograms — no per-shard intermediate arrays. Width per level is the
   max across shards of (max_c + 1), floored at 1, exactly as
   [Streaming.merge_histograms] sizes its output. *)
let merge_tallies ~max_level parts =
  Array.init (max_level + 1) (fun level ->
      let width =
        List.fold_left (fun acc t -> max acc (t.max_c.(level) + 1)) 1 parts
      in
      let merged = Array.make width 0 in
      List.iter
        (fun t ->
          let h = t.hists.(level) in
          for c = 0 to t.max_c.(level) do
            merged.(c) <- merged.(c) + Arena.word_get h c
          done)
        parts;
      merged)

(* One trace window [lo, hi): replay [0, lo) to reconstruct the recency
   list, then tally. Same structure as [Streaming.window_histograms]
   with the recency list in two i32 arenas and membership in a packed
   bitset; the per-occurrence clear of [depth_count] touches only the
   levels the prefix walk wrote (tracked via [max_touched]) instead of
   an unconditional fill of all levels. *)
let window_tally ?(cancel = Cancel.none) s ~max_level ~lo ~hi =
  let t = tally_create max_level in
  let n' = s.n_unique in
  let next = Arena.i32_create (n' + 1) in
  let prev = Arena.i32_create (n' + 1) in
  Arena.i32_fill next n';
  Arena.i32_fill prev n';
  let in_list = Arena.word_create ((max n' 1 + 62) / 63) in
  let ids = s.ids in
  let uniques = s.uniques in
  let unlink u =
    let p = i32_get prev u and nx = i32_get next u in
    i32_set next p nx;
    i32_set prev nx p
  in
  let push_front u =
    let first = i32_get next n' in
    i32_set next n' u;
    i32_set prev u n';
    i32_set next u first;
    i32_set prev first u
  in
  for j = 0 to lo - 1 do
    if j land Cancel.poll_mask = 0 then Cancel.check cancel;
    let u = i32_get ids j in
    if bit_get in_list u then unlink u else bit_set in_list u;
    push_front u
  done;
  let depth_count = t.depth_count in
  for j = lo to hi - 1 do
    if j land Cancel.poll_mask = 0 then Cancel.check cancel;
    let u = i32_get ids j in
    if bit_get in_list u then begin
      let au = word_get uniques u in
      let v = ref (i32_get next n') in
      let max_touched = ref (-1) in
      while !v <> u do
        let shared = ctz_clamped (au lxor word_get uniques !v) 0 max_level in
        word_set depth_count shared (word_get depth_count shared + 1);
        if shared > !max_touched then max_touched := shared;
        v := i32_get next !v
      done;
      (* suffix-sum over touched levels only, clearing as it reads:
         running >= 1 for every l <= max_touched, so this records the
         same (level, count) pairs as a full 0..max_level sweep *)
      let running = ref 0 in
      for l = !max_touched downto 0 do
        running := !running + word_get depth_count l;
        word_set depth_count l 0;
        record t l !running
      done;
      unlink u
    end
    else bit_set in_list u;
    push_front u
  done;
  t

let window_histograms ?cancel s ~max_level ~lo ~hi =
  tally_finish (window_tally ?cancel s ~max_level ~lo ~hi)

let histograms ?(cancel = Cancel.none) ?(domains = 1)
    ?(shard_threshold = Streaming.min_shard_refs) s ~max_level =
  let n = s.n in
  let domains = max 1 domains in
  if domains = 1 || n < domains * shard_threshold then
    tally_finish (window_tally ~cancel s ~max_level ~lo:0 ~hi:n)
  else begin
    let chunk = (n + domains - 1) / domains in
    match
      List.init domains (fun d -> (d * chunk, min n ((d + 1) * chunk)))
      |> List.filter (fun (lo, hi) -> lo < hi)
      |> Array.of_list
    with
    | [||] -> tally_finish (window_tally ~cancel s ~max_level ~lo:0 ~hi:n)
    | windows ->
      (* every shard closure captures the same [s]: the strip arenas are
         shared by reference across domains, read-only — no per-shard
         copies, boxed or otherwise *)
      merge_tallies ~max_level
        (Shard_exec.map ~cancel
           (fun shard ->
             let lo, hi = windows.(shard) in
             window_tally ~cancel s ~max_level ~lo ~hi)
           (Array.length windows))
  end

let explore ?cancel ?domains ?shard_threshold s ~max_level ~k =
  Optimizer.of_histograms ~k (histograms ?cancel ?domains ?shard_threshold s ~max_level)

let misses ?cancel ?domains ?shard_threshold s ~level ~associativity =
  if level < 0 then invalid_arg "Arena_kernel.misses: negative level";
  let hists = histograms ?cancel ?domains ?shard_threshold s ~max_level:level in
  Optimizer.misses_of_histogram hists.(level) ~associativity
