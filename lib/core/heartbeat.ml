type t = float Atomic.t

let create () = Atomic.make (Unix.gettimeofday ())

let beat t = Atomic.set t (Unix.gettimeofday ())

let last t = Atomic.get t

let age ?now t =
  let now = match now with Some n -> n | None -> Unix.gettimeofday () in
  now -. Atomic.get t
