(** High-level entry points tying the prelude and postlude together
    (the paper's Figure 2 pipeline: strip -> MRCT/BCAT -> optimal set). *)

type method_ =
  | Bcat_walk  (** Algorithms 1 + 3 as published *)
  | Dfs  (** the fused linear-space variant of section 2.4, over a
             materialized MRCT; with [domains > 1] the MRCT is
             partitioned by identifier across {!Parallel_optimizer} *)
  | Streaming
      (** {!Streaming}'s single-pass fused kernel on boxed arrays — no
          MRCT is ever materialized, peak heap O(N) boxed words; with
          [domains > 1] the trace is sharded into windows *)
  | Arena
      (** the default: the same fused kernel on off-heap
          {!Arena_kernel} bigarrays — the strip, recency list, and
          tallies are GC-invisible and shared by reference across shard
          domains, so peak {e heap} is O(1) in N. Bit-identical to every
          other method (property tested). *)

(** The prelude result, reusable across budgets K. The arena strip is
    the strict primary representation; the boxed {!Strip.t} and the
    MRCT are lazy views forced only by the methods that need them —
    the default [Arena] path forces neither. *)
type prepared

(** [prepare ?max_level ?line_words trace] runs the prelude phase once:
    one pass over the trace into the off-heap arena strip, with no
    boxed intermediates. [max_level] defaults to the number of address
    bits and is clamped to it.

    [line_words] (default 1, the paper's fixed choice) extends the model
    to larger lines: word addresses are folded to line addresses before
    stripping, which keeps the characterisation exact for LRU since
    conflicts happen between lines. Must be a power of two. *)
val prepare : ?max_level:int -> ?line_words:int -> Trace.t -> prepared

(** [arena_strip prepared] is the off-heap strip the [Arena] method
    runs on — read-only, shareable across domains by reference. *)
val arena_strip : prepared -> Arena_kernel.strip

(** [stripped prepared] forces and returns the boxed strip view (equal
    to [Strip.strip] of the folded trace). First call pays the O(N + N')
    boxed copy out of the arena. *)
val stripped : prepared -> Strip.t

(** [stripped_forced prepared] reports whether the boxed view has been
    materialized — the arena path's zero-boxing guarantee is testable. *)
val stripped_forced : prepared -> bool

(** [mrct prepared] forces and returns the materialized conflict table —
    for callers that need explicit conflict sets (e.g. the Table-4
    printer). The first call pays the O(N * N') build (and forces the
    boxed strip). *)
val mrct : prepared -> Mrct.t

val mrct_forced : prepared -> bool

(** [max_level prepared] is the number of address bits usable as index
    bits. *)
val max_level : prepared -> int

(** [line_words prepared] is the line size the trace was folded to. *)
val line_words : prepared -> int

(** [stats prepared] is the trace statistics (N, N', address bits,
    depth-1 miss ceiling), O(1): every field was recorded while the
    arena strip was built. Equal to [Stats.compute] of the folded
    trace. *)
val stats : prepared -> Stats.t

(** [histograms ?cancel ?method_ ?domains prepared] is the per-level
    conflict-cardinality histograms, the shared currency of every
    postlude. All methods produce bit-identical arrays (property
    tested). [domains] (default 1) parallelizes the [Arena],
    [Streaming] and [Dfs] methods; it is ignored by [Bcat_walk].
    [cancel] (default {!Cancel.none}) makes the run cooperatively
    cancellable: the fused kernels poll it every {!Cancel.poll_mask}+1
    references, sharded runs poll at shard boundaries, and the BCAT
    walk polls at each level; expiry raises a typed
    {!Dse_error.Deadline_exceeded}. *)
val histograms :
  ?cancel:Cancel.t -> ?method_:method_ -> ?domains:int -> prepared -> int array array

(** [explore_prepared ?cancel ?method_ ?domains prepared ~k] runs the
    postlude for one budget. Default method is [Arena]. *)
val explore_prepared :
  ?cancel:Cancel.t -> ?method_:method_ -> ?domains:int -> prepared -> k:int -> Optimizer.t

(** [explore_many ?method_ ?domains prepared ~ks] answers several budgets
    from a single histogram computation — the "prelude once, postlude per
    constraint" economy the paper's flow is built around. Results are in
    the order of [ks] and identical to per-budget {!explore_prepared}
    calls. *)
val explore_many :
  ?method_:method_ -> ?domains:int -> prepared -> ks:int list -> Optimizer.t list

(** [explore ?max_level ?line_words ?method_ ?domains trace ~k] is
    [explore_prepared (prepare trace) ~k]. *)
val explore :
  ?max_level:int ->
  ?line_words:int ->
  ?method_:method_ ->
  ?domains:int ->
  Trace.t ->
  k:int ->
  Optimizer.t

(** [misses ?method_ ?domains prepared ~depth ~associativity] is the
    model's exact non-cold miss count for one configuration. [depth] must
    be a power of two no greater than [2 ^ max_level]. *)
val misses :
  ?method_:method_ -> ?domains:int -> prepared -> depth:int -> associativity:int -> int
