(** High-level entry points tying the prelude and postlude together
    (the paper's Figure 2 pipeline: strip -> MRCT/BCAT -> optimal set). *)

type method_ =
  | Bcat_walk  (** Algorithms 1 + 3 as published *)
  | Dfs  (** the fused linear-space variant of section 2.4, over a
             materialized MRCT; with [domains > 1] the MRCT is
             partitioned by identifier across {!Parallel_optimizer} *)
  | Streaming
      (** the default: {!Streaming}'s single-pass fused kernel — no MRCT
          is ever materialized, peak memory O(N'); with [domains > 1] the
          trace is sharded into windows *)

type prepared = {
  stripped : Strip.t;
  mrct_lazy : Mrct.t Lazy.t;
      (** forced only by the [Dfs]/[Bcat_walk] methods or {!mrct} — the
          default [Streaming] path never materializes the table *)
  max_level : int;  (** number of address bits usable as index bits *)
  line_words : int;  (** line size the trace was folded to *)
}

(** [mrct prepared] forces and returns the materialized conflict table —
    for callers that need explicit conflict sets (e.g. the Table-4
    printer). The first call pays the O(N * N') build. *)
val mrct : prepared -> Mrct.t

(** [prepare ?max_level ?line_words trace] runs the prelude phase once;
    the result can be re-used for several budgets K. [max_level] defaults
    to the number of address bits and is clamped to it. The MRCT is
    built lazily, so preparing for the streaming method stays O(N').

    [line_words] (default 1, the paper's fixed choice) extends the model
    to larger lines: word addresses are folded to line addresses before
    stripping, which keeps the characterisation exact for LRU since
    conflicts happen between lines. Must be a power of two. *)
val prepare : ?max_level:int -> ?line_words:int -> Trace.t -> prepared

(** [histograms ?cancel ?method_ ?domains prepared] is the per-level
    conflict-cardinality histograms, the shared currency of every
    postlude. All methods produce bit-identical arrays (property
    tested). [domains] (default 1) parallelizes the [Streaming] and
    [Dfs] methods; it is ignored by [Bcat_walk]. [cancel] (default
    {!Cancel.none}) makes the run cooperatively cancellable: the
    streaming kernel polls it every {!Cancel.poll_mask}+1 references,
    sharded runs poll at shard boundaries, and the BCAT walk polls at
    each level; expiry raises a typed {!Dse_error.Deadline_exceeded}. *)
val histograms :
  ?cancel:Cancel.t -> ?method_:method_ -> ?domains:int -> prepared -> int array array

(** [explore_prepared ?cancel ?method_ ?domains prepared ~k] runs the
    postlude for one budget. Default method is [Streaming]. *)
val explore_prepared :
  ?cancel:Cancel.t -> ?method_:method_ -> ?domains:int -> prepared -> k:int -> Optimizer.t

(** [explore_many ?method_ ?domains prepared ~ks] answers several budgets
    from a single histogram computation — the "prelude once, postlude per
    constraint" economy the paper's flow is built around. Results are in
    the order of [ks] and identical to per-budget {!explore_prepared}
    calls. *)
val explore_many :
  ?method_:method_ -> ?domains:int -> prepared -> ks:int list -> Optimizer.t list

(** [explore ?max_level ?line_words ?method_ ?domains trace ~k] is
    [explore_prepared (prepare trace) ~k]. *)
val explore :
  ?max_level:int ->
  ?line_words:int ->
  ?method_:method_ ->
  ?domains:int ->
  Trace.t ->
  k:int ->
  Optimizer.t

(** [misses ?method_ ?domains prepared ~depth ~associativity] is the
    model's exact non-cold miss count for one configuration. [depth] must
    be a power of two no greater than [2 ^ max_level]. *)
val misses :
  ?method_:method_ -> ?domains:int -> prepared -> depth:int -> associativity:int -> int
