(* An injected hang blocks *before* the first cancellation poll of the
   attempt: the worker goes silent immediately, exactly like a wedged
   loop. The spin wait (rather than an unbounded sleep) lets tests
   unwedge the zombie via [Fault.release_hangs] during teardown. *)
let hang_if_injected ~shard =
  if Fault.should_hang ~shard then
    while not (Fault.hang_released ()) do
      Unix.sleepf 0.01
    done

let attempt ~cancel f shard =
  hang_if_injected ~shard;
  Cancel.check cancel;
  if Fault.should_fail ~shard then
    Dse_error.fail
      (Dse_error.Shard_failure
         { shard; attempts = 1; message = "injected fault (DSE_FAULT)" });
  f shard

let guarded ~cancel f shard () =
  match attempt ~cancel f shard with v -> Ok v | exception e -> Error e

(* Cancellation is cooperative, not a shard fault: re-running an expired
   shard can only expire again, so the ladder is skipped entirely. *)
let is_cancellation = function
  | Dse_error.Error (Dse_error.Deadline_exceeded _) -> true
  | _ -> false

let recover ~cancel f total shard outcome =
  match outcome with
  | Ok v -> v
  | Error e when is_cancellation e -> raise e
  | Error first -> (
    Dse_error.degraded
      (Printf.sprintf "shard %d/%d failed (%s); retrying in a fresh domain" shard total
         (Printexc.to_string first));
    match Domain.join (Domain.spawn (guarded ~cancel f shard)) with
    | Ok v -> v
    | Error e when is_cancellation e -> raise e
    | Error second -> (
      Dse_error.degraded
        (Printf.sprintf "shard %d/%d failed twice (%s); recomputing it sequentially" shard
           total (Printexc.to_string second));
      match guarded ~cancel f shard () with
      | Ok v -> v
      | Error e when is_cancellation e -> raise e
      | Error third ->
        Dse_error.fail
          (Dse_error.Shard_failure
             { shard; attempts = 3; message = Printexc.to_string third })))

let map ?(cancel = Cancel.none) f count =
  if count <= 0 then []
  else if count = 1 then [ recover ~cancel f 1 0 (guarded ~cancel f 0 ()) ]
  else begin
    (* spawn workers for shards 1..count-1, compute shard 0 here *)
    let workers = List.init (count - 1) (fun i -> Domain.spawn (guarded ~cancel f (i + 1))) in
    let settled = guarded ~cancel f 0 () :: List.map Domain.join workers in
    List.mapi (recover ~cancel f count) settled
  end
