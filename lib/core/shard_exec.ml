let attempt f shard =
  if Fault.should_fail ~shard then
    Dse_error.fail
      (Dse_error.Shard_failure
         { shard; attempts = 1; message = "injected fault (DSE_FAULT)" });
  f shard

let guarded f shard () = match attempt f shard with v -> Ok v | exception e -> Error e

let recover f total shard outcome =
  match outcome with
  | Ok v -> v
  | Error first -> (
    Dse_error.degraded
      (Printf.sprintf "shard %d/%d failed (%s); retrying in a fresh domain" shard total
         (Printexc.to_string first));
    match Domain.join (Domain.spawn (guarded f shard)) with
    | Ok v -> v
    | Error second -> (
      Dse_error.degraded
        (Printf.sprintf "shard %d/%d failed twice (%s); recomputing it sequentially" shard
           total (Printexc.to_string second));
      match guarded f shard () with
      | Ok v -> v
      | Error third ->
        Dse_error.fail
          (Dse_error.Shard_failure
             { shard; attempts = 3; message = Printexc.to_string third })))

let map f count =
  if count <= 0 then []
  else if count = 1 then [ recover f 1 0 (guarded f 0 ()) ]
  else begin
    (* spawn workers for shards 1..count-1, compute shard 0 here *)
    let workers = List.init (count - 1) (fun i -> Domain.spawn (guarded f (i + 1))) in
    let settled = guarded f 0 () :: List.map Domain.join workers in
    List.mapi (recover f count) settled
  end
