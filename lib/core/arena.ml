(* Off-heap flat storage for the hot analysis state.

   Bigarray data lives outside the OCaml major heap: the GC neither
   scans nor copies it, [Gc.stat ()]'s [top_heap_words] does not count
   it, and multiple domains can read one array through the same handle
   without per-domain copies (only the small proxy record is on-heap).
   That combination is exactly what the sharded kernel wants — a strip
   built once and shared read-only by every shard, with none of the
   boxed [int array] footprint that used to dominate peak heap.

   Two element widths cover every table the kernel keeps:
     - [i32]: per-reference tables (stripped ids, recency next/prev).
       4 bytes per entry; ids and list indices are bounded by N' < 2^31,
       checked at creation time by the callers that narrow.
     - [word]: tables indexed by or holding full addresses / counters
       (uniques, tallies). Native 63-bit ints, 8 bytes per entry,
       unboxed on access.

   The accessors convert at the boundary ([Int32.of_int]/[to_int]);
   classic ocamlopt unboxes these locally, so reads and writes in the
   kernel loops allocate nothing (asserted by the bench's minor-word
   counters and the zero-copy test). *)

type i32 = (int32, Bigarray.int32_elt, Bigarray.c_layout) Bigarray.Array1.t

type word = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

let i32_create n : i32 =
  let a = Bigarray.Array1.create Bigarray.int32 Bigarray.c_layout (max n 1) in
  Bigarray.Array1.fill a 0l;
  a

let word_create n : word =
  let a = Bigarray.Array1.create Bigarray.int Bigarray.c_layout (max n 1) in
  Bigarray.Array1.fill a 0;
  a

let i32_length (a : i32) = Bigarray.Array1.dim a

let word_length (a : word) = Bigarray.Array1.dim a

(* Small bodies on purpose: classic ocamlopt (no flambda) still inlines
   them cross-module, which keeps the int32 boxing local and erased. *)
let i32_get (a : i32) i = Int32.to_int (Bigarray.Array1.unsafe_get a i)

let i32_set (a : i32) i v = Bigarray.Array1.unsafe_set a i (Int32.of_int v)

let i32_fill (a : i32) v = Bigarray.Array1.fill a (Int32.of_int v)

let word_get (a : word) i = Bigarray.Array1.unsafe_get a i

let word_set (a : word) i (v : int) = Bigarray.Array1.unsafe_set a i v

let word_fill (a : word) v = Bigarray.Array1.fill a v

(* [word_grow a len cap'] is a fresh zeroed arena of [cap'] entries with
   the first [len] copied over — the doubling step of growable tables.
   The copy is bigarray-to-bigarray: no boxed intermediate. *)
let word_grow (a : word) ~len ~capacity =
  let bigger = word_create capacity in
  Bigarray.Array1.blit (Bigarray.Array1.sub a 0 len) (Bigarray.Array1.sub bigger 0 len);
  bigger

(* -- packed bitset ----------------------------------------------------

   63 usable bits per word arena entry (OCaml's native int). Packing at
   63 rather than 64 keeps every mask operation in immediate-int range —
   no Int64 boxing anywhere — at the cost of a division by a constant
   the compiler strengths-reduces to a multiply. *)

module Bits = struct
  type t = { data : word; bits : int }

  let bits_per_word = 63

  let create bits =
    if bits < 0 then invalid_arg "Arena.Bits.create: negative size";
    { data = word_create ((bits + bits_per_word - 1) / bits_per_word); bits }

  let length t = t.bits

  let get t i = (word_get t.data (i / bits_per_word) lsr (i mod bits_per_word)) land 1 = 1

  let set t i =
    let w = i / bits_per_word in
    word_set t.data w (word_get t.data w lor (1 lsl (i mod bits_per_word)))

  let unset t i =
    let w = i / bits_per_word in
    word_set t.data w (word_get t.data w land lnot (1 lsl (i mod bits_per_word)))

  let clear t = word_fill t.data 0

  (* SWAR popcount of one 63-bit word: pairwise sums, nibble sums, then
     a multiply gathers the byte sums into the top byte. All constants
     fit OCaml's 63-bit int; the final shift keeps only the gathered
     total (<= 63, so no overflow into the truncated sign position). *)
  let popcount_word x =
    let x = x - ((x lsr 1) land 0x5555555555555555) in
    let x = (x land 0x3333333333333333) + ((x lsr 2) land 0x3333333333333333) in
    let x = (x + (x lsr 4)) land 0x0F0F0F0F0F0F0F0F in
    (x * 0x0101010101010101) lsr 56

  let popcount t =
    let total = ref 0 in
    for w = 0 to word_length t.data - 1 do
      total := !total + popcount_word (word_get t.data w)
    done;
    !total
end
