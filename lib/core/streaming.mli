(** Streaming fused MRCT->histogram kernel.

    {!Mrct.build} followed by {!Dfs_optimizer.histograms} materializes one
    conflict-set array per warm occurrence — O(N * N') words in the worst
    case — only to fold each set into per-level histograms and throw it
    away. This module fuses the two passes: it walks the same recency
    list as {!Mrct.build}, but tallies every conflicting reference
    directly into per-level depth counts and folds the suffix sums into
    the histograms on the spot. The conflict table never exists; peak
    memory is O(N' + levels * max_conflict) and the per-occurrence loop
    is allocation-free (histogram growth is geometric and amortized).

    Results are bit-identical to the materialized
    {!Dfs_optimizer.histograms} path (property tested).

    [domains > 1] shards the *trace* into per-domain windows. Each shard
    replays the prefix before its window to reconstruct the recency-list
    state (O(1) per replayed access, no tallying), then tallies its own
    window; per-level histograms are summed. Warm occurrences partition
    by position, so the merge is exact. Sharding falls back to the
    sequential kernel when the windows are too small for the replay and
    spawn overhead to pay off.

    Sharded runs are fault-isolated through {!Shard_exec}: a crashing
    domain is retried once in a fresh domain, then its window is
    recomputed sequentially; only when all three attempts fail does a
    typed {!Dse_error.Shard_failure} escape.

    [cancel] (default {!Cancel.none}) is polled every
    {!Cancel.poll_mask}+1 references of both the replay prologue and the
    tally loop; an expired token raises a typed
    {!Dse_error.Deadline_exceeded} from whichever shard notices first
    (cancellation is not a shard fault: it is never retried). *)

(** [histograms ?cancel ?domains ?shard_threshold stripped ~max_level]
    computes the per-level conflict-cardinality histograms
    ([result.(l).(c)] counts warm occurrences whose conflict set meets
    their depth-[2^l] row in exactly [c] references). [domains] defaults
    to 1 and is clamped to at least 1; [shard_threshold] (default
    {!min_shard_refs}) is the smallest per-domain window for which
    sharding is attempted — tests lower it to exercise the sharded path
    on short traces. Raises [Invalid_argument] on a negative
    [max_level]. *)
val histograms :
  ?cancel:Cancel.t ->
  ?domains:int ->
  ?shard_threshold:int ->
  Strip.t ->
  max_level:int ->
  int array array

(** [explore ?cancel ?domains ?shard_threshold stripped ~max_level ~k]
    runs the full postlude on the streamed histograms; equivalent to
    {!Dfs_optimizer.explore} on a materialized MRCT. *)
val explore :
  ?cancel:Cancel.t ->
  ?domains:int ->
  ?shard_threshold:int ->
  Strip.t ->
  max_level:int ->
  k:int ->
  Optimizer.t

(** [misses ?cancel ?domains ?shard_threshold stripped ~level
    ~associativity] is the exact non-cold miss count of the [2^level] x
    [associativity] LRU cache, computed without materializing the
    conflict table. *)
val misses :
  ?cancel:Cancel.t ->
  ?domains:int ->
  ?shard_threshold:int ->
  Strip.t ->
  level:int ->
  associativity:int ->
  int

(** [min_shard_refs] is the smallest per-domain window (in trace
    references) for which sharding is attempted; below it the sequential
    kernel runs regardless of [domains]. Exposed for the benchmarks. *)
val min_shard_refs : int
