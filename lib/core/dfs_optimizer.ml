(* Count trailing zeros of a positive int, clamped to [limit]. [limit]
   is threaded as an argument — a nested closure capturing it would
   allocate on every call, and this runs once per conflicting
   reference. *)
let rec ctz_clamped x acc limit =
  if acc >= limit then limit
  else if x land 1 = 1 then acc
  else ctz_clamped (x lsr 1) (acc + 1) limit

(* Tally conflict sets into per-level histograms using a caller-supplied
   iteration over (reference, conflict set) pairs. *)
let histograms_of_iteration ~addresses ~max_level iterate =
  if max_level < 0 then invalid_arg "Dfs_optimizer: negative max_level";
  let hists = Array.make (max_level + 1) [||] in
  for l = 0 to max_level do
    hists.(l) <- Array.make 1 0
  done;
  let max_c = Array.make (max_level + 1) 0 in
  let record level c =
    let h = hists.(level) in
    let h =
      if c >= Array.length h then begin
        let bigger = Array.make (max (c + 1) (2 * Array.length h)) 0 in
        Array.blit h 0 bigger 0 (Array.length h);
        hists.(level) <- bigger;
        bigger
      end
      else h
    in
    h.(c) <- h.(c) + 1;
    if c > max_c.(level) then max_c.(level) <- c
  in
  (* For one conflict set of reference u: tally, for each v in the set,
     the deepest level at which u and v still share a row; the conflict
     cardinality at level l is then the suffix count. *)
  let depth_count = Array.make (max_level + 1) 0 in
  iterate (fun u conflict ->
      if Array.length conflict > 0 then begin
        Array.fill depth_count 0 (max_level + 1) 0;
        let au = addresses.(u) in
        Array.iter
          (fun v ->
            let shared = ctz_clamped (au lxor addresses.(v)) 0 max_level in
            depth_count.(shared) <- depth_count.(shared) + 1)
          conflict;
        let running = ref 0 in
        for l = max_level downto 0 do
          running := !running + depth_count.(l);
          if !running > 0 then record l !running
        done
      end);
  Array.mapi (fun l h -> Array.sub h 0 (max_c.(l) + 1)) hists

let histograms ~addresses mrct ~max_level =
  histograms_of_iteration ~addresses ~max_level (fun f -> Mrct.iter f mrct)

let histograms_range ~addresses mrct ~max_level ~lo ~hi =
  histograms_of_iteration ~addresses ~max_level (fun f -> Mrct.iter_range f mrct ~lo ~hi)

let explore ~addresses mrct ~max_level ~k =
  Optimizer.of_histograms ~k (histograms ~addresses mrct ~max_level)
