type t =
  | Never
  | Token of { start : float; limit : float; deadline : float Atomic.t }

let none = Never

let after seconds =
  if not (seconds > 0.0 && seconds < infinity) then
    invalid_arg "Cancel.after: the deadline must be a positive finite number of seconds";
  let now = Unix.gettimeofday () in
  Token { start = now; limit = seconds; deadline = Atomic.make (now +. seconds) }

let cancel = function
  | Never -> ()
  | Token { deadline; _ } -> Atomic.set deadline neg_infinity

let expired = function
  | Never -> false
  | Token { deadline; _ } -> Unix.gettimeofday () >= Atomic.get deadline

let check = function
  | Never -> ()
  | Token { start; limit; deadline } ->
    let now = Unix.gettimeofday () in
    if now >= Atomic.get deadline then
      Dse_error.fail (Dse_error.Deadline_exceeded { elapsed = now -. start; limit })

let limit = function Never -> None | Token { limit; _ } -> Some limit

let poll_mask = 1023
