type deadline = { start : float; limit : float; cell : float Atomic.t }

type t = { deadline : deadline option; heartbeat : Heartbeat.t option }

let none = { deadline = None; heartbeat = None }

let after seconds =
  if not (seconds > 0.0 && seconds < infinity) then
    invalid_arg "Cancel.after: the deadline must be a positive finite number of seconds";
  let now = Unix.gettimeofday () in
  { deadline = Some { start = now; limit = seconds; cell = Atomic.make (now +. seconds) };
    heartbeat = None }

let cancellable () =
  let now = Unix.gettimeofday () in
  { deadline = Some { start = now; limit = infinity; cell = Atomic.make infinity };
    heartbeat = None }

let with_heartbeat heartbeat t = { t with heartbeat = Some heartbeat }

let cancel t =
  match t.deadline with
  | None -> ()
  | Some { cell; _ } -> Atomic.set cell neg_infinity

let expired t =
  match t.deadline with
  | None -> false
  | Some { cell; _ } -> Unix.gettimeofday () >= Atomic.get cell

let check t =
  (match t.heartbeat with None -> () | Some hb -> Heartbeat.beat hb);
  match t.deadline with
  | None -> ()
  | Some { start; limit; cell } ->
    let now = Unix.gettimeofday () in
    if now >= Atomic.get cell then
      Dse_error.fail (Dse_error.Deadline_exceeded { elapsed = now -. start; limit })

let limit t =
  match t.deadline with
  | Some { limit; _ } when limit < infinity -> Some limit
  | _ -> None

let poll_mask = 1023
