(** The streaming fused kernel on off-heap arenas — [--method arena].

    Same algorithm and bit-identical output as {!Streaming} (property
    tested), with every hot table moved into {!Arena} bigarrays the GC
    neither scans, copies, nor counts in [top_heap_words]:

    - the strip (per-reference ids + unique line addresses) is built
      {e directly from the trace} — the boxed line-address array,
      [Hashtbl], and [Strip.t] of the classic prelude never exist — and
      is shared by reference across shard domains;
    - the recency list is two int32 arenas plus a packed 63-bit bitset;
    - per-level tallies and [depth_count] accumulate in per-shard word
      arenas merged straight into the final histograms, no intermediate
      per-shard arrays.

    Per-reference footprint drops from ~50 B (boxed trace + strip +
    recency, all GC-scanned) to 4 B of ids plus O(N') side state, which
    is what makes 10^9-reference traces representable and lets [dse
    serve] admit jobs the boxed cost model had to reject. *)

(** A read-only stripped trace in flat arenas. Safe to share across
    domains: after {!of_trace} returns it is never written again. *)
type strip

(** [of_trace ?line_words trace] strips in one pass: folds word
    addresses to line addresses ([line_words] default 1, must be a power
    of two), assigns ids in first-occurrence order (identical to
    {!Strip.strip}), and records the depth-1 direct-mapped miss count
    and address width as it goes. Raises a typed
    {!Dse_error.Constraint_violation} if the unique count overflows the
    int32 id arena. *)
val of_trace : ?line_words:int -> Trace.t -> strip

val num_refs : strip -> int

val num_unique : strip -> int

(** [address_bits s] is the bits needed for the widest line address; at
    least 1. Matches {!Strip.address_bits} of the boxed view. *)
val address_bits : strip -> int

(** [stats s] is O(1): every field was recorded during the build, so the
    arena path reports {!Stats.t} without re-scanning or boxing. Equal to
    [Stats.compute_stripped] of the boxed view. *)
val stats : strip -> Stats.t

(** [to_strip s] is the boxed {!Strip.t} view, equal to [Strip.strip] of
    the source trace — the bridge to the materializing methods (DFS,
    BCAT walk) and the conflict-table printers. Costs O(N + N') boxed
    words; the arena path never calls it. *)
val to_strip : strip -> Strip.t

(** [histograms ?cancel ?domains ?shard_threshold s ~max_level] is the
    per-level conflict-cardinality histograms, bit-identical to
    {!Streaming.histograms} on the boxed view. [domains] shards the
    trace into windows exactly as the streaming kernel does (replay
    prologue, {!Shard_exec} fault isolation, {!Streaming.min_shard_refs}
    fallback threshold); every shard reads the same strip arenas by
    reference. Raises [Invalid_argument] on a negative [max_level]. *)
val histograms :
  ?cancel:Cancel.t ->
  ?domains:int ->
  ?shard_threshold:int ->
  strip ->
  max_level:int ->
  int array array

(** [window_histograms ?cancel s ~max_level ~lo ~hi] is one shard's
    window, exposed for the sharding tests. *)
val window_histograms :
  ?cancel:Cancel.t -> strip -> max_level:int -> lo:int -> hi:int -> int array array

(** [explore ?cancel ?domains ?shard_threshold s ~max_level ~k] runs the
    postlude on the arena histograms. *)
val explore :
  ?cancel:Cancel.t ->
  ?domains:int ->
  ?shard_threshold:int ->
  strip ->
  max_level:int ->
  k:int ->
  Optimizer.t

(** [misses ?cancel ?domains ?shard_threshold s ~level ~associativity]
    is the exact non-cold miss count of the [2^level] x [associativity]
    LRU cache. *)
val misses :
  ?cancel:Cancel.t ->
  ?domains:int ->
  ?shard_threshold:int ->
  strip ->
  level:int ->
  associativity:int ->
  int
