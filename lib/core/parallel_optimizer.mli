(** Multicore postlude — the paper's section 2.4 notes that the set
    formulation "allows for execution of the algorithm on a cluster of
    machines by utilizing a distributed set library, enabling the
    processing of very large trace files". This module is that idea on a
    single node: the MRCT is partitioned by reference identifier across
    OCaml 5 domains, each computes partial per-level histograms (the
    data are read-only), and the histograms are summed. Results are
    identical to {!Dfs_optimizer} (property tested).

    Multi-domain runs are fault-isolated through {!Shard_exec}: a
    crashing domain is retried once in a fresh domain, then its
    identifier chunk is recomputed sequentially; only when all three
    attempts fail does a typed {!Dse_error.Shard_failure} escape. *)

(** [explore ?cancel ~domains ~addresses mrct ~max_level ~k] runs the
    fused DFS postlude on [domains] domains (clamped to at least 1).
    [cancel] (default {!Cancel.none}) is polled at shard boundaries
    through {!Shard_exec}; expiry raises a typed
    {!Dse_error.Deadline_exceeded} without retrying the shard. *)
val explore :
  ?cancel:Cancel.t ->
  domains:int ->
  addresses:int array ->
  Mrct.t ->
  max_level:int ->
  k:int ->
  Optimizer.t

(** [histograms ?cancel ~domains ~addresses mrct ~max_level] exposes the
    merged per-level histograms. *)
val histograms :
  ?cancel:Cancel.t ->
  domains:int ->
  addresses:int array ->
  Mrct.t ->
  max_level:int ->
  int array array
