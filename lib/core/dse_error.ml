type t =
  | Parse_error of { file : string; line : int; message : string }
  | Corrupt_binary of { file : string; offset : int; message : string }
  | Constraint_violation of { context : string; message : string }
  | Shard_failure of { shard : int; attempts : int; message : string }
  | Io_error of { file : string; message : string }
  | Queue_full of { pending : int; max_pending : int; retry_after : float }
  | Deadline_exceeded of { elapsed : float; limit : float }
  | Worker_stalled of { elapsed : float; job : string }
  | Resource_exhausted of { resource : string; needed : int; budget : int }
  | Backend_unavailable of { node : string; attempts : int }
  | Stale_ring of { seen : int; expected : int }

exception Error of t

let fail e = raise (Error e)

let to_string = function
  | Parse_error { file; line; message } -> Printf.sprintf "%s: line %d: %s" file line message
  | Corrupt_binary { file; offset; message } ->
    Printf.sprintf "%s: corrupt binary trace at byte %d: %s" file offset message
  | Constraint_violation { context; message } -> Printf.sprintf "%s: %s" context message
  | Shard_failure { shard; attempts; message } ->
    Printf.sprintf "shard %d failed after %d attempt(s): %s" shard attempts message
  | Io_error { file; message } -> Printf.sprintf "%s: %s" file message
  | Queue_full { pending; max_pending; retry_after } ->
    Printf.sprintf "server busy: %d job(s) pending (max %d); retry in %.2f s" pending
      max_pending retry_after
  | Deadline_exceeded { elapsed; limit } ->
    Printf.sprintf "deadline of %.3f s exceeded after %.3f s" limit elapsed
  | Worker_stalled { elapsed; job } ->
    Printf.sprintf "worker stalled for %.3f s while running %s; the job was abandoned" elapsed
      job
  | Resource_exhausted { resource; needed; budget } ->
    Printf.sprintf "job rejected before allocation: needs %d %s but the budget is %d" needed
      resource budget
  | Backend_unavailable { node; attempts } ->
    Printf.sprintf "backend %s unavailable after %d failover attempt(s): no live node owns this job"
      node attempts
  | Stale_ring { seen; expected } ->
    Printf.sprintf
      "stale ring config: peer sent ring version %d but this node is at version %d; refetch the \
       ring config and retry"
      seen expected

let exit_code = function
  | Constraint_violation _ -> 2
  | Io_error _ -> 3
  | Parse_error _ | Corrupt_binary _ -> 4
  | Shard_failure _ -> 5
  | Queue_full _ -> 6
  | Deadline_exceeded _ -> 7
  | Worker_stalled _ | Resource_exhausted _ -> 8
  | Backend_unavailable _ -> 9
  | Stale_ring _ -> 10

let on_degradation = ref (fun msg -> prerr_endline ("dse: " ^ msg))

let degraded msg = !on_degradation msg

let () =
  Printexc.register_printer (function Error e -> Some ("Dse_error: " ^ to_string e) | _ -> None)
