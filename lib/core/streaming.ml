(* Count trailing zeros of a positive int, clamped to [limit]; two
   references share a depth-2^l row iff their addresses agree on the low
   l bits, i.e. ctz (a lxor b) >= l. [limit] is threaded as an argument —
   a nested closure capturing it would allocate on every call, and this
   runs once per conflicting reference. *)
let rec ctz_clamped x acc limit =
  if acc >= limit then limit
  else if x land 1 = 1 then acc
  else ctz_clamped (x lsr 1) (acc + 1) limit

(* Growable per-level histograms, identical in growth and trimming to
   Dfs_optimizer so the two paths produce bit-identical arrays. *)
type tally = {
  hists : int array array;
  max_c : int array;
  depth_count : int array;
  max_level : int;
}

let tally_create max_level =
  if max_level < 0 then invalid_arg "Streaming: negative max_level";
  {
    hists = Array.init (max_level + 1) (fun _ -> Array.make 1 0);
    max_c = Array.make (max_level + 1) 0;
    depth_count = Array.make (max_level + 1) 0;
    max_level;
  }

let record t level c =
  let h = t.hists.(level) in
  let h =
    if c >= Array.length h then begin
      let bigger = Array.make (max (c + 1) (2 * Array.length h)) 0 in
      Array.blit h 0 bigger 0 (Array.length h);
      t.hists.(level) <- bigger;
      bigger
    end
    else h
  in
  h.(c) <- h.(c) + 1;
  if c > t.max_c.(level) then t.max_c.(level) <- c

let tally_finish t = Array.mapi (fun l h -> Array.sub h 0 (t.max_c.(l) + 1)) t.hists

(* The fused kernel over one trace window [lo, hi).

   The recency list is the same intrusive prev/next structure as
   Mrct.build (index n' is the sentinel). Positions [0, lo) are replayed
   to reconstruct the list state at the window start — O(1) per access.
   Within the window, a warm occurrence of [u] walks the list prefix
   above [u] exactly as Mrct.build would to emit the conflict set, but
   each member is folded into depth_count immediately; the suffix sums
   then land in the histograms. No conflict set is ever stored. *)
let window_histograms ?(cancel = Cancel.none) (s : Strip.t) ~max_level ~lo ~hi =
  let t = tally_create max_level in
  let n' = Strip.num_unique s in
  let next = Array.make (n' + 1) n' in
  let prev = Array.make (n' + 1) n' in
  let in_list = Array.make (max n' 1) false in
  let unlink u =
    next.(prev.(u)) <- next.(u);
    prev.(next.(u)) <- prev.(u)
  in
  let push_front u =
    let first = next.(n') in
    next.(n') <- u;
    prev.(u) <- n';
    next.(u) <- first;
    prev.(first) <- u
  in
  let touch u =
    if in_list.(u) then unlink u else in_list.(u) <- true;
    push_front u
  in
  for j = 0 to lo - 1 do
    if j land Cancel.poll_mask = 0 then Cancel.check cancel;
    touch s.Strip.ids.(j)
  done;
  let addresses = s.Strip.uniques in
  let depth_count = t.depth_count in
  for j = lo to hi - 1 do
    if j land Cancel.poll_mask = 0 then Cancel.check cancel;
    let u = s.Strip.ids.(j) in
    if in_list.(u) then begin
      let au = addresses.(u) in
      let v = ref next.(n') in
      let max_touched = ref (-1) in
      while !v <> u do
        let shared = ctz_clamped (au lxor addresses.(!v)) 0 max_level in
        depth_count.(shared) <- depth_count.(shared) + 1;
        if shared > !max_touched then max_touched := shared;
        v := next.(!v)
      done;
      (* suffix-sum over the levels the walk actually touched, clearing
         each slot as it is read: [running >= 1] for every
         [l <= max_touched], so the recorded (level, count) pairs are
         those of a full 0..max_level sweep without the per-occurrence
         [Array.fill] over all levels. [depth_count] stays all-zero
         between occurrences. *)
      let running = ref 0 in
      for l = !max_touched downto 0 do
        running := !running + depth_count.(l);
        depth_count.(l) <- 0;
        record t l !running
      done;
      unlink u
    end
    else in_list.(u) <- true;
    push_front u
  done;
  tally_finish t

let merge_histograms parts =
  match parts with
  | [] -> [||]
  | first :: _ ->
    let levels = Array.length first in
    Array.init levels (fun level ->
        let width =
          List.fold_left (fun acc part -> max acc (Array.length part.(level))) 1 parts
        in
        let merged = Array.make width 0 in
        List.iter
          (fun part ->
            Array.iteri (fun c n -> merged.(c) <- merged.(c) + n) part.(level))
          parts;
        merged)

(* Each shard pays an O(lo) replay prologue, so total replay work is
   ~domains/2 passes over the trace; below this window size the replay
   and Domain.spawn overhead outweigh the tally work split. *)
let min_shard_refs = 65536

let histograms ?(cancel = Cancel.none) ?(domains = 1) ?(shard_threshold = min_shard_refs)
    (s : Strip.t) ~max_level =
  let n = Strip.num_refs s in
  let domains = max 1 domains in
  if domains = 1 || n < domains * shard_threshold then
    window_histograms ~cancel s ~max_level ~lo:0 ~hi:n
  else begin
    let chunk = (n + domains - 1) / domains in
    match
      List.init domains (fun d -> (d * chunk, min n ((d + 1) * chunk)))
      |> List.filter (fun (lo, hi) -> lo < hi)
      |> Array.of_list
    with
    | [||] -> window_histograms ~cancel s ~max_level ~lo:0 ~hi:n
    | windows ->
      (* one shard-isolated domain per window (shard 0 runs here);
         a crashed shard is retried, then recomputed sequentially *)
      merge_histograms
        (Shard_exec.map ~cancel
           (fun shard ->
             let lo, hi = windows.(shard) in
             window_histograms ~cancel s ~max_level ~lo ~hi)
           (Array.length windows))
  end

let explore ?cancel ?domains ?shard_threshold s ~max_level ~k =
  Optimizer.of_histograms ~k (histograms ?cancel ?domains ?shard_threshold s ~max_level)

let misses ?cancel ?domains ?shard_threshold s ~level ~associativity =
  if level < 0 then invalid_arg "Streaming.misses: negative level";
  let hists = histograms ?cancel ?domains ?shard_threshold s ~max_level:level in
  Optimizer.misses_of_histogram hists.(level) ~associativity
