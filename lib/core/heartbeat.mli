(** Worker liveness heartbeats.

    A heartbeat is an atomic wall-clock timestamp shared between the
    domain doing kernel work and the watchdog observing it. The worker
    side stamps it implicitly: attaching a heartbeat to a {!Cancel}
    token ({!Cancel.with_heartbeat}) makes every cancellation poll —
    every {!Cancel.poll_mask}+1 references in the streaming loops,
    before each shard attempt, per BCAT-walk level — also refresh the
    timestamp. The watchdog side reads {!age} from another domain and
    declares a worker stalled once the age exceeds the hang timeout:
    a wedged loop stops polling, so it stops beating.

    Both sides are a single atomic load or store; no locks, safe from
    any domain. *)

type t

(** [create ()] is a heartbeat stamped "now" — a job is live the moment
    it is picked up, so the hang clock starts at job start, not at the
    first kernel poll. *)
val create : unit -> t

(** [beat t] re-stamps the heartbeat to the current time. *)
val beat : t -> unit

(** [last t] is the wall-clock time of the most recent beat. *)
val last : t -> float

(** [age ?now t] is the seconds since the last beat ([now] defaults to
    the current time; pass it when scanning many heartbeats against one
    clock read). *)
val age : ?now:float -> t -> float
