(** Crash-safe write-ahead log for the serving layer's result cache.

    A cached entry is expensive to compute (one full kernel run) and
    cheap to store, so a daemon restart must not discard it. Every
    {!Result_cache.store} is appended here as one self-framing record —
    the v2 binary-trace idiom, one frame per record so the log survives
    partial writes:

    {v "DSEW" | version (1) | payload length (LEB128) | payload | CRC-32 (4, LE) v}

    The payload is the cache key (fingerprint as 8 LE bytes, method tag,
    domains, max_level+1) followed by the entry (the four {!Stats.t}
    varints, then the per-level histograms, length-prefixed). The CRC
    footer covers every preceding byte of the record.

    {!replay} tolerates real crash damage: a torn tail (a [kill -9]
    mid-append) drops only the unfinished record, and a bit-flipped or
    garbage region is skipped by re-synchronising on the next ["DSEW"]
    magic — every intact record before {e and after} the damage is
    recovered. Records replay in append order, so later writes of the
    same key win and LRU recency is reproduced.

    Appends are a single [write(2)] on an [O_APPEND] descriptor, so a
    crash can tear at most the final record. When the log has grown past
    [compact_factor * capacity] appended records it is compacted: the
    live snapshot is written to a sibling temp file, fsynced, and
    atomically renamed over the log — a crash during compaction leaves
    either the old or the new file, never a mix. *)

(** [encode_record key entry] is the entry as one self-framing record —
    the unit of both WAL persistence and the cluster's [Replicate] /
    [Cache_reply] payloads, so warm state travels in the same bytes it
    is persisted in. [None] for an {!Result_cache.Approx} entry (not
    persisted, hence not replicated — cheap to recompute). *)
val encode_record : Result_cache.key -> Result_cache.entry -> string option

(** [decode_record data] parses exactly one whole record as produced by
    {!encode_record}. Damage, trailing bytes, or a torn prefix is
    [None] — a replication receiver cannot be corrupted by a bad
    peer. *)
val decode_record : string -> (Result_cache.key * Result_cache.entry) option

type replay = {
  entries : (Result_cache.key * Result_cache.entry) list;  (** in append order *)
  intact : int;  (** records recovered *)
  damaged : int;  (** corrupt regions skipped by magic resync *)
  truncated : bool;  (** a torn final record was dropped *)
}

(** [replay path] scans the log. A missing file is an empty replay (the
    first run of a daemon), damage is tolerated as documented above;
    only an OS-level open/read failure is an [Error]. *)
val replay : string -> (replay, Dse_error.t) result

type t

(** [open_ ?compact_factor ~capacity ~snapshot path] opens (creating if
    absent) the log for appending. [capacity] is the paired cache's
    entry bound and [compact_factor] (default 4) sets the compaction
    trigger: after [compact_factor * capacity] appends the log is
    rewritten from [snapshot ()] (the cache's live entries,
    least-recently-used first). *)
val open_ :
  ?compact_factor:int ->
  capacity:int ->
  snapshot:(unit -> (Result_cache.key * Result_cache.entry) list) ->
  string ->
  (t, Dse_error.t) result

(** [append t key entry] logs one store (and compacts if due). Safe from
    any domain. An {!Result_cache.Approx} entry is a no-op [Ok ()]: the
    record format is the exact histogram summary, and a sketch profile
    is cheap to recompute from a resubmission (one streaming pass), so
    approx results are served warm only within a daemon's lifetime. *)
val append : t -> Result_cache.key -> Result_cache.entry -> (unit, Dse_error.t) result

(** [compact t] rewrites the log from the live snapshot immediately,
    regardless of the append-count trigger. Replica GC calls it after
    dropping entries the node no longer participates in, so a
    decommissioned key range leaves the disk too (a later replay must
    not resurrect it). Safe from any domain. *)
val compact : t -> (unit, Dse_error.t) result

(** [appended_since_compact t] — exposed for tests of the compaction
    trigger. *)
val appended_since_compact : t -> int

val path : t -> string

val close : t -> unit
