(** Client side of the [dse serve] protocol.

    One connection per request; every failure — refused socket, wire
    damage, or a structured error relayed by the daemon — comes back as
    a typed {!Dse_error.t}, so [dse submit] preserves the CLI exit-code
    scheme (a corrupt trace is exit 4 whether it was detected locally or
    by the daemon; a full queue is {!Dse_error.Queue_full}, exit 6).

    [socket] everywhere is an address string in {!Transport.parse}'s
    grammar: a Unix-socket path, or ["host:port"] for a TCP daemon or a
    [dse route] gateway — the wire protocol is identical. *)

(** [request ~socket req] performs one request/response round trip. *)
val request : socket:string -> Protocol.request -> (Protocol.response, Dse_error.t) result

(** [submit ~socket ?percents ?k ?max_level ?method_ ?domains ?deadline
    ?retries ?retry_base ?retry_cap ~name trace] submits one job. [k]
    switches from the percentage sweep (default, the paper's
    5/10/15/20) to one absolute budget, mirroring [dse explore]'s
    [--percents]/[-k]. [deadline] bounds the job's server-side runtime
    (queue wait included); expiry comes back as
    {!Dse_error.Deadline_exceeded}.

    [retries] (default 0: fail fast) enables jittered exponential
    backoff for {e transient} failures only — {!Dse_error.Queue_full},
    {!Dse_error.Backend_unavailable} (a gateway whose ring is briefly
    all-dark, e.g. a rolling restart), and transport-level
    {!Dse_error.Io_error}, which covers the whole daemon-restart
    window: [ECONNREFUSED], a missing socket file, [ECONNRESET], a
    connection closed before the response, a read timeout. Attempt [i] sleeps
    [retry_base * 2^i * U(0.5, 1.5)] seconds, raised to the server's
    [retry_after] hint when a shedding daemon provided one; [retry_cap]
    (default 30) is a hard wall-clock bound across all attempts, after
    which the last typed error is returned. Structured job failures
    (constraint violations, corrupt traces, deadline expiry, stalled
    workers, admission rejections) are never retried.

    [approx] (default false) submits the job for approximate analysis:
    the daemon decodes the record stream straight into a one-pass
    sketch (the trace never materialises server-side, and admission
    prices it at the sketch's fixed footprint) and answers with
    {!Protocol.Approx_table} / {!Protocol.Approx_optimal} — estimates
    with error bars. [method_] is ignored when [approx] is set.

    The payload says whether the result came from the daemon's
    cache. *)
val submit :
  socket:string ->
  ?percents:int list ->
  ?k:int ->
  ?max_level:int ->
  ?method_:Analytical.method_ ->
  ?approx:bool ->
  ?domains:int ->
  ?deadline:float ->
  ?retries:int ->
  ?retry_base:float ->
  ?retry_cap:float ->
  name:string ->
  Trace.t ->
  (Protocol.result_payload, Dse_error.t) result

(** [ping ~socket] checks liveness. *)
val ping : socket:string -> (unit, Dse_error.t) result

(** [server_stats ~socket] fetches the daemon's counters. *)
val server_stats : socket:string -> (Protocol.server_stats, Dse_error.t) result

(** [health ~socket] fetches the daemon's structured readiness: per-
    worker state and heartbeat ages, queue depth against its shedding
    watermark, shed and admission-rejection counters, cache/WAL health
    and uptime ([dse submit --health]). *)
val health : socket:string -> (Protocol.health, Dse_error.t) result
