(** Client side of the [dse serve] protocol.

    One connection per request; every failure — refused socket, wire
    damage, or a structured error relayed by the daemon — comes back as
    a typed {!Dse_error.t}, so [dse submit] preserves the CLI exit-code
    scheme (a corrupt trace is exit 4 whether it was detected locally or
    by the daemon; a full queue is {!Dse_error.Queue_full}, exit 6). *)

(** [request ~socket req] performs one request/response round trip. *)
val request : socket:string -> Protocol.request -> (Protocol.response, Dse_error.t) result

(** [submit ~socket ?percents ?k ?max_level ?method_ ?domains ~name
    trace] submits one job. [k] switches from the percentage sweep
    (default, the paper's 5/10/15/20) to one absolute budget, mirroring
    [dse explore]'s [--percents]/[-k]. The payload says whether the
    result came from the daemon's cache. *)
val submit :
  socket:string ->
  ?percents:int list ->
  ?k:int ->
  ?max_level:int ->
  ?method_:Analytical.method_ ->
  ?domains:int ->
  name:string ->
  Trace.t ->
  (Protocol.result_payload, Dse_error.t) result

(** [ping ~socket] checks liveness. *)
val ping : socket:string -> (unit, Dse_error.t) result

(** [server_stats ~socket] fetches the daemon's counters. *)
val server_stats : socket:string -> (Protocol.server_stats, Dse_error.t) result
