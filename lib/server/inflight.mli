(** Single-flight deduplication for the serving layer.

    A burst of identical submissions (same trace content, method, shard
    count, and level bound — the {!Result_cache.key}) must cost one
    kernel run, not one per connection. The first submission to miss the
    cache becomes the {e leader} and runs the job; every concurrent
    duplicate {e attaches} as a waiter and is answered from the leader's
    outcome — success and failure alike, since a duplicate would fail
    identically.

    State machine per key: absent --[begin_: `Leader]--> in-flight
    --[begin_: `Attached]*--> in-flight --[complete]--> absent. The
    leader's worker calls {!complete} after the result is stored in the
    cache (so a submission racing the completion hits the cache instead
    of electing a redundant leader), then replies to the returned
    waiters itself. If the leader's job cannot even be queued, the
    submitter calls {!complete} immediately and fails all parties.

    Attached waiters share the leader's fate {e and the leader's
    deadline}: a coalesced request's own [--deadline] is not enforced
    (it did not start a kernel it could cancel). *)

type waiter = {
  fd : Unix.file_descr;
  name : string;  (** the waiter's own display name for its reply *)
  query : Protocol.query;  (** the waiter's own query, answered from the shared histograms *)
}

type t

val create : unit -> t

(** [begin_ t key waiter] either elects the caller leader (the waiter
    record is discarded — the leader replies through its own job) or
    attaches it to the flight already running [key]. *)
val begin_ : t -> Result_cache.key -> waiter -> [ `Leader | `Attached ]

(** [complete t key] ends the flight and returns its waiters in attach
    order; the caller owns replying to (and closing) each. *)
val complete : t -> Result_cache.key -> waiter list

(** Total submissions answered by attaching to another's flight — the
    [coalesced_hits] server counter. *)
val coalesced : t -> int
