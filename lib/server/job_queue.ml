type 'a t = {
  items : 'a Queue.t;
  max_pending : int;
  mutex : Mutex.t;
  nonempty : Condition.t;
  mutable closed : bool;
}

let create ~max_pending =
  if max_pending < 1 then invalid_arg "Job_queue.create: max_pending must be >= 1";
  {
    items = Queue.create ();
    max_pending;
    mutex = Mutex.create ();
    nonempty = Condition.create ();
    closed = false;
  }

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let push t job =
  with_lock t (fun () ->
      if t.closed then `Closed
      else if Queue.length t.items >= t.max_pending then `Full (Queue.length t.items)
      else begin
        Queue.push job t.items;
        Condition.signal t.nonempty;
        `Ok
      end)

let pop t =
  with_lock t (fun () ->
      let rec wait () =
        if not (Queue.is_empty t.items) then Some (Queue.pop t.items)
        else if t.closed then None
        else begin
          Condition.wait t.nonempty t.mutex;
          wait ()
        end
      in
      wait ())

let close t =
  with_lock t (fun () ->
      t.closed <- true;
      Condition.broadcast t.nonempty)

let length t = with_lock t (fun () -> Queue.length t.items)

let max_pending t = t.max_pending
