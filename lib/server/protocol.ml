(* Wire format, reusing the LEB128 + CRC-32 idiom of the v2 binary
   trace framing (lib/trace/trace_io.ml):

     "DSRV" | version (1 byte) | tag (1 byte) | payload length (LEB128)
            | payload | CRC-32 (4 bytes LE, over every preceding byte)

   All integer fields inside payloads are non-negative LEB128 varints;
   strings are length-prefixed; trace records use the same
   (addr lsl 2) lor kind_tag encoding as the binary trace format. Any
   framing damage (bad magic, truncated varint, CRC mismatch, declared
   lengths exceeding the payload) surfaces as a typed
   [Dse_error.Corrupt_binary] with the byte offset, never a raw
   exception — a corrupt submission must be a structured reply to that
   one client, not a daemon crash. *)

let magic = "DSRV"

(* v2: Submit carries an optional deadline, error payloads gained the
   Deadline_exceeded tag, and stats replies the coalesced-hit and
   eviction counters. Client and daemon ship from the same tree, so the
   version is bumped in lockstep rather than negotiated.

   v3: Queue_full carries a retry-after hint, error payloads gained the
   Worker_stalled and Resource_exhausted tags, and a Health request /
   Health_reply pair exposes the readiness plane (per-worker heartbeat
   ages, queue watermark, shed and admission counters, WAL health).

   v4: Health_reply carries the node's identity (stable node id + start
   epoch) so a router can tell a respawned backend — cold cache, fresh
   breaker slate — from a long-lived one, and error payloads gained the
   Backend_unavailable tag for exhausted gateway failover.

   v5: the Submit method byte grew a fifth value (4 = approx), outcomes
   gained the Approx_table and Approx_optimal tags (error-bar fields as
   IEEE-754 bits, so a cached re-query is bit-identical to the first
   answer), and the daemon decodes an approx submission's records
   straight into a streaming sketch — the trace never materialises
   server-side, which is why admission prices it at the sketch's fixed
   footprint instead of per reference.

   v6: the cluster-durability verbs. Replicate carries finished result
   entries (in the WAL snapshot record encoding, opaque strings at this
   layer) to a backend's ring successors; Cache_query asks a peer for
   its cache-key digest (empty key list) or for the entries of specific
   keys, answered by Cache_reply — the same verb pair serves the
   router's failover peer lookup and a respawned node's anti-entropy
   pull. Health_reply grew the replication counters (peer_hits,
   replicated in/out, queue lag, drops).

   v7: online membership. A monotonically versioned ring config (node
   list + replication factor + ring_version) rides the membership verbs:
   Ring_status fetches a node's current view, Ring_update pushes a newer
   config (join/leave/replication change), and Drain tells a node to
   shed new work, push every warm entry to its post-drain owners, and
   leave the ring — all answered by Ring_reply. Replicate and
   Cache_query now carry the sender's ring_version as an epoch fence: a
   mismatch (both sides versioned, numbers differ) is rejected with the
   new Stale_ring error tag before any state is applied, and the
   sender's recovery is a Ring_status refetch. Health_reply grew
   ring_version, the draining flag, and the replica-GC drop counter. *)
let version = 7

(* Caps the payload a peer can make us allocate; a 10M-reference trace
   encodes to ~50 MB, so this is generous without being unbounded. *)
let max_payload = 256 * 1024 * 1024

type query = Percents of int list | Budget of int

type method_spec = Exact of Analytical.method_ | Approx

type submission = Full of Trace.t | Sketched of Sketch.profile

(* The fleet view as one versioned value. Version 0 is reserved for the
   unfenced state (a standalone daemon with no peers); every published
   config is >= 1 and strictly increases on each membership change, so
   "newer" is a plain integer comparison. *)
type ring_config = { ring_version : int; nodes : string list; replication : int }

type request =
  | Submit of {
      name : string;
      trace : submission;
      query : query;
      method_ : method_spec;
      domains : int;
      max_level : int option;
      deadline : float option;
    }
  | Server_stats
  | Ping
  | Health
  | Replicate of { ring_version : int; records : string list }
  | Cache_query of { ring_version : int; keys : Result_cache.key list }
  | Ring_status
  | Ring_update of { config : ring_config }
  | Drain of { config : ring_config }

type server_stats = {
  jobs_completed : int;
  cache_hits : int;
  cache_misses : int;
  cache_entries : int;
  cache_evictions : int;
  coalesced_hits : int;
  pending : int;
  workers : int;
}

type worker_health = {
  slot : int;
  busy : bool;
  job : string;
  heartbeat_age : float;
  jobs_done : int;
}

type health = {
  node_id : string;
  start_epoch : float;
  uptime : float;
  workers : worker_health list;
  workers_replaced : int;
  queue_depth : int;
  queue_watermark : int;
  max_pending : int;
  shed : int;
  admission_rejected : int;
  jobs_completed : int;
  cache_hits : int;
  cache_misses : int;
  cache_entries : int;
  cache_evictions : int;
  coalesced_hits : int;
  wal_enabled : bool;
  wal_appends : int;
  wal_failures : int;
  peer_hits : int;
  replicated_in : int;
  replicated_out : int;
  replication_lag : int;
  replication_dropped : int;
  ring_version : int;
  draining : bool;
  replica_gc_dropped : int;
}

type outcome =
  | Table of Analytical_dse.table
  | Optimal of Optimizer.t
  | Approx_table of Approx_dse.table
  | Approx_optimal of Approx_dse.optimal

type result_payload = { outcome : outcome; cache_hit : bool }

type response =
  | Result of result_payload
  | Server_error of Dse_error.t
  | Stats_reply of server_stats
  | Pong
  | Health_reply of health
  | Replicate_ack of { stored : int }
  | Cache_reply of { keys : Result_cache.key list; records : string list }
  | Ring_reply of { config : ring_config; draining : bool; pushed : int }

let method_tag = function
  | Analytical.Streaming -> 0
  | Analytical.Dfs -> 1
  | Analytical.Bcat_walk -> 2
  | Analytical.Arena -> 3

let method_spec_tag = function Exact m -> method_tag m | Approx -> 4

let submission_fingerprint = function
  | Full trace -> Trace.fingerprint trace
  | Sketched profile -> profile.Sketch.fingerprint

let submission_refs = function
  | Full trace -> Trace.length trace
  | Sketched profile -> profile.Sketch.n

let kind_tag = function Trace.Fetch -> 0 | Trace.Read -> 1 | Trace.Write -> 2

(* -- payload encoding -- *)

let add_varint buf v =
  if v < 0 then invalid_arg "Protocol: negative varint";
  let v = ref v in
  let continue = ref true in
  while !continue do
    let byte = !v land 0x7F in
    v := !v lsr 7;
    if !v = 0 then begin
      Buffer.add_char buf (Char.chr byte);
      continue := false
    end
    else Buffer.add_char buf (Char.chr (byte lor 0x80))
  done

let add_string buf s =
  add_varint buf (String.length s);
  Buffer.add_string buf s

let add_list buf xs =
  add_varint buf (List.length xs);
  List.iter (add_varint buf) xs

let add_bool buf b = Buffer.add_char buf (if b then '\001' else '\000')

(* Deadlines are the only non-integral wire field; IEEE-754 bits, LE. *)
let add_f64 buf v =
  let bits = Int64.bits_of_float v in
  for i = 0 to 7 do
    Buffer.add_char buf (Char.chr (Int64.to_int (Int64.shift_right_logical bits (8 * i)) land 0xFF))
  done

let add_i64 buf bits =
  for i = 0 to 7 do
    Buffer.add_char buf (Char.chr (Int64.to_int (Int64.shift_right_logical bits (8 * i)) land 0xFF))
  done

(* Cache keys cross the wire for the replication verbs; the fingerprint
   is raw 8-byte LE (it is a full 64-bit hash, varint would inflate it)
   and max_level rides +1 so the "unbounded" sentinel (-1) stays a
   non-negative varint — the same layout as the WAL record header. *)
let add_cache_key buf (k : Result_cache.key) =
  add_i64 buf k.Result_cache.fingerprint;
  add_varint buf k.Result_cache.method_tag;
  add_varint buf k.Result_cache.domains;
  add_varint buf (k.Result_cache.max_level + 1)

let add_ring_config buf { ring_version; nodes; replication } =
  add_varint buf ring_version;
  add_varint buf replication;
  add_varint buf (List.length nodes);
  List.iter (add_string buf) nodes

let encode_query buf = function
  | Percents ps ->
    Buffer.add_char buf '\000';
    add_list buf ps
  | Budget k ->
    Buffer.add_char buf '\001';
    add_varint buf k

let encode_trace buf trace =
  add_varint buf (Trace.length trace);
  Trace.iter
    (fun (a : Trace.access) -> add_varint buf ((a.Trace.addr lsl 2) lor kind_tag a.Trace.kind))
    trace

let encode_request buf = function
  | Submit { name; trace; query; method_; domains; max_level; deadline } ->
    (* the record stream on the wire is the same whatever the method;
       only a decoder (the daemon) turns it into a sketch, so a profile
       is a decode-only representation with no encoding *)
    let trace =
      match trace with
      | Full trace -> trace
      | Sketched _ -> invalid_arg "Protocol: a sketched submission cannot be re-encoded"
    in
    add_string buf name;
    Buffer.add_char buf (Char.chr (method_spec_tag method_));
    add_varint buf domains;
    (match max_level with
    | None -> add_bool buf false
    | Some level ->
      add_bool buf true;
      add_varint buf level);
    (match deadline with
    | None -> add_bool buf false
    | Some seconds ->
      add_bool buf true;
      add_f64 buf seconds);
    encode_query buf query;
    encode_trace buf trace
  | Server_stats | Ping | Health | Ring_status -> ()
  | Replicate { ring_version; records } ->
    add_varint buf ring_version;
    add_varint buf (List.length records);
    List.iter (add_string buf) records
  | Cache_query { ring_version; keys } ->
    add_varint buf ring_version;
    add_varint buf (List.length keys);
    List.iter (add_cache_key buf) keys
  | Ring_update { config } -> add_ring_config buf config
  | Drain { config } -> add_ring_config buf config

let encode_error buf = function
  | Dse_error.Parse_error { file; line; message } ->
    Buffer.add_char buf '\000';
    add_string buf file;
    add_varint buf line;
    add_string buf message
  | Dse_error.Corrupt_binary { file; offset; message } ->
    Buffer.add_char buf '\001';
    add_string buf file;
    add_varint buf offset;
    add_string buf message
  | Dse_error.Constraint_violation { context; message } ->
    Buffer.add_char buf '\002';
    add_string buf context;
    add_string buf message
  | Dse_error.Shard_failure { shard; attempts; message } ->
    Buffer.add_char buf '\003';
    add_varint buf (max 0 shard);
    add_varint buf attempts;
    add_string buf message
  | Dse_error.Io_error { file; message } ->
    Buffer.add_char buf '\004';
    add_string buf file;
    add_string buf message
  | Dse_error.Queue_full { pending; max_pending; retry_after } ->
    Buffer.add_char buf '\005';
    add_varint buf pending;
    add_varint buf max_pending;
    add_f64 buf retry_after
  | Dse_error.Deadline_exceeded { elapsed; limit } ->
    Buffer.add_char buf '\006';
    add_f64 buf elapsed;
    add_f64 buf limit
  | Dse_error.Worker_stalled { elapsed; job } ->
    Buffer.add_char buf '\007';
    add_f64 buf elapsed;
    add_string buf job
  | Dse_error.Resource_exhausted { resource; needed; budget } ->
    Buffer.add_char buf '\008';
    add_string buf resource;
    add_varint buf needed;
    add_varint buf budget
  | Dse_error.Backend_unavailable { node; attempts } ->
    Buffer.add_char buf '\009';
    add_string buf node;
    add_varint buf attempts
  | Dse_error.Stale_ring { seen; expected } ->
    Buffer.add_char buf '\010';
    add_varint buf seen;
    add_varint buf expected

(* Approximate quantities cross the wire as raw IEEE-754 bits: a cached
   re-query must be bit-identical to the first answer, and any decimal
   round-trip would break that. *)
let add_bounds buf (b : Approx_dse.bounds) =
  add_f64 buf b.Approx_dse.est;
  add_f64 buf b.Approx_dse.lo;
  add_f64 buf b.Approx_dse.hi

let add_cell buf (c : Approx_dse.cell) =
  add_varint buf c.Approx_dse.assoc;
  add_varint buf c.Approx_dse.assoc_lo;
  add_varint buf c.Approx_dse.assoc_hi

let encode_stats buf (s : Stats.t) =
  add_varint buf s.Stats.n;
  add_varint buf s.Stats.n_unique;
  add_varint buf s.Stats.address_bits;
  add_varint buf s.Stats.max_misses

let encode_outcome buf = function
  | Table (t : Analytical_dse.table) ->
    Buffer.add_char buf '\000';
    add_string buf t.Analytical_dse.name;
    encode_stats buf t.Analytical_dse.stats;
    add_list buf t.Analytical_dse.percents;
    add_list buf t.Analytical_dse.budgets;
    add_varint buf (List.length t.Analytical_dse.rows);
    List.iter
      (fun (depth, assocs) ->
        add_varint buf depth;
        add_list buf assocs)
      t.Analytical_dse.rows
  | Optimal (r : Optimizer.t) ->
    Buffer.add_char buf '\001';
    add_varint buf r.Optimizer.k;
    add_varint buf (Array.length r.Optimizer.levels);
    Array.iter
      (fun (l : Optimizer.level_result) ->
        add_varint buf l.Optimizer.level;
        add_varint buf l.Optimizer.depth;
        add_varint buf l.Optimizer.min_associativity;
        add_varint buf l.Optimizer.misses;
        add_varint buf l.Optimizer.zero_miss_associativity)
      r.Optimizer.levels
  | Approx_table (t : Approx_dse.table) ->
    Buffer.add_char buf '\002';
    add_string buf t.Approx_dse.name;
    add_varint buf t.Approx_dse.n;
    add_bounds buf t.Approx_dse.distinct;
    add_bounds buf t.Approx_dse.max_misses;
    add_f64 buf t.Approx_dse.alpha;
    add_f64 buf t.Approx_dse.fit_r2;
    add_varint buf t.Approx_dse.address_bits;
    add_list buf t.Approx_dse.percents;
    add_list buf t.Approx_dse.budgets;
    add_varint buf (List.length t.Approx_dse.rows);
    List.iter
      (fun (depth, cells) ->
        add_varint buf depth;
        add_varint buf (List.length cells);
        List.iter (add_cell buf) cells)
      t.Approx_dse.rows
  | Approx_optimal (r : Approx_dse.optimal) ->
    Buffer.add_char buf '\003';
    add_varint buf r.Approx_dse.k;
    add_varint buf (List.length r.Approx_dse.levels);
    List.iter
      (fun (l : Approx_dse.level_estimate) ->
        add_varint buf l.Approx_dse.level;
        add_varint buf l.Approx_dse.depth;
        add_cell buf l.Approx_dse.cell;
        add_bounds buf l.Approx_dse.misses)
      r.Approx_dse.levels

let encode_response buf = function
  | Result { outcome; cache_hit } ->
    add_bool buf cache_hit;
    encode_outcome buf outcome
  | Server_error e -> encode_error buf e
  | Stats_reply s ->
    add_varint buf s.jobs_completed;
    add_varint buf s.cache_hits;
    add_varint buf s.cache_misses;
    add_varint buf s.cache_entries;
    add_varint buf s.cache_evictions;
    add_varint buf s.coalesced_hits;
    add_varint buf s.pending;
    add_varint buf s.workers
  | Pong -> ()
  | Replicate_ack { stored } -> add_varint buf stored
  | Cache_reply { keys; records } ->
    add_varint buf (List.length keys);
    List.iter (add_cache_key buf) keys;
    add_varint buf (List.length records);
    List.iter (add_string buf) records
  | Ring_reply { config; draining; pushed } ->
    add_ring_config buf config;
    add_bool buf draining;
    add_varint buf pushed
  | Health_reply h ->
    add_string buf h.node_id;
    add_f64 buf h.start_epoch;
    add_f64 buf h.uptime;
    add_varint buf (List.length h.workers);
    List.iter
      (fun w ->
        add_varint buf w.slot;
        add_bool buf w.busy;
        add_string buf w.job;
        add_f64 buf w.heartbeat_age;
        add_varint buf w.jobs_done)
      h.workers;
    add_varint buf h.workers_replaced;
    add_varint buf h.queue_depth;
    add_varint buf h.queue_watermark;
    add_varint buf h.max_pending;
    add_varint buf h.shed;
    add_varint buf h.admission_rejected;
    add_varint buf h.jobs_completed;
    add_varint buf h.cache_hits;
    add_varint buf h.cache_misses;
    add_varint buf h.cache_entries;
    add_varint buf h.cache_evictions;
    add_varint buf h.coalesced_hits;
    add_bool buf h.wal_enabled;
    add_varint buf h.wal_appends;
    add_varint buf h.wal_failures;
    add_varint buf h.peer_hits;
    add_varint buf h.replicated_in;
    add_varint buf h.replicated_out;
    add_varint buf h.replication_lag;
    add_varint buf h.replication_dropped;
    add_varint buf h.ring_version;
    add_bool buf h.draining;
    add_varint buf h.replica_gc_dropped

(* -- payload decoding -- *)

(* Byte offset within the frame payload + what was wrong. *)
exception Malformed of int * string

(* The peer closed before sending a single byte — a liveness probe or
   an abandoned connect, not damage. *)
exception Clean_close

type cursor = { data : string; mutable pos : int }

let remaining c = String.length c.data - c.pos

let byte c =
  if c.pos >= String.length c.data then raise (Malformed (c.pos, "unexpected end of payload"));
  let b = Char.code c.data.[c.pos] in
  c.pos <- c.pos + 1;
  b

let varint c =
  let start = c.pos in
  let rec loop shift acc =
    if shift > 56 then raise (Malformed (start, "varint wider than 63 bits"))
    else
      let b = byte c in
      let acc = acc lor ((b land 0x7F) lsl shift) in
      if acc < 0 then raise (Malformed (start, "varint overflows the address space"))
      else if b land 0x80 = 0 then acc
      else loop (shift + 7) acc
  in
  loop 0 0

let string_field c =
  let n = varint c in
  if n > remaining c then raise (Malformed (c.pos, "declared string length exceeds the payload"));
  let s = String.sub c.data c.pos n in
  c.pos <- c.pos + n;
  s

let bool_field c =
  match byte c with
  | 0 -> false
  | 1 -> true
  | b -> raise (Malformed (c.pos - 1, Printf.sprintf "bad boolean byte %d" b))

let f64_field c =
  let bits = ref 0L in
  for i = 0 to 7 do
    bits := Int64.logor !bits (Int64.shift_left (Int64.of_int (byte c)) (8 * i))
  done;
  Int64.float_of_bits !bits

let int_list c =
  let n = varint c in
  (* each element is at least one byte *)
  if n > remaining c then raise (Malformed (c.pos, "declared list length exceeds the payload"));
  List.init n (fun _ -> varint c)

let i64_field c =
  let bits = ref 0L in
  for i = 0 to 7 do
    bits := Int64.logor !bits (Int64.shift_left (Int64.of_int (byte c)) (8 * i))
  done;
  !bits

let cache_key_field c : Result_cache.key =
  let fingerprint = i64_field c in
  let method_tag = varint c in
  let domains = varint c in
  let max_level = varint c - 1 in
  { Result_cache.fingerprint; method_tag; domains; max_level }

let cache_key_list c =
  let n = varint c in
  (* each key is at least eleven bytes *)
  if n > remaining c then raise (Malformed (c.pos, "declared key count exceeds the payload"));
  List.init n (fun _ -> cache_key_field c)

let string_list c =
  let n = varint c in
  if n > remaining c then raise (Malformed (c.pos, "declared record count exceeds the payload"));
  List.init n (fun _ -> string_field c)

let ring_config_field c =
  let ring_version = varint c in
  let replication = varint c in
  let n = varint c in
  (* each node name is at least one byte of length prefix *)
  if n > remaining c then raise (Malformed (c.pos, "declared node count exceeds the payload"));
  let nodes = List.init n (fun _ -> string_field c) in
  { ring_version; nodes; replication }

let method_field c =
  match byte c with
  | 0 -> Exact Analytical.Streaming
  | 1 -> Exact Analytical.Dfs
  | 2 -> Exact Analytical.Bcat_walk
  | 3 -> Exact Analytical.Arena
  | 4 -> Approx
  | b -> raise (Malformed (c.pos - 1, Printf.sprintf "unknown method tag %d" b))

let query_field c =
  match byte c with
  | 0 -> Percents (int_list c)
  | 1 -> Budget (varint c)
  | b -> raise (Malformed (c.pos - 1, Printf.sprintf "unknown query tag %d" b))

(* Admission control runs on the declared count alone — before the
   corruption check, before any allocation — so an oversized job is
   rejected while it is still a varint and a string of frame bytes,
   never having cost the daemon its decoded footprint. The byte
   estimate is priced per kernel family: the submission's method was
   decoded before the trace, so an arena job is judged by the arena
   model (18 B/ref), the boxed methods pay the classic 50, and an
   approx job the sketch's fixed footprint — reference count does not
   enter its price at all, which is what lets a budget that rejects a
   100M-reference exact job admit the same trace approximately. *)
let admit ?max_job_refs ?memory_budget ~method_ declared =
  let model =
    match method_ with
    | Exact Analytical.Arena -> `Arena
    | Exact (Analytical.Streaming | Analytical.Dfs | Analytical.Bcat_walk) -> `Boxed
    | Approx -> `Sketch
  in
  (match max_job_refs with
  | Some budget when declared > budget ->
    Dse_error.fail
      (Dse_error.Resource_exhausted { resource = "trace references"; needed = declared; budget })
  | _ -> ());
  match memory_budget with
  | Some budget when Trace.estimate_bytes ~model ~refs:declared > budget ->
    Dse_error.fail
      (Dse_error.Resource_exhausted
         { resource = "estimated bytes";
           needed = Trace.estimate_bytes ~model ~refs:declared;
           budget })
  | _ -> ()

let decode_record c =
  let start = c.pos in
  let record = varint c in
  let kind =
    match record land 3 with
    | 0 -> Trace.Fetch
    | 1 -> Trace.Read
    | 2 -> Trace.Write
    | _ -> raise (Malformed (start, "bad kind tag 3"))
  in
  (record lsr 2, kind)

let trace_field ?max_job_refs ?memory_budget ~method_ c =
  let declared = varint c in
  admit ?max_job_refs ?memory_budget ~method_ declared;
  (* each record is at least one byte, so a declared count beyond the
     remaining payload is corruption — caught before allocation *)
  if declared > remaining c then
    raise (Malformed (c.pos, "declared trace length exceeds the payload"));
  let trace = Trace.create ~capacity:(max 1 declared) () in
  for _ = 1 to declared do
    let addr, kind = decode_record c in
    Trace.add trace ~addr ~kind
  done;
  trace

(* The approx decode path: the same record stream, fed straight into
   the streaming sketch. No Trace.t — the daemon's peak per-job heap
   for an approx submission is the sketch state, whatever the declared
   length, matching the [`Sketch] admission price. The profile's
   fingerprint is computed by the sketch over the same stream, so an
   approx job lands on the same cache identity as an exact one. *)
let sketch_field ?max_job_refs ?memory_budget ~method_ c =
  let declared = varint c in
  admit ?max_job_refs ?memory_budget ~method_ declared;
  if declared > remaining c then
    raise (Malformed (c.pos, "declared trace length exceeds the payload"));
  let sketch = Sketch.create () in
  for _ = 1 to declared do
    let addr, kind = decode_record c in
    Sketch.add sketch ~addr ~kind
  done;
  Sketch.finalize sketch

let decode_submit ?max_job_refs ?memory_budget ?(sketch_approx = false) c =
  let name = string_field c in
  let method_ = method_field c in
  let domains = varint c in
  let max_level = if bool_field c then Some (varint c) else None in
  let deadline = if bool_field c then Some (f64_field c) else None in
  let query = query_field c in
  let trace =
    match (method_, sketch_approx) with
    | Approx, true -> Sketched (sketch_field ?max_job_refs ?memory_budget ~method_ c)
    | _ -> Full (trace_field ?max_job_refs ?memory_budget ~method_ c)
  in
  Submit { name; trace; query; method_; domains; max_level; deadline }

let decode_error c =
  match byte c with
  | 0 ->
    let file = string_field c in
    let line = varint c in
    let message = string_field c in
    Dse_error.Parse_error { file; line; message }
  | 1 ->
    let file = string_field c in
    let offset = varint c in
    let message = string_field c in
    Dse_error.Corrupt_binary { file; offset; message }
  | 2 ->
    let context = string_field c in
    let message = string_field c in
    Dse_error.Constraint_violation { context; message }
  | 3 ->
    let shard = varint c in
    let attempts = varint c in
    let message = string_field c in
    Dse_error.Shard_failure { shard; attempts; message }
  | 4 ->
    let file = string_field c in
    let message = string_field c in
    Dse_error.Io_error { file; message }
  | 5 ->
    let pending = varint c in
    let max_pending = varint c in
    let retry_after = f64_field c in
    Dse_error.Queue_full { pending; max_pending; retry_after }
  | 6 ->
    let elapsed = f64_field c in
    let limit = f64_field c in
    Dse_error.Deadline_exceeded { elapsed; limit }
  | 7 ->
    let elapsed = f64_field c in
    let job = string_field c in
    Dse_error.Worker_stalled { elapsed; job }
  | 8 ->
    let resource = string_field c in
    let needed = varint c in
    let budget = varint c in
    Dse_error.Resource_exhausted { resource; needed; budget }
  | 9 ->
    let node = string_field c in
    let attempts = varint c in
    Dse_error.Backend_unavailable { node; attempts }
  | 10 ->
    let seen = varint c in
    let expected = varint c in
    Dse_error.Stale_ring { seen; expected }
  | b -> raise (Malformed (c.pos - 1, Printf.sprintf "unknown error tag %d" b))

let decode_stats c =
  let n = varint c in
  let n_unique = varint c in
  let address_bits = varint c in
  let max_misses = varint c in
  { Stats.n; n_unique; address_bits; max_misses }

let bounds_field c =
  let est = f64_field c in
  let lo = f64_field c in
  let hi = f64_field c in
  { Approx_dse.est; lo; hi }

let cell_field c =
  let assoc = varint c in
  let assoc_lo = varint c in
  let assoc_hi = varint c in
  { Approx_dse.assoc; assoc_lo; assoc_hi }

let decode_outcome c =
  match byte c with
  | 0 ->
    let name = string_field c in
    let stats = decode_stats c in
    let percents = int_list c in
    let budgets = int_list c in
    let row_count = varint c in
    if row_count > remaining c then
      raise (Malformed (c.pos, "declared row count exceeds the payload"));
    let rows =
      List.init row_count (fun _ ->
          let depth = varint c in
          let assocs = int_list c in
          (depth, assocs))
    in
    Table { Analytical_dse.name; stats; percents; budgets; rows }
  | 1 ->
    let k = varint c in
    let level_count = varint c in
    if level_count > remaining c then
      raise (Malformed (c.pos, "declared level count exceeds the payload"));
    let levels =
      Array.init level_count (fun _ ->
          let level = varint c in
          let depth = varint c in
          let min_associativity = varint c in
          let misses = varint c in
          let zero_miss_associativity = varint c in
          { Optimizer.level; depth; min_associativity; misses; zero_miss_associativity })
    in
    Optimal { Optimizer.k; levels }
  | 2 ->
    let name = string_field c in
    let n = varint c in
    let distinct = bounds_field c in
    let max_misses = bounds_field c in
    let alpha = f64_field c in
    let fit_r2 = f64_field c in
    let address_bits = varint c in
    let percents = int_list c in
    let budgets = int_list c in
    let row_count = varint c in
    if row_count > remaining c then
      raise (Malformed (c.pos, "declared row count exceeds the payload"));
    let rows =
      List.init row_count (fun _ ->
          let depth = varint c in
          let cell_count = varint c in
          if cell_count > remaining c then
            raise (Malformed (c.pos, "declared cell count exceeds the payload"));
          (depth, List.init cell_count (fun _ -> cell_field c)))
    in
    Approx_table
      { Approx_dse.name; n; distinct; max_misses; alpha; fit_r2; address_bits; percents;
        budgets; rows }
  | 3 ->
    let k = varint c in
    let level_count = varint c in
    if level_count > remaining c then
      raise (Malformed (c.pos, "declared level count exceeds the payload"));
    let levels =
      List.init level_count (fun _ ->
          let level = varint c in
          let depth = varint c in
          let cell = cell_field c in
          let misses = bounds_field c in
          { Approx_dse.level; depth; cell; misses })
    in
    Approx_optimal { Approx_dse.k; levels }
  | b -> raise (Malformed (c.pos - 1, Printf.sprintf "unknown outcome tag %d" b))

let decode_server_stats c =
  let jobs_completed = varint c in
  let cache_hits = varint c in
  let cache_misses = varint c in
  let cache_entries = varint c in
  let cache_evictions = varint c in
  let coalesced_hits = varint c in
  let pending = varint c in
  let workers = varint c in
  { jobs_completed; cache_hits; cache_misses; cache_entries; cache_evictions;
    coalesced_hits; pending; workers }

let decode_health c =
  let node_id = string_field c in
  let start_epoch = f64_field c in
  let uptime = f64_field c in
  let worker_count = varint c in
  (* each worker record is at least four bytes *)
  if worker_count > remaining c then
    raise (Malformed (c.pos, "declared worker count exceeds the payload"));
  let workers =
    List.init worker_count (fun _ ->
        let slot = varint c in
        let busy = bool_field c in
        let job = string_field c in
        let heartbeat_age = f64_field c in
        let jobs_done = varint c in
        { slot; busy; job; heartbeat_age; jobs_done })
  in
  let workers_replaced = varint c in
  let queue_depth = varint c in
  let queue_watermark = varint c in
  let max_pending = varint c in
  let shed = varint c in
  let admission_rejected = varint c in
  let jobs_completed = varint c in
  let cache_hits = varint c in
  let cache_misses = varint c in
  let cache_entries = varint c in
  let cache_evictions = varint c in
  let coalesced_hits = varint c in
  let wal_enabled = bool_field c in
  let wal_appends = varint c in
  let wal_failures = varint c in
  let peer_hits = varint c in
  let replicated_in = varint c in
  let replicated_out = varint c in
  let replication_lag = varint c in
  let replication_dropped = varint c in
  let ring_version = varint c in
  let draining = bool_field c in
  let replica_gc_dropped = varint c in
  {
    node_id;
    start_epoch;
    uptime;
    workers;
    workers_replaced;
    queue_depth;
    queue_watermark;
    max_pending;
    shed;
    admission_rejected;
    jobs_completed;
    cache_hits;
    cache_misses;
    cache_entries;
    cache_evictions;
    coalesced_hits;
    wal_enabled;
    wal_appends;
    wal_failures;
    peer_hits;
    replicated_in;
    replicated_out;
    replication_lag;
    replication_dropped;
    ring_version;
    draining;
    replica_gc_dropped;
  }

(* -- framing over a file descriptor -- *)

let tag_submit = 1

let tag_server_stats = 2

let tag_ping = 3

let tag_health = 4

let tag_replicate = 5

let tag_cache_query = 6

let tag_ring_status = 7

let tag_ring_update = 8

let tag_drain = 9

let tag_result = 0x81

let tag_error = 0x82

let tag_stats_reply = 0x83

let tag_pong = 0x84

let tag_health_reply = 0x85

let tag_replicate_ack = 0x86

let tag_cache_reply = 0x87

let tag_ring_reply = 0x88

let send_frame fd ~tag payload =
  let buf = Buffer.create (String.length payload + 16) in
  Buffer.add_string buf magic;
  Buffer.add_char buf (Char.chr version);
  Buffer.add_char buf (Char.chr tag);
  add_varint buf (String.length payload);
  Buffer.add_string buf payload;
  let body = Buffer.contents buf in
  let crc = Crc32.digest_string body in
  let frame = Bytes.create (String.length body + 4) in
  Bytes.blit_string body 0 frame 0 (String.length body);
  for i = 0 to 3 do
    Bytes.set frame (String.length body + i) (Char.chr ((crc lsr (8 * i)) land 0xFF))
  done;
  Transport.write_all fd frame

type wire_reader = { fd : Unix.file_descr; mutable pos : int; mutable crc : int }

let reader_byte r =
  let b = Bytes.create 1 in
  match Transport.read_some r.fd b 0 1 with
  | 0 -> if r.pos = 0 then raise Clean_close else raise (Malformed (r.pos, "unexpected end of stream"))
  | _ ->
    let v = Char.code (Bytes.get b 0) in
    r.pos <- r.pos + 1;
    r.crc <- Crc32.update_byte r.crc v;
    v

let reader_exact r n =
  let b = Bytes.create n in
  let off = ref 0 in
  while !off < n do
    match Transport.read_some r.fd b !off (n - !off) with
    | 0 -> raise (Malformed (r.pos + !off, "unexpected end of stream"))
    | k -> off := !off + k
  done;
  r.pos <- r.pos + n;
  let s = Bytes.unsafe_to_string b in
  r.crc <- Crc32.update_string r.crc s;
  s

let reader_varint r =
  let start = r.pos in
  let rec loop shift acc =
    if shift > 56 then raise (Malformed (start, "varint wider than 63 bits"))
    else
      let b = reader_byte r in
      let acc = acc lor ((b land 0x7F) lsl shift) in
      if acc < 0 then raise (Malformed (start, "varint overflows the address space"))
      else if b land 0x80 = 0 then acc
      else loop (shift + 7) acc
  in
  loop 0 0

let read_frame fd =
  let r = { fd; pos = 0; crc = Crc32.init } in
  String.iter
    (fun expected ->
      let b = reader_byte r in
      if Char.chr b <> expected then raise (Malformed (r.pos - 1, "bad magic")))
    magic;
  let v = reader_byte r in
  if v <> version then
    raise (Malformed (4, Printf.sprintf "unsupported protocol version %d" v));
  let tag = reader_byte r in
  let len = reader_varint r in
  if len > max_payload then
    raise (Malformed (r.pos, Printf.sprintf "payload of %d bytes exceeds the %d limit" len max_payload));
  let payload = reader_exact r len in
  let computed = Crc32.finalize r.crc in
  (* the footer is over everything before it, so it is not folded in *)
  let footer = Bytes.create 4 in
  let off = ref 0 in
  while !off < 4 do
    match Transport.read_some r.fd footer !off (4 - !off) with
    | 0 -> raise (Malformed (r.pos + !off, "truncated CRC footer"))
    | k -> off := !off + k
  done;
  let stored = ref 0 in
  for i = 0 to 3 do
    stored := !stored lor (Char.code (Bytes.get footer i) lsl (8 * i))
  done;
  if !stored <> computed then
    raise
      (Malformed (r.pos, Printf.sprintf "CRC mismatch (stored %08x, computed %08x)" !stored computed));
  (tag, payload)

(* -- public API: every wire failure is a typed [Dse_error.t] -- *)

let corrupt ~peer offset message = Dse_error.Corrupt_binary { file = peer; offset; message }

let io_failure ~peer err = Dse_error.Io_error { file = peer; message = Unix.error_message err }

let timeout_message = "client timed out"

(* SO_RCVTIMEO / SO_SNDTIMEO expiry surfaces as EAGAIN (or
   EWOULDBLOCK); mapped to a recognisable typed error so the daemon can
   log-and-close a stalled peer instead of attempting a reply that
   would itself block for the send-timeout. *)
let guard ~peer ?(timeout = "timed out") f =
  match f () with
  | v -> Ok v
  | exception Malformed (offset, message) -> Error (corrupt ~peer offset message)
  | exception Dse_error.Error e ->
    (* admission control rejecting a declared size mid-decode *)
    Error e
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
    Error (Dse_error.Io_error { file = peer; message = timeout })
  | exception Unix.Unix_error (err, _, _) -> Error (io_failure ~peer err)

let timed_out = function
  | Dse_error.Io_error { message; _ } -> message = timeout_message
  | _ -> false

let write_request ?(peer = "<server>") fd request =
  guard ~peer (fun () ->
      let buf = Buffer.create 1024 in
      encode_request buf request;
      let tag =
        match request with
        | Submit _ -> tag_submit
        | Server_stats -> tag_server_stats
        | Ping -> tag_ping
        | Health -> tag_health
        | Replicate _ -> tag_replicate
        | Cache_query _ -> tag_cache_query
        | Ring_status -> tag_ring_status
        | Ring_update _ -> tag_ring_update
        | Drain _ -> tag_drain
      in
      send_frame fd ~tag (Buffer.contents buf))

let write_response ?(peer = "<client>") fd response =
  guard ~peer ~timeout:timeout_message (fun () ->
      let buf = Buffer.create 1024 in
      encode_response buf response;
      let tag =
        match response with
        | Result _ -> tag_result
        | Server_error _ -> tag_error
        | Stats_reply _ -> tag_stats_reply
        | Pong -> tag_pong
        | Health_reply _ -> tag_health_reply
        | Replicate_ack _ -> tag_replicate_ack
        | Cache_reply _ -> tag_cache_reply
        | Ring_reply _ -> tag_ring_reply
      in
      send_frame fd ~tag (Buffer.contents buf))

let read_request ?(peer = "<client>") ?max_job_refs ?memory_budget ?sketch_approx fd =
  guard ~peer ~timeout:timeout_message (fun () ->
      match read_frame fd with
      | exception Clean_close -> None
      | tag, payload ->
        let c = { data = payload; pos = 0 } in
        let request =
          if tag = tag_submit then decode_submit ?max_job_refs ?memory_budget ?sketch_approx c
          else if tag = tag_server_stats then Server_stats
          else if tag = tag_ping then Ping
          else if tag = tag_health then Health
          else if tag = tag_replicate then begin
            let ring_version = varint c in
            Replicate { ring_version; records = string_list c }
          end
          else if tag = tag_cache_query then begin
            let ring_version = varint c in
            Cache_query { ring_version; keys = cache_key_list c }
          end
          else if tag = tag_ring_status then Ring_status
          else if tag = tag_ring_update then Ring_update { config = ring_config_field c }
          else if tag = tag_drain then Drain { config = ring_config_field c }
          else raise (Malformed (5, Printf.sprintf "unknown request tag %d" tag))
        in
        if remaining c > 0 then raise (Malformed (c.pos, "trailing bytes after the request"));
        Some request)

let read_response ?(peer = "<server>") fd =
  guard ~peer (fun () ->
      let tag, payload =
        (* The server closing without answering is a transport fault on
           this side of the wire, unlike a client probe — and it is
           [Io_error], not [Corrupt_binary]: a daemon killed between
           accept and reply (restart, kill -9) looks exactly like this,
           and the client retry loop must treat it like a refused
           connection, not like damaged data. *)
        try read_frame fd
        with Clean_close ->
          Dse_error.fail
            (Dse_error.Io_error { file = peer; message = "connection closed without a response" })
      in
      let c = { data = payload; pos = 0 } in
      let response =
        if tag = tag_result then begin
          let cache_hit = bool_field c in
          let outcome = decode_outcome c in
          Result { outcome; cache_hit }
        end
        else if tag = tag_error then Server_error (decode_error c)
        else if tag = tag_stats_reply then Stats_reply (decode_server_stats c)
        else if tag = tag_pong then Pong
        else if tag = tag_health_reply then Health_reply (decode_health c)
        else if tag = tag_replicate_ack then Replicate_ack { stored = varint c }
        else if tag = tag_cache_reply then begin
          let keys = cache_key_list c in
          let records = string_list c in
          Cache_reply { keys; records }
        end
        else if tag = tag_ring_reply then begin
          let config = ring_config_field c in
          let draining = bool_field c in
          let pushed = varint c in
          Ring_reply { config; draining; pushed }
        end
        else raise (Malformed (5, Printf.sprintf "unknown response tag %d" tag))
      in
      if remaining c > 0 then raise (Malformed (c.pos, "trailing bytes after the response"));
      response)

(* An exact entry answers any query straight from its histograms; an
   approx entry re-runs the O(ms) estimator over the cached profile.
   The estimator is deterministic in the profile, so a cached re-query
   produces bit-identical floats to the first answer — which is also
   what makes a replicated entry interchangeable with the original:
   whoever holds the entry (the computing node, a ring successor, the
   router relaying a peer's copy) derives the same outcome. [max_level]
   only matters for approx (exact histograms were already bounded at
   prepare time); it rides in the cache key, so every holder of the
   entry shares it. *)
let answer_entry ~name ~query ~max_level (entry : Result_cache.entry) =
  match entry with
  | Result_cache.Exact { stats; histograms } -> (
    match query with
    | Percents percents -> Table (Analytical_dse.of_histograms ~percents ~name ~stats histograms)
    | Budget k -> Optimal (Optimizer.of_histograms ~k histograms))
  | Result_cache.Approx profile -> (
    let prepared = Approx_dse.prepare profile in
    match query with
    | Percents percents -> Approx_table (Approx_dse.table ~percents ?max_level ~name prepared)
    | Budget k -> Approx_optimal (Approx_dse.optimal ?max_level ~k prepared))
