(* Per-record framing (one frame per record so a torn write damages at
   most that record):

     "DSEW" | version (1 byte) | payload length (LEB128) | payload
            | CRC-32 (4 bytes LE, over every preceding record byte)

   Payload layout: fingerprint (8 bytes LE) | method_tag | domains |
   max_level + 1 | n | n_unique | address_bits | max_misses
   | level count | per level: count | values...  (all LEB128 varints,
   max_level shifted by one because -1 encodes "unbounded"). *)

let magic = "DSEW"

let version = 1

(* Matches the protocol's frame cap: a record is one cached result, far
   smaller than a submitted trace, so this is purely an allocation
   guard against CRC-colliding garbage lengths. *)
let max_payload = 256 * 1024 * 1024

(* -- encoding -- *)

let add_varint buf v =
  if v < 0 then invalid_arg "Wal: negative varint";
  let v = ref v in
  let continue = ref true in
  while !continue do
    let byte = !v land 0x7F in
    v := !v lsr 7;
    if !v = 0 then begin
      Buffer.add_char buf (Char.chr byte);
      continue := false
    end
    else Buffer.add_char buf (Char.chr (byte lor 0x80))
  done

let add_fingerprint buf fp =
  for i = 0 to 7 do
    Buffer.add_char buf (Char.chr (Int64.to_int (Int64.shift_right_logical fp (8 * i)) land 0xFF))
  done

(* Approx entries are deliberately not persisted: the record format is
   the exact histogram summary, and an approx profile is cheap to
   recompute from a resubmission (one streaming pass) — so a restarted
   daemon simply answers approx repeats cold. [None] means "nothing to
   write", and both the append path and compaction skip it. *)
let encode_record (key : Result_cache.key) (entry : Result_cache.entry) =
  match entry with
  | Result_cache.Approx _ -> None
  | Result_cache.Exact { stats; histograms } ->
    let payload = Buffer.create 256 in
    add_fingerprint payload key.Result_cache.fingerprint;
    add_varint payload key.Result_cache.method_tag;
    add_varint payload key.Result_cache.domains;
    add_varint payload (key.Result_cache.max_level + 1);
    add_varint payload stats.Stats.n;
    add_varint payload stats.Stats.n_unique;
    add_varint payload stats.Stats.address_bits;
    add_varint payload stats.Stats.max_misses;
    add_varint payload (Array.length histograms);
    Array.iter
      (fun histogram ->
        add_varint payload (Array.length histogram);
        Array.iter (add_varint payload) histogram)
      histograms;
    let payload = Buffer.contents payload in
    let buf = Buffer.create (String.length payload + 16) in
    Buffer.add_string buf magic;
    Buffer.add_char buf (Char.chr version);
    add_varint buf (String.length payload);
    Buffer.add_string buf payload;
    let body = Buffer.contents buf in
    let crc = Crc32.digest_string body in
    let record = Buffer.create (String.length body + 4) in
    Buffer.add_string record body;
    for i = 0 to 3 do
      Buffer.add_char record (Char.chr ((crc lsr (8 * i)) land 0xFF))
    done;
    Some (Buffer.contents record)

(* -- replay -- *)

(* Structural damage inside a record: skip it and resync on the next
   magic. *)
exception Bad

(* The record extends past end-of-file: either a torn tail (a crash
   mid-append) or length-field damage; disambiguated by whether another
   magic follows. *)
exception Short

type cursor = { data : string; mutable pos : int }

let cursor_byte c =
  if c.pos >= String.length c.data then raise Short;
  let b = Char.code c.data.[c.pos] in
  c.pos <- c.pos + 1;
  b

let cursor_varint c =
  let rec loop shift acc =
    if shift > 56 then raise Bad
    else
      let b = cursor_byte c in
      let acc = acc lor ((b land 0x7F) lsl shift) in
      if acc < 0 then raise Bad
      else if b land 0x80 = 0 then acc
      else loop (shift + 7) acc
  in
  loop 0 0

let cursor_fingerprint c =
  let fp = ref 0L in
  for i = 0 to 7 do
    fp := Int64.logor !fp (Int64.shift_left (Int64.of_int (cursor_byte c)) (8 * i))
  done;
  !fp

let find_magic data pos =
  let len = String.length data in
  let rec go i =
    if i + String.length magic > len then None
    else if String.sub data i (String.length magic) = magic then Some i
    else go (i + 1)
  in
  go pos

(* Parse the record whose magic starts at [pos]; returns the decoded
   entry and the position just past its CRC footer. *)
let parse_record data pos =
  let c = { data; pos = pos + String.length magic } in
  let v = cursor_byte c in
  if v <> version then raise Bad;
  let payload_len = cursor_varint c in
  if payload_len > max_payload then raise Bad;
  let payload_end = c.pos + payload_len in
  if payload_end + 4 > String.length data then raise Short;
  let stored_crc = ref 0 in
  for i = 0 to 3 do
    stored_crc := !stored_crc lor (Char.code data.[payload_end + i] lsl (8 * i))
  done;
  let computed = Crc32.digest_string (String.sub data pos (payload_end - pos)) in
  if !stored_crc <> computed then raise Bad;
  let fingerprint = cursor_fingerprint c in
  let method_tag = cursor_varint c in
  let domains = cursor_varint c in
  let max_level = cursor_varint c - 1 in
  let n = cursor_varint c in
  let n_unique = cursor_varint c in
  let address_bits = cursor_varint c in
  let max_misses = cursor_varint c in
  let level_count = cursor_varint c in
  (* each histogram contributes at least one byte, so a declared count
     beyond the payload is damage the CRC happened to miss *)
  if level_count > payload_end - c.pos then raise Bad;
  let histograms =
    Array.init level_count (fun _ ->
        let count = cursor_varint c in
        if count > payload_end - c.pos then raise Bad;
        Array.init count (fun _ -> cursor_varint c))
  in
  if c.pos <> payload_end then raise Bad;
  let key = { Result_cache.fingerprint; method_tag; domains; max_level } in
  let entry =
    Result_cache.Exact { stats = { Stats.n; n_unique; address_bits; max_misses }; histograms }
  in
  ((key, entry), payload_end + 4)

type replay = {
  entries : (Result_cache.key * Result_cache.entry) list;
  intact : int;
  damaged : int;
  truncated : bool;
}

let replay_string data =
  let len = String.length data in
  let entries = ref [] in
  let intact = ref 0 in
  let damaged = ref 0 in
  let truncated = ref false in
  let rec scan pos =
    if pos < len then
      match find_magic data pos with
      | None ->
        (* trailing bytes with no frame start: damage, not a torn
           record (a torn record keeps its magic) *)
        incr damaged
      | Some start ->
        if start > pos then incr damaged;
        (match parse_record data start with
        | entry_and_next ->
          let entry, next = entry_and_next in
          entries := entry :: !entries;
          incr intact;
          scan next
        | exception Bad ->
          incr damaged;
          scan (start + String.length magic)
        | exception Short -> (
          (* torn tail only if no later magic; otherwise the length
             field was damaged mid-file *)
          match find_magic data (start + String.length magic) with
          | Some next ->
            incr damaged;
            scan next
          | None -> truncated := true))
  in
  scan 0;
  { entries = List.rev !entries; intact = !intact; damaged = !damaged; truncated = !truncated }

(* One record as a standalone string — the Replicate verb's payload
   unit. Accepts exactly one whole well-formed record; anything else
   (damage, trailing bytes, a torn prefix) is [None], so a replication
   receiver can never be corrupted by a bad peer. *)
let decode_record data =
  if String.length data < String.length magic + 1 then None
  else if String.sub data 0 (String.length magic) <> magic then None
  else
    match parse_record data 0 with
    | (key, entry), next when next = String.length data -> Some (key, entry)
    | _ -> None
    | exception (Bad | Short) -> None

let replay path =
  match In_channel.with_open_bin path In_channel.input_all with
  | data -> Ok (replay_string data)
  | exception Sys_error _ when not (Sys.file_exists path) ->
    Ok { entries = []; intact = 0; damaged = 0; truncated = false }
  | exception Sys_error message -> Error (Dse_error.Io_error { file = path; message })
  | exception Unix.Unix_error (err, _, _) ->
    Error (Dse_error.Io_error { file = path; message = Unix.error_message err })

(* -- appending -- *)

type t = {
  path : string;
  capacity : int;
  compact_factor : int;
  snapshot : unit -> (Result_cache.key * Result_cache.entry) list;
  mutex : Mutex.t;
  mutable fd : Unix.file_descr;
  mutable appended : int;
}

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let guard ~path f =
  match f () with
  | v -> Ok v
  | exception Unix.Unix_error (err, _, _) ->
    Error (Dse_error.Io_error { file = path; message = Unix.error_message err })
  | exception Sys_error message -> Error (Dse_error.Io_error { file = path; message })

let open_append path = Unix.openfile path [ Unix.O_WRONLY; Unix.O_APPEND; Unix.O_CREAT ] 0o644

let open_ ?(compact_factor = 4) ~capacity ~snapshot path =
  if capacity < 1 then invalid_arg "Wal.open_: capacity must be >= 1";
  if compact_factor < 1 then invalid_arg "Wal.open_: compact_factor must be >= 1";
  guard ~path (fun () ->
      let fd = open_append path in
      { path; capacity; compact_factor; snapshot; mutex = Mutex.create (); fd; appended = 0 })

let write_all fd s =
  let bytes = Bytes.of_string s in
  let len = Bytes.length bytes in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write fd bytes !off (len - !off)
  done

(* The rename above made the compacted log the live one in the
   directory's in-memory state, but the directory entry itself is not
   durable until the directory inode is flushed: a power cut between
   rename and the next incidental directory sync could resurrect the
   pre-compaction log. Filesystems that refuse fsync on a directory fd
   (EINVAL, or EBADF once closed by a racing close) already order the
   rename themselves, so those are safe to ignore. *)
let fsync_parent_dir path =
  match Unix.openfile (Filename.dirname path) [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | dir_fd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close dir_fd with Unix.Unix_error _ -> ())
      (fun () ->
        try Unix.fsync dir_fd with Unix.Unix_error ((Unix.EINVAL | Unix.EBADF), _, _) -> ())

(* Rewrite the log as the live snapshot: temp file, fsync, atomic
   rename, parent-directory fsync — a crash leaves either the old log
   or the new one, durably. *)
let compact_locked t =
  let entries = t.snapshot () in
  let tmp = t.path ^ ".compact" in
  let tmp_fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  Fun.protect
    ~finally:(fun () -> try Unix.close tmp_fd with Unix.Unix_error _ -> ())
    (fun () ->
      List.iter
        (fun (key, entry) ->
          match encode_record key entry with
          | Some record -> write_all tmp_fd record
          | None -> ())
        entries;
      Unix.fsync tmp_fd);
  Unix.rename tmp t.path;
  fsync_parent_dir t.path;
  (try Unix.close t.fd with Unix.Unix_error _ -> ());
  t.fd <- open_append t.path;
  t.appended <- 0

let append t key entry =
  match encode_record key entry with
  | None -> Ok () (* approx entries are not persisted *)
  | Some record ->
    with_lock t (fun () ->
        guard ~path:t.path (fun () ->
            write_all t.fd record;
            t.appended <- t.appended + 1;
            if t.appended >= t.compact_factor * t.capacity then compact_locked t))

(* On-demand compaction: replica GC removes entries from the cache, and
   rewriting the log from the post-GC snapshot is what removes them from
   disk — otherwise a decommissioned key range would be resurrected by
   the next replay. *)
let compact t = with_lock t (fun () -> guard ~path:t.path (fun () -> compact_locked t))

let appended_since_compact t = with_lock t (fun () -> t.appended)

let path t = t.path

let close t = with_lock t (fun () -> try Unix.close t.fd with Unix.Unix_error _ -> ())
