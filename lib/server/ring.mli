(** Consistent-hash ring mapping trace fingerprints to backend nodes.

    The router uses this to concentrate each trace's results on one
    backend's [Result_cache]: the same fingerprint always routes to the
    same node, and when a node joins or leaves only ~1/N of the key
    space moves (keys never migrate between surviving nodes), so the
    fleet's caches stay warm through membership churn. *)

type t

(** [create ?replicas nodes] builds a ring with [replicas] virtual
    points per node (default 64 — enough to hold per-node load within a
    few percent of 1/N). Raises [Invalid_argument] on an empty or
    duplicate-bearing node list, or [replicas < 1]. *)
val create : ?replicas:int -> string list -> t

(** The node names, in construction order. *)
val nodes : t -> string list

(** [route t fingerprint] is the owning node. *)
val route : t -> int64 -> string

(** [successors t fingerprint] lists every node in clockwise ring order
    starting at the owner — the failover order for that key. All
    callers agree on it, so a rerouted fingerprint warms exactly one
    deterministic spill cache. The first R entries are also the
    replica placement for that key: a completing node pushes copies to
    the first R−1 entries other than itself. *)
val successors : t -> int64 -> string list

(** [neighbors t name] is the distinct nodes owning virtual points
    adjacent to [name]'s, in deterministic point order, never including
    [name] itself — the anti-entropy partners a (re)joining node
    exchanges digests with. Raises [Invalid_argument] if [name] is not
    on the ring. *)
val neighbors : t -> string -> string list
