let close_noerr fd = try Unix.close fd with Unix.Unix_error _ -> ()

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX path) with
  | () -> Ok fd
  | exception Unix.Unix_error (err, _, _) ->
    close_noerr fd;
    Error (Dse_error.Io_error { file = path; message = Unix.error_message err })

let request ~socket req =
  match connect socket with
  | Error _ as e -> e
  | Ok fd ->
    Fun.protect
      ~finally:(fun () -> close_noerr fd)
      (fun () ->
        match Protocol.write_request ~peer:socket fd req with
        | Error _ as e -> e
        | Ok () -> Protocol.read_response ~peer:socket fd)

let unexpected socket =
  Error (Dse_error.Io_error { file = socket; message = "unexpected response kind from the server" })

let submit ~socket ?(percents = [ 5; 10; 15; 20 ]) ?k ?max_level ?(method_ = Analytical.Streaming)
    ?(domains = 1) ~name trace =
  let query =
    match k with Some k -> Protocol.Budget k | None -> Protocol.Percents percents
  in
  match
    request ~socket (Protocol.Submit { name; trace; query; method_; domains; max_level })
  with
  | Error _ as e -> e
  | Ok (Protocol.Result payload) -> Ok payload
  | Ok (Protocol.Server_error e) -> Error e
  | Ok (Protocol.Stats_reply _ | Protocol.Pong) -> unexpected socket

let ping ~socket =
  match request ~socket Protocol.Ping with
  | Error _ as e -> e
  | Ok Protocol.Pong -> Ok ()
  | Ok (Protocol.Server_error e) -> Error e
  | Ok (Protocol.Result _ | Protocol.Stats_reply _) -> unexpected socket

let server_stats ~socket =
  match request ~socket Protocol.Server_stats with
  | Error _ as e -> e
  | Ok (Protocol.Stats_reply s) -> Ok s
  | Ok (Protocol.Server_error e) -> Error e
  | Ok (Protocol.Result _ | Protocol.Pong) -> unexpected socket
