let close_noerr fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* [socket] is an address string: a Unix-socket path, or host:port for
   a TCP daemon / router. A 10 s connect bound keeps a partitioned TCP
   peer from holding the client for the kernel's SYN-retry minutes. *)
let connect socket = Transport.connect ~timeout:10. (Transport.parse socket)

let request ~socket req =
  match connect socket with
  | Error _ as e -> e
  | Ok fd ->
    Fun.protect
      ~finally:(fun () -> close_noerr fd)
      (fun () ->
        match Protocol.write_request ~peer:socket fd req with
        | Error _ as e -> e
        | Ok () -> Protocol.read_response ~peer:socket fd)

(* Transient failures worth a retry: the daemon shedding load
   (Queue_full), a gateway with its whole ring briefly dark
   (Backend_unavailable — the typical cause is a rolling restart), and
   transport faults, which cover the entire daemon-restart window:
   ECONNREFUSED (socket bound, listener not yet accepting — or a stale
   file), ENOENT (socket file not yet recreated), ECONNRESET and a
   connection closed without a response (daemon killed mid-exchange),
   and read timeouts. All of these map to Io_error by Protocol/Transport,
   so a client with [--retries] rides out a supervised respawn instead
   of failing fast. Structured job outcomes — constraint violations,
   corrupt traces, deadline expiry, a stalled worker, an admission
   rejection — would fail identically on a resubmit, so they surface
   immediately. *)
let retryable = function
  | Dse_error.Queue_full _ | Dse_error.Io_error _ | Dse_error.Backend_unavailable _ -> true
  | _ -> false

(* Full jitter on an exponential base: delay in [0.5, 1.5) * base * 2^attempt,
   so a burst of failing clients decorrelates instead of re-stampeding
   the daemon in lockstep. *)
let backoff_delay ~base attempt =
  base *. (2. ** float_of_int attempt) *. (0.5 +. Random.float 1.)

(* A shedding daemon knows its own drain rate better than our blind
   exponential does: never sleep less than its hint. *)
let server_hint = function
  | Dse_error.Queue_full { retry_after; _ } when retry_after > 0. -> retry_after
  | _ -> 0.

let with_retry ~retries ~retry_base ~retry_cap f =
  if retries = 0 then f ()
  else begin
    let started = Unix.gettimeofday () in
    let rec go attempt =
      match f () with
      | Ok _ as ok -> ok
      | Error e when attempt < retries && retryable e ->
        let delay = Float.max (backoff_delay ~base:retry_base attempt) (server_hint e) in
        (* the cap is a hard wall-clock bound: give up with the last
           typed error rather than sleep past it *)
        if Unix.gettimeofday () -. started +. delay > retry_cap then Error e
        else begin
          Unix.sleepf delay;
          go (attempt + 1)
        end
      | Error _ as e -> e
    in
    go 0
  end

let unexpected socket =
  Error (Dse_error.Io_error { file = socket; message = "unexpected response kind from the server" })

let submit ~socket ?(percents = [ 5; 10; 15; 20 ]) ?k ?max_level ?(method_ = Analytical.Arena)
    ?(approx = false) ?(domains = 1) ?deadline ?(retries = 0) ?(retry_base = 0.1)
    ?(retry_cap = 30.) ~name trace =
  if retries < 0 then invalid_arg "Client.submit: retries must be >= 0";
  if not (retry_base > 0.) then invalid_arg "Client.submit: retry_base must be > 0";
  if not (retry_cap > 0.) then invalid_arg "Client.submit: retry_cap must be > 0";
  let query =
    match k with Some k -> Protocol.Budget k | None -> Protocol.Percents percents
  in
  let method_ = if approx then Protocol.Approx else Protocol.Exact method_ in
  with_retry ~retries ~retry_base ~retry_cap (fun () ->
      match
        request ~socket
          (Protocol.Submit
             { name; trace = Protocol.Full trace; query; method_; domains; max_level; deadline })
      with
      | Error _ as e -> e
      | Ok (Protocol.Result payload) -> Ok payload
      | Ok (Protocol.Server_error e) -> Error e
      | Ok
          ( Protocol.Stats_reply _ | Protocol.Pong | Protocol.Health_reply _
          | Protocol.Replicate_ack _ | Protocol.Cache_reply _ | Protocol.Ring_reply _ ) ->
        unexpected socket)

let ping ~socket =
  match request ~socket Protocol.Ping with
  | Error _ as e -> e
  | Ok Protocol.Pong -> Ok ()
  | Ok (Protocol.Server_error e) -> Error e
  | Ok
      ( Protocol.Result _ | Protocol.Stats_reply _ | Protocol.Health_reply _
      | Protocol.Replicate_ack _ | Protocol.Cache_reply _ | Protocol.Ring_reply _ ) ->
    unexpected socket

let server_stats ~socket =
  match request ~socket Protocol.Server_stats with
  | Error _ as e -> e
  | Ok (Protocol.Stats_reply s) -> Ok s
  | Ok (Protocol.Server_error e) -> Error e
  | Ok
      ( Protocol.Result _ | Protocol.Pong | Protocol.Health_reply _ | Protocol.Replicate_ack _
      | Protocol.Cache_reply _ | Protocol.Ring_reply _ ) ->
    unexpected socket

let health ~socket =
  match request ~socket Protocol.Health with
  | Error _ as e -> e
  | Ok (Protocol.Health_reply h) -> Ok h
  | Ok (Protocol.Server_error e) -> Error e
  | Ok
      ( Protocol.Result _ | Protocol.Stats_reply _ | Protocol.Pong | Protocol.Replicate_ack _
      | Protocol.Cache_reply _ | Protocol.Ring_reply _ ) ->
    unexpected socket
