(** The fleet-membership control plane behind [dse route --admin] and
    the [dse chaos] harness.

    Membership is changed by publishing a strictly newer
    {!Protocol.ring_config} (one version bump per change) to every
    party, in the order that keeps warm state safe — see {!join},
    {!drain}, {!leave}. The functions here are pure wire clients: they
    hold no state, and a push that misses one target is reported rather
    than fatal, because the epoch fence heals stragglers (their next
    cross-node exchange answers {!Dse_error.Stale_ring} and triggers a
    config refetch). *)

(** [ring_status target] asks one daemon (or the gateway) for its
    current fleet view: [(config, draining, pushed)] from its
    {!Protocol.Ring_reply}. *)
val ring_status : string -> (Protocol.ring_config * bool * int, Dse_error.t) result

(** [fetch_config contacts] is the freshest config among the contacts
    that answered (highest [ring_version], ties broken by contact
    order). Fails only when no contact answered at all. *)
val fetch_config : string list -> (Protocol.ring_config, Dse_error.t) result

(** [push_config config targets] sends {!Protocol.Ring_update} to every
    target and returns the failures, labelled by target; [[]] means
    everyone acknowledged. Pushing an equal-or-older config is a no-op
    on the receiver and still counts as success. *)
val push_config : Protocol.ring_config -> string list -> (string * Dse_error.t) list

(** [join ?gateway ~contacts node] adds [node] to the ring: bumps the
    freshest config's version, appends [node], and pushes the new view
    to the newcomer {e first} (its anti-entropy pulls its range while
    it already serves), then the incumbents, then the gateway. Returns
    the published config and any push failures. Fails if [node] is
    already a member. *)
val join :
  ?gateway:string ->
  contacts:string list ->
  string ->
  (Protocol.ring_config * (string * Dse_error.t) list, Dse_error.t) result

(** [drain ?gateway ~contacts node] decommissions [node] gracefully:
    publishes the post-drain config to the survivors {e first} (so the
    leaver's fenced handoff is accepted), then sends
    {!Protocol.Drain} to [node] — which sheds new work, settles
    in-flight jobs, pushes every warm record it holds to the entry's
    post-drain owners, and adopts the config excluding itself — and
    updates the gateway {e last}, so the drained node keeps serving
    cache hits until routing moves. Returns the published config, the
    number of warm records the new owners accepted, and any push
    failures. Zero kernel re-runs on the drained range is the contract.

    Fails if [node] is not a member or is the last member. *)
val drain :
  ?gateway:string ->
  contacts:string list ->
  string ->
  (Protocol.ring_config * int * (string * Dse_error.t) list, Dse_error.t) result

(** [leave ?gateway ~contacts node] removes a {e dead} node: publishes
    the post-removal config to the survivors and gateway without
    contacting [node]. Its warm range is recovered from replicas by
    anti-entropy, not handoff. Fails if [node] is not a member or is
    the last member. *)
val leave :
  ?gateway:string ->
  contacts:string list ->
  string ->
  (Protocol.ring_config * (string * Dse_error.t) list, Dse_error.t) result

(** [set_replication ?gateway ~contacts r] publishes the current node
    set with replication factor [r] (version bumped). A shrink triggers
    replica GC on every daemon: each drops the copies it no longer owes
    after the grace delay. *)
val set_replication :
  ?gateway:string ->
  contacts:string list ->
  int ->
  (Protocol.ring_config * (string * Dse_error.t) list, Dse_error.t) result
