(* Address abstraction shared by the daemon, the client, and the
   router: the same DSRV framing runs over a Unix-domain socket (one
   host) or TCP (a fleet). Frame I/O already loops on short reads and
   writes (Protocol.write_all / reader_exact), so the wire format ports
   to TCP unchanged; what lives here is the address grammar, connect
   timeouts, and the listener socket options. *)

type addr = Unix_socket of string | Tcp of { host : string; port : int }

(* "host:port" (or ":port", meaning localhost/any) is TCP; anything
   else is a Unix-socket path. A path can in principle contain a colon,
   but then its suffix is not a valid port number and the string still
   parses as a path, so existing UDS users are unaffected. *)
let parse s =
  let as_path = Unix_socket s in
  match String.rindex_opt s ':' with
  | None -> as_path
  | Some i -> (
    let host = String.sub s 0 i in
    let suffix = String.sub s (i + 1) (String.length s - i - 1) in
    match int_of_string_opt suffix with
    | Some port when port > 0 && port < 65536 && not (String.contains host '/') ->
      Tcp { host; port }
    | _ -> as_path)

let to_string = function
  | Unix_socket path -> path
  | Tcp { host; port } -> Printf.sprintf "%s:%d" host port

let close_noerr fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* Nagle would hold our single-frame requests for up to 40 ms waiting
   for a delayed ACK; request/response traffic wants it off. Harmless
   no-op on Unix sockets. *)
let tune fd =
  try Unix.setsockopt fd Unix.TCP_NODELAY true
  with Unix.Unix_error _ | Invalid_argument _ -> ()

let io_error ~addr err =
  Dse_error.Io_error { file = to_string addr; message = Unix.error_message err }

(* Packet-level chaos: DSE_FAULT net:drop:K / net:delay:K:MS fire here,
   at the lowest byte-I/O layer every frame passes through, so the
   replication and anti-entropy paths can be tested against abrupt
   resets and congested links without real network flakiness. A drop is
   indistinguishable from a peer vanishing mid-frame (ECONNRESET). *)
let chaos op =
  (match Fault.net_delay () with
  | Some ms -> Unix.sleepf (float_of_int ms /. 1000.)
  | None -> ());
  if Fault.net_drop () then raise (Unix.Unix_error (Unix.ECONNRESET, op, "fault injection"))

let read_some fd buf off len =
  chaos "read";
  Unix.read fd buf off len

let read_exact fd n =
  let buf = Bytes.create n in
  let off = ref 0 in
  while !off < n do
    match read_some fd buf !off (n - !off) with
    | 0 -> raise End_of_file
    | k -> off := !off + k
  done;
  buf

let write_all fd bytes =
  chaos "write";
  let len = Bytes.length bytes in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write fd bytes !off (len - !off)
  done

let resolve_host host =
  if host = "" then Unix.inet_addr_loopback
  else
    try Unix.inet_addr_of_string host
    with Failure _ -> (
      match Unix.gethostbyname host with
      | { Unix.h_addr_list = addrs; _ } when Array.length addrs > 0 -> addrs.(0)
      | _ | (exception Not_found) ->
        Dse_error.fail (Dse_error.Io_error { file = host; message = "unknown host" }))

let sockaddr_of = function
  | Unix_socket path -> Unix.ADDR_UNIX path
  | Tcp { host; port } -> Unix.ADDR_INET (resolve_host host, port)

(* Non-blocking connect bounded by [timeout]: a dead (or partitioned)
   TCP peer otherwise holds the caller for the kernel's SYN-retry
   schedule — minutes, not the sub-second budget a router failover
   needs. Unix-socket connects are local and either succeed or fail
   immediately, so they take the blocking path even under a timeout. *)
let connect_bounded fd sa timeout =
  Unix.set_nonblock fd;
  (match Unix.connect fd sa with
  | () -> ()
  | exception Unix.Unix_error ((Unix.EINPROGRESS | Unix.EWOULDBLOCK | Unix.EAGAIN), _, _) -> (
    match Unix.select [] [ fd ] [] timeout with
    | _, _ :: _, _ -> (
      match Unix.getsockopt_error fd with
      | None -> ()
      | Some err -> raise (Unix.Unix_error (err, "connect", "")))
    | _ -> raise (Unix.Unix_error (Unix.ETIMEDOUT, "connect", ""))));
  Unix.clear_nonblock fd

let connect ?timeout addr =
  let domain =
    match addr with Unix_socket _ -> Unix.PF_UNIX | Tcp _ -> Unix.PF_INET
  in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  tune fd;
  match
    let sa = sockaddr_of addr in
    match (timeout, addr) with
    | Some seconds, Tcp _ -> connect_bounded fd sa seconds
    | _ -> Unix.connect fd sa
  with
  | () -> Ok fd
  | exception Unix.Unix_error (err, _, _) ->
    close_noerr fd;
    Error (io_error ~addr err)
  | exception Dse_error.Error e ->
    close_noerr fd;
    Error e

(* A stale Unix-socket file (previous daemon crashed) is unlinked; a
   live one (something accepts connections) is a configuration error. *)
let claim_socket_path path =
  if Sys.file_exists path then begin
    let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let live =
      match Unix.connect probe (Unix.ADDR_UNIX path) with
      | () -> true
      | exception Unix.Unix_error (_, _, _) -> false
    in
    close_noerr probe;
    if live then
      Error (Dse_error.Io_error { file = path; message = "socket already in use by a live server" })
    else begin
      (try Unix.unlink path with Unix.Unix_error (_, _, _) -> ());
      Ok ()
    end
  end
  else Ok ()

let listen addr =
  let claimed =
    match addr with Unix_socket path -> claim_socket_path path | Tcp _ -> Ok ()
  in
  match claimed with
  | Error _ as e -> e
  | Ok () -> (
    let domain =
      match addr with Unix_socket _ -> Unix.PF_UNIX | Tcp _ -> Unix.PF_INET
    in
    let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
    match
      let sa =
        match addr with
        | Unix_socket path -> Unix.ADDR_UNIX path
        | Tcp { host; port } ->
          (* restarts must not wait out TIME_WAIT from the previous run *)
          Unix.setsockopt fd Unix.SO_REUSEADDR true;
          let inet = if host = "" then Unix.inet_addr_any else resolve_host host in
          Unix.ADDR_INET (inet, port)
      in
      Unix.bind fd sa;
      Unix.listen fd 64
    with
    | () -> Ok fd
    | exception Unix.Unix_error (err, _, _) ->
      close_noerr fd;
      Error (io_error ~addr err)
    | exception Dse_error.Error e ->
      close_noerr fd;
      Error e)

let unlink = function
  | Unix_socket path -> (
    try Unix.unlink path with Unix.Unix_error (_, _, _) | Sys_error _ -> ())
  | Tcp _ -> ()

(* For tests that listen on an ephemeral TCP port (port 0). *)
let bound_port fd =
  match Unix.getsockname fd with
  | Unix.ADDR_INET (_, port) -> Some port
  | Unix.ADDR_UNIX _ -> None
  | exception Unix.Unix_error _ -> None
