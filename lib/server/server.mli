(** The [dse serve] daemon.

    A long-running batch DSE service on a Unix-domain socket — and,
    with [tcp] set, a TCP listener beside it carrying the identical
    DSRV framing for multi-host fleets fronted by [dse route]: the
    accept loop reads one {!Protocol.request} per connection, answers cache
    hits and malformed submissions inline, and hands cache misses to a
    pool of worker domains through a bounded {!Job_queue}. Submissions
    beyond [max_pending] are rejected with a typed
    {!Dse_error.Queue_full} — explicit backpressure, never unbounded
    buffering. Each job runs the standard [Analytical] pipeline
    (the arena kernel by default, [Shard_exec] windows for
    [domains > 1]), so the per-shard
    recovery ladder of the error taxonomy applies per job; any job
    failure is a structured reply to that one client and the daemon
    keeps serving.

    Self-healing behaviours layered on top:

    - {b Deadlines.} A submission's [deadline] starts a {!Cancel} token
      at accept time (queue wait counts); the kernel polls it and
      expiry is a {!Dse_error.Deadline_exceeded} reply (exit 7 at the
      CLI) — the worker moves on to the next job immediately.
    - {b Single flight.} Concurrent identical submissions (same
      {!Result_cache.key}) coalesce onto one kernel run via
      {!Inflight}; duplicates are counted as [coalesced_hits].
    - {b Persistence.} With [wal_path] set, every cached result is
      appended to a crash-safe {!Wal}; on startup the log is replayed
      (tolerating torn tails and bit flips), so a [kill -9]'d daemon
      restarts warm and answers repeats from cache.
    - {b Bounded memory.} The result cache holds at most
      [cache_entries] entries (LRU eviction, counted in stats).

    Supervision behaviours (the watchdog plane):

    - {b Worker watchdog.} Every job runs under a {!Heartbeat.t} beaten
      at the kernel's cancellation poll points. The accept loop's 0.1 s
      select tick scans the pool; a worker silent past [hang_timeout]
      is declared wedged: its domain is abandoned (OCaml domains cannot
      be killed), a replacement is spawned on the same slot, the flight
      is answered with {!Dse_error.Worker_stalled} (exit 8) and the
      job's token cancelled. A settled-flag CAS on each job guarantees
      exactly one party — finishing worker or watchdog — ever replies.
    - {b Admission control.} With [max_job_refs] / [memory_budget] set,
      a submission's {e declared} trace size is judged while it is
      still a varint on the wire ({!Trace.estimate_bytes}, priced per
      kernel family — arena jobs are charged their smaller off-heap
      footprint); oversized jobs get a typed
      {!Dse_error.Resource_exhausted} before any trace allocation.
    - {b Overload shedding.} Past the queue watermark (3/4 of
      [max_pending]), heavy submissions (a streaming shard or more of
      references) are refused with a load-proportional [retry_after]
      hint that client backoff honors; light jobs, pings, health
      probes and cache hits keep being answered.
    - {b Health plane.} A {!Protocol.Health} request is answered inline
      from the accept loop with per-worker heartbeat ages, queue depth
      and watermark, shed/admission counters, cache and WAL health, and
      uptime.

    Cluster durability (with [peers] set):

    - {b Replication on completion.} A finished exact result is pushed
      (as its WAL record — one format for disk and wire) to the first
      [replication − 1] non-self nodes of the key's ring walk, via a
      bounded queue drained by a dedicated domain: a slow or dead peer
      costs buffered records and then counted drops, never serving
      latency.
    - {b Peer serving.} {!Protocol.Cache_query} answers from the cache
      without kernel work — the router's failover lookup and peers'
      anti-entropy pulls ride it, counted as [peer_hits].
    - {b Anti-entropy on (re)join.} With [anti_entropy] set, startup
      exchanges cache-key digests with the ring neighbours and pulls
      exactly the keys this node participates in but does not hold — a
      WAL-less respawn re-warms its range from its peers, a
      WAL-restored one pulls nothing.

    Shutdown ({!stop}, or SIGTERM/SIGINT via
    {!install_signal_handlers}) drains: the listener closes, queued and
    in-flight jobs finish and are answered, the workers join, queued
    replication pushes drain, and the socket file is unlinked. *)

type config = {
  socket_path : string;
  tcp : string option;
      (** additional TCP listen address, ["host:port"] (empty host =
          all interfaces); [None] = Unix socket only *)
  node_id : string option;
      (** identity reported in health replies; defaults to the TCP
          address when serving one, else the socket path — stable
          across respawns, which is what lets a router tell a restart
          (same id, newer start epoch) from a distinct node *)
  workers : int;  (** worker domains; must be >= 1 *)
  max_pending : int;  (** job-queue depth bound; must be >= 1 *)
  cache_entries : int;  (** result-cache LRU bound; must be >= 1 *)
  wal_path : string option;  (** persistent result log; [None] = in-memory only *)
  hang_timeout : float;
      (** seconds of worker heartbeat silence before the watchdog
          replaces it; must be positive and finite *)
  max_job_refs : int option;
      (** admission bound on a submission's declared reference count *)
  memory_budget : int option;
      (** admission bound on a submission's estimated footprint, bytes *)
  peers : string list;
      (** the rest of the fleet, as dialable addresses spelled exactly
          as the router's backend list (and as each peer's node id) so
          every party derives the same ring; [[]] disables the cluster
          plane entirely. Must not include this node's own id. *)
  replication : int;
      (** total copies (computing node included) a finished result
          should have; must be >= 1, and 1 means "no pushes" *)
  replication_queue : int;
      (** outbound push-queue bound; overflow drops the push (counted
          as [replication_dropped]); must be >= 1 *)
  anti_entropy : bool;
      (** exchange digests with ring neighbours at startup and pull the
          missing entries of this node's key range *)
}

type t

(** [create ?on_job_start ?log config] binds and listens (unlinking a
    stale socket file; refusing one owned by a live server), ignores
    SIGPIPE, and — when [wal_path] is set — replays the WAL to warm the
    cache before the first connection is accepted. [on_job_start] is a
    test hook invoked by a worker as it picks a job up — tests block it
    to hold jobs in flight deterministically, and count it to assert
    single-flight coalescing. [log] receives operational messages
    (default: stderr). Errors are typed: [Constraint_violation] for bad
    config, [Io_error] for socket/WAL failures. *)
val create :
  ?on_job_start:(unit -> unit) -> ?log:(string -> unit) -> config -> (t, Dse_error.t) result

(** [run t] starts the workers and serves until {!stop}, then drains and
    cleans up. Runs in the calling domain; spawn a domain (or a process)
    around it to serve in the background. *)
val run : t -> unit

(** [stop t] requests shutdown-with-drain. Async-signal-safe (an atomic
    store); the accept loop notices within its 100 ms select tick. *)
val stop : t -> unit

(** [install_signal_handlers t] routes SIGTERM and SIGINT to {!stop}. *)
val install_signal_handlers : t -> unit

(** [socket_path t] echoes the bound path. *)
val socket_path : t -> string
