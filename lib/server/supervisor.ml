(* Process-level self-healing for [dse serve --supervise].

   The daemon runs as a forked child; the parent is a tiny loop that
   waits, and on abnormal exit respawns with exponential crash-loop
   backoff. Composed with the WAL ([--wal]), a respawned daemon replays
   its cache and answers warm — the supervisor turns "kill -9 twice"
   into two short gaps in service rather than two cold starts.

   Forking is safe here because the supervisor runs before any domain
   is spawned: the daemon's worker domains are created inside the child
   by [Server.run]. *)

type outcome = Clean | Crashed of string

let wait_child pid =
  let rec wait () =
    match Unix.waitpid [] pid with
    | _, status -> status
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait ()
  in
  match wait () with
  | Unix.WEXITED 0 -> Clean
  | Unix.WEXITED code -> Crashed (Printf.sprintf "exited with code %d" code)
  | Unix.WSIGNALED signal -> Crashed (Printf.sprintf "killed by signal %d" signal)
  | Unix.WSTOPPED signal -> Crashed (Printf.sprintf "stopped by signal %d" signal)

let run ?(max_rapid_crashes = 5) ?(rapid_window = 30.) ?(backoff_base = 0.5) ?(backoff_cap = 30.)
    ?(log = fun msg -> Format.eprintf "dse-supervise: %s@." msg) child =
  if max_rapid_crashes < 1 then invalid_arg "Supervisor.run: max_rapid_crashes must be >= 1";
  if not (rapid_window > 0.) then invalid_arg "Supervisor.run: rapid_window must be > 0";
  if not (backoff_base > 0.) then invalid_arg "Supervisor.run: backoff_base must be > 0";
  let stopping = ref false in
  let child_pid = ref None in
  (* Forward operator shutdown to the child and stop respawning; a
     TERM'd supervisor must not resurrect the daemon it was asked to
     take down. *)
  let forward signal =
    Sys.set_signal signal
      (Sys.Signal_handle
         (fun s ->
           stopping := true;
           match !child_pid with
           | Some pid -> ( try Unix.kill pid s with Unix.Unix_error _ -> ())
           | None -> ()))
  in
  (try forward Sys.sigterm with Invalid_argument _ -> ());
  (try forward Sys.sigint with Invalid_argument _ -> ());
  let spawn () =
    match Unix.fork () with
    | 0 ->
      (* The child is the daemon: default signal dispositions so the
         daemon's own SIGTERM drain handler installs over a clean
         slate, then never return into the supervisor loop. *)
      (try Sys.set_signal Sys.sigterm Sys.Signal_default with Invalid_argument _ -> ());
      (try Sys.set_signal Sys.sigint Sys.Signal_default with Invalid_argument _ -> ());
      let code =
        match child () with
        | () -> 0
        | exception Dse_error.Error e ->
          prerr_endline ("dse: " ^ Dse_error.to_string e);
          Dse_error.exit_code e
        | exception e ->
          prerr_endline ("dse: " ^ Printexc.to_string e);
          1
      in
      (try flush stdout with Sys_error _ -> ());
      (try flush stderr with Sys_error _ -> ());
      (* _exit, not exit: inherited at_exit hooks belong to the
         supervisor process, not to this child *)
      Unix._exit code
    | pid -> pid
  in
  let rec supervise ~rapid ~window_start =
    let pid = spawn () in
    child_pid := Some pid;
    let outcome = wait_child pid in
    child_pid := None;
    match outcome with
    | Clean ->
      log "daemon exited cleanly";
      0
    | Crashed reason ->
      if !stopping then begin
        log (Printf.sprintf "daemon %s during shutdown; not respawning" reason);
        0
      end
      else begin
        let now = Unix.gettimeofday () in
        (* crashes separated by a quiet stretch are independent events,
           not a crash loop: reset the strike counter *)
        let rapid = if now -. window_start > rapid_window then 1 else rapid + 1 in
        let window_start = if rapid = 1 then now else window_start in
        if rapid > max_rapid_crashes then begin
          log
            (Printf.sprintf "daemon %s; %d rapid crashes within %.0f s — giving up" reason rapid
               rapid_window);
          1
        end
        else begin
          let delay =
            Float.min backoff_cap (backoff_base *. (2. ** float_of_int (rapid - 1)))
          in
          log (Printf.sprintf "daemon %s; respawning in %.2f s (crash %d)" reason delay rapid);
          Unix.sleepf delay;
          if !stopping then 0 else supervise ~rapid ~window_start
        end
      end
  in
  supervise ~rapid:0 ~window_start:(Unix.gettimeofday ())
