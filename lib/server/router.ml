(* The [dse route] gateway: a fingerprint-routed front for a fleet of
   [dse serve] backends.

   Every submission is consistent-hashed on its trace fingerprint
   (Ring) so repeats of the same trace land on the same backend's
   Result_cache — the fleet's aggregate cache behaves like one big
   cache instead of N overlapping cold ones. The robustness plane is
   the point of the module:

   - The accept loop's 0.1 s select tick polls one backend's health
     plane per slice of [health_interval], keeping node identity (id +
     start epoch) fresh and feeding the per-backend circuit breaker.
   - A Breaker per backend trips open on consecutive connect/timeout
     failures (forwarding or health), reroutes that node's hash range
     to the next live ring candidate, and readmits via a single
     half-open probe after an exponentially backed-off cooldown.
   - A request silent past the hedging threshold (a fixed --hedge-after
     or 3x the rolling p99 of forwarded latencies) fires a second
     attempt at the next live candidate; first answer wins and the
     loser's connection is closed — a slow-but-alive node degrades
     latency, never availability. Jobs are pure functions of the trace
     and query, so duplicated execution is always safe.
   - A respawned backend (same node id, newer start epoch in its health
     reply) gets its breaker reset AND its hedge latency window cleared:
     the restart is a different process and owes none of its
     predecessor's failures or latencies (stale pre-crash samples would
     poison the adaptive threshold for the first window_size post-respawn
     requests) — but its cache is presumed cold.
   - When the walk has already passed a dead or breaker-open node
     (degraded mode), each subsequent candidate is first asked for the
     submission's cached result (Cache_query on the key): with
     replication enabled on the backends, the dead node's warm range
     lives on its ring successors, and a hit is relayed with zero kernel
     work (counted as peer_hits).
   - With --spill-threshold set, a submission bound for an owner whose
     health-polled queue-depth/worker ratio exceeds the threshold is
     sent to the least-loaded live node instead (counted as spilled) —
     cache locality deliberately sacrificed under load.

   Only when the owner and every fallback candidate have been tried (or
   stand breaker-open) does a submission fail, with the typed
   Dse_error.Backend_unavailable carrying the owning node and the
   attempt count — exit 9 at the CLI. *)

type hedge = Fixed of float | Adaptive

type config = {
  listen : string;
  backends : string list;
  replicas : int;
  forwarders : int;
  max_pending : int;
  connect_timeout : float;
  request_timeout : float;
  hedge : hedge;
  health_interval : float;
  health_timeout : float;
  breaker : Breaker.config;
  spill_threshold : float option;
}

let default_config =
  {
    listen = "";
    backends = [];
    replicas = 64;
    forwarders = 8;
    max_pending = 64;
    connect_timeout = 2.;
    request_timeout = 120.;
    hedge = Adaptive;
    health_interval = 1.;
    health_timeout = 2.;
    breaker = Breaker.default_config;
    spill_threshold = None;
  }

(* The rolling latency window sizing the adaptive hedge threshold. *)
let window_size = 256

type backend = {
  name : string;  (* the address string: also the ring key *)
  addr : Transport.addr;
  breaker : Breaker.t;
  mu : Mutex.t;
  mutable node_id : string;
  mutable start_epoch : float;
  mutable last_seen : float;  (* last successful health exchange *)
  mutable last_state : Breaker.state;  (* for transition logging only *)
  (* load picture from the last health reply, for spill decisions *)
  mutable queue_depth : int;
  mutable worker_count : int;
  (* per-backend rolling latency window (guarded by [mu]): hedging
     judges each node against its own history, and a respawn clears
     exactly the dead process's samples *)
  latencies : float array;
  mutable lat_count : int;
}

type backend_view = {
  backend : string;
  state : Breaker.state;
  id : string;
  epoch : float;
  seen : float;
  queue : int;
  workers : int;
  hedge_samples : int;
}

type stats = {
  forwarded : int;
  failovers : int;
  hedged : int;
  hedge_wins : int;
  rejected : int;
  unavailable : int;
  peer_hits : int;
  spilled : int;
}

type t = {
  config : config;
  listen_addr : Transport.addr;
  listen_fd : Unix.file_descr;
  (* the routed fleet view, swapped wholesale under [ring_mu] when a
     strictly newer ring config is adopted (Ring_update at the gateway,
     or a Stale_ring refetch): retained backends keep their breaker
     state, identity and latency history; new ones start fresh. Readers
     take the lock only long enough to copy the references they need,
     so a request in flight keeps routing on the view it started with. *)
  ring_mu : Mutex.t;
  mutable backends : backend array;
  mutable by_name : (string, backend) Hashtbl.t;
  mutable ring : Ring.t;
  mutable ring_version : int;
  mutable replication : int;
  queue : Unix.file_descr Job_queue.t;
  stopping : bool Atomic.t;
  forwarded : int Atomic.t;
  failovers : int Atomic.t;
  hedged : int Atomic.t;
  hedge_wins : int Atomic.t;
  rejected : int Atomic.t;
  unavailable : int Atomic.t;
  peer_hits : int Atomic.t;
  spilled : int Atomic.t;
  mutable next_poll : int;
  mutable last_poll : float;
  mutable pool : Unix.file_descr Worker_pool.t option;
  log : string -> unit;
}

let close_noerr fd = try Unix.close fd with Unix.Unix_error _ -> ()

let make_backend (config : config) name =
  {
    name;
    addr = Transport.parse name;
    breaker = Breaker.create ~config:config.breaker ();
    mu = Mutex.create ();
    node_id = "";
    start_epoch = 0.;
    last_seen = 0.;
    last_state = Breaker.Closed;
    queue_depth = 0;
    worker_count = 1;
    latencies = Array.make window_size 0.;
    lat_count = 0;
  }

let create ?(log = fun msg -> Format.eprintf "dse-route: %s@." msg) (config : config) =
  let invalid message = Error (Dse_error.Constraint_violation { context = "route"; message }) in
  if config.backends = [] then invalid "at least one --backend is required"
  else if List.length (List.sort_uniq String.compare config.backends)
          <> List.length config.backends
  then invalid "duplicate --backend address"
  else if config.forwarders < 1 then invalid "forwarders must be >= 1"
  else if config.max_pending < 1 then invalid "max-pending must be >= 1"
  else if config.replicas < 1 then invalid "replicas must be >= 1"
  else if not (config.connect_timeout > 0.) then invalid "connect-timeout must be > 0"
  else if not (config.request_timeout > 0.) then invalid "request-timeout must be > 0"
  else if (match config.hedge with Fixed s -> not (s > 0.) | Adaptive -> false) then
    invalid "hedge-after must be > 0"
  else if not (config.health_interval > 0.) then invalid "health-interval must be > 0"
  else if not (config.health_timeout > 0.) then invalid "health-timeout must be > 0"
  else if (match config.spill_threshold with Some s -> not (s > 0.) | None -> false) then
    invalid "spill-threshold must be > 0"
  else
    match
      (try Ok (Breaker.create ~config:config.breaker ())
       with Invalid_argument m -> invalid m)
    with
    | Error _ as e -> e
    | Ok _ -> (
      let listen_addr = Transport.parse config.listen in
      match Transport.listen listen_addr with
      | Error _ as e -> e
      | Ok listen_fd ->
        (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
        let backends = Array.of_list (List.map (make_backend config) config.backends) in
        let by_name = Hashtbl.create (Array.length backends) in
        Array.iter (fun b -> Hashtbl.replace by_name b.name b) backends;
        Ok
          {
            config;
            listen_addr;
            listen_fd;
            ring_mu = Mutex.create ();
            backends;
            by_name;
            ring = Ring.create ~replicas:config.replicas config.backends;
            ring_version = 1;
            replication = 1;
            queue = Job_queue.create ~max_pending:config.max_pending;
            stopping = Atomic.make false;
            forwarded = Atomic.make 0;
            failovers = Atomic.make 0;
            hedged = Atomic.make 0;
            hedge_wins = Atomic.make 0;
            rejected = Atomic.make 0;
            unavailable = Atomic.make 0;
            peer_hits = Atomic.make 0;
            spilled = Atomic.make 0;
            next_poll = 0;
            last_poll = 0.;
            pool = None;
            log;
          })

let stop t = Atomic.set t.stopping true

let install_signal_handlers t =
  let handler = Sys.Signal_handle (fun _ -> stop t) in
  Sys.set_signal Sys.sigterm handler;
  Sys.set_signal Sys.sigint handler

let stats t =
  {
    forwarded = Atomic.get t.forwarded;
    failovers = Atomic.get t.failovers;
    hedged = Atomic.get t.hedged;
    hedge_wins = Atomic.get t.hedge_wins;
    rejected = Atomic.get t.rejected;
    unavailable = Atomic.get t.unavailable;
    peer_hits = Atomic.get t.peer_hits;
    spilled = Atomic.get t.spilled;
  }

let snapshot t =
  let backends =
    Mutex.lock t.ring_mu;
    let b = t.backends in
    Mutex.unlock t.ring_mu;
    b
  in
  Array.to_list
    (Array.map
       (fun b ->
         Mutex.lock b.mu;
         let view =
           {
             backend = b.name;
             state = Breaker.state b.breaker;
             id = b.node_id;
             epoch = b.start_epoch;
             seen = b.last_seen;
             queue = b.queue_depth;
             workers = b.worker_count;
             hedge_samples = min b.lat_count window_size;
           }
         in
         Mutex.unlock b.mu;
         view)
       backends)

(* Log breaker transitions exactly once per edge; every path that feeds
   a breaker calls this afterwards. *)
let note_state t b =
  let s = Breaker.state b.breaker in
  Mutex.lock b.mu;
  let changed = s <> b.last_state in
  if changed then b.last_state <- s;
  Mutex.unlock b.mu;
  if changed then
    t.log (Printf.sprintf "breaker for %s is now %s" b.name (Breaker.state_name s))

let record_latency b dt =
  Mutex.lock b.mu;
  b.latencies.(b.lat_count mod window_size) <- dt;
  b.lat_count <- b.lat_count + 1;
  Mutex.unlock b.mu

(* 3x the backend's rolling p99, clamped to [0.05, 10] s; 1 s before
   any sample. Per-backend windows mean a chronically slow node is
   judged against itself (not hedged on every request because a fast
   sibling dominates the fleet window), and a respawn starts from the
   no-sample default instead of its predecessor's history. The
   multiplier means a healthy node hedges on well under 1% of requests
   — hedging is a tail-latency rescue, not a default path. *)
let hedge_threshold t b =
  match t.config.hedge with
  | Fixed s -> s
  | Adaptive ->
    Mutex.lock b.mu;
    let n = min b.lat_count window_size in
    let sample = Array.sub b.latencies 0 n in
    Mutex.unlock b.mu;
    if n = 0 then 1.
    else begin
      Array.sort compare sample;
      let p99 = sample.(min (n - 1) (n * 99 / 100)) in
      Float.min 10. (Float.max 0.05 (3. *. p99))
    end

let fail_breaker t b =
  Breaker.record_failure b.breaker ~now:(Unix.gettimeofday ());
  note_state t b

(* -- the mutable fleet view -- *)

let with_ring_lock t f =
  Mutex.lock t.ring_mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.ring_mu) f

let ring_version t = with_ring_lock t (fun () -> t.ring_version)

let current_config t =
  with_ring_lock t (fun () ->
      {
        Protocol.ring_version = t.ring_version;
        nodes = Array.to_list (Array.map (fun b -> b.name) t.backends);
        replication = t.replication;
      })

(* The submission's full failover walk, resolved to backend records in
   one critical section so the ring and the table are the same view. *)
let candidates_of t fingerprint =
  with_ring_lock t (fun () ->
      List.filter_map (fun name -> Hashtbl.find_opt t.by_name name) (Ring.successors t.ring fingerprint))

let all_backends t = with_ring_lock t (fun () -> Array.to_list t.backends)

(* Adopt a strictly newer fleet view. Backends present in both views
   keep their records (breaker verdicts, node identity, hedge window
   — the process didn't change, only the ring around it); joiners get
   fresh ones; leavers are dropped and simply stop being polled. *)
let adopt_if_newer t (config : Protocol.ring_config) =
  let valid =
    config.ring_version >= 1
    && config.nodes <> []
    && List.length (List.sort_uniq String.compare config.nodes) = List.length config.nodes
    && config.replication >= 1
  in
  valid
  && with_ring_lock t (fun () ->
         if config.ring_version <= t.ring_version then false
         else begin
           let old = t.by_name in
           let backends =
             Array.of_list
               (List.map
                  (fun name ->
                    match Hashtbl.find_opt old name with
                    | Some b -> b
                    | None -> make_backend t.config name)
                  config.nodes)
           in
           let by_name = Hashtbl.create (Array.length backends) in
           Array.iter (fun b -> Hashtbl.replace by_name b.name b) backends;
           t.backends <- backends;
           t.by_name <- by_name;
           t.ring <- Ring.create ~replicas:t.config.replicas config.nodes;
           t.ring_version <- config.ring_version;
           t.replication <- config.replication;
           true
         end)
  && begin
       t.log
         (Printf.sprintf "membership: adopted ring v%d (%d backend(s))" config.ring_version
            (List.length config.nodes));
       true
     end

(* A peer answered Stale_ring: it knows a newer fleet view than ours.
   Pull its config and adopt — the one recovery the fence prescribes. *)
let refetch_config t b =
  match Transport.connect ~timeout:t.config.connect_timeout b.addr with
  | Error _ -> ()
  | Ok fd ->
    Fun.protect
      ~finally:(fun () -> close_noerr fd)
      (fun () ->
        match
          Unix.setsockopt_float fd Unix.SO_SNDTIMEO t.config.health_timeout;
          Unix.setsockopt_float fd Unix.SO_RCVTIMEO t.config.health_timeout;
          Protocol.write_request ~peer:b.name fd Protocol.Ring_status
        with
        | Error _ -> ()
        | Ok () -> (
          match Protocol.read_response ~peer:b.name fd with
          | Ok (Protocol.Ring_reply { config; _ }) -> ignore (adopt_if_newer t config)
          | Ok _ | Error _ -> ())
        | exception Unix.Unix_error _ -> ())

(* -- forwarding -- *)

type flight = { b : backend; fd : Unix.file_descr; started : float; is_hedge : bool }

(* What a submission would look like as a cache entry, precomputed at
   the gateway so a degraded ring walk can ask surviving candidates for
   the finished result before re-running the job. *)
type peek = {
  peek_key : Result_cache.key;
  peek_name : string;
  peek_query : Protocol.query;
  peek_max_level : int option;
}

(* Ask [b] whether it already holds the submission's result (replicated
   from the dead owner, or warmed by an earlier spill). A hit is
   relayed as a normal cache-hit Result — zero kernel work; any miss or
   transport trouble just means the walk proceeds to a real forward.
   The exchange is cheap (one key, no trace), so it rides the health
   timeout, not the request timeout. *)
let peer_lookup t b p =
  let exchange () =
    match Transport.connect ~timeout:t.config.connect_timeout b.addr with
    | Error _ -> `Miss
    | Ok fd ->
      Fun.protect
        ~finally:(fun () -> close_noerr fd)
        (fun () ->
          match
            Unix.setsockopt_float fd Unix.SO_SNDTIMEO t.config.health_timeout;
            Unix.setsockopt_float fd Unix.SO_RCVTIMEO t.config.health_timeout;
            Protocol.write_request ~peer:b.name fd
              (Protocol.Cache_query { ring_version = ring_version t; keys = [ p.peek_key ] })
          with
          | Error _ -> `Miss
          | Ok () -> (
            match Protocol.read_response ~peer:b.name fd with
            | Ok (Protocol.Cache_reply { records = [ record ]; _ }) -> `Hit record
            | Ok (Protocol.Server_error (Dse_error.Stale_ring _)) -> `Stale
            | Ok _ | Error _ -> `Miss)
          | exception Unix.Unix_error _ -> `Miss)
  in
  let fetched =
    match exchange () with
    | `Hit record -> Some record
    | `Miss -> None
    | `Stale -> (
      (* the peek itself told us our view is old: refresh it from the
         very node that knows better, then ask once more *)
      refetch_config t b;
      match exchange () with `Hit record -> Some record | `Miss | `Stale -> None)
  in
  match fetched with
  | None -> None
  | Some record -> (
    match Wal.decode_record record with
    | Some (key, entry) when key = p.peek_key -> (
      match
        Protocol.answer_entry ~name:p.peek_name ~query:p.peek_query
          ~max_level:p.peek_max_level entry
      with
      | outcome ->
        Atomic.incr t.peer_hits;
        t.log (Printf.sprintf "peer cache hit on %s; relaying without kernel work" b.name);
        Some (Protocol.Result { outcome; cache_hit = true })
      | exception _ -> None)
    | Some _ | None -> None)

(* Connect (bounded) and write the frame; the request timeout rides the
   socket as SO_RCVTIMEO so even a mid-frame stall is bounded. *)
let send_to t b request =
  match Transport.connect ~timeout:t.config.connect_timeout b.addr with
  | Error _ as e -> e
  | Ok fd -> (
    match
      Unix.setsockopt_float fd Unix.SO_SNDTIMEO t.config.request_timeout;
      Unix.setsockopt_float fd Unix.SO_RCVTIMEO t.config.request_timeout;
      Protocol.write_request ~peer:b.name fd request
    with
    | Ok () -> Ok fd
    | Error e ->
      close_noerr fd;
      Error e
    | exception Unix.Unix_error (err, _, _) ->
      close_noerr fd;
      Error (Dse_error.Io_error { file = b.name; message = Unix.error_message err }))

(* Read and classify one backend reply.

   [`Answered]: relayed verbatim — including structured job errors
   (corrupt trace, deadline, admission, a stalled worker): those are
   properties of the job, not the node, and would reproduce anywhere.
   [`Spill]: Queue_full — the node is alive but loaded, so the request
   may spill to the next candidate while the refusal is remembered as
   the fallback answer. [`Failed]: a transport-level failure (reset,
   timeout, damage) — feeds the breaker and triggers failover. *)
let settle_flight t fl =
  match Protocol.read_response ~peer:fl.b.name fl.fd with
  | Ok (Protocol.Server_error (Dse_error.Queue_full _ as e)) ->
    Breaker.record_success fl.b.breaker;
    note_state t fl.b;
    `Spill e
  | Ok response ->
    Breaker.record_success fl.b.breaker;
    note_state t fl.b;
    record_latency fl.b (Unix.gettimeofday () -. fl.started);
    `Answered response
  | Error e ->
    fail_breaker t fl.b;
    t.log (Printf.sprintf "reply from %s failed: %s" fl.b.name (Dse_error.to_string e));
    `Failed

let select_readable fds timeout =
  match Unix.select fds [] [] timeout with
  | ready, _, _ -> ready
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> []

(* Walk the candidate list (ring successor order), at most one hedged
   duplicate in flight at a time. [busy] remembers the best Queue_full
   refusal: if the whole ring is merely loaded (not dead) the client
   gets the retryable Queue_full, not Backend_unavailable. [degraded]
   flips once the walk has passed a dead or breaker-open node; from
   then on each candidate is first asked for the cached result
   ([peek]), because the failed node's warm range lives replicated on
   exactly these successors. *)
let rec try_next t ~hedging ~primary ~attempts ~busy ~peek ~degraded request candidates =
  match candidates with
  | [] -> (
    match !busy with
    | Some e -> Protocol.Server_error e
    | None ->
      Atomic.incr t.unavailable;
      Protocol.Server_error
        (Dse_error.Backend_unavailable { node = primary; attempts = !attempts }))
  | b :: rest -> (
    if not (Breaker.acquire b.breaker ~now:(Unix.gettimeofday ())) then begin
      degraded := true;
      try_next t ~hedging ~primary ~attempts ~busy ~peek ~degraded request rest
    end
    else
      match (if !degraded then Option.bind peek (peer_lookup t b) else None) with
      | Some response ->
        (* the Cache_query round-trip itself proved the node healthy *)
        Breaker.record_success b.breaker;
        note_state t b;
        response
      | None -> (
        incr attempts;
        if !attempts > 1 then Atomic.incr t.failovers;
        match send_to t b request with
        | Error e ->
          fail_breaker t b;
          degraded := true;
          t.log (Printf.sprintf "forward to %s failed: %s" b.name (Dse_error.to_string e));
          try_next t ~hedging ~primary ~attempts ~busy ~peek ~degraded request rest
        | Ok fd ->
          await_one t ~hedging ~primary ~attempts ~busy ~peek ~degraded request
            { b; fd; started = Unix.gettimeofday (); is_hedge = false }
            rest))

(* One flight outstanding. Silence past the hedge threshold fires the
   duplicate; silence past the request timeout is a node failure. *)
and await_one t ~hedging ~primary ~attempts ~busy ~peek ~degraded request fl rest =
  let deadline = fl.started +. t.config.request_timeout in
  let hedge_at = fl.started +. hedge_threshold t fl.b in
  let giveup () =
    fail_breaker t fl.b;
    close_noerr fl.fd;
    degraded := true;
    t.log (Printf.sprintf "%s silent for %.1f s; failing over" fl.b.name t.config.request_timeout);
    try_next t ~hedging ~primary ~attempts ~busy ~peek ~degraded request rest
  in
  let settle () =
    match settle_flight t fl with
    | `Answered response ->
      close_noerr fl.fd;
      response
    | `Spill e ->
      close_noerr fl.fd;
      busy := Some e;
      try_next t ~hedging ~primary ~attempts ~busy ~peek ~degraded request rest
    | `Failed ->
      close_noerr fl.fd;
      degraded := true;
      try_next t ~hedging ~primary ~attempts ~busy ~peek ~degraded request rest
  in
  let rec wait ~may_hedge =
    let now = Unix.gettimeofday () in
    if now >= deadline then giveup ()
    else begin
      let until = if may_hedge then Float.min deadline hedge_at else deadline in
      match select_readable [ fl.fd ] (Float.max 0. (until -. now)) with
      | _ :: _ -> settle ()
      | [] ->
        if may_hedge && Unix.gettimeofday () >= hedge_at then spawn_hedge rest
        else wait ~may_hedge
    end
  and spawn_hedge = function
    | [] -> wait ~may_hedge:false
    | b :: more -> (
      if not (Breaker.acquire b.breaker ~now:(Unix.gettimeofday ())) then spawn_hedge more
      else begin
        Atomic.incr t.hedged;
        incr attempts;
        t.log
          (Printf.sprintf "%s slow (past %.2f s); hedging to %s" fl.b.name
             (hedge_threshold t fl.b) b.name);
        match send_to t b request with
        | Error e ->
          fail_breaker t b;
          t.log (Printf.sprintf "hedge to %s failed: %s" b.name (Dse_error.to_string e));
          spawn_hedge more
        | Ok fd ->
          await_two t ~primary ~attempts ~busy ~peek ~degraded request fl
            { b; fd; started = Unix.gettimeofday (); is_hedge = true }
            more
      end)
  in
  wait ~may_hedge:(hedging && rest <> [])

(* Two flights racing: first answer wins, the loser's connection is
   closed unread (transport-level cancellation — the backend's reply
   hits EPIPE and is discarded; the job itself is pure, so the wasted
   kernel run costs time on that node and nothing else). The deadline
   is the primary's: the hedge gets whatever remains of it. *)
and await_two t ~primary ~attempts ~busy ~peek ~degraded request fl1 fl2 rest =
  let deadline = fl1.started +. t.config.request_timeout in
  let continue_with survivor =
    await_one t ~hedging:false ~primary ~attempts ~busy ~peek ~degraded request survivor rest
  in
  let rec wait () =
    let now = Unix.gettimeofday () in
    if now >= deadline then begin
      fail_breaker t fl1.b;
      fail_breaker t fl2.b;
      close_noerr fl1.fd;
      close_noerr fl2.fd;
      degraded := true;
      try_next t ~hedging:false ~primary ~attempts ~busy ~peek ~degraded request rest
    end
    else begin
      match select_readable [ fl1.fd; fl2.fd ] (deadline -. now) with
      | [] -> wait ()
      | ready :: _ -> (
        let winner, loser = if ready = fl1.fd then (fl1, fl2) else (fl2, fl1) in
        match settle_flight t winner with
        | `Answered response ->
          close_noerr winner.fd;
          close_noerr loser.fd;
          if winner.is_hedge then Atomic.incr t.hedge_wins;
          response
        | `Spill e ->
          close_noerr winner.fd;
          busy := Some e;
          continue_with loser
        | `Failed ->
          close_noerr winner.fd;
          degraded := true;
          continue_with loser)
    end
  in
  wait ()

let forward ?peek t ~hedging ~candidates request =
  match candidates with
  | [] -> assert false (* create and adopt_if_newer refuse empty node lists *)
  | first :: _ ->
    Atomic.incr t.forwarded;
    try_next t ~hedging ~primary:first.name ~attempts:(ref 0) ~busy:(ref None) ~peek
      ~degraded:(ref false) request candidates

(* Least-loaded spill: when the owner's last-polled queue-depth/worker
   ratio exceeds the threshold, promote the least-loaded live candidate
   to the front of the walk. Ring order is otherwise preserved, so the
   spilled job still warms a deterministic cache — and with replication
   on, the result is pushed back to the owner's range anyway. Load data
   is as fresh as the last health poll; a node never polled (or not
   breaker-Closed) is not a spill target. *)
let maybe_spill t candidates =
  match (t.config.spill_threshold, candidates) with
  | None, _ | _, [] -> candidates
  | Some threshold, owner :: _ -> (
    let load b = float_of_int b.queue_depth /. float_of_int (max 1 b.worker_count) in
    if Breaker.state owner.breaker <> Breaker.Closed || load owner <= threshold then candidates
    else
      let best =
        List.fold_left
          (fun acc b ->
            if b.last_seen <= 0. || Breaker.state b.breaker <> Breaker.Closed then acc
            else
              match acc with
              | Some best when load best <= load b -> acc
              | _ -> Some b)
          None candidates
      in
      match best with
      | Some b when b.name <> owner.name ->
        Atomic.incr t.spilled;
        t.log
          (Printf.sprintf "%s loaded (%.1f jobs/worker > %.1f); spilling to %s (%.1f)"
             owner.name (load owner) threshold b.name (load b));
        b :: List.filter (fun c -> c.name <> b.name) candidates
      | _ -> candidates)

let respond_and_close t fd response =
  (match Protocol.write_response fd response with
  | Ok () -> ()
  | Error e -> t.log (Printf.sprintf "reply failed: %s" (Dse_error.to_string e)));
  close_noerr fd

(* Runs in a forwarder domain: one client connection end to end. The
   router imposes no admission budgets of its own — the owning backend
   prices the job against its memory; what the router enforces is its
   bounded connection queue. *)
let handle_client t fd =
  match Protocol.read_request fd with
  | Ok None -> close_noerr fd (* liveness probe *)
  | Error e when Protocol.timed_out e ->
    t.log "dropped a connection that timed out mid-request";
    close_noerr fd
  | Error e -> respond_and_close t fd (Protocol.Server_error e)
  | Ok (Some Protocol.Ping) ->
    (* answered locally: a ping asks "is the gateway up" *)
    respond_and_close t fd Protocol.Pong
  | Ok (Some ((Protocol.Server_stats | Protocol.Health) as request)) ->
    (* forwarded to the first live backend in configuration order — a
       single node's view, for fleet-wide numbers ask each backend *)
    respond_and_close t fd (forward t ~hedging:false ~candidates:(all_backends t) request)
  | Ok (Some Protocol.Ring_status) ->
    (* the gateway's own fleet view — the admin plane reads it to pick
       the freshest config, and pushes updates here last so a draining
       node keeps serving its cache until routing has moved *)
    respond_and_close t fd
      (Protocol.Ring_reply { config = current_config t; draining = false; pushed = 0 })
  | Ok (Some (Protocol.Ring_update { config })) ->
    ignore (adopt_if_newer t config);
    respond_and_close t fd
      (Protocol.Ring_reply { config = current_config t; draining = false; pushed = 0 })
  | Ok (Some (Protocol.Replicate _ | Protocol.Cache_query _ | Protocol.Drain _)) ->
    (* cluster-internal verbs: backends talk to each other directly
       (and a drain is addressed to one daemon); the gateway is for
       clients and fleet-view admin *)
    respond_and_close t fd
      (Protocol.Server_error
         (Dse_error.Constraint_violation
            { context = "route"; message = "cluster-internal verb not accepted at the gateway" }))
  | Ok (Some (Protocol.Submit { name; trace; query; method_; domains; max_level; _ } as request))
    ->
    let fingerprint = Protocol.submission_fingerprint trace in
    let candidates = maybe_spill t (candidates_of t fingerprint) in
    let peek =
      Some
        {
          peek_key =
            {
              Result_cache.fingerprint;
              method_tag = Protocol.method_spec_tag method_;
              domains;
              max_level = (match max_level with None -> -1 | Some l -> l);
            };
          peek_name = name;
          peek_query = query;
          peek_max_level = max_level;
        }
    in
    respond_and_close t fd (forward ?peek t ~hedging:true ~candidates request)

(* -- health polling, from the accept loop's select tick -- *)

let probe_backend t b =
  let finish fd outcome =
    close_noerr fd;
    match outcome with
    | `Up (h : Protocol.health) ->
      let now = Unix.gettimeofday () in
      Mutex.lock b.mu;
      let respawned =
        b.start_epoch > 0.
        && (h.Protocol.start_epoch -. b.start_epoch > 1e-6 || h.Protocol.node_id <> b.node_id)
      in
      b.node_id <- h.Protocol.node_id;
      b.start_epoch <- h.Protocol.start_epoch;
      b.last_seen <- now;
      b.queue_depth <- h.Protocol.queue_depth;
      b.worker_count <- List.length h.Protocol.workers;
      (* a respawn is a different process: its predecessor's latency
         samples would mis-size the adaptive hedge threshold until the
         whole window refilled, so drop them with the breaker state *)
      if respawned then b.lat_count <- 0;
      Mutex.unlock b.mu;
      if respawned then begin
        t.log
          (Printf.sprintf
             "%s respawned (node %s, new epoch): breaker reset, hedge window cleared, cache \
              presumed cold"
             b.name h.Protocol.node_id);
        Breaker.reset b.breaker
      end;
      Breaker.record_success b.breaker;
      note_state t b
    | `Down -> fail_breaker t b
  in
  match Transport.connect ~timeout:t.config.health_timeout b.addr with
  | Error _ -> fail_breaker t b
  | Ok fd -> (
    match
      Unix.setsockopt_float fd Unix.SO_SNDTIMEO t.config.health_timeout;
      Unix.setsockopt_float fd Unix.SO_RCVTIMEO t.config.health_timeout;
      Protocol.write_request ~peer:b.name fd Protocol.Health
    with
    | Error _ -> finish fd `Down
    | Ok () -> (
      match Protocol.read_response ~peer:b.name fd with
      | Ok (Protocol.Health_reply h) -> finish fd (`Up h)
      | Ok _ | Error _ -> finish fd `Down)
    | exception Unix.Unix_error _ -> finish fd `Down)

(* One backend per slice so a poll's worst case (health_timeout on a
   dead node) stalls the accept loop briefly and rarely, instead of
   N timeouts back to back; every backend is still probed once per
   health_interval. *)
let poll_health t =
  let due =
    with_ring_lock t (fun () ->
        let n = Array.length t.backends in
        let now = Unix.gettimeofday () in
        if now -. t.last_poll >= t.config.health_interval /. float_of_int n then begin
          t.last_poll <- now;
          let b = t.backends.(t.next_poll mod n) in
          t.next_poll <- t.next_poll + 1;
          Some b
        end
        else None)
  in
  (* probe outside the lock: a health_timeout on a dead node must not
     hold up request routing *)
  match due with Some b -> probe_backend t b | None -> ()

let run t =
  let pool =
    Worker_pool.start ~workers:t.config.forwarders
      ~run:(fun ~heartbeat:_ fd -> handle_client t fd)
      t.queue
  in
  t.pool <- Some pool;
  let accept_client () =
    match Unix.accept t.listen_fd with
    | fd, _ -> (
      Transport.tune fd;
      (* a stalled or hostile client cannot wedge a forwarder forever *)
      (try
         Unix.setsockopt_float fd Unix.SO_RCVTIMEO 30.0;
         Unix.setsockopt_float fd Unix.SO_SNDTIMEO 30.0
       with Unix.Unix_error _ -> ());
      match Job_queue.push t.queue fd with
      | `Ok -> ()
      | `Full pending ->
        (* explicit backpressure, mirroring the daemon's shedding *)
        Atomic.incr t.rejected;
        respond_and_close t fd
          (Protocol.Server_error
             (Dse_error.Queue_full
                { pending; max_pending = t.config.max_pending; retry_after = 0.5 }))
      | `Closed -> close_noerr fd)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  in
  let rec accept_loop () =
    if not (Atomic.get t.stopping) then begin
      (match Unix.select [ t.listen_fd ] [] [] 0.1 with
      | [], _, _ -> ()
      | _ :: _, _, _ -> (
        try accept_client ()
        with e -> t.log (Printf.sprintf "accept: %s" (Printexc.to_string e)))
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      (* the health poll rides the select tick, like the daemon's
         watchdog *)
      poll_health t;
      accept_loop ()
    end
  in
  accept_loop ();
  (* drain: queued client connections are still answered (forwarded or
     refused) before the gateway exits *)
  let pending = Job_queue.length t.queue in
  if pending > 0 then t.log (Printf.sprintf "draining %d pending connection(s)" pending);
  Job_queue.close t.queue;
  Worker_pool.join pool;
  close_noerr t.listen_fd;
  Transport.unlink t.listen_addr;
  t.log
    (Printf.sprintf
       "drained; %d request(s) forwarded, %d failover(s), %d hedged, %d peer hit(s), %d \
        spilled"
       (Atomic.get t.forwarded) (Atomic.get t.failovers) (Atomic.get t.hedged)
       (Atomic.get t.peer_hits) (Atomic.get t.spilled))

let listen_address t = Transport.to_string t.listen_addr
