(** The [dse serve] wire protocol.

    Length-prefixed binary frames over a Unix-domain socket or TCP
    (see {!Transport}), reusing the LEB128 + CRC-32 framing idiom of
    the v2 binary trace format:

    {v "DSRV" | version | tag | payload length (LEB128) | payload | CRC-32 (LE) v}

    One request frame per connection, answered by one response frame.
    Every framing or payload defect — bad magic, truncated varint,
    declared lengths exceeding the payload, CRC mismatch — surfaces as a
    typed {!Dse_error.Corrupt_binary} carrying the byte offset; OS-level
    failures as {!Dse_error.Io_error}. Nothing in this module raises
    across the API boundary, so one corrupt submission is a structured
    reply to that client, never a daemon crash.

    Every frame read and write loops on short counts — a TCP segment
    boundary (or a byte-at-a-time sender) can split a frame anywhere,
    and the decoder must not care. *)

(** The frame-header version byte. Client, daemon, and router ship
    together, so it is bumped in lockstep rather than negotiated; tests
    that hand-craft frames use it to stay in step. *)
val version : int

(** A design-space query against a submitted trace: either the paper's
    percentage sweep (Tables 7-30 layout) or one absolute miss budget. *)
type query = Percents of int list | Budget of int

(** How the daemon should analyse the submission: one of the exact
    histogram kernels, or the one-pass approximate estimator. *)
type method_spec = Exact of Analytical.method_ | Approx

(** The decoded form of a submission's reference stream. Clients always
    {e send} records ([Full]); what a decoder builds from them depends
    on the method: the daemon decodes an [Approx] submission's records
    straight into a streaming sketch ([Sketched]) so the trace never
    materialises server-side. A [Sketched] value cannot be re-encoded
    ({!write_request} raises [Invalid_argument]) — it is a decode-only
    representation. *)
type submission = Full of Trace.t | Sketched of Sketch.profile

(** The fleet view as one versioned value: the full node list, the
    replication factor, and a monotonically increasing version. Version
    0 is reserved for the unfenced state (a standalone daemon booted
    with no peers); every published config is >= 1, and each membership
    change (join, leave, drain, replication change) bumps the version by
    one — "newer" is a plain integer comparison, and the version is the
    epoch fence carried by [Replicate] / [Cache_query]. *)
type ring_config = { ring_version : int; nodes : string list; replication : int }

type request =
  | Submit of {
      name : string;  (** display name for the rendered table *)
      trace : submission;
      query : query;
      method_ : method_spec;
      domains : int;  (** shard count for the job's kernel run *)
      max_level : int option;  (** as [Analytical.prepare]'s [?max_level] *)
      deadline : float option;
          (** seconds the job may spend, queue wait included; expiry is
              a {!Dse_error.Deadline_exceeded} reply *)
    }
  | Server_stats  (** query the daemon's counters (cache hits, pending) *)
  | Ping
  | Health  (** query the readiness plane (see {!health}) *)
  | Replicate of { ring_version : int; records : string list }
      (** push finished result entries to a ring successor. Each record
          is a WAL snapshot record ({!Wal.encode_record}) — opaque bytes
          at this layer, so replication and WAL persistence stay one
          format. [ring_version] is the sender's fleet-view epoch: when
          both sides are versioned (non-zero) and the numbers differ,
          the receiver rejects with {!Dse_error.Stale_ring} before
          storing anything — warm state must never be placed under a
          stale ring. Answered by [Replicate_ack]. *)
  | Cache_query of { ring_version : int; keys : Result_cache.key list }
      (** ask a peer about its result cache. An empty key list is the
          digest form ([Cache_reply] carries every exact cache key, no
          records); a non-empty list asks for those entries
          ([Cache_reply] carries the matching WAL-encoded records).
          Serves both the router's failover peer lookup (one key) and
          anti-entropy on rejoin (digest, then the missing keys).
          [ring_version] fences exactly like [Replicate]'s. *)
  | Ring_status  (** fetch the node's current {!ring_config} and drain flag *)
  | Ring_update of { config : ring_config }
      (** push a newer fleet view. Adopted only when strictly newer than
          the receiver's; adoption rebuilds the ring, schedules replica
          GC for keys the node no longer participates in, and (on a
          daemon with anti-entropy enabled) re-runs the digest exchange
          so a joining node's range is pulled while it already serves.
          Idempotent: an equal-or-older config changes nothing. Either
          way the reply is [Ring_reply] with the receiver's (possibly
          just-adopted) config. *)
  | Drain of { config : ring_config }
      (** planned decommission of the receiving daemon. [config] is the
          post-drain fleet view (the receiver absent). The daemon flips
          to shed-new-work mode, waits for in-flight jobs, pushes every
          warm entry it owns or replicates to the entry's post-drain
          owners, adopts [config], and only then acks with [Ring_reply]
          ([pushed] = records accepted by the new owners) — so a planned
          decommission costs zero kernel re-runs. *)

type server_stats = {
  jobs_completed : int;
  cache_hits : int;
  cache_misses : int;
  cache_entries : int;
  cache_evictions : int;  (** LRU entries dropped by the bounded cache *)
  coalesced_hits : int;  (** submissions answered by attaching to another's flight *)
  pending : int;
  workers : int;
}

(** One worker slot's state as sampled at the health request. *)
type worker_health = {
  slot : int;
  busy : bool;
  job : string;  (** the display name of the running job; [""] when idle *)
  heartbeat_age : float;  (** seconds since the worker's last beat; [0.] when idle *)
  jobs_done : int;  (** jobs finished by this incarnation *)
}

(** Structured readiness for [dse submit --health]: the supervision
    plane's view of the daemon. [workers_replaced] counts watchdog
    replacements, [shed] heavy jobs refused past the queue watermark,
    [admission_rejected] submissions refused by the declared-size
    budgets, [wal_failures] append errors (persistence degraded, serving
    unaffected).

    [node_id] and [start_epoch] identify the process: the id is stable
    across restarts of the same configuration, while the epoch (the
    daemon's start time) changes on every respawn — a router that sees
    the same id with a newer epoch knows the backend was restarted
    (cold cache, stale breaker verdicts) rather than merely slow. *)
type health = {
  node_id : string;
  start_epoch : float;
  uptime : float;
  workers : worker_health list;
  workers_replaced : int;
  queue_depth : int;
  queue_watermark : int;
  max_pending : int;
  shed : int;
  admission_rejected : int;
  jobs_completed : int;
  cache_hits : int;
  cache_misses : int;
  cache_entries : int;
  cache_evictions : int;
  coalesced_hits : int;
  wal_enabled : bool;
  wal_appends : int;
  wal_failures : int;
  peer_hits : int;
      (** cache entries served to peers via [Cache_query] (router
          failover relays and anti-entropy pulls) *)
  replicated_in : int;  (** entries received via [Replicate] or pulled by anti-entropy *)
  replicated_out : int;  (** entries successfully pushed to ring successors *)
  replication_lag : int;  (** entries waiting in the outbound replication queue *)
  replication_dropped : int;
      (** pushes dropped by the bounded replication queue (a slow peer
          degrades durability, never serving) *)
  ring_version : int;  (** the node's current fleet-view epoch; 0 = unfenced standalone *)
  draining : bool;  (** shed-new-work mode: a planned decommission is in progress or done *)
  replica_gc_dropped : int;
      (** entries dropped by replica GC after a ring change removed this
          node from their placement (post grace delay) *)
}

(** Approximate outcomes carry their error-bar floats as raw IEEE-754
    bits on the wire, so a cached re-query decodes bit-identically to
    the first answer. *)
type outcome =
  | Table of Analytical_dse.table
  | Optimal of Optimizer.t
  | Approx_table of Approx_dse.table
  | Approx_optimal of Approx_dse.optimal

type result_payload = { outcome : outcome; cache_hit : bool }

type response =
  | Result of result_payload
  | Server_error of Dse_error.t
  | Stats_reply of server_stats
  | Pong
  | Health_reply of health
  | Replicate_ack of { stored : int }
      (** how many pushed records were decoded and stored *)
  | Cache_reply of { keys : Result_cache.key list; records : string list }
      (** digest form: every exact cache key, [records = []]; fetch
          form: the WAL-encoded records found, [keys = []] *)
  | Ring_reply of { config : ring_config; draining : bool; pushed : int }
      (** the receiver's current fleet view, answering every membership
          verb. [pushed] is only meaningful for [Drain]: how many warm
          records the post-drain owners accepted. *)

(** [method_tag m] is the stable wire tag of an exact kernel method (0 =
    streaming, 1 = dfs, 2 = bcat, 3 = arena) — also the cache-key
    component. *)
val method_tag : Analytical.method_ -> int

(** [method_spec_tag s] extends {!method_tag} with 4 = approx — the
    Submit method byte and the approx entries' cache-key component. *)
val method_spec_tag : method_spec -> int

(** The trace's content identity, however the submission was decoded —
    a sketched stream fingerprints identically to the materialised
    trace ({!Sketch.profile.fingerprint} = {!Trace.fingerprint}). *)
val submission_fingerprint : submission -> int64

(** Reference count of the submission ([Trace.length], or the sketch's
    stream length). *)
val submission_refs : submission -> int

(** Largest accepted frame payload, in bytes. *)
val max_payload : int

(** [write_request ?peer fd r] / [read_request ?peer fd]: one frame.
    [peer] labels errors (defaults: ["<server>"] when writing,
    ["<client>"] when reading). *)
val write_request : ?peer:string -> Unix.file_descr -> request -> (unit, Dse_error.t) result

(** [Ok None] means the peer closed the connection without sending a
    byte — a liveness probe (the socket-claim check, monitoring), not a
    defect; the daemon closes silently instead of logging or replying.
    Any bytes at all followed by a close is still [Corrupt_binary].

    [max_job_refs] / [memory_budget] (bytes) arm admission control: a
    [Submit] whose {e declared} reference count exceeds [max_job_refs],
    or whose {!Trace.estimate_bytes} exceeds [memory_budget], is
    rejected as [Error (Resource_exhausted _)] before the trace is
    decoded or allocated — the declared count is judged while it is
    still a varint. The estimate is priced per kernel family (the
    method field precedes the trace on the wire): arena jobs use the
    [`Arena] model, the boxed methods the [`Boxed] one — so under one
    [--memory-budget] the daemon admits arena jobs nearly 3x larger —
    and approx jobs the [`Sketch] model, whose price is a fixed few MiB
    independent of the declared length.

    [sketch_approx] (default false) selects the daemon's decode for
    [Approx] submissions: when set, the record stream is fed straight
    into a streaming sketch and the request carries a [Sketched]
    profile — no [Trace.t] is ever allocated, honouring the [`Sketch]
    admission price. When unset (the router, tests), approx submissions
    materialise like any other so the frame can be re-encoded
    downstream. *)
val read_request :
  ?peer:string ->
  ?max_job_refs:int ->
  ?memory_budget:int ->
  ?sketch_approx:bool ->
  Unix.file_descr ->
  (request option, Dse_error.t) result

val write_response : ?peer:string -> Unix.file_descr -> response -> (unit, Dse_error.t) result

val read_response : ?peer:string -> Unix.file_descr -> (response, Dse_error.t) result

(** [timed_out e] recognises the typed error produced when a socket
    receive/send timeout (SO_RCVTIMEO / SO_SNDTIMEO) expired mid-frame
    — the daemon logs and closes such connections without attempting a
    reply (which would itself block for the send timeout). *)
val timed_out : Dse_error.t -> bool

(** [answer_entry ~name ~query ~max_level entry] derives the response
    outcome for a query from a cached result entry — straight from the
    histograms for an exact entry, by re-running the deterministic
    estimator for an approx one. Whoever holds the entry (the computing
    daemon, a ring successor's replica, the router relaying a peer's
    copy) derives a bit-identical outcome, which is what makes
    replicated entries interchangeable with originals. *)
val answer_entry :
  name:string -> query:query -> max_level:int option -> Result_cache.entry -> outcome
