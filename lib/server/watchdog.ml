type 'job stalled = { slot : int; job : 'job; elapsed : float; silent_for : float }

(* Scanning is cheap (a snapshot walk and one clock read), so the accept
   loop can afford it on every 0.1 s select tick. Replacement goes
   through [Worker_pool.replace ~expected], which re-checks under the
   pool lock that the worker is still on the very job this scan saw —
   a worker that finished between snapshot and replace is left alone. *)
let scan pool ~hang_timeout =
  if not (hang_timeout > 0.) then invalid_arg "Watchdog.scan: hang_timeout must be positive";
  let now = Unix.gettimeofday () in
  List.filter_map
    (fun (v : _ Worker_pool.view) ->
      match v.Worker_pool.running with
      | Some r when Heartbeat.age ~now r.Worker_pool.heartbeat > hang_timeout ->
        if Worker_pool.replace pool v.Worker_pool.handle ~expected:r then
          Some
            {
              slot = v.Worker_pool.slot;
              job = r.Worker_pool.job;
              elapsed = now -. r.Worker_pool.started;
              silent_for = Heartbeat.age ~now r.Worker_pool.heartbeat;
            }
        else None
      | _ -> None)
    (Worker_pool.snapshot pool)
