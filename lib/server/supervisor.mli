(** Crash-loop supervisor for [dse serve --supervise].

    Runs the daemon as a forked child and respawns it on abnormal exit
    (non-zero code or a fatal signal — the [kill -9] the in-process
    watchdog cannot defend against). Respawn delay grows exponentially
    from [backoff_base], capped at [backoff_cap]; crashes further apart
    than [rapid_window] seconds reset the strike counter, and more than
    [max_rapid_crashes] rapid crashes make the supervisor give up with
    exit 1 instead of looping a doomed configuration forever.

    Composes with the WAL: each respawned daemon replays its result log
    on startup, so supervision turns a crash into a short warm-restart
    gap rather than a cold cache.

    SIGTERM/SIGINT at the supervisor are forwarded to the child and
    disable respawning (the child's own drain handler runs); the child
    resets both signals to their defaults before the daemon installs its
    handlers. [run] must be called before any domain is spawned in this
    process — it forks. *)

(** [run ?max_rapid_crashes ?rapid_window ?backoff_base ?backoff_cap
    ?log child] supervises [child] until it exits cleanly (returns, or
    a crash during operator shutdown) — result 0 — or crashes
    [max_rapid_crashes]+1 times within rolling [rapid_window]-second
    spans — result 1. The result is the supervisor's process exit code.
    In the child, [child ()]'s return and exceptions are mapped to exit
    codes exactly as the CLI maps them ({!Dse_error.exit_code}).

    Defaults: 5 rapid crashes, 30 s window, 0.5 s base, 30 s cap, [log]
    to stderr. Raises [Invalid_argument] on a non-positive window/base
    or [max_rapid_crashes < 1]. *)
val run :
  ?max_rapid_crashes:int ->
  ?rapid_window:float ->
  ?backoff_base:float ->
  ?backoff_cap:float ->
  ?log:(string -> unit) ->
  (unit -> unit) ->
  int
