type t = { domains : unit Domain.t list }

let start ~workers ~run queue =
  if workers < 1 then invalid_arg "Worker_pool.start: workers must be >= 1";
  let worker () =
    let rec loop () =
      match Job_queue.pop queue with
      | None -> ()
      | Some job ->
        (* [run] replies to its own client on failure; this guard only
           keeps a worker alive if [run] itself escapes. *)
        (try run job
         with e -> Dse_error.degraded (Printf.sprintf "worker: %s" (Printexc.to_string e)));
        loop ()
    in
    loop ()
  in
  { domains = List.init workers (fun _ -> Domain.spawn worker) }

let join t = List.iter Domain.join t.domains
