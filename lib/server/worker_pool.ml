type 'job running = { job : 'job; heartbeat : Heartbeat.t; started : float }

(* One incarnation of a worker slot. [state]/[abandoned] are atomics
   because the worker domain writes them while the watchdog (accept
   loop) reads them; everything structural — the live list, the domain
   handles — is guarded by the pool mutex. *)
type 'job handle = {
  slot : int;
  abandoned : bool Atomic.t;
  state : 'job running option Atomic.t;
  jobs_done : int Atomic.t;
  mutable domain : unit Domain.t option;
}

type 'job view = { slot : int; running : 'job running option; jobs_done : int; handle : 'job handle }

type 'job t = {
  queue : 'job Job_queue.t;
  run : heartbeat:Heartbeat.t -> 'job -> unit;
  mutex : Mutex.t;
  mutable live : 'job handle list;
  replaced : int Atomic.t;
}

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let worker_loop pool w =
  let rec loop () =
    match Job_queue.pop pool.queue with
    | None -> ()
    | Some job ->
      let heartbeat = Heartbeat.create () in
      Atomic.set w.state (Some { job; heartbeat; started = Heartbeat.last heartbeat });
      (* [run] replies to its own client on failure; this guard only
         keeps a worker alive if [run] itself escapes. *)
      (try pool.run ~heartbeat job
       with e ->
         Dse_error.degraded (Printf.sprintf "worker %d: %s" w.slot (Printexc.to_string e)));
      Atomic.set w.state None;
      Atomic.incr w.jobs_done;
      (* An abandoned worker that turned out to be slow rather than
         wedged finishes the job it owns (the reply path deduplicates
         against the watchdog's), then exits instead of competing with
         its replacement for the queue. *)
      if not (Atomic.get w.abandoned) then loop ()
  in
  loop ()

let spawn_locked pool slot =
  let w =
    {
      slot;
      abandoned = Atomic.make false;
      state = Atomic.make None;
      jobs_done = Atomic.make 0;
      domain = None;
    }
  in
  w.domain <- Some (Domain.spawn (fun () -> worker_loop pool w));
  w

let start ~workers ~run queue =
  if workers < 1 then invalid_arg "Worker_pool.start: workers must be >= 1";
  let pool = { queue; run; mutex = Mutex.create (); live = []; replaced = Atomic.make 0 } in
  with_lock pool (fun () ->
      pool.live <- List.init workers (fun slot -> spawn_locked pool slot));
  pool

let view_of (w : _ handle) =
  { slot = w.slot; running = Atomic.get w.state; jobs_done = Atomic.get w.jobs_done; handle = w }

let snapshot t =
  with_lock t (fun () ->
      t.live |> List.map view_of
      |> List.sort (fun (a : _ view) (b : _ view) -> compare a.slot b.slot))

let replace t handle ~expected =
  with_lock t (fun () ->
      let still_live = List.memq handle t.live in
      let still_on_job =
        match Atomic.get handle.state with Some r -> r == expected | None -> false
      in
      if not (still_live && still_on_job) then false
      else begin
        (* Order matters: mark the incarnation abandoned before its
           replacement exists, so at no point can two live workers race
           for the same slot's identity. The wedged domain is never
           joined — OCaml domains cannot be killed, so it is leaked and
           its eventual reply (if it ever unwedges) loses the job's
           settled race. *)
        Atomic.set handle.abandoned true;
        t.live <- spawn_locked t handle.slot :: List.filter (fun w -> w != handle) t.live;
        Atomic.incr t.replaced;
        true
      end)

let replaced t = Atomic.get t.replaced

let join t =
  let live = with_lock t (fun () -> t.live) in
  List.iter
    (fun w -> match w.domain with Some d -> Domain.join d | None -> ())
    live
