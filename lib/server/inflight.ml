type waiter = { fd : Unix.file_descr; name : string; query : Protocol.query }

type t = {
  mutex : Mutex.t;
  flights : (Result_cache.key, waiter list ref) Hashtbl.t;
  mutable coalesced : int;
}

let create () = { mutex = Mutex.create (); flights = Hashtbl.create 16; coalesced = 0 }

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let begin_ t key waiter =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.flights key with
      | None ->
        Hashtbl.replace t.flights key (ref []);
        `Leader
      | Some waiters ->
        waiters := waiter :: !waiters;
        t.coalesced <- t.coalesced + 1;
        `Attached)

let complete t key =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.flights key with
      | None -> []
      | Some waiters ->
        Hashtbl.remove t.flights key;
        List.rev !waiters)

let coalesced t = with_lock t (fun () -> t.coalesced)
