(* Per-backend circuit breaker.

   Closed is the healthy steady state. [failure_threshold] consecutive
   failures (connect refused, request timeout, stale health) trip it
   Open: the router stops sending that node traffic and reroutes its
   hash range, so a dead backend costs one failed attempt per key at
   most once — not a connect timeout per request. After a cooldown the
   next [acquire] transitions to Half_open and admits exactly one probe
   request; the probe's outcome either closes the breaker or re-opens
   it with the cooldown doubled (exponential backoff, capped), so a
   backend that stays dead is probed ever more lazily while a recovered
   one is readmitted within one cooldown.

   All transitions run under the mutex: the accept loop (health polls)
   and every forwarder domain feed the same breaker. *)

type state = Closed | Open | Half_open

type config = {
  failure_threshold : int;
  cooldown_base : float;
  cooldown_cap : float;
}

let default_config = { failure_threshold = 3; cooldown_base = 0.5; cooldown_cap = 10. }

type t = {
  config : config;
  mu : Mutex.t;
  mutable state : state;
  mutable failures : int;  (* consecutive, while Closed *)
  mutable opened_at : float;
  mutable open_streak : int;  (* opens since the last success: backoff exponent *)
}

let validate config =
  if config.failure_threshold < 1 then
    invalid_arg "Breaker: failure_threshold must be >= 1";
  if not (config.cooldown_base > 0.) then invalid_arg "Breaker: cooldown_base must be > 0";
  if config.cooldown_cap < config.cooldown_base then
    invalid_arg "Breaker: cooldown_cap must be >= cooldown_base"

let create ?(config = default_config) () =
  validate config;
  { config; mu = Mutex.create (); state = Closed; failures = 0; opened_at = 0.; open_streak = 0 }

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let state t = locked t (fun () -> t.state)

let cooldown t =
  locked t (fun () ->
      if t.open_streak = 0 then t.config.cooldown_base
      else
        Float.min t.config.cooldown_cap
          (t.config.cooldown_base *. (2. ** float_of_int (t.open_streak - 1))))

let cooldown_unlocked t =
  if t.open_streak = 0 then t.config.cooldown_base
  else
    Float.min t.config.cooldown_cap
      (t.config.cooldown_base *. (2. ** float_of_int (t.open_streak - 1)))

(* May this caller send a request? Closed admits everyone; Open admits
   nobody until the cooldown elapses, at which point the first caller
   flips the breaker Half_open and becomes its single probe; Half_open
   admits nobody else until that probe settles. The caller that was
   admitted must report the outcome via [record_success] or
   [record_failure]. *)
let acquire t ~now =
  locked t (fun () ->
      match t.state with
      | Closed -> true
      | Half_open -> false
      | Open ->
        if now -. t.opened_at >= cooldown_unlocked t then begin
          t.state <- Half_open;
          true
        end
        else false)

let record_success t =
  locked t (fun () ->
      t.state <- Closed;
      t.failures <- 0;
      t.open_streak <- 0)

let trip t ~now =
  t.state <- Open;
  t.opened_at <- now;
  t.failures <- 0;
  t.open_streak <- t.open_streak + 1

let record_failure t ~now =
  locked t (fun () ->
      match t.state with
      | Closed ->
        t.failures <- t.failures + 1;
        if t.failures >= t.config.failure_threshold then trip t ~now
      | Half_open ->
        (* the probe failed: back to Open with the next-longer cooldown *)
        trip t ~now
      | Open ->
        (* a request that was already in flight when the breaker tripped;
           nothing new to learn, and extending [opened_at] would let a
           stream of stragglers postpone the probe forever *)
        ())

(* A respawned backend (new start epoch in its health reply) carries
   none of its predecessor's guilt: probe it immediately. *)
let reset t =
  locked t (fun () ->
      t.state <- Closed;
      t.failures <- 0;
      t.opened_at <- 0.;
      t.open_streak <- 0)

let state_name = function Closed -> "closed" | Open -> "open" | Half_open -> "half-open"
