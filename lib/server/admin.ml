(* The fleet-membership control plane behind [dse route --admin] and
   the [dse chaos] harness.

   Every operation is a pure client of the wire protocol: read the
   freshest ring config from the contactable fleet (Ring_status), derive
   the next config (one version bump per change), and push it
   (Ring_update / Drain) in the order that keeps warm state safe:

   - join:  the newcomer first (so its anti-entropy pulls its range
            under the new ring while it already serves), then the
            incumbents, then the gateway — routing moves last, so no
            request is routed at a node that would still fence it.
   - drain: the survivors first (so the leaver's fenced handoff pushes
            are accepted), then Drain to the leaver (which sheds new
            work, settles, pushes every warm record to the post-drain
            owners and adopts the config that excludes itself), then
            the gateway — the drained node keeps answering cache hits
            until routing moves off it.
   - leave: survivors then gateway only — the node is presumed dead and
            is not contacted; its warm range is recovered from replicas
            by anti-entropy, not handoff.

   A push failure to one target is reported, not fatal: the epoch fence
   heals stragglers — their next cross-node exchange answers Stale_ring
   and triggers a config refetch. *)

let status_timeout = 5.0

(* A drain settles in-flight jobs (up to the daemon's 30 s bound) and
   then pushes its whole warm set; give it room. *)
let drain_timeout = 120.0

let exchange ?(timeout = status_timeout) target request =
  match Transport.connect ~timeout:2.0 (Transport.parse target) with
  | Error _ as e -> e
  | Ok fd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        match
          Unix.setsockopt_float fd Unix.SO_SNDTIMEO timeout;
          Unix.setsockopt_float fd Unix.SO_RCVTIMEO timeout;
          Protocol.write_request ~peer:target fd request
        with
        | Error _ as e -> e
        | Ok () -> Protocol.read_response ~peer:target fd
        | exception Unix.Unix_error (err, _, _) ->
          Error (Dse_error.Io_error { file = target; message = Unix.error_message err }))

let invalid message = Error (Dse_error.Constraint_violation { context = "admin"; message })

let ring_status target =
  match exchange target Protocol.Ring_status with
  | Error _ as e -> e
  | Ok (Protocol.Ring_reply { config; draining; pushed }) -> Ok (config, draining, pushed)
  | Ok (Protocol.Server_error e) -> Error e
  | Ok _ -> invalid (Printf.sprintf "%s sent an unexpected reply to ring-status" target)

(* The freshest fleet view among the contacts — ties broken by contact
   order. Only fails when no contact answered at all. *)
let fetch_config contacts =
  if contacts = [] then invalid "at least one contact address is required"
  else
    let best, last_error =
      List.fold_left
        (fun (best, _last) target ->
          match ring_status target with
          | Ok (config, _, _) -> (
            match best with
            | Some (b : Protocol.ring_config) when b.ring_version >= config.ring_version ->
              (best, None)
            | _ -> (Some config, None))
          | Error e -> (best, Some e))
        (None, None) contacts
    in
    match (best, last_error) with
    | Some config, _ -> Ok config
    | None, Some e -> Error e
    | None, None -> invalid "at least one contact address is required"

(* Push [config] to every target; the failed ones come back labelled.
   The fence turns any straggler into a self-healing problem. *)
let push_config (config : Protocol.ring_config) targets =
  List.filter_map
    (fun target ->
      match exchange target (Protocol.Ring_update { config }) with
      | Ok (Protocol.Ring_reply _) -> None
      | Ok (Protocol.Server_error e) -> Some (target, e)
      | Ok _ ->
        Some
          ( target,
            Dse_error.Constraint_violation
              { context = "admin"; message = "unexpected reply to ring-update" } )
      | Error e -> Some (target, e))
    targets

let with_gateway gateway targets =
  match gateway with None -> targets | Some g -> targets @ [ g ]

let join ?gateway ~contacts node =
  match fetch_config contacts with
  | Error _ as e -> e
  | Ok current ->
    if List.mem node current.nodes then
      invalid (Printf.sprintf "%s is already a ring member (v%d)" node current.ring_version)
    else
      let next =
        {
          Protocol.ring_version = current.ring_version + 1;
          nodes = current.nodes @ [ node ];
          replication = current.replication;
        }
      in
      (* newcomer first: it must know the ring before traffic arrives *)
      let failed = push_config next (with_gateway gateway (node :: current.nodes)) in
      Ok (next, failed)

let drain ?gateway ~contacts node =
  match fetch_config contacts with
  | Error _ as e -> e
  | Ok current ->
    if not (List.mem node current.nodes) then
      invalid (Printf.sprintf "%s is not a ring member (v%d)" node current.ring_version)
    else if List.length current.nodes < 2 then
      invalid "cannot drain the last ring member"
    else
      let survivors = List.filter (fun n -> n <> node) current.nodes in
      let next =
        {
          Protocol.ring_version = current.ring_version + 1;
          nodes = survivors;
          replication = current.replication;
        }
      in
      (* survivors first, so the leaver's fenced handoff is accepted *)
      let failed = push_config next survivors in
      let handoff = exchange ~timeout:drain_timeout node (Protocol.Drain { config = next }) in
      let failed =
        failed
        @
        match gateway with
        | None -> []
        | Some g -> push_config next [ g ] (* routing moves off the leaver last *)
      in
      (match handoff with
      | Ok (Protocol.Ring_reply { pushed; _ }) -> Ok (next, pushed, failed)
      | Ok (Protocol.Server_error e) -> Error e
      | Ok _ -> invalid (Printf.sprintf "%s sent an unexpected reply to drain" node)
      | Error e -> Error e)

let leave ?gateway ~contacts node =
  match fetch_config contacts with
  | Error _ as e -> e
  | Ok current ->
    if not (List.mem node current.nodes) then
      invalid (Printf.sprintf "%s is not a ring member (v%d)" node current.ring_version)
    else if List.length current.nodes < 2 then
      invalid "cannot remove the last ring member"
    else
      let survivors = List.filter (fun n -> n <> node) current.nodes in
      let next =
        {
          Protocol.ring_version = current.ring_version + 1;
          nodes = survivors;
          replication = current.replication;
        }
      in
      Ok (next, push_config next (with_gateway gateway survivors))

let set_replication ?gateway ~contacts replication =
  if replication < 1 then invalid "replication must be >= 1"
  else
    match fetch_config contacts with
    | Error _ as e -> e
    | Ok current ->
      if current.replication = replication then
        invalid (Printf.sprintf "replication is already %d (v%d)" replication current.ring_version)
      else
        let next =
          { current with Protocol.ring_version = current.ring_version + 1; replication }
        in
        Ok (next, push_config next (with_gateway gateway current.nodes))
