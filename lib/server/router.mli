(** The [dse route] gateway: fault-tolerant fingerprint routing across
    a fleet of [dse serve] backends.

    Submissions are consistent-hashed on {!Trace.fingerprint}
    ({!Ring}), so each trace's results concentrate on one backend's
    result cache and the fleet's caches compose instead of overlapping.
    Clients speak the ordinary protocol to the router ([dse submit
    --addr]); the router speaks it onward.

    The robustness plane:

    - {b Health polling.} The accept loop's 0.1 s select tick polls one
      backend per slice of [health_interval], refreshing node identity
      and feeding the breakers — so liveness is known before a client
      pays for the discovery.
    - {b Circuit breakers.} One {!Breaker} per backend: consecutive
      connect/timeout failures trip it open, that node's hash range
      reroutes to the next live ring candidate, and a half-open probe
      with exponential backoff readmits it. A health reply showing a
      new start epoch resets the breaker — a respawn owes nothing for
      its predecessor's failures (but its cache is presumed cold).
    - {b Hedged requests.} A submission silent past the hedge threshold
      ([Fixed] seconds, or [Adaptive]: 3x the rolling p99 of {e that
      backend's} forwarded latencies, clamped to [0.05, 10] s) is
      duplicated to the next live candidate; the first answer wins and
      the loser's connection is closed. Jobs are pure, so duplicate
      execution is safe. A respawn clears its backend's latency window
      along with the breaker — stale pre-crash samples must not size
      the new process's threshold.
    - {b Peer cache lookup.} Once a submission's ring walk has passed a
      dead or breaker-open node, each further candidate is first asked
      ({!Protocol.Cache_query}) whether it already holds the result —
      with replication enabled on the backends the dead owner's warm
      range lives on exactly these successors, and a hit is relayed
      with zero kernel work (counted as [peer_hits]).
    - {b Least-loaded spill.} With [spill_threshold] set, a submission
      whose owner's health-polled queue-depth/worker ratio exceeds the
      threshold is routed to the least-loaded live candidate instead
      (counted as [spilled]) — cache locality traded for latency under
      load, and replication pushes the result back to the owner's
      range regardless.
    - {b Typed exhaustion.} Only when every ring candidate has failed
      or stands breaker-open does the client see
      {!Dse_error.Backend_unavailable} (exit 9) — with one exception:
      if some backend answered [Queue_full], that retryable refusal is
      relayed instead, because a loaded fleet is not a dead one.

    Structured job errors (corrupt trace, deadline expiry, admission
    rejection, a stalled worker) are relayed verbatim: they are
    properties of the job and would reproduce on any node. [Ping] is
    answered locally; [Server_stats]/[Health] are forwarded to the
    first live backend in configuration order. *)

type hedge = Fixed of float  (** hedge after this many seconds *) | Adaptive

type config = {
  listen : string;  (** router address, {!Transport.parse} grammar *)
  backends : string list;  (** backend addresses; also their ring names *)
  replicas : int;  (** ring virtual nodes per backend *)
  forwarders : int;  (** forwarder domains = max concurrent requests *)
  max_pending : int;  (** accepted-connection queue bound *)
  connect_timeout : float;
  request_timeout : float;  (** per-attempt silence bound, seconds *)
  hedge : hedge;
  health_interval : float;  (** seconds between polls of one backend *)
  health_timeout : float;
  breaker : Breaker.config;
  spill_threshold : float option;
      (** spill a submission off its owner when the owner's last-polled
          queue-depth/worker ratio exceeds this; [None] disables *)
}

(** Empty listen/backends (caller must fill), 64 replicas,
    8 forwarders, 64 pending, 2 s connect, 120 s request, adaptive
    hedging, 1 s health interval, default breaker, no spill. *)
val default_config : config

type t

(** Per-backend state as sampled by {!snapshot}. *)
type backend_view = {
  backend : string;
  state : Breaker.state;
  id : string;  (** node id from its last health reply; [""] before one *)
  epoch : float;  (** its start epoch; [0.] before one *)
  seen : float;  (** time of the last successful health exchange *)
  queue : int;  (** queue depth from its last health reply *)
  workers : int;  (** worker count from its last health reply *)
  hedge_samples : int;
      (** latency samples in its hedge window (0 right after a respawn) *)
}

type stats = {
  forwarded : int;  (** client requests forwarded (not counting hedges) *)
  failovers : int;  (** attempts beyond the first for any request *)
  hedged : int;  (** hedge duplicates fired *)
  hedge_wins : int;  (** races won by the hedge *)
  rejected : int;  (** connections refused by the bounded queue *)
  unavailable : int;  (** requests that exhausted the whole ring *)
  peer_hits : int;  (** degraded-walk submissions answered from a peer's cache *)
  spilled : int;  (** submissions rerouted off a loaded owner *)
}

(** [create ?log config] binds the listen address and builds the ring;
    backends are not contacted yet (the health poll discovers them).
    Typed errors for bad config ([Constraint_violation]) and bind
    failures ([Io_error]). *)
val create : ?log:(string -> unit) -> config -> (t, Dse_error.t) result

(** [run t] serves until {!stop}, then drains queued connections. Runs
    in the calling domain. *)
val run : t -> unit

val stop : t -> unit

val install_signal_handlers : t -> unit

val stats : t -> stats

val snapshot : t -> backend_view list

(** The bound listen address (echoed from config). *)
val listen_address : t -> string
