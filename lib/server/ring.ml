(* Consistent-hash ring over backend node names.

   Each node contributes [replicas] virtual points (FNV-1a-64 of
   "name#i") on a 64-bit circle; a trace fingerprint is placed by
   re-hashing its bytes through the same FNV and owned by the first
   point clockwise. Virtual points serve two ends: load spreads evenly
   (the per-node share concentrates around 1/N as replicas grow), and a
   node's departure scatters its keys across all survivors instead of
   dumping them on one neighbour. Keys never move between surviving
   nodes on a join or leave — that is the property that keeps N-1
   result caches warm when the Nth daemon dies. *)

type t = {
  nodes : string array;
  (* ascending by unsigned point; snd indexes [nodes] *)
  points : (int64 * int) array;
}

let fnv_offset = 0xcbf29ce484222325L

let fnv_prime = 0x100000001b3L

let fnv_fold h byte =
  Int64.mul (Int64.logxor h (Int64.of_int byte)) fnv_prime

(* FNV of a short string concentrates its entropy in the low bits (each
   byte enters through a multiply), but ring placement is decided by
   the *unsigned order* of points — i.e. by the high bits. Without a
   finalizer, the virtual points of similar names ("n0#7" vs "n4#7")
   cluster and per-node arcs are wildly uneven (a 5th node was observed
   taking ~60% of the key space instead of ~20%). The splitmix64
   avalanche spreads the entropy over all 64 bits. *)
let avalanche h =
  let h = Int64.logxor h (Int64.shift_right_logical h 33) in
  let h = Int64.mul h 0xff51afd7ed558ccdL in
  let h = Int64.logxor h (Int64.shift_right_logical h 33) in
  let h = Int64.mul h 0xc4ceb9fe1a85ec53L in
  Int64.logxor h (Int64.shift_right_logical h 33)

let fnv_string s =
  avalanche (String.fold_left (fun h c -> fnv_fold h (Char.code c)) fnv_offset s)

(* Fingerprints are themselves FNV outputs; folding their bytes through
   a fresh FNV (plus the same finalizer) decorrelates key placement
   from whatever structure the fingerprint space has. *)
let hash_key fp =
  let h = ref fnv_offset in
  for i = 0 to 7 do
    h := fnv_fold !h (Int64.to_int (Int64.shift_right_logical fp (8 * i)) land 0xFF)
  done;
  avalanche !h

let create ?(replicas = 64) nodes =
  if nodes = [] then invalid_arg "Ring.create: at least one node";
  if replicas < 1 then invalid_arg "Ring.create: replicas must be >= 1";
  let distinct = List.sort_uniq String.compare nodes in
  if List.length distinct <> List.length nodes then
    invalid_arg "Ring.create: duplicate node name";
  let nodes = Array.of_list nodes in
  let points =
    Array.init
      (Array.length nodes * replicas)
      (fun k ->
        let node = k / replicas and replica = k mod replicas in
        (fnv_string (Printf.sprintf "%s#%d" nodes.(node) replica), node))
  in
  Array.sort (fun (a, _) (b, _) -> Int64.unsigned_compare a b) points;
  { nodes; points }

let nodes t = Array.to_list t.nodes

(* First point clockwise from [key] (wrapping), as an index into
   [points]. *)
let successor_index t key =
  let n = Array.length t.points in
  (* binary search for the leftmost point >= key *)
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Int64.unsigned_compare (fst t.points.(mid)) key < 0 then lo := mid + 1 else hi := mid
  done;
  if !lo = n then 0 else !lo

let route t fingerprint =
  t.nodes.(snd t.points.(successor_index t (hash_key fingerprint)))

(* Distinct nodes in clockwise order from the key's owner: the failover
   candidate list. Walking the point array (rather than hashing again)
   means every caller agrees on the fallback for a given key, so a
   rerouted fingerprint lands in one deterministic spill cache. *)
let successors t fingerprint =
  let n = Array.length t.points in
  let total = Array.length t.nodes in
  let seen = Array.make total false in
  let start = successor_index t (hash_key fingerprint) in
  let order = ref [] in
  let found = ref 0 in
  let k = ref 0 in
  while !found < total && !k < n do
    let node = snd t.points.((start + !k) mod n) in
    if not seen.(node) then begin
      seen.(node) <- true;
      order := t.nodes.(node) :: !order;
      incr found
    end;
    incr k
  done;
  List.rev !order

(* The distinct nodes owning points adjacent (either side) to [name]'s
   virtual points — the peers whose replica ranges border this node's
   arcs, i.e. where copies of the keys this node participates in live.
   With the default 64 points per node this is effectively every other
   node on a small fleet and a bounded neighbourhood on a large one.
   Deterministic (a scan of the sorted point array), so a rejoining
   node always asks the same peers. *)
let neighbors t name =
  let target =
    let found = ref (-1) in
    Array.iteri (fun i node -> if node = name then found := i) t.nodes;
    if !found < 0 then invalid_arg "Ring.neighbors: unknown node";
    !found
  in
  let n = Array.length t.points in
  let seen = Array.make (Array.length t.nodes) false in
  seen.(target) <- true;
  let order = ref [] in
  (* first distinct node walking from point [start] by [step] (+1 /
     -1), skipping the target's own contiguous run of points *)
  let first_other start step =
    let rec go j remaining =
      if remaining = 0 then None
      else
        let node = snd t.points.(((j mod n) + n) mod n) in
        if node = target then go (j + step) (remaining - 1) else Some node
    in
    go start n
  in
  let note = function
    | Some node when not seen.(node) ->
      seen.(node) <- true;
      order := t.nodes.(node) :: !order
    | _ -> ()
  in
  for k = 0 to n - 1 do
    if snd t.points.(k) = target then begin
      note (first_other (k + 1) 1);
      note (first_other (k - 1) (-1))
    end
  done;
  List.rev !order
