(** Per-backend circuit breaker for the routing gateway.

    Tracks one backend's recent failures so the router stops paying
    connect timeouts for a node known to be down: [failure_threshold]
    consecutive failures trip the breaker open and the node's hash
    range reroutes to the next ring candidate; after an exponentially
    backed-off cooldown a single half-open probe decides between
    readmission and another (longer) open period.

    Thread-safe: the router's accept loop (health polls) and all
    forwarder domains feed the same instance. *)

type state = Closed | Open | Half_open

type config = {
  failure_threshold : int;  (** consecutive failures that trip Closed → Open *)
  cooldown_base : float;  (** first open period, seconds *)
  cooldown_cap : float;  (** backoff ceiling, seconds *)
}

(** threshold 3, cooldown 0.5 s doubling to a 10 s cap *)
val default_config : config

type t

(** Raises [Invalid_argument] on a non-positive threshold or cooldown,
    or a cap below the base. *)
val create : ?config:config -> unit -> t

(** [acquire t ~now] asks permission to send one request. [Closed]
    admits everyone; [Open] admits nobody until the cooldown elapses,
    when the first caller flips it [Half_open] and becomes the single
    probe; [Half_open] admits no one else until the probe settles. An
    admitted caller must report back via {!record_success} or
    {!record_failure}. *)
val acquire : t -> now:float -> bool

(** Any successful exchange: back to [Closed], counters cleared. *)
val record_success : t -> unit

(** A connect/timeout/transport failure at time [now]. In [Closed],
    counts toward the threshold; in [Half_open], re-opens with the
    cooldown doubled (up to the cap); in [Open], ignored (stragglers
    must not postpone the probe). *)
val record_failure : t -> now:float -> unit

(** Forgive everything — used when the backend's health reply shows a
    new start epoch (a respawn is a different process, not the one
    that failed). *)
val reset : t -> unit

val state : t -> state

(** The current open-period length (seconds), reflecting the backoff. *)
val cooldown : t -> float

val state_name : state -> string
