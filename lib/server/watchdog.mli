(** Heartbeat watchdog over a {!Worker_pool}.

    A worker that stops reaching its cancellation poll points — an
    infinite loop in a pathological input, a deterministic kernel bug,
    an injected [DSE_FAULT=hang:K] — stops beating its heartbeat. The
    watchdog turns that silence into recovery: {!scan} finds every busy
    worker whose heartbeat is older than the hang timeout, replaces it
    (fresh domain, same slot; the wedged one is abandoned) and reports
    the stalled jobs so the server can answer their clients with
    {!Dse_error.Worker_stalled} and cancel the job's token (an abandoned
    worker that was merely slow aborts at its next poll instead of
    burning a core).

    The server runs {!scan} from the accept loop's 0.1 s select tick, so
    detection latency is bounded by [hang_timeout] + one tick. *)

type 'job stalled = {
  slot : int;  (** The slot whose incarnation was replaced. *)
  job : 'job;  (** The job the wedged worker was running. *)
  elapsed : float;  (** Seconds since the worker picked the job up. *)
  silent_for : float;  (** Seconds since the last heartbeat — what tripped the timeout. *)
}

(** [scan pool ~hang_timeout] replaces every worker silent for more than
    [hang_timeout] seconds and returns what each was running. Workers
    that finished (or were already replaced) between observation and
    replacement are skipped — {!Worker_pool.replace} re-validates under
    the pool lock, so a healthy worker is never shot. Raises
    [Invalid_argument] when [hang_timeout <= 0]. *)
val scan : 'job Worker_pool.t -> hang_timeout:float -> 'job stalled list
