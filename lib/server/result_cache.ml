type key = { fingerprint : int64; method_tag : int; domains : int; max_level : int }

type entry = { stats : Stats.t; histograms : int array array }

type counters = { hits : int; misses : int; entries : int }

type t = {
  table : (key, entry) Hashtbl.t;
  mutex : Mutex.t;
  mutable hits : int;
  mutable misses : int;
}

let create () = { table = Hashtbl.create 64; mutex = Mutex.create (); hits = 0; misses = 0 }

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let find t key =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.table key with
      | Some _ as hit ->
        t.hits <- t.hits + 1;
        hit
      | None ->
        t.misses <- t.misses + 1;
        None)

let store t key entry = with_lock t (fun () -> Hashtbl.replace t.table key entry)

let counters t =
  with_lock t (fun () -> { hits = t.hits; misses = t.misses; entries = Hashtbl.length t.table })
