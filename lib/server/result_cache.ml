type key = { fingerprint : int64; method_tag : int; domains : int; max_level : int }

type entry =
  | Exact of { stats : Stats.t; histograms : int array array }
  | Approx of Sketch.profile

type counters = { hits : int; misses : int; entries : int; evictions : int }

type node = { entry : entry; mutable last_used : int }

type t = {
  table : (key, node) Hashtbl.t;
  capacity : int;
  mutex : Mutex.t;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let default_capacity = 256

let create ?(capacity = default_capacity) () =
  if capacity < 1 then invalid_arg "Result_cache.create: capacity must be >= 1";
  {
    table = Hashtbl.create 64;
    capacity;
    mutex = Mutex.create ();
    tick = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let touch t node =
  t.tick <- t.tick + 1;
  node.last_used <- t.tick

let find t key =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.table key with
      | Some node ->
        t.hits <- t.hits + 1;
        touch t node;
        Some node.entry
      | None ->
        t.misses <- t.misses + 1;
        None)

(* O(entries) scan; entries is bounded by [capacity] (default 256), so
   eviction cost is trivial next to the kernel run that preceded it. *)
let evict_lru t =
  let victim = ref None in
  Hashtbl.iter
    (fun key node ->
      match !victim with
      | Some (_, oldest) when oldest.last_used <= node.last_used -> ()
      | _ -> victim := Some (key, node))
    t.table;
  match !victim with
  | None -> ()
  | Some (key, _) ->
    Hashtbl.remove t.table key;
    t.evictions <- t.evictions + 1

let store t key entry =
  with_lock t (fun () ->
      (match Hashtbl.find_opt t.table key with
      | Some _ -> Hashtbl.remove t.table key
      | None -> ());
      if Hashtbl.length t.table >= t.capacity then evict_lru t;
      let node = { entry; last_used = 0 } in
      touch t node;
      Hashtbl.replace t.table key node)

(* Peek without counting or recency: anti-entropy probes ("do I already
   hold this key?") must not distort the hit/miss counters or the LRU
   order that serving traffic establishes. *)
let mem t key = with_lock t (fun () -> Hashtbl.mem t.table key)

(* Replica GC's drop primitive. Deliberately not counted as an eviction
   (evictions measure capacity pressure); the server counts GC drops in
   its own health-plane counter. *)
let remove t key = with_lock t (fun () -> Hashtbl.remove t.table key)

(* The anti-entropy digest: exact keys only, matching what [Wal.
   encode_record] can carry — approx entries are neither persisted nor
   replicated, so advertising them would only cause futile pulls. *)
let exact_keys t =
  with_lock t (fun () ->
      Hashtbl.fold
        (fun key node acc -> match node.entry with Exact _ -> key :: acc | Approx _ -> acc)
        t.table [])

let snapshot t =
  with_lock t (fun () ->
      Hashtbl.fold (fun key node acc -> (key, node) :: acc) t.table []
      |> List.sort (fun (_, a) (_, b) -> compare a.last_used b.last_used)
      |> List.map (fun (key, node) -> (key, node.entry)))

let capacity t = t.capacity

let counters t =
  with_lock t (fun () ->
      { hits = t.hits; misses = t.misses; entries = Hashtbl.length t.table;
        evictions = t.evictions })
