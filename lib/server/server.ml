type config = { socket_path : string; workers : int; max_pending : int }

type job = {
  fd : Unix.file_descr;
  name : string;
  trace : Trace.t;
  query : Protocol.query;
  method_ : Analytical.method_;
  domains : int;
  max_level : int option;
  key : Result_cache.key;
}

type t = {
  config : config;
  listen_fd : Unix.file_descr;
  queue : job Job_queue.t;
  cache : Result_cache.t;
  stopping : bool Atomic.t;
  jobs_completed : int Atomic.t;
  on_job_start : unit -> unit;
  log : string -> unit;
}

let close_noerr fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* A stale socket file (previous daemon crashed) is unlinked; a live one
   (something accepts connections) is a configuration error. *)
let claim_socket_path path =
  if Sys.file_exists path then begin
    let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let live =
      match Unix.connect probe (Unix.ADDR_UNIX path) with
      | () -> true
      | exception Unix.Unix_error (_, _, _) -> false
    in
    close_noerr probe;
    if live then
      Error (Dse_error.Io_error { file = path; message = "socket already in use by a live server" })
    else begin
      (try Unix.unlink path with Unix.Unix_error (_, _, _) -> ());
      Ok ()
    end
  end
  else Ok ()

let create ?(on_job_start = fun () -> ()) ?(log = fun msg -> Format.eprintf "dse-serve: %s@." msg)
    config =
  if config.workers < 1 then
    Error (Dse_error.Constraint_violation { context = "serve"; message = "workers must be >= 1" })
  else if config.max_pending < 1 then
    Error
      (Dse_error.Constraint_violation { context = "serve"; message = "max-pending must be >= 1" })
  else
    match claim_socket_path config.socket_path with
    | Error _ as e -> e
    | Ok () -> (
      (* a client vanishing mid-reply must be an EPIPE result, not a
         process-killing signal *)
      (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
      let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      match
        Unix.bind listen_fd (Unix.ADDR_UNIX config.socket_path);
        Unix.listen listen_fd 64
      with
      | () ->
        Ok
          {
            config;
            listen_fd;
            queue = Job_queue.create ~max_pending:config.max_pending;
            cache = Result_cache.create ();
            stopping = Atomic.make false;
            jobs_completed = Atomic.make 0;
            on_job_start;
            log;
          }
      | exception Unix.Unix_error (err, _, _) ->
        close_noerr listen_fd;
        Error (Dse_error.Io_error { file = config.socket_path; message = Unix.error_message err }))

let stop t = Atomic.set t.stopping true

let install_signal_handlers t =
  let handler = Sys.Signal_handle (fun _ -> stop t) in
  Sys.set_signal Sys.sigterm handler;
  Sys.set_signal Sys.sigint handler

let answer ~name ~query (entry : Result_cache.entry) =
  match query with
  | Protocol.Percents percents ->
    Protocol.Table
      (Analytical_dse.of_histograms ~percents ~name ~stats:entry.Result_cache.stats
         entry.Result_cache.histograms)
  | Protocol.Budget k -> Protocol.Optimal (Optimizer.of_histograms ~k entry.Result_cache.histograms)

let stats_reply t =
  let c = Result_cache.counters t.cache in
  Protocol.Stats_reply
    {
      Protocol.jobs_completed = Atomic.get t.jobs_completed;
      cache_hits = c.Result_cache.hits;
      cache_misses = c.Result_cache.misses;
      cache_entries = c.Result_cache.entries;
      pending = Job_queue.length t.queue;
      workers = t.config.workers;
    }

let respond_and_close t fd response =
  (match Protocol.write_response fd response with
  | Ok () -> ()
  | Error e -> t.log (Printf.sprintf "reply failed: %s" (Dse_error.to_string e)));
  close_noerr fd

(* Runs in a worker domain. The kernel call goes through the standard
   [Analytical] pipeline, so [domains > 1] jobs get Shard_exec's
   per-shard recovery ladder; every failure becomes a structured reply
   to this job's client and the worker lives on. *)
let run_job t job =
  t.on_job_start ();
  let response =
    match
      let prepared = Analytical.prepare ?max_level:job.max_level job.trace in
      let stats = Stats.compute_stripped prepared.Analytical.stripped in
      let histograms = Analytical.histograms ~method_:job.method_ ~domains:job.domains prepared in
      let entry = { Result_cache.stats; histograms } in
      Result_cache.store t.cache job.key entry;
      entry
    with
    | entry ->
      Protocol.Result { Protocol.outcome = answer ~name:job.name ~query:job.query entry; cache_hit = false }
    | exception Dse_error.Error e -> Protocol.Server_error e
    | exception Invalid_argument message ->
      Protocol.Server_error (Dse_error.Constraint_violation { context = "submit"; message })
    | exception e ->
      (* unexpected engine crash: internal-failure class (exit 5) *)
      Protocol.Server_error
        (Dse_error.Shard_failure { shard = 0; attempts = 1; message = Printexc.to_string e })
  in
  Atomic.incr t.jobs_completed;
  respond_and_close t job.fd response

let handle_submission t fd ~name ~trace ~query ~method_ ~domains ~max_level =
  if Trace.length trace = 0 then
    respond_and_close t fd
      (Protocol.Server_error
         (Dse_error.Constraint_violation { context = "submit"; message = "empty trace" }))
  else if domains < 1 then
    respond_and_close t fd
      (Protocol.Server_error
         (Dse_error.Constraint_violation { context = "submit"; message = "domains must be >= 1" }))
  else begin
    let key =
      {
        Result_cache.fingerprint = Trace.fingerprint trace;
        method_tag = Protocol.method_tag method_;
        domains;
        max_level = (match max_level with None -> -1 | Some level -> level);
      }
    in
    match Result_cache.find t.cache key with
    | Some entry ->
      (* hot path: answered in the accept loop, no queueing, no kernel *)
      respond_and_close t fd
        (Protocol.Result { Protocol.outcome = answer ~name ~query entry; cache_hit = true })
    | None -> (
      let job = { fd; name; trace; query; method_; domains; max_level; key } in
      match Job_queue.push t.queue job with
      | `Ok -> () (* the worker now owns [fd] *)
      | `Full pending ->
        respond_and_close t fd
          (Protocol.Server_error
             (Dse_error.Queue_full { pending; max_pending = t.config.max_pending }))
      | `Closed ->
        respond_and_close t fd
          (Protocol.Server_error
             (Dse_error.Io_error { file = t.config.socket_path; message = "server shutting down" })))
  end

let handle_connection t fd =
  (* a stalled or hostile client cannot wedge the accept loop forever *)
  Unix.setsockopt_float fd Unix.SO_RCVTIMEO 30.0;
  Unix.setsockopt_float fd Unix.SO_SNDTIMEO 30.0;
  match Protocol.read_request fd with
  | Error e -> respond_and_close t fd (Protocol.Server_error e)
  | Ok Protocol.Ping -> respond_and_close t fd Protocol.Pong
  | Ok Protocol.Server_stats -> respond_and_close t fd (stats_reply t)
  | Ok (Protocol.Submit { name; trace; query; method_; domains; max_level }) ->
    handle_submission t fd ~name ~trace ~query ~method_ ~domains ~max_level

let run t =
  let pool = Worker_pool.start ~workers:t.config.workers ~run:(run_job t) t.queue in
  let rec accept_loop () =
    if not (Atomic.get t.stopping) then begin
      (match Unix.select [ t.listen_fd ] [] [] 0.1 with
      | [], _, _ -> ()
      | _ :: _, _, _ -> (
        match Unix.accept t.listen_fd with
        | fd, _ -> (
          (* the serve loop must outlive any one connection: log and
             continue, never leak an exception to the top level *)
          try handle_connection t fd
          with e ->
            t.log (Printf.sprintf "connection handler: %s" (Printexc.to_string e));
            close_noerr fd)
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      accept_loop ()
    end
  in
  accept_loop ();
  (* drain: no new connections, but every queued and in-flight job is
     finished and answered before the daemon exits *)
  let pending = Job_queue.length t.queue in
  if pending > 0 then t.log (Printf.sprintf "draining %d pending job(s)" pending);
  Job_queue.close t.queue;
  Worker_pool.join pool;
  close_noerr t.listen_fd;
  (try Unix.unlink t.config.socket_path with Unix.Unix_error (_, _, _) | Sys_error _ -> ());
  t.log
    (Printf.sprintf "drained; %d job(s) completed over this run" (Atomic.get t.jobs_completed))

let socket_path t = t.config.socket_path
