type config = {
  socket_path : string;
  tcp : string option;
  node_id : string option;
  workers : int;
  max_pending : int;
  cache_entries : int;
  wal_path : string option;
  hang_timeout : float;
  max_job_refs : int option;
  memory_budget : int option;
  peers : string list;
  replication : int;
  replication_queue : int;
  anti_entropy : bool;
}

(* What the worker actually runs: an exact kernel over a materialised
   trace, or the approximate estimator over a profile the protocol
   layer already sketched during decode (no trace ever existed). *)
type work =
  | Exact_work of { trace : Trace.t; method_ : Analytical.method_ }
  | Approx_work of Sketch.profile

(* The node's current fleet view — one value, swapped whole under
   [ring_mu] so readers (workers replicating, the accept loop fencing,
   the repl domain pushing) always see a consistent (version, nodes,
   replication, ring) quadruple. [version] 0 is the unfenced standalone
   state; a published config is >= 1 and only ever replaced by a
   strictly newer one. [nodes] may exclude this node after a drain or
   leave — then [ring] still places keys (to forward late results to
   the survivors) but this node participates in none of them. *)
type membership = {
  version : int;
  nodes : string list;
  replication : int;
  ring : Ring.t option;
}

type job = {
  fd : Unix.file_descr;
  name : string;
  work : work;
  query : Protocol.query;
  domains : int;
  max_level : int option;
  key : Result_cache.key;
  cancel : Cancel.t;
  (* Exactly one party replies to this flight: the worker that finishes
     the job, or the watchdog that declares it stalled. Whoever wins
     this CAS owns [fd] (and the flight's waiters); the loser — e.g. an
     abandoned worker that unwedges hours later, when the fd number may
     already belong to a different connection — discards silently. *)
  settled : bool Atomic.t;
}

type t = {
  config : config;
  listen_fd : Unix.file_descr;
  tcp_fd : Unix.file_descr option;
  node_id : string;
  queue : job Job_queue.t;
  cache : Result_cache.t;
  inflight : Inflight.t;
  wal : Wal.t option;
  (* this node's fleet view (itself + peers at boot, updated at runtime
     by Ring_update/Drain), agreeing with the router's ring as long as
     both spell node names the same way *)
  ring_mu : Mutex.t;
  mutable membership : membership;
  (* replica-GC batches scheduled by a membership change: keys this
     node stopped participating in, dropped once their grace delay
     expires (guarded by [ring_mu]) *)
  mutable gc_pending : (float * Result_cache.key list) list;
  (* shed-new-work mode: a planned decommission is in progress *)
  draining : bool Atomic.t;
  (* outbound (target node, encoded record) pushes; bounded, so a slow
     peer costs at most [replication_queue] buffered records and then
     durability (drops are counted), never serving *)
  repl_queue : (string * string) Job_queue.t option;
  stopping : bool Atomic.t;
  jobs_completed : int Atomic.t;
  shed : int Atomic.t;
  admission_rejected : int Atomic.t;
  wal_appends : int Atomic.t;
  wal_failures : int Atomic.t;
  peer_hits : int Atomic.t;
  replicated_in : int Atomic.t;
  replicated_out : int Atomic.t;
  replication_dropped : int Atomic.t;
  replica_gc_dropped : int Atomic.t;
  started : float;
  mutable pool : job Worker_pool.t option;
  on_job_start : unit -> unit;
  log : string -> unit;
}

let close_noerr fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* Shedding starts at 3/4 of the queue bound (rounded up): the last
   quarter of the queue is reserved for light jobs, pings and cache
   probes, so an overload of heavy submissions degrades the heavy tier
   first while the cheap tier keeps answering. *)
let watermark config = max 1 (((3 * config.max_pending) + 3) / 4)

(* A job at or above one shard of streaming work is "heavy" for
   shedding purposes: it is the class whose kernel time dominates queue
   drain time under overload. *)
let heavy_refs = Streaming.min_shard_refs

(* How long until a worker likely frees up: queue depth spread over the
   pool, at an assumed quarter-second per heavy job — deliberately
   rough, it only has to make client backoff proportional to load. *)
let retry_hint config ~pending =
  Float.min 10. (0.25 *. (float_of_int (pending + config.workers) /. float_of_int config.workers))

(* Warm the cache from the WAL in append order (later duplicates win
   and recency is reproduced); damage is tolerated by design and only
   logged. *)
let restore_from_wal ~log ~cache path =
  match Wal.replay path with
  | Error _ as e -> e
  | Ok { Wal.entries; intact; damaged; truncated } ->
    List.iter (fun (key, entry) -> Result_cache.store cache key entry) entries;
    if intact > 0 || damaged > 0 || truncated then
      log
        (Printf.sprintf "wal: restored %d cached result(s) from %s%s%s" intact path
           (if damaged > 0 then Printf.sprintf ", skipped %d damaged record(s)" damaged else "")
           (if truncated then ", dropped a torn tail" else ""));
    Ok ()

let create ?(on_job_start = fun () -> ()) ?(log = fun msg -> Format.eprintf "dse-serve: %s@." msg)
    config =
  let invalid message =
    Error (Dse_error.Constraint_violation { context = "serve"; message })
  in
  if config.workers < 1 then invalid "workers must be >= 1"
  else if config.max_pending < 1 then invalid "max-pending must be >= 1"
  else if config.cache_entries < 1 then invalid "cache-entries must be >= 1"
  else if not (config.hang_timeout > 0. && config.hang_timeout < infinity) then
    invalid "hang-timeout must be a positive finite number of seconds"
  else if (match config.max_job_refs with Some n -> n < 1 | None -> false) then
    invalid "max-job-refs must be >= 1"
  else if (match config.memory_budget with Some n -> n < 1 | None -> false) then
    invalid "memory-budget must be >= 1"
  else if config.replication < 1 then invalid "replication must be >= 1"
  else if config.replication_queue < 1 then invalid "replication-queue must be >= 1"
  else if
    List.length (List.sort_uniq String.compare config.peers) <> List.length config.peers
  then invalid "duplicate peer address"
  else
    (* The TCP address is validated before any socket is bound: "--tcp"
       must actually be host:port, not a path that fell through parse. *)
    let tcp_addr =
      match config.tcp with
      | None -> Ok None
      | Some s -> (
        match Transport.parse s with
        | Transport.Tcp _ as addr -> Ok (Some addr)
        | Transport.Unix_socket _ ->
          invalid (Printf.sprintf "--tcp expects host:port, got %S" s))
    in
    match tcp_addr with
    | Error _ as e -> e
    | Ok tcp_addr -> (
      match Transport.listen (Transport.Unix_socket config.socket_path) with
      | Error _ as e -> e
      | Ok listen_fd -> (
        let tcp_fd =
          match tcp_addr with
          | None -> Ok None
          | Some addr -> (
            match Transport.listen addr with
            | Ok fd -> Ok (Some fd)
            | Error _ as e ->
              close_noerr listen_fd;
              Transport.unlink (Transport.Unix_socket config.socket_path);
              e)
        in
        match tcp_fd with
        | Error e -> Error e
        | Ok tcp_fd -> (
          let release_listeners () =
            close_noerr listen_fd;
            (match tcp_fd with Some fd -> close_noerr fd | None -> ());
            Transport.unlink (Transport.Unix_socket config.socket_path)
          in
          let cache = Result_cache.create ~capacity:config.cache_entries () in
          let wal_result =
            match config.wal_path with
            | None -> Ok None
            | Some path -> (
              match restore_from_wal ~log ~cache path with
              | Error _ as e -> e
              | Ok () -> (
                match
                  Wal.open_ ~capacity:config.cache_entries
                    ~snapshot:(fun () -> Result_cache.snapshot cache)
                    path
                with
                | Error _ as e -> e
                | Ok wal -> Ok (Some wal)))
          in
          match wal_result with
          | Error e ->
            release_listeners ();
            Error e
          | Ok wal ->
            (* a client vanishing mid-reply must be an EPIPE result, not
               a process-killing signal *)
            (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
            (* The id must survive a respawn (that is its point: the
               router pairs a stable id with a changing start epoch), so
               it defaults to the daemon's address — TCP when serving a
               fleet, else the socket path. *)
            let node_id =
              match config.node_id with
              | Some id -> id
              | None -> (
                match config.tcp with Some addr -> addr | None -> config.socket_path)
            in
            if List.mem node_id config.peers then begin
              release_listeners ();
              (match wal with Some w -> Wal.close w | None -> ());
              invalid (Printf.sprintf "peer list includes this node's own id %S" node_id)
            end
            else
              (* Replica placement needs a fleet view: the ring over
                 self + peers. The peer strings must be dialable
                 addresses AND spelled exactly as the router spells its
                 --backend list, or the two rings disagree on
                 successors — which is why node_id defaults to the
                 daemon's address. *)
              let membership =
                match config.peers with
                | [] ->
                  (* standalone: version 0 = unfenced, until a
                     Ring_update joins this node to a fleet *)
                  { version = 0; nodes = [ node_id ]; replication = config.replication;
                    ring = None }
                | peers ->
                  { version = 1; nodes = node_id :: peers; replication = config.replication;
                    ring = Some (Ring.create (node_id :: peers)) }
              in
              (* always created — a standalone daemon joined at runtime
                 starts replicating without a restart; an idle queue
                 costs one blocked domain *)
              let repl_queue = Some (Job_queue.create ~max_pending:config.replication_queue) in
              Ok
                {
                  config;
                  listen_fd;
                  tcp_fd;
                  node_id;
                  queue = Job_queue.create ~max_pending:config.max_pending;
                  cache;
                  inflight = Inflight.create ();
                  wal;
                  ring_mu = Mutex.create ();
                  membership;
                  gc_pending = [];
                  draining = Atomic.make false;
                  repl_queue;
                  stopping = Atomic.make false;
                  jobs_completed = Atomic.make 0;
                  shed = Atomic.make 0;
                  admission_rejected = Atomic.make 0;
                  wal_appends = Atomic.make 0;
                  wal_failures = Atomic.make 0;
                  peer_hits = Atomic.make 0;
                  replicated_in = Atomic.make 0;
                  replicated_out = Atomic.make 0;
                  replication_dropped = Atomic.make 0;
                  replica_gc_dropped = Atomic.make 0;
                  started = Unix.gettimeofday ();
                  pool = None;
                  on_job_start;
                  log;
                })))

let stop t = Atomic.set t.stopping true

let install_signal_handlers t =
  let handler = Sys.Signal_handle (fun _ -> stop t) in
  Sys.set_signal Sys.sigterm handler;
  Sys.set_signal Sys.sigint handler

(* The entry→outcome derivation lives in Protocol (answer_entry) so the
   router can build the same reply from a peer's replicated record. *)
let answer = Protocol.answer_entry

(* -- membership -- *)

let with_ring t f =
  Mutex.lock t.ring_mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.ring_mu) f

let membership t = with_ring t (fun () -> t.membership)

let ring_version t = (membership t).version

let current_config t =
  let m = membership t in
  { Protocol.ring_version = m.version; nodes = m.nodes; replication = m.replication }

(* The epoch fence on Replicate/Cache_query: both sides versioned and
   the numbers differ means one of us has a stale fleet view — reject
   before any state is applied. Version 0 on either side bypasses the
   fence (a standalone daemon, or a client probing without a view). *)
let fence t seen =
  let mine = ring_version t in
  if mine <> 0 && seen <> 0 && seen <> mine then
    Some (Dse_error.Stale_ring { seen; expected = mine })
  else None

(* [node] participates in a key iff it is among the first [r] distinct
   nodes of the key's ring walk — the replica set all placement logic
   (replication push, anti-entropy pull, replica GC) agrees on. *)
let placed ~r ~node ring fingerprint =
  let rec go i = function
    | [] -> false
    | n :: rest -> (i < r && n = node) || (i + 1 < r && go (i + 1) rest)
  in
  go 0 (Ring.successors ring fingerprint)

let validate_config (config : Protocol.ring_config) =
  if config.Protocol.ring_version < 1 then Error "ring version must be >= 1"
  else if config.Protocol.nodes = [] then Error "empty node list"
  else if
    List.length (List.sort_uniq String.compare config.Protocol.nodes)
    <> List.length config.Protocol.nodes
  then Error "duplicate node address"
  else if config.Protocol.replication < 1 then Error "replication must be >= 1"
  else Ok ()

(* Keys dropped by replica GC linger this long after the membership
   change that orphaned them: long enough for the control plane to
   finish propagating the new config (so a node keeps answering its old
   range while routing catches up), short enough that a shrink reclaims
   memory promptly. *)
let gc_grace = 1.0

(* -- replication -- *)

(* Store a record that arrived from a peer (a Replicate push or an
   anti-entropy pull). It takes the same path as a locally computed
   result — cache store + WAL append — so a replica is durable here
   too, and a later restart of this node warms it from its own WAL. *)
let store_replica t key entry =
  Result_cache.store t.cache key entry;
  Atomic.incr t.replicated_in;
  match t.wal with
  | None -> ()
  | Some wal -> (
    match Wal.append wal key entry with
    | Ok () -> Atomic.incr t.wal_appends
    | Error e ->
      Atomic.incr t.wal_failures;
      t.log (Printf.sprintf "wal append failed: %s" (Dse_error.to_string e)))

(* Fire-and-forget: a finished entry is queued for this node's R−1
   distinct ring successors *for the key* — so a spilled or failed-over
   job's result still lands on the nodes any router will walk for that
   fingerprint, the owner included. A full queue drops the push and
   counts it: a slow peer degrades durability, never serving. *)
let replicate t key entry =
  let m = membership t in
  match (m.ring, t.repl_queue) with
  | Some ring, Some queue when m.replication > 1 -> (
    match Wal.encode_record key entry with
    | None -> () (* approx entries are not replicated, mirroring the WAL *)
    | Some record ->
      Ring.successors ring key.Result_cache.fingerprint
      |> List.filter (fun node -> node <> t.node_id)
      |> List.filteri (fun i _ -> i < m.replication - 1)
      |> List.iter (fun target ->
             match Job_queue.push queue (target, record) with
             | `Ok -> ()
             | `Full _ -> Atomic.incr t.replication_dropped
             | `Closed -> ()))
  | _ -> ()

(* One request/response exchange with a peer daemon, from the
   replication domain. Bounded everywhere (connect, send, receive): a
   wedged peer must not wedge the pusher. *)
let peer_exchange ?(timeout = 10.0) target request =
  let addr = Transport.parse target in
  match Transport.connect ~timeout:2.0 addr with
  | Error e -> Error e
  | Ok fd ->
    Fun.protect
      ~finally:(fun () -> close_noerr fd)
      (fun () ->
        Unix.setsockopt_float fd Unix.SO_SNDTIMEO timeout;
        Unix.setsockopt_float fd Unix.SO_RCVTIMEO timeout;
        match Protocol.write_request ~peer:target fd request with
        | Error _ as e -> e
        | Ok () -> Protocol.read_response ~peer:target fd)

(* Wake the repl domain for a fresh digest exchange. The sentinel rides
   the push queue (the empty target is not a dialable address, so it
   cannot collide with a real push); a full queue just means the domain
   is already busy syncing — the entries it pushes serve the same
   convergence end. *)
let trigger_anti_entropy t =
  if t.config.anti_entropy then
    match t.repl_queue with
    | Some queue -> (
      match Job_queue.push queue ("", "") with `Ok | `Full _ | `Closed -> ())
    | None -> ()

(* Swap in a strictly newer fleet view (caller holds [ring_mu] via
   adopt_if_newer). Every exact key this node stops participating in is
   scheduled for replica GC after the grace delay — re-checked against
   the then-current membership when it fires, so a config that restores
   a key cancels its doom. *)
let adopt_locked t (config : Protocol.ring_config) =
  let ring = Ring.create config.Protocol.nodes in
  let replication = config.Protocol.replication in
  let doomed =
    List.filter
      (fun (key : Result_cache.key) ->
        not (placed ~r:replication ~node:t.node_id ring key.Result_cache.fingerprint))
      (Result_cache.exact_keys t.cache)
  in
  t.membership <-
    { version = config.Protocol.ring_version; nodes = config.Protocol.nodes; replication;
      ring = Some ring };
  if doomed <> [] then
    t.gc_pending <- t.gc_pending @ [ (Unix.gettimeofday () +. gc_grace, doomed) ]

(* [true] iff the config was strictly newer (and valid) and was
   adopted. Idempotent against replays of the current or an older
   config. *)
let adopt_if_newer t (config : Protocol.ring_config) =
  match validate_config config with
  | Error _ -> false
  | Ok () ->
    let adopted =
      with_ring t (fun () ->
          if config.Protocol.ring_version > t.membership.version then begin
            adopt_locked t config;
            true
          end
          else false)
    in
    if adopted then begin
      t.log
        (Printf.sprintf "membership: adopted ring v%d (%d node(s), replication %d)%s"
           config.Protocol.ring_version
           (List.length config.Protocol.nodes)
           config.Protocol.replication
           (if List.mem t.node_id config.Protocol.nodes then "" else "; this node is out"));
      trigger_anti_entropy t
    end;
    adopted

(* The Stale_ring recovery path: ask the peer that fenced us for its
   view and adopt it if newer. Returns whether anything was adopted. *)
let refetch_config t peer =
  match peer_exchange peer Protocol.Ring_status with
  | Ok (Protocol.Ring_reply { config; _ }) -> adopt_if_newer t config
  | Ok _ | Error _ -> false

(* Where [record]'s key belongs under the *current* membership: its
   first R−1 ring successors other than this node. *)
let current_targets t record =
  match Wal.decode_record record with
  | None -> []
  | Some (key, _) -> (
    let m = membership t in
    match m.ring with
    | Some ring when m.replication > 1 ->
      Ring.successors ring key.Result_cache.fingerprint
      |> List.filter (fun node -> node <> t.node_id)
      |> List.filteri (fun i _ -> i < m.replication - 1)
    | _ -> [])

let rec push_record ?(refetched = false) t target record =
  if not (List.mem target (current_targets t record)) then
    (* The queue item was placed under an older ring. Sending it anyway
       would carry the *current* version, so the receiver's fence would
       wave a stale placement through — re-warming a node that just
       drained out of the key's range. Re-place instead: push to the
       key's owners under the ring of this moment (idempotent on a
       receiver that already holds the entry), or drop the push when
       this node no longer owes a copy at all. *)
    List.iter
      (fun target -> push_record ~refetched t target record)
      (current_targets t record)
  else
    match
      peer_exchange target
        (Protocol.Replicate { ring_version = ring_version t; records = [ record ] })
    with
    | Ok (Protocol.Replicate_ack { stored }) when stored >= 1 -> Atomic.incr t.replicated_out
    | Ok (Protocol.Server_error (Dse_error.Stale_ring _)) when not refetched ->
      (* the peer fenced us: refetch its view and, if we adopted a newer
         one, re-place the record under it (its owners may have moved) *)
      if refetch_config t target then
        List.iter
          (fun target -> push_record ~refetched:true t target record)
          (current_targets t record)
      else
        t.log
          (Printf.sprintf "replication: peer %s fenced a push and no newer config was found"
             target)
    | Ok _ -> t.log (Printf.sprintf "replication: peer %s refused a record" target)
    | Error e ->
      t.log (Printf.sprintf "replication: push to %s failed: %s" target (Dse_error.to_string e))

(* The digest exchange is bounded per peer — a short timeout and
   exactly one retry — so a hung or half-dead ring neighbour can never
   stall the replication domain at startup (it used to wait the full
   transport timeout with no second chance). A Stale_ring fence from
   the peer triggers the config refetch, then the one retry runs under
   the adopted version. *)
let ae_timeout = 3.0

let ae_exchange t peer keys =
  let attempt () =
    peer_exchange ~timeout:ae_timeout peer
      (Protocol.Cache_query { ring_version = ring_version t; keys })
  in
  match attempt () with
  | Ok (Protocol.Server_error (Dse_error.Stale_ring _)) when refetch_config t peer -> attempt ()
  | Error _ ->
    t.log (Printf.sprintf "anti-entropy: %s did not answer, retrying once" peer);
    attempt ()
  | reply -> reply

(* Anti-entropy on (re)join and on every membership change: ask each
   ring neighbour for its cache-key digest, keep the keys this node
   participates in (it is among the first R nodes of the key's ring
   walk) and does not already hold, and pull exactly those. A
   WAL-restored restart pulls nothing; a WAL-less respawn re-warms its
   whole range from its peers; a joining node pulls its range while it
   already serves. *)
let anti_entropy t =
  let m = membership t in
  match m.ring with
  | Some ring when List.mem t.node_id m.nodes ->
    let wanted key =
      (not (Result_cache.mem t.cache key))
      && placed ~r:m.replication ~node:t.node_id ring key.Result_cache.fingerprint
    in
    List.iter
      (fun peer ->
        match ae_exchange t peer [] with
        | Ok (Protocol.Cache_reply { keys; _ }) -> (
          match List.filter wanted keys with
          | [] -> ()
          | missing -> (
            match ae_exchange t peer missing with
            | Ok (Protocol.Cache_reply { records; _ }) ->
              let pulled =
                List.fold_left
                  (fun acc record ->
                    match Wal.decode_record record with
                    | Some (key, entry) ->
                      store_replica t key entry;
                      acc + 1
                    | None -> acc)
                  0 records
              in
              t.log
                (Printf.sprintf "anti-entropy: pulled %d/%d missing entr%s from %s" pulled
                   (List.length missing)
                   (if pulled = 1 then "y" else "ies")
                   peer)
            | Ok _ | Error _ ->
              t.log (Printf.sprintf "anti-entropy: pull from %s failed" peer)))
        | Ok _ -> t.log (Printf.sprintf "anti-entropy: unexpected digest reply from %s" peer)
        | Error _ ->
          (* a dead or not-yet-started neighbour is normal during a rolling
             (re)start; replication-on-completion covers the gap *)
          t.log (Printf.sprintf "anti-entropy: %s unreachable, skipped" peer))
      (Ring.neighbors ring t.node_id)
  | _ -> ()

(* Fire due replica-GC batches (called from the accept loop's select
   tick). Placement is re-checked under the *current* membership — a
   later config that restored a key rescues it — and survivors of the
   check are dropped from the cache, counted, and flushed from the WAL
   by an immediate compaction (replay must not resurrect a range this
   node no longer owns). *)
let run_replica_gc t =
  let now = Unix.gettimeofday () in
  let due =
    with_ring t (fun () ->
        let due, later = List.partition (fun (at, _) -> at <= now) t.gc_pending in
        t.gc_pending <- later;
        due)
  in
  if due <> [] then begin
    let m = membership t in
    let keep (key : Result_cache.key) =
      match m.ring with
      | None -> true
      | Some ring -> placed ~r:m.replication ~node:t.node_id ring key.Result_cache.fingerprint
    in
    let dropped =
      List.fold_left
        (fun acc (_, keys) ->
          List.fold_left
            (fun acc key ->
              if (not (keep key)) && Result_cache.mem t.cache key then begin
                Result_cache.remove t.cache key;
                acc + 1
              end
              else acc)
            acc keys)
        0 due
    in
    if dropped > 0 then begin
      ignore (Atomic.fetch_and_add t.replica_gc_dropped dropped);
      (match t.wal with
      | None -> ()
      | Some wal -> (
        match Wal.compact wal with
        | Ok () -> ()
        | Error e -> t.log (Printf.sprintf "replica-gc: wal compaction failed: %s" (Dse_error.to_string e))));
      t.log
        (Printf.sprintf "replica-gc: dropped %d entr%s outside this node's placement (ring v%d)"
           dropped
           (if dropped = 1 then "y" else "ies")
           m.version)
    end
  end

let stats_reply t =
  let c = Result_cache.counters t.cache in
  Protocol.Stats_reply
    {
      Protocol.jobs_completed = Atomic.get t.jobs_completed;
      cache_hits = c.Result_cache.hits;
      cache_misses = c.Result_cache.misses;
      cache_entries = c.Result_cache.entries;
      cache_evictions = c.Result_cache.evictions;
      coalesced_hits = Inflight.coalesced t.inflight;
      pending = Job_queue.length t.queue;
      workers = t.config.workers;
    }

let health_reply t =
  let c = Result_cache.counters t.cache in
  let now = Unix.gettimeofday () in
  let workers, workers_replaced =
    match t.pool with
    | None -> ([], 0)
    | Some pool ->
      ( List.map
          (fun (v : job Worker_pool.view) ->
            match v.Worker_pool.running with
            | Some r ->
              {
                Protocol.slot = v.Worker_pool.slot;
                busy = true;
                job = r.Worker_pool.job.name;
                heartbeat_age = Heartbeat.age ~now r.Worker_pool.heartbeat;
                jobs_done = v.Worker_pool.jobs_done;
              }
            | None ->
              {
                Protocol.slot = v.Worker_pool.slot;
                busy = false;
                job = "";
                heartbeat_age = 0.;
                jobs_done = v.Worker_pool.jobs_done;
              })
          (Worker_pool.snapshot pool),
        Worker_pool.replaced pool )
  in
  Protocol.Health_reply
    {
      Protocol.node_id = t.node_id;
      start_epoch = t.started;
      uptime = now -. t.started;
      workers;
      workers_replaced;
      queue_depth = Job_queue.length t.queue;
      queue_watermark = watermark t.config;
      max_pending = t.config.max_pending;
      shed = Atomic.get t.shed;
      admission_rejected = Atomic.get t.admission_rejected;
      jobs_completed = Atomic.get t.jobs_completed;
      cache_hits = c.Result_cache.hits;
      cache_misses = c.Result_cache.misses;
      cache_entries = c.Result_cache.entries;
      cache_evictions = c.Result_cache.evictions;
      coalesced_hits = Inflight.coalesced t.inflight;
      wal_enabled = t.wal <> None;
      wal_appends = Atomic.get t.wal_appends;
      wal_failures = Atomic.get t.wal_failures;
      peer_hits = Atomic.get t.peer_hits;
      replicated_in = Atomic.get t.replicated_in;
      replicated_out = Atomic.get t.replicated_out;
      replication_lag = (match t.repl_queue with Some q -> Job_queue.length q | None -> 0);
      replication_dropped = Atomic.get t.replication_dropped;
      ring_version = ring_version t;
      draining = Atomic.get t.draining;
      replica_gc_dropped = Atomic.get t.replica_gc_dropped;
    }

let respond_and_close t fd response =
  (match Protocol.write_response fd response with
  | Ok () -> ()
  | Error e -> t.log (Printf.sprintf "reply failed: %s" (Dse_error.to_string e)));
  close_noerr fd

(* Every party of a single flight — the leader plus its attached
   waiters — gets a reply built from its own name and query. *)
let respond_flight t job outcome =
  let waiters = Inflight.complete t.inflight job.key in
  let reply ~name ~query fd =
    let response =
      match outcome with
      | Ok entry ->
        Protocol.Result
          { Protocol.outcome = answer ~name ~query ~max_level:job.max_level entry;
            cache_hit = false }
      | Error e -> Protocol.Server_error e
    in
    respond_and_close t fd response
  in
  reply ~name:job.name ~query:job.query job.fd;
  List.iter
    (fun (w : Inflight.waiter) -> reply ~name:w.Inflight.name ~query:w.Inflight.query w.Inflight.fd)
    waiters

(* Runs in a worker domain. The kernel call goes through the standard
   [Analytical] pipeline, so [domains > 1] jobs get Shard_exec's
   per-shard recovery ladder and the job's cancel token — carrying this
   worker's heartbeat — is polled at the documented points; every
   failure — deadline expiry included — becomes a structured reply to
   this flight's clients and the worker lives on. A worker that lost
   the settled race (the watchdog already answered this flight) stores
   nothing and replies to no one: its fd may have been reused and a new
   flight for the same key may be in progress. *)
let run_job t ~heartbeat job =
  t.on_job_start ();
  let cancel = Cancel.with_heartbeat heartbeat job.cancel in
  let outcome =
    match
      (* the deadline clock started at submission, so time spent queued
         counts; an already-expired job fails here without a kernel run *)
      Cancel.check cancel;
      (match job.work with
      | Exact_work { trace; method_ } ->
        let prepared = Analytical.prepare ?max_level:job.max_level trace in
        (* O(1) off the arena build: the default arena method never boxes
           the strip, so a job's heap cost is the decoded trace alone *)
        let stats = Analytical.stats prepared in
        let histograms =
          Analytical.histograms ~cancel ~method_ ~domains:job.domains prepared
        in
        Result_cache.Exact { stats; histograms }
      | Approx_work profile ->
        (* the estimator is exercised once here, so a degenerate profile
           becomes a typed reply from the worker instead of an exception
           in the accept loop's answer path *)
        ignore (Approx_dse.prepare profile);
        Result_cache.Approx profile)
    with
    | entry -> Ok entry
    | exception Dse_error.Error e -> Error e
    | exception Invalid_argument message ->
      Error (Dse_error.Constraint_violation { context = "submit"; message })
    | exception e ->
      (* unexpected engine crash: internal-failure class (exit 5) *)
      Error (Dse_error.Shard_failure { shard = 0; attempts = 1; message = Printexc.to_string e })
  in
  if Atomic.compare_and_set job.settled false true then begin
    (match outcome with
    | Ok entry ->
      Result_cache.store t.cache job.key entry;
      (match t.wal with
      | None -> ()
      | Some wal -> (
        (* a full disk degrades persistence, never serving *)
        match Wal.append wal job.key entry with
        | Ok () -> Atomic.incr t.wal_appends
        | Error e ->
          Atomic.incr t.wal_failures;
          t.log (Printf.sprintf "wal append failed: %s" (Dse_error.to_string e))));
      replicate t job.key entry
    | Error _ -> ());
    Atomic.incr t.jobs_completed;
    respond_flight t job outcome
  end
  else
    t.log
      (Printf.sprintf "abandoned worker finished %s after the watchdog answered; result discarded"
         job.name)

(* The watchdog found a worker silent past the hang timeout and already
   replaced it ([Watchdog.scan] is atomic per worker). Settle the flight
   from the accept loop: cancel the job's token (an abandoned worker
   that was merely slow aborts at its next poll instead of burning a
   core to the end) and answer everyone with the typed stall. *)
let settle_stalled t (s : job Watchdog.stalled) =
  let job = s.Watchdog.job in
  if Atomic.compare_and_set job.settled false true then begin
    Cancel.cancel job.cancel;
    t.log
      (Printf.sprintf
         "watchdog: worker %d silent for %.2f s running %s; domain abandoned, replacement spawned"
         s.Watchdog.slot s.Watchdog.silent_for job.name);
    let e = Dse_error.Worker_stalled { elapsed = s.Watchdog.elapsed; job = job.name } in
    let waiters = Inflight.complete t.inflight job.key in
    respond_and_close t job.fd (Protocol.Server_error e);
    List.iter
      (fun (w : Inflight.waiter) -> respond_and_close t w.Inflight.fd (Protocol.Server_error e))
      waiters
  end

(* How long a drain waits for queued and in-flight jobs to finish
   before handing off warm state. New heavy work is already being shed,
   so this only covers the backlog at the moment the drain arrived. *)
let drain_settle_timeout = 30.0

(* Planned decommission. Runs inline in the accept loop — the daemon
   stops accepting while it hands off, which is fine for a node that is
   leaving — and the whole sequence is bounded: settle wait, then one
   bounded exchange per surviving target. Order matters: the control
   plane updates the survivors to the post-drain config *first*, so the
   handoff pushes (fenced at the new version) are accepted; the router
   is updated last, so this node keeps answering cache hits until the
   very moment routing moves — zero kernel re-runs on the drained
   range. *)
let handle_drain t fd (config : Protocol.ring_config) =
  let invalid message =
    respond_and_close t fd
      (Protocol.Server_error (Dse_error.Constraint_violation { context = "drain"; message }))
  in
  match validate_config config with
  | Error message -> invalid message
  | Ok () ->
    if List.mem t.node_id config.Protocol.nodes then
      invalid "post-drain config still contains this node"
    else begin
      let mine = ring_version t in
      if config.Protocol.ring_version <= mine then
        respond_and_close t fd
          (Protocol.Server_error
             (Dse_error.Stale_ring { seen = config.Protocol.ring_version; expected = mine }))
      else begin
        Atomic.set t.draining true;
        (* let the backlog finish: every entry to hand off must be in
           the cache, and new heavy submissions are now being shed *)
        let deadline = Unix.gettimeofday () +. drain_settle_timeout in
        let idle () =
          Job_queue.length t.queue = 0
          && (match t.pool with
             | None -> true
             | Some pool ->
               List.for_all
                 (fun (v : job Worker_pool.view) -> v.Worker_pool.running = None)
                 (Worker_pool.snapshot pool))
        in
        while (not (idle ())) && Unix.gettimeofday () < deadline do
          Unix.sleepf 0.02
        done;
        (* hand off every warm exact entry to its post-drain owners,
           batched into one Replicate per target *)
        let ring = Ring.create config.Protocol.nodes in
        let by_target : (string, string list) Hashtbl.t = Hashtbl.create 8 in
        List.iter
          (fun (key, entry) ->
            match Wal.encode_record key entry with
            | None -> ()
            | Some record ->
              Ring.successors ring key.Result_cache.fingerprint
              |> List.filteri (fun i _ -> i < config.Protocol.replication)
              |> List.iter (fun target ->
                     Hashtbl.replace by_target target
                       (record :: Option.value ~default:[] (Hashtbl.find_opt by_target target))))
          (Result_cache.snapshot t.cache);
        let pushed =
          Hashtbl.fold
            (fun target records acc ->
              match
                peer_exchange target
                  (Protocol.Replicate
                     { ring_version = config.Protocol.ring_version; records = List.rev records })
              with
              | Ok (Protocol.Replicate_ack { stored }) ->
                ignore (Atomic.fetch_and_add t.replicated_out stored);
                acc + stored
              | Ok _ | Error _ ->
                t.log
                  (Printf.sprintf "drain: handoff of %d record(s) to %s failed"
                     (List.length records) target);
                acc)
            by_target 0
        in
        ignore (adopt_if_newer t config);
        t.log
          (Printf.sprintf "drain: handed off %d record(s); left the ring at v%d" pushed
             config.Protocol.ring_version);
        respond_and_close t fd
          (Protocol.Ring_reply { config = current_config t; draining = true; pushed })
      end
    end

let handle_submission t fd ~name ~trace ~query ~method_ ~domains ~max_level ~deadline =
  let reject message =
    respond_and_close t fd
      (Protocol.Server_error (Dse_error.Constraint_violation { context = "submit"; message }))
  in
  (* Total over (spec, decoded payload). The daemon's decoder sketches
     approx submissions, so Approx normally arrives Sketched; a
     materialised approx submission (a hand-crafted frame) is sketched
     here, and a sketched exact one is impossible to serve. *)
  let work =
    match (method_, trace) with
    | Protocol.Exact m, Protocol.Full trace -> Ok (Exact_work { trace; method_ = m })
    | Protocol.Approx, Protocol.Sketched profile -> Ok (Approx_work profile)
    | Protocol.Approx, Protocol.Full trace -> Ok (Approx_work (Sketch.of_trace trace))
    | Protocol.Exact _, Protocol.Sketched _ ->
      Error "a sketched submission cannot run an exact method"
  in
  match work with
  | Error message -> reject message
  | Ok work ->
  if Protocol.submission_refs trace = 0 then reject "empty trace"
  else if domains < 1 then reject "domains must be >= 1"
  else if (match deadline with Some d -> not (d > 0.) || d = infinity | None -> false) then
    reject "deadline must be a positive finite number of seconds"
  else begin
    let key =
      {
        Result_cache.fingerprint = Protocol.submission_fingerprint trace;
        method_tag = Protocol.method_spec_tag method_;
        domains;
        max_level = (match max_level with None -> -1 | Some level -> level);
      }
    in
    match Result_cache.find t.cache key with
    | Some entry ->
      (* hot path: answered in the accept loop, no queueing, no kernel —
         cache hits stay answerable even when the queue is shedding *)
      respond_and_close t fd
        (Protocol.Result
           { Protocol.outcome = answer ~name ~query ~max_level entry; cache_hit = true })
    | None -> (
      (* single flight: a duplicate of a job already running attaches
         to it instead of electing a redundant kernel run; the leader's
         worker answers everyone *)
      match Inflight.begin_ t.inflight key { Inflight.fd; name; query } with
      | `Attached -> ()
      | `Leader -> (
        let cancel =
          match deadline with
          | None -> Cancel.cancellable ()
          | Some seconds -> Cancel.after seconds
        in
        let job =
          { fd; name; work; query; domains; max_level; key; cancel;
            settled = Atomic.make false }
        in
        let fail_flight e =
          let waiters = Inflight.complete t.inflight key in
          respond_and_close t fd (Protocol.Server_error e);
          List.iter
            (fun (w : Inflight.waiter) ->
              respond_and_close t w.Inflight.fd (Protocol.Server_error e))
            waiters
        in
        (* Approx jobs are never shed: their kernel is O(ms) over O(kB)
           of state whatever the stream length, so they ride the light
           tier with pings and cache probes. *)
        let heavy =
          match work with
          | Exact_work { trace; _ } -> Trace.length trace >= heavy_refs
          | Approx_work _ -> false
        in
        let pending = Job_queue.length t.queue in
        if (pending >= watermark t.config || Atomic.get t.draining) && heavy then begin
          (* overload shedding: past the watermark, heavy jobs are
             refused up front with a load-proportional retry hint, while
             light jobs, pings, health probes and cache hits still go
             through — graceful degradation instead of queue collapse.
             A draining node sheds every heavy job the same way: the
             retryable Queue_full sends new work elsewhere while cache
             hits keep being answered until routing moves off it. *)
          Atomic.incr t.shed;
          fail_flight
            (Dse_error.Queue_full
               { pending; max_pending = t.config.max_pending;
                 retry_after = retry_hint t.config ~pending })
        end
        else
          match Job_queue.push t.queue job with
          | `Ok -> () (* the worker now owns [fd] and the flight *)
          | `Full pending ->
            fail_flight
              (Dse_error.Queue_full
                 { pending; max_pending = t.config.max_pending;
                   retry_after = retry_hint t.config ~pending })
          | `Closed ->
            fail_flight
              (Dse_error.Io_error { file = t.config.socket_path; message = "server shutting down" })))
  end

let handle_connection t fd =
  (* a stalled or hostile client cannot wedge the accept loop forever *)
  Unix.setsockopt_float fd Unix.SO_RCVTIMEO 30.0;
  Unix.setsockopt_float fd Unix.SO_SNDTIMEO 30.0;
  match
    Protocol.read_request ?max_job_refs:t.config.max_job_refs
      ?memory_budget:t.config.memory_budget ~sketch_approx:true fd
  with
  | Ok None ->
    (* liveness probe (socket claim, monitoring): close silently *)
    close_noerr fd
  | Error e when Protocol.timed_out e ->
    (* replying to a peer that stalled mid-frame would block the accept
       loop for the send timeout on top of the receive one *)
    t.log "dropped a connection that timed out mid-request";
    close_noerr fd
  | Error (Dse_error.Resource_exhausted _ as e) ->
    (* admission control tripped while the declared size was still a
       varint: nothing was allocated, the refusal is structured *)
    Atomic.incr t.admission_rejected;
    respond_and_close t fd (Protocol.Server_error e)
  | Error e -> respond_and_close t fd (Protocol.Server_error e)
  | Ok (Some Protocol.Ping) -> respond_and_close t fd Protocol.Pong
  | Ok (Some Protocol.Server_stats) -> respond_and_close t fd (stats_reply t)
  | Ok (Some Protocol.Health) -> respond_and_close t fd (health_reply t)
  | Ok (Some (Protocol.Replicate { ring_version = seen; records })) -> (
    (* epoch fence first: a peer with a stale fleet view must refetch
       the config, not place warm state under the wrong ring *)
    match fence t seen with
    | Some e -> respond_and_close t fd (Protocol.Server_error e)
    | None ->
      (* a peer pushing warm results; an undecodable record is dropped
         (the ack count tells the pusher), it can never corrupt us *)
      let stored =
        List.fold_left
          (fun acc record ->
            match Wal.decode_record record with
            | Some (key, entry) ->
              store_replica t key entry;
              acc + 1
            | None ->
              t.log "replicate: dropped an undecodable record from a peer";
              acc)
          0 records
      in
      respond_and_close t fd (Protocol.Replicate_ack { stored }))
  | Ok (Some (Protocol.Cache_query { ring_version = seen; keys })) -> (
    match fence t seen with
    | Some e -> respond_and_close t fd (Protocol.Server_error e)
    | None -> (
      match keys with
      | [] ->
        (* digest form: advertise every replicable (exact) cache key *)
        respond_and_close t fd
          (Protocol.Cache_reply { keys = Result_cache.exact_keys t.cache; records = [] })
      | keys ->
        (* fetch form: a router failover lookup or an anti-entropy pull;
           each served entry is a kernel run someone else did not repeat *)
        let records =
          List.filter_map
            (fun key ->
              match Result_cache.find t.cache key with
              | Some entry -> (
                match Wal.encode_record key entry with
                | Some record ->
                  Atomic.incr t.peer_hits;
                  Some record
                | None -> None)
              | None -> None)
            keys
        in
        respond_and_close t fd (Protocol.Cache_reply { keys = []; records })))
  | Ok (Some Protocol.Ring_status) ->
    respond_and_close t fd
      (Protocol.Ring_reply
         { config = current_config t; draining = Atomic.get t.draining; pushed = 0 })
  | Ok (Some (Protocol.Ring_update { config })) -> (
    match validate_config config with
    | Error message ->
      respond_and_close t fd
        (Protocol.Server_error
           (Dse_error.Constraint_violation { context = "ring-update"; message }))
    | Ok () ->
      (* adopt-if-newer, then echo whatever view we hold now: the
         caller learns in one round whether it was news or a replay *)
      ignore (adopt_if_newer t config);
      respond_and_close t fd
        (Protocol.Ring_reply
           { config = current_config t; draining = Atomic.get t.draining; pushed = 0 }))
  | Ok (Some (Protocol.Drain { config })) -> handle_drain t fd config
  | Ok (Some (Protocol.Submit { name; trace; query; method_; domains; max_level; deadline })) ->
    handle_submission t fd ~name ~trace ~query ~method_ ~domains ~max_level ~deadline

let run t =
  let pool =
    Worker_pool.start ~workers:t.config.workers
      ~run:(fun ~heartbeat job -> run_job t ~heartbeat job)
      t.queue
  in
  t.pool <- Some pool;
  (* One domain owns all outbound peer traffic: first the anti-entropy
     exchange (serving has already started — a node warms up while it
     answers), then the push-queue drain loop. Single-threaded pushes
     keep per-peer ordering and bound the node's outbound fan-out. *)
  let repl_domain =
    match t.repl_queue with
    | Some queue ->
      Some
        (Domain.spawn (fun () ->
             let sync () =
               if t.config.anti_entropy then begin
                 match anti_entropy t with
                 | () -> ()
                 | exception e ->
                   t.log (Printf.sprintf "anti-entropy failed: %s" (Printexc.to_string e))
               end
             in
             sync ();
             let rec drain () =
               match Job_queue.pop queue with
               | None -> ()
               | Some ("", _) ->
                 (* membership-change sentinel: re-run the digest
                    exchange under the just-adopted ring *)
                 sync ();
                 drain ()
               | Some (target, record) ->
                 (match push_record t target record with
                 | () -> ()
                 | exception e ->
                   t.log (Printf.sprintf "replication push: %s" (Printexc.to_string e)));
                 drain ()
             in
             drain ()))
    | None -> None
  in
  let listeners =
    t.listen_fd :: (match t.tcp_fd with Some fd -> [ fd ] | None -> [])
  in
  let accept_from listen_fd =
    match Unix.accept listen_fd with
    | fd, _ -> (
      (* an accepted TCP connection wants Nagle off just like an
         outbound one; no-op on the Unix socket *)
      Transport.tune fd;
      (* the serve loop must outlive any one connection: log and
         continue, never leak an exception to the top level *)
      try handle_connection t fd
      with e ->
        t.log (Printf.sprintf "connection handler: %s" (Printexc.to_string e));
        close_noerr fd)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  in
  let rec accept_loop () =
    if not (Atomic.get t.stopping) then begin
      (match Unix.select listeners [] [] 0.1 with
      | ready, _, _ -> List.iter accept_from ready
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      (* the watchdog rides the select tick: detection latency is
         bounded by hang_timeout plus one 0.1 s tick *)
      List.iter (settle_stalled t) (Watchdog.scan pool ~hang_timeout:t.config.hang_timeout);
      (* replica GC rides it too: due batches fire within a tick of
         their grace expiry *)
      run_replica_gc t;
      accept_loop ()
    end
  in
  accept_loop ();
  (* drain: no new connections, but every queued and in-flight job is
     finished and answered (waiters included) before the daemon exits.
     Abandoned worker domains are deliberately not waited for. *)
  let pending = Job_queue.length t.queue in
  if pending > 0 then t.log (Printf.sprintf "draining %d pending job(s)" pending);
  Job_queue.close t.queue;
  Worker_pool.join pool;
  (* workers are done, so no new pushes can be queued: close the
     replication queue and let the domain drain what remains *)
  (match t.repl_queue with Some queue -> Job_queue.close queue | None -> ());
  (match repl_domain with Some d -> Domain.join d | None -> ());
  close_noerr t.listen_fd;
  (match t.tcp_fd with Some fd -> close_noerr fd | None -> ());
  (match t.wal with Some wal -> Wal.close wal | None -> ());
  (try Unix.unlink t.config.socket_path with Unix.Unix_error (_, _, _) | Sys_error _ -> ());
  t.log
    (Printf.sprintf "drained; %d job(s) completed over this run" (Atomic.get t.jobs_completed))

let socket_path t = t.config.socket_path
