type config = {
  socket_path : string;
  tcp : string option;
  node_id : string option;
  workers : int;
  max_pending : int;
  cache_entries : int;
  wal_path : string option;
  hang_timeout : float;
  max_job_refs : int option;
  memory_budget : int option;
  peers : string list;
  replication : int;
  replication_queue : int;
  anti_entropy : bool;
}

(* What the worker actually runs: an exact kernel over a materialised
   trace, or the approximate estimator over a profile the protocol
   layer already sketched during decode (no trace ever existed). *)
type work =
  | Exact_work of { trace : Trace.t; method_ : Analytical.method_ }
  | Approx_work of Sketch.profile

type job = {
  fd : Unix.file_descr;
  name : string;
  work : work;
  query : Protocol.query;
  domains : int;
  max_level : int option;
  key : Result_cache.key;
  cancel : Cancel.t;
  (* Exactly one party replies to this flight: the worker that finishes
     the job, or the watchdog that declares it stalled. Whoever wins
     this CAS owns [fd] (and the flight's waiters); the loser — e.g. an
     abandoned worker that unwedges hours later, when the fd number may
     already belong to a different connection — discards silently. *)
  settled : bool Atomic.t;
}

type t = {
  config : config;
  listen_fd : Unix.file_descr;
  tcp_fd : Unix.file_descr option;
  node_id : string;
  queue : job Job_queue.t;
  cache : Result_cache.t;
  inflight : Inflight.t;
  wal : Wal.t option;
  (* [Some] iff peers were configured: this node's view of the fleet
     (itself + peers), agreeing with the router's ring as long as both
     spell node names the same way *)
  ring : Ring.t option;
  (* outbound (target node, encoded record) pushes; bounded, so a slow
     peer costs at most [replication_queue] buffered records and then
     durability (drops are counted), never serving *)
  repl_queue : (string * string) Job_queue.t option;
  stopping : bool Atomic.t;
  jobs_completed : int Atomic.t;
  shed : int Atomic.t;
  admission_rejected : int Atomic.t;
  wal_appends : int Atomic.t;
  wal_failures : int Atomic.t;
  peer_hits : int Atomic.t;
  replicated_in : int Atomic.t;
  replicated_out : int Atomic.t;
  replication_dropped : int Atomic.t;
  started : float;
  mutable pool : job Worker_pool.t option;
  on_job_start : unit -> unit;
  log : string -> unit;
}

let close_noerr fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* Shedding starts at 3/4 of the queue bound (rounded up): the last
   quarter of the queue is reserved for light jobs, pings and cache
   probes, so an overload of heavy submissions degrades the heavy tier
   first while the cheap tier keeps answering. *)
let watermark config = max 1 (((3 * config.max_pending) + 3) / 4)

(* A job at or above one shard of streaming work is "heavy" for
   shedding purposes: it is the class whose kernel time dominates queue
   drain time under overload. *)
let heavy_refs = Streaming.min_shard_refs

(* How long until a worker likely frees up: queue depth spread over the
   pool, at an assumed quarter-second per heavy job — deliberately
   rough, it only has to make client backoff proportional to load. *)
let retry_hint config ~pending =
  Float.min 10. (0.25 *. (float_of_int (pending + config.workers) /. float_of_int config.workers))

(* Warm the cache from the WAL in append order (later duplicates win
   and recency is reproduced); damage is tolerated by design and only
   logged. *)
let restore_from_wal ~log ~cache path =
  match Wal.replay path with
  | Error _ as e -> e
  | Ok { Wal.entries; intact; damaged; truncated } ->
    List.iter (fun (key, entry) -> Result_cache.store cache key entry) entries;
    if intact > 0 || damaged > 0 || truncated then
      log
        (Printf.sprintf "wal: restored %d cached result(s) from %s%s%s" intact path
           (if damaged > 0 then Printf.sprintf ", skipped %d damaged record(s)" damaged else "")
           (if truncated then ", dropped a torn tail" else ""));
    Ok ()

let create ?(on_job_start = fun () -> ()) ?(log = fun msg -> Format.eprintf "dse-serve: %s@." msg)
    config =
  let invalid message =
    Error (Dse_error.Constraint_violation { context = "serve"; message })
  in
  if config.workers < 1 then invalid "workers must be >= 1"
  else if config.max_pending < 1 then invalid "max-pending must be >= 1"
  else if config.cache_entries < 1 then invalid "cache-entries must be >= 1"
  else if not (config.hang_timeout > 0. && config.hang_timeout < infinity) then
    invalid "hang-timeout must be a positive finite number of seconds"
  else if (match config.max_job_refs with Some n -> n < 1 | None -> false) then
    invalid "max-job-refs must be >= 1"
  else if (match config.memory_budget with Some n -> n < 1 | None -> false) then
    invalid "memory-budget must be >= 1"
  else if config.replication < 1 then invalid "replication must be >= 1"
  else if config.replication_queue < 1 then invalid "replication-queue must be >= 1"
  else if
    List.length (List.sort_uniq String.compare config.peers) <> List.length config.peers
  then invalid "duplicate peer address"
  else
    (* The TCP address is validated before any socket is bound: "--tcp"
       must actually be host:port, not a path that fell through parse. *)
    let tcp_addr =
      match config.tcp with
      | None -> Ok None
      | Some s -> (
        match Transport.parse s with
        | Transport.Tcp _ as addr -> Ok (Some addr)
        | Transport.Unix_socket _ ->
          invalid (Printf.sprintf "--tcp expects host:port, got %S" s))
    in
    match tcp_addr with
    | Error _ as e -> e
    | Ok tcp_addr -> (
      match Transport.listen (Transport.Unix_socket config.socket_path) with
      | Error _ as e -> e
      | Ok listen_fd -> (
        let tcp_fd =
          match tcp_addr with
          | None -> Ok None
          | Some addr -> (
            match Transport.listen addr with
            | Ok fd -> Ok (Some fd)
            | Error _ as e ->
              close_noerr listen_fd;
              Transport.unlink (Transport.Unix_socket config.socket_path);
              e)
        in
        match tcp_fd with
        | Error e -> Error e
        | Ok tcp_fd -> (
          let release_listeners () =
            close_noerr listen_fd;
            (match tcp_fd with Some fd -> close_noerr fd | None -> ());
            Transport.unlink (Transport.Unix_socket config.socket_path)
          in
          let cache = Result_cache.create ~capacity:config.cache_entries () in
          let wal_result =
            match config.wal_path with
            | None -> Ok None
            | Some path -> (
              match restore_from_wal ~log ~cache path with
              | Error _ as e -> e
              | Ok () -> (
                match
                  Wal.open_ ~capacity:config.cache_entries
                    ~snapshot:(fun () -> Result_cache.snapshot cache)
                    path
                with
                | Error _ as e -> e
                | Ok wal -> Ok (Some wal)))
          in
          match wal_result with
          | Error e ->
            release_listeners ();
            Error e
          | Ok wal ->
            (* a client vanishing mid-reply must be an EPIPE result, not
               a process-killing signal *)
            (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
            (* The id must survive a respawn (that is its point: the
               router pairs a stable id with a changing start epoch), so
               it defaults to the daemon's address — TCP when serving a
               fleet, else the socket path. *)
            let node_id =
              match config.node_id with
              | Some id -> id
              | None -> (
                match config.tcp with Some addr -> addr | None -> config.socket_path)
            in
            if List.mem node_id config.peers then begin
              release_listeners ();
              (match wal with Some w -> Wal.close w | None -> ());
              invalid (Printf.sprintf "peer list includes this node's own id %S" node_id)
            end
            else
              (* Replica placement needs a fleet view: the ring over
                 self + peers. The peer strings must be dialable
                 addresses AND spelled exactly as the router spells its
                 --backend list, or the two rings disagree on
                 successors — which is why node_id defaults to the
                 daemon's address. *)
              let ring =
                match config.peers with
                | [] -> None
                | peers -> Some (Ring.create (node_id :: peers))
              in
              let repl_queue =
                match ring with
                | None -> None
                | Some _ -> Some (Job_queue.create ~max_pending:config.replication_queue)
              in
              Ok
                {
                  config;
                  listen_fd;
                  tcp_fd;
                  node_id;
                  queue = Job_queue.create ~max_pending:config.max_pending;
                  cache;
                  inflight = Inflight.create ();
                  wal;
                  ring;
                  repl_queue;
                  stopping = Atomic.make false;
                  jobs_completed = Atomic.make 0;
                  shed = Atomic.make 0;
                  admission_rejected = Atomic.make 0;
                  wal_appends = Atomic.make 0;
                  wal_failures = Atomic.make 0;
                  peer_hits = Atomic.make 0;
                  replicated_in = Atomic.make 0;
                  replicated_out = Atomic.make 0;
                  replication_dropped = Atomic.make 0;
                  started = Unix.gettimeofday ();
                  pool = None;
                  on_job_start;
                  log;
                })))

let stop t = Atomic.set t.stopping true

let install_signal_handlers t =
  let handler = Sys.Signal_handle (fun _ -> stop t) in
  Sys.set_signal Sys.sigterm handler;
  Sys.set_signal Sys.sigint handler

(* The entry→outcome derivation lives in Protocol (answer_entry) so the
   router can build the same reply from a peer's replicated record. *)
let answer = Protocol.answer_entry

(* -- replication -- *)

(* Store a record that arrived from a peer (a Replicate push or an
   anti-entropy pull). It takes the same path as a locally computed
   result — cache store + WAL append — so a replica is durable here
   too, and a later restart of this node warms it from its own WAL. *)
let store_replica t key entry =
  Result_cache.store t.cache key entry;
  Atomic.incr t.replicated_in;
  match t.wal with
  | None -> ()
  | Some wal -> (
    match Wal.append wal key entry with
    | Ok () -> Atomic.incr t.wal_appends
    | Error e ->
      Atomic.incr t.wal_failures;
      t.log (Printf.sprintf "wal append failed: %s" (Dse_error.to_string e)))

(* Fire-and-forget: a finished entry is queued for this node's R−1
   distinct ring successors *for the key* — so a spilled or failed-over
   job's result still lands on the nodes any router will walk for that
   fingerprint, the owner included. A full queue drops the push and
   counts it: a slow peer degrades durability, never serving. *)
let replicate t key entry =
  match (t.ring, t.repl_queue) with
  | Some ring, Some queue when t.config.replication > 1 -> (
    match Wal.encode_record key entry with
    | None -> () (* approx entries are not replicated, mirroring the WAL *)
    | Some record ->
      Ring.successors ring key.Result_cache.fingerprint
      |> List.filter (fun node -> node <> t.node_id)
      |> List.filteri (fun i _ -> i < t.config.replication - 1)
      |> List.iter (fun target ->
             match Job_queue.push queue (target, record) with
             | `Ok -> ()
             | `Full _ -> Atomic.incr t.replication_dropped
             | `Closed -> ()))
  | _ -> ()

(* One request/response exchange with a peer daemon, from the
   replication domain. Bounded everywhere (connect, send, receive): a
   wedged peer must not wedge the pusher. *)
let peer_exchange target request =
  let addr = Transport.parse target in
  match Transport.connect ~timeout:2.0 addr with
  | Error e -> Error e
  | Ok fd ->
    Fun.protect
      ~finally:(fun () -> close_noerr fd)
      (fun () ->
        Unix.setsockopt_float fd Unix.SO_SNDTIMEO 10.0;
        Unix.setsockopt_float fd Unix.SO_RCVTIMEO 10.0;
        match Protocol.write_request ~peer:target fd request with
        | Error _ as e -> e
        | Ok () -> Protocol.read_response ~peer:target fd)

let push_record t target record =
  match peer_exchange target (Protocol.Replicate { records = [ record ] }) with
  | Ok (Protocol.Replicate_ack { stored }) when stored >= 1 -> Atomic.incr t.replicated_out
  | Ok _ ->
    t.log (Printf.sprintf "replication: peer %s refused a record" target)
  | Error e ->
    t.log (Printf.sprintf "replication: push to %s failed: %s" target (Dse_error.to_string e))

(* Anti-entropy on (re)join: ask each ring neighbour for its cache-key
   digest, keep the keys this node participates in (it is among the
   first R nodes of the key's ring walk) and does not already hold,
   and pull exactly those. A WAL-restored restart pulls nothing; a
   WAL-less respawn re-warms its whole range from its peers. *)
let anti_entropy t ring =
  let r = t.config.replication in
  let wanted key =
    (not (Result_cache.mem t.cache key))
    &&
    let rec placed i = function
      | [] -> false
      | node :: rest -> (i < r && node = t.node_id) || (i + 1 < r && placed (i + 1) rest)
    in
    placed 0 (Ring.successors ring key.Result_cache.fingerprint)
  in
  List.iter
    (fun peer ->
      match peer_exchange peer (Protocol.Cache_query { keys = [] }) with
      | Ok (Protocol.Cache_reply { keys; _ }) -> (
        match List.filter wanted keys with
        | [] -> ()
        | missing -> (
          match peer_exchange peer (Protocol.Cache_query { keys = missing }) with
          | Ok (Protocol.Cache_reply { records; _ }) ->
            let pulled =
              List.fold_left
                (fun acc record ->
                  match Wal.decode_record record with
                  | Some (key, entry) ->
                    store_replica t key entry;
                    acc + 1
                  | None -> acc)
                0 records
            in
            t.log
              (Printf.sprintf "anti-entropy: pulled %d/%d missing entr%s from %s" pulled
                 (List.length missing)
                 (if pulled = 1 then "y" else "ies")
                 peer)
          | Ok _ | Error _ ->
            t.log (Printf.sprintf "anti-entropy: pull from %s failed" peer)))
      | Ok _ -> t.log (Printf.sprintf "anti-entropy: unexpected digest reply from %s" peer)
      | Error _ ->
        (* a dead or not-yet-started neighbour is normal during a rolling
           (re)start; replication-on-completion covers the gap *)
        t.log (Printf.sprintf "anti-entropy: %s unreachable, skipped" peer))
    (Ring.neighbors ring t.node_id)

let stats_reply t =
  let c = Result_cache.counters t.cache in
  Protocol.Stats_reply
    {
      Protocol.jobs_completed = Atomic.get t.jobs_completed;
      cache_hits = c.Result_cache.hits;
      cache_misses = c.Result_cache.misses;
      cache_entries = c.Result_cache.entries;
      cache_evictions = c.Result_cache.evictions;
      coalesced_hits = Inflight.coalesced t.inflight;
      pending = Job_queue.length t.queue;
      workers = t.config.workers;
    }

let health_reply t =
  let c = Result_cache.counters t.cache in
  let now = Unix.gettimeofday () in
  let workers, workers_replaced =
    match t.pool with
    | None -> ([], 0)
    | Some pool ->
      ( List.map
          (fun (v : job Worker_pool.view) ->
            match v.Worker_pool.running with
            | Some r ->
              {
                Protocol.slot = v.Worker_pool.slot;
                busy = true;
                job = r.Worker_pool.job.name;
                heartbeat_age = Heartbeat.age ~now r.Worker_pool.heartbeat;
                jobs_done = v.Worker_pool.jobs_done;
              }
            | None ->
              {
                Protocol.slot = v.Worker_pool.slot;
                busy = false;
                job = "";
                heartbeat_age = 0.;
                jobs_done = v.Worker_pool.jobs_done;
              })
          (Worker_pool.snapshot pool),
        Worker_pool.replaced pool )
  in
  Protocol.Health_reply
    {
      Protocol.node_id = t.node_id;
      start_epoch = t.started;
      uptime = now -. t.started;
      workers;
      workers_replaced;
      queue_depth = Job_queue.length t.queue;
      queue_watermark = watermark t.config;
      max_pending = t.config.max_pending;
      shed = Atomic.get t.shed;
      admission_rejected = Atomic.get t.admission_rejected;
      jobs_completed = Atomic.get t.jobs_completed;
      cache_hits = c.Result_cache.hits;
      cache_misses = c.Result_cache.misses;
      cache_entries = c.Result_cache.entries;
      cache_evictions = c.Result_cache.evictions;
      coalesced_hits = Inflight.coalesced t.inflight;
      wal_enabled = t.wal <> None;
      wal_appends = Atomic.get t.wal_appends;
      wal_failures = Atomic.get t.wal_failures;
      peer_hits = Atomic.get t.peer_hits;
      replicated_in = Atomic.get t.replicated_in;
      replicated_out = Atomic.get t.replicated_out;
      replication_lag = (match t.repl_queue with Some q -> Job_queue.length q | None -> 0);
      replication_dropped = Atomic.get t.replication_dropped;
    }

let respond_and_close t fd response =
  (match Protocol.write_response fd response with
  | Ok () -> ()
  | Error e -> t.log (Printf.sprintf "reply failed: %s" (Dse_error.to_string e)));
  close_noerr fd

(* Every party of a single flight — the leader plus its attached
   waiters — gets a reply built from its own name and query. *)
let respond_flight t job outcome =
  let waiters = Inflight.complete t.inflight job.key in
  let reply ~name ~query fd =
    let response =
      match outcome with
      | Ok entry ->
        Protocol.Result
          { Protocol.outcome = answer ~name ~query ~max_level:job.max_level entry;
            cache_hit = false }
      | Error e -> Protocol.Server_error e
    in
    respond_and_close t fd response
  in
  reply ~name:job.name ~query:job.query job.fd;
  List.iter
    (fun (w : Inflight.waiter) -> reply ~name:w.Inflight.name ~query:w.Inflight.query w.Inflight.fd)
    waiters

(* Runs in a worker domain. The kernel call goes through the standard
   [Analytical] pipeline, so [domains > 1] jobs get Shard_exec's
   per-shard recovery ladder and the job's cancel token — carrying this
   worker's heartbeat — is polled at the documented points; every
   failure — deadline expiry included — becomes a structured reply to
   this flight's clients and the worker lives on. A worker that lost
   the settled race (the watchdog already answered this flight) stores
   nothing and replies to no one: its fd may have been reused and a new
   flight for the same key may be in progress. *)
let run_job t ~heartbeat job =
  t.on_job_start ();
  let cancel = Cancel.with_heartbeat heartbeat job.cancel in
  let outcome =
    match
      (* the deadline clock started at submission, so time spent queued
         counts; an already-expired job fails here without a kernel run *)
      Cancel.check cancel;
      (match job.work with
      | Exact_work { trace; method_ } ->
        let prepared = Analytical.prepare ?max_level:job.max_level trace in
        (* O(1) off the arena build: the default arena method never boxes
           the strip, so a job's heap cost is the decoded trace alone *)
        let stats = Analytical.stats prepared in
        let histograms =
          Analytical.histograms ~cancel ~method_ ~domains:job.domains prepared
        in
        Result_cache.Exact { stats; histograms }
      | Approx_work profile ->
        (* the estimator is exercised once here, so a degenerate profile
           becomes a typed reply from the worker instead of an exception
           in the accept loop's answer path *)
        ignore (Approx_dse.prepare profile);
        Result_cache.Approx profile)
    with
    | entry -> Ok entry
    | exception Dse_error.Error e -> Error e
    | exception Invalid_argument message ->
      Error (Dse_error.Constraint_violation { context = "submit"; message })
    | exception e ->
      (* unexpected engine crash: internal-failure class (exit 5) *)
      Error (Dse_error.Shard_failure { shard = 0; attempts = 1; message = Printexc.to_string e })
  in
  if Atomic.compare_and_set job.settled false true then begin
    (match outcome with
    | Ok entry ->
      Result_cache.store t.cache job.key entry;
      (match t.wal with
      | None -> ()
      | Some wal -> (
        (* a full disk degrades persistence, never serving *)
        match Wal.append wal job.key entry with
        | Ok () -> Atomic.incr t.wal_appends
        | Error e ->
          Atomic.incr t.wal_failures;
          t.log (Printf.sprintf "wal append failed: %s" (Dse_error.to_string e))));
      replicate t job.key entry
    | Error _ -> ());
    Atomic.incr t.jobs_completed;
    respond_flight t job outcome
  end
  else
    t.log
      (Printf.sprintf "abandoned worker finished %s after the watchdog answered; result discarded"
         job.name)

(* The watchdog found a worker silent past the hang timeout and already
   replaced it ([Watchdog.scan] is atomic per worker). Settle the flight
   from the accept loop: cancel the job's token (an abandoned worker
   that was merely slow aborts at its next poll instead of burning a
   core to the end) and answer everyone with the typed stall. *)
let settle_stalled t (s : job Watchdog.stalled) =
  let job = s.Watchdog.job in
  if Atomic.compare_and_set job.settled false true then begin
    Cancel.cancel job.cancel;
    t.log
      (Printf.sprintf
         "watchdog: worker %d silent for %.2f s running %s; domain abandoned, replacement spawned"
         s.Watchdog.slot s.Watchdog.silent_for job.name);
    let e = Dse_error.Worker_stalled { elapsed = s.Watchdog.elapsed; job = job.name } in
    let waiters = Inflight.complete t.inflight job.key in
    respond_and_close t job.fd (Protocol.Server_error e);
    List.iter
      (fun (w : Inflight.waiter) -> respond_and_close t w.Inflight.fd (Protocol.Server_error e))
      waiters
  end

let handle_submission t fd ~name ~trace ~query ~method_ ~domains ~max_level ~deadline =
  let reject message =
    respond_and_close t fd
      (Protocol.Server_error (Dse_error.Constraint_violation { context = "submit"; message }))
  in
  (* Total over (spec, decoded payload). The daemon's decoder sketches
     approx submissions, so Approx normally arrives Sketched; a
     materialised approx submission (a hand-crafted frame) is sketched
     here, and a sketched exact one is impossible to serve. *)
  let work =
    match (method_, trace) with
    | Protocol.Exact m, Protocol.Full trace -> Ok (Exact_work { trace; method_ = m })
    | Protocol.Approx, Protocol.Sketched profile -> Ok (Approx_work profile)
    | Protocol.Approx, Protocol.Full trace -> Ok (Approx_work (Sketch.of_trace trace))
    | Protocol.Exact _, Protocol.Sketched _ ->
      Error "a sketched submission cannot run an exact method"
  in
  match work with
  | Error message -> reject message
  | Ok work ->
  if Protocol.submission_refs trace = 0 then reject "empty trace"
  else if domains < 1 then reject "domains must be >= 1"
  else if (match deadline with Some d -> not (d > 0.) || d = infinity | None -> false) then
    reject "deadline must be a positive finite number of seconds"
  else begin
    let key =
      {
        Result_cache.fingerprint = Protocol.submission_fingerprint trace;
        method_tag = Protocol.method_spec_tag method_;
        domains;
        max_level = (match max_level with None -> -1 | Some level -> level);
      }
    in
    match Result_cache.find t.cache key with
    | Some entry ->
      (* hot path: answered in the accept loop, no queueing, no kernel —
         cache hits stay answerable even when the queue is shedding *)
      respond_and_close t fd
        (Protocol.Result
           { Protocol.outcome = answer ~name ~query ~max_level entry; cache_hit = true })
    | None -> (
      (* single flight: a duplicate of a job already running attaches
         to it instead of electing a redundant kernel run; the leader's
         worker answers everyone *)
      match Inflight.begin_ t.inflight key { Inflight.fd; name; query } with
      | `Attached -> ()
      | `Leader -> (
        let cancel =
          match deadline with
          | None -> Cancel.cancellable ()
          | Some seconds -> Cancel.after seconds
        in
        let job =
          { fd; name; work; query; domains; max_level; key; cancel;
            settled = Atomic.make false }
        in
        let fail_flight e =
          let waiters = Inflight.complete t.inflight key in
          respond_and_close t fd (Protocol.Server_error e);
          List.iter
            (fun (w : Inflight.waiter) ->
              respond_and_close t w.Inflight.fd (Protocol.Server_error e))
            waiters
        in
        (* Approx jobs are never shed: their kernel is O(ms) over O(kB)
           of state whatever the stream length, so they ride the light
           tier with pings and cache probes. *)
        let heavy =
          match work with
          | Exact_work { trace; _ } -> Trace.length trace >= heavy_refs
          | Approx_work _ -> false
        in
        let pending = Job_queue.length t.queue in
        if pending >= watermark t.config && heavy then begin
          (* overload shedding: past the watermark, heavy jobs are
             refused up front with a load-proportional retry hint, while
             light jobs, pings, health probes and cache hits still go
             through — graceful degradation instead of queue collapse *)
          Atomic.incr t.shed;
          fail_flight
            (Dse_error.Queue_full
               { pending; max_pending = t.config.max_pending;
                 retry_after = retry_hint t.config ~pending })
        end
        else
          match Job_queue.push t.queue job with
          | `Ok -> () (* the worker now owns [fd] and the flight *)
          | `Full pending ->
            fail_flight
              (Dse_error.Queue_full
                 { pending; max_pending = t.config.max_pending;
                   retry_after = retry_hint t.config ~pending })
          | `Closed ->
            fail_flight
              (Dse_error.Io_error { file = t.config.socket_path; message = "server shutting down" })))
  end

let handle_connection t fd =
  (* a stalled or hostile client cannot wedge the accept loop forever *)
  Unix.setsockopt_float fd Unix.SO_RCVTIMEO 30.0;
  Unix.setsockopt_float fd Unix.SO_SNDTIMEO 30.0;
  match
    Protocol.read_request ?max_job_refs:t.config.max_job_refs
      ?memory_budget:t.config.memory_budget ~sketch_approx:true fd
  with
  | Ok None ->
    (* liveness probe (socket claim, monitoring): close silently *)
    close_noerr fd
  | Error e when Protocol.timed_out e ->
    (* replying to a peer that stalled mid-frame would block the accept
       loop for the send timeout on top of the receive one *)
    t.log "dropped a connection that timed out mid-request";
    close_noerr fd
  | Error (Dse_error.Resource_exhausted _ as e) ->
    (* admission control tripped while the declared size was still a
       varint: nothing was allocated, the refusal is structured *)
    Atomic.incr t.admission_rejected;
    respond_and_close t fd (Protocol.Server_error e)
  | Error e -> respond_and_close t fd (Protocol.Server_error e)
  | Ok (Some Protocol.Ping) -> respond_and_close t fd Protocol.Pong
  | Ok (Some Protocol.Server_stats) -> respond_and_close t fd (stats_reply t)
  | Ok (Some Protocol.Health) -> respond_and_close t fd (health_reply t)
  | Ok (Some (Protocol.Replicate { records })) ->
    (* a peer pushing warm results; an undecodable record is dropped
       (the ack count tells the pusher), it can never corrupt us *)
    let stored =
      List.fold_left
        (fun acc record ->
          match Wal.decode_record record with
          | Some (key, entry) ->
            store_replica t key entry;
            acc + 1
          | None ->
            t.log "replicate: dropped an undecodable record from a peer";
            acc)
        0 records
    in
    respond_and_close t fd (Protocol.Replicate_ack { stored })
  | Ok (Some (Protocol.Cache_query { keys = [] })) ->
    (* digest form: advertise every replicable (exact) cache key *)
    respond_and_close t fd
      (Protocol.Cache_reply { keys = Result_cache.exact_keys t.cache; records = [] })
  | Ok (Some (Protocol.Cache_query { keys })) ->
    (* fetch form: a router failover lookup or an anti-entropy pull;
       each served entry is a kernel run someone else did not repeat *)
    let records =
      List.filter_map
        (fun key ->
          match Result_cache.find t.cache key with
          | Some entry -> (
            match Wal.encode_record key entry with
            | Some record ->
              Atomic.incr t.peer_hits;
              Some record
            | None -> None)
          | None -> None)
        keys
    in
    respond_and_close t fd (Protocol.Cache_reply { keys = []; records })
  | Ok (Some (Protocol.Submit { name; trace; query; method_; domains; max_level; deadline })) ->
    handle_submission t fd ~name ~trace ~query ~method_ ~domains ~max_level ~deadline

let run t =
  let pool =
    Worker_pool.start ~workers:t.config.workers
      ~run:(fun ~heartbeat job -> run_job t ~heartbeat job)
      t.queue
  in
  t.pool <- Some pool;
  (* One domain owns all outbound peer traffic: first the anti-entropy
     exchange (serving has already started — a node warms up while it
     answers), then the push-queue drain loop. Single-threaded pushes
     keep per-peer ordering and bound the node's outbound fan-out. *)
  let repl_domain =
    match (t.ring, t.repl_queue) with
    | Some ring, Some queue ->
      Some
        (Domain.spawn (fun () ->
             if t.config.anti_entropy then begin
               match anti_entropy t ring with
               | () -> ()
               | exception e ->
                 t.log (Printf.sprintf "anti-entropy failed: %s" (Printexc.to_string e))
             end;
             let rec drain () =
               match Job_queue.pop queue with
               | None -> ()
               | Some (target, record) ->
                 (match push_record t target record with
                 | () -> ()
                 | exception e ->
                   t.log (Printf.sprintf "replication push: %s" (Printexc.to_string e)));
                 drain ()
             in
             drain ()))
    | _ -> None
  in
  let listeners =
    t.listen_fd :: (match t.tcp_fd with Some fd -> [ fd ] | None -> [])
  in
  let accept_from listen_fd =
    match Unix.accept listen_fd with
    | fd, _ -> (
      (* an accepted TCP connection wants Nagle off just like an
         outbound one; no-op on the Unix socket *)
      Transport.tune fd;
      (* the serve loop must outlive any one connection: log and
         continue, never leak an exception to the top level *)
      try handle_connection t fd
      with e ->
        t.log (Printf.sprintf "connection handler: %s" (Printexc.to_string e));
        close_noerr fd)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  in
  let rec accept_loop () =
    if not (Atomic.get t.stopping) then begin
      (match Unix.select listeners [] [] 0.1 with
      | ready, _, _ -> List.iter accept_from ready
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      (* the watchdog rides the select tick: detection latency is
         bounded by hang_timeout plus one 0.1 s tick *)
      List.iter (settle_stalled t) (Watchdog.scan pool ~hang_timeout:t.config.hang_timeout);
      accept_loop ()
    end
  in
  accept_loop ();
  (* drain: no new connections, but every queued and in-flight job is
     finished and answered (waiters included) before the daemon exits.
     Abandoned worker domains are deliberately not waited for. *)
  let pending = Job_queue.length t.queue in
  if pending > 0 then t.log (Printf.sprintf "draining %d pending job(s)" pending);
  Job_queue.close t.queue;
  Worker_pool.join pool;
  (* workers are done, so no new pushes can be queued: close the
     replication queue and let the domain drain what remains *)
  (match t.repl_queue with Some queue -> Job_queue.close queue | None -> ());
  (match repl_domain with Some d -> Domain.join d | None -> ());
  close_noerr t.listen_fd;
  (match t.tcp_fd with Some fd -> close_noerr fd | None -> ());
  (match t.wal with Some wal -> Wal.close wal | None -> ());
  (try Unix.unlink t.config.socket_path with Unix.Unix_error (_, _, _) | Sys_error _ -> ());
  t.log
    (Printf.sprintf "drained; %d job(s) completed over this run" (Atomic.get t.jobs_completed))

let socket_path t = t.config.socket_path
