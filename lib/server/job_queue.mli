(** Bounded FIFO job queue with explicit backpressure.

    The serving layer never buffers without limit: a [push] beyond
    [max_pending] is rejected immediately (the caller turns the
    rejection into a {!Dse_error.Queue_full} response), so a burst of
    submissions degrades into fast, typed refusals instead of unbounded
    memory growth and unbounded latency. Safe to share across OCaml 5
    domains ([Mutex]/[Condition] from the standard library). *)

type 'a t

(** [create ~max_pending] is an empty queue admitting at most
    [max_pending] buffered jobs. Raises [Invalid_argument] when
    [max_pending < 1]. *)
val create : max_pending:int -> 'a t

(** [push t job] enqueues without blocking: [`Ok] on success, [`Full
    pending] when the queue already holds [max_pending] jobs (the job is
    NOT buffered), [`Closed] after {!close}. *)
val push : 'a t -> 'a -> [ `Ok | `Full of int | `Closed ]

(** [pop t] blocks until a job is available and dequeues it; [None] once
    the queue is closed {e and} drained — the worker-pool exit signal,
    which is what makes SIGTERM drain rather than drop queued jobs. *)
val pop : 'a t -> 'a option

(** [close t] rejects all future pushes and wakes every blocked {!pop};
    already-queued jobs are still handed out. *)
val close : 'a t -> unit

(** [length t] is the number of queued jobs right now. *)
val length : 'a t -> int

(** [max_pending t] is the configured depth bound. *)
val max_pending : 'a t -> int
