(** Content-addressed, LRU-bounded result cache for the serving layer.

    The analytical method's core economy (paper Figure 1(b)) is that one
    histogram computation answers {e every} subsequent budget query: the
    per-level conflict-cardinality histograms are a complete summary of
    the design space. The cache therefore stores exactly that — the
    histograms plus the calibrating {!Stats.t} — keyed by the trace's
    content ({!Trace.fingerprint}) together with the method, shard
    count, and requested level bound, so a repeated submission (or a
    K-only re-query of a solved trace) is answered without touching the
    kernel at all, via {!Analytical_dse.of_histograms} /
    {!Optimizer.of_histograms}.

    The cache is bounded: storing past [capacity] entries evicts the
    least-recently-used one (a long-lived daemon under many distinct
    traces cannot grow without limit), and evictions are counted for
    [dse submit --server-stats]. Eviction is O(entries) — trivial at the
    default capacity of 256 against the kernel run each store follows.

    Single-flight deduplication ({!Inflight}) means concurrent identical
    submissions reach {!store} at most once; a racing duplicate store
    would in any case overwrite with a bit-identical entry. *)

type key = {
  fingerprint : int64;  (** {!Trace.fingerprint} of the submitted trace *)
  method_tag : int;  (** {!Protocol.method_spec_tag}: the histogram kernel, or 4 = approx *)
  domains : int;  (** shard count the job ran with *)
  max_level : int;  (** requested level bound; [-1] encodes "unbounded" *)
}

(** An exact entry is the complete design-space summary (histograms +
    calibrating stats). An approx entry is the finalized sketch profile
    — the approximate analogue of the same economy: every budget query
    against it is answered by re-running the O(ms) estimator, and
    because the estimator is deterministic in the profile, a cached
    re-query is bit-identical to the first answer. *)
type entry =
  | Exact of { stats : Stats.t; histograms : int array array }
  | Approx of Sketch.profile

type counters = { hits : int; misses : int; entries : int; evictions : int }

type t

(** Default LRU bound (the CLI's [--cache-entries] default). *)
val default_capacity : int

(** [create ?capacity ()] makes an empty cache holding at most
    [capacity] (default {!default_capacity}, must be >= 1) entries. *)
val create : ?capacity:int -> unit -> t

(** [find t key] counts a hit or a miss; a hit refreshes the entry's
    recency. *)
val find : t -> key -> entry option

(** [store t key entry] inserts (or refreshes) the entry, evicting the
    least-recently-used one first when the cache is full. *)
val store : t -> key -> entry -> unit

(** [mem t key] is a pure peek: no hit/miss counting, no recency touch.
    Anti-entropy probes use it so replication traffic cannot distort
    the counters or LRU order established by serving traffic. *)
val mem : t -> key -> bool

(** [remove t key] drops the entry if present. Not counted as an
    eviction — evictions measure capacity pressure, while removal is
    replica GC dropping keys this node no longer participates in (the
    server surfaces those in its own health counter). *)
val remove : t -> key -> unit

(** [exact_keys t] is the cache-key digest exchanged by anti-entropy:
    the keys of every [Exact] entry, in no particular order. Approx
    entries are omitted — they are neither persisted nor replicated. *)
val exact_keys : t -> key list

(** [snapshot t] is every live entry, least-recently-used first —
    replaying a snapshot through {!store} in order reproduces both the
    contents and the recency order (the WAL compaction format). *)
val snapshot : t -> (key * entry) list

val capacity : t -> int

val counters : t -> counters
