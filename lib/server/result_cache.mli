(** Content-addressed result cache for the serving layer.

    The analytical method's core economy (paper Figure 1(b)) is that one
    histogram computation answers {e every} subsequent budget query: the
    per-level conflict-cardinality histograms are a complete summary of
    the design space. The cache therefore stores exactly that — the
    histograms plus the calibrating {!Stats.t} — keyed by the trace's
    content ({!Trace.fingerprint}) together with the method, shard
    count, and requested level bound, so a repeated submission (or a
    K-only re-query of a solved trace) is answered without touching the
    kernel at all, via {!Analytical_dse.of_histograms} /
    {!Optimizer.of_histograms}.

    Concurrent identical submissions may both miss and both compute; the
    second {!store} overwrites with an identical entry (all methods are
    bit-identical, property-tested), so the race is benign. *)

type key = {
  fingerprint : int64;  (** {!Trace.fingerprint} of the submitted trace *)
  method_tag : int;  (** {!Protocol.method_tag} of the histogram kernel *)
  domains : int;  (** shard count the job ran with *)
  max_level : int;  (** requested level bound; [-1] encodes "unbounded" *)
}

type entry = { stats : Stats.t; histograms : int array array }

type counters = { hits : int; misses : int; entries : int }

type t

val create : unit -> t

(** [find t key] counts a hit or a miss. *)
val find : t -> key -> entry option

val store : t -> key -> entry -> unit

val counters : t -> counters
