(** Transport addresses for the serving stack.

    The DSRV frame format is transport-agnostic (length-prefixed,
    CRC-guarded, and all frame reads/writes loop on short counts), so
    the daemon, client, and router speak the identical protocol over a
    Unix-domain socket or TCP. This module owns the address grammar and
    the socket plumbing both transports share: bounded connects,
    listener setup, and latency-oriented socket options
    ([TCP_NODELAY], [SO_REUSEADDR]). *)

type addr =
  | Unix_socket of string  (** a filesystem socket path *)
  | Tcp of { host : string; port : int }
      (** [host] may be empty: loopback for {!connect}, any-interface
          for {!listen} *)

(** [parse s] reads ["host:port"] (or [":port"]) as {!Tcp} when the
    suffix is a valid port number, and anything else as a
    {!Unix_socket} path — so every pre-TCP socket string keeps its
    meaning. *)
val parse : string -> addr

val to_string : addr -> string

(** [connect ?timeout addr] opens a blocking connected socket with
    [TCP_NODELAY] set. [timeout] bounds a TCP connect (via a
    non-blocking connect + select) so a dead or partitioned peer fails
    in [timeout] seconds instead of the kernel's SYN-retry minutes;
    Unix-socket connects fail immediately by nature and ignore it. *)
val connect : ?timeout:float -> addr -> (Unix.file_descr, Dse_error.t) result

(** [listen addr] binds and listens (backlog 64). For a Unix socket, a
    stale file from a crashed daemon is probed and unlinked while a
    live one is refused; for TCP, [SO_REUSEADDR] is set so restarts do
    not wait out [TIME_WAIT]. *)
val listen : addr -> (Unix.file_descr, Dse_error.t) result

(** [unlink addr] removes a Unix socket file, ignoring errors; no-op
    for TCP. *)
val unlink : addr -> unit

(** [tune fd] applies per-connection options to an accepted or
    connected socket (currently [TCP_NODELAY]); harmless on a Unix
    socket. *)
val tune : Unix.file_descr -> unit

(** [bound_port fd] is the local port of a TCP listener — useful after
    binding port 0 (ephemeral) in tests. [None] for Unix sockets. *)
val bound_port : Unix.file_descr -> int option

(** {2 Chaos-checked byte I/O}

    All DSRV frame traffic funnels through these three primitives, which
    consult {!Fault.net_drop} / {!Fault.net_delay} before touching the
    descriptor — so [DSE_FAULT=net:drop:K] and [net:delay:K:MS] inject
    connection resets and link stalls at the exact layer a flaky network
    would. With no fault armed they are plain [Unix.read]/[Unix.write]
    loops. *)

(** [read_some fd buf off len] is [Unix.read] behind the chaos hook;
    returns the (possibly short) count, [0] at end of stream. *)
val read_some : Unix.file_descr -> bytes -> int -> int -> int

(** [read_exact fd n] reads exactly [n] bytes, looping on short reads.
    Raises [End_of_file] if the stream ends early. *)
val read_exact : Unix.file_descr -> int -> bytes

(** [write_all fd b] writes all of [b], looping on short writes. *)
val write_all : Unix.file_descr -> bytes -> unit
