(** Worker pool over OCaml 5 domains.

    Each worker loops popping jobs from a {!Job_queue} and running them.
    A job's own failures are the job runner's responsibility (it replies
    a typed error to its client); an exception escaping the runner is
    logged through {!Dse_error.degraded} and the worker keeps serving —
    one poisonous job can never take a worker down. Jobs themselves may
    spawn further domains (the [Streaming]/[Shard_exec] pipeline does
    with [domains > 1]), so each job still gets PR 2's per-shard
    recovery ladder. *)

type t

(** [start ~workers ~run queue] spawns [workers] domains, each looping
    [Job_queue.pop queue] → [run]. Raises [Invalid_argument] when
    [workers < 1]. *)
val start : workers:int -> run:('job -> unit) -> 'job Job_queue.t -> t

(** [join t] waits for every worker to exit. Workers exit when the queue
    is closed and drained, so [Job_queue.close q; join t] is the drain
    sequence: queued jobs finish, then the domains return. *)
val join : t -> unit
