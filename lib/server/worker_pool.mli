(** Worker pool over OCaml 5 domains, with replaceable incarnations.

    Each worker loops popping jobs from a {!Job_queue} and running them
    under a fresh {!Heartbeat.t} (handed to [run], which threads it into
    the job's [Cancel] token so every kernel poll beats it). A job's own
    failures are the job runner's responsibility (it replies a typed
    error to its client); an exception escaping the runner is logged
    through {!Dse_error.degraded} and the worker keeps serving — one
    poisonous job can never take a worker down.

    What one poisonous job {e can} do is wedge: loop without reaching a
    cancellation poll. OCaml domains cannot be killed, so the pool
    instead tracks {e incarnations}: {!replace} marks a wedged
    incarnation abandoned (it is leaked, never joined; if it ever
    unwedges it finishes its job and exits without touching the queue
    again) and spawns a fresh domain on the same slot. The watchdog
    ({!Watchdog.scan}) drives this from heartbeat ages. *)

(** What a busy worker is doing, as sampled by {!snapshot}. The record
    is allocated fresh per job, so physical identity pins a specific
    (worker, job) incarnation across the snapshot → {!replace} window. *)
type 'job running = { job : 'job; heartbeat : Heartbeat.t; started : float }

(** Opaque identity of one worker incarnation. *)
type 'job handle

type 'job view = {
  slot : int;  (** Stable slot index, [0 .. workers-1]; survives replacement. *)
  running : 'job running option;  (** [None] when idle between jobs. *)
  jobs_done : int;  (** Jobs this incarnation finished (not the slot's lifetime total). *)
  handle : 'job handle;
}

type 'job t

(** [start ~workers ~run queue] spawns [workers] domains, each looping
    [Job_queue.pop queue] → [run ~heartbeat]. Raises [Invalid_argument]
    when [workers < 1]. *)
val start :
  workers:int -> run:(heartbeat:Heartbeat.t -> 'job -> unit) -> 'job Job_queue.t -> 'job t

(** [snapshot t] is the current live incarnations, sorted by slot. Safe
    from any domain; the [running] fields are a point-in-time sample. *)
val snapshot : 'job t -> 'job view list

(** [replace t handle ~expected] abandons the incarnation [handle] and
    spawns a fresh worker on its slot — iff [handle] is still live and
    still running the exact [expected] job (physical equality on the
    {!running} record). Returns [false] without side effects when the
    worker already finished that job or was already replaced, so a
    watchdog acting on a stale snapshot can never shoot a healthy
    worker. *)
val replace : 'job t -> 'job handle -> expected:'job running -> bool

(** [replaced t] counts successful {!replace} calls over the pool's
    lifetime. *)
val replaced : 'job t -> int

(** [join t] waits for every *live* worker to exit. Workers exit when
    the queue is closed and drained, so [Job_queue.close q; join t] is
    the drain sequence: queued jobs finish, then the domains return.
    Abandoned incarnations are not joined — a wedged domain would block
    shutdown forever. *)
val join : 'job t -> unit
