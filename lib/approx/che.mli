(** Che/Fagin characteristic-time miss-rate estimation over a sketched
    popularity profile.

    Under the independent-reference model an LRU cache of capacity [C]
    admits a characteristic time [T] solving the fixed point
    [Phi(T) = sum_i (1 - exp(-lambda_i T)) = C]; object [i] then misses
    each warm access with probability [exp(-lambda_i T)] (Fagin 1977,
    Che et al. 2002, Berthet's power-law application). The popularity
    model is assembled from a {!Sketch.profile}: exact-ish heavy-hitter
    counts for the head, a fitted power-law tail (log-log regression)
    binned geometrically with mass conserved. *)

(** Least-squares fit of [ln count ~ intercept - alpha * ln rank]. *)
type fit = { alpha : float; intercept : float; r2 : float }

(** [fit_power_law counts] regresses over the ranked (descending)
    [counts]; degenerate inputs (< 4 positive points) fall back to
    [alpha = 1, r2 = 0]. *)
val fit_power_law : float array -> fit

(** The popularity model: heavy head + binned power-law tail. *)
type model = {
  n : float;
  distinct : float;
  warm : float;  (** [n - distinct]: the warm-access (and miss) ceiling *)
  hot_addrs : int array;
  hot_w : float array;
  bin_items : float array;
  bin_each : float array;
  fit : fit;
}

val of_profile : Sketch.profile -> model

(** [phi model t] — expected distinct objects referenced in a window of
    [t] accesses; monotone in [t], saturating at [distinct]. *)
val phi : model -> float -> float

(** [solve_t model ~capacity] solves the fixed point by bisection;
    [infinity] when the working set fits ([capacity >= distinct]),
    meaning zero warm misses. *)
val solve_t : model -> capacity:float -> float

(** Expected warm misses of a fully-associative LRU of [capacity]
    lines. *)
val warm_misses_fa : model -> capacity:float -> float

(** The same as a fraction of warm accesses — what the reuse probes
    observe, hence the calibration axis. *)
val rate_fa : model -> capacity:float -> float

(** Set-associative estimate at a (depth, associativity) point.
    [misses] uses the heavy hitters' actual set placement (low
    [log2 depth] address bits, the paper's conflict-set rule) with
    per-set characteristic times; [generic] is the uniform-spread
    estimate; [imbalance] their gap. [dispersion] is the expected
    overflow warm mass from Poisson granularity of tail placement —
    misses the uniform tail spread cannot see near the fits boundary.
    [ceiling] is the warm mass of probably-overfull sets: what
    worst-case deterministic alternation (a loop cycling through a
    set's members, which the independent-reference model cannot
    represent) could turn into misses. Both are 0 at [depth = 1],
    where the reuse probes measure the configuration directly. *)
type set_estimate = {
  misses : float;
  generic : float;
  imbalance : float;
  dispersion : float;
  ceiling : float;
}

(** Raises [Invalid_argument] unless [depth] is a positive power of two
    and [assoc] positive. *)
val estimate : model -> depth:int -> assoc:int -> set_estimate

(** Closed form for an infinite power-law catalogue with exponent
    [alpha > 1]: [M(C) = ((a-1)/a) * Gamma(1-1/a)^a * (C+1)^(1-a)] —
    the unit-vector formula the solver is tested against. Raises
    [Invalid_argument] when [alpha <= 1] or [capacity < 0]. *)
val zipf_miss_rate : alpha:float -> capacity:float -> float
