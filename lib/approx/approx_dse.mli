(** Approximate design-space exploration: the {!Analytical_dse}-shaped
    driver over sketches instead of exact conflict sets.

    Every estimate carries an error bar. The bars are not decorative:
    the acceptance property (tested on all PowerStone traces plus
    synthetic zipfian grids) is that the *exact* miss count falls
    inside [[lo, hi]] for >= 95% of (D, A) points — approximate mode
    is allowed to be wrong, not allowed to be confidently wrong. *)

(** An estimated quantity with its uncertainty interval. *)
type bounds = { est : float; lo : float; hi : float }

(** One table cell: the minimal associativity meeting the budget by the
    point estimate, bracketed by the optimistic ([assoc_lo], from the
    lower miss bound) and conservative ([assoc_hi], from the upper)
    answers. *)
type cell = { assoc : int; assoc_lo : int; assoc_hi : int }

(** The paper-style exploration table, approximate edition: same
    (depth x budget-percent) layout as {!Analytical_dse.table}, plus
    the profile headline (N, estimated N', estimated max-misses, the
    fitted zipf exponent and its regression quality). *)
type table = {
  name : string;
  n : int;
  distinct : bounds;
  max_misses : bounds;
  alpha : float;
  fit_r2 : float;
  address_bits : int;
  percents : int list;
  budgets : int list;
  rows : (int * cell list) list;
}

type level_estimate = { level : int; depth : int; cell : cell; misses : bounds }

(** Per-level answer to an absolute-budget (K) query. *)
type optimal = { k : int; levels : level_estimate list }

(** [sketch_trace ?top_k trace] profiles a materialised trace. *)
val sketch_trace : ?top_k:int -> Trace.t -> Sketch.profile

(** [sketch_file ?on_error ?format path] profiles a trace file in one
    streaming pass — no boxed address array ever exists, so the peak
    heap is the sketch plus the read buffer whatever the file size. *)
val sketch_file :
  ?on_error:Trace_io.on_error ->
  ?format:Trace_io.format ->
  string ->
  (Sketch.profile * Trace_io.stream, Dse_error.t) result

(** A prepared estimator: the popularity model plus the probe-ladder
    calibration, built once per profile and shared across queries. *)
type t

val prepare : Sketch.profile -> t

(** [misses t ~depth ~assoc] — estimated warm miss count with bars.
    [depth] must be a positive power of two. *)
val misses : t -> depth:int -> assoc:int -> bounds

(** Estimated depth-1 direct-mapped warm misses (the budget
    calibrator; exact up to the N' estimate). *)
val max_misses : t -> bounds

val distinct : t -> bounds

val default_percents : int list

(** [table ?percents ?max_level ~name prepared] mirrors
    {!Analytical_dse.of_histograms}: budgets are [percents] of the
    estimated max-misses, rows span depths up to [max_level] (default:
    the profile's address bits). *)
val table : ?percents:int list -> ?max_level:int -> name:string -> t -> table

(** [optimal ?max_level ~k prepared] answers an absolute-budget query
    with per-level associativities and miss bounds. *)
val optimal : ?max_level:int -> k:int -> t -> optimal

(** Drop trailing all-direct-mapped rows, keeping the first — the same
    presentation rule as {!Analytical_dse.trim}. *)
val trim : table -> table
