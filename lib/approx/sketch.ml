(* One-pass trace sketches. Everything in this module is O(kilobytes)
   regardless of trace length: the point is to profile a 10^8..10^9
   reference stream that the exact kernels (O(N') at best) cannot hold.

   Four sketches run side by side over a single feed:
   - an exact scalar pass (N, max address, depth-1 transition count);
   - HyperLogLog over bigarray registers for N' (distinct addresses);
   - Space-Saving for the top-K heavy hitters (the popularity profile
     head that the Che/Fagin estimator treats exactly);
   - two bucketed-LRU reuse probes (full-rate and 1/256 spatially
     sampled, SHARDS-style) measuring the *observed* fully-associative
     warm miss rate at a ladder of capacities — the ground wire that
     calibrates the model and makes its error bars honest. *)

(* -- 64-bit mixing (splitmix64 finalizer) -- *)

let mix64 x =
  let open Int64 in
  let z = add x 0x9E3779B97F4A7C15L in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let hash_addr ~salt addr = mix64 (Int64.logxor (Int64.of_int addr) salt)

(* -- fixed-capacity open-addressing int -> int index -- *)

module Imap = struct
  (* The hot indexes below (Space-Saving, reuse probes) delete and
     re-insert a key on every miss; with a Hashtbl there, each churn
     promotes a bucket cell into the major heap, and on a high-miss
     stream the accumulated dead cells float the process's peak heap
     with the miss rate. Linear probing over two int arrays allocates
     only at [create]; deletion backward-shifts the cluster, so there
     are no tombstones and no rebuilds. Callers keep [live] strictly
     below the array size (they are capacity-bounded summaries). *)
  type t = { mask : int; keys : int array; vals : int array }

  let create capacity =
    let size =
      let rec up s = if s >= 4 * capacity then s else up (2 * s) in
      up 16
    in
    { mask = size - 1; keys = Array.make size (-1); vals = Array.make size 0 }

  let slot t addr =
    let h = addr * 0x2545F4914F6CDD1D in
    (h lxor (h lsr 32)) land t.mask

  let find t addr =
    let rec go i =
      let k = t.keys.(i) in
      if k = -1 then -1
      else if k = addr then t.vals.(i)
      else go ((i + 1) land t.mask)
    in
    go (slot t addr)

  let set t addr v =
    let rec go i =
      let k = t.keys.(i) in
      if k = addr then t.vals.(i) <- v
      else if k = -1 then begin
        t.keys.(i) <- addr;
        t.vals.(i) <- v
      end
      else go ((i + 1) land t.mask)
    in
    go (slot t addr)

  let remove t addr =
    let rec locate i =
      let k = t.keys.(i) in
      if k = -1 then -1 else if k = addr then i else locate ((i + 1) land t.mask)
    in
    let hole = locate (slot t addr) in
    if hole >= 0 then begin
      (* backward-shift: an entry displaced [d] slots from its home may
         fill any hole at most [d] slots behind it *)
      let rec shift hole j =
        let k = t.keys.(j) in
        if k = -1 then t.keys.(hole) <- -1
        else if (j - slot t k) land t.mask >= (j - hole) land t.mask then begin
          t.keys.(hole) <- k;
          t.vals.(hole) <- t.vals.(j);
          shift j ((j + 1) land t.mask)
        end
        else shift hole ((j + 1) land t.mask)
      in
      shift hole ((hole + 1) land t.mask)
    end
end

(* -- HyperLogLog -- *)

module Hll = struct
  type t = {
    bits : int;
    regs : (int, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t;
    salt : int64;
  }

  let create ?(bits = 14) ?(salt = 0x5851F42D4C957F2DL) () =
    if bits < 4 || bits > 18 then invalid_arg "Hll.create: bits must be within 4..18";
    let regs = Bigarray.Array1.create Bigarray.int8_unsigned Bigarray.c_layout (1 lsl bits) in
    Bigarray.Array1.fill regs 0;
    { bits; regs; salt }

  (* rank = trailing-zero count of the non-index hash bits, + 1; the
     geometric tail means the loop runs ~2 iterations on average *)
  let add_hash t h =
    let idx = Int64.to_int (Int64.logand h (Int64.of_int ((1 lsl t.bits) - 1))) in
    let w = Int64.shift_right_logical h t.bits in
    let limit = 64 - t.bits + 1 in
    let rank = ref 1 in
    let w = ref w in
    while !rank < limit && Int64.logand !w 1L = 0L do
      incr rank;
      w := Int64.shift_right_logical !w 1
    done;
    if !rank > Bigarray.Array1.unsafe_get t.regs idx then
      Bigarray.Array1.unsafe_set t.regs idx !rank

  let add t addr = add_hash t (hash_addr ~salt:t.salt addr)

  let estimate t =
    let m = 1 lsl t.bits in
    let fm = float_of_int m in
    let sum = ref 0. in
    let zeros = ref 0 in
    for i = 0 to m - 1 do
      let r = Bigarray.Array1.unsafe_get t.regs i in
      if r = 0 then incr zeros;
      sum := !sum +. ldexp 1.0 (-r)
    done;
    let alpha = 0.7213 /. (1. +. (1.079 /. fm)) in
    let raw = alpha *. fm *. fm /. !sum in
    if raw <= 2.5 *. fm && !zeros > 0 then
      (* linear-counting correction: near-exact in the small range *)
      fm *. log (fm /. float_of_int !zeros)
    else raw

  let rel_error t = 1.04 /. sqrt (float_of_int (1 lsl t.bits))

  (* register-wise max: exactly the sketch of the union of the two
     streams, hence associative and commutative by construction *)
  let merge a b =
    if a.bits <> b.bits || a.salt <> b.salt then
      invalid_arg "Hll.merge: incompatible sketches";
    let m = create ~bits:a.bits ~salt:a.salt () in
    for i = 0 to (1 lsl a.bits) - 1 do
      Bigarray.Array1.unsafe_set m.regs i
        (max (Bigarray.Array1.unsafe_get a.regs i) (Bigarray.Array1.unsafe_get b.regs i))
    done;
    m

  let equal a b =
    a.bits = b.bits && a.salt = b.salt
    &&
    let same = ref true in
    for i = 0 to (1 lsl a.bits) - 1 do
      if Bigarray.Array1.unsafe_get a.regs i <> Bigarray.Array1.unsafe_get b.regs i then
        same := false
    done;
    !same
end

(* -- hybrid distinct counter -- *)

module Distinct = struct
  (* Exact up to [limit] distinct values (a unit hashtable), HLL beyond.
     Embedded traces routinely have tiny working sets (PowerStone
     instruction traces: N' < 100); an HLL register-index collision
     there costs several percent, while the exact table costs a bounded
     few hundred KiB and is *zero*-error until it overflows. The HLL is
     fed from the first access so the handoff loses nothing. *)
  type t = {
    hll : Hll.t;
    mutable table : (int, unit) Hashtbl.t option;
    limit : int;
  }

  let create ?bits ?salt ?(limit = 4096) () =
    if limit < 1 then invalid_arg "Distinct.create: limit must be positive";
    { hll = Hll.create ?bits ?salt (); table = Some (Hashtbl.create 256); limit }

  let add t addr =
    Hll.add t.hll addr;
    match t.table with
    | Some tb ->
      if not (Hashtbl.mem tb addr) then begin
        Hashtbl.replace tb addr ();
        if Hashtbl.length tb > t.limit then t.table <- None
      end
    | None -> ()

  let exact t = t.table <> None

  let estimate t =
    match t.table with
    | Some tb -> float_of_int (Hashtbl.length tb)
    | None -> Hll.estimate t.hll

  let rel_error t = match t.table with Some _ -> 0. | None -> Hll.rel_error t.hll

  let state_bytes t = (1 lsl t.hll.Hll.bits) + (24 * t.limit)
end

(* -- Space-Saving heavy hitters -- *)

module Topk = struct
  (* The classic Metwally et al. summary: a min-heap of K counters; an
     unmonitored address replaces the minimum and inherits its count as
     an overcount bound. For a power-law stream the head counters
     converge to the true frequencies (overcount 0 for the true heavy
     hitters), which is exactly the regime approx mode is for. *)
  type t = {
    capacity : int;
    mutable size : int;
    addrs : int array;
    counts : int array;
    overs : int array;
    index : Imap.t;
  }

  let create ~capacity =
    if capacity < 1 then invalid_arg "Topk.create: capacity must be positive";
    {
      capacity;
      size = 0;
      addrs = Array.make capacity 0;
      counts = Array.make capacity 0;
      overs = Array.make capacity 0;
      index = Imap.create capacity;
    }

  let swap t i j =
    let sa = t.addrs.(i) and sc = t.counts.(i) and so = t.overs.(i) in
    t.addrs.(i) <- t.addrs.(j);
    t.counts.(i) <- t.counts.(j);
    t.overs.(i) <- t.overs.(j);
    t.addrs.(j) <- sa;
    t.counts.(j) <- sc;
    t.overs.(j) <- so;
    Imap.set t.index t.addrs.(i) i;
    Imap.set t.index t.addrs.(j) j

  let rec sift_up t i =
    if i > 0 then begin
      let parent = (i - 1) / 2 in
      if t.counts.(parent) > t.counts.(i) then begin
        swap t i parent;
        sift_up t parent
      end
    end

  let rec sift_down t i =
    let l = (2 * i) + 1 and r = (2 * i) + 2 in
    let smallest = ref i in
    if l < t.size && t.counts.(l) < t.counts.(!smallest) then smallest := l;
    if r < t.size && t.counts.(r) < t.counts.(!smallest) then smallest := r;
    if !smallest <> i then begin
      swap t i !smallest;
      sift_down t !smallest
    end

  let add t addr =
    let i = Imap.find t.index addr in
    if i >= 0 then begin
      t.counts.(i) <- t.counts.(i) + 1;
      sift_down t i
    end
    else if t.size < t.capacity then begin
      let i = t.size in
      t.size <- i + 1;
      t.addrs.(i) <- addr;
      t.counts.(i) <- 1;
      t.overs.(i) <- 0;
      Imap.set t.index addr i;
      sift_up t i
    end
    else begin
      let floor_count = t.counts.(0) in
      Imap.remove t.index t.addrs.(0);
      t.addrs.(0) <- addr;
      t.counts.(0) <- floor_count + 1;
      t.overs.(0) <- floor_count;
      Imap.set t.index addr 0;
      sift_down t 0
    end

  (* count-descending (addr-ascending among ties, for determinism) *)
  let ranked t =
    let out =
      Array.init t.size (fun i -> (t.addrs.(i), t.counts.(i), t.overs.(i)))
    in
    Array.sort
      (fun (a1, c1, _) (a2, c2, _) -> if c1 <> c2 then compare c2 c1 else compare a1 a2)
      out;
    out
end

(* -- bucketed-LRU reuse probe -- *)

module Probe = struct
  (* An LRU stack over (a spatial sample of) the addresses, organised as
     a ladder of capacity buckets: bucket b holds the stack entries with
     positions in (boundary.(b-1), boundary.(b)]. A hit found in bucket
     b is a fully-associative hit at every capacity >= its bucket
     ceiling and a miss below — so per-bucket hit tallies integrate into
     exact sampled miss counts at every boundary capacity at once.
     Promotion to the stack top demotes one tail entry per fuller
     bucket: O(#buckets) worst case per access, O(1) amortised.

     With sampling shift s > 0 only addresses whose hash has s leading
     zero bits participate (p = 2^-s of the address space); sampled
     stack distances are ~p times the true ones (SHARDS), so boundary b
     observes the true miss rate at capacity boundary.(b) * 2^s. A
     small per-probe HLL of the sampled addresses splits "not found"
     into cold first-touches vs warm re-references beyond the last
     boundary, keeping the warm miss rates cold-free like the exact
     kernel's histograms. *)

  let boundaries =
    (* unit steps through the associativity range, then a half-octave
       ladder 8 .. 8192 — small capacities are exactly where the L0
       (fully-associative) table column reads the ladder *)
    let rec build k acc =
      let b =
        int_of_float (Float.round (8. *. Float.pow 2. (float_of_int k /. 2.)))
      in
      if b > 8192 then List.rev acc else build (k + 1) (b :: acc)
    in
    Array.of_list ([ 1; 2; 3; 4; 6 ] @ build 0 [])

  let nbuckets = Array.length boundaries

  let capacity_total = boundaries.(nbuckets - 1)

  type t = {
    shift : int;
    salt : int64;
    caps : int array;
    sizes : int array;
    hits : int array;
    addr_of : int array;
    bucket_of : int array;
    next : int array;
    (* nodes 0..S-1, then one sentinel per bucket at S+b *)
    prev : int array;
    index : Imap.t;
    mutable used : int;
    mutable sampled : int;
    mutable absent : int;
    seen : Distinct.t;
  }

  let create ~shift ~salt =
    let s = capacity_total in
    let caps =
      Array.init nbuckets (fun b ->
          if b = 0 then boundaries.(0) else boundaries.(b) - boundaries.(b - 1))
    in
    let next = Array.init (s + nbuckets) (fun i -> i) in
    let prev = Array.init (s + nbuckets) (fun i -> i) in
    {
      shift;
      salt;
      caps;
      sizes = Array.make nbuckets 0;
      hits = Array.make nbuckets 0;
      addr_of = Array.make s 0;
      bucket_of = Array.make s 0;
      next;
      prev;
      index = Imap.create s;
      used = 0;
      sampled = 0;
      absent = 0;
      seen = Distinct.create ~bits:11 ~salt ();
    }

  let sentinel b = capacity_total + b

  let unlink t n =
    t.next.(t.prev.(n)) <- t.next.(n);
    t.prev.(t.next.(n)) <- t.prev.(n)

  let push_head t b n =
    let s = sentinel b in
    let first = t.next.(s) in
    t.next.(s) <- n;
    t.prev.(n) <- s;
    t.next.(n) <- first;
    t.prev.(first) <- n;
    t.bucket_of.(n) <- b

  (* demote overfull buckets' tails downward, starting at bucket 0 *)
  let cascade t =
    let b = ref 0 in
    let continue = ref true in
    while !continue && !b < nbuckets do
      if t.sizes.(!b) > t.caps.(!b) then begin
        let tail = t.prev.(sentinel !b) in
        unlink t tail;
        t.sizes.(!b) <- t.sizes.(!b) - 1;
        push_head t (!b + 1) tail;
        t.sizes.(!b + 1) <- t.sizes.(!b + 1) + 1;
        incr b
      end
      else continue := false
    done

  (* the global LRU tail lives in the highest nonempty bucket *)
  let evict_tail t =
    let b = ref (nbuckets - 1) in
    while !b > 0 && t.sizes.(!b) = 0 do
      decr b
    done;
    let tail = t.prev.(sentinel !b) in
    unlink t tail;
    t.sizes.(!b) <- t.sizes.(!b) - 1;
    Imap.remove t.index t.addr_of.(tail);
    tail

  let access t addr =
    let h = hash_addr ~salt:t.salt addr in
    if t.shift > 0 && Int64.shift_right_logical h (64 - t.shift) <> 0L then ()
    else begin
      t.sampled <- t.sampled + 1;
      Distinct.add t.seen addr;
      let n0 = Imap.find t.index addr in
      if n0 >= 0 then begin
        let b = t.bucket_of.(n0) in
        t.hits.(b) <- t.hits.(b) + 1;
        unlink t n0;
        t.sizes.(b) <- t.sizes.(b) - 1;
        push_head t 0 n0;
        t.sizes.(0) <- t.sizes.(0) + 1;
        cascade t
      end
      else begin
        t.absent <- t.absent + 1;
        let n =
          if t.used < capacity_total then begin
            let n = t.used in
            t.used <- n + 1;
            n
          end
          else evict_tail t
        in
        t.addr_of.(n) <- addr;
        Imap.set t.index addr n;
        push_head t 0 n;
        t.sizes.(0) <- t.sizes.(0) + 1;
        cascade t
      end
    end
end

(* -- profile: the finalized, serialisable output -- *)

type heavy = { addr : int; count : int; overcount : int }

type probe_point = { capacity : int; rate : float; rate_err : float }

type profile = {
  n : int;
  distinct : float;
  distinct_rel_err : float;
  max_addr : int;
  transitions : int;
  heavy : heavy array;
  probes : probe_point array;
  fingerprint : int64;
}

(* -- the combined one-pass sketch -- *)

type t = {
  mutable n : int;
  mutable max_addr : int;
  mutable transitions : int;
  mutable prev_addr : int;
  mutable fp : int64;
  distinct : Distinct.t;
  topk : Topk.t;
  fine : Probe.t;
  coarse : Probe.t;
}

let coarse_shift = 8

let create ?(top_k = 1024) () =
  {
    n = 0;
    max_addr = 0;
    transitions = 0;
    prev_addr = -1;
    fp = Trace.fingerprint_init;
    distinct = Distinct.create ~bits:14 ();
    topk = Topk.create ~capacity:top_k;
    fine = Probe.create ~shift:0 ~salt:0x243F6A8885A308D3L;
    coarse = Probe.create ~shift:coarse_shift ~salt:0x452821E638D01377L;
  }

let add t ~addr ~kind:_ =
  if addr < 0 then invalid_arg "Sketch.add: negative address";
  t.n <- t.n + 1;
  if addr > t.max_addr then t.max_addr <- addr;
  if addr <> t.prev_addr then begin
    t.transitions <- t.transitions + 1;
    t.prev_addr <- addr
  end;
  t.fp <- Trace.fingerprint_add t.fp addr;
  Distinct.add t.distinct addr;
  Topk.add t.topk addr;
  Probe.access t.fine addr;
  Probe.access t.coarse addr

let feed t ~addr ~kind = add t ~addr ~kind

(* spatial sampling decorrelates only so much: inflate the binomial
   standard error of the sparse probe's rates by this factor *)
let sparse_inflation = 1.5

let probe_points (p : Probe.t) =
  let scale = 1 lsl p.Probe.shift in
  let distinct_s = Distinct.estimate p.Probe.seen in
  let distinct_err = distinct_s *. Distinct.rel_error p.Probe.seen in
  let warm = float_of_int p.Probe.sampled -. distinct_s in
  if warm < 16. then []
  else
    let absent_warm = Float.max 0. (float_of_int p.Probe.absent -. distinct_s) in
    let beyond = ref absent_warm in
    let points = ref [] in
    for b = Probe.nbuckets - 1 downto 0 do
      (* misses at capacity boundaries.(b) = hits found deeper + warm
         re-references that fell off the ladder entirely *)
      let rate = Float.min 1. (Float.max 0. (!beyond /. warm)) in
      let binomial = sqrt (rate *. (1. -. rate) /. warm) in
      let binomial = if p.Probe.shift > 0 then binomial *. sparse_inflation else binomial in
      (* the HLL split shifts numerator and denominator together *)
      let hll_term = distinct_err *. (1. +. rate) /. warm in
      let err = binomial +. hll_term +. (1. /. warm) in
      points :=
        { capacity = Probe.boundaries.(b) * scale; rate; rate_err = err } :: !points;
      beyond := !beyond +. float_of_int p.Probe.hits.(b)
    done;
    !points

let finalize t =
  let fine = probe_points t.fine in
  let coarse = probe_points t.coarse in
  (* one ladder: ascending capacity, the exact (fine) probe winning
     where the two overlap *)
  let merged =
    List.sort_uniq
      (fun (a : probe_point) b ->
        if a.capacity <> b.capacity then compare a.capacity b.capacity
        else compare a.rate_err b.rate_err)
      (fine @ coarse)
  in
  let rec dedupe = function
    | a :: (b :: _ as rest) when a.capacity = (b : probe_point).capacity -> a :: dedupe (List.tl rest)
    | a :: rest -> a :: dedupe rest
    | [] -> []
  in
  {
    n = t.n;
    distinct = (if t.n = 0 then 0. else Float.max 1. (Distinct.estimate t.distinct));
    distinct_rel_err = Distinct.rel_error t.distinct;
    max_addr = t.max_addr;
    transitions = t.transitions;
    heavy =
      Array.map (fun (addr, count, overcount) -> { addr; count; overcount })
        (Topk.ranked t.topk);
    probes = Array.of_list (dedupe merged);
    fingerprint = Trace.fingerprint_finish t.fp ~len:t.n;
  }

let of_trace ?top_k trace =
  let t = create ?top_k () in
  Trace.iter (fun (a : Trace.access) -> add t ~addr:a.Trace.addr ~kind:a.Trace.kind) trace;
  finalize t

let distinct_of_trace trace =
  let d = Distinct.create ~bits:14 () in
  Trace.iter_addrs (fun addr -> Distinct.add d addr) trace;
  if Trace.length trace = 0 then 0. else Float.max 1. (Distinct.estimate d)

(* rough but honest: every O(kilobytes) claim in the docs is this number *)
let state_bytes t =
  let probe_bytes (p : Probe.t) =
    (* 5 int arrays over nodes+sentinels, the index hashtable (~4 words
       per binding), the seen counter *)
    let nodes = Probe.capacity_total + Probe.nbuckets in
    (5 * 8 * nodes) + (4 * 8 * Probe.capacity_total) + Distinct.state_bytes p.Probe.seen
  in
  Distinct.state_bytes t.distinct
  + (3 * 8 * t.topk.Topk.capacity)
  + (4 * 8 * t.topk.Topk.capacity)
  + probe_bytes t.fine + probe_bytes t.coarse

let address_bits (p : profile) =
  let rec bits n acc = if n = 0 then max acc 1 else bits (n lsr 1) (acc + 1) in
  bits p.max_addr 0
