(** One-pass streaming trace sketches.

    Everything here is O(kilobytes) no matter how long the trace is:
    the profile of a 10^9-reference stream costs the same memory as a
    10^3-reference one, which is what lets approximate mode analyse
    traces the exact kernels (O(N') at best) cannot hold. A sketch is
    fed one access at a time — from {!Trace_io.scan}, a synthetic
    generator, or the daemon's wire decoder — and finalized into a
    serialisable {!profile} consumed by {!Che} / {!Approx_dse}. *)

(** HyperLogLog distinct counting over [Bigarray] int8 registers.
    [2^bits] registers (default 14: 16 KiB, ~0.8% standard error), with
    the linear-counting small-range correction. Exposed separately
    because its merge (register-wise max) is exactly the sketch of the
    stream union — associative and commutative, property-tested as
    such. *)
module Hll : sig
  type t

  val create : ?bits:int -> ?salt:int64 -> unit -> t

  val add : t -> int -> unit

  val estimate : t -> float

  (** Theoretical relative standard error, [1.04 / sqrt(2^bits)]. *)
  val rel_error : t -> float

  (** [merge a b] is the sketch of the union of the two streams.
      Raises [Invalid_argument] on incompatible [bits]/[salt]. *)
  val merge : t -> t -> t

  (** Structural register equality — the merge-law test oracle. *)
  val equal : t -> t -> bool
end

(** The distinct counter the sketches actually use: exact (a bounded
    hash set) up to [limit] values, {!Hll} beyond. Embedded working
    sets are routinely tiny — PowerStone instruction traces have
    [N' < 100] — and there an HLL register collision costs percents
    while exactness costs a bounded few hundred KiB. [rel_error] is 0
    while the counter is still exact. *)
module Distinct : sig
  type t

  val create : ?bits:int -> ?salt:int64 -> ?limit:int -> unit -> t

  val add : t -> int -> unit

  (** [exact t] — has the counter not yet overflowed into HLL mode? *)
  val exact : t -> bool

  val estimate : t -> float

  val rel_error : t -> float
end

(** One heavy hitter: a Space-Saving counter. The true count lies in
    [[count - overcount, count]]; for the genuinely hot head of a
    power-law stream [overcount] is 0 and the count exact. *)
type heavy = { addr : int; count : int; overcount : int }

(** One rung of the reuse-probe ladder: at a fully-associative capacity
    of [capacity] lines, the observed warm miss rate was [rate]
    (fraction of warm accesses), with 1-sigma uncertainty [rate_err].
    Rungs from 1 to 8192 lines (unit steps through the associativity
    range, then half-octaves) are measured at full rate — exact
    counts; beyond that a 1/256 spatial sample extends the ladder to
    ~2M lines, SHARDS-style. *)
type probe_point = { capacity : int; rate : float; rate_err : float }

(** The finalized profile: everything the Che/Fagin estimator needs,
    and nothing the trace's length can inflate. *)
type profile = {
  n : int;  (** references seen *)
  distinct : float;  (** estimated N' — exact while the working set is small *)
  distinct_rel_err : float;  (** 0 while [distinct] is exact *)
  max_addr : int;
  transitions : int;
      (** adjacent address changes — [transitions - N'] is *exactly* the
          depth-1 direct-mapped warm miss count (the paper's max-misses
          budget calibrator), so only N' is approximate in it *)
  heavy : heavy array;  (** count-descending *)
  probes : probe_point array;  (** capacity-ascending *)
  fingerprint : int64;
      (** identical to {!Trace.fingerprint} of the same stream — approx
          jobs land on the same cache identity as exact ones *)
}

(** The combined streaming sketch (scalar pass + HLL + Space-Saving
    top-K + two reuse probes). *)
type t

(** [create ?top_k ()] — [top_k] (default 1024) heavy-hitter slots. *)
val create : ?top_k:int -> unit -> t

(** Feed one access. Kinds are ignored (the analytical model is a
    function of addresses only), accepted so the sketch plugs straight
    into {!Trace_io.scan}. Raises [Invalid_argument] on a negative
    address. *)
val add : t -> addr:int -> kind:Trace.kind -> unit

(** [feed t] is [add t] shaped as a {!Trace_io.scan} sink. *)
val feed : t -> addr:int -> kind:Trace.kind -> unit

val finalize : t -> profile

(** [of_trace ?top_k trace] sketches a materialised trace (the
    validation path: small enough for exact, sketched for comparison). *)
val of_trace : ?top_k:int -> Trace.t -> profile

(** [distinct_of_trace trace] is just the HLL cardinality estimate —
    the [dse stats] [distinct_addrs_approx] field. *)
val distinct_of_trace : Trace.t -> float

(** Approximate resident size of the sketch state in bytes — the number
    behind the [`Sketch] admission model and the O(kilobytes) claims. *)
val state_bytes : t -> int

(** Bits needed for the largest address seen; at least 1 (the approx
    counterpart of [Trace.address_bits], bounding the table depth). *)
val address_bits : profile -> int
