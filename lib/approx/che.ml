(* Che/Fagin miss-rate approximation over a sketched popularity profile.

   Under the independent-reference model, an LRU cache of capacity C
   behaves as if every object stays resident for a fixed *characteristic
   time* T after its last access (Fagin 1977's window, Che et al.'s
   fixed point): T solves

       Phi(T) = sum_i (1 - e^{-lambda_i T}) = C

   (expected number of distinct objects referenced in a window of T
   accesses equals the capacity), and object i then misses each warm
   access with probability e^{-lambda_i T}. The popularity profile comes
   from the sketch: the top-K heavy hitters carry near-exact counts; the
   tail is a fitted power law (log-log regression over the ranked head)
   binned geometrically and rescaled so mass is conserved.

   Set-associativity refinement: a depth-D cache splits addresses by
   their low log2(D) bits (exactly the paper's conflict-set rule), so
   each set is its own little LRU of capacity A. The heavy hitters'
   *actual* set placement is known from their addresses; each set
   containing hot items gets its own characteristic time (first-order
   Newton correction from the generic T, escalating to a full solve when
   badly off), the remaining sets share a tail-only solution. Cold
   misses are excluded throughout, matching the exact kernel's
   warm-only histograms. *)

(* -- power-law fit: ln(count) ~ intercept - alpha * ln(rank) -- *)

type fit = { alpha : float; intercept : float; r2 : float }

let fit_power_law counts =
  let pts =
    Array.to_list counts
    |> List.mapi (fun i c -> (log (float_of_int (i + 1)), c))
    |> List.filter_map (fun (x, c) -> if c > 0. then Some (x, log c) else None)
  in
  let m = List.length pts in
  if m < 4 then { alpha = 1.0; intercept = 0.; r2 = 0. }
  else
    let fm = float_of_int m in
    let sx = List.fold_left (fun a (x, _) -> a +. x) 0. pts in
    let sy = List.fold_left (fun a (_, y) -> a +. y) 0. pts in
    let sxx = List.fold_left (fun a (x, _) -> a +. (x *. x)) 0. pts in
    let sxy = List.fold_left (fun a (x, y) -> a +. (x *. y)) 0. pts in
    let syy = List.fold_left (fun a (_, y) -> a +. (y *. y)) 0. pts in
    let denom = (fm *. sxx) -. (sx *. sx) in
    if denom <= 1e-12 then { alpha = 1.0; intercept = 0.; r2 = 0. }
    else
      let slope = ((fm *. sxy) -. (sx *. sy)) /. denom in
      let intercept = (sy -. (slope *. sx)) /. fm in
      let sst = syy -. (sy *. sy /. fm) in
      let ssr =
        List.fold_left
          (fun a (x, y) ->
            let e = y -. (intercept +. (slope *. x)) in
            a +. (e *. e))
          0. pts
      in
      let r2 = if sst <= 1e-12 then 1. else Float.max 0. (1. -. (ssr /. sst)) in
      { alpha = -.slope; intercept; r2 }

(* -- the popularity model -- *)

type model = {
  n : float;  (* total references *)
  distinct : float;  (* N' estimate *)
  warm : float;  (* n - distinct: max possible warm misses *)
  hot_addrs : int array;  (* heavy hitters, count-descending *)
  hot_w : float array;  (* their access counts *)
  bin_items : float array;  (* tail bins: item count ... *)
  bin_each : float array;  (* ... and per-item access count *)
  fit : fit;
}

let tail_bins = 96

let of_profile (p : Sketch.profile) =
  let n = float_of_int p.n in
  let distinct = Float.max 1. p.distinct in
  let warm = Float.max 0. (n -. distinct) in
  (* keep only counters whose Space-Saving overcount bound is small
     relative to the count; the rest are unmonitored-tail noise whose
     mass belongs to the fitted tail *)
  let trusted =
    Array.to_list p.heavy
    |> List.filter (fun (h : Sketch.heavy) -> h.count >= 2 * h.overcount)
  in
  let hot_addrs = Array.of_list (List.map (fun (h : Sketch.heavy) -> h.addr) trusted) in
  let hot_w =
    Array.of_list
      (List.map
         (fun (h : Sketch.heavy) ->
           float_of_int h.count -. (float_of_int h.overcount /. 2.))
         trusted)
  in
  let fit = fit_power_law hot_w in
  let h = Array.length hot_w in
  let hot_mass = Array.fold_left ( +. ) 0. hot_w in
  let tail_items = Float.max 0. (distinct -. float_of_int h) in
  let tail_mass = Float.max 0. (n -. hot_mass) in
  let bin_items, bin_each =
    if tail_items < 0.5 || tail_mass < 0.5 then ([||], [||])
    else begin
      let nb = min tail_bins (max 1 (int_of_float (ceil tail_items))) in
      let alpha = Float.min 3.5 (Float.max 0.2 fit.alpha) in
      let edge k = exp (log (tail_items +. 1.) *. (float_of_int k /. float_of_int nb)) in
      let items = Array.make nb 0. in
      let weight = Array.make nb 0. in
      for k = 0 to nb - 1 do
        let lo = edge k and hi = edge (k + 1) in
        items.(k) <- hi -. lo;
        let rank = float_of_int h +. ((lo +. hi) /. 2.) in
        weight.(k) <- Float.pow rank (-.alpha)
      done;
      let total = ref 0. in
      for k = 0 to nb - 1 do
        total := !total +. (items.(k) *. weight.(k))
      done;
      let scale = if !total > 0. then tail_mass /. !total else 0. in
      let each = Array.map (fun w -> Float.max 1. (scale *. w)) weight in
      (items, each)
    end
  in
  { n; distinct; warm; hot_addrs; hot_w; bin_items; bin_each; fit }

(* -- the characteristic-time fixed point -- *)

let tail_phi model t =
  let acc = ref 0. in
  for k = 0 to Array.length model.bin_items - 1 do
    acc := !acc +. (model.bin_items.(k) *. (1. -. exp (-.model.bin_each.(k) *. t /. model.n)))
  done;
  !acc

let tail_phi' model t =
  let acc = ref 0. in
  for k = 0 to Array.length model.bin_items - 1 do
    let l = model.bin_each.(k) /. model.n in
    acc := !acc +. (model.bin_items.(k) *. l *. exp (-.l *. t))
  done;
  !acc

let tail_misses model t =
  let acc = ref 0. in
  for k = 0 to Array.length model.bin_items - 1 do
    let each = model.bin_each.(k) in
    if each > 1. then
      acc := !acc +. (model.bin_items.(k) *. (each -. 1.) *. exp (-.each *. t /. model.n))
  done;
  !acc

let phi model t =
  let acc = ref (tail_phi model t) in
  for i = 0 to Array.length model.hot_w - 1 do
    acc := !acc +. (1. -. exp (-.model.hot_w.(i) *. t /. model.n))
  done;
  !acc

(* Monotone bisection for Phi(T) = capacity. [infinity] when the whole
   working set fits: the cache never evicts, so warm misses are zero. *)
let solve_on f ~target =
  if f infinity <= target +. 1e-9 then infinity
  else begin
    let hi = ref 1. in
    while f !hi < target do
      hi := !hi *. 2.
    done;
    let lo = ref 0. and hi = ref !hi in
    for _ = 1 to 64 do
      let mid = 0.5 *. (!lo +. !hi) in
      if f mid < target then lo := mid else hi := mid
    done;
    0.5 *. (!lo +. !hi)
  end

let solve_t model ~capacity =
  if capacity >= model.distinct -. 0.5 then infinity
  else solve_on (fun t -> phi model t) ~target:capacity

let misses_at model t =
  if t = infinity then 0.
  else begin
    let acc = ref (tail_misses model t) in
    for i = 0 to Array.length model.hot_w - 1 do
      let w = model.hot_w.(i) in
      if w > 1. then acc := !acc +. ((w -. 1.) *. exp (-.w *. t /. model.n))
    done;
    !acc
  end

let warm_misses_fa model ~capacity = misses_at model (solve_t model ~capacity)

let rate_fa model ~capacity =
  if model.warm <= 0. then 0. else warm_misses_fa model ~capacity /. model.warm

(* -- set-associative estimate -- *)

type set_estimate = {
  misses : float;
  generic : float;
  imbalance : float;
  dispersion : float;
  ceiling : float;
}

(* beyond this many badly-off sets we fall back to the Newton step
   rather than a full per-set solve, to bound the per-(D,A) cost *)
let max_exact_groups = 64

(* [poisson_upper_tail lam jmax] returns j -> P(X >= j) for
   X ~ Poisson(lam), valid for any j (j <= 0 reads as 1). The tail is
   truncated 12 sigma past the mean (the probability beyond is
   < 1e-30; larger j read as 0). When exp(-lam) underflows every tail
   up to the truncation point is reported as 1 — at such lam the sets
   are certainly overfull, which is the conservative direction here —
   and that regime is returned as a closed-form step so a huge-span
   trace (lam in the hundreds of thousands during an associativity
   search) never materializes an O(lam) array: the only array ever
   allocated is bounded by the lam < 746 regime, ~1.1k floats. *)
let poisson_upper_tail lam jmax =
  let jcut = min jmax (32 + int_of_float (ceil (lam +. (12. *. sqrt (Float.max 0. lam))))) in
  if lam <= 0. then fun j -> if j <= 0 then 1. else 0.
  else begin
    let p0 = exp (-.lam) in
    if p0 = 0. then fun j -> if j <= jcut then 1. else 0.
    else begin
      let tails = Array.make (jcut + 1) 1. in
      let p = ref p0 in
      let cum = ref 0. in
      for j = 1 to jcut do
        cum := !cum +. !p;
        tails.(j) <- Float.max 0. (1. -. !cum);
        p := !p *. lam /. float_of_int j
      done;
      fun j -> if j <= 0 then 1. else if j > jcut then 0. else tails.(j)
    end
  end

(* E[(X - a)+] - max(0, lam - a), X ~ Poisson(lam): the overflow that
   placement *granularity* creates beyond what the uniform-spread tail
   solve already sees. Vanishes both when the tail is sparse and when
   it is dense enough that the uniform pressure dominates. *)
let overflow_excess lam a =
  if lam <= 0. || a < 1 then 0.
  else if float_of_int a >= lam +. (12. *. sqrt lam) +. 32. then
    (* the set's capacity is >= 12 sigma past the expected occupancy:
       the overflow expectation is < 1e-30, and computing the series up
       to [a] would cost O(a) for nothing *)
    0.
  else if exp (-.lam) = 0. then
    (* the pmf recurrence starts (and stays) at literal zero, so the
       series contributes nothing: the answer is max(0, -uniform) = 0
       without walking O(lam) terms *)
    0.
  else begin
    let fa = float_of_int a in
    let uniform = Float.max 0. (lam -. fa) in
    let kmax = a + int_of_float (ceil (lam +. (8. *. sqrt lam))) + 10 in
    let p = ref (exp (-.lam)) in
    let acc = ref 0. in
    for k = 0 to kmax do
      if k > a then acc := !acc +. (float_of_int (k - a) *. !p);
      p := !p *. lam /. float_of_int (k + 1)
    done;
    Float.max 0. (!acc -. uniform)
  end

let estimate model ~depth ~assoc =
  if depth < 1 || depth land (depth - 1) <> 0 then
    invalid_arg "Che.estimate: depth must be a positive power of two";
  if assoc < 1 then invalid_arg "Che.estimate: assoc must be positive";
  let capacity = float_of_int depth *. float_of_int assoc in
  let fits = capacity >= model.distinct -. 0.5 in
  if model.warm <= 0. then
    { misses = 0.; generic = 0.; imbalance = 0.; dispersion = 0.; ceiling = 0. }
  else if depth = 1 then begin
    (* one set: no placement risk, and the reuse probes measure this
       configuration directly *)
    let generic = if fits then 0. else misses_at model (solve_t model ~capacity) in
    { misses = generic; generic; imbalance = 0.; dispersion = 0.; ceiling = 0. }
  end
  else begin
    let d = float_of_int depth in
    let target = float_of_int assoc in
    let nhot = Array.length model.hot_w in
    (* group heavy hitters by their actual cache set (low depth bits) *)
    let groups = Hashtbl.create (2 * max 1 nhot) in
    for i = 0 to nhot - 1 do
      let set = model.hot_addrs.(i) land (depth - 1) in
      Hashtbl.replace groups set (i :: (try Hashtbl.find groups set with Not_found -> []))
    done;
    (* Placement terms, computed even when the uniform model says the
       working set fits: [dispersion] is the expected overflow from
       Poisson granularity of the tail placement; [ceiling] the warm
       mass of probably-overfull sets — what worst-case deterministic
       alternation (a loop cycling through a set's members) could miss. *)
    let tail_items = Array.fold_left ( +. ) 0. model.bin_items in
    let tail_warm_mass = ref 0. in
    for k = 0 to Array.length model.bin_items - 1 do
      tail_warm_mass :=
        !tail_warm_mass +. (model.bin_items.(k) *. Float.max 0. (model.bin_each.(k) -. 1.))
    done;
    let lam = tail_items /. d in
    let tail_each_warm = if tail_items > 0.5 then !tail_warm_mass /. tail_items else 0. in
    let tail_p = poisson_upper_tail lam (assoc + 1) in
    let dispersion = ref 0. in
    let ceiling = ref 0. in
    Hashtbl.iter
      (fun _set idxs ->
        let h = List.length idxs in
        let mass =
          List.fold_left
            (fun acc i -> acc +. Float.max 0. (model.hot_w.(i) -. 1.))
            0. idxs
        in
        let j = assoc - h + 1 in
        (* hot mass at risk once the set is overfull, plus the expected
           tail warm mass landing in its overfull configurations
           (E[X 1{X >= j}] = lam P(X >= j-1)) *)
        ceiling :=
          !ceiling +. (tail_p j *. mass) +. (lam *. tail_p (j - 1) *. tail_each_warm);
        dispersion := !dispersion +. (overflow_excess lam (assoc - h) *. tail_each_warm))
      groups;
    let rest = Float.max 0. (d -. float_of_int (Hashtbl.length groups)) in
    ceiling := !ceiling +. (rest *. lam *. tail_p assoc *. tail_each_warm);
    dispersion := !dispersion +. (rest *. overflow_excess lam assoc *. tail_each_warm);
    let dispersion = Float.min model.warm !dispersion in
    let ceiling = Float.min model.warm !ceiling in
    if fits then { misses = 0.; generic = 0.; imbalance = 0.; dispersion; ceiling }
    else begin
      let t0 = solve_t model ~capacity in
      let generic = misses_at model t0 in
      let tp0 = tail_phi model t0 /. d in
      let tp0' = tail_phi' model t0 /. d in
      let tm t = tail_misses model t /. d in
      let group_occ idxs t =
        List.fold_left
          (fun acc i -> acc +. (1. -. exp (-.model.hot_w.(i) *. t /. model.n)))
          0. idxs
      in
      let group_occ' idxs t =
        List.fold_left
          (fun acc i ->
            let l = model.hot_w.(i) /. model.n in
            acc +. (l *. exp (-.l *. t)))
          0. idxs
      in
      let group_misses idxs t =
        List.fold_left
          (fun acc i ->
            let w = model.hot_w.(i) in
            if w > 1. then acc +. ((w -. 1.) *. exp (-.w *. t /. model.n)) else acc)
          0. idxs
      in
      let entries =
        Hashtbl.fold
          (fun _set idxs acc ->
            let occ = group_occ idxs t0 +. tp0 in
            (idxs, occ) :: acc)
          groups []
      in
      (* the badly-off sets get a real solve; ranked so a pathological
         mapping cannot make one (D,A) point arbitrarily expensive *)
      let deviant (_, occ) = Float.abs (occ -. target) > 0.25 *. Float.max target occ in
      let bad = List.filter deviant entries in
      let bad =
        List.sort
          (fun (_, o1) (_, o2) ->
            compare (Float.abs (o2 -. target)) (Float.abs (o1 -. target)))
          bad
      in
      let exact_set = Hashtbl.create 64 in
      List.iteri
        (fun rank (idxs, _) -> if rank < max_exact_groups then Hashtbl.replace exact_set idxs ())
        bad;
      let total = ref 0. in
      let ngroups = ref 0 in
      List.iter
        (fun (idxs, occ) ->
          incr ngroups;
          let tg =
            if Hashtbl.mem exact_set idxs then
              solve_on
                (fun t -> group_occ idxs t +. (tail_phi model t /. d))
                ~target
            else begin
              let occ' = group_occ' idxs t0 +. tp0' in
              if occ' <= 1e-300 then t0
              else
                let t = t0 +. ((target -. occ) /. occ') in
                Float.min (t0 *. 16.) (Float.max (t0 /. 16.) t)
            end
          in
          total := !total +. group_misses idxs tg +. tm tg)
        entries;
      (* sets with no heavy hitter share a tail-only characteristic time *)
      let rest = d -. float_of_int !ngroups in
      if rest > 0. then begin
        let t_rest = solve_on (fun t -> tail_phi model t /. d) ~target in
        total := !total +. (rest /. d *. tail_misses model t_rest)
      end;
      let misses = Float.min model.warm (Float.max 0. !total) in
      { misses; generic; imbalance = Float.abs (misses -. generic); dispersion; ceiling }
    end
  end

(* -- closed-form power-law miss rate (Berthet / Che asymptotics) --

   For an infinite catalogue with popularity density p(r) = (a-1) r^{-a}
   (a > 1), the fixed point integrates in closed form and the miss rate
   at capacity C collapses to

       M(C) = ((a-1)/a) * Gamma(1 - 1/a)^a * (C+1)^{1-a}

   — the unit-vector formula the solver is tested against. *)

(* Lanczos g=7 log-gamma, with reflection for x < 0.5 *)
let lngamma x =
  let coef =
    [|
      676.5203681218851; -1259.1392167224028; 771.32342877765313; -176.61502916214059;
      12.507343278686905; -0.13857109526572012; 9.9843695780195716e-6; 1.5056327351493116e-7;
    |]
  in
  let rec go x =
    if x < 0.5 then log (Float.pi /. sin (Float.pi *. x)) -. go (1. -. x)
    else begin
      let x = x -. 1. in
      let a = ref 0.99999999999980993 in
      for i = 0 to 7 do
        a := !a +. (coef.(i) /. (x +. float_of_int (i + 1)))
      done;
      let t = x +. 7.5 in
      (0.5 *. log (2. *. Float.pi)) +. (((x +. 0.5) *. log t) -. t) +. log !a
    end
  in
  go x

let zipf_miss_rate ~alpha ~capacity =
  if not (alpha > 1.) then invalid_arg "Che.zipf_miss_rate: alpha must exceed 1";
  if not (capacity >= 0.) then invalid_arg "Che.zipf_miss_rate: negative capacity";
  let g = exp (alpha *. lngamma (1. -. (1. /. alpha))) in
  (alpha -. 1.) /. alpha *. g *. Float.pow (capacity +. 1.) (1. -. alpha)
