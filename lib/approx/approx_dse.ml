(* The Analytical_dse-shaped driver for approximate mode: profile a
   trace in one pass (or accept a profile sketched elsewhere, e.g. by
   the daemon's wire decoder), then answer per-(D, A) miss-count
   queries and assemble paper-style tables — every number wearing an
   error bar.

   The estimate pipeline per (D, A):
     1. Che/Fagin set-associative estimate from the popularity model
        (Che.estimate);
     2. multiplied by a calibration ratio rho(C), C = D*A: the observed
        fully-associative warm miss rate at capacity C (from the
        bucketed-LRU probes) over the model's prediction, log-log
        interpolated across the probe ladder. This anchors the IRM
        model to the trace's real temporal structure — loops and
        strides, which pure Che gets badly wrong, are corrected by
        measurement;
     3. an error bar combining the statistical terms (probe sampling
        noise, HLL cardinality error, Space-Saving overcount mass),
        the probe ladder's local variation (a miss-rate cliff between
        two rungs is genuine uncertainty), the residual of the
        calibration itself, the set-imbalance correction magnitude, and
        an extrapolation penalty once C leaves the probed range. *)

type bounds = { est : float; lo : float; hi : float }

type cell = { assoc : int; assoc_lo : int; assoc_hi : int }

type table = {
  name : string;
  n : int;
  distinct : bounds;
  max_misses : bounds;
  alpha : float;
  fit_r2 : float;
  address_bits : int;
  percents : int list;
  budgets : int list;
  rows : (int * cell list) list;
}

type level_estimate = { level : int; depth : int; cell : cell; misses : bounds }

type optimal = { k : int; levels : level_estimate list }

(* -- profiling front doors -- *)

let sketch_trace ?top_k trace = Sketch.of_trace ?top_k trace

let sketch_file ?on_error ?format path =
  let sk = Sketch.create () in
  match Trace_io.iter ?on_error ?format path (Sketch.feed sk) with
  | Ok stream -> Ok (Sketch.finalize sk, stream)
  | Error _ as e -> e

(* -- prepared estimator -- *)

type cal = { cap : float; obs : float; sigma : float; rho : float }

type t = {
  profile : Sketch.profile;
  model : Che.model;
  cal : cal array;
  overcount_frac : float;  (* untrusted Space-Saving mass / n *)
  loopiness : float;
      (* 0..1: how cliff-like the observed miss-rate curve is. A sharp
         drop between adjacent probe rungs is the signature of
         deterministic cycling over a working set — exactly the regime
         where the independent-reference model's set-level predictions
         can be wrong in either direction, so the placement slack terms
         are scaled by this *)
}

let z = 2.0

(* The ratio is measurement-driven where the ladder reaches; the clamp
   only guards against degenerate observations (zero counts against a
   near-zero prediction). *)
let rho_clamp r = Float.min 64. (Float.max (1. /. 1024.) r)

let prepare (profile : Sketch.profile) =
  let model = Che.of_profile profile in
  let cal =
    Array.map
      (fun (pt : Sketch.probe_point) ->
        let cap = float_of_int pt.capacity in
        let predicted = Che.rate_fa model ~capacity:cap in
        let rho =
          if predicted < 1e-9 && pt.rate < 1e-9 then 1.
          else if predicted < 1e-9 then 64.
          else rho_clamp (pt.rate /. predicted)
        in
        { cap; obs = pt.rate; sigma = pt.rate_err; rho })
      profile.probes
  in
  let overcount =
    Array.fold_left
      (fun acc (h : Sketch.heavy) -> acc +. float_of_int h.overcount)
      0. profile.heavy
  in
  let n = Float.max 1. (float_of_int profile.n) in
  let loopiness =
    let ps = profile.Sketch.probes in
    let worst = ref 0. in
    for i = 0 to Array.length ps - 2 do
      let a = ps.(i) and b = ps.(i + 1) in
      (* only meaningful drops count: rungs past the trivial small
         capacities, carrying real miss mass *)
      if a.Sketch.capacity >= 8 && a.Sketch.rate >= 0.05 then begin
        let drop = (a.Sketch.rate -. b.Sketch.rate) /. a.Sketch.rate in
        if drop > !worst then worst := drop
      end
    done;
    Float.min 1. (Float.max 0. ((!worst -. 0.3) /. 0.35))
  in
  { profile; model; cal; overcount_frac = overcount /. n; loopiness }

(* Calibration lookup at capacity [c]: rho (log-log interpolated), the
   1-sigma observation noise, the local ladder variation, and a
   relative extrapolation penalty outside the probed range. *)
let calibration t c =
  let cal = t.cal in
  let len = Array.length cal in
  (* a (D, A) product landing exactly on a rung is a measurement, not an
     interpolation: no cliff, no extrapolation penalty *)
  let exact_rung =
    let found = ref None in
    Array.iter (fun k -> if Float.abs (k.cap -. c) < 0.5 then found := Some k) cal;
    !found
  in
  match exact_rung with
  | Some k -> (k.rho, k.sigma, 0., 0.)
  | None ->
  if len = 0 then (1., 0., 0., 0.5)
  else if len = 1 then
    let k = cal.(0) in
    (k.rho, k.sigma, 0., 0.1 *. Float.abs (log (c /. k.cap) /. log 2.))
  else if c <= cal.(0).cap then
    let k = cal.(0) in
    let cliff = 0.5 *. Float.abs (cal.(0).obs -. cal.(1).obs) in
    (k.rho, k.sigma, cliff, 0.1 *. (log (k.cap /. c) /. log 2.))
  else if c >= cal.(len - 1).cap then
    let k = cal.(len - 1) in
    let cliff = 0.5 *. Float.abs (cal.(len - 1).obs -. cal.(len - 2).obs) in
    (k.rho, k.sigma, cliff, 0.15 *. (log (c /. k.cap) /. log 2.))
  else begin
    let j = ref 0 in
    while cal.(!j + 1).cap < c do
      incr j
    done;
    let a = cal.(!j) and b = cal.(!j + 1) in
    let w = log (c /. a.cap) /. log (b.cap /. a.cap) in
    let rho = exp (((1. -. w) *. log a.rho) +. (w *. log b.rho)) in
    let sigma = Float.max a.sigma b.sigma in
    let cliff = 0.5 *. Float.abs (a.obs -. b.obs) in
    (rho, sigma, cliff, 0.)
  end

(* -- budget calibration: the depth-1 direct-mapped warm miss count is
   transitions - N', with only the cardinality estimate uncertain -- *)

let max_misses t =
  let transitions = float_of_int t.profile.Sketch.transitions in
  let d = t.profile.Sketch.distinct in
  let spread = z *. d *. t.profile.Sketch.distinct_rel_err in
  let est = Float.max 0. (transitions -. d) in
  {
    est;
    lo = Float.max 0. (transitions -. d -. spread);
    hi = Float.max 0. (transitions -. d +. spread);
  }

let misses t ~depth ~assoc =
  if depth = 1 && assoc = 1 then
    (* exactly the max-misses identity: an access to a 1-line cache
       misses iff the address changed, cold misses excepted *)
    max_misses t
  else if
    (* Once the associativity alone covers the whole working set (at
       its upper cardinality bound), every set holds every line that
       can ever map to it and warm misses are exactly zero — no model,
       no bar. This is also what terminates the budget searches: the
       conservative (hi-bound) answer retains floor terms that never
       meet a small budget on their own, so without a provably-zero
       point the associativity ladder would climb forever. *)
    float_of_int assoc
    >= t.profile.Sketch.distinct
       *. (1. +. (z *. t.profile.Sketch.distinct_rel_err))
  then { est = 0.; lo = 0.; hi = 0. }
  else
  let e = Che.estimate t.model ~depth ~assoc in
  let warm = t.model.Che.warm in
  if warm <= 0. then { est = 0.; lo = 0.; hi = 0. }
  else begin
    let c = float_of_int depth *. float_of_int assoc in
    let rho, sigma, cliff, extrap = calibration t c in
    (* The calibration ratio corrects the model's *fully-associative*
       account of temporal structure, so it scales only the capacity
       (generic) component; the set-conflict excess on top of it is a
       placement prediction the probes cannot confirm, carried through
       uncalibrated and reflected symmetrically in the bars. *)
    let gen_cal = Float.min warm (e.Che.generic *. rho) in
    let excess = Float.max 0. (e.Che.misses -. e.Che.generic) in
    let est = Float.min warm (gen_cal +. excess +. (0.3 *. e.Che.dispersion)) in
    (* Under deterministic cycling the FA measurement does not transfer
       to a set-partitioned cache (a thrashing FA stack says nothing
       about sets that each hold their members), so the pure per-set
       IRM figure is a live alternative hypothesis exactly to the
       degree the trace looks loop-like. *)
    let raw = Float.min warm e.Che.misses in
    let core_lo, core_hi =
      if depth = 1 then (est, est)
      else begin
        let alt = (t.loopiness *. raw) +. ((1. -. t.loopiness) *. est) in
        (Float.min est alt, Float.max est alt)
      end
    in
    (* rate-unit terms: what the probes cannot pin down at this capacity *)
    let u_rate = (z *. sigma) +. cliff in
    (* relative terms: model risk scales with the estimate itself *)
    let u_rel =
      (z *. t.profile.Sketch.distinct_rel_err)
      +. t.overcount_frac
      +. (0.1 /. sqrt (float_of_int assoc))
      +. extrap
    in
    let half = (est *. u_rel) +. (warm *. u_rate) +. Float.max 2. (0.005 *. est) in
    (* Loop-structured traces (cliff-like miss-rate curve) break the
       IRM's set-level story in both directions: deterministic
       alternation can miss up to the overfull-set ceiling, and lucky
       placement/phasing can erase both the predicted conflicts and a
       chunk of the capacity misses. *)
    let up =
      excess +. e.Che.dispersion +. (t.loopiness *. Float.max 0. (e.Che.ceiling -. est))
    in
    let down =
      excess
      +. (t.loopiness *. ((0.5 *. gen_cal) +. Float.min est (0.02 *. warm)))
    in
    {
      est;
      lo = Float.max 0. (core_lo -. down -. half);
      hi = Float.min warm (core_hi +. up +. half);
    }
  end

let distinct t =
  let d = t.profile.Sketch.distinct in
  let spread = z *. d *. t.profile.Sketch.distinct_rel_err in
  { est = d; lo = Float.max 0. (d -. spread); hi = d +. spread }

(* -- minimal-associativity search under a budget --

   Like Optimizer.level_result_of_histogram but over the estimator:
   find the smallest A whose (approximately monotone) estimated miss
   count meets K. Exponential bracket + binary search, so a deep level
   on a high-cardinality trace costs O(log A) evaluations instead of A.
   Memoised per prepared estimator: the est/lo/hi searches and every
   percent column share (depth, assoc) evaluations. *)

let search_min pred =
  if pred 1 then 1
  else begin
    let hi = ref 2 in
    while not (pred !hi) && !hi < 1 lsl 30 do
      hi := !hi * 2
    done;
    let lo = ref (!hi / 2) and hi = ref !hi in
    (* invariant: pred !hi holds, pred !lo does not *)
    while !hi - !lo > 1 do
      let mid = !lo + ((!hi - !lo) / 2) in
      if pred mid then hi := mid else lo := mid
    done;
    !hi
  end

let memo_misses t memo ~level ~assoc =
  let key = (level, assoc) in
  match Hashtbl.find_opt memo key with
  | Some b -> b
  | None ->
    let b = misses t ~depth:(1 lsl level) ~assoc in
    Hashtbl.add memo key b;
    b

let cell_of t memo ~level ~k =
  let fk = float_of_int k in
  let assoc = search_min (fun a -> (memo_misses t memo ~level ~assoc:a).est <= fk) in
  let assoc_lo = search_min (fun a -> (memo_misses t memo ~level ~assoc:a).lo <= fk) in
  let assoc_hi = search_min (fun a -> (memo_misses t memo ~level ~assoc:a).hi <= fk) in
  { assoc; assoc_lo; assoc_hi }

let default_percents = [ 5; 10; 15; 20 ]

let table ?(percents = default_percents) ?max_level ~name prepared =
  let address_bits = Sketch.address_bits prepared.profile in
  let max_level =
    match max_level with None -> address_bits | Some m -> max 0 (min m address_bits)
  in
  let mm = max_misses prepared in
  let budgets = List.map (fun percent -> int_of_float mm.est * percent / 100) percents in
  let memo = Hashtbl.create 256 in
  let rows =
    List.init (max_level + 1) (fun level ->
        let depth = 1 lsl level in
        let cells = List.map (fun k -> cell_of prepared memo ~level ~k) budgets in
        (depth, cells))
  in
  {
    name;
    n = prepared.profile.Sketch.n;
    distinct = distinct prepared;
    max_misses = mm;
    alpha = prepared.model.Che.fit.Che.alpha;
    fit_r2 = prepared.model.Che.fit.Che.r2;
    address_bits;
    percents;
    budgets;
    rows;
  }

let optimal ?max_level ~k prepared =
  let address_bits = Sketch.address_bits prepared.profile in
  let max_level =
    match max_level with None -> address_bits | Some m -> max 0 (min m address_bits)
  in
  let memo = Hashtbl.create 256 in
  let levels =
    List.init (max_level + 1) (fun level ->
        let cell = cell_of prepared memo ~level ~k in
        let misses = memo_misses prepared memo ~level ~assoc:cell.assoc in
        { level; depth = 1 lsl level; cell; misses })
  in
  { k; levels }

(* paper-style trimming: once every budget column is direct-mapped the
   remaining rows are all 1s — keep the first and drop the rest *)
let trim table =
  let rec keep = function
    | [] -> []
    | ((_, cells) as row) :: rest ->
      if List.for_all (fun c -> c.assoc = 1) cells then [ row ] else row :: keep rest
  in
  { table with rows = keep table.rows }
