(** The proposed flow of the paper's Figure 1(b): trace + miss budget in,
    set of optimal (depth, associativity) instances out — evaluated at
    several budgets at once, which is how Tables 7-30 are laid out. *)

type table = {
  name : string;
  stats : Stats.t;
  percents : int list;  (** budget percentages of [stats.max_misses] *)
  budgets : int list;  (** the corresponding absolute K values *)
  rows : (int * int list) list;
      (** (depth, required associativity per percent), by increasing depth *)
}

(** [of_histograms ?percents ~name ~stats histograms] assembles a table
    purely from already-computed per-level histograms (as produced by
    {!Analytical.histograms}) — no kernel run, no trace. This is how the
    [dse serve] result cache answers repeated and K-only re-queries:
    one solved trace yields every subsequent budget's table for free.
    [stats] calibrates the percentage budgets; the table spans exactly
    the levels the histogram array covers. *)
val of_histograms :
  ?percents:int list -> name:string -> stats:Stats.t -> int array array -> table

(** [run ?percents ?max_level ?line_words ?method_ ?domains ~name trace]
    strips and analyses the trace once, then solves for each budget.
    [percents] defaults to the paper's 5, 10, 15, 20; [max_level]
    defaults to the trace's address bits; [line_words] (default 1) folds
    the trace to line addresses first (model extension beyond the
    paper). [method_] (default [Streaming]) selects the histogram
    kernel and [domains] (default 1) its parallelism, as in
    {!Analytical.explore_many}. *)
val run :
  ?percents:int list ->
  ?max_level:int ->
  ?line_words:int ->
  ?method_:Analytical.method_ ->
  ?domains:int ->
  name:string ->
  Trace.t ->
  table

(** [trim table] drops trailing rows where every budget already needs
    only a direct-mapped cache, keeping the first such row — the paper's
    tables stop once everything is 1. *)
val trim : table -> table
