type point = {
  depth : int;
  associativity : int;
  size_words : int;
  misses : int;
  totals : System_cost.totals;
}

let candidates ?(line_words = 1) trace ~k =
  let prepared = Analytical.prepare ~line_words trace in
  let result = Analytical.explore_prepared prepared ~k in
  let writes =
    Trace.fold
      (fun acc (a : Trace.access) ->
        match a.Trace.kind with Trace.Write -> acc + 1 | Trace.Read | Trace.Fetch -> acc)
      0 trace
  in
  let reads = Trace.length trace - writes in
  let cold = Arena_kernel.num_unique (Analytical.arena_strip prepared) in
  let bus = Bus_cost.address_activity trace in
  Array.to_list result.Optimizer.levels
  |> List.map (fun (level : Optimizer.level_result) ->
         let config =
           Config.make ~line_words ~depth:level.Optimizer.depth
             ~associativity:level.Optimizer.min_associativity ()
         in
         let totals =
           System_cost.evaluate config ~reads ~writes
             ~total_misses:(level.Optimizer.misses + cold)
             ~bus
         in
         {
           depth = level.Optimizer.depth;
           associativity = level.Optimizer.min_associativity;
           size_words = Config.size_words config;
           misses = level.Optimizer.misses;
           totals;
         })

let dominates a b =
  let open System_cost in
  a.totals.energy <= b.totals.energy
  && a.totals.time <= b.totals.time
  && a.totals.area <= b.totals.area
  && (a.totals.energy < b.totals.energy
     || a.totals.time < b.totals.time
     || a.totals.area < b.totals.area)

let frontier points =
  let non_dominated p = not (List.exists (fun q -> dominates q p) points) in
  List.filter non_dominated points
  |> List.sort (fun a b -> compare a.totals.System_cost.area b.totals.System_cost.area)

let pp_point fmt p =
  Format.fprintf fmt "%5dx%-3d (%6d words, %6d misses) %a" p.depth p.associativity
    p.size_words p.misses System_cost.pp p.totals
