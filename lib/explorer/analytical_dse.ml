type table = {
  name : string;
  stats : Stats.t;
  percents : int list;
  budgets : int list;
  rows : (int * int list) list;
}

let of_histograms ?(percents = [ 5; 10; 15; 20 ]) ~name ~stats histograms =
  let budgets = List.map (fun percent -> Stats.budget stats ~percent) percents in
  let results = List.map (fun k -> Optimizer.of_histograms ~k histograms) budgets in
  let max_level = Array.length histograms - 1 in
  let rows =
    List.init (max_level + 1) (fun level ->
        let depth = 1 lsl level in
        let assocs =
          List.map
            (fun (r : Optimizer.t) -> r.Optimizer.levels.(level).Optimizer.min_associativity)
            results
        in
        (depth, assocs))
  in
  { name; stats; percents; budgets; rows }

let run ?percents ?max_level ?line_words ?method_ ?domains ~name trace =
  let prepared = Analytical.prepare ?max_level ?line_words trace in
  (* O(1) from the arena build — no boxed strip is forced for stats *)
  let stats = Analytical.stats prepared in
  let histograms = Analytical.histograms ?method_ ?domains prepared in
  of_histograms ?percents ~name ~stats histograms

let trim table =
  let rec keep = function
    | [] -> []
    | ((_, assocs) as row) :: rest ->
      if List.for_all (fun a -> a = 1) assocs then [ row ] else row :: keep rest
  in
  { table with rows = keep table.rows }
