type instance = { depth : int; associativity : int; size_words : int }

type split = {
  k_instruction : int;
  k_data : int;
  instruction : instance;
  data : instance;
  total_size : int;
}

let smallest_instance prepared ~k =
  let result = Analytical.explore_prepared prepared ~k in
  let best =
    Array.fold_left
      (fun acc (level : Optimizer.level_result) ->
        let size = level.Optimizer.depth * level.Optimizer.min_associativity in
        match acc with
        | Some (_, best_size) when best_size <= size -> acc
        | _ -> Some (level, size))
      None result.Optimizer.levels
  in
  match best with
  | None -> invalid_arg "Codesign.smallest_instance: no levels"
  | Some (level, size) ->
    {
      depth = level.Optimizer.depth;
      associativity = level.Optimizer.min_associativity;
      size_words = size;
    }

(* budget/steps arrive from the CLI, so a bad value is a typed
   [Constraint_violation] (exit 2), not an [Invalid_argument] crash *)
let constraint_fail message =
  Dse_error.fail (Dse_error.Constraint_violation { context = "codesign"; message })

let sweep ?(steps = 20) ~itrace ~dtrace ~k_total () =
  if k_total < 0 then constraint_fail "negative budget";
  if steps < 1 then constraint_fail "steps must be >= 1";
  let instruction_side = Analytical.prepare itrace in
  let data_side = Analytical.prepare dtrace in
  List.init (steps + 1) (fun step ->
      let k_instruction = k_total * step / steps in
      let k_data = k_total - k_instruction in
      let instruction = smallest_instance instruction_side ~k:k_instruction in
      let data = smallest_instance data_side ~k:k_data in
      {
        k_instruction;
        k_data;
        instruction;
        data;
        total_size = instruction.size_words + data.size_words;
      })

let partition ?steps ~itrace ~dtrace ~k_total () =
  let candidates = sweep ?steps ~itrace ~dtrace ~k_total () in
  match candidates with
  | [] -> invalid_arg "Codesign.partition: empty sweep"
  | first :: rest ->
    List.fold_left (fun acc c -> if c.total_size < acc.total_size then c else acc) first rest

let pp_split fmt s =
  Format.fprintf fmt
    "K_i=%d -> I %dx%d (%dw); K_d=%d -> D %dx%d (%dw); total %d words" s.k_instruction
    s.instruction.depth s.instruction.associativity s.instruction.size_words s.k_data
    s.data.depth s.data.associativity s.data.size_words s.total_size
