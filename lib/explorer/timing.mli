(** Run-time measurement for the experiments (Tables 31/32, Figure 4).
    Samples are wall-clock: CPU time accumulates across OCaml 5 domains,
    so it silently over-reports as soon as a parallel postlude runs,
    corrupting the Figure-4 fit. *)

type sample = {
  name : string;
  n : int;  (** trace length N *)
  n_unique : int;  (** unique references N' *)
  seconds : float;  (** analytical algorithm run time *)
}

(** [time f] is [(f (), elapsed_cpu_seconds)]. CPU seconds accumulate
    across domains, so use {!time_wall} for parallel code. *)
val time : (unit -> 'a) -> 'a * float

(** [time_wall f] is [(f (), elapsed_wall_seconds)]. *)
val time_wall : (unit -> 'a) -> 'a * float

(** [analytical_sample ?repeats ?method_ ?domains ~name trace] times a
    full analytical run (prelude + postlude at the paper's four budgets)
    in wall-clock seconds, keeping the best of [repeats] runs (default 1)
    to damp scheduler noise. [method_]/[domains] are forwarded to
    {!Analytical_dse.run}. *)
val analytical_sample :
  ?repeats:int ->
  ?method_:Analytical.method_ ->
  ?domains:int ->
  name:string ->
  Trace.t ->
  sample

(** [work x] for Figure 4's x axis: [n * n_unique] as float. *)
val work : sample -> float

(** [linear_fit samples] is the least-squares [(slope, intercept, r2)] of
    seconds against [work] — the paper's linearity claim. *)
val linear_fit : sample list -> float * float * float
