(** Paper-style table rendering. *)

(** [pp_instances fmt table] prints a Tables 7-30 style table: one row per
    depth, one column per budget percentage, entries are the required
    associativity. *)
val pp_instances : Format.formatter -> Analytical_dse.table -> unit

(** [pp_stats_row fmt (name, stats)] prints a Tables 5/6 style row:
    benchmark, N, N', max misses. *)
val pp_stats_row : Format.formatter -> string * Stats.t -> unit

(** [pp_stats_table fmt rows] prints the full statistics table with a
    header. *)
val pp_stats_table : Format.formatter -> (string * Stats.t) list -> unit

(** [instances_to_csv table] renders the table as CSV (header included). *)
val instances_to_csv : Analytical_dse.table -> string

(** [pp_approx_instances fmt table] is the approximate edition of
    {!pp_instances}: the headline carries the profile's estimates with
    their error bars (N' and max-misses intervals, the fitted zipf
    exponent and its regression quality), and a cell whose bracket
    [[assoc_lo, assoc_hi]] is wider than a point prints it — the table
    says not just the answer but how sure the sketch is of it. *)
val pp_approx_instances : Format.formatter -> Approx_dse.table -> unit

(** [pp_approx_optimal fmt optimal] renders an absolute-budget answer
    with per-level miss estimates and bars. *)
val pp_approx_optimal : Format.formatter -> Approx_dse.optimal -> unit

(** [approx_to_csv table] renders the approximate table as CSV; each
    budget column expands to three ([p%], [p%_lo], [p%_hi]). *)
val approx_to_csv : Approx_dse.table -> string

(** [stats_to_json ~name ~fingerprint ?distinct_addrs_approx stats]
    renders one trace's statistics as a single-line JSON object ([dse
    stats --json]): name, cache fingerprint (16 hex digits — 64 bits
    exceed JSON's safe integer range, so it is a string), N, N',
    address bits and the fully-associative miss bound.
    [distinct_addrs_approx] (the sketch's cardinality estimate, [dse
    stats]'s cross-check of the approximate plane against the exact N'
    beside it) is emitted when given. *)
val stats_to_json :
  name:string -> fingerprint:int64 -> ?distinct_addrs_approx:float -> Stats.t -> string
