(** Paper-style table rendering. *)

(** [pp_instances fmt table] prints a Tables 7-30 style table: one row per
    depth, one column per budget percentage, entries are the required
    associativity. *)
val pp_instances : Format.formatter -> Analytical_dse.table -> unit

(** [pp_stats_row fmt (name, stats)] prints a Tables 5/6 style row:
    benchmark, N, N', max misses. *)
val pp_stats_row : Format.formatter -> string * Stats.t -> unit

(** [pp_stats_table fmt rows] prints the full statistics table with a
    header. *)
val pp_stats_table : Format.formatter -> (string * Stats.t) list -> unit

(** [instances_to_csv table] renders the table as CSV (header included). *)
val instances_to_csv : Analytical_dse.table -> string

(** [stats_to_json ~name ~fingerprint stats] renders one trace's
    statistics as a single-line JSON object ([dse stats --json]): name,
    cache fingerprint (16 hex digits — 64 bits exceed JSON's safe
    integer range, so it is a string), N, N', address bits and the
    fully-associative miss bound. *)
val stats_to_json : name:string -> fingerprint:int64 -> Stats.t -> string
