type sample = { name : string; n : int; n_unique : int; seconds : float }

let time f =
  let start = Sys.time () in
  let result = f () in
  (result, Sys.time () -. start)

let time_wall f =
  let start = Unix.gettimeofday () in
  let result = f () in
  (result, Unix.gettimeofday () -. start)

let analytical_sample ?(repeats = 1) ?method_ ?domains ~name trace =
  if repeats < 1 then invalid_arg "Timing.analytical_sample: repeats must be >= 1";
  let one () =
    let (), seconds =
      time_wall (fun () ->
          ignore (Analytical_dse.run ?method_ ?domains ~name trace : Analytical_dse.table))
    in
    seconds
  in
  let seconds = ref (one ()) in
  for _rep = 2 to repeats do
    let s = one () in
    if s < !seconds then seconds := s
  done;
  let stats = Stats.compute trace in
  { name; n = stats.Stats.n; n_unique = stats.Stats.n_unique; seconds = !seconds }

let work s = float_of_int s.n *. float_of_int s.n_unique

let linear_fit samples =
  let n = float_of_int (List.length samples) in
  if n < 2.0 then invalid_arg "Timing.linear_fit: need at least two samples";
  let xs = List.map work samples in
  let ys = List.map (fun s -> s.seconds) samples in
  let sum = List.fold_left ( +. ) 0.0 in
  let sx = sum xs and sy = sum ys in
  let sxx = sum (List.map (fun x -> x *. x) xs) in
  let sxy = sum (List.map2 ( *. ) xs ys) in
  let denominator = (n *. sxx) -. (sx *. sx) in
  let slope = if denominator = 0.0 then 0.0 else ((n *. sxy) -. (sx *. sy)) /. denominator in
  let intercept = (sy -. (slope *. sx)) /. n in
  let mean_y = sy /. n in
  let ss_tot = sum (List.map (fun y -> (y -. mean_y) ** 2.0) ys) in
  let ss_res =
    sum (List.map2 (fun x y -> (y -. (slope *. x) -. intercept) ** 2.0) xs ys)
  in
  let r2 = if ss_tot = 0.0 then 1.0 else 1.0 -. (ss_res /. ss_tot) in
  (slope, intercept, r2)
