let pp_instances fmt (table : Analytical_dse.table) =
  Format.fprintf fmt "@[<v>%s (N=%d, N'=%d, max misses=%d)@," table.name
    table.stats.Stats.n table.stats.Stats.n_unique table.stats.Stats.max_misses;
  Format.fprintf fmt "%-8s" "depth";
  List.iter (fun p -> Format.fprintf fmt " %6d%%" p) table.percents;
  Format.fprintf fmt "@,";
  List.iter
    (fun (depth, assocs) ->
      Format.fprintf fmt "%-8d" depth;
      List.iter (fun a -> Format.fprintf fmt " %7d" a) assocs;
      Format.fprintf fmt "@,")
    table.rows;
  Format.fprintf fmt "@]"

let pp_stats_row fmt (name, stats) =
  Format.fprintf fmt "%-10s %10d %10d %12d" name stats.Stats.n stats.Stats.n_unique
    stats.Stats.max_misses

let pp_stats_table fmt rows =
  Format.fprintf fmt "@[<v>%-10s %10s %10s %12s@," "benchmark" "N" "N'" "max misses";
  List.iter (fun row -> Format.fprintf fmt "%a@," pp_stats_row row) rows;
  Format.fprintf fmt "@]"

let json_escape s =
  let buffer = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buffer "\\\""
      | '\\' -> Buffer.add_string buffer "\\\\"
      | '\n' -> Buffer.add_string buffer "\\n"
      | '\t' -> Buffer.add_string buffer "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buffer (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buffer c)
    s;
  Buffer.contents buffer

(* The fingerprint is a full 64-bit value; JSON numbers are only safe to
   2^53, so it is emitted as the same 16-digit hex string the human
   output prints. *)
let stats_to_json ~name ~fingerprint (stats : Stats.t) =
  Printf.sprintf
    "{\"name\": \"%s\", \"fingerprint\": \"%016Lx\", \"n\": %d, \"n_unique\": %d, \
     \"address_bits\": %d, \"max_misses\": %d}"
    (json_escape name) fingerprint stats.Stats.n stats.Stats.n_unique stats.Stats.address_bits
    stats.Stats.max_misses

let instances_to_csv (table : Analytical_dse.table) =
  let buffer = Buffer.create 256 in
  Buffer.add_string buffer "depth";
  List.iter (fun p -> Buffer.add_string buffer (Printf.sprintf ",%d%%" p)) table.percents;
  Buffer.add_char buffer '\n';
  List.iter
    (fun (depth, assocs) ->
      Buffer.add_string buffer (string_of_int depth);
      List.iter (fun a -> Buffer.add_string buffer (Printf.sprintf ",%d" a)) assocs;
      Buffer.add_char buffer '\n')
    table.rows;
  Buffer.contents buffer
