let pp_instances fmt (table : Analytical_dse.table) =
  Format.fprintf fmt "@[<v>%s (N=%d, N'=%d, max misses=%d)@," table.name
    table.stats.Stats.n table.stats.Stats.n_unique table.stats.Stats.max_misses;
  Format.fprintf fmt "%-8s" "depth";
  List.iter (fun p -> Format.fprintf fmt " %6d%%" p) table.percents;
  Format.fprintf fmt "@,";
  List.iter
    (fun (depth, assocs) ->
      Format.fprintf fmt "%-8d" depth;
      List.iter (fun a -> Format.fprintf fmt " %7d" a) assocs;
      Format.fprintf fmt "@,")
    table.rows;
  Format.fprintf fmt "@]"

let pp_stats_row fmt (name, stats) =
  Format.fprintf fmt "%-10s %10d %10d %12d" name stats.Stats.n stats.Stats.n_unique
    stats.Stats.max_misses

let pp_stats_table fmt rows =
  Format.fprintf fmt "@[<v>%-10s %10s %10s %12s@," "benchmark" "N" "N'" "max misses";
  List.iter (fun row -> Format.fprintf fmt "%a@," pp_stats_row row) rows;
  Format.fprintf fmt "@]"

(* -- approximate tables: every quantity carries its error bar -- *)

let approx_cell_to_string (c : Approx_dse.cell) =
  if c.Approx_dse.assoc_lo = c.Approx_dse.assoc_hi then string_of_int c.Approx_dse.assoc
  else Printf.sprintf "%d [%d,%d]" c.Approx_dse.assoc c.Approx_dse.assoc_lo c.Approx_dse.assoc_hi

let pp_approx_instances fmt (t : Approx_dse.table) =
  Format.fprintf fmt
    "@[<v>%s (approx: N=%d, N'~%.0f [%.0f, %.0f], max misses~%.0f [%.0f, %.0f], zipf \
     alpha=%.2f, fit r2=%.2f)@,"
    t.Approx_dse.name t.Approx_dse.n t.Approx_dse.distinct.Approx_dse.est
    t.Approx_dse.distinct.Approx_dse.lo t.Approx_dse.distinct.Approx_dse.hi
    t.Approx_dse.max_misses.Approx_dse.est t.Approx_dse.max_misses.Approx_dse.lo
    t.Approx_dse.max_misses.Approx_dse.hi t.Approx_dse.alpha t.Approx_dse.fit_r2;
  Format.fprintf fmt "%-8s" "depth";
  List.iter (fun p -> Format.fprintf fmt " %11d%%" p) t.Approx_dse.percents;
  Format.fprintf fmt "@,";
  List.iter
    (fun (depth, cells) ->
      Format.fprintf fmt "%-8d" depth;
      List.iter (fun c -> Format.fprintf fmt " %12s" (approx_cell_to_string c)) cells;
      Format.fprintf fmt "@,")
    t.Approx_dse.rows;
  Format.fprintf fmt "@]"

let pp_approx_optimal fmt (r : Approx_dse.optimal) =
  Format.fprintf fmt "@[<v>approx instances for K=%d@," r.Approx_dse.k;
  List.iter
    (fun (l : Approx_dse.level_estimate) ->
      Format.fprintf fmt "level %-2d depth %-8d assoc %-12s misses~%.0f [%.0f, %.0f]@,"
        l.Approx_dse.level l.Approx_dse.depth
        (approx_cell_to_string l.Approx_dse.cell)
        l.Approx_dse.misses.Approx_dse.est l.Approx_dse.misses.Approx_dse.lo
        l.Approx_dse.misses.Approx_dse.hi)
    r.Approx_dse.levels;
  Format.fprintf fmt "@]"

let approx_to_csv (t : Approx_dse.table) =
  let buffer = Buffer.create 256 in
  Buffer.add_string buffer "depth";
  List.iter
    (fun p -> Buffer.add_string buffer (Printf.sprintf ",%d%%,%d%%_lo,%d%%_hi" p p p))
    t.Approx_dse.percents;
  Buffer.add_char buffer '\n';
  List.iter
    (fun (depth, cells) ->
      Buffer.add_string buffer (string_of_int depth);
      List.iter
        (fun (c : Approx_dse.cell) ->
          Buffer.add_string buffer
            (Printf.sprintf ",%d,%d,%d" c.Approx_dse.assoc c.Approx_dse.assoc_lo
               c.Approx_dse.assoc_hi))
        cells;
      Buffer.add_char buffer '\n')
    t.Approx_dse.rows;
  Buffer.contents buffer

let json_escape s =
  let buffer = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buffer "\\\""
      | '\\' -> Buffer.add_string buffer "\\\\"
      | '\n' -> Buffer.add_string buffer "\\n"
      | '\t' -> Buffer.add_string buffer "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buffer (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buffer c)
    s;
  Buffer.contents buffer

(* The fingerprint is a full 64-bit value; JSON numbers are only safe to
   2^53, so it is emitted as the same 16-digit hex string the human
   output prints. *)
let stats_to_json ~name ~fingerprint ?distinct_addrs_approx (stats : Stats.t) =
  Printf.sprintf
    "{\"name\": \"%s\", \"fingerprint\": \"%016Lx\", \"n\": %d, \"n_unique\": %d, \
     \"address_bits\": %d, \"max_misses\": %d%s}"
    (json_escape name) fingerprint stats.Stats.n stats.Stats.n_unique stats.Stats.address_bits
    stats.Stats.max_misses
    (match distinct_addrs_approx with
    | None -> ""
    | Some estimate -> Printf.sprintf ", \"distinct_addrs_approx\": %.1f" estimate)

let instances_to_csv (table : Analytical_dse.table) =
  let buffer = Buffer.create 256 in
  Buffer.add_string buffer "depth";
  List.iter (fun p -> Buffer.add_string buffer (Printf.sprintf ",%d%%" p)) table.percents;
  Buffer.add_char buffer '\n';
  List.iter
    (fun (depth, assocs) ->
      Buffer.add_string buffer (string_of_int depth);
      List.iter (fun a -> Buffer.add_string buffer (Printf.sprintf ",%d" a)) assocs;
      Buffer.add_char buffer '\n')
    table.rows;
  Buffer.contents buffer
