type on_error = Fail | Skip | Stop_after of int

type ingest = { trace : Trace.t; skipped : int; errors : Dse_error.t list }

type stream = { refs : int; skipped : int; errors : Dse_error.t list }

type format = [ `Text | `Binary | `Dinero ]

let max_reported_errors = 5

let max_line_length = 4096

(* Tolerated-error accounting shared by every lenient reader. *)
type tally = { mutable skipped : int; mutable noted : Dse_error.t list }

let note tally err =
  tally.skipped <- tally.skipped + 1;
  if tally.skipped <= max_reported_errors then tally.noted <- err :: tally.noted

(* [tolerate mode tally err] decides whether [err] is absorbed (skipped
   and counted) or aborts the read. *)
let tolerate mode tally err =
  match mode with
  | Fail -> Error err
  | Skip ->
    note tally err;
    Ok ()
  | Stop_after n ->
    if tally.skipped >= n then Error err
    else begin
      note tally err;
      Ok ()
    end

(* -- text format -- *)

let write channel trace =
  Trace.iter
    (fun (a : Trace.access) ->
      let letter =
        match a.kind with Trace.Fetch -> 'F' | Trace.Read -> 'R' | Trace.Write -> 'W'
      in
      Printf.fprintf channel "%c 0x%x\n" letter a.addr)
    trace

(* Text parsers feed a sink callback rather than a trace, so the same
   grammar serves both the materialising readers below and the one-pass
   [scan]/[iter] path (where the sink is a sketch, never an array). *)
let parse_line ~file ~line_number line sink =
  let fail message = Error (Dse_error.Parse_error { file; line = line_number; message }) in
  if String.length line > max_line_length then
    fail (Printf.sprintf "line exceeds %d bytes" max_line_length)
  else
    let line = String.trim line in
    if line = "" || line.[0] = '#' then Ok ()
    else
      match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
      | [ k; a ] -> (
        let kind =
          match k with
          | "F" | "f" -> Ok Trace.Fetch
          | "R" | "r" -> Ok Trace.Read
          | "W" | "w" -> Ok Trace.Write
          | _ -> fail (Printf.sprintf "unknown access kind %S" k)
        in
        match kind with
        | Error _ as e -> e
        | Ok kind -> (
          match int_of_string_opt a with
          | Some v when v >= 0 ->
            sink ~addr:v ~kind;
            Ok ()
          | Some _ -> fail "negative address"
          | None -> fail (Printf.sprintf "bad address %S" a)))
      | _ -> fail "expected '<kind> <address>'"

let scan_lines ~parse ~on_error ~file channel sink =
  let tally = { skipped = 0; noted = [] } in
  let refs = ref 0 in
  let sink ~addr ~kind =
    incr refs;
    sink ~addr ~kind
  in
  let rec loop line_number =
    match input_line channel with
    | exception End_of_file ->
      Ok { refs = !refs; skipped = tally.skipped; errors = List.rev tally.noted }
    | line -> (
      match parse ~file ~line_number line sink with
      | Ok () -> loop (line_number + 1)
      | Error err -> (
        match tolerate on_error tally err with
        | Ok () -> loop (line_number + 1)
        | Error _ as e -> e))
  in
  loop 1

let read_lines ~parse ~on_error ~file channel =
  let trace = Trace.create () in
  match
    scan_lines ~parse ~on_error ~file channel (fun ~addr ~kind -> Trace.add trace ~addr ~kind)
  with
  | Ok s -> Ok { trace; skipped = s.skipped; errors = s.errors }
  | Error _ as e -> e

let read ?(on_error = Fail) ?(file = "<channel>") channel =
  read_lines ~parse:parse_line ~on_error ~file channel

(* -- file-path plumbing -- *)

(* [Sys_error] messages already lead with the file name; strip it so
   [Io_error]'s own file field doesn't print it twice *)
let io_error path message =
  let prefix = path ^ ": " in
  let message =
    if String.starts_with ~prefix message then
      String.sub message (String.length prefix) (String.length message - String.length prefix)
    else message
  in
  Dse_error.Io_error { file = path; message }

let with_in opener path f =
  match opener path with
  | exception Sys_error message -> Error (io_error path message)
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        try f ic
        with Sys_error message -> Error (io_error path message))

let with_out opener path f =
  match opener path with
  | exception Sys_error message -> Error (io_error path message)
  | oc ->
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        try Ok (f oc)
        with Sys_error message -> Error (io_error path message))

let load ?on_error path = with_in open_in path (fun ic -> read ?on_error ~file:path ic)

let save path trace = with_out open_out path (fun oc -> write oc trace)

(* -- binary format --

   v1 (legacy, still readable): "DSET", the length as LEB128, then one
   LEB128 record per access of (addr lsl 2) lor kind_tag.

   v2 (what the writer emits): "DSEB", a version byte (2), the same
   length + records, then a CRC-32 footer (4 bytes little-endian) over
   every preceding byte. Truncation and bit-rot are detected
   deterministically instead of surfacing as a bogus varint. *)

let magic_v1 = "DSET"

let magic_v2 = "DSEB"

let binary_version = 2

let kind_tag = function Trace.Fetch -> 0 | Trace.Read -> 1 | Trace.Write -> 2

(* Internal: byte offset where the damage was detected + what it was. *)
exception Corrupt of int * string

type reader = { ic : in_channel; mutable pos : int; mutable crc : int }

let next_byte r =
  match input_byte r.ic with
  | b ->
    r.pos <- r.pos + 1;
    r.crc <- Crc32.update_byte r.crc b;
    b
  | exception End_of_file -> raise (Corrupt (r.pos, "unexpected end of file"))

let read_magic r =
  let b = Bytes.create 4 in
  for i = 0 to 3 do
    Bytes.set b i (Char.chr (next_byte r))
  done;
  Bytes.to_string b

(* Every truncation site reports the byte offset: a varint cut mid-payload
   is [Corrupt], never a raw [End_of_file]. Overwide varints (> 62 value
   bits) are rejected before they can wrap into negative addresses. *)
let read_varint r =
  let start = r.pos in
  let rec loop shift acc =
    if shift > 56 then raise (Corrupt (start, "varint wider than 63 bits"))
    else
      let byte = next_byte r in
      let acc = acc lor ((byte land 0x7F) lsl shift) in
      if acc < 0 then raise (Corrupt (start, "varint overflows the address space"))
      else if byte land 0x80 = 0 then acc
      else loop (shift + 7) acc
  in
  loop 0 0

let emit_varint emit value =
  let v = ref value in
  let continue = ref true in
  while !continue do
    let byte = !v land 0x7F in
    v := !v lsr 7;
    if !v = 0 then begin
      emit byte;
      continue := false
    end
    else emit (byte lor 0x80)
  done

(* Streaming v2 writer: the record count must be declared up front (the
   format leads with it), but the records themselves are produced by a
   callback — a synthetic generator can emit a 10^8-reference file
   without ever holding a trace. Raises [Invalid_argument] if the
   producer emits a different number of records than declared, since the
   file would otherwise be structurally corrupt. *)
let write_binary_stream channel ~length produce =
  if length < 0 then invalid_arg "Trace_io.write_binary_stream: negative length";
  let crc = ref Crc32.init in
  let out b =
    crc := Crc32.update_byte !crc b;
    output_byte channel b
  in
  String.iter (fun c -> out (Char.code c)) magic_v2;
  out binary_version;
  emit_varint out length;
  let written = ref 0 in
  let emit ~addr ~kind =
    if addr < 0 then invalid_arg "Trace_io.write_binary_stream: negative address";
    incr written;
    emit_varint out ((addr lsl 2) lor kind_tag kind)
  in
  produce emit;
  if !written <> length then
    invalid_arg
      (Printf.sprintf "Trace_io.write_binary_stream: declared %d records, produced %d" length
         !written);
  let digest = Crc32.finalize !crc in
  for i = 0 to 3 do
    output_byte channel ((digest lsr (8 * i)) land 0xFF)
  done

let write_binary channel trace =
  write_binary_stream channel ~length:(Trace.length trace) (fun emit ->
      Trace.iter (fun (a : Trace.access) -> emit ~addr:a.Trace.addr ~kind:a.Trace.kind) trace)

let scan_binary ~on_error ~file channel sink =
  let r = { ic = channel; pos = 0; crc = Crc32.init } in
  let refs = ref 0 in
  let tally = { skipped = 0; noted = [] } in
  let drained () = { refs = !refs; skipped = tally.skipped; errors = List.rev tally.noted } in
  let corrupt ~offset message = Dse_error.Corrupt_binary { file; offset; message } in
  let read_records length =
    let rec loop k =
      if k = 0 then Ok ()
      else
        let start = r.pos in
        let record = read_varint r in
        match record land 3 with
        | 3 -> (
          match tolerate on_error tally (corrupt ~offset:start "bad kind tag 3") with
          | Ok () -> loop (k - 1)
          | Error _ as e -> e)
        | tag ->
          let kind =
            match tag with 0 -> Trace.Fetch | 1 -> Trace.Read | _ -> Trace.Write
          in
          incr refs;
          sink ~addr:(record lsr 2) ~kind;
          loop (k - 1)
    in
    loop length
  in
  let go () =
    let header = read_magic r in
    let version =
      if header = magic_v1 then 1
      else if header = magic_v2 then begin
        let v = next_byte r in
        if v <> binary_version then
          raise (Corrupt (4, Printf.sprintf "unsupported binary version %d" v));
        v
      end
      else raise (Corrupt (0, "bad magic"))
    in
    let length_offset = r.pos in
    let length = read_varint r in
    (* each record is at least one byte, so a declared length beyond the
       remaining file size is corruption — caught before any attempt to
       allocate or parse that many records (pipes skip the check) *)
    (match (in_channel_length channel, pos_in channel) with
    | total, here ->
      let footer = if version = 2 then 4 else 0 in
      if length > total - here - footer then
        raise
          (Corrupt
             ( length_offset,
               Printf.sprintf "declared length %d exceeds the %d remaining bytes" length
                 (max 0 (total - here - footer)) ))
    | exception Sys_error _ -> ());
    match read_records length with
    | Error _ as e -> e
    | Ok () ->
      if version = 2 then begin
        let computed = Crc32.finalize r.crc in
        let footer_offset = r.pos in
        let footer_byte () =
          match input_byte channel with
          | b ->
            r.pos <- r.pos + 1;
            b
          | exception End_of_file -> raise (Corrupt (r.pos, "truncated CRC footer"))
        in
        let stored = ref 0 in
        for i = 0 to 3 do
          stored := !stored lor (footer_byte () lsl (8 * i))
        done;
        if !stored <> computed then
          raise
            (Corrupt
               ( footer_offset,
                 Printf.sprintf "CRC mismatch (stored %08x, computed %08x)" !stored computed
               ));
        match input_byte channel with
        | _ -> raise (Corrupt (r.pos, "trailing bytes after the CRC footer"))
        | exception End_of_file -> Ok (drained ())
      end
      else Ok (drained ())
  in
  match go () with
  | result -> result
  | exception Corrupt (offset, message) -> (
    (* structural damage: in lenient modes keep what parsed (no resync is
       possible after a broken varint), in [Fail] abort *)
    let err = corrupt ~offset message in
    match tolerate on_error tally err with
    | Ok () -> Ok (drained ())
    | Error _ as e -> e)

let read_binary ?(on_error = Fail) ?(file = "<channel>") channel =
  let trace = Trace.create () in
  match
    scan_binary ~on_error ~file channel (fun ~addr ~kind -> Trace.add trace ~addr ~kind)
  with
  | Ok s -> Ok { trace; skipped = s.skipped; errors = s.errors }
  | Error _ as e -> e

let load_binary ?on_error path =
  with_in open_in_bin path (fun ic -> read_binary ?on_error ~file:path ic)

let save_binary path trace = with_out open_out_bin path (fun oc -> write_binary oc trace)

(* -- Dinero/din format: "<label> <hex-addr>"; labels 0 read, 1 write, 2
   instruction fetch -- *)

let parse_dinero_line ~file ~line_number line sink =
  let fail message = Error (Dse_error.Parse_error { file; line = line_number; message }) in
  if String.length line > max_line_length then
    fail (Printf.sprintf "line exceeds %d bytes" max_line_length)
  else
    let line = String.trim line in
    if line = "" then Ok ()
    else
      match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
      | [ l; a ] -> (
        let kind =
          match l with
          | "0" -> Ok Trace.Read
          | "1" -> Ok Trace.Write
          | "2" -> Ok Trace.Fetch
          | _ -> fail (Printf.sprintf "unknown label %S" l)
        in
        match kind with
        | Error _ as e -> e
        | Ok kind -> (
          match int_of_string_opt ("0x" ^ a) with
          | Some v when v >= 0 ->
            sink ~addr:v ~kind;
            Ok ()
          | Some _ | None -> (
            (* some din files already carry a 0x prefix *)
            match int_of_string_opt a with
            | Some v when v >= 0 ->
              sink ~addr:v ~kind;
              Ok ()
            | Some _ | None -> fail (Printf.sprintf "bad address %S" a))))
      | _ -> fail "expected '<label> <address>'"

let read_dinero ?(on_error = Fail) ?(file = "<channel>") channel =
  read_lines ~parse:parse_dinero_line ~on_error ~file channel

let load_dinero ?on_error path =
  with_in open_in path (fun ic -> read_dinero ?on_error ~file:path ic)

(* -- one-pass streaming -- *)

let scan ?(on_error = Fail) ?(file = "<channel>") ?(format = `Text) channel sink =
  match format with
  | `Text -> scan_lines ~parse:parse_line ~on_error ~file channel sink
  | `Dinero -> scan_lines ~parse:parse_dinero_line ~on_error ~file channel sink
  | `Binary -> scan_binary ~on_error ~file channel sink

let iter ?on_error ?(format = `Text) path sink =
  let opener = match format with `Binary -> open_in_bin | `Text | `Dinero -> open_in in
  with_in opener path (fun ic -> scan ?on_error ~file:path ~format ic sink)

(* -- raising conveniences -- *)

let trace_exn = function Ok i -> i.trace | Error e -> Dse_error.fail e

let load_exn ?on_error path = trace_exn (load ?on_error path)

let load_binary_exn ?on_error path = trace_exn (load_binary ?on_error path)

let load_dinero_exn ?on_error path = trace_exn (load_dinero ?on_error path)
