let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let init = 0xFFFFFFFF

let update_byte crc byte =
  (Lazy.force table).((crc lxor byte) land 0xFF) lxor (crc lsr 8)

let finalize crc = (crc lxor 0xFFFFFFFF) land 0xFFFFFFFF

let update_string crc s =
  let table = Lazy.force table in
  let crc = ref crc in
  for i = 0 to String.length s - 1 do
    crc := table.((!crc lxor Char.code (String.unsafe_get s i)) land 0xFF) lxor (!crc lsr 8)
  done;
  !crc

let digest_string s = finalize (update_string init s)
