let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let init = 0xFFFFFFFF

let update_byte crc byte =
  (Lazy.force table).((crc lxor byte) land 0xFF) lxor (crc lsr 8)

let finalize crc = (crc lxor 0xFFFFFFFF) land 0xFFFFFFFF

let digest_string s =
  finalize (String.fold_left (fun crc c -> update_byte crc (Char.code c)) init s)
