(** Memory-reference traces.

    A trace is the sequence of word addresses touched by a program run,
    each tagged with an access kind (instruction fetch, data read, data
    write). Addresses are word addresses: the unit the paper indexes
    caches with (line size is fixed at one word, paper section 2.1). *)

type kind = Fetch | Read | Write

type access = { addr : int; kind : kind }

(** Mutable growable trace; append-only. *)
type t

(** [create ()] is an empty trace. [capacity] pre-sizes the buffer. *)
val create : ?capacity:int -> unit -> t

(** [add t ~addr ~kind] appends one access. Raises [Invalid_argument] on a
    negative address. *)
val add : t -> addr:int -> kind:kind -> unit

(** [length t] is the number of accesses recorded so far (the paper's N). *)
val length : t -> int

(** [get t i] is the [i]-th access (0-based). *)
val get : t -> int -> access

(** [addr t i] is the address of the [i]-th access, without allocating. *)
val addr : t -> int -> int

(** [kind t i] is the kind of the [i]-th access. *)
val kind : t -> int -> kind

val iter : (access -> unit) -> t -> unit
val iteri : (int -> access -> unit) -> t -> unit

(** [iter_addrs f t] applies [f] to every address in order without
    materialising access records or an address array — the zero-copy
    input loop of the arena strip builder. *)
val iter_addrs : (int -> unit) -> t -> unit
val fold : ('a -> access -> 'a) -> 'a -> t -> 'a

(** [of_list accesses] builds a trace from a list. *)
val of_list : access list -> t

(** [of_addresses ?kind addrs] tags every address with [kind]
    (default [Read]). *)
val of_addresses : ?kind:kind -> int array -> t

val to_list : t -> access list

(** [addresses t] is a fresh array of the addresses in order. *)
val addresses : t -> int array

(** [filter keep t] is a new trace with only the accesses satisfying
    [keep], in order. *)
val filter : (access -> bool) -> t -> t

(** [is_data a] holds for reads and writes; [is_fetch a] for fetches. *)
val is_data : access -> bool

val is_fetch : access -> bool

(** [max_addr t] is the largest address, or 0 for an empty trace. *)
val max_addr : t -> int

(** [address_bits t] is the number of bits needed to represent every
    address in [t]; at least 1. *)
val address_bits : t -> int

(** [append dst src] appends all of [src] to [dst]. *)
val append : t -> t -> unit

(** [fingerprint t] is a 64-bit FNV-1a digest over the address sequence
    and the trace length — the content-addressing key of the [dse serve]
    result cache. Access kinds are excluded: the analytical model is a
    function of addresses only, so traces differing only in kinds share
    their cached histograms by design. *)
val fingerprint : t -> int64

(** Streaming fingerprint: fold addresses one at a time without holding
    a trace. [fingerprint t] is exactly
    [fingerprint_finish (fold fingerprint_add fingerprint_init addrs) ~len],
    so a sketch built from a file stream lands on the same cache key as
    the equivalent materialised trace. *)
val fingerprint_init : int64

val fingerprint_add : int64 -> int -> int64

val fingerprint_finish : int64 -> len:int -> int64

(** [estimate_bytes ~model ~refs] is a pessimistic upper bound on the
    bytes a job over a [refs]-reference trace costs the daemon.
    Computed from the *declared* reference count of a submission frame,
    before any allocation, so [dse serve] admission control
    ([--memory-budget], [--max-job-refs]) can reject oversized jobs
    while they are still just a varint on the wire.

    [model] selects the kernel family the job will run on: [`Boxed]
    (50 B/ref — decoded trace + boxed stripping scratch + streaming
    recency state; the streaming/dfs/bcat methods) or [`Arena]
    (18 B/ref — decoded trace + int32 id arena + amortised off-heap
    unique/recency state; the default arena method, whose strip never
    exists as boxed arrays) or [`Sketch] (the one-pass approximate
    profiler: a fixed 4 MiB regardless of [refs] — HyperLogLog
    registers, the top-K heavy-hitter table and the two bucketed-LRU
    probes are all trace-length-independent, which is what lets the
    daemon admit billion-reference approx jobs under a memory budget
    that would reject them exactly). The per-ref models include a 1 KiB
    fixed floor. Raises [Invalid_argument] on a negative count. *)
val estimate_bytes : model:[ `Boxed | `Arena | `Sketch ] -> refs:int -> int

val pp_kind : Format.formatter -> kind -> unit
val equal_kind : kind -> kind -> bool
