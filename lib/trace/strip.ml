type t = { uniques : int array; ids : int array }

let strip_addresses addrs =
  let n = Array.length addrs in
  let table = Hashtbl.create (max 16 (n / 4)) in
  let uniques = ref [] in
  let count = ref 0 in
  let ids = Array.make n 0 in
  for i = 0 to n - 1 do
    let a = addrs.(i) in
    if a < 0 then
      (* a negative address would silently poison the ctz-based row
         arithmetic downstream; reject it as a typed constraint *)
      Dse_error.fail
        (Dse_error.Constraint_violation
           {
             context = "Strip.strip_addresses";
             message = Printf.sprintf "negative address %d at position %d" a i;
           });
    match Hashtbl.find_opt table a with
    | Some id -> ids.(i) <- id
    | None ->
      let id = !count in
      Hashtbl.add table a id;
      uniques := a :: !uniques;
      incr count;
      ids.(i) <- id
  done;
  { uniques = Array.of_list (List.rev !uniques); ids }

let strip_addresses_result addrs =
  match strip_addresses addrs with
  | s -> Ok s
  | exception Dse_error.Error e -> Error e

let strip trace = strip_addresses (Trace.addresses trace)

let num_unique s = Array.length s.uniques

let num_refs s = Array.length s.ids

let address_of s id =
  if id < 0 || id >= Array.length s.uniques then
    Dse_error.fail
      (Dse_error.Constraint_violation
         {
           context = "Strip.address_of";
           message =
             Printf.sprintf "identifier %d out of [0, %d)" id (Array.length s.uniques);
         });
  s.uniques.(id)

let reconstruct s = Array.map (fun id -> s.uniques.(id)) s.ids

let address_bits s =
  let m = Array.fold_left max 0 s.uniques in
  let rec bits n acc = if n = 0 then max acc 1 else bits (n lsr 1) (acc + 1) in
  bits m 0
