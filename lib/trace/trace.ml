type kind = Fetch | Read | Write

type access = { addr : int; kind : kind }

(* Parallel growable arrays: addresses as ints, kinds packed as chars. *)
type t = {
  mutable addrs : int array;
  mutable kinds : Bytes.t;
  mutable len : int;
}

let kind_to_char = function Fetch -> 'F' | Read -> 'R' | Write -> 'W'

let kind_of_char = function
  | 'F' -> Fetch
  | 'R' -> Read
  | 'W' -> Write
  | c -> invalid_arg (Printf.sprintf "Trace.kind_of_char: %c" c)

let create ?(capacity = 64) () =
  let capacity = max capacity 1 in
  { addrs = Array.make capacity 0; kinds = Bytes.make capacity 'R'; len = 0 }

let length t = t.len

let grow t =
  let cap = Array.length t.addrs in
  let cap' = cap * 2 in
  let addrs = Array.make cap' 0 in
  Array.blit t.addrs 0 addrs 0 t.len;
  let kinds = Bytes.make cap' 'R' in
  Bytes.blit t.kinds 0 kinds 0 t.len;
  t.addrs <- addrs;
  t.kinds <- kinds

let add t ~addr ~kind =
  if addr < 0 then invalid_arg "Trace.add: negative address";
  if t.len = Array.length t.addrs then grow t;
  t.addrs.(t.len) <- addr;
  Bytes.unsafe_set t.kinds t.len (kind_to_char kind);
  t.len <- t.len + 1

let check_index t i =
  if i < 0 || i >= t.len then
    invalid_arg (Printf.sprintf "Trace: index %d out of [0, %d)" i t.len)

let addr t i =
  check_index t i;
  t.addrs.(i)

let kind t i =
  check_index t i;
  kind_of_char (Bytes.get t.kinds i)

let get t i = { addr = addr t i; kind = kind t i }

let iteri f t =
  for i = 0 to t.len - 1 do
    f i { addr = t.addrs.(i); kind = kind_of_char (Bytes.get t.kinds i) }
  done

let iter f t = iteri (fun _ a -> f a) t

(* The arena strip builder's input loop: no access record, no kind
   decode, no bounds check per element — [len] bounds the unsafe read. *)
let iter_addrs f t =
  for i = 0 to t.len - 1 do
    f (Array.unsafe_get t.addrs i)
  done

let fold f init t =
  let acc = ref init in
  iter (fun a -> acc := f !acc a) t;
  !acc

let of_list accesses =
  let t = create ~capacity:(max 1 (List.length accesses)) () in
  List.iter (fun a -> add t ~addr:a.addr ~kind:a.kind) accesses;
  t

let of_addresses ?(kind = Read) addrs =
  let t = create ~capacity:(max 1 (Array.length addrs)) () in
  Array.iter (fun a -> add t ~addr:a ~kind) addrs;
  t

let to_list t = List.rev (fold (fun acc a -> a :: acc) [] t)

let addresses t = Array.sub t.addrs 0 t.len

let is_data a = match a.kind with Read | Write -> true | Fetch -> false

let is_fetch a = match a.kind with Fetch -> true | Read | Write -> false

let filter keep t =
  let out = create () in
  iter (fun a -> if keep a then add out ~addr:a.addr ~kind:a.kind) t;
  out

let max_addr t =
  let m = ref 0 in
  for i = 0 to t.len - 1 do
    if t.addrs.(i) > !m then m := t.addrs.(i)
  done;
  !m

let address_bits t =
  let rec bits n acc = if n = 0 then max acc 1 else bits (n lsr 1) (acc + 1) in
  bits (max_addr t) 0

let append dst src =
  iter (fun a -> add dst ~addr:a.addr ~kind:a.kind) src

(* FNV-1a, 64-bit: offset basis 0xcbf29ce484222325, prime 0x100000001b3.
   Folds each address as 8 little-endian bytes, then the length, so two
   traces collide only if they agree on every address in order AND on N.
   Kinds are excluded: the analytical model depends only on addresses, so
   kind-differing traces may (deliberately) share a fingerprint. *)
let fnv_offset = 0xcbf29ce484222325L

let fnv_prime = 0x100000001b3L

let fingerprint_init = fnv_offset

let fingerprint_add h v =
  let h = ref h in
  for shift = 0 to 7 do
    let byte = (v lsr (8 * shift)) land 0xFF in
    h := Int64.mul (Int64.logxor !h (Int64.of_int byte)) fnv_prime
  done;
  !h

let fingerprint_finish h ~len = fingerprint_add h len

let fingerprint t =
  let h = ref fingerprint_init in
  for i = 0 to t.len - 1 do
    h := fingerprint_add !h t.addrs.(i)
  done;
  fingerprint_finish !h ~len:t.len

(* Pessimistic per-reference footprint, in bytes, of admitting a job.
   Two cost models, one per kernel family:

   [`Boxed] — the classic strip + boxed streaming kernel:
     9  the trace itself (8-byte address word + 1 kind byte),
    24  stripping scratch (boxed line-address copy, stripped-id array,
        hash-table slot for the unique-address probe, growth slack),
    17  streaming-kernel recency state (per-unique list cell amortised
        across references, window scratch).
   50 per reference plus a 1 KiB fixed floor.

   [`Arena] — the off-heap arena kernel (the default method): the strip
   is built straight from the trace into bigarrays, so the boxed copies
   above never exist and the GC never has to head-room them:
     9  the decoded trace (same as above — it is boxed either way),
     4  the int32 id arena,
     5  uniques + hash table + recency arenas and bitset, amortised
        per reference (they are per-unique; on every registry workload
        the true share is far smaller, this allows N' close to N).
   18 per reference plus the same floor.

   Both are over- rather than under-estimates, which is the right
   direction for admission control: rejecting a job that would have fit
   costs a retry elsewhere; admitting one that does not fit OOMs the
   daemon. *)
(* [`Sketch] — the one-pass approximate profiler never materialises the
   trace at all: HLL registers (8 KiB), the top-K table (~100 KiB) and
   two bucketed-LRU probes (~1 MiB) are fixed-size whatever [refs] is.
   4 MiB is a generous ceiling over the measured footprint. *)
let sketch_bytes = 4 * 1024 * 1024

let estimate_bytes ~model ~refs =
  if refs < 0 then invalid_arg "Trace.estimate_bytes: negative reference count";
  match model with
  | `Boxed -> 1024 + (refs * 50)
  | `Arena -> 1024 + (refs * 18)
  | `Sketch -> sketch_bytes

let pp_kind fmt k = Format.fprintf fmt "%c" (kind_to_char k)

let equal_kind a b =
  match (a, b) with
  | Fetch, Fetch | Read, Read | Write, Write -> true
  | (Fetch | Read | Write), _ -> false
