(** Trace stripping (paper section 2.2, Tables 1 and 2).

    A trace of N references is reduced to its N' unique references, each
    assigned a dense identifier in first-occurrence order, together with
    the original trace re-expressed as a sequence of identifiers. The
    paper notes a hash table makes this linear; that is what we use. *)

type t = {
  uniques : int array;  (** identifier -> address, in first-occurrence order *)
  ids : int array;  (** original position -> identifier *)
}

(** [strip trace] strips a full trace (all access kinds). *)
val strip : Trace.t -> t

(** [strip_addresses addrs] strips a raw address sequence. Raises
    {!Dse_error.Error} ([Constraint_violation]) on a negative address —
    a {!Trace.t} cannot contain one, but a raw array can. *)
val strip_addresses : int array -> t

(** [strip_addresses_result addrs] is {!strip_addresses} with the
    constraint violation returned instead of raised. *)
val strip_addresses_result : int array -> (t, Dse_error.t) result

(** [num_unique s] is N'. *)
val num_unique : t -> int

(** [num_refs s] is the original N. *)
val num_refs : t -> int

(** [address_of s id] is the address carried by [id]. Raises
    {!Dse_error.Error} ([Constraint_violation]) when [id] is outside
    [0, N'). *)
val address_of : t -> int -> int

(** [reconstruct s] rebuilds the original address sequence. *)
val reconstruct : t -> int array

(** [address_bits s] is the number of bits needed for the widest unique
    address; at least 1. Determines the usable BCAT index bits. *)
val address_bits : t -> int
