(** Trace file I/O: text, binary (versioned + checksummed), and Dinero.

    Every reader returns a {!Stdlib.result} carrying a typed
    {!Dse_error.t} — a corrupt input can never escape as a raw
    [Failure] or [End_of_file]. Readers also support a lenient
    ingestion mode ({!on_error}) that skips malformed records, counts
    them, and reports the earliest few, for salvaging real-world traces
    with isolated damage. *)

(** What to do when a malformed line/record is encountered:
    - [Fail] (the default): return the first error;
    - [Skip]: drop malformed records, count them, keep reading;
    - [Stop_after n]: tolerate up to [n] malformed records, then return
      the next error ([Stop_after 0] behaves like [Fail]). *)
type on_error = Fail | Skip | Stop_after of int

(** A successful (possibly lenient) read: the parsed trace, how many
    malformed records were skipped, and the earliest skipped errors
    (capped at {!max_reported_errors}). *)
type ingest = { trace : Trace.t; skipped : int; errors : Dse_error.t list }

(** A successful one-pass scan ({!scan}/{!iter}): how many well-formed
    references were fed to the sink, plus the same lenient-mode
    accounting as {!ingest} — but no trace, because none was built. *)
type stream = { refs : int; skipped : int; errors : Dse_error.t list }

(** The three on-disk trace encodings, as selected by [dse --format]. *)
type format = [ `Text | `Binary | `Dinero ]

(** Cap on the per-read [errors] list (5). *)
val max_reported_errors : int

(** Lines longer than this (4096 bytes) are rejected as malformed. *)
val max_line_length : int

(** {2 Text format}

    One access per line: a kind letter ([F] fetch, [R] read, [W] write)
    followed by a word address ([0x]-prefixed hex or decimal), e.g.
    [R 0x1a3f]. Blank lines and lines starting with [#] are ignored. *)

val write : out_channel -> Trace.t -> unit

(** [read ?on_error ?file channel] parses a text trace. [file] labels
    errors (defaults to ["<channel>"]). *)
val read : ?on_error:on_error -> ?file:string -> in_channel -> (ingest, Dse_error.t) result

val load : ?on_error:on_error -> string -> (ingest, Dse_error.t) result

val save : string -> Trace.t -> (unit, Dse_error.t) result

(** {2 Binary format}

    The writer emits v2: the magic ["DSEB"], a version byte, a LEB128
    length, one LEB128 record per access (kind packed into the two low
    bits), and a CRC-32 footer over every preceding byte — any
    single-byte corruption or truncation is detected deterministically.
    Legacy v1 files (magic ["DSET"], no version byte, no footer) are
    still readable. Structural damage (bad magic, truncated or overwide
    varint, length or CRC mismatch) aborts the read under [Fail]; under
    the lenient modes the records parsed so far are kept, since no
    resynchronisation is possible inside a varint stream. *)

val write_binary : out_channel -> Trace.t -> unit

(** [write_binary_stream channel ~length produce] writes a v2 binary
    trace whose records are produced one at a time by the callback
    handed to [produce] — the generator side of the no-boxed-array
    pipeline, so a 10^8-reference synthetic file never exists in memory.
    Raises [Invalid_argument] if [produce] emits a number of records
    different from the declared [length]. *)
val write_binary_stream :
  out_channel -> length:int -> ((addr:int -> kind:Trace.kind -> unit) -> unit) -> unit

val read_binary :
  ?on_error:on_error -> ?file:string -> in_channel -> (ingest, Dse_error.t) result

val load_binary : ?on_error:on_error -> string -> (ingest, Dse_error.t) result

val save_binary : string -> Trace.t -> (unit, Dse_error.t) result

(** {2 Dinero import}

    The classic Dinero/din format: one access per line, a numeric label
    (0 read, 1 write, 2 instruction fetch) followed by a hex address.
    Blank lines are ignored. *)

val read_dinero :
  ?on_error:on_error -> ?file:string -> in_channel -> (ingest, Dse_error.t) result

val load_dinero : ?on_error:on_error -> string -> (ingest, Dse_error.t) result

(** {2 One-pass streaming}

    The memory-honest ingestion path: every well-formed access is handed
    to a sink callback in file order and nothing is retained — no boxed
    address array, no {!Trace.t}. This is what [dse explore --approx]
    and [dse stats --approx] feed their sketches from, which is the
    whole reason a 10^8-reference trace fits in O(kilobytes) of analysis
    state. Error handling (lenient modes, typed failures, CRC checking
    for the binary format) is byte-for-byte the same machinery as the
    materialising readers — the parsers are shared. *)

(** [scan ?on_error ?file ?format channel sink] drains [channel],
    calling [sink] once per well-formed access. [format] defaults to
    [`Text]. *)
val scan :
  ?on_error:on_error ->
  ?file:string ->
  ?format:format ->
  in_channel ->
  (addr:int -> kind:Trace.kind -> unit) ->
  (stream, Dse_error.t) result

(** [iter ?on_error ?format path sink] opens [path] (binary-safe when
    [format] is [`Binary]) and {!scan}s it. *)
val iter :
  ?on_error:on_error ->
  ?format:format ->
  string ->
  (addr:int -> kind:Trace.kind -> unit) ->
  (stream, Dse_error.t) result

(** {2 Raising conveniences}

    For quick library use; each raises {!Dse_error.Error} instead of
    returning a result, and discards the skipped-record summary. *)

val load_exn : ?on_error:on_error -> string -> Trace.t

val load_binary_exn : ?on_error:on_error -> string -> Trace.t

val load_dinero_exn : ?on_error:on_error -> string -> Trace.t
