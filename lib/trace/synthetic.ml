let check_positive name v = if v <= 0 then invalid_arg ("Synthetic: " ^ name ^ " must be positive")

let sequential ~start ~length =
  check_positive "length" length;
  Trace.of_addresses (Array.init length (fun k -> start + k))

let loop ~base ~body ~iterations =
  check_positive "body" body;
  check_positive "iterations" iterations;
  let trace = Trace.create ~capacity:(body * iterations) () in
  for _it = 1 to iterations do
    for offset = 0 to body - 1 do
      Trace.add trace ~addr:(base + offset) ~kind:Trace.Fetch
    done
  done;
  trace

let strided ~base ~stride ~count ~iterations =
  check_positive "stride" stride;
  check_positive "count" count;
  check_positive "iterations" iterations;
  let trace = Trace.create ~capacity:(count * iterations) () in
  for _it = 1 to iterations do
    for k = 0 to count - 1 do
      Trace.add trace ~addr:(base + (k * stride)) ~kind:Trace.Read
    done
  done;
  trace

(* Small deterministic xorshift so the generators do not depend on the
   global Random state. *)
let next_random state =
  let x = !state in
  let x = x lxor (x lsl 13) in
  let x = x lxor (x lsr 7) in
  let x = x lxor (x lsl 17) in
  let x = x land max_int in
  state := if x = 0 then 88172645463325252 else x;
  !state

let hot_cold ~seed ~hot ~cold ~hot_percent ~length =
  check_positive "hot" hot;
  check_positive "cold" cold;
  check_positive "length" length;
  if hot_percent < 0 || hot_percent > 100 then
    invalid_arg "Synthetic: hot_percent must be within 0..100";
  let state = ref (seed lor 1) in
  let trace = Trace.create ~capacity:length () in
  for _k = 1 to length do
    let roll = next_random state mod 100 in
    let addr =
      if roll < hot_percent then next_random state mod hot
      else hot + (next_random state mod cold)
    in
    Trace.add trace ~addr ~kind:Trace.Read
  done;
  trace

let uniform ~seed ~span ~length =
  check_positive "span" span;
  check_positive "length" length;
  let state = ref (seed lor 1) in
  let trace = Trace.create ~capacity:length () in
  for _k = 1 to length do
    Trace.add trace ~addr:(next_random state mod span) ~kind:Trace.Read
  done;
  trace

(* Zipf-distributed rank sampler: P(k) proportional to 1/(k+1)^skew.
   Inverse-CDF with binary search — the CDF table is built once per
   sampler, so drawing is O(log n). This is the popularity shape of
   web/CDN traffic (Berthet's power-law miss-rate work builds on it),
   and the client mix under which cache-locality routing is honest:
   a few traces dominate, most are rare. *)
let zipf_sampler ~seed ~n ~skew =
  check_positive "n" n;
  if not (skew > 0.) then invalid_arg "Synthetic: skew must be positive";
  let cdf = Array.make n 0. in
  let total = ref 0. in
  for k = 0 to n - 1 do
    total := !total +. (1. /. Float.pow (float_of_int (k + 1)) skew);
    cdf.(k) <- !total
  done;
  (* [(seed * 2) lor 1] is odd-and-nonzero like the other generators'
     [seed lor 1], but injective: consecutive seeds must not collapse
     to the same stream (seed 12 and 13 would otherwise draw
     identically, which silently deduplicates "distinct" workloads) *)
  let state = ref ((seed * 2) lor 1) in
  fun () ->
    let u = float_of_int (next_random state) /. float_of_int max_int *. !total in
    let lo = ref 0 and hi = ref (n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if cdf.(mid) < u then lo := mid + 1 else hi := mid
    done;
    !lo

let zipfian ~seed ~span ~skew ~length =
  check_positive "span" span;
  check_positive "length" length;
  let draw = zipf_sampler ~seed ~n:span ~skew in
  (* ranks map to addresses through a multiplicative shuffle, so the
     popular addresses are scattered over the span instead of packed at
     its bottom (which would make every hot line a neighbour) *)
  let trace = Trace.create ~capacity:length () in
  for _k = 1 to length do
    let rank = draw () in
    Trace.add trace ~addr:(rank * 2654435761 mod span) ~kind:Trace.Read
  done;
  trace

(* CDN/web-shaped workload: Zipf popularity over [span] objects plus
   optional working-set churn. Each rank carries a salt; with
   probability [churn] per reference the drawn rank's salt is bumped
   before the access, remapping that rank to a fresh address inside the
   span — the popularity *shape* is stationary but its *support* drifts,
   the way a CDN's hot set rolls over as content is published. The
   second shuffle constant is odd, so both terms permute [span] when it
   is a power of two. Generator state is O(span) (CDF table + salts);
   the emitted stream is unbounded — pair with
   [Trace_io.write_binary_stream] or a sketch sink for huge lengths. *)
let iter_power_law ~seed ~span ~skew ?(churn = 0.) ~length sink =
  check_positive "span" span;
  check_positive "length" length;
  if not (churn >= 0. && churn <= 1.) then
    invalid_arg "Synthetic: churn must be within [0, 1]";
  let draw = zipf_sampler ~seed ~n:span ~skew in
  let salts = if churn > 0. then Array.make span 0 else [||] in
  let state = ref ((seed * 2) lor 5) in
  for _k = 1 to length do
    let rank = draw () in
    let salt =
      if churn > 0. then begin
        if float_of_int (next_random state) /. float_of_int max_int < churn then
          salts.(rank) <- salts.(rank) + 1;
        salts.(rank)
      end
      else 0
    in
    let addr = ((rank * 2654435761) + (salt * 1540483477)) mod span in
    sink ~addr ~kind:Trace.Read
  done

let power_law ~seed ~span ~skew ?churn ~length () =
  let trace = Trace.create ~capacity:length () in
  iter_power_law ~seed ~span ~skew ?churn ~length (fun ~addr ~kind ->
      Trace.add trace ~addr ~kind);
  trace
