(** CRC-32 (IEEE 802.3, polynomial 0xEDB88320), byte-at-a-time.

    Seals the v2 binary trace format: the writer folds every emitted
    byte into a running digest and appends it as a footer, so any
    single-byte corruption or truncation of a trace file is detected
    deterministically on load. The running state is an [int] holding a
    32-bit value. *)

(** Initial running state. *)
val init : int

(** [update_byte crc byte] folds in one byte (low 8 bits of [byte]). *)
val update_byte : int -> int -> int

(** [finalize crc] is the 32-bit digest of the bytes folded so far. *)
val finalize : int -> int

(** [update_string crc s] folds in a whole string (block form of
    [update_byte], one table lookup per byte without a closure). *)
val update_string : int -> string -> int

(** [digest_string s] is the digest of a whole string. *)
val digest_string : string -> int
