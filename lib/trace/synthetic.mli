(** Synthetic trace generators: parameterised address streams with the
    locality archetypes real workloads mix (sequential streaming, loops,
    hot/cold sets, strided array walks). Used by the property tests and
    to populate scaling studies with traces of controlled N and N'. *)

(** [sequential ~start ~length] is [start, start+1, ...]. *)
val sequential : start:int -> length:int -> Trace.t

(** [loop ~base ~body ~iterations] replays the address window
    [base, base+body) [iterations] times — an instruction-fetch-like
    pattern. *)
val loop : base:int -> body:int -> iterations:int -> Trace.t

(** [strided ~base ~stride ~count ~iterations] walks [base, base+stride,
    base+2*stride, ...] repeatedly — a column-major-array pattern that
    provokes conflict misses at depths dividing the stride. *)
val strided : base:int -> stride:int -> count:int -> iterations:int -> Trace.t

(** [hot_cold ~seed ~hot ~cold ~hot_percent ~length] draws each access
    from a small hot set with probability [hot_percent]/100, else from a
    large cold set — a data-cache-like mix. *)
val hot_cold : seed:int -> hot:int -> cold:int -> hot_percent:int -> length:int -> Trace.t

(** [uniform ~seed ~span ~length] draws addresses uniformly from
    [0, span). *)
val uniform : seed:int -> span:int -> length:int -> Trace.t

(** [zipf_sampler ~seed ~n ~skew ()] draws ranks in [0, n) with
    P(k) proportional to 1/(k+1)^skew — the power-law popularity of
    web/CDN traffic. O(log n) per draw (inverse CDF, binary search);
    deterministic per seed. Also the client mix generator for the
    router bench: rank selects {e which trace} to submit, so a few
    traces dominate as they would in production. *)
val zipf_sampler : seed:int -> n:int -> skew:float -> unit -> int

(** [zipfian ~seed ~span ~skew ~length] draws addresses from [0, span)
    with Zipf popularity, scattered over the span by a multiplicative
    hash so hot addresses are not all neighbours. *)
val zipfian : seed:int -> span:int -> skew:float -> length:int -> Trace.t

(** [iter_power_law ~seed ~span ~skew ?churn ~length sink] streams a
    CDN/web-shaped reference trace to [sink] without materialising it:
    Zipf([skew]) popularity over an address space of [span] words, and
    with probability [churn] (default 0, per reference) the drawn
    object is remapped to a fresh address — stationary popularity shape
    over a drifting working set, the temporal-locality profile of a
    content catalogue that rolls over. Deterministic per seed; O(span)
    generator state but O(1) per emitted reference, so [length] can be
    10^8+ when the sink is a file writer or a sketch. *)
val iter_power_law :
  seed:int ->
  span:int ->
  skew:float ->
  ?churn:float ->
  length:int ->
  (addr:int -> kind:Trace.kind -> unit) ->
  unit

(** [power_law ~seed ~span ~skew ?churn ~length ()] materialises
    {!iter_power_law}'s stream as a trace, for grids small enough to
    compare against the exact kernels. *)
val power_law :
  seed:int -> span:int -> skew:float -> ?churn:float -> length:int -> unit -> Trace.t
