(* Command-line front end for the analytical cache design-space
   exploration flow:

     dse stats    TRACE                  trace statistics (Tables 5/6 row)
     dse explore  TRACE [options]        analytical DSE (Tables 7-30 style)
     dse simulate TRACE --depth --assoc  reference cache simulation
     dse compare  TRACE                  cross-check analytical vs one-pass
     dse gen      BENCH -o FILE          emit a benchmark trace
     dse list                            list bundled benchmarks *)

open Cmdliner

(* Exit codes: 0 ok, 2 usage, 3 I/O, 4 corrupt data, 5 internal,
   6 queue full, 7 deadline exceeded, 8 supervision (worker stalled /
   admission rejected), 9 routing (backend unavailable after failover),
   10 stale ring (a cluster exchange fenced by a newer membership
   epoch; see Dse_error.exit_code). Every
   error goes to stderr, never stdout, and
   traces are loaded before any report rendering starts, so diagnostics
   cannot interleave with report output. *)

let or_exit = function
  | Ok v -> v
  | Error e ->
    Format.eprintf "dse: %s@." (Dse_error.to_string e);
    exit (Dse_error.exit_code e)

let usage_fail message =
  Dse_error.fail (Dse_error.Constraint_violation { context = "usage"; message })

let report_skipped path skipped errors =
  if skipped > 0 then begin
    Format.eprintf "dse: %s: skipped %d malformed record(s)@." path skipped;
    List.iter (fun e -> Format.eprintf "dse:   %s@." (Dse_error.to_string e)) errors;
    if skipped > Trace_io.max_reported_errors then
      Format.eprintf "dse:   ... and %d more@." (skipped - Trace_io.max_reported_errors)
  end

let load_trace format on_error path =
  let loader =
    match format with
    | `Text -> Trace_io.load
    | `Binary -> Trace_io.load_binary
    | `Dinero -> Trace_io.load_dinero
  in
  let ingest = or_exit (loader ~on_error path) in
  report_skipped path ingest.Trace_io.skipped ingest.Trace_io.errors;
  ingest.Trace_io.trace

(* The streaming ingestion for the approximate plane: the trace file is
   folded straight into the sketch, so nothing trace-length-sized is
   ever allocated. *)
let sketch_trace_file format on_error path =
  let profile, stream = or_exit (Approx_dse.sketch_file ~on_error ~format path) in
  report_skipped path stream.Trace_io.skipped stream.Trace_io.errors;
  profile

let on_error_arg =
  let parse s =
    match s with
    | "fail" -> Ok Trace_io.Fail
    | "skip" -> Ok Trace_io.Skip
    | _ -> (
      match String.split_on_char ':' s with
      | [ "stop-after"; n ] -> (
        match int_of_string_opt n with
        | Some n when n >= 0 -> Ok (Trace_io.Stop_after n)
        | _ -> Error (`Msg (Printf.sprintf "bad stop-after count %S" n)))
      | _ -> Error (`Msg (Printf.sprintf "bad on-error policy %S (expected fail, skip, or stop-after:N)" s)))
  in
  let print fmt = function
    | Trace_io.Fail -> Format.fprintf fmt "fail"
    | Trace_io.Skip -> Format.fprintf fmt "skip"
    | Trace_io.Stop_after n -> Format.fprintf fmt "stop-after:%d" n
  in
  Arg.(
    value
    & opt (conv (parse, print)) Trace_io.Fail
    & info [ "on-error" ] ~docv:"POLICY"
        ~doc:
          "What to do with malformed trace records: $(b,fail) (default), $(b,skip) (drop, \
           count, and summarise them on stderr), or $(b,stop-after:N) (tolerate up to N).")

let trace_arg =
  let doc = "Trace file (lines of '<F|R|W> <address>', hex or decimal)." in
  (* [string], not [file]: a missing trace must surface as a typed
     [Io_error] (exit 3), not a cmdliner usage error (exit 2) *)
  Arg.(required & pos 0 (some string) None & info [] ~docv:"TRACE" ~doc)

let format_arg =
  let formats = [ ("text", `Text); ("binary", `Binary); ("dinero", `Dinero) ] in
  Arg.(
    value
    & opt (enum formats) `Text
    & info [ "format" ] ~docv:"FMT" ~doc:"Trace file format: text, binary, or dinero.")

let max_depth_arg =
  let doc = "Largest cache depth (rows) to evaluate; a power of two." in
  Arg.(value & opt (some int) None & info [ "max-depth" ] ~docv:"DEPTH" ~doc)

let level_of_max_depth = function
  | None -> None
  | Some d ->
    if d < 1 || d land (d - 1) <> 0 then usage_fail "max-depth must be a positive power of two"
    else begin
      let rec log2 n acc = if n <= 1 then acc else log2 (n lsr 1) (acc + 1) in
      Some (log2 d 0)
    end

(* -- stats -- *)

let stats_cmd =
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Emit one machine-readable JSON object (name, fingerprint, N, N', address bits, \
             maximum misses) instead of the aligned table.")
  in
  let run path format on_error json =
    let trace = load_trace format on_error path in
    let stats = Stats.compute trace in
    let name = Filename.basename path in
    let fingerprint = Trace.fingerprint trace in
    (* the sketch's cardinality estimate beside the exact N': the
       always-on cross-check of the approximate plane *)
    let distinct_addrs_approx = Sketch.distinct_of_trace trace in
    if json then
      print_endline (Report.stats_to_json ~name ~fingerprint ~distinct_addrs_approx stats)
    else begin
      Format.printf "%a@." Report.pp_stats_table [ (name, stats) ];
      Format.printf "fingerprint %016Lx@." fingerprint;
      Format.printf "distinct_addrs_approx %.1f@." distinct_addrs_approx
    end
  in
  let term = Term.(const run $ trace_arg $ format_arg $ on_error_arg $ json_arg) in
  Cmd.v (Cmd.info "stats" ~doc:"Print trace statistics (N, N', maximum misses).") term

(* -- explore -- *)

let percents_arg =
  let doc = "Miss budgets as percentages of the maximum miss count." in
  Arg.(value & opt (list int) [ 5; 10; 15; 20 ] & info [ "percents" ] ~docv:"P,..." ~doc)

let absolute_k_arg =
  let doc = "Absolute miss budget K; overrides $(b,--percents)." in
  Arg.(value & opt (some int) None & info [ "k"; "budget" ] ~docv:"K" ~doc)

let csv_arg =
  let doc = "Emit CSV instead of an aligned table." in
  Arg.(value & flag & info [ "csv" ] ~doc)

let trim_arg =
  let doc = "Keep all depths instead of stopping at the first all-direct-mapped row." in
  Arg.(value & flag & info [ "no-trim" ] ~doc)

let method_arg =
  let methods =
    [
      ("arena", `Exact Analytical.Arena);
      ("streaming", `Exact Analytical.Streaming);
      ("dfs", `Exact Analytical.Dfs);
      ("bcat", `Exact Analytical.Bcat_walk);
      ("approx", `Approx);
    ]
  in
  Arg.(
    value
    & opt (enum methods) (`Exact Analytical.Arena)
    & info [ "method" ] ~docv:"METHOD"
        ~doc:
          "Analysis method. Exact histogram kernels: $(b,arena) (fused single pass over \
           off-heap flat arenas, GC-invisible state, the default), $(b,streaming) (the same \
           kernel on boxed arrays), $(b,dfs) (materialized MRCT), or $(b,bcat) (Algorithms \
           1+3 as published) — all exact methods produce identical results. $(b,approx) \
           estimates miss counts with error bars from a one-pass O(kilobytes) sketch \
           (equivalent to $(b,--approx)).")

let approx_arg =
  let doc =
    "Approximate analysis: profile the trace in one streaming pass (HyperLogLog + top-K + \
     reuse probes, O(kilobytes) whatever the trace length) and estimate per-(depth, \
     associativity) miss counts with error bars via a Che/Fagin power-law model, instead of \
     running an exact kernel. The trace file is never loaded into memory."
  in
  Arg.(value & flag & info [ "approx" ] ~doc)

let domains_arg =
  let doc =
    "Number of parallel domains for the postlude. With $(b,--method arena) or $(b,--method \
     streaming) the trace is sharded into windows (arena shards share one read-only strip); \
     with $(b,--method dfs) the MRCT is partitioned by identifier."
  in
  Arg.(value & opt int 1 & info [ "domains" ] ~docv:"N" ~doc)

let explore_cmd =
  let run path format on_error percents k max_depth csv no_trim method_ domains approx =
    if domains < 1 then usage_fail "domains must be >= 1";
    let max_level = level_of_max_depth max_depth in
    let name = Filename.basename path in
    let approx = approx || (match method_ with `Approx -> true | `Exact _ -> false) in
    if approx then begin
      let profile = sketch_trace_file format on_error path in
      let prepared = Approx_dse.prepare profile in
      match k with
      | Some k ->
        Format.printf "%a@." Report.pp_approx_optimal (Approx_dse.optimal ?max_level ~k prepared)
      | None ->
        let table = Approx_dse.table ~percents ?max_level ~name prepared in
        let table = if no_trim then table else Approx_dse.trim table in
        if csv then print_string (Report.approx_to_csv table)
        else Format.printf "%a@." Report.pp_approx_instances table
    end
    else begin
      let method_ = match method_ with `Exact m -> m | `Approx -> assert false in
      let trace = load_trace format on_error path in
      match k with
      | Some k ->
        let result = Analytical.explore ?max_level ~method_ ~domains trace ~k in
        Format.printf "%a@." Optimizer.pp result
      | None ->
        let table = Analytical_dse.run ~percents ?max_level ~method_ ~domains ~name trace in
        let table = if no_trim then table else Analytical_dse.trim table in
        if csv then print_string (Report.instances_to_csv table)
        else Format.printf "%a@." Report.pp_instances table
    end
  in
  let term =
    Term.(const run $ trace_arg $ format_arg $ on_error_arg $ percents_arg $ absolute_k_arg
          $ max_depth_arg $ csv_arg $ trim_arg $ method_arg $ domains_arg $ approx_arg)
  in
  Cmd.v
    (Cmd.info "explore"
       ~doc:"Compute optimal (depth, associativity) cache instances analytically.")
    term

(* -- simulate -- *)

let simulate_cmd =
  let depth_arg =
    Arg.(required & opt (some int) None & info [ "depth" ] ~docv:"D" ~doc:"Cache depth (rows).")
  in
  let assoc_arg =
    Arg.(required & opt (some int) None & info [ "assoc" ] ~docv:"A" ~doc:"Associativity (ways).")
  in
  let line_arg =
    Arg.(value & opt int 1 & info [ "line" ] ~docv:"W" ~doc:"Line size in words.")
  in
  let policy_arg =
    let policies = [ ("lru", `Lru); ("fifo", `Fifo); ("random", `Random) ] in
    Arg.(value & opt (enum policies) `Lru & info [ "policy" ] ~doc:"Replacement policy.")
  in
  let run path format on_error depth assoc line policy =
    let trace = load_trace format on_error path in
    let replacement =
      match policy with `Lru -> Config.Lru | `Fifo -> Config.Fifo | `Random -> Config.Random 1
    in
    let config = Config.make ~line_words:line ~replacement ~depth ~associativity:assoc () in
    let stats = Cache.simulate config trace in
    Format.printf "%a@.%a@." Config.pp config Cache.pp_stats stats
  in
  let term =
    Term.(const run $ trace_arg $ format_arg $ on_error_arg $ depth_arg $ assoc_arg $ line_arg
          $ policy_arg)
  in
  Cmd.v (Cmd.info "simulate" ~doc:"Simulate one cache configuration over a trace.") term

(* -- compare -- *)

let compare_cmd =
  let run path format on_error max_depth =
    let trace = load_trace format on_error path in
    let max_level = level_of_max_depth max_depth in
    let outcome = Compare.trace ?max_level trace in
    Format.printf "%a@." Compare.pp outcome;
    if not (Compare.agree outcome) then exit 1
  in
  let term = Term.(const run $ trace_arg $ format_arg $ on_error_arg $ max_depth_arg) in
  Cmd.v
    (Cmd.info "compare" ~doc:"Cross-check the analytical model against stack simulation.")
    term

(* -- gen -- *)

let gen_cmd =
  let bench_arg =
    let doc = "Benchmark name; see $(b,dse list)." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"BENCH" ~doc)
  in
  let kind_arg =
    let kinds = [ ("inst", `Inst); ("data", `Data) ] in
    Arg.(value & opt (enum kinds) `Data & info [ "kind" ] ~doc:"Trace kind: inst or data.")
  in
  let out_arg =
    Arg.(required & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output path.")
  in
  let binary_arg =
    Arg.(value & flag & info [ "binary" ] ~doc:"Write the compact binary format.")
  in
  let run name kind out binary =
    let bench =
      try Registry.find name
      with Not_found -> usage_fail (Printf.sprintf "unknown benchmark %S" name)
    in
    let itrace, dtrace = Workload.traces bench in
    let trace = match kind with `Inst -> itrace | `Data -> dtrace in
    or_exit (if binary then Trace_io.save_binary out trace else Trace_io.save out trace);
    Format.printf "wrote %d references to %s@." (Trace.length trace) out
  in
  let term = Term.(const run $ bench_arg $ kind_arg $ out_arg $ binary_arg) in
  Cmd.v (Cmd.info "gen" ~doc:"Run a bundled benchmark on the VM and save its trace.") term

(* -- synth -- *)

let synth_cmd =
  let out_arg =
    Arg.(required & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output path.")
  in
  let refs_arg =
    Arg.(
      value
      & opt int 10_000_000
      & info [ "refs"; "length" ] ~docv:"N"
          ~doc:
            "Number of references to emit. The generator and the binary writer are both \
             streaming (O(1) state per reference), so 10^8+ is fine.")
  in
  let span_arg =
    Arg.(
      value
      & opt int 65536
      & info [ "span" ] ~docv:"WORDS" ~doc:"Address-space size the popularity law is drawn over.")
  in
  let skew_arg =
    Arg.(
      value
      & opt float 0.8
      & info [ "skew"; "alpha" ] ~docv:"ALPHA"
          ~doc:"Zipf exponent: P(rank k) proportional to 1/(k+1)^ALPHA.")
  in
  let churn_arg =
    Arg.(
      value
      & opt float 0.0
      & info [ "churn" ] ~docv:"P"
          ~doc:
            "Per-reference probability that the drawn object is remapped to a fresh address — \
             a stationary popularity shape over a drifting working set.")
  in
  let seed_arg =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Deterministic generator seed.")
  in
  let binary_arg =
    Arg.(value & flag & info [ "binary" ] ~doc:"Write the compact binary format.")
  in
  let run out refs span skew churn seed binary =
    if refs < 1 then usage_fail "refs must be >= 1";
    if span < 1 then usage_fail "span must be >= 1";
    if not (skew >= 0.) then usage_fail "skew must be >= 0";
    if churn < 0. || churn > 1. then usage_fail "churn must be in [0, 1]";
    let generate = Synthetic.iter_power_law ~seed ~span ~skew ~churn ~length:refs in
    let write oc =
      if binary then Trace_io.write_binary_stream oc ~length:refs generate
      else
        generate (fun ~addr ~kind ->
            let letter =
              match kind with Trace.Fetch -> 'F' | Trace.Read -> 'R' | Trace.Write -> 'W'
            in
            Printf.fprintf oc "%c 0x%x\n" letter addr)
    in
    (match
       try
         let oc = open_out_bin out in
         Fun.protect ~finally:(fun () -> close_out oc) (fun () -> write oc);
         Ok ()
       with Sys_error message -> Error (Dse_error.Io_error { file = out; message })
     with
    | Ok () -> ()
    | Error e -> or_exit (Error e));
    Format.printf "wrote %d references to %s@." refs out
  in
  let term =
    Term.(const run $ out_arg $ refs_arg $ span_arg $ skew_arg $ churn_arg $ seed_arg $ binary_arg)
  in
  Cmd.v
    (Cmd.info "synth"
       ~doc:
         "Stream a synthetic power-law (zipfian) trace to a file without materialising it: \
          the scaling companion to $(b,dse explore --approx).")
    term

(* -- reduce -- *)

let reduce_cmd =
  let depth_arg =
    Arg.(
      required
      & opt (some int) None
      & info [ "depth" ] ~docv:"F"
          ~doc:"Filter depth; miss counts are preserved for caches of depth >= F.")
  in
  let out_arg =
    Arg.(required & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output path.")
  in
  let run path format on_error depth out =
    let trace = load_trace format on_error path in
    let r = Reduce.filter ~depth trace in
    or_exit (Trace_io.save out r.Reduce.reduced);
    Format.printf "kept %d of %d references (%.1f%%), removed %d filter hits@."
      (Trace.length r.Reduce.reduced)
      r.Reduce.original_length
      (100.0 *. Reduce.reduction_ratio r)
      r.Reduce.filter_hits
  in
  let term = Term.(const run $ trace_arg $ format_arg $ on_error_arg $ depth_arg $ out_arg) in
  Cmd.v
    (Cmd.info "reduce"
       ~doc:"Strip a trace through a direct-mapped filter cache (Puzak/Wu-Wolf).")
    term

(* -- pareto -- *)

let pareto_cmd =
  let k_arg =
    Arg.(required & opt (some int) None & info [ "k"; "budget" ] ~docv:"K" ~doc:"Miss budget.")
  in
  let run path format on_error k =
    let trace = load_trace format on_error path in
    let points = Pareto.candidates trace ~k in
    let frontier = Pareto.frontier points in
    List.iter
      (fun p ->
        Format.printf "%s %a@." (if List.memq p frontier then "*" else " ") Pareto.pp_point p)
      points;
    Format.printf "* = Pareto-optimal under (energy, time, area)@."
  in
  let term = Term.(const run $ trace_arg $ format_arg $ on_error_arg $ k_arg) in
  Cmd.v
    (Cmd.info "pareto" ~doc:"Cost the budget-meeting instances and mark the Pareto set.")
    term

(* -- disasm -- *)

let disasm_cmd =
  let bench_arg =
    let doc = "Benchmark name; see $(b,dse list)." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"BENCH" ~doc)
  in
  let encoded_arg =
    Arg.(value & flag & info [ "hex" ] ~doc:"Also print the 32-bit encodings.")
  in
  let run name hex =
    let bench =
      try Registry.find name
      with Not_found -> usage_fail (Printf.sprintf "unknown benchmark %S" name)
    in
    let program = Asm.assemble bench.Workload.program in
    Array.iteri
      (fun pc instr ->
        if hex then Format.printf "%4d  %08x  %a@." pc (Encode.encode instr) Isa.pp_instr instr
        else Format.printf "%4d  %a@." pc Isa.pp_instr instr)
      program
  in
  let term = Term.(const run $ bench_arg $ encoded_arg) in
  Cmd.v (Cmd.info "disasm" ~doc:"Print the assembled listing of a bundled benchmark.") term

(* -- codesign -- *)

let codesign_cmd =
  let bench_arg =
    let doc = "Benchmark name; see $(b,dse list)." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"BENCH" ~doc)
  in
  let k_arg =
    Arg.(
      required
      & opt (some int) None
      & info [ "k"; "budget" ] ~docv:"K" ~doc:"Total miss budget across both caches.")
  in
  let run name k_total =
    let bench =
      try Registry.find name
      with Not_found -> usage_fail (Printf.sprintf "unknown benchmark %S" name)
    in
    let itrace, dtrace = Workload.traces bench in
    let best = Codesign.partition ~itrace ~dtrace ~k_total () in
    Format.printf "best split: %a@." Codesign.pp_split best
  in
  let term = Term.(const run $ bench_arg $ k_arg) in
  Cmd.v
    (Cmd.info "codesign"
       ~doc:"Partition one miss budget between the I- and D-cache, minimising total size.")
    term

(* -- serve / submit -- *)

let socket_arg =
  Arg.(
    value
    & opt string "/tmp/dse.sock"
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket path of the DSE service.")

let serve_cmd =
  let workers_arg =
    Arg.(
      value
      & opt int 0
      & info [ "workers" ] ~docv:"N"
          ~doc:"Worker domains running jobs (default 0 = one less than the host's cores, at least 1).")
  in
  let max_pending_arg =
    Arg.(
      value
      & opt int 16
      & info [ "max-pending" ] ~docv:"M"
          ~doc:
            "Bound on queued jobs: submissions beyond it are rejected immediately with a typed \
             queue-full error (exit 6 on the client) instead of buffering without limit.")
  in
  let cache_entries_arg =
    Arg.(
      value
      & opt int Result_cache.default_capacity
      & info [ "cache-entries" ] ~docv:"N"
          ~doc:
            "Bound on in-memory cached results; storing past it evicts the least-recently-used \
             entry (evictions are visible in $(b,--server-stats)).")
  in
  let wal_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "wal" ] ~docv:"PATH"
          ~doc:
            "Persist cached results to this crash-safe log and replay it on startup, so a \
             restarted (even kill -9'd) daemon answers repeats warm. Torn or corrupted records \
             are skipped; intact ones survive.")
  in
  let hang_timeout_arg =
    Arg.(
      value
      & opt float 30.0
      & info [ "hang-timeout" ] ~docv:"SECONDS"
          ~doc:
            "Seconds of worker-heartbeat silence before the watchdog declares the worker wedged: \
             its job is answered with a typed worker-stalled error (exit 8 on the client), the \
             domain is abandoned and a replacement is spawned.")
  in
  let max_job_refs_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-job-refs" ] ~docv:"N"
          ~doc:
            "Admission bound on a submission's declared reference count; larger jobs are \
             rejected with a typed resource-exhausted error before their trace is allocated.")
  in
  let memory_budget_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "memory-budget" ] ~docv:"MIB"
          ~doc:
            "Admission bound on a submission's estimated memory footprint, in MiB (judged from \
             the declared reference count, before allocation). Priced per kernel: arena jobs \
             are charged 18 bytes/ref, the boxed methods 50 — the same budget admits \
             nearly 3x more trace under $(b,--method arena).")
  in
  let supervise_arg =
    Arg.(
      value & flag
      & info [ "supervise" ]
          ~doc:
            "Run the daemon as a supervised child process, respawning it on abnormal exit with \
             exponential crash-loop backoff (giving up after repeated rapid crashes). Combined \
             with $(b,--wal), each respawn replays the result log and answers warm.")
  in
  let tcp_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "tcp" ] ~docv:"HOST:PORT"
          ~doc:
            "Also listen on TCP (same wire protocol as the Unix socket), so the daemon can \
             serve other hosts — typically as a backend behind $(b,dse route). An empty host \
             binds every interface.")
  in
  let node_id_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "node-id" ] ~docv:"ID"
          ~doc:
            "Identity reported in health replies (default: the TCP address, else the socket \
             path). Stable across restarts, which is how a router tells a respawn — same id, \
             newer start epoch — from a different node.")
  in
  let peer_arg =
    Arg.(
      value & opt_all string []
      & info [ "peer" ] ~docv:"ADDR"
          ~doc:
            "Another $(b,dse serve) node of the same cluster, spelled exactly as the router's \
             $(b,--backend) for it (and as its $(b,--node-id)). Repeat once per peer. Enables \
             the cluster-durability plane: finished results are replicated to ring successors \
             and peers' caches answer $(b,Cache_query) lookups.")
  in
  let replication_arg =
    Arg.(
      value & opt int 2
      & info [ "replication" ] ~docv:"R"
          ~doc:
            "Total copies (the computing node included) each finished result should have on \
             the ring; 1 disables pushes. Only meaningful with $(b,--peer).")
  in
  let replication_queue_arg =
    Arg.(
      value & opt int 256
      & info [ "replication-queue" ] ~docv:"N"
          ~doc:
            "Bound on queued outbound replication pushes; overflow drops the push (counted) \
             rather than stalling job completion.")
  in
  let anti_entropy_arg =
    Arg.(
      value & flag
      & info [ "anti-entropy" ]
          ~doc:
            "On startup, exchange cache-key digests with ring neighbours and pull the entries \
             of this node's key range it does not hold — a WAL-less respawn re-warms from its \
             peers.")
  in
  let run socket workers max_pending cache_entries wal hang_timeout max_job_refs
      memory_budget_mib supervise tcp node_id peers replication replication_queue anti_entropy =
    let workers =
      if workers = 0 then max 1 (Domain.recommended_domain_count () - 1) else workers
    in
    if workers < 1 then usage_fail "workers must be >= 1";
    if max_pending < 1 then usage_fail "max-pending must be >= 1";
    if cache_entries < 1 then usage_fail "cache-entries must be >= 1";
    if not (hang_timeout > 0.) then usage_fail "hang-timeout must be > 0 seconds";
    (match max_job_refs with
    | Some n when n < 1 -> usage_fail "max-job-refs must be >= 1"
    | _ -> ());
    (match memory_budget_mib with
    | Some n when n < 1 -> usage_fail "memory-budget must be >= 1 MiB"
    | _ -> ());
    if replication < 1 then usage_fail "replication must be >= 1";
    if replication_queue < 1 then usage_fail "replication-queue must be >= 1";
    let memory_budget = Option.map (fun mib -> mib * 1024 * 1024) memory_budget_mib in
    let serve_once () =
      let server =
        or_exit
          (Server.create
             {
               Server.socket_path = socket;
               tcp;
               node_id;
               workers;
               max_pending;
               cache_entries;
               wal_path = wal;
               hang_timeout;
               max_job_refs;
               memory_budget;
               peers;
               replication;
               replication_queue;
               anti_entropy;
             })
      in
      Server.install_signal_handlers server;
      Format.eprintf
        "dse: serving on %s%s (workers=%d, max-pending=%d, cache-entries=%d, hang-timeout=%g%s%s); \
         SIGTERM drains@."
        socket
        (match tcp with None -> "" | Some addr -> Printf.sprintf " and tcp %s" addr)
        workers max_pending cache_entries hang_timeout
        (match wal with None -> "" | Some path -> Printf.sprintf ", wal=%s" path)
        (match peers with
        | [] -> ""
        | ps -> Printf.sprintf ", peers=%d, replication=%d" (List.length ps) replication);
      (* the serve loop catches and logs per-connection/per-job failures
         itself; Cmd.eval_value ~catch:false therefore never sees a raw
         exception from the long-running path *)
      Server.run server
    in
    if supervise then begin
      (* flush before forking so the child does not replay buffered
         parent output *)
      flush stdout;
      flush stderr;
      exit (Supervisor.run ~log:(fun msg -> Format.eprintf "dse: %s@." msg) serve_once)
    end
    else serve_once ()
  in
  let term =
    Term.(const run $ socket_arg $ workers_arg $ max_pending_arg $ cache_entries_arg $ wal_arg
          $ hang_timeout_arg $ max_job_refs_arg $ memory_budget_arg $ supervise_arg $ tcp_arg
          $ node_id_arg $ peer_arg $ replication_arg $ replication_queue_arg $ anti_entropy_arg)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the batch DSE service: a daemon answering submitted traces through a bounded job \
          queue, a worker pool over domains, and a content-addressed result cache.")
    term

let submit_cmd =
  let trace_opt_arg =
    let doc = "Trace file to submit (optional with $(b,--ping) or $(b,--server-stats))." in
    Arg.(value & pos 0 (some string) None & info [] ~docv:"TRACE" ~doc)
  in
  let ping_arg =
    Arg.(value & flag & info [ "ping" ] ~doc:"Only check that the service is alive.")
  in
  let server_stats_arg =
    Arg.(
      value & flag & info [ "server-stats" ] ~doc:"Print the service's job and cache counters.")
  in
  let health_arg =
    Arg.(
      value & flag
      & info [ "health" ]
          ~doc:
            "Print the service's structured readiness: per-worker state and heartbeat age, \
             queue depth against its shedding watermark, shed/admission counters, cache and WAL \
             health, uptime.")
  in
  let deadline_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline" ] ~docv:"SECONDS"
          ~doc:
            "Bound the job's server-side runtime (queue wait included). The kernel polls the \
             deadline cooperatively and expiry is a typed reply; the client exits 7.")
  in
  let retries_arg =
    Arg.(
      value
      & opt int 0
      & info [ "retries" ] ~docv:"N"
          ~doc:
            "Retry transient failures (queue full, connection refused, read timeout) up to N \
             times with jittered exponential backoff. Default 0: fail fast.")
  in
  let retry_base_arg =
    Arg.(
      value
      & opt float 0.1
      & info [ "retry-base" ] ~docv:"SECONDS"
          ~doc:"Base backoff delay; attempt $(i,i) sleeps about base * 2^i, jittered.")
  in
  let retry_cap_arg =
    Arg.(
      value
      & opt float 30.0
      & info [ "retry-cap" ] ~docv:"SECONDS"
          ~doc:
            "Hard wall-clock bound across all retry attempts; once it would be exceeded the \
             last typed error is reported instead of sleeping on.")
  in
  let addr_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "addr" ] ~docv:"ADDR"
          ~doc:
            "Service address, overriding $(b,--socket): either $(i,HOST:PORT) for a TCP \
             listener or router, or a Unix socket path.")
  in
  let run socket addr path format on_error percents k max_depth csv no_trim method_ domains
      approx ping server_stats health deadline retries retry_base retry_cap =
    let socket = Option.value addr ~default:socket in
    if ping then begin
      or_exit (Client.ping ~socket);
      Format.printf "pong@."
    end
    else if health then begin
      let h = or_exit (Client.health ~socket) in
      Format.printf "node_id %s@." h.Protocol.node_id;
      Format.printf "start_epoch %.3f@." h.Protocol.start_epoch;
      Format.printf "uptime %.1f@." h.Protocol.uptime;
      Format.printf "workers %d@." (List.length h.Protocol.workers);
      List.iter
        (fun (w : Protocol.worker_health) ->
          if w.Protocol.busy then
            Format.printf "worker %d busy job %s heartbeat_age %.3f jobs_done %d@."
              w.Protocol.slot w.Protocol.job w.Protocol.heartbeat_age w.Protocol.jobs_done
          else Format.printf "worker %d idle jobs_done %d@." w.Protocol.slot w.Protocol.jobs_done)
        h.Protocol.workers;
      Format.printf "workers_replaced %d@." h.Protocol.workers_replaced;
      Format.printf "queue_depth %d@." h.Protocol.queue_depth;
      Format.printf "queue_watermark %d@." h.Protocol.queue_watermark;
      Format.printf "max_pending %d@." h.Protocol.max_pending;
      Format.printf "shed %d@." h.Protocol.shed;
      Format.printf "admission_rejected %d@." h.Protocol.admission_rejected;
      Format.printf "jobs_completed %d@." h.Protocol.jobs_completed;
      Format.printf "cache_hits %d@." h.Protocol.cache_hits;
      Format.printf "cache_misses %d@." h.Protocol.cache_misses;
      Format.printf "cache_entries %d@." h.Protocol.cache_entries;
      Format.printf "cache_evictions %d@." h.Protocol.cache_evictions;
      Format.printf "coalesced_hits %d@." h.Protocol.coalesced_hits;
      Format.printf "wal %s@." (if h.Protocol.wal_enabled then "enabled" else "disabled");
      Format.printf "wal_appends %d@." h.Protocol.wal_appends;
      Format.printf "wal_failures %d@." h.Protocol.wal_failures;
      Format.printf "peer_hits %d@." h.Protocol.peer_hits;
      Format.printf "replicated_in %d@." h.Protocol.replicated_in;
      Format.printf "replicated_out %d@." h.Protocol.replicated_out;
      Format.printf "replication_lag %d@." h.Protocol.replication_lag;
      Format.printf "replication_dropped %d@." h.Protocol.replication_dropped;
      Format.printf "ring_version %d@." h.Protocol.ring_version;
      Format.printf "draining %b@." h.Protocol.draining;
      Format.printf "replica_gc_dropped %d@." h.Protocol.replica_gc_dropped
    end
    else if server_stats then begin
      let s = or_exit (Client.server_stats ~socket) in
      Format.printf "jobs_completed %d@." s.Protocol.jobs_completed;
      Format.printf "cache_hits %d@." s.Protocol.cache_hits;
      Format.printf "cache_misses %d@." s.Protocol.cache_misses;
      Format.printf "cache_entries %d@." s.Protocol.cache_entries;
      Format.printf "cache_evictions %d@." s.Protocol.cache_evictions;
      Format.printf "coalesced_hits %d@." s.Protocol.coalesced_hits;
      Format.printf "pending %d@." s.Protocol.pending;
      Format.printf "workers %d@." s.Protocol.workers
    end
    else begin
      match path with
      | None -> usage_fail "TRACE is required unless --ping, --health or --server-stats is given"
      | Some path ->
        if domains < 1 then usage_fail "domains must be >= 1";
        (match deadline with
        | Some d when not (d > 0.) -> usage_fail "deadline must be > 0 seconds"
        | _ -> ());
        if retries < 0 then usage_fail "retries must be >= 0";
        if not (retry_base > 0.) then usage_fail "retry-base must be > 0";
        if not (retry_cap > 0.) then usage_fail "retry-cap must be > 0";
        let trace = load_trace format on_error path in
        let max_level = level_of_max_depth max_depth in
        let name = Filename.basename path in
        let approx = approx || (match method_ with `Approx -> true | `Exact _ -> false) in
        let payload =
          or_exit
            (if approx then
               Client.submit ~socket ~percents ?k ?max_level ~approx:true ~domains ?deadline
                 ~retries ~retry_base ~retry_cap ~name trace
             else
               let method_ = match method_ with `Exact m -> m | `Approx -> assert false in
               Client.submit ~socket ~percents ?k ?max_level ~method_ ~domains ?deadline
                 ~retries ~retry_base ~retry_cap ~name trace)
        in
        if payload.Protocol.cache_hit then Format.eprintf "dse: served from the result cache@.";
        (match payload.Protocol.outcome with
        | Protocol.Optimal result -> Format.printf "%a@." Optimizer.pp result
        | Protocol.Table table ->
          let table = if no_trim then table else Analytical_dse.trim table in
          if csv then print_string (Report.instances_to_csv table)
          else Format.printf "%a@." Report.pp_instances table
        | Protocol.Approx_optimal result -> Format.printf "%a@." Report.pp_approx_optimal result
        | Protocol.Approx_table table ->
          let table = if no_trim then table else Approx_dse.trim table in
          if csv then print_string (Report.approx_to_csv table)
          else Format.printf "%a@." Report.pp_approx_instances table)
    end
  in
  let term =
    Term.(const run $ socket_arg $ addr_arg $ trace_opt_arg $ format_arg $ on_error_arg
          $ percents_arg $ absolute_k_arg $ max_depth_arg $ csv_arg $ trim_arg $ method_arg
          $ domains_arg $ approx_arg $ ping_arg $ server_stats_arg $ health_arg $ deadline_arg
          $ retries_arg $ retry_base_arg $ retry_cap_arg)
  in
  Cmd.v
    (Cmd.info "submit"
       ~doc:
         "Submit a trace to a running $(b,dse serve) daemon; output is identical to $(b,dse \
          explore) on the same trace, and repeated submissions are answered from the service's \
          result cache.")
    term

(* -- cc -- *)

let cc_cmd =
  let file_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.c" ~doc:"MiniC source file.")
  in
  let run_flag = Arg.(value & flag & info [ "run" ] ~doc:"Execute after compiling.") in
  let disasm_flag = Arg.(value & flag & info [ "disasm" ] ~doc:"Print the generated code.") in
  let no_bounds_flag =
    Arg.(value & flag & info [ "no-bounds-checks" ] ~doc:"Disable array bounds checking.")
  in
  let itrace_arg =
    Arg.(value & opt (some string) None & info [ "itrace" ] ~docv:"FILE" ~doc:"Write the instruction trace here (implies --run).")
  in
  let dtrace_arg =
    Arg.(value & opt (some string) None & info [ "dtrace" ] ~docv:"FILE" ~doc:"Write the data trace here (implies --run).")
  in
  let run path execute disasm no_bounds itrace_out dtrace_out =
    let source =
      let ic = open_in path in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    let compiled = Mc_codegen.compile ~bounds_checks:(not no_bounds) source in
    Format.printf "compiled %d instructions, %d global words@."
      (Array.length compiled.Mc_codegen.program)
      compiled.Mc_codegen.globals_words;
    if disasm then
      Array.iteri
        (fun pc instr -> Format.printf "%4d  %a@." pc Isa.pp_instr instr)
        compiled.Mc_codegen.program;
    if execute || itrace_out <> None || dtrace_out <> None then begin
      let itrace = Option.map (fun _ -> Trace.create ()) itrace_out in
      let dtrace = Option.map (fun _ -> Trace.create ()) dtrace_out in
      let result = Mc_codegen.run ?itrace ?dtrace compiled in
      Format.printf "halted after %d steps; main returned %d@." result.Machine.steps
        (Machine.return_value result);
      let dump out trace =
        match (out, trace) with
        | Some p, Some t ->
          or_exit (Trace_io.save p t);
          Format.printf "wrote %d references to %s@." (Trace.length t) p
        | _ -> ()
      in
      dump itrace_out itrace;
      dump dtrace_out dtrace
    end
  in
  let term =
    Term.(const run $ file_arg $ run_flag $ disasm_flag $ no_bounds_flag $ itrace_arg $ dtrace_arg)
  in
  Cmd.v (Cmd.info "cc" ~doc:"Compile a MiniC source file for the VM.") term

(* -- run -- *)

let run_cmd =
  let file_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.s" ~doc:"Assembly source file.")
  in
  let steps_arg =
    Arg.(value & opt int 30_000_000 & info [ "steps" ] ~docv:"N" ~doc:"Step budget.")
  in
  let mem_arg =
    Arg.(value & opt int 65536 & info [ "mem" ] ~docv:"WORDS" ~doc:"Data memory size in words.")
  in
  let itrace_arg =
    Arg.(value & opt (some string) None & info [ "itrace" ] ~docv:"FILE" ~doc:"Write the instruction trace here.")
  in
  let dtrace_arg =
    Arg.(value & opt (some string) None & info [ "dtrace" ] ~docv:"FILE" ~doc:"Write the data trace here.")
  in
  let regs_arg =
    Arg.(value & flag & info [ "regs" ] ~doc:"Dump all registers after the run.")
  in
  let run path steps mem itrace_out dtrace_out regs =
    let items = Asm_parser.parse_file path in
    let program = Asm.assemble items in
    let itrace = Option.map (fun _ -> Trace.create ()) itrace_out in
    let dtrace = Option.map (fun _ -> Trace.create ()) dtrace_out in
    let result = Machine.run ~mem_words:mem ~max_steps:steps ?itrace ?dtrace program in
    Format.printf "halted after %d steps; $v0 = %d@." result.Machine.steps
      (Machine.return_value result);
    if regs then
      Array.iteri
        (fun r v -> if v <> 0 then Format.printf "  %-5s = %d@." (Isa.register_name r) v)
        result.Machine.registers;
    let dump out trace =
      match (out, trace) with
      | Some path, Some t ->
        or_exit (Trace_io.save path t);
        Format.printf "wrote %d references to %s@." (Trace.length t) path
      | _ -> ()
    in
    dump itrace_out itrace;
    dump dtrace_out dtrace
  in
  let term =
    Term.(const run $ file_arg $ steps_arg $ mem_arg $ itrace_arg $ dtrace_arg $ regs_arg)
  in
  Cmd.v (Cmd.info "run" ~doc:"Assemble and execute a .s file on the VM.") term

let list_cmd =
  let run () =
    List.iter
      (fun (b : Workload.t) -> Format.printf "%-10s %s@." b.Workload.name b.Workload.description)
      Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List the bundled PowerStone-style benchmarks.") Term.(const run $ const ())

(* -- route -- *)

let route_cmd =
  let listen_arg =
    Arg.(
      value
      & opt string "127.0.0.1:7700"
      & info [ "listen" ] ~docv:"ADDR"
          ~doc:"Address to serve clients on: $(i,HOST:PORT) or a Unix socket path.")
  in
  let backend_arg =
    Arg.(
      value & opt_all string []
      & info [ "backend" ] ~docv:"ADDR"
          ~doc:
            "A $(b,dse serve) backend ($(i,HOST:PORT) or Unix socket path). Repeat once per \
             node; traces are consistent-hashed on their fingerprint across the set.")
  in
  let forwarders_arg =
    Arg.(
      value & opt int 8
      & info [ "forwarders" ] ~docv:"N"
          ~doc:"Forwarder domains; the maximum number of concurrently routed requests.")
  in
  let max_pending_arg =
    Arg.(
      value & opt int 64
      & info [ "max-pending" ] ~docv:"N"
          ~doc:"Accepted connections queued beyond the forwarders before refusing (exit 6).")
  in
  let replicas_arg =
    Arg.(
      value & opt int 64
      & info [ "replicas" ] ~docv:"N" ~doc:"Virtual ring points per backend.")
  in
  let connect_timeout_arg =
    Arg.(
      value & opt float 2.0
      & info [ "connect-timeout" ] ~docv:"SECONDS"
          ~doc:"Bound on establishing a backend connection before failing over.")
  in
  let request_timeout_arg =
    Arg.(
      value & opt float 120.0
      & info [ "request-timeout" ] ~docv:"SECONDS"
          ~doc:"Per-attempt silence bound on a forwarded request.")
  in
  let hedge_after_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "hedge-after" ] ~docv:"SECONDS"
          ~doc:
            "Duplicate a silent submission to the next live backend after this long; the first \
             answer wins. Default: adaptive, 3x the rolling p99 of forwarded latencies.")
  in
  let health_interval_arg =
    Arg.(
      value & opt float 1.0
      & info [ "health-interval" ] ~docv:"SECONDS"
          ~doc:"Target interval between health polls of any one backend.")
  in
  let breaker_failures_arg =
    Arg.(
      value & opt int 3
      & info [ "breaker-failures" ] ~docv:"N"
          ~doc:"Consecutive failures that trip a backend's circuit breaker open.")
  in
  let breaker_cooldown_arg =
    Arg.(
      value & opt float 0.5
      & info [ "breaker-cooldown" ] ~docv:"SECONDS"
          ~doc:
            "Base open-state cooldown before a half-open probe; doubles per consecutive trip, \
             capped at 10 s.")
  in
  let spill_threshold_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "spill-threshold" ] ~docv:"RATIO"
          ~doc:
            "Spill a submission off its owning backend when the owner's last-polled \
             queue-depth per worker exceeds this ratio, routing to the least-loaded live node \
             instead. Default: never spill.")
  in
  let health_flag =
    Arg.(
      value & flag
      & info [ "health" ]
          ~doc:
            "One-shot cluster health: query every $(b,--backend)'s health plane directly, \
             print the aggregated view, and exit (9 if no backend answered). No gateway is \
             started.")
  in
  let json_flag =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"With $(b,--health): emit one machine-readable JSON object.")
  in
  let admin_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "admin" ] ~docv:"VERB"
          ~doc:
            "One-shot fleet-membership operation instead of running a gateway. Contacts are \
             the $(b,--backend) list. $(i,VERB) is one of: $(b,ring-status) (print every \
             contact's fleet view); $(b,join) $(i,ADDR) (add a running daemon to the ring — \
             its range is pulled by anti-entropy while it serves); $(b,drain) $(i,ADDR) \
             (graceful decommission: the node sheds new work, hands its warm entries to the \
             post-drain owners, and leaves — zero kernel re-runs); $(b,leave) $(i,ADDR) \
             (remove a dead node without contacting it); $(b,set-replication) $(i,R) (change \
             the fleet's replication factor; a shrink triggers replica GC). Each change \
             publishes a version-bumped ring config; stragglers catch up via the stale-ring \
             fence.")
  in
  let gateway_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "gateway" ] ~docv:"ADDR"
          ~doc:
            "With $(b,--admin): a running $(b,dse route) gateway to update too. It is always \
             updated last, so a draining node keeps serving its cache until routing moves.")
  in
  let admin_operand_arg =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"ARG"
          ~doc:"Operand of $(b,--admin): the node address, or the replication factor.")
  in
  let run_admin backends gateway verb operand =
    if backends = [] then usage_fail "at least one --backend contact is required";
    let contacts = backends in
    let report_failed failed =
      List.iter
        (fun (target, e) ->
          Format.eprintf "dse: warning: push to %s failed: %s@." target (Dse_error.to_string e))
        failed
    in
    let print_config (c : Protocol.ring_config) =
      Format.printf "ring_version %d@." c.Protocol.ring_version;
      Format.printf "replication %d@." c.Protocol.replication;
      Format.printf "nodes %s@." (String.concat "," c.Protocol.nodes)
    in
    let need what = match operand with Some v -> v | None -> usage_fail what in
    match verb with
    | "ring-status" ->
      let any_up = ref false in
      List.iter
        (fun target ->
          match Admin.ring_status target with
          | Ok (c, draining, _) ->
            any_up := true;
            Format.printf "%s v%d nodes=%d replication=%d%s@." target c.Protocol.ring_version
              (List.length c.Protocol.nodes)
              c.Protocol.replication
              (if draining then " draining" else "")
          | Error e -> Format.printf "%s down (%s)@." target (Dse_error.to_string e))
        contacts;
      if not !any_up then
        or_exit
          (Error
             (Dse_error.Backend_unavailable
                { node = List.hd contacts; attempts = List.length contacts }))
    | "join" ->
      let node = need "join needs the joining node's ADDR" in
      let config, failed = or_exit (Admin.join ?gateway ~contacts node) in
      report_failed failed;
      Format.printf "joined %s@." node;
      print_config config
    | "drain" ->
      let node = need "drain needs the leaving node's ADDR" in
      let config, pushed, failed = or_exit (Admin.drain ?gateway ~contacts node) in
      report_failed failed;
      Format.printf "drained %s; %d warm record(s) accepted by the new owners@." node pushed;
      print_config config
    | "leave" ->
      let node = need "leave needs the dead node's ADDR" in
      let config, failed = or_exit (Admin.leave ?gateway ~contacts node) in
      report_failed failed;
      Format.printf "removed %s@." node;
      print_config config
    | "set-replication" ->
      let r = need "set-replication needs the new factor" in
      let r =
        match int_of_string_opt r with
        | Some r -> r
        | None -> usage_fail "set-replication needs an integer factor"
      in
      let config, failed = or_exit (Admin.set_replication ?gateway ~contacts r) in
      report_failed failed;
      print_config config
    | v -> usage_fail (Printf.sprintf "unknown --admin verb %s" v)
  in
  (* One-shot aggregated cluster health, for operators and the CI smoke:
     each backend is asked directly (no gateway in the path), so a dead
     node shows as down while its survivors still report. *)
  let cluster_health backends json =
    let views =
      List.map
        (fun addr ->
          match Client.health ~socket:addr with
          | Ok h -> (addr, Ok h)
          | Error e -> (addr, Error (Dse_error.to_string e)))
        backends
    in
    let up = List.filter_map (function _, Ok h -> Some h | _, Error _ -> None) views in
    let sum f = List.fold_left (fun acc h -> acc + f h) 0 up in
    if json then begin
      let backend_json (addr, view) =
        match view with
        | Ok (h : Protocol.health) ->
          Printf.sprintf
            "{\"backend\":%S,\"up\":true,\"node_id\":%S,\"start_epoch\":%.3f,\"uptime\":%.3f,\
             \"workers\":%d,\"queue_depth\":%d,\"jobs_completed\":%d,\"cache_hits\":%d,\
             \"cache_entries\":%d,\"wal_appends\":%d,\"peer_hits\":%d,\"replicated_in\":%d,\
             \"replicated_out\":%d,\"replication_lag\":%d,\"replication_dropped\":%d,\
             \"ring_version\":%d,\"draining\":%b,\"replica_gc_dropped\":%d}"
            addr h.Protocol.node_id h.Protocol.start_epoch h.Protocol.uptime
            (List.length h.Protocol.workers)
            h.Protocol.queue_depth h.Protocol.jobs_completed h.Protocol.cache_hits
            h.Protocol.cache_entries h.Protocol.wal_appends h.Protocol.peer_hits
            h.Protocol.replicated_in h.Protocol.replicated_out h.Protocol.replication_lag
            h.Protocol.replication_dropped h.Protocol.ring_version h.Protocol.draining
            h.Protocol.replica_gc_dropped
        | Error message -> Printf.sprintf "{\"backend\":%S,\"up\":false,\"error\":%S}" addr message
      in
      Printf.printf
        "{\"backends\":[%s],\"up\":%d,\"total\":%d,\"jobs_completed\":%d,\"cache_entries\":%d,\
         \"peer_hits\":%d,\"replicated_in\":%d,\"replicated_out\":%d,\"replication_dropped\":%d,\
         \"replica_gc_dropped\":%d}\n"
        (String.concat "," (List.map backend_json views))
        (List.length up) (List.length views)
        (sum (fun h -> h.Protocol.jobs_completed))
        (sum (fun h -> h.Protocol.cache_entries))
        (sum (fun h -> h.Protocol.peer_hits))
        (sum (fun h -> h.Protocol.replicated_in))
        (sum (fun h -> h.Protocol.replicated_out))
        (sum (fun h -> h.Protocol.replication_dropped))
        (sum (fun h -> h.Protocol.replica_gc_dropped))
    end
    else begin
      List.iter
        (fun (addr, view) ->
          match view with
          | Ok (h : Protocol.health) ->
            Format.printf
              "backend %s up node_id=%s uptime=%.1f workers=%d queue_depth=%d \
               jobs_completed=%d cache_entries=%d peer_hits=%d replicated_in=%d \
               replicated_out=%d replication_lag=%d replication_dropped=%d ring_version=%d%s \
               replica_gc_dropped=%d@."
              addr h.Protocol.node_id h.Protocol.uptime
              (List.length h.Protocol.workers)
              h.Protocol.queue_depth h.Protocol.jobs_completed h.Protocol.cache_entries
              h.Protocol.peer_hits h.Protocol.replicated_in h.Protocol.replicated_out
              h.Protocol.replication_lag h.Protocol.replication_dropped h.Protocol.ring_version
              (if h.Protocol.draining then " draining" else "")
              h.Protocol.replica_gc_dropped
          | Error message -> Format.printf "backend %s down (%s)@." addr message)
        views;
      Format.printf
        "cluster up=%d/%d jobs_completed=%d cache_entries=%d peer_hits=%d replicated_in=%d \
         replicated_out=%d replication_dropped=%d replica_gc_dropped=%d@."
        (List.length up) (List.length views)
        (sum (fun h -> h.Protocol.jobs_completed))
        (sum (fun h -> h.Protocol.cache_entries))
        (sum (fun h -> h.Protocol.peer_hits))
        (sum (fun h -> h.Protocol.replicated_in))
        (sum (fun h -> h.Protocol.replicated_out))
        (sum (fun h -> h.Protocol.replication_dropped))
        (sum (fun h -> h.Protocol.replica_gc_dropped))
    end;
    (* durability is degrading if pushes are being dropped: one line on
       stderr so scripts parsing stdout JSON still see it *)
    let dropped = sum (fun h -> h.Protocol.replication_dropped) in
    if dropped > 0 then
      Format.eprintf
        "dse: warning: %d replication push(es) dropped across the fleet — a slow or dead peer \
         is degrading durability@."
        dropped;
    if up = [] then
      or_exit
        (Error
           (Dse_error.Backend_unavailable
              { node = List.hd backends; attempts = List.length backends }))
  in
  let run listen backends forwarders max_pending replicas connect_timeout request_timeout
      hedge_after health_interval breaker_failures breaker_cooldown spill_threshold health json
      admin gateway operand =
    if backends = [] then usage_fail "at least one --backend is required";
    match admin with
    | Some verb -> run_admin backends gateway verb operand
    | None ->
    if health then cluster_health backends json
    else
      let config =
        {
          Router.default_config with
          Router.listen;
          backends;
          replicas;
          forwarders;
          max_pending;
          connect_timeout;
          request_timeout;
          hedge =
            (match hedge_after with None -> Router.Adaptive | Some s -> Router.Fixed s);
          health_interval;
          breaker =
            {
              Breaker.default_config with
              Breaker.failure_threshold = breaker_failures;
              cooldown_base = breaker_cooldown;
            };
          spill_threshold;
        }
      in
      let router = or_exit (Router.create config) in
      Router.install_signal_handlers router;
      Format.eprintf
        "dse: routing on %s across %d backend(s) (forwarders=%d, hedge=%s%s); SIGTERM drains@."
        listen (List.length backends) forwarders
        (match hedge_after with None -> "adaptive" | Some s -> Printf.sprintf "%gs" s)
        (match spill_threshold with
        | None -> ""
        | Some r -> Printf.sprintf ", spill>%g jobs/worker" r);
      Router.run router
  in
  let term =
    Term.(const run $ listen_arg $ backend_arg $ forwarders_arg $ max_pending_arg $ replicas_arg
          $ connect_timeout_arg $ request_timeout_arg $ hedge_after_arg $ health_interval_arg
          $ breaker_failures_arg $ breaker_cooldown_arg $ spill_threshold_arg $ health_flag
          $ json_flag $ admin_arg $ gateway_arg $ admin_operand_arg)
  in
  Cmd.v
    (Cmd.info "route"
       ~doc:
         "Run a gateway that consistent-hashes submissions across several $(b,dse serve) \
          backends, with health-driven failover, per-backend circuit breakers, and hedged \
          retries — or, with $(b,--admin), perform a one-shot fleet-membership operation \
          (join, drain, leave, ring-status, set-replication). Clients point $(b,dse submit \
          --addr) at it; results are bit-identical to $(b,dse explore).")
    term

(* -- chaos -- *)

(* One scripted membership/fault event, fired at a wall-clock offset
   from harness start. *)
type chaos_action =
  | C_kill of int
  | C_respawn of int
  | C_join of int
  | C_drain of int
  | C_leave of int
  | C_fault of string

type chaos_node = {
  c_index : int;
  c_addr : string;  (* TCP address: the node id and ring name *)
  c_sock : string;
  c_wal : string;
  c_log : string;
  mutable c_pid : int option;
  mutable c_member : bool;
}

let chaos_cmd =
  let schedule_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "schedule" ] ~docv:"FILE"
          ~doc:
            "Event script: one $(i,AT ACTION [ARG]) per line ($(i,AT) in seconds from start; \
             $(b,#) comments). Actions: $(b,kill) $(i,I) (SIGKILL node I), $(b,respawn) \
             $(i,I), $(b,join) $(i,I) (start node I and add it to the ring), $(b,drain) \
             $(i,I) (graceful decommission), $(b,leave) $(i,I) (remove without contact), \
             $(b,fault) $(i,SPEC) (arm the harness-side injection hook, e.g. \
             $(i,net:drop:3)).")
  in
  let nodes_arg =
    Arg.(value & opt int 3 & info [ "nodes" ] ~docv:"N" ~doc:"Initial fleet size.")
  in
  let base_port_arg =
    Arg.(
      value & opt int 7760
      & info [ "base-port" ] ~docv:"PORT"
          ~doc:"Node $(i,I) listens on 127.0.0.1:PORT+I; the gateway on PORT-1.")
  in
  let seed_arg =
    Arg.(
      value & opt int 1
      & info [ "seed" ] ~docv:"SEED" ~doc:"Workload seed; the trace mix is a pure function of it.")
  in
  let chaos_replication_arg =
    Arg.(value & opt int 2 & info [ "replication" ] ~docv:"R" ~doc:"Fleet replication factor.")
  in
  let requests_arg =
    Arg.(
      value & opt int 40
      & info [ "requests" ] ~docv:"N"
          ~doc:"Minimum workload submissions (the loop also runs until the schedule is drained).")
  in
  let keep_arg =
    Arg.(
      value & flag
      & info [ "keep" ] ~doc:"Keep the scratch directory (WALs, per-node logs) for inspection.")
  in
  let parse_schedule path =
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let rec read lineno acc =
          match input_line ic with
          | exception End_of_file -> List.rev acc
          | line ->
            let line =
              match String.index_opt line '#' with
              | Some i -> String.sub line 0 i
              | None -> line
            in
            let tokens =
              List.filter (fun s -> s <> "") (String.split_on_char ' ' (String.trim line))
            in
            let bad what =
              usage_fail (Printf.sprintf "%s:%d: %s" path lineno what)
            in
            let index s =
              match int_of_string_opt s with
              | Some i when i >= 0 -> i
              | _ -> bad (Printf.sprintf "bad node index %S" s)
            in
            let event =
              match tokens with
              | [] -> None
              | at :: action -> (
                let at =
                  match float_of_string_opt at with
                  | Some t when t >= 0. -> t
                  | _ -> bad (Printf.sprintf "bad offset %S" at)
                in
                match action with
                | [ "kill"; i ] -> Some (at, C_kill (index i))
                | [ "respawn"; i ] -> Some (at, C_respawn (index i))
                | [ "join"; i ] -> Some (at, C_join (index i))
                | [ "drain"; i ] -> Some (at, C_drain (index i))
                | [ "leave"; i ] -> Some (at, C_leave (index i))
                | [ "fault"; spec ] ->
                  if Fault.parse spec = None then bad (Printf.sprintf "bad fault spec %S" spec)
                  else Some (at, C_fault spec)
                | _ -> bad "unknown action")
            in
            read (lineno + 1) (match event with Some e -> e :: acc | None -> acc)
        in
        let events = read 1 [] in
        (* stable sort: same-offset events fire in file order *)
        List.stable_sort (fun (a, _) (b, _) -> compare a b) events)
  in
  let run schedule nodes base_port seed replication requests keep =
    if nodes < 2 then usage_fail "nodes must be >= 2";
    if replication < 1 then usage_fail "replication must be >= 1";
    if requests < 1 then usage_fail "requests must be >= 1";
    let events = parse_schedule schedule in
    let max_index =
      List.fold_left
        (fun m (_, a) ->
          match a with
          | C_kill i | C_respawn i | C_join i | C_drain i | C_leave i -> max m i
          | C_fault _ -> m)
        (nodes - 1) events
    in
    let dir =
      let d = Filename.temp_file "dse_chaos" "" in
      Sys.remove d;
      Unix.mkdir d 0o700;
      d
    in
    let fleet =
      Array.init (max_index + 1) (fun i ->
          {
            c_index = i;
            c_addr = Printf.sprintf "127.0.0.1:%d" (base_port + i);
            c_sock = Filename.concat dir (Printf.sprintf "node-%d.sock" i);
            c_wal = Filename.concat dir (Printf.sprintf "node-%d.wal" i);
            c_log = Filename.concat dir (Printf.sprintf "node-%d.log" i);
            c_pid = None;
            c_member = i < nodes;
          })
    in
    let gateway = Printf.sprintf "127.0.0.1:%d" (base_port - 1) in
    let devnull = Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0 in
    let spawn argv logf =
      let log_fd =
        Unix.openfile logf [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o600
      in
      let pid =
        Unix.create_process Sys.executable_name (Array.of_list argv) devnull log_fd log_fd
      in
      Unix.close log_fd;
      pid
    in
    let spawn_node ~peers n =
      let argv =
        [
          "dse"; "serve"; "--socket"; n.c_sock; "--tcp"; n.c_addr; "--node-id"; n.c_addr;
          "--workers"; "2"; "--wal"; n.c_wal; "--anti-entropy"; "--replication";
          string_of_int replication;
        ]
        @ List.concat_map (fun p -> [ "--peer"; p ]) peers
      in
      n.c_pid <- Some (spawn argv n.c_log)
    in
    let kill_node n =
      match n.c_pid with
      | None -> ()
      | Some pid ->
        (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
        (try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ());
        n.c_pid <- None;
        if Sys.file_exists n.c_sock then Sys.remove n.c_sock
    in
    let wait_ready what addr =
      let deadline = Unix.gettimeofday () +. 15. in
      let rec go () =
        match Client.ping ~socket:addr with
        | Ok () -> ()
        | Error _ ->
          if Unix.gettimeofday () > deadline then
            usage_fail (Printf.sprintf "%s (%s) did not come up within 15 s" what addr)
          else begin
            Unix.sleepf 0.05;
            go ()
          end
      in
      go ()
    in
    let live_members () =
      Array.to_list fleet
      |> List.filter_map (fun n ->
             if n.c_member && n.c_pid <> None then Some n.c_addr else None)
    in
    let failures = ref [] in
    let fail fmt = Printf.ksprintf (fun m -> failures := m :: !failures) fmt in
    (* drain handoff latency and join warm-up, for the summary line *)
    let drain_pushed = ref 0 in
    let drain_latency = ref 0. in
    let join_warmup = ref 0. in
    let fire = function
      | C_kill i ->
        Format.eprintf "chaos: kill -9 node %d@." i;
        kill_node fleet.(i)
      | C_respawn i ->
        let n = fleet.(i) in
        if n.c_pid <> None then fail "respawn %d: node is already running" i
        else begin
          Format.eprintf "chaos: respawn node %d@." i;
          let peers = List.filter (fun a -> a <> n.c_addr) (live_members ()) in
          spawn_node ~peers n;
          wait_ready "respawned node" n.c_addr;
          (* hand the respawn the fleet's current view so it does not
             wait for the fence to teach it *)
          match Admin.fetch_config peers with
          | Ok config -> ignore (Admin.push_config config [ n.c_addr ])
          | Error _ -> ()
        end
      | C_join i ->
        let n = fleet.(i) in
        if n.c_member then fail "join %d: node is already a member" i
        else begin
          Format.eprintf "chaos: join node %d@." i;
          (* a joiner boots standalone (unfenced v0) and learns the ring
             from the published config; anti-entropy then pulls its range *)
          spawn_node ~peers:[] n;
          wait_ready "joining node" n.c_addr;
          let t0 = Unix.gettimeofday () in
          match Admin.join ~gateway ~contacts:(live_members ()) n.c_addr with
          | Ok (config, failed) ->
            n.c_member <- true;
            List.iter
              (fun (target, e) ->
                fail "join %d: push to %s failed: %s" i target (Dse_error.to_string e))
              failed;
            (* warm-up: the joiner has adopted when its health plane
               reports the published epoch *)
            let deadline = Unix.gettimeofday () +. 10. in
            let rec warm () =
              match Client.health ~socket:n.c_addr with
              | Ok h when h.Protocol.ring_version >= config.Protocol.ring_version ->
                join_warmup := Unix.gettimeofday () -. t0
              | _ ->
                if Unix.gettimeofday () > deadline then
                  fail "join %d: node never adopted v%d" i config.Protocol.ring_version
                else begin
                  Unix.sleepf 0.05;
                  warm ()
                end
            in
            warm ()
          | Error e -> fail "join %d: %s" i (Dse_error.to_string e)
        end
      | C_drain i ->
        let n = fleet.(i) in
        Format.eprintf "chaos: drain node %d@." i;
        let t0 = Unix.gettimeofday () in
        (match Admin.drain ~gateway ~contacts:(live_members ()) n.c_addr with
        | Ok (_, pushed, failed) ->
          n.c_member <- false;
          drain_pushed := !drain_pushed + pushed;
          drain_latency := Unix.gettimeofday () -. t0;
          List.iter
            (fun (target, e) ->
              fail "drain %d: push to %s failed: %s" i target (Dse_error.to_string e))
            failed
        | Error e -> fail "drain %d: %s" i (Dse_error.to_string e))
      | C_leave i ->
        let n = fleet.(i) in
        Format.eprintf "chaos: leave node %d@." i;
        (match Admin.leave ~gateway ~contacts:(live_members ()) n.c_addr with
        | Ok (_, failed) ->
          n.c_member <- false;
          List.iter
            (fun (target, e) ->
              fail "leave %d: push to %s failed: %s" i target (Dse_error.to_string e))
            failed
        | Error e -> fail "leave %d: %s" i (Dse_error.to_string e))
      | C_fault spec ->
        Format.eprintf "chaos: arming fault %s@." spec;
        ignore (Fault.arm spec)
    in
    let cleanup () =
      Array.iter kill_node fleet;
      if not keep then begin
        Array.iter
          (fun n ->
            List.iter
              (fun f -> if Sys.file_exists f then Sys.remove f)
              [ n.c_sock; n.c_wal; n.c_log ])
          fleet;
        let gwlog = Filename.concat dir "gateway.log" in
        if Sys.file_exists gwlog then Sys.remove gwlog;
        (try Unix.rmdir dir with Unix.Unix_error _ -> ())
      end
      else Format.eprintf "chaos: scratch kept in %s@." dir
    in
    let gateway_pid = ref None in
    Fun.protect
      ~finally:(fun () ->
        (match !gateway_pid with
        | Some pid ->
          (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
          (try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ())
        | None -> ());
        cleanup ();
        Unix.close devnull)
      (fun () ->
        (* boot the initial fleet, fully peered, and the gateway *)
        let initial = List.filteri (fun i _ -> i < nodes) (Array.to_list fleet) in
        List.iter
          (fun n ->
            let peers =
              List.filter_map
                (fun p -> if p.c_addr <> n.c_addr then Some p.c_addr else None)
                initial
            in
            spawn_node ~peers n)
          initial;
        List.iter (fun n -> wait_ready "fleet node" n.c_addr) initial;
        let gw_argv =
          [
            "dse"; "route"; "--listen"; gateway; "--request-timeout"; "30";
            "--health-interval"; "0.3"; "--breaker-cooldown"; "0.2";
          ]
          @ List.concat_map (fun n -> [ "--backend"; n.c_addr ]) initial
        in
        gateway_pid := Some (spawn gw_argv (Filename.concat dir "gateway.log"));
        wait_ready "gateway" gateway;
        (* the workload: a fixed mix of traces, every reply diffed
           structurally against a locally computed oracle *)
        let mix = 12 in
        let trace_of i = Synthetic.zipfian ~seed:(seed + (i mod mix)) ~span:2048 ~skew:1.1 ~length:800 in
        let name_of i = Printf.sprintf "chaos-%d" (seed + (i mod mix)) in
        let oracle = Hashtbl.create mix in
        let expected i =
          let key = i mod mix in
          match Hashtbl.find_opt oracle key with
          | Some o -> o
          | None ->
            let o = Protocol.Table (Analytical_dse.run ~name:(name_of i) (trace_of i)) in
            Hashtbl.add oracle key o;
            o
        in
        let submitted = ref 0 and identical = ref 0 and wrong = ref 0 and errored = ref 0 in
        let verified = Hashtbl.create mix in
        let submit_one i =
          incr submitted;
          match
            Client.submit ~socket:gateway ~retries:8 ~retry_base:0.1 ~retry_cap:20.
              ~name:(name_of i) (trace_of i)
          with
          | Ok payload ->
            if payload.Protocol.outcome = expected i then begin
              incr identical;
              Hashtbl.replace verified (i mod mix) ()
            end
            else begin
              incr wrong;
              fail "request %d: reply differs from direct explore" i
            end
          | Error e ->
            incr errored;
            fail "request %d: %s" i (Dse_error.to_string e)
        in
        let start = Unix.gettimeofday () in
        let pending = ref events in
        let rec fire_due () =
          match !pending with
          | (at, action) :: rest when Unix.gettimeofday () -. start >= at ->
            pending := rest;
            fire action;
            fire_due ()
          | _ -> ()
        in
        let i = ref 0 in
        while !pending <> [] || !submitted < requests do
          fire_due ();
          submit_one !i;
          incr i;
          Unix.sleepf 0.05
        done;
        (* -- post-schedule assertions -- *)
        let members = live_members () in
        if members = [] then fail "no live members at end of schedule"
        else begin
          (* 1. every live member settles on one ring version *)
          let deadline = Unix.gettimeofday () +. 20. in
          let rec settle () =
            let views = List.filter_map (fun a ->
                match Admin.ring_status a with Ok (c, _, _) -> Some c | Error _ -> None)
                members
            in
            let versions =
              List.sort_uniq compare
                (List.map (fun (c : Protocol.ring_config) -> c.Protocol.ring_version) views)
            in
            if List.length views = List.length members && List.length versions = 1 then
              List.hd views
            else if Unix.gettimeofday () > deadline then begin
              fail "ring versions never converged (saw %s)"
                (String.concat ","
                   (List.map string_of_int versions));
              List.hd views
            end
            else begin
              Unix.sleepf 0.1;
              settle ()
            end
          in
          let config = settle () in
          (* 2. digests converge and replica GC has left no stray copies:
             every key lives on exactly its first-R ring walk *)
          let ring = Ring.create config.Protocol.nodes in
          let owners key =
            let r = min config.Protocol.replication (List.length config.Protocol.nodes) in
            List.filteri (fun i _ -> i < r)
              (Ring.successors ring key.Result_cache.fingerprint)
          in
          let digest addr =
            match
              Client.request ~socket:addr (Protocol.Cache_query { ring_version = 0; keys = [] })
            with
            | Ok (Protocol.Cache_reply { keys; _ }) -> Some keys
            | Ok _ | Error _ -> None
          in
          let deadline = Unix.gettimeofday () +. 20. in
          let rec converge () =
            let digests =
              List.filter_map (fun a -> Option.map (fun k -> (a, k)) (digest a)) members
            in
            if List.length digests <> List.length members then
              if Unix.gettimeofday () > deadline then fail "digest exchange failed"
              else begin Unix.sleepf 0.1; converge () end
            else begin
              let union =
                List.sort_uniq compare (List.concat_map snd digests)
              in
              let missing =
                List.concat_map
                  (fun key ->
                    List.filter_map
                      (fun owner ->
                        match List.assoc_opt owner digests with
                        | Some keys when List.mem key keys -> None
                        | Some _ -> Some (owner, key)
                        | None -> None)
                      (owners key))
                  union
              in
              let strays =
                List.concat_map
                  (fun (addr, keys) ->
                    List.filter_map
                      (fun key ->
                        if List.mem addr (owners key) then None else Some (addr, key))
                      keys)
                  digests
              in
              if missing = [] && strays = [] then ()
              else if Unix.gettimeofday () > deadline then begin
                if missing <> [] then
                  fail "%d replica(s) missing after convergence window" (List.length missing);
                if strays <> [] then
                  fail "%d stray cop(ies) outside placement (replica GC incomplete)"
                    (List.length strays)
              end
              else begin
                Unix.sleepf 0.1;
                converge ()
              end
            end
          in
          converge ();
          (* 3. repeats of everything verified earlier are answered from
             warm state: bit-identical, cache-hit, zero kernel re-runs *)
          let jobs_sum () =
            List.fold_left
              (fun acc a ->
                match Client.server_stats ~socket:a with
                | Ok s -> acc + s.Protocol.jobs_completed
                | Error _ -> acc)
              0 members
          in
          let before = jobs_sum () in
          Hashtbl.iter
            (fun key () ->
              match
                Client.submit ~socket:gateway ~retries:4 ~retry_base:0.1 ~retry_cap:10.
                  ~name:(name_of key) (trace_of key)
              with
              | Ok payload ->
                if payload.Protocol.outcome <> expected key then
                  fail "repeat %d: reply differs from direct explore" key;
                if not payload.Protocol.cache_hit then
                  fail "repeat %d: served cold (expected the fleet to stay warm)" key
              | Error e -> fail "repeat %d: %s" key (Dse_error.to_string e))
            verified;
          let after = jobs_sum () in
          if after <> before then
            fail "%d kernel re-run(s) on warm repeats (expected zero)" (after - before);
          Format.printf
            "chaos: %d submission(s), %d identical, %d mismatched, %d errored@." !submitted
            !identical !wrong !errored;
          Format.printf
            "chaos: final ring v%d (%d node(s), replication %d); drain handoff %.3fs \
             (%d record(s)), join warm-up %.3fs@."
            config.Protocol.ring_version
            (List.length config.Protocol.nodes)
            config.Protocol.replication !drain_latency !drain_pushed !join_warmup
        end;
        match !failures with
        | [] -> Format.printf "chaos: all assertions held@."
        | fs ->
          List.iter (fun m -> Format.eprintf "chaos: FAIL %s@." m) (List.rev fs);
          exit 1)
  in
  let term =
    Term.(const run $ schedule_arg $ nodes_arg $ base_port_arg $ seed_arg
          $ chaos_replication_arg $ requests_arg $ keep_arg)
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Drive a live multi-process fleet through a scripted sequence of kills, respawns, \
          joins, drains and injected network faults while submitting a seeded workload \
          through the gateway — asserting every reply stays bit-identical to $(b,dse \
          explore), warm repeats run zero kernels, and the fleet's caches converge to exactly \
          the post-schedule placement.")
    term

let main =
  let info =
    Cmd.info "dse" ~version:"1.0.0"
      ~doc:"Analytical design space exploration of caches for embedded systems."
  in
  Cmd.group info
    [
      stats_cmd; explore_cmd; simulate_cmd; compare_cmd; gen_cmd; synth_cmd; reduce_cmd;
      pareto_cmd; disasm_cmd; codesign_cmd; run_cmd; cc_cmd; list_cmd; serve_cmd; submit_cmd;
      route_cmd; chaos_cmd;
    ]

let () =
  Fault.install_from_env ();
  match Cmd.eval_value ~catch:false main with
  | Ok _ -> ()
  | Error _ -> exit 2 (* cmdliner usage/parse error *)
  | exception Dse_error.Error e ->
    Format.eprintf "dse: %s@." (Dse_error.to_string e);
    exit (Dse_error.exit_code e)
  | exception Sys_error msg ->
    Format.eprintf "dse: %s@." msg;
    exit 3
  | exception Unix.Unix_error (err, fn, _) ->
    Format.eprintf "dse: %s: %s@." fn (Unix.error_message err);
    exit 3
  | exception Machine.Fault msg ->
    Format.eprintf "dse: machine fault: %s@." msg;
    exit 5
  | exception Failure msg ->
    Format.eprintf "dse: %s@." msg;
    exit 5
  | exception Invalid_argument msg ->
    Format.eprintf "dse: internal error: %s@." msg;
    exit 5
