# iterative fibonacci(30) -- try:
#   dune exec bin/dse.exe -- run examples/programs/fib.s --regs
  li   $t0, 30
  li   $t1, 0
  li   $t2, 1
loop:
  beq  $t0, $zero, done
  add  $t3, $t1, $t2
  move $t1, $t2
  move $t2, $t3
  addi $t0, $t0, -1
  j    loop
done:
  move $v0, $t1
  halt
