// naive pattern search over a synthetic text -- try:
//   dune exec bin/dse.exe -- cc examples/programs/string_search.c --run --dtrace /tmp/d.trace
//   dune exec bin/dse.exe -- explore /tmp/d.trace
int text[2048];
int pattern[8];

int match_at(int pos) {
  int k;
  for (k = 0; k < 8; k = k + 1) {
    if (text[pos + k] != pattern[k]) { return 0; }
  }
  return 1;
}

int main() {
  int i;
  int found;
  for (i = 0; i < 2048; i = i + 1) { text[i] = (i * 31 + 7) % 11; }
  for (i = 0; i < 8; i = i + 1) { pattern[i] = ((100 + i) * 31 + 7) % 11; }
  found = 0;
  for (i = 0; i <= 2048 - 8; i = i + 1) {
    if (match_at(i)) { found = found + 1; }
  }
  return found;
}
