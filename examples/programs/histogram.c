// histogram + cumulative sum, a classic data-cache workload -- try:
//   dune exec bin/dse.exe -- cc examples/programs/histogram.c --run
int data[4096];
int bins[64];

int main() {
  int i;
  int x;
  int total;
  x = 7;
  for (i = 0; i < 4096; i = i + 1) {
    x = (x * 1103515245 + 12345) & 0x7FFFFFFF;
    data[i] = x % 64;
  }
  for (i = 0; i < 4096; i = i + 1) {
    bins[data[i]] = bins[data[i]] + 1;
  }
  // cumulative
  for (i = 1; i < 64; i = i + 1) {
    bins[i] = bins[i] + bins[i - 1];
  }
  total = bins[63];
  if (total != 4096) { return -1; }
  // weighted checksum of the distribution
  total = 0;
  for (i = 0; i < 64; i = i + 1) {
    total = total + bins[i] * (i + 1);
  }
  return total;
}
