# Euclid's algorithm as a subroutine: gcd(1071, 462) = 21
#   dune exec bin/dse.exe -- run examples/programs/gcd.s
main:
  li   $a0, 1071
  li   $a1, 462
  jal  gcd
  halt

gcd:                      # while (b != 0) { t = a % b; a = b; b = t; }
  beq  $a1, $zero, base
  rem  $t0, $a0, $a1
  move $a0, $a1
  move $a1, $t0
  j    gcd
base:
  move $v0, $a0
  jr   $ra
