(* Cost-aware selection: the analytical model yields one minimal
   instance per depth for a miss budget; the cost models price each one
   (area, energy incl. bus and miss traffic, latency) and the Pareto
   frontier exposes the real design choice — all without a single
   simulation, because the model's miss counts are exact.

     dune exec examples/pareto_frontier.exe *)

let () =
  let bench = Registry.find "adpcm" in
  let trace = Workload.data_trace bench in
  let stats = Stats.compute trace in
  let k = Stats.budget stats ~percent:10 in
  Format.printf "adpcm data trace, budget K = %d (10%% of max misses)@.@." k;

  let points = Pareto.candidates trace ~k in
  let frontier = Pareto.frontier points in
  let on_frontier p = List.memq p frontier in
  Format.printf "%-3s %a@." "" Fmt.(const string "instance / cost") ();
  List.iter
    (fun p ->
      Format.printf "%-3s %a@." (if on_frontier p then "*" else "") Pareto.pp_point p)
    points;
  Format.printf "@.* = Pareto-optimal under (energy, time, area): %d of %d instances@."
    (List.length frontier) (List.length points);

  (* The bus side: how much address-bus switching the workload causes,
     and what Gray coding would save. *)
  let binary = Bus_cost.address_activity trace in
  let gray = Bus_cost.gray_code_activity trace in
  Format.printf "@.address bus: %.2f transitions/access (binary), %.2f (Gray coded)@."
    (Bus_cost.transitions_per_access binary)
    (Bus_cost.transitions_per_access gray)
