(* Quickstart: feed a memory-reference trace to the analytical optimizer
   and read off the cheapest caches meeting a miss budget.

     dune exec examples/quickstart.exe *)

let () =
  (* A toy trace: a loop streaming over eight addresses while repeatedly
     touching a hot pair that collides with the stream. *)
  let trace = Trace.create () in
  for _round = 1 to 16 do
    for offset = 0 to 7 do
      Trace.add trace ~addr:(32 + offset) ~kind:Trace.Read;
      Trace.add trace ~addr:0 ~kind:Trace.Read;
      Trace.add trace ~addr:8 ~kind:Trace.Write
    done
  done;
  let stats = Stats.compute trace in
  Format.printf "trace: %a@.@." Stats.pp stats;

  (* Allow at most 10 non-cold misses and ask for the optimal set. *)
  let result = Analytical.explore trace ~k:10 in
  Format.printf "caches guaranteeing at most 10 non-cold misses:@.%a@." Optimizer.pp result;

  (* The model is exact for LRU: verify one instance with the simulator. *)
  let depth, associativity =
    match Optimizer.optimal_pairs result with
    | (d, a) :: _ -> (d, a)
    | [] -> assert false
  in
  let sim = Cache.simulate (Config.make ~depth ~associativity ()) trace in
  Format.printf "@.simulated %dx%d: %a@." depth associativity Cache.pp_stats sim
