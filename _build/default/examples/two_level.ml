(* A two-level hierarchy study: use the analytical model to pick the L1
   instruction and data caches, then check with the hierarchy simulator
   what a unified L2 adds — and what a victim buffer would buy instead
   of extra associativity.

     dune exec examples/two_level.exe *)

let () =
  let bench = Registry.find "ucbqsort" in
  let itrace, dtrace = Workload.traces bench in

  (* L1s chosen analytically at a 10% budget, smallest size per side. *)
  let pick trace =
    let prepared = Analytical.prepare trace in
    let stats = Stats.compute trace in
    let k = Stats.budget stats ~percent:10 in
    let instance = Codesign.smallest_instance prepared ~k in
    Config.make ~depth:instance.Codesign.depth
      ~associativity:instance.Codesign.associativity ()
  in
  let l1i = pick itrace and l1d = pick dtrace in
  Format.printf "chosen L1i: %a@.chosen L1d: %a@.@." Config.pp l1i Config.pp l1d;

  Format.printf "%-28s %10s %10s %8s@." "configuration" "L1 misses" "L2 misses" "AMAT";
  List.iter
    (fun (label, l2) ->
      let s = Hierarchy.simulate_split ~l1i ~l1d ~l2 ~itrace ~dtrace in
      let l1_misses =
        Cache.total_misses s.Hierarchy.l1i + Cache.total_misses s.Hierarchy.l1d
      in
      Format.printf "%-28s %10d %10d %8.2f@." label l1_misses
        (Cache.total_misses s.Hierarchy.l2)
        (Hierarchy.amat s))
    [
      ("L2 256x1", Config.make ~depth:256 ~associativity:1 ());
      ("L2 1024x2", Config.make ~depth:1024 ~associativity:2 ());
      ("L2 4096x4", Config.make ~depth:4096 ~associativity:4 ());
    ];

  (* Victim buffer vs associativity on the data side. *)
  let depth = l1d.Config.depth in
  Format.printf "@.data cache at depth %d:@." depth;
  let direct = Cache.simulate (Config.make ~depth ~associativity:1 ()) dtrace in
  let two_way = Cache.simulate (Config.make ~depth ~associativity:2 ()) dtrace in
  let victim = Victim.simulate ~depth ~victim_entries:4 dtrace in
  Format.printf "  direct mapped:          %6d non-cold misses@." direct.Cache.misses;
  Format.printf "  2-way LRU:              %6d@." two_way.Cache.misses;
  Format.printf "  direct + 4-entry victim:%6d (%d served by the buffer)@."
    victim.Victim.misses victim.Victim.victim_hits
