examples/quickstart.mli:
