examples/pareto_frontier.ml: Bus_cost Fmt Format List Pareto Registry Stats Workload
