examples/two_level.ml: Analytical Cache Codesign Config Format Hierarchy List Registry Stats Victim Workload
