examples/minic_dse.mli:
