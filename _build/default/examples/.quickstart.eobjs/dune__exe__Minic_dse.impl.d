examples/minic_dse.ml: Analytical_dse Array Cache Config Format List Machine Mc_codegen Report Trace
