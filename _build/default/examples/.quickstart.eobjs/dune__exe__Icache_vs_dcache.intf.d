examples/icache_vs_dcache.mli:
