examples/tune_fir.mli:
