examples/tune_fir.ml: Analytical_dse Cache Config Format List Registry Report Workload
