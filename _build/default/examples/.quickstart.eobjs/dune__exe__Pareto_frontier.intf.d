examples/pareto_frontier.mli:
