examples/budget_sweep.ml: Analytical Cache Config Format List Optimizer Registry Stats String Workload
