examples/icache_vs_dcache.ml: Analytical_dse Format List Registry Report Workload
