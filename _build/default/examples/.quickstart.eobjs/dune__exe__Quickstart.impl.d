examples/quickstart.ml: Analytical Cache Config Format Optimizer Stats Trace
