(* Sweeping the designer's miss budget K for the engine-controller
   kernel: because the prelude (strip + MRCT) is computed once and each
   budget is a cheap postlude pass, exploring many constraints is nearly
   free — the core selling point over simulate-and-tune.

     dune exec examples/budget_sweep.exe *)

let () =
  let bench = Registry.find "engine" in
  let dtrace = Workload.data_trace bench in
  let stats = Stats.compute dtrace in
  Format.printf "engine data trace: %a@.@." Stats.pp stats;

  let prepared = Analytical.prepare dtrace in
  Format.printf "%-10s %-10s %s@." "budget K" "% of max" "associativity at depths 1..64";
  List.iter
    (fun percent ->
      let k = Stats.budget stats ~percent in
      let result = Analytical.explore_prepared prepared ~k in
      let assocs =
        List.filter_map
          (fun (depth, a) -> if depth <= 64 then Some (string_of_int a) else None)
          (Optimizer.optimal_pairs result)
      in
      Format.printf "%-10d %-10d %s@." k percent (String.concat " " assocs))
    [ 0; 1; 2; 5; 10; 15; 20; 30; 50 ];

  (* Verify the headline guarantee across the whole sweep at depth 16. *)
  let depth = 16 in
  List.iter
    (fun percent ->
      let k = Stats.budget stats ~percent in
      let result = Analytical.explore_prepared prepared ~k in
      let associativity = List.assoc depth (Optimizer.optimal_pairs result) in
      let sim = Cache.simulate (Config.make ~depth ~associativity ()) dtrace in
      assert (sim.Cache.misses <= k))
    [ 0; 5; 20; 50 ];
  Format.printf "@.simulator confirms every depth-16 instance meets its budget.@."
