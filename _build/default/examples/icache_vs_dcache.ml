(* Split instruction/data cache tuning for the CRC kernel — the paper's
   experimental setting uses separate instruction and data traces from
   an instrumented processor simulator; here both come from one VM run.

     dune exec examples/icache_vs_dcache.exe *)

let tune kind trace =
  let table = Analytical_dse.run ~name:kind trace |> Analytical_dse.trim in
  Format.printf "%a@." Report.pp_instances table;
  table

let smallest_at_column table column =
  List.fold_left
    (fun acc (depth, assocs) ->
      let a = List.nth assocs column in
      match acc with
      | Some (d0, a0) when d0 * a0 <= depth * a -> acc
      | _ -> Some (depth, a))
    None table.Analytical_dse.rows

let () =
  let bench = Registry.find "crc" in
  let itrace, dtrace = Workload.traces bench in
  Format.printf "=== instruction cache ===@.";
  let itable = tune "crc (instruction)" itrace in
  Format.printf "@.=== data cache ===@.";
  let dtable = tune "crc (data)" dtrace in
  let column = 0 (* the 5% budget *) in
  match (smallest_at_column itable column, smallest_at_column dtable column) with
  | Some (di, ai), Some (dd, ad) ->
    Format.printf
      "@.at a 5%% miss budget: I-cache %dx%d (%d words), D-cache %dx%d (%d words)@." di ai
      (di * ai) dd ad (dd * ad);
    Format.printf
      "the instruction working set is tiny and loop-dominated, the data side is@.";
    Format.printf "table-driven — the asymmetry the paper's split-cache tables expose.@."
  | _ -> assert false
