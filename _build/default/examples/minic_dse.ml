(* The complete toolchain on a compiled workload: a MiniC program (the
   kind of small C kernel the paper's embedded processors run) is
   compiled to the VM, traced, and its data cache tuned analytically —
   with the simulator confirming the chosen instance.

     dune exec examples/minic_dse.exe *)

let source =
  {|
  // string search: count occurrences of a pattern in a text
  int text[2048];
  int pattern[8];
  int found;

  int match_at(int pos) {
    int k;
    k = 0;
    while (k < 8) {
      if (text[pos + k] != pattern[k]) { return 0; }
      k = k + 1;
    }
    return 1;
  }

  int main() {
    int i;
    i = 0;
    while (i < 2048) { text[i] = (i * 31 + 7) % 11; i = i + 1; }
    i = 0;
    while (i < 8) { pattern[i] = ((100 + i) * 31 + 7) % 11; i = i + 1; }
    found = 0;
    i = 0;
    while (i <= 2048 - 8) {
      if (match_at(i)) { found = found + 1; }
      i = i + 1;
    }
    return found;
  }
  |}

let () =
  let compiled = Mc_codegen.compile source in
  let result = Mc_codegen.run compiled in
  Format.printf "compiled %d instructions; main returned %d in %d steps@.@."
    (Array.length compiled.Mc_codegen.program)
    (Machine.return_value result) result.Machine.steps;

  let itrace, dtrace = Mc_codegen.traces compiled in
  Format.printf "traces: %d fetches, %d data accesses@.@." (Trace.length itrace)
    (Trace.length dtrace);

  let table = Analytical_dse.run ~name:"string search (data)" dtrace |> Analytical_dse.trim in
  Format.printf "%a@." Report.pp_instances table;

  (* verify the 5%-budget column against the simulator *)
  let budget = List.hd table.Analytical_dse.budgets in
  List.iter
    (fun (depth, assocs) ->
      let associativity = List.hd assocs in
      let sim = Cache.simulate (Config.make ~depth ~associativity ()) dtrace in
      assert (sim.Cache.misses <= budget))
    table.Analytical_dse.rows;
  Format.printf "simulator confirms every 5%%-budget instance.@."
