(* Tuning a data cache for the FIR filter kernel, end to end: run the
   benchmark on the bundled VM to collect its data trace, explore the
   design space analytically, and cross-check the chosen instance by
   simulation — the full Figure 1(b) flow of the paper.

     dune exec examples/tune_fir.exe *)

let () =
  let bench = Registry.find "fir" in
  Format.printf "benchmark: %s — %s@.@." bench.Workload.name bench.Workload.description;

  let dtrace = Workload.data_trace bench in
  let table = Analytical_dse.run ~name:"fir (data)" dtrace |> Analytical_dse.trim in
  Format.printf "%a@." Report.pp_instances table;

  (* pick the 10%-budget instance of smallest total size *)
  let column = 1 (* 10% *) in
  let budget = List.nth table.Analytical_dse.budgets column in
  let best =
    List.fold_left
      (fun acc (depth, assocs) ->
        let a = List.nth assocs column in
        match acc with
        | Some (d0, a0) when d0 * a0 <= depth * a -> acc
        | _ -> Some (depth, a))
      None table.Analytical_dse.rows
  in
  match best with
  | None -> assert false
  | Some (depth, associativity) ->
    Format.printf "@.smallest 10%%-budget instance: depth=%d assoc=%d (%d words)@." depth
      associativity (depth * associativity);
    let sim = Cache.simulate (Config.make ~depth ~associativity ()) dtrace in
    Format.printf "simulator confirms: %a (budget %d)@." Cache.pp_stats sim budget;
    assert (sim.Cache.misses <= budget)
