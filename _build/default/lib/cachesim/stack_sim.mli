(** One-pass Mattson stack-distance simulation (the paper's reference
    [17], Mattson et al., "Evaluation Techniques for Storage
    Hierarchies").

    For a fixed depth, a single pass computes the LRU stack distance of
    every access within its set; the miss count of *every* associativity
    is then a suffix sum of the distance histogram. This is the classic
    "one-pass" technique the paper contrasts itself against, and an
    independent oracle for the analytical model. *)

type result = {
  accesses : int;
  cold : int;  (** accesses whose line was never seen before (infinite distance) *)
  histogram : int array;
      (** [histogram.(d)] = number of warm accesses at stack distance [d];
          distance 0 means the line was the most recently used in its set *)
}

(** [run ~depth ?line_words trace] simulates one pass. [depth] must be a
    positive power of two; [line_words] defaults to 1. *)
val run : depth:int -> ?line_words:int -> Trace.t -> result

(** [misses result ~associativity] is the number of non-cold misses of an
    LRU cache of that associativity at the simulated depth: warm accesses
    with stack distance >= associativity. *)
val misses : result -> associativity:int -> int

(** [total_misses result ~associativity] adds the cold misses. *)
val total_misses : result -> associativity:int -> int

(** [min_associativity result ~budget] is the smallest associativity whose
    non-cold miss count is <= budget. *)
val min_associativity : result -> budget:int -> int
