lib/cachesim/cache.ml: Array Config Format Hashtbl Random Trace
