lib/cachesim/victim.ml: Array Config Hashtbl List Trace
