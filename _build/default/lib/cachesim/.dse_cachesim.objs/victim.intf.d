lib/cachesim/victim.mli: Trace
