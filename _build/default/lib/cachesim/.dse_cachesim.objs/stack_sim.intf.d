lib/cachesim/stack_sim.mli: Trace
