lib/cachesim/stack_sim.ml: Array Config List Trace
