lib/cachesim/hierarchy.ml: Cache Trace
