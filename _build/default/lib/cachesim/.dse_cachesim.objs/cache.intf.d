lib/cachesim/cache.mli: Config Format Trace
