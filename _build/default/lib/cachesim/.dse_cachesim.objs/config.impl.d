lib/cachesim/config.ml: Format Printf
