lib/cachesim/hierarchy.mli: Cache Config Trace
