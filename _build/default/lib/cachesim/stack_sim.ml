type result = { accesses : int; cold : int; histogram : int array }

(* Per-set LRU stacks as singly-linked lists of line ids, most recent
   first. The scan that finds an id also yields its stack distance. *)

let run ~depth ?(line_words = 1) trace =
  if not (Config.is_power_of_two depth) then
    invalid_arg "Stack_sim.run: depth must be a positive power of two";
  if not (Config.is_power_of_two line_words) then
    invalid_arg "Stack_sim.run: line_words must be a positive power of two";
  let offset_bits =
    let rec log2 n acc = if n <= 1 then acc else log2 (n lsr 1) (acc + 1) in
    log2 line_words 0
  in
  let stacks = Array.make depth [] in
  let hist = ref (Array.make 16 0) in
  let max_distance = ref (-1) in
  let cold = ref 0 in
  let accesses = ref 0 in
  let record_distance d =
    if d >= Array.length !hist then begin
      let bigger = Array.make (max (d + 1) (2 * Array.length !hist)) 0 in
      Array.blit !hist 0 bigger 0 (Array.length !hist);
      hist := bigger
    end;
    !hist.(d) <- !hist.(d) + 1;
    if d > !max_distance then max_distance := d
  in
  let touch addr =
    incr accesses;
    let line = addr lsr offset_bits in
    let index = line land (depth - 1) in
    (* Remove [line] from the stack, counting its depth. *)
    let rec extract acc d = function
      | [] -> (None, List.rev acc)
      | x :: rest when x = line -> (Some d, List.rev_append acc rest)
      | x :: rest -> extract (x :: acc) (d + 1) rest
    in
    let found, remaining = extract [] 0 stacks.(index) in
    stacks.(index) <- line :: remaining;
    match found with None -> incr cold | Some d -> record_distance d
  in
  Trace.iter (fun (a : Trace.access) -> touch a.addr) trace;
  {
    accesses = !accesses;
    cold = !cold;
    histogram = Array.sub !hist 0 (!max_distance + 1);
  }

let misses result ~associativity =
  if associativity < 1 then invalid_arg "Stack_sim.misses: associativity < 1";
  let n = ref 0 in
  for d = associativity to Array.length result.histogram - 1 do
    n := !n + result.histogram.(d)
  done;
  !n

let total_misses result ~associativity = result.cold + misses result ~associativity

let min_associativity result ~budget =
  let rec search a =
    if misses result ~associativity:a <= budget then a else search (a + 1)
  in
  search 1
