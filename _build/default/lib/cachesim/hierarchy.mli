(** Two-level cache hierarchy simulation: split L1 instruction and data
    caches backed by a unified L2.

    The paper tunes single-level split caches; a hierarchy is the obvious
    next system question ("a well-tuned cache hierarchy and organization",
    section 1), and this simulator answers it for concrete configurations:
    L1 misses are replayed into the L2 (by line address), so the L2 sees
    the classic filtered reference stream. Replacement and write policies
    follow each level's own configuration; the hierarchy is
    non-inclusive (no back-invalidations), matching simple embedded
    designs. *)

type level_stats = { l1i : Cache.stats; l1d : Cache.stats; l2 : Cache.stats }

type t

(** [create ~l1i ~l1d ~l2 ()] builds an empty hierarchy. *)
val create : l1i:Config.t -> l1d:Config.t -> l2:Config.t -> unit -> t

(** [access hierarchy ~addr ~kind] performs one access: fetches go to the
    L1 instruction cache, reads/writes to the L1 data cache; on an L1
    miss the line is also requested from the L2. Returns the L1 outcome. *)
val access : t -> addr:int -> kind:Trace.kind -> Cache.outcome

(** [stats hierarchy] snapshots all three caches. *)
val stats : t -> level_stats

(** [simulate ~l1i ~l1d ~l2 trace] replays a mixed trace (fetches, reads
    and writes interleaved) from cold. *)
val simulate : l1i:Config.t -> l1d:Config.t -> l2:Config.t -> Trace.t -> level_stats

(** [simulate_split ~l1i ~l1d ~l2 ~itrace ~dtrace] replays separate
    instruction and data traces, interleaving them round-robin in
    proportion to their lengths — the approximation available when the
    two streams were collected separately (as the paper's are). *)
val simulate_split :
  l1i:Config.t -> l1d:Config.t -> l2:Config.t -> itrace:Trace.t -> dtrace:Trace.t -> level_stats

(** [amat ?l1_hit ?l2_hit ?memory stats] is the average memory access
    time in cycles given the hit latencies of each level (defaults 1, 8,
    40) — the figure of merit hierarchies are tuned by. *)
val amat : ?l1_hit:float -> ?l2_hit:float -> ?memory:float -> level_stats -> float
