type replacement = Lru | Fifo | Random of int

type write_policy = Write_back | Write_through

type t = {
  depth : int;
  associativity : int;
  line_words : int;
  replacement : replacement;
  write_policy : write_policy;
}

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let log2 n =
  let rec loop n acc = if n <= 1 then acc else loop (n lsr 1) (acc + 1) in
  loop n 0

let make ?(line_words = 1) ?(replacement = Lru) ?(write_policy = Write_back)
    ~depth ~associativity () =
  if not (is_power_of_two depth) then
    invalid_arg "Config.make: depth must be a positive power of two";
  if not (is_power_of_two line_words) then
    invalid_arg "Config.make: line_words must be a positive power of two";
  if associativity < 1 then invalid_arg "Config.make: associativity must be >= 1";
  { depth; associativity; line_words; replacement; write_policy }

let size_words c = c.depth * c.associativity * c.line_words

let index_bits c = log2 c.depth

let offset_bits c = log2 c.line_words

let pp fmt c =
  let repl =
    match c.replacement with
    | Lru -> "LRU"
    | Fifo -> "FIFO"
    | Random seed -> Printf.sprintf "RANDOM(%d)" seed
  in
  let wp = match c.write_policy with Write_back -> "WB" | Write_through -> "WT" in
  Format.fprintf fmt "depth=%d assoc=%d line=%dw %s %s" c.depth c.associativity
    c.line_words repl wp
