type level_stats = { l1i : Cache.stats; l1d : Cache.stats; l2 : Cache.stats }

type t = { l1i : Cache.t; l1d : Cache.t; l2 : Cache.t }

(* Instruction and data addresses live in separate (Harvard) spaces; the
   unified L2 disambiguates them with a high tag bit on fetches. *)
let instruction_space_bit = 1 lsl 28

let create ~l1i ~l1d ~l2 () =
  { l1i = Cache.create l1i; l1d = Cache.create l1d; l2 = Cache.create l2 }

let access t ~addr ~kind =
  let l1, l2_addr, write =
    match kind with
    | Trace.Fetch -> (t.l1i, addr lor instruction_space_bit, false)
    | Trace.Read -> (t.l1d, addr, false)
    | Trace.Write -> (t.l1d, addr, true)
  in
  let outcome = Cache.access l1 ~addr ~write in
  (match outcome with
  | Cache.Hit -> ()
  | Cache.Cold_miss | Cache.Miss -> ignore (Cache.access t.l2 ~addr:l2_addr ~write:false));
  outcome

let stats t : level_stats =
  { l1i = Cache.stats t.l1i; l1d = Cache.stats t.l1d; l2 = Cache.stats t.l2 }

let simulate ~l1i ~l1d ~l2 trace =
  let h = create ~l1i ~l1d ~l2 () in
  Trace.iter (fun (a : Trace.access) -> ignore (access h ~addr:a.Trace.addr ~kind:a.Trace.kind)) trace;
  stats h

let simulate_split ~l1i ~l1d ~l2 ~itrace ~dtrace =
  let h = create ~l1i ~l1d ~l2 () in
  let ni = Trace.length itrace and nd = Trace.length dtrace in
  (* round-robin proportional interleave: at each step advance the stream
     that is furthest behind its proportional position *)
  let i = ref 0 and d = ref 0 in
  while !i < ni || !d < nd do
    let advance_instruction =
      if !i >= ni then false
      else if !d >= nd then true
      else !i * nd <= !d * ni
    in
    if advance_instruction then begin
      ignore (access h ~addr:(Trace.addr itrace !i) ~kind:Trace.Fetch);
      incr i
    end
    else begin
      ignore (access h ~addr:(Trace.addr dtrace !d) ~kind:(Trace.kind dtrace !d));
      incr d
    end
  done;
  stats h

let amat ?(l1_hit = 1.0) ?(l2_hit = 8.0) ?(memory = 40.0) (s : level_stats) =
  let accesses = s.l1i.Cache.accesses + s.l1d.Cache.accesses in
  if accesses = 0 then l1_hit
  else begin
    let l1_misses = Cache.total_misses s.l1i + Cache.total_misses s.l1d in
    let l2_misses = Cache.total_misses s.l2 in
    ((float_of_int accesses *. l1_hit)
    +. (float_of_int l1_misses *. l2_hit)
    +. (float_of_int l2_misses *. memory))
    /. float_of_int accesses
  end
