type outcome = Hit | Cold_miss | Miss

type stats = {
  accesses : int;
  hits : int;
  cold_misses : int;
  misses : int;
  writebacks : int;
}

let total_misses s = s.cold_misses + s.misses

let miss_rate s =
  if s.accesses = 0 then 0.0
  else float_of_int (total_misses s) /. float_of_int s.accesses

(* One way of one set. [tag] is valid only when [valid]; [stamp] orders
   ways for LRU (last-use time) or FIFO (fill time). *)
type way = { mutable valid : bool; mutable tag : int; mutable dirty : bool; mutable stamp : int }

type t = {
  config : Config.t;
  sets : way array array;
  seen_lines : (int, unit) Hashtbl.t;  (** line ids ever touched, for cold classification *)
  rng : Random.State.t option;
  mutable clock : int;
  mutable accesses : int;
  mutable hits : int;
  mutable cold_misses : int;
  mutable misses : int;
  mutable writebacks : int;
}

let create config =
  let make_way () = { valid = false; tag = 0; dirty = false; stamp = 0 } in
  let make_set _ = Array.init config.Config.associativity (fun _ -> make_way ()) in
  {
    config;
    sets = Array.init config.Config.depth make_set;
    seen_lines = Hashtbl.create 1024;
    rng =
      (match config.Config.replacement with
      | Config.Random seed -> Some (Random.State.make [| seed |])
      | Config.Lru | Config.Fifo -> None);
    clock = 0;
    accesses = 0;
    hits = 0;
    cold_misses = 0;
    misses = 0;
    writebacks = 0;
  }

let find_way set tag =
  let rec loop i =
    if i >= Array.length set then None
    else if set.(i).valid && set.(i).tag = tag then Some set.(i)
    else loop (i + 1)
  in
  loop 0

let victim_way t set =
  (* Prefer an invalid way; otherwise pick per policy. *)
  let rec find_invalid i =
    if i >= Array.length set then None
    else if not set.(i).valid then Some set.(i)
    else find_invalid (i + 1)
  in
  match find_invalid 0 with
  | Some w -> w
  | None -> (
    match t.rng with
    | Some rng -> set.(Random.State.int rng (Array.length set))
    | None ->
      (* LRU and FIFO both evict the smallest stamp; they differ in
         whether hits refresh the stamp. *)
      let best = ref set.(0) in
      for i = 1 to Array.length set - 1 do
        if set.(i).stamp < !best.stamp then best := set.(i)
      done;
      !best)

let access t ~addr ~write =
  let cfg = t.config in
  let line = addr lsr Config.offset_bits cfg in
  let index = line land (cfg.Config.depth - 1) in
  let tag = line lsr Config.index_bits cfg in
  let set = t.sets.(index) in
  t.accesses <- t.accesses + 1;
  t.clock <- t.clock + 1;
  match find_way set tag with
  | Some w ->
    t.hits <- t.hits + 1;
    (match cfg.Config.replacement with
    | Config.Lru -> w.stamp <- t.clock
    | Config.Fifo | Config.Random _ -> ());
    if write then
      (match cfg.Config.write_policy with
      | Config.Write_back -> w.dirty <- true
      | Config.Write_through -> ());
    Hit
  | None ->
    let cold = not (Hashtbl.mem t.seen_lines line) in
    if cold then begin
      Hashtbl.add t.seen_lines line ();
      t.cold_misses <- t.cold_misses + 1
    end
    else t.misses <- t.misses + 1;
    let w = victim_way t set in
    if w.valid && w.dirty then t.writebacks <- t.writebacks + 1;
    w.valid <- true;
    w.tag <- tag;
    w.dirty <-
      (write && match cfg.Config.write_policy with
                | Config.Write_back -> true
                | Config.Write_through -> false);
    w.stamp <- t.clock;
    if cold then Cold_miss else Miss

let stats t =
  {
    accesses = t.accesses;
    hits = t.hits;
    cold_misses = t.cold_misses;
    misses = t.misses;
    writebacks = t.writebacks;
  }

let simulate config trace =
  let cache = create config in
  Trace.iter
    (fun (a : Trace.access) ->
      let write = match a.kind with Trace.Write -> true | Trace.Fetch | Trace.Read -> false in
      ignore (access cache ~addr:a.addr ~write))
    trace;
  stats cache

let simulate_addresses config addrs =
  let cache = create config in
  Array.iter (fun addr -> ignore (access cache ~addr ~write:false)) addrs;
  stats cache

let miss_stream config trace =
  let cache = create config in
  let misses = Trace.create () in
  Trace.iter
    (fun (a : Trace.access) ->
      let write = match a.kind with Trace.Write -> true | Trace.Fetch | Trace.Read -> false in
      match access cache ~addr:a.addr ~write with
      | Hit -> ()
      | Cold_miss | Miss -> Trace.add misses ~addr:a.addr ~kind:a.kind)
    trace;
  (stats cache, misses)

let pp_stats fmt (s : stats) =
  Format.fprintf fmt "accesses=%d hits=%d cold=%d misses=%d writebacks=%d"
    s.accesses s.hits s.cold_misses s.misses s.writebacks
