(** Cache configurations for the reference simulator.

    [depth] is the number of sets (the paper's D, a power of two);
    [associativity] the number of ways per set (the paper's A);
    [line_words] the line size in words (the paper fixes it to 1; the
    simulator supports larger lines for the line-size ablation).

    Total capacity in words is [depth * associativity * line_words]
    (the paper's "cache size 2^D A" phrasing, with D as log2-depth). *)

type replacement = Lru | Fifo | Random of int  (** Random carries a seed *)

type write_policy = Write_back | Write_through

type t = {
  depth : int;
  associativity : int;
  line_words : int;
  replacement : replacement;
  write_policy : write_policy;
}

(** [make ~depth ~associativity ()] validates and builds a configuration.
    Defaults: [line_words = 1], [replacement = Lru],
    [write_policy = Write_back] — the paper's fixed choices.
    Raises [Invalid_argument] if [depth] or [line_words] is not a positive
    power of two, or [associativity < 1]. *)
val make :
  ?line_words:int ->
  ?replacement:replacement ->
  ?write_policy:write_policy ->
  depth:int ->
  associativity:int ->
  unit ->
  t

(** [size_words config] is the total data capacity in words. *)
val size_words : t -> int

(** [index_bits config] is log2 of the depth. *)
val index_bits : t -> int

(** [offset_bits config] is log2 of the line size. *)
val offset_bits : t -> int

val is_power_of_two : int -> bool

val pp : Format.formatter -> t -> unit
