(** Direct-mapped cache with a victim buffer (Jouppi's victim cache —
    the low-cost alternative to associativity that the analytical model's
    associativity recommendations are naturally compared against; cf. the
    application-specific victim-buffer line of work that followed the
    paper).

    Lines evicted from the direct-mapped array land in a small
    fully-associative LRU buffer; a subsequent miss that hits the buffer
    swaps the line back instead of going to memory. *)

type stats = {
  accesses : int;
  l1_hits : int;
  victim_hits : int;  (** misses of the array served by the buffer *)
  cold_misses : int;
  misses : int;  (** non-cold misses that also missed the buffer *)
}

type t

(** [create ~depth ~victim_entries ()] builds an empty cache; [depth]
    must be a positive power of two, [victim_entries] non-negative
    ([0] degenerates to a plain direct-mapped cache). *)
val create : ?line_words:int -> depth:int -> victim_entries:int -> unit -> t

type outcome = L1_hit | Victim_hit | Cold | Miss

(** [access t ~addr] performs one access. *)
val access : t -> addr:int -> outcome

val stats : t -> stats

(** [simulate ?line_words ~depth ~victim_entries trace] replays a trace
    from cold. *)
val simulate : ?line_words:int -> depth:int -> victim_entries:int -> Trace.t -> stats
