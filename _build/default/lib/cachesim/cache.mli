(** Reference set-associative cache simulator.

    This is the "traditional approach" component of the paper's Figure
    1(a): it replays a trace against one concrete configuration and counts
    hits and misses. Misses are classified as cold (first touch of a line)
    or non-cold; the analytical model's guarantees are about non-cold
    misses, so this simulator is also the oracle our tests validate the
    model against. *)

type outcome = Hit | Cold_miss | Miss

type stats = {
  accesses : int;
  hits : int;
  cold_misses : int;
  misses : int;  (** non-cold (conflict/capacity) misses *)
  writebacks : int;  (** dirty evictions under write-back *)
}

(** [total_misses stats] is [cold_misses + misses]. *)
val total_misses : stats -> int

(** [miss_rate stats] is total misses over accesses (0 for empty traces). *)
val miss_rate : stats -> float

type t

(** [create config] is an empty cache. *)
val create : Config.t -> t

(** [access cache ~addr ~write] performs one access and returns its
    outcome, updating replacement state and dirty bits. *)
val access : t -> addr:int -> write:bool -> outcome

(** [stats cache] is a snapshot of the counters so far. *)
val stats : t -> stats

(** [simulate config trace] replays a whole trace from a cold cache.
    [Trace.Write] accesses are writes; fetches and reads are reads. *)
val simulate : Config.t -> Trace.t -> stats

(** [simulate_addresses config addrs] replays raw read addresses. *)
val simulate_addresses : Config.t -> int array -> stats

(** [miss_stream config trace] replays the trace and returns, besides the
    stats, the sequence of accesses that missed (cold or not) — the
    reference stream a next cache level would see. Kinds are preserved. *)
val miss_stream : Config.t -> Trace.t -> stats * Trace.t

val pp_stats : Format.formatter -> stats -> unit
