type stats = {
  accesses : int;
  l1_hits : int;
  victim_hits : int;
  cold_misses : int;
  misses : int;
}

type outcome = L1_hit | Victim_hit | Cold | Miss

type t = {
  depth : int;
  offset_bits : int;
  rows : int array;  (** line held per row, -1 when empty *)
  mutable victims : int list;  (** most recently evicted first *)
  victim_entries : int;
  seen : (int, unit) Hashtbl.t;
  mutable accesses : int;
  mutable l1_hits : int;
  mutable victim_hits : int;
  mutable cold_misses : int;
  mutable misses : int;
}

let create ?(line_words = 1) ~depth ~victim_entries () =
  if not (Config.is_power_of_two depth) then
    invalid_arg "Victim.create: depth must be a positive power of two";
  if not (Config.is_power_of_two line_words) then
    invalid_arg "Victim.create: line_words must be a positive power of two";
  if victim_entries < 0 then invalid_arg "Victim.create: negative victim_entries";
  let offset_bits =
    let rec log2 n acc = if n <= 1 then acc else log2 (n lsr 1) (acc + 1) in
    log2 line_words 0
  in
  {
    depth;
    offset_bits;
    rows = Array.make depth (-1);
    victims = [];
    victim_entries;
    seen = Hashtbl.create 256;
    accesses = 0;
    l1_hits = 0;
    victim_hits = 0;
    cold_misses = 0;
    misses = 0;
  }

let push_victim t line =
  if t.victim_entries > 0 && line >= 0 then begin
    let without = List.filter (fun v -> v <> line) t.victims in
    let rec take n = function
      | [] -> []
      | _ when n = 0 -> []
      | x :: rest -> x :: take (n - 1) rest
    in
    t.victims <- take t.victim_entries (line :: without)
  end

let access t ~addr =
  t.accesses <- t.accesses + 1;
  let line = addr lsr t.offset_bits in
  let row = line land (t.depth - 1) in
  if t.rows.(row) = line then begin
    t.l1_hits <- t.l1_hits + 1;
    L1_hit
  end
  else if List.mem line t.victims then begin
    (* swap: the requested line returns to the array, the displaced line
       becomes the newest victim *)
    t.victim_hits <- t.victim_hits + 1;
    t.victims <- List.filter (fun v -> v <> line) t.victims;
    push_victim t t.rows.(row);
    t.rows.(row) <- line;
    Victim_hit
  end
  else begin
    let cold = not (Hashtbl.mem t.seen line) in
    if cold then begin
      Hashtbl.add t.seen line ();
      t.cold_misses <- t.cold_misses + 1
    end
    else t.misses <- t.misses + 1;
    push_victim t t.rows.(row);
    t.rows.(row) <- line;
    if cold then Cold else Miss
  end

let stats t =
  {
    accesses = t.accesses;
    l1_hits = t.l1_hits;
    victim_hits = t.victim_hits;
    cold_misses = t.cold_misses;
    misses = t.misses;
  }

let simulate ?line_words ~depth ~victim_entries trace =
  let t = create ?line_words ~depth ~victim_entries () in
  Trace.iter (fun (a : Trace.access) -> ignore (access t ~addr:a.Trace.addr)) trace;
  stats t
