(** High-level entry points tying the prelude and postlude together
    (the paper's Figure 2 pipeline: strip -> MRCT/BCAT -> optimal set). *)

type method_ = Bcat_walk  (** Algorithms 1 + 3 as published *)
             | Dfs  (** the fused linear-space variant of section 2.4 *)

type prepared = {
  stripped : Strip.t;
  mrct : Mrct.t;
  max_level : int;  (** number of address bits usable as index bits *)
  line_words : int;  (** line size the trace was folded to *)
}

(** [prepare ?max_level ?line_words trace] runs the prelude phase once;
    the result can be re-used for several budgets K. [max_level] defaults
    to the number of address bits and is clamped to it.

    [line_words] (default 1, the paper's fixed choice) extends the model
    to larger lines: word addresses are folded to line addresses before
    stripping, which keeps the characterisation exact for LRU since
    conflicts happen between lines. Must be a power of two. *)
val prepare : ?max_level:int -> ?line_words:int -> Trace.t -> prepared

(** [explore_prepared ?method_ prepared ~k] runs the postlude for one
    budget. Default method is [Dfs]. *)
val explore_prepared : ?method_:method_ -> prepared -> k:int -> Optimizer.t

(** [explore_many ?method_ prepared ~ks] answers several budgets from a
    single histogram computation — the "prelude once, postlude per
    constraint" economy the paper's flow is built around. Results are in
    the order of [ks] and identical to per-budget {!explore_prepared}
    calls. *)
val explore_many : ?method_:method_ -> prepared -> ks:int list -> Optimizer.t list

(** [explore ?max_level ?line_words ?method_ trace ~k] is
    [explore_prepared (prepare trace) ~k]. *)
val explore :
  ?max_level:int -> ?line_words:int -> ?method_:method_ -> Trace.t -> k:int -> Optimizer.t

(** [misses ?method_ prepared ~depth ~associativity] is the model's exact
    non-cold miss count for one configuration. [depth] must be a power of
    two no greater than [2 ^ max_level]. *)
val misses : ?method_:method_ -> prepared -> depth:int -> associativity:int -> int
