lib/core/bcat.ml: Array Fun List Printf Zero_one
