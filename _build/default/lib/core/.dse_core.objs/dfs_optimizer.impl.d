lib/core/dfs_optimizer.ml: Array Mrct Optimizer
