lib/core/analytical.ml: Array Bcat Dfs_optimizer List Mrct Optimizer Printf Strip Trace Zero_one
