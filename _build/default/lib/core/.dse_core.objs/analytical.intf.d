lib/core/analytical.mli: Mrct Optimizer Strip Trace
