lib/core/optimizer.ml: Array Bcat Bitset Format List Mrct
