lib/core/parallel_optimizer.ml: Array Dfs_optimizer Domain List Mrct Optimizer
