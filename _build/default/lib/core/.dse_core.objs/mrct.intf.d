lib/core/mrct.mli: Strip
