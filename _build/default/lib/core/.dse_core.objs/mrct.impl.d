lib/core/mrct.ml: Array List Strip
