lib/core/bcat.mli: Zero_one
