lib/core/parallel_optimizer.mli: Mrct Optimizer
