lib/core/zero_one.ml: Array Bitset Printf Strip
