lib/core/dfs_optimizer.mli: Mrct Optimizer
