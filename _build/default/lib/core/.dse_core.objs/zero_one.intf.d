lib/core/zero_one.mli: Bitset Strip
