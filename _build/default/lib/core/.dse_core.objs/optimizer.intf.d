lib/core/optimizer.mli: Bcat Format Mrct
