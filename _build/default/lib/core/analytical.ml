type method_ = Bcat_walk | Dfs

type prepared = {
  stripped : Strip.t;
  mrct : Mrct.t;
  max_level : int;
  line_words : int;
}

let prepare ?max_level ?(line_words = 1) trace =
  if line_words < 1 || line_words land (line_words - 1) <> 0 then
    invalid_arg "Analytical.prepare: line_words must be a positive power of two";
  let offset_bits =
    let rec log2 n acc = if n <= 1 then acc else log2 (n lsr 1) (acc + 1) in
    log2 line_words 0
  in
  let line_addresses =
    Array.map (fun a -> a lsr offset_bits) (Trace.addresses trace)
  in
  let stripped = Strip.strip_addresses line_addresses in
  let bits = Strip.address_bits stripped in
  let max_level =
    match max_level with None -> bits | Some m -> max 0 (min m bits)
  in
  { stripped; mrct = Mrct.build stripped; max_level; line_words }

let explore_prepared ?(method_ = Dfs) prepared ~k =
  match method_ with
  | Dfs ->
    Dfs_optimizer.explore ~addresses:prepared.stripped.Strip.uniques prepared.mrct
      ~max_level:prepared.max_level ~k
  | Bcat_walk ->
    let zero_one = Zero_one.build prepared.stripped in
    let bcat = Bcat.build ~max_level:prepared.max_level zero_one in
    Optimizer.explore bcat prepared.mrct ~k

let explore_many ?(method_ = Dfs) prepared ~ks =
  let histograms =
    match method_ with
    | Dfs ->
      Dfs_optimizer.histograms ~addresses:prepared.stripped.Strip.uniques prepared.mrct
        ~max_level:prepared.max_level
    | Bcat_walk ->
      let zero_one = Zero_one.build prepared.stripped in
      let bcat = Bcat.build ~max_level:prepared.max_level zero_one in
      Array.init (Bcat.max_level bcat + 1) (fun level ->
          Optimizer.histogram_at bcat prepared.mrct ~level)
  in
  List.map (fun k -> Optimizer.of_histograms ~k histograms) ks

let explore ?max_level ?line_words ?method_ trace ~k =
  explore_prepared ?method_ (prepare ?max_level ?line_words trace) ~k

let level_of_depth depth max_level =
  let rec log2 n acc = if n <= 1 then acc else log2 (n lsr 1) (acc + 1) in
  if depth < 1 || depth land (depth - 1) <> 0 then
    invalid_arg "Analytical.misses: depth must be a positive power of two";
  let level = log2 depth 0 in
  if level > max_level then
    invalid_arg
      (Printf.sprintf "Analytical.misses: depth %d exceeds max level %d" depth max_level);
  level

let misses ?(method_ = Dfs) prepared ~depth ~associativity =
  let level = level_of_depth depth prepared.max_level in
  match method_ with
  | Dfs ->
    let hists =
      Dfs_optimizer.histograms ~addresses:prepared.stripped.Strip.uniques prepared.mrct
        ~max_level:level
    in
    Optimizer.misses_of_histogram hists.(level) ~associativity
  | Bcat_walk ->
    let zero_one = Zero_one.build prepared.stripped in
    let bcat = Bcat.build ~max_level:level zero_one in
    Optimizer.misses_at bcat prepared.mrct ~level ~associativity
