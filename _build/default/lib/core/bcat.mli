(** Binary Cache Allocation Tree (paper Algorithm 1, Figure 3).

    Level [l] of the tree partitions the unique references by their [l]
    low-order address bits: the node sets at level [l] are exactly the
    sets of references that map to each row of a cache of depth [2^l].
    A node is split only while it holds at least two references, since a
    lone reference can never suffer a non-cold miss; its (possibly empty
    or singleton) children are still materialised, matching Figure 3.

    Node sets are stored as sorted identifier arrays; splitting a node on
    bit [l] is exactly intersecting its set with the zero/one sets
    [Z_l]/[O_l] (verified in the test suite against {!Zero_one}). *)

type node = {
  level : int;  (** distance from the root; the root is level 0 *)
  row : int;  (** value of the [level] low-order address bits on this path *)
  ids : int array;  (** references mapping to this row, sorted *)
  children : (node * node) option;
      (** zero-branch and one-branch on bit [level]; [None] on leaves *)
}

type t

(** [build ?max_level zero_one] grows the tree, splitting on bits
    [0 .. max_level - 1]. [max_level] defaults to the number of address
    bits, and is clamped to it. *)
val build : ?max_level:int -> Zero_one.t -> t

val root : t -> node

(** [max_level t] is the deepest level the tree may reach (i.e. the
    largest meaningful log2 cache depth). *)
val max_level : t -> int

(** [num_unique t] is N'. *)
val num_unique : t -> int

(** [nodes_at_level t l] lists the materialised nodes at exactly level
    [l]. References whose branch was pruned earlier map alone to their
    rows and contribute no misses. *)
val nodes_at_level : t -> int -> node list

(** [conflict_sets_at_level t l] lists the [ids] arrays of level-[l]
    nodes holding at least two references — the only rows where misses
    can occur at depth [2^l]. *)
val conflict_sets_at_level : t -> int -> int array list

(** [max_row_population t l] is the largest node cardinality at level
    [l] — the associativity guaranteeing zero misses at depth [2^l]
    (the paper's A_zero bound). 1 when every row is a singleton. *)
val max_row_population : t -> int -> int

(** [node_count t] is the number of materialised nodes. *)
val node_count : t -> int
