(** Space-efficient combined prelude/postlude (paper section 2.4).

    The paper notes Algorithms 1 and 3 can be fused so the BCAT is never
    materialised, dropping space from exponential to linear. This module
    goes one step further: two references [u] and [v] share a cache row
    at every depth [2^l] with [l <= ctz (addr u lxor addr v)] (the number
    of common low-order bits), so a single pass over the MRCT computes
    the per-level histograms for *all* depths at once, without any tree.

    Results are bit-for-bit identical to {!Optimizer.explore} (property
    tested); this is the variant the benchmarks and the CLI use by
    default. *)

(** [explore ~addresses mrct ~max_level ~k] runs the exploration.
    [addresses] maps identifiers to their addresses (from {!Strip});
    [max_level] is the largest log2 depth to evaluate. *)
val explore : addresses:int array -> Mrct.t -> max_level:int -> k:int -> Optimizer.t

(** [histograms ~addresses mrct ~max_level] exposes the per-level
    histograms (index = level). *)
val histograms : addresses:int array -> Mrct.t -> max_level:int -> int array array

(** [histograms_range ~addresses mrct ~max_level ~lo ~hi] restricts the
    tally to the conflict sets of identifiers in [lo, hi); summing the
    results of a partition of the identifier space element-wise equals
    {!histograms} (this is what {!Parallel_optimizer} exploits). *)
val histograms_range :
  addresses:int array -> Mrct.t -> max_level:int -> lo:int -> hi:int -> int array array
