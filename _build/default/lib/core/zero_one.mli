(** Zero/one sets (paper section 2.2, Table 3).

    For each address bit [B_i], [zero i] is the set of unique-reference
    identifiers whose address has bit [i] clear, and [one i] the set of
    those with bit [i] set. The BCAT of Algorithm 1 is defined by
    repeated intersection with these sets. *)

type t

(** [build stripped] computes the sets for every bit of the widest
    address in the stripped trace. *)
val build : Strip.t -> t

(** [bits t] is the number of address bits covered. *)
val bits : t -> int

(** [num_unique t] is the size of the identifier universe N'. *)
val num_unique : t -> int

(** [zero t i] is Z_i. Raises [Invalid_argument] if [i] is out of range. *)
val zero : t -> int -> Bitset.t

(** [one t i] is O_i. *)
val one : t -> int -> Bitset.t

(** [universe t] is the set of all identifiers. *)
val universe : t -> Bitset.t

(** [address_of t id] is the address carried by [id]. *)
val address_of : t -> int -> int
