type t = {
  bits : int;
  num_unique : int;
  zero : Bitset.t array;
  one : Bitset.t array;
  universe : Bitset.t;
  addresses : int array;
}

let build (s : Strip.t) =
  let n' = Strip.num_unique s in
  let bits = Strip.address_bits s in
  let zero = Array.init bits (fun _ -> Bitset.create n') in
  let one = Array.init bits (fun _ -> Bitset.create n') in
  let universe = Bitset.create n' in
  for id = 0 to n' - 1 do
    Bitset.add universe id;
    let a = s.uniques.(id) in
    for i = 0 to bits - 1 do
      if (a lsr i) land 1 = 0 then Bitset.add zero.(i) id else Bitset.add one.(i) id
    done
  done;
  { bits; num_unique = n'; zero; one; universe; addresses = Array.copy s.uniques }

let bits t = t.bits

let num_unique t = t.num_unique

let check t i =
  if i < 0 || i >= t.bits then
    invalid_arg (Printf.sprintf "Zero_one: bit %d out of [0, %d)" i t.bits)

let zero t i =
  check t i;
  t.zero.(i)

let one t i =
  check t i;
  t.one.(i)

let universe t = t.universe

let address_of t id = t.addresses.(id)
