(** Postlude phase (paper Algorithm 3).

    For every cache depth [2^l] the optimizer computes, from the BCAT and
    the MRCT, the exact number of non-cold LRU misses at every
    associativity, and hence the minimum associativity meeting the
    designer's miss budget K.

    The miss counts are derived from per-level histograms: for each warm
    occurrence of a reference [e] with conflict set [C], mapping to a
    level-[l] row holding the reference set [S], the occurrence misses at
    associativity [A] iff [|C ∩ S| >= A]. Recording [c = |C ∩ S|] once in
    a histogram therefore yields the miss count of *every* associativity
    as a suffix sum. *)

type level_result = {
  level : int;  (** log2 of the cache depth *)
  depth : int;  (** number of cache rows, [2 ^ level] *)
  min_associativity : int;  (** smallest A with at most K non-cold misses *)
  misses : int;  (** non-cold misses at [min_associativity] *)
  zero_miss_associativity : int;
      (** smallest A with exactly zero non-cold misses at this depth *)
}

type t = {
  k : int;  (** the miss budget the exploration was run with *)
  levels : level_result array;  (** indexed by level, 0 .. max_level *)
}

(** [explore bcat mrct ~k] runs Algorithm 3 over every level of the tree.
    Raises [Invalid_argument] on a negative [k]. *)
val explore : Bcat.t -> Mrct.t -> k:int -> t

(** [histogram_at bcat mrct ~level] is the level histogram: index [c]
    counts the warm occurrences whose conflict set meets their row set in
    exactly [c] references (index 0 is unused and zero). *)
val histogram_at : Bcat.t -> Mrct.t -> level:int -> int array

(** [misses_at bcat mrct ~level ~associativity] is the exact number of
    non-cold misses of the [2^level] x [associativity] LRU cache. *)
val misses_at : Bcat.t -> Mrct.t -> level:int -> associativity:int -> int

(** [of_histograms ~k histograms] assembles a result from per-level
    histograms (shared with the DFS variant; [histograms.(l)] is the
    level-[l] histogram). *)
val of_histograms : k:int -> int array array -> t

(** [misses_of_histogram histogram ~associativity] is the suffix sum
    giving the miss count at one associativity. *)
val misses_of_histogram : int array -> associativity:int -> int

(** [optimal_pairs t] lists the (depth, associativity) design instances,
    one per level — the paper's output set. *)
val optimal_pairs : t -> (int * int) list

val pp : Format.formatter -> t -> unit
