type node = {
  level : int;
  row : int;
  ids : int array;
  children : (node * node) option;
}

type t = { root : node; max_level : int; num_unique : int }

(* Split [ids] on address bit [bit]: the pair of sub-arrays with that bit
   clear / set. Equivalent to intersecting with Z_bit / O_bit; partitioning
   the sorted array keeps each side sorted. *)
let split_on_bit addresses ids bit =
  let zeros = ref [] and ones = ref [] and nz = ref 0 and no = ref 0 in
  Array.iter
    (fun id ->
      if (addresses.(id) lsr bit) land 1 = 0 then begin
        zeros := id :: !zeros;
        incr nz
      end
      else begin
        ones := id :: !ones;
        incr no
      end)
    ids;
  (* The accumulators are in reverse order; filling the array backwards
     restores the original (sorted) order. *)
  let to_array n rev_list =
    let a = Array.make n 0 in
    let rec fill i = function
      | [] -> ()
      | x :: rest ->
        a.(i) <- x;
        fill (i - 1) rest
    in
    fill (n - 1) rev_list;
    a
  in
  (to_array !nz !zeros, to_array !no !ones)

let build ?max_level zero_one =
  let bits = Zero_one.bits zero_one in
  let max_level =
    match max_level with None -> bits | Some m -> max 0 (min m bits)
  in
  let n' = Zero_one.num_unique zero_one in
  let addresses = Array.init n' (Zero_one.address_of zero_one) in
  let rec grow level row ids =
    if level >= max_level || Array.length ids < 2 then
      { level; row; ids; children = None }
    else
      let zero_ids, one_ids = split_on_bit addresses ids level in
      let zero_child = grow (level + 1) row zero_ids in
      let one_child = grow (level + 1) (row lor (1 lsl level)) one_ids in
      { level; row; ids; children = Some (zero_child, one_child) }
  in
  let root = grow 0 0 (Array.init n' Fun.id) in
  { root; max_level; num_unique = n' }

let root t = t.root

let max_level t = t.max_level

let num_unique t = t.num_unique

let nodes_at_level t l =
  if l < 0 || l > t.max_level then
    invalid_arg (Printf.sprintf "Bcat.nodes_at_level: level %d out of [0, %d]" l t.max_level);
  let rec collect node acc =
    if node.level = l then node :: acc
    else
      match node.children with
      | None -> acc
      | Some (z, o) -> collect z (collect o acc)
  in
  collect t.root []

let conflict_sets_at_level t l =
  nodes_at_level t l
  |> List.filter_map (fun n -> if Array.length n.ids >= 2 then Some n.ids else None)

let max_row_population t l =
  List.fold_left (fun acc n -> max acc (Array.length n.ids)) 1 (nodes_at_level t l)

let node_count t =
  let rec count node =
    match node.children with None -> 1 | Some (z, o) -> 1 + count z + count o
  in
  count t.root
