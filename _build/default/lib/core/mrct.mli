(** Memory Reference Conflict Table (paper Algorithm 2, Table 4).

    For each unique reference [u] and each of its occurrences *after the
    first* (the first is always a cold miss), the table holds the set of
    distinct other references that appeared in the trace since [u]'s
    previous occurrence. An occurrence of [u] misses in a cache of depth
    [D] and LRU associativity [A] exactly when at least [A] of those
    conflicting references map to [u]'s cache row.

    Construction walks a recency list (most recently used first): the
    references more recent than [u]'s previous occurrence are precisely
    the prefix of the list above [u], so each conflict set is produced in
    time proportional to its size — the hash-table speedup the paper
    describes in section 2.4, with total cost O(N * N') in the worst
    case and O(output size) in practice. *)

type t

(** [build stripped] constructs the table. *)
val build : Strip.t -> t

(** [num_unique t] is N'. *)
val num_unique : t -> int

(** [conflict_sets t u] is the array of conflict sets for identifier [u],
    one per warm occurrence, in occurrence order. Each set is an array of
    distinct identifiers, never containing [u] itself. *)
val conflict_sets : t -> int -> int array array

(** [iter f t] applies [f u conflict_set] for every warm occurrence of
    every identifier [u]. *)
val iter : (int -> int array -> unit) -> t -> unit

(** [iter_range f t ~lo ~hi] restricts {!iter} to identifiers in
    [lo, hi) — the partitioning unit for parallel exploration. *)
val iter_range : (int -> int array -> unit) -> t -> lo:int -> hi:int -> unit

(** [total_sets t] is the number of conflict sets = N - N'. *)
val total_sets : t -> int

(** [volume t] is the summed cardinality of all conflict sets (the memory
    footprint driver). *)
val volume : t -> int
