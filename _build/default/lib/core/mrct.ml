type t = { conflicts : int array array array }

(* Recency list as intrusive prev/next arrays over identifiers, threaded
   through a sentinel head. Walking from the head to [u] enumerates the
   references seen since [u]'s previous occurrence. *)
let build (s : Strip.t) =
  let n' = Strip.num_unique s in
  let n = Strip.num_refs s in
  let next = Array.make (n' + 1) n' in
  let prev = Array.make (n' + 1) n' in
  (* index n' is the sentinel; the list is initially empty *)
  let in_list = Array.make n' false in
  let buffers = Array.make n' [] in
  (* buffers.(u) accumulates conflict sets in reverse occurrence order *)
  let unlink u =
    next.(prev.(u)) <- next.(u);
    prev.(next.(u)) <- prev.(u)
  in
  let push_front u =
    let first = next.(n') in
    next.(n') <- u;
    prev.(u) <- n';
    next.(u) <- first;
    prev.(first) <- u
  in
  for j = 0 to n - 1 do
    let u = s.ids.(j) in
    if in_list.(u) then begin
      (* Collect everything more recent than u's previous occurrence. *)
      let rec walk v acc count =
        if v = u then (acc, count) else walk next.(v) (v :: acc) (count + 1)
      in
      let members, count = walk next.(n') [] 0 in
      let conflict = Array.make count 0 in
      let rec fill i = function
        | [] -> ()
        | x :: rest ->
          conflict.(i) <- x;
          fill (i + 1) rest
      in
      (* members is most-recent-last after the reversal in [walk] *)
      fill 0 members;
      buffers.(u) <- conflict :: buffers.(u);
      unlink u;
      push_front u
    end
    else begin
      in_list.(u) <- true;
      push_front u
    end
  done;
  { conflicts = Array.map (fun sets -> Array.of_list (List.rev sets)) buffers }

let num_unique t = Array.length t.conflicts

let conflict_sets t u = t.conflicts.(u)

let iter f t =
  Array.iteri (fun u sets -> Array.iter (fun set -> f u set) sets) t.conflicts

let iter_range f t ~lo ~hi =
  let lo = max 0 lo and hi = min hi (Array.length t.conflicts) in
  for u = lo to hi - 1 do
    Array.iter (fun set -> f u set) t.conflicts.(u)
  done

let total_sets t =
  Array.fold_left (fun acc sets -> acc + Array.length sets) 0 t.conflicts

let volume t =
  Array.fold_left
    (fun acc sets -> Array.fold_left (fun a set -> a + Array.length set) acc sets)
    0 t.conflicts
