let merge_histograms parts =
  match parts with
  | [] -> [||]
  | first :: _ ->
    let levels = Array.length first in
    Array.init levels (fun level ->
        let width =
          List.fold_left (fun acc part -> max acc (Array.length part.(level))) 1 parts
        in
        let merged = Array.make width 0 in
        List.iter
          (fun part ->
            Array.iteri (fun c n -> merged.(c) <- merged.(c) + n) part.(level))
          parts;
        merged)

let histograms ~domains ~addresses mrct ~max_level =
  let domains = max 1 domains in
  let n' = Mrct.num_unique mrct in
  if domains = 1 || n' = 0 then Dfs_optimizer.histograms ~addresses mrct ~max_level
  else begin
    let chunk = (n' + domains - 1) / domains in
    let bounds =
      List.init domains (fun d -> (d * chunk, min n' ((d + 1) * chunk)))
      |> List.filter (fun (lo, hi) -> lo < hi)
    in
    match bounds with
    | [] -> Dfs_optimizer.histograms ~addresses mrct ~max_level
    | (lo0, hi0) :: rest ->
      (* spawn workers for the tail chunks, compute the first here *)
      let workers =
        List.map
          (fun (lo, hi) ->
            Domain.spawn (fun () ->
                Dfs_optimizer.histograms_range ~addresses mrct ~max_level ~lo ~hi))
          rest
      in
      let head = Dfs_optimizer.histograms_range ~addresses mrct ~max_level ~lo:lo0 ~hi:hi0 in
      let parts = head :: List.map Domain.join workers in
      merge_histograms parts
  end

let explore ~domains ~addresses mrct ~max_level ~k =
  Optimizer.of_histograms ~k (histograms ~domains ~addresses mrct ~max_level)
