type level_result = {
  level : int;
  depth : int;
  min_associativity : int;
  misses : int;
  zero_miss_associativity : int;
}

type t = { k : int; levels : level_result array }

let misses_of_histogram histogram ~associativity =
  if associativity < 1 then invalid_arg "Optimizer: associativity must be >= 1";
  let n = ref 0 in
  for c = associativity to Array.length histogram - 1 do
    n := !n + histogram.(c)
  done;
  !n

(* Histogram of |C ∩ S| over all warm occurrences at one level. The row
   set S is loaded into a scratch bitset so each membership test is O(1);
   entries with an empty intersection cannot miss and are not recorded. *)
let histogram_at bcat mrct ~level =
  let n' = Bcat.num_unique bcat in
  let scratch = Bitset.create (max n' 1) in
  let hist = Array.make (n' + 1) 0 in
  let max_c = ref 0 in
  let visit_row ids =
    Array.iter (fun id -> Bitset.add scratch id) ids;
    Array.iter
      (fun e ->
        Array.iter
          (fun conflict ->
            let c = ref 0 in
            Array.iter (fun v -> if Bitset.mem scratch v then incr c) conflict;
            if !c > 0 then begin
              hist.(!c) <- hist.(!c) + 1;
              if !c > !max_c then max_c := !c
            end)
          (Mrct.conflict_sets mrct e))
      ids;
    Array.iter (fun id -> Bitset.remove scratch id) ids
  in
  List.iter visit_row (Bcat.conflict_sets_at_level bcat level);
  Array.sub hist 0 (!max_c + 1)

let misses_at bcat mrct ~level ~associativity =
  misses_of_histogram (histogram_at bcat mrct ~level) ~associativity

let level_result_of_histogram ~k ~level histogram =
  (* Scan associativities upward until the budget is met; the histogram
     length bounds the largest useful associativity. *)
  let rec search a =
    let m = misses_of_histogram histogram ~associativity:a in
    if m <= k then (a, m) else search (a + 1)
  in
  let min_associativity, misses = search 1 in
  { level;
    depth = 1 lsl level;
    min_associativity;
    misses;
    zero_miss_associativity = max 1 (Array.length histogram);
  }

let of_histograms ~k histograms =
  if k < 0 then invalid_arg "Optimizer: negative miss budget";
  { k; levels = Array.mapi (fun level h -> level_result_of_histogram ~k ~level h) histograms }

let explore bcat mrct ~k =
  if k < 0 then invalid_arg "Optimizer.explore: negative miss budget";
  let histograms =
    Array.init (Bcat.max_level bcat + 1) (fun level -> histogram_at bcat mrct ~level)
  in
  of_histograms ~k histograms

let optimal_pairs t =
  Array.to_list (Array.map (fun r -> (r.depth, r.min_associativity)) t.levels)

let pp fmt t =
  Format.fprintf fmt "@[<v>K=%d@," t.k;
  Array.iter
    (fun r ->
      Format.fprintf fmt "depth=%-6d assoc=%-3d misses=%-8d zero-miss assoc=%d@,"
        r.depth r.min_associativity r.misses r.zero_miss_associativity)
    t.levels;
  Format.fprintf fmt "@]"
