type totals = { energy : float; time : float; area : float; edp : float }

let evaluate config ~reads ~writes ~total_misses ~bus =
  let cache = Cache_cost.estimate config in
  let accesses = float_of_int (reads + writes) in
  let cache_energy =
    (float_of_int reads *. cache.Cache_cost.read_energy)
    +. (float_of_int writes *. cache.Cache_cost.write_energy)
  in
  let miss_energy = float_of_int total_misses *. Cache_cost.miss_transfer_energy config in
  let bus_energy = Bus_cost.energy bus in
  let energy = cache_energy +. miss_energy +. bus_energy in
  let time =
    (accesses *. cache.Cache_cost.access_time)
    +. (float_of_int total_misses *. Cache_cost.miss_penalty_time config)
  in
  { energy; time; area = cache.Cache_cost.area; edp = energy *. time }

let evaluate_trace config trace =
  let stats = Cache.simulate config trace in
  let writes =
    Trace.fold
      (fun acc (a : Trace.access) ->
        match a.Trace.kind with Trace.Write -> acc + 1 | Trace.Read | Trace.Fetch -> acc)
      0 trace
  in
  let reads = Trace.length trace - writes in
  let bus = Bus_cost.address_activity trace in
  (evaluate config ~reads ~writes ~total_misses:(Cache.total_misses stats) ~bus, stats)

let pp fmt t =
  Format.fprintf fmt "energy=%.0f time=%.0f area=%.0f edp=%.3e" t.energy t.time t.area t.edp
