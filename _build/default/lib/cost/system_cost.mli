(** Whole-system evaluation of one cache configuration on one trace:
    cache access energy and latency plus the off-chip traffic of misses
    and the address-bus switching activity. Miss counts can come from
    the simulator or from the analytical model — both are exact for LRU,
    so instances can be costed without any simulation. *)

type totals = {
  energy : float;  (** cache + miss traffic + address bus *)
  time : float;  (** access latencies + miss stalls *)
  area : float;
  edp : float;  (** energy-delay product, a common figure of merit *)
}

(** [evaluate config ~reads ~writes ~total_misses ~bus] combines the cost
    models for a workload with the given access mix and miss count. *)
val evaluate :
  Config.t -> reads:int -> writes:int -> total_misses:int -> bus:Bus_cost.activity -> totals

(** [evaluate_trace config trace] simulates the trace (reference LRU
    simulator) and costs the result. *)
val evaluate_trace : Config.t -> Trace.t -> totals * Cache.stats

val pp : Format.formatter -> totals -> unit
