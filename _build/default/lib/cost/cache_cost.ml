type geometry = {
  index_bits : int;
  offset_bits : int;
  tag_bits : int;
  bits_per_line : int;
  total_bits : int;
}

type estimate = {
  area : float;
  read_energy : float;
  write_energy : float;
  access_time : float;
}

let address_bits = 32

let word_bits = 32

let geometry (config : Config.t) =
  let index_bits = Config.index_bits config in
  let offset_bits = Config.offset_bits config in
  let tag_bits = max 0 (address_bits - index_bits - offset_bits) in
  let bits_per_line = (config.Config.line_words * word_bits) + tag_bits + 2 in
  {
    index_bits;
    offset_bits;
    tag_bits;
    bits_per_line;
    total_bits = config.Config.depth * config.Config.associativity * bits_per_line;
  }

(* Model constants (normalised). Cells dominate area; decoders grow with
   rows, comparators and output muxes with ways. *)
let cell_area = 0.6

let comparator_area = 3.0

let row_driver_area = 1.5

let mux_area = 0.4

let estimate (config : Config.t) =
  let g = geometry config in
  let ways = float_of_int config.Config.associativity in
  let line_bits = float_of_int (config.Config.line_words * word_bits) in
  let area =
    (cell_area *. float_of_int g.total_bits)
    +. (comparator_area *. ways *. float_of_int g.tag_bits)
    +. (row_driver_area *. float_of_int config.Config.depth)
    +. (mux_area *. ways *. line_bits)
  in
  (* Per access: decode the index, read all ways' tag+data in parallel,
     compare tags, mux out one line. *)
  let decode = 0.2 *. float_of_int (g.index_bits + 1) in
  let bitlines = 0.01 *. ways *. float_of_int g.bits_per_line in
  let compare = 0.05 *. ways *. float_of_int g.tag_bits in
  let output = 0.005 *. line_bits in
  let read_energy = decode +. bitlines +. compare +. output in
  (* A write touches one way's data after the compare. *)
  let write_energy = decode +. bitlines +. compare +. (0.02 *. line_bits) in
  let wire = 0.002 *. sqrt (float_of_int g.total_bits) in
  let access_time =
    0.4 +. (0.08 *. float_of_int g.index_bits) +. (0.12 *. log (ways +. 1.0)) +. wire
  in
  { area; read_energy; write_energy; access_time }

(* Off-chip transfers dominate miss cost: per-word bus energy plus a
   fixed transaction overhead; latency likewise. *)
let miss_transfer_energy (config : Config.t) =
  8.0 +. (4.0 *. float_of_int config.Config.line_words)

let miss_penalty_time (config : Config.t) =
  20.0 +. (2.0 *. float_of_int config.Config.line_words)

let pp fmt e =
  Format.fprintf fmt "area=%.1f read=%.3f write=%.3f time=%.3f" e.area e.read_energy
    e.write_energy e.access_time
