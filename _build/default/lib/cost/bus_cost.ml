type activity = { accesses : int; transitions : int }

let popcount x =
  let rec count x acc = if x = 0 then acc else count (x lsr 1) (acc + (x land 1)) in
  count x 0

let activity_of_stream addresses =
  let transitions = ref 0 in
  let previous = ref 0 in
  let accesses = ref 0 in
  Array.iter
    (fun a ->
      incr accesses;
      transitions := !transitions + popcount (a lxor !previous);
      previous := a)
    addresses;
  { accesses = !accesses; transitions = !transitions }

let address_activity trace = activity_of_stream (Trace.addresses trace)

let transitions_per_access a =
  if a.accesses = 0 then 0.0 else float_of_int a.transitions /. float_of_int a.accesses

let energy ?(per_transition = 0.8) a = per_transition *. float_of_int a.transitions

let gray_of_binary x = x lxor (x lsr 1)

let gray_code_activity trace =
  activity_of_stream (Array.map gray_of_binary (Trace.addresses trace))

let bus_invert_activity ?(width = 32) trace =
  if width < 1 || width > 62 then invalid_arg "Bus_cost.bus_invert_activity: bad width";
  let mask = (1 lsl width) - 1 in
  let transitions = ref 0 in
  let accesses = ref 0 in
  let wire_state = ref 0 in
  let invert_line = ref 0 in
  Trace.iter
    (fun (a : Trace.access) ->
      incr accesses;
      let word = a.Trace.addr land mask in
      let inverted_word = lnot word land mask in
      (* total cost of each choice includes the invert-line transition *)
      let cost_plain =
        popcount (word lxor !wire_state) + (if !invert_line = 0 then 0 else 1)
      in
      let cost_inverted =
        popcount (inverted_word lxor !wire_state) + (if !invert_line = 1 then 0 else 1)
      in
      if cost_inverted < cost_plain then begin
        transitions := !transitions + cost_inverted;
        wire_state := inverted_word;
        invert_line := 1
      end
      else begin
        transitions := !transitions + cost_plain;
        wire_state := word;
        invert_line := 0
      end)
    trace;
  { accesses = !accesses; transitions = !transitions }
