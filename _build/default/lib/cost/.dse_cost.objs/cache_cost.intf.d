lib/cost/cache_cost.mli: Config Format
