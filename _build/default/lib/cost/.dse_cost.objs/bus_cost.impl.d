lib/cost/bus_cost.ml: Array Trace
