lib/cost/bus_cost.mli: Trace
