lib/cost/system_cost.ml: Bus_cost Cache Cache_cost Format Trace
