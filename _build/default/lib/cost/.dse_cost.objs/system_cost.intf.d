lib/cost/system_cost.mli: Bus_cost Cache Config Format Trace
