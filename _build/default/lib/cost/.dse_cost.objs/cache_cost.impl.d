lib/cost/cache_cost.ml: Config Format
