(** Address-bus switching activity — the system-on-a-chip artefact the
    paper defers to future work (section 4) and that the same group's
    bus/cache co-exploration papers optimise.

    Energy on a bus is proportional to the number of bit transitions
    between consecutive words driven on it; the address stream of a trace
    determines that directly. *)

type activity = {
  accesses : int;
  transitions : int;  (** summed Hamming distance of consecutive addresses *)
}

(** [address_activity trace] scans the trace once. *)
val address_activity : Trace.t -> activity

(** [transitions_per_access a] is the mean bit-flip count (0 for empty
    traces). *)
val transitions_per_access : activity -> float

(** [energy ?per_transition a] is the normalised bus energy
    (default weight 0.8 per transition). *)
val energy : ?per_transition:float -> activity -> float

(** [gray_code_activity trace] is the activity if addresses were
    Gray-encoded on the bus first — the classic low-power bus encoding;
    exposed so the benefit can be quantified per workload. *)
val gray_code_activity : Trace.t -> activity

(** [bus_invert_activity ?width trace] is the activity under bus-invert
    coding (Stan & Burleson): each word is sent inverted when that
    flips fewer than half of the [width] data lines, at the price of one
    extra invert line (whose transitions are included). Never worse than
    [ceil (width+1) / 2] transitions per transfer. Default width 32. *)
val bus_invert_activity : ?width:int -> Trace.t -> activity
