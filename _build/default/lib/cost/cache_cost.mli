(** First-order cache cost models — the paper's stated future direction
    ("silicon area, clock latency, or energy", section 1; "bus
    architecture and other system-on-a-chip artifacts", section 4).

    The formulas are normalised analytical models in the spirit of CACTI
    (the paper's reference [11]) and of Givargis-Vahid's parameterised
    cache/bus evaluation: monotone in the right structural quantities
    (storage bits, decoder width, parallel ways) without claiming
    absolute silicon numbers. All outputs are in abstract units; only
    comparisons between configurations are meaningful. *)

type geometry = {
  index_bits : int;
  offset_bits : int;
  tag_bits : int;
  bits_per_line : int;  (** data + tag + valid + dirty *)
  total_bits : int;
}

type estimate = {
  area : float;  (** normalised area units *)
  read_energy : float;  (** per-access energy, normalised *)
  write_energy : float;
  access_time : float;  (** normalised latency *)
}

(** [address_bits] assumed for tags: 32-bit word addresses. *)
val address_bits : int

(** [geometry config] derives the structural quantities. *)
val geometry : Config.t -> geometry

(** [estimate config] evaluates the cost model. *)
val estimate : Config.t -> estimate

(** [miss_transfer_energy config] is the bus/memory energy charged per
    miss (fetching one line). *)
val miss_transfer_energy : Config.t -> float

(** [miss_penalty_time config] is the stall time charged per miss. *)
val miss_penalty_time : Config.t -> float

val pp : Format.formatter -> estimate -> unit
