(** A small suite of compiled MiniC workloads — the "written in C,
    compiled, then tuned" usage the paper's introduction motivates, as a
    complement to the hand-assembly PowerStone kernels. Each program is
    self-checking: [expected] is the value [main] must return. *)

type program = {
  name : string;
  description : string;
  source : string;
  expected : int;
}

(** [all] lists the bundled programs. *)
val all : program list

(** [find name] raises [Not_found] for unknown names. *)
val find : string -> program

(** [compiled program] compiles with default options. *)
val compiled : program -> Mc_codegen.compiled

(** [traces program] compiles, runs, and returns (instruction, data)
    traces. *)
val traces : program -> Trace.t * Trace.t
