(** Recursive-descent parser for MiniC.

    Grammar sketch:

    {v
    program := ("int" name ";" | "int" name "[" n "]" ";"
               | "int" name "(" params ")" block)*
    stmt    := "int" name ";" | lvalue "=" expr ";" | expr ";"
             | "if" "(" expr ")" block ("else" (block | if))?
             | "while" "(" expr ")" block | "return" expr ";"
    v}

    Operator precedence follows C. Raises [Failure] with a line number
    on syntax errors. *)

val parse : string -> Mc_ast.program
