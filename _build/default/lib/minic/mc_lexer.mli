(** Lexer for MiniC. *)

type token =
  | Tint of int
  | Tident of string
  | Tkw_int
  | Tkw_if
  | Tkw_else
  | Tkw_while
  | Tkw_for
  | Tkw_break
  | Tkw_continue
  | Tkw_return
  | Tlparen
  | Trparen
  | Tlbrace
  | Trbrace
  | Tlbracket
  | Trbracket
  | Tsemicolon
  | Tcomma
  | Tassign
  | Top of string  (** operator lexeme, e.g. "+", "==", "&&" *)

(** [tokenize source] is the token stream with 1-based line numbers.
    Raises [Failure] on an illegal character or an unterminated
    comment. *)
val tokenize : string -> (token * int) list

val token_text : token -> string
