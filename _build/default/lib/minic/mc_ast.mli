(** Abstract syntax of MiniC, the small C subset compiled to the VM.

    One type ([int], 32-bit); global scalars and fixed-size global
    arrays; functions with scalar parameters and locals; the usual
    expression operators with C semantics (short-circuit [&&]/[||],
    arithmetic right shift, truncating division). *)

type binop =
  | Add | Sub | Mul | Div | Mod
  | Bit_and | Bit_or | Bit_xor | Shl | Shr
  | Lt | Le | Gt | Ge | Eq | Ne
  | And | Or  (** short-circuit *)

type unop = Neg | Not  (** logical ! *) | Bit_not

type expr =
  | Int of int
  | Var of string
  | Index of string * expr  (** global array element *)
  | Unary of unop * expr
  | Binary of binop * expr * expr
  | Call of string * expr list

type lvalue = Lvar of string | Lindex of string * expr

type stmt =
  | Assign of lvalue * expr
  | Expr of expr  (** expression for its effects, e.g. a call *)
  | If of expr * block * block option
  | While of expr * block
  | For of stmt option * expr * stmt option * block
      (** init; condition; update — [continue] branches to the update *)
  | Break
  | Continue
  | Return of expr
  | Declare of string  (** local scalar, zero-initialised *)

and block = stmt list

type global = Gscalar of string | Garray of string * int

type func = { name : string; params : string list; body : block }

type program = { globals : global list; functions : func list }

val pp_binop : Format.formatter -> binop -> unit
