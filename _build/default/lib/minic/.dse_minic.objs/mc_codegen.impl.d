lib/minic/mc_codegen.ml: Asm Hashtbl Isa List Machine Mc_ast Mc_parser Option Printf Trace
