lib/minic/mc_programs.mli: Mc_codegen Trace
