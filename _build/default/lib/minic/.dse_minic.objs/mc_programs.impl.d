lib/minic/mc_programs.ml: List Mc_codegen
