lib/minic/mc_lexer.mli:
