lib/minic/mc_lexer.ml: Char List Printf String
