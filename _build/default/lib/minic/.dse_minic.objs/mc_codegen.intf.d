lib/minic/mc_codegen.mli: Asm Isa Machine Trace
