type program = { name : string; description : string; source : string; expected : int }

(* Expected values are computed by independent OCaml mirrors of each
   algorithm (see test/test_minic_programs.ml, which re-derives them). *)

let matmul =
  {
    name = "matmul";
    description = "16x16 integer matrix multiply";
    expected = 193462;
    source =
      {|
      int a[256];
      int b[256];
      int c[256];

      int main() {
        int i; int j; int k; int acc; int sum;
        i = 0;
        while (i < 256) { a[i] = i % 17; b[i] = i % 13; i = i + 1; }
        i = 0;
        while (i < 16) {
          j = 0;
          while (j < 16) {
            acc = 0;
            k = 0;
            while (k < 16) {
              acc = acc + a[i * 16 + k] * b[k * 16 + j];
              k = k + 1;
            }
            c[i * 16 + j] = acc;
            j = j + 1;
          }
          i = i + 1;
        }
        sum = 0;
        i = 0;
        while (i < 256) { sum = sum + c[i]; i = i + 1; }
        return sum;
      }
      |};
  }

let qsort =
  {
    name = "qsort";
    description = "recursive quicksort over 512 pseudo-random keys";
    expected = 2531092;
    source =
      {|
      int a[512];

      int sort(int lo, int hi) {
        int pivot; int i; int j; int tmp;
        if (lo >= hi) { return 0; }
        pivot = a[(lo + hi) / 2];
        i = lo;
        j = hi;
        while (i <= j) {
          while (a[i] < pivot) { i = i + 1; }
          while (a[j] > pivot) { j = j - 1; }
          if (i <= j) {
            tmp = a[i]; a[i] = a[j]; a[j] = tmp;
            i = i + 1;
            j = j - 1;
          }
        }
        sort(lo, j);
        sort(i, hi);
        return 0;
      }

      int main() {
        int i; int x; int sum;
        x = 12345;
        i = 0;
        while (i < 512) {
          x = (x * 1103515245 + 12345) & 0x7FFFFFFF;
          a[i] = x % 10000;
          i = i + 1;
        }
        sort(0, 511);
        sum = 0;
        i = 0;
        while (i < 512) { sum = sum + (a[i] ^ i); i = i + 1; }
        return sum;
      }
      |};
  }

let dijkstra =
  {
    name = "dijkstra";
    description = "single-source shortest paths on a dense 32-node graph";
    expected = 146;
    source =
      {|
      int weight[1024];
      int dist[32];
      int done_[32];

      int main() {
        int i; int j; int best; int node; int alt; int total;
        i = 0;
        while (i < 32) {
          j = 0;
          while (j < 32) {
            weight[i * 32 + j] = ((i * 7 + j * 13) % 19) + 1;
            j = j + 1;
          }
          i = i + 1;
        }
        i = 0;
        while (i < 32) { dist[i] = 1000000; done_[i] = 0; i = i + 1; }
        dist[0] = 0;
        i = 0;
        while (i < 32) {
          best = 1000001;
          node = 0 - 1;
          j = 0;
          while (j < 32) {
            if (!done_[j] && dist[j] < best) { best = dist[j]; node = j; }
            j = j + 1;
          }
          if (node >= 0) {
            done_[node] = 1;
            j = 0;
            while (j < 32) {
              alt = dist[node] + weight[node * 32 + j];
              if (alt < dist[j]) { dist[j] = alt; }
              j = j + 1;
            }
          }
          i = i + 1;
        }
        total = 0;
        i = 0;
        while (i < 32) { total = total + dist[i]; i = i + 1; }
        return total;
      }
      |};
  }

let bitcount =
  {
    name = "bitcount";
    description = "population count over 4096 generated words";
    expected = 63435;
    source =
      {|
      int main() {
        int x; int i; int total; int w; int b;
        x = 99;
        total = 0;
        i = 0;
        while (i < 4096) {
          x = (x * 1103515245 + 12345) & 0x7FFFFFFF;
          w = x;
          b = 0;
          while (w != 0) {
            b = b + (w & 1);
            w = w >> 1;
            if (b > 40) { return 0 - 1; }
          }
          total = total + b;
          i = i + 1;
        }
        return total;
      }
      |};
  }

let queens =
  {
    name = "queens";
    description = "count the 92 solutions of 8-queens";
    expected = 92;
    source =
      {|
      int column[8];

      int safe(int row, int col) {
        int k;
        k = 0;
        while (k < row) {
          if (column[k] == col) { return 0; }
          if (column[k] - k == col - row) { return 0; }
          if (column[k] + k == col + row) { return 0; }
          k = k + 1;
        }
        return 1;
      }

      int place(int row) {
        int col; int count;
        if (row == 8) { return 1; }
        count = 0;
        col = 0;
        while (col < 8) {
          if (safe(row, col)) {
            column[row] = col;
            count = count + place(row + 1);
          }
          col = col + 1;
        }
        return count;
      }

      int main() { return place(0); }
      |};
  }

let all = [ matmul; qsort; dijkstra; bitcount; queens ]

let find name =
  match List.find_opt (fun p -> p.name = name) all with
  | Some p -> p
  | None -> raise Not_found

let compiled program = Mc_codegen.compile program.source

let traces program = Mc_codegen.traces (compiled program)
