(** MiniC code generation to the VM ISA.

    A straightforward non-optimising compiler (like the embedded
    toolchains of the paper's era): expression temporaries live on a
    memory stack, locals and saved registers in fp-relative frames, the
    first four arguments pass in [$a0]-[$a3], results in [$v0].

    Memory layout: globals from address 0 (scalars one word, arrays
    contiguous), the stack grows down from [mem_words - 8]. Array
    accesses are bounds-checked by default (an out-of-range index halts
    with [$v0 = bounds_trap_code]; unsigned comparison catches negative
    indices too).

    Semantic errors (unknown names, arity mismatches, duplicate
    definitions, more than four parameters, missing [main]) raise
    [Failure]. *)

type compiled = {
  items : Asm.item list;
  program : Isa.program;
  globals : (string * int * int) list;  (** name, base address, words *)
  globals_words : int;
  mem_words : int;
  bounds_checks : bool;
}

(** [bounds_trap_code] is the [$v0] value after a failed bounds check. *)
val bounds_trap_code : int

(** [compile ?bounds_checks ?mem_words source] parses and compiles a
    whole program. [mem_words] (default 65536) sizes the data memory the
    program expects and places the stack. *)
val compile : ?bounds_checks:bool -> ?mem_words:int -> string -> compiled

(** [run ?max_steps ?itrace ?dtrace compiled] executes from [main]. *)
val run :
  ?max_steps:int -> ?itrace:Trace.t -> ?dtrace:Trace.t -> compiled -> Machine.result

(** [traces compiled] runs once and returns (instruction, data) traces. *)
val traces : compiled -> Trace.t * Trace.t
