open Mc_ast

type compiled = {
  items : Asm.item list;
  program : Isa.program;
  globals : (string * int * int) list;
  globals_words : int;
  mem_words : int;
  bounds_checks : bool;
}

let bounds_trap_code = -999

type global_entry = Scalar of int | Array of int * int  (** base, size *)

type env = {
  globals : (string, global_entry) Hashtbl.t;
  functions : (string, int) Hashtbl.t;  (** name -> arity *)
  locals : (string, int) Hashtbl.t;  (** name -> fp-relative slot index *)
  mutable next_label : int;
  bounds : bool;
}

let fresh_label env prefix =
  let n = env.next_label in
  env.next_label <- n + 1;
  Printf.sprintf "L%s_%d" prefix n

(* register conventions inside generated code *)
let rv = Asm.v0

let acc = Asm.t0  (* expression result *)

let rhs = Asm.t1

let addr_reg = Asm.t2

let check_reg = Asm.t3

let local_slot env name =
  match Hashtbl.find_opt env.locals name with
  | Some slot -> Some slot
  | None -> None

let find_global env name = Hashtbl.find_opt env.globals name

let load_local slot = [ Asm.i (Isa.Lw (acc, Asm.fp, -(1 + slot))) ]

let store_local slot = [ Asm.i (Isa.Sw (acc, Asm.fp, -(1 + slot))) ]

let push reg = [ Asm.i (Isa.Addi (Asm.sp, Asm.sp, -1)); Asm.i (Isa.Sw (reg, Asm.sp, 0)) ]

let pop reg = [ Asm.i (Isa.Lw (reg, Asm.sp, 0)); Asm.i (Isa.Addi (Asm.sp, Asm.sp, 1)) ]

(* bounds check: trap unless u32(index in [reg]) < size; the unsigned
   comparison rejects negative indices in the same test *)
let bounds_check env reg size =
  if not env.bounds then []
  else if size <= 32767 then
    [
      Asm.i (Isa.Sltiu (check_reg, reg, size));
      Asm.i (Isa.Beq (check_reg, Asm.zero, "__bounds_trap"));
    ]
  else
    Asm.li check_reg size
    @ [
        Asm.i (Isa.Sltu (check_reg, reg, check_reg));
        Asm.i (Isa.Beq (check_reg, Asm.zero, "__bounds_trap"));
      ]

let rec compile_expr env expr =
  match expr with
  | Int v -> Asm.li acc v
  | Var name -> (
    match local_slot env name with
    | Some slot -> load_local slot
    | None -> (
      match find_global env name with
      | Some (Scalar base) -> Asm.li addr_reg base @ [ Asm.i (Isa.Lw (acc, addr_reg, 0)) ]
      | Some (Array _) -> failwith (Printf.sprintf "minic: array %S used without an index" name)
      | None -> failwith (Printf.sprintf "minic: unknown variable %S" name)))
  | Index (name, index) -> (
    match find_global env name with
    | Some (Array (base, size)) ->
      compile_expr env index
      @ bounds_check env acc size
      @ Asm.li addr_reg base
      @ [ Asm.i (Isa.Add (addr_reg, addr_reg, acc)); Asm.i (Isa.Lw (acc, addr_reg, 0)) ]
    | Some (Scalar _) -> failwith (Printf.sprintf "minic: %S is not an array" name)
    | None -> (
      match local_slot env name with
      | Some _ -> failwith (Printf.sprintf "minic: local %S is not an array" name)
      | None -> failwith (Printf.sprintf "minic: unknown array %S" name)))
  | Unary (op, inner) -> (
    compile_expr env inner
    @
    match op with
    | Neg -> [ Asm.i (Isa.Sub (acc, Asm.zero, acc)) ]
    | Not -> [ Asm.i (Isa.Sltiu (acc, acc, 1)) ]
    | Bit_not -> [ Asm.i (Isa.Nor (acc, acc, Asm.zero)) ])
  | Binary (And, left, right) ->
    (* short-circuit: 0 if left is 0, else !!right *)
    let out = fresh_label env "and" in
    compile_expr env left
    @ [ Asm.i (Isa.Beq (acc, Asm.zero, out)) ]
    @ compile_expr env right
    @ [ Asm.i (Isa.Sltu (acc, Asm.zero, acc)); Asm.label out ]
  | Binary (Or, left, right) ->
    let right_label = fresh_label env "or" in
    let out = fresh_label env "or" in
    compile_expr env left
    @ [
        Asm.i (Isa.Beq (acc, Asm.zero, right_label));
        Asm.i (Isa.Addi (acc, Asm.zero, 1));
        Asm.i (Isa.J out);
        Asm.label right_label;
      ]
    @ compile_expr env right
    @ [ Asm.i (Isa.Sltu (acc, Asm.zero, acc)); Asm.label out ]
  | Binary (op, left, right) ->
    compile_expr env left @ push acc @ compile_expr env right
    @ [ Asm.move rhs acc ]
    @ pop acc
    @ compile_binop op
  | Call (name, args) -> (
    match Hashtbl.find_opt env.functions name with
    | None -> failwith (Printf.sprintf "minic: call to undefined function %S" name)
    | Some arity ->
      if List.length args <> arity then
        failwith
          (Printf.sprintf "minic: %S expects %d argument(s), got %d" name arity
             (List.length args));
      (* evaluate left to right, stage on the stack, pop into $a0.. *)
      List.concat_map (fun arg -> compile_expr env arg @ push acc) args
      @ List.concat
          (List.rev
             (List.mapi (fun k _ -> pop (Asm.a0 + k)) args))
      @ [ Asm.i (Isa.Jal ("fn_" ^ name)); Asm.move acc rv ])

and compile_binop op =
  match op with
  | Add -> [ Asm.i (Isa.Add (acc, acc, rhs)) ]
  | Sub -> [ Asm.i (Isa.Sub (acc, acc, rhs)) ]
  | Mul -> [ Asm.i (Isa.Mul (acc, acc, rhs)) ]
  | Div -> [ Asm.i (Isa.Div (acc, acc, rhs)) ]
  | Mod -> [ Asm.i (Isa.Rem (acc, acc, rhs)) ]
  | Bit_and -> [ Asm.i (Isa.And (acc, acc, rhs)) ]
  | Bit_or -> [ Asm.i (Isa.Or (acc, acc, rhs)) ]
  | Bit_xor -> [ Asm.i (Isa.Xor (acc, acc, rhs)) ]
  | Shl -> [ Asm.i (Isa.Sllv (acc, acc, rhs)) ]
  | Shr -> [ Asm.i (Isa.Srav (acc, acc, rhs)) ]
  | Lt -> [ Asm.i (Isa.Slt (acc, acc, rhs)) ]
  | Le -> [ Asm.i (Isa.Slt (acc, rhs, acc)); Asm.i (Isa.Xori (acc, acc, 1)) ]
  | Gt -> [ Asm.i (Isa.Slt (acc, rhs, acc)) ]
  | Ge -> [ Asm.i (Isa.Slt (acc, acc, rhs)); Asm.i (Isa.Xori (acc, acc, 1)) ]
  | Eq -> [ Asm.i (Isa.Xor (acc, acc, rhs)); Asm.i (Isa.Sltiu (acc, acc, 1)) ]
  | Ne -> [ Asm.i (Isa.Xor (acc, acc, rhs)); Asm.i (Isa.Sltu (acc, Asm.zero, acc)) ]
  | And | Or -> assert false (* handled with short-circuit branches *)

let rec compile_stmt env ~epilogue ~loop stmt =
  match stmt with
  | Declare _ -> []  (* slots are allocated and zeroed by the prologue *)
  | Break -> (
    match loop with
    | Some (break_label, _) -> [ Asm.i (Isa.J break_label) ]
    | None -> failwith "minic: break outside a loop")
  | Continue -> (
    match loop with
    | Some (_, continue_label) -> [ Asm.i (Isa.J continue_label) ]
    | None -> failwith "minic: continue outside a loop")
  | Assign (Lvar name, value) -> (
    compile_expr env value
    @
    match local_slot env name with
    | Some slot -> store_local slot
    | None -> (
      match find_global env name with
      | Some (Scalar base) -> Asm.li addr_reg base @ [ Asm.i (Isa.Sw (acc, addr_reg, 0)) ]
      | Some (Array _) -> failwith (Printf.sprintf "minic: cannot assign whole array %S" name)
      | None -> failwith (Printf.sprintf "minic: unknown variable %S" name)))
  | Assign (Lindex (name, index), value) -> (
    match find_global env name with
    | Some (Array (base, size)) ->
      compile_expr env index @ push acc @ compile_expr env value
      @ [ Asm.move rhs acc ]
      @ pop acc
      @ bounds_check env acc size
      @ Asm.li addr_reg base
      @ [ Asm.i (Isa.Add (addr_reg, addr_reg, acc)); Asm.i (Isa.Sw (rhs, addr_reg, 0)) ]
    | Some (Scalar _) -> failwith (Printf.sprintf "minic: %S is not an array" name)
    | None -> failwith (Printf.sprintf "minic: unknown array %S" name))
  | Expr e -> compile_expr env e
  | Return value -> compile_expr env value @ [ Asm.move rv acc ] @ epilogue
  | If (condition, then_block, else_block) -> (
    let else_label = fresh_label env "else" in
    let condition_code =
      compile_expr env condition @ [ Asm.i (Isa.Beq (acc, Asm.zero, else_label)) ]
    in
    match else_block with
    | None ->
      condition_code @ compile_block env ~epilogue ~loop then_block @ [ Asm.label else_label ]
    | Some eb ->
      let out = fresh_label env "endif" in
      condition_code
      @ compile_block env ~epilogue ~loop then_block
      @ [ Asm.i (Isa.J out); Asm.label else_label ]
      @ compile_block env ~epilogue ~loop eb
      @ [ Asm.label out ])
  | While (condition, body) ->
    let top = fresh_label env "while" in
    let out = fresh_label env "endwhile" in
    [ Asm.label top ]
    @ compile_expr env condition
    @ [ Asm.i (Isa.Beq (acc, Asm.zero, out)) ]
    @ compile_block env ~epilogue ~loop:(Some (out, top)) body
    @ [ Asm.i (Isa.J top); Asm.label out ]
  | For (init, condition, update, body) ->
    let top = fresh_label env "for" in
    let next = fresh_label env "fornext" in
    let out = fresh_label env "endfor" in
    let compile_opt = function
      | None -> []
      | Some s -> compile_stmt env ~epilogue ~loop s
    in
    compile_opt init
    @ [ Asm.label top ]
    @ compile_expr env condition
    @ [ Asm.i (Isa.Beq (acc, Asm.zero, out)) ]
    @ compile_block env ~epilogue ~loop:(Some (out, next)) body
    @ [ Asm.label next ]
    @ compile_opt update
    @ [ Asm.i (Isa.J top); Asm.label out ]

and compile_block env ~epilogue ~loop block =
  List.concat_map (compile_stmt env ~epilogue ~loop) block

(* All locals of a function: parameters first, then every Declare in the
   body (C89 style, but we accept declarations anywhere). *)
let collect_locals func =
  let names = ref (List.rev func.params) in
  let declare name =
    if List.mem name !names then
      failwith (Printf.sprintf "minic: duplicate local %S in %S" name func.name);
    names := name :: !names
  in
  let rec walk_block block = List.iter walk_stmt block
  and walk_stmt = function
    | Declare name -> declare name
    | If (_, t, e) ->
      walk_block t;
      Option.iter walk_block e
    | While (_, b) -> walk_block b
    | For (init, _, update, b) ->
      Option.iter walk_stmt init;
      Option.iter walk_stmt update;
      walk_block b
    | Assign _ | Expr _ | Return _ | Break | Continue -> ()
  in
  List.iter
    (fun p ->
      if List.length (List.filter (( = ) p) func.params) > 1 then
        failwith (Printf.sprintf "minic: duplicate parameter %S in %S" p func.name))
    func.params;
  walk_block func.body;
  List.rev !names

let compile_function env func =
  if List.length func.params > 4 then
    failwith (Printf.sprintf "minic: %S has more than 4 parameters" func.name);
  let locals = collect_locals func in
  Hashtbl.reset env.locals;
  List.iteri (fun slot name -> Hashtbl.add env.locals name slot) locals;
  let frame = List.length locals in
  let prologue =
    [
      Asm.label ("fn_" ^ func.name);
      Asm.i (Isa.Addi (Asm.sp, Asm.sp, -2));
      Asm.i (Isa.Sw (Asm.ra, Asm.sp, 1));
      Asm.i (Isa.Sw (Asm.fp, Asm.sp, 0));
      Asm.move Asm.fp Asm.sp;
      Asm.i (Isa.Addi (Asm.sp, Asm.sp, -frame));
    ]
    (* zero every local slot, then overwrite the parameter slots *)
    @ List.concat (List.mapi (fun slot _ -> [ Asm.i (Isa.Sw (Asm.zero, Asm.fp, -(1 + slot))) ]) locals)
    @ List.concat
        (List.mapi (fun k _ -> [ Asm.i (Isa.Sw (Asm.a0 + k, Asm.fp, -(1 + k))) ]) func.params)
  in
  let epilogue =
    [
      Asm.move Asm.sp Asm.fp;
      Asm.i (Isa.Lw (Asm.fp, Asm.sp, 0));
      Asm.i (Isa.Lw (Asm.ra, Asm.sp, 1));
      Asm.i (Isa.Addi (Asm.sp, Asm.sp, 2));
      Asm.i (Isa.Jr Asm.ra);
    ]
  in
  (* implicit "return 0" for functions that fall off the end *)
  prologue
  @ compile_block env ~epilogue ~loop:None func.body
  @ [ Asm.move rv Asm.zero ]
  @ epilogue

let compile ?(bounds_checks = true) ?(mem_words = 65536) source =
  let ast = Mc_parser.parse source in
  let env =
    {
      globals = Hashtbl.create 16;
      functions = Hashtbl.create 16;
      locals = Hashtbl.create 16;
      next_label = 0;
      bounds = bounds_checks;
    }
  in
  let next_global = ref 0 in
  let globals_list = ref [] in
  List.iter
    (fun g ->
      let name, words =
        match g with Gscalar name -> (name, 1) | Garray (name, size) -> (name, size)
      in
      if Hashtbl.mem env.globals name then
        failwith (Printf.sprintf "minic: duplicate global %S" name);
      let base = !next_global in
      Hashtbl.add env.globals name
        (match g with Gscalar _ -> Scalar base | Garray (_, size) -> Array (base, size));
      globals_list := (name, base, words) :: !globals_list;
      next_global := base + words)
    ast.Mc_ast.globals;
  List.iter
    (fun (f : Mc_ast.func) ->
      if Hashtbl.mem env.functions f.name then
        failwith (Printf.sprintf "minic: duplicate function %S" f.name);
      Hashtbl.add env.functions f.name (List.length f.params))
    ast.Mc_ast.functions;
  if not (Hashtbl.mem env.functions "main") then failwith "minic: no main function";
  if Hashtbl.find env.functions "main" <> 0 then failwith "minic: main must take no arguments";
  if !next_global >= mem_words / 2 then
    failwith "minic: globals do not fit in half the data memory";
  let stack_top = mem_words - 8 in
  let startup =
    Asm.li Asm.sp stack_top
    @ Asm.li Asm.fp stack_top
    @ [ Asm.i (Isa.Jal "fn_main"); Asm.i Isa.Halt ]
  in
  let trap =
    [ Asm.label "__bounds_trap" ] @ Asm.li rv bounds_trap_code @ [ Asm.i Isa.Halt ]
  in
  let items =
    startup
    @ List.concat_map (compile_function env) ast.Mc_ast.functions
    @ trap
  in
  {
    items;
    program = Asm.assemble items;
    globals = List.rev !globals_list;
    globals_words = !next_global;
    mem_words;
    bounds_checks;
  }

let run ?max_steps ?itrace ?dtrace compiled =
  Machine.run ~mem_words:compiled.mem_words ?max_steps ?itrace ?dtrace compiled.program

let traces compiled =
  let itrace = Trace.create ~capacity:4096 () in
  let dtrace = Trace.create ~capacity:4096 () in
  let _ = run ~itrace ~dtrace compiled in
  (itrace, dtrace)
