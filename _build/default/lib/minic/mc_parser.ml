open Mc_ast

type state = { mutable tokens : (Mc_lexer.token * int) list }

let fail_at line msg = failwith (Printf.sprintf "minic parser, line %d: %s" line msg)

let peek state = match state.tokens with [] -> None | (t, _) :: _ -> Some t

let current_line state = match state.tokens with [] -> 0 | (_, l) :: _ -> l

let advance state =
  match state.tokens with
  | [] -> failwith "minic parser: unexpected end of input"
  | (t, l) :: rest ->
    state.tokens <- rest;
    (t, l)

let expect state token what =
  match advance state with
  | t, _ when t = token -> ()
  | t, l -> fail_at l (Printf.sprintf "expected %s, got %S" what (Mc_lexer.token_text t))

let expect_ident state what =
  match advance state with
  | Mc_lexer.Tident name, _ -> name
  | t, l -> fail_at l (Printf.sprintf "expected %s, got %S" what (Mc_lexer.token_text t))

(* precedence-climbing levels, loosest first *)
let binop_levels =
  [
    [ ("||", Or) ];
    [ ("&&", And) ];
    [ ("|", Bit_or) ];
    [ ("^", Bit_xor) ];
    [ ("&", Bit_and) ];
    [ ("==", Eq); ("!=", Ne) ];
    [ ("<", Lt); ("<=", Le); (">", Gt); (">=", Ge) ];
    [ ("<<", Shl); (">>", Shr) ];
    [ ("+", Add); ("-", Sub) ];
    [ ("*", Mul); ("/", Div); ("%", Mod) ];
  ]

let rec parse_expr state = parse_level state binop_levels

and parse_level state levels =
  match levels with
  | [] -> parse_unary state
  | ops :: tighter ->
    let left = ref (parse_level state tighter) in
    let continue = ref true in
    while !continue do
      match peek state with
      | Some (Mc_lexer.Top lexeme) when List.mem_assoc lexeme ops ->
        ignore (advance state);
        let right = parse_level state tighter in
        left := Binary (List.assoc lexeme ops, !left, right)
      | _ -> continue := false
    done;
    !left

and parse_unary state =
  match peek state with
  | Some (Mc_lexer.Top "-") ->
    ignore (advance state);
    Unary (Neg, parse_unary state)
  | Some (Mc_lexer.Top "!") ->
    ignore (advance state);
    Unary (Not, parse_unary state)
  | Some (Mc_lexer.Top "~") ->
    ignore (advance state);
    Unary (Bit_not, parse_unary state)
  | _ -> parse_primary state

and parse_primary state =
  match advance state with
  | Mc_lexer.Tint v, _ -> Int v
  | Mc_lexer.Tlparen, _ ->
    let e = parse_expr state in
    expect state Mc_lexer.Trparen "')'";
    e
  | Mc_lexer.Tident name, _ -> (
    match peek state with
    | Some Mc_lexer.Tlparen ->
      ignore (advance state);
      let args = parse_arguments state in
      Call (name, args)
    | Some Mc_lexer.Tlbracket ->
      ignore (advance state);
      let index = parse_expr state in
      expect state Mc_lexer.Trbracket "']'";
      Index (name, index)
    | _ -> Var name)
  | t, l -> fail_at l (Printf.sprintf "expected an expression, got %S" (Mc_lexer.token_text t))

and parse_arguments state =
  match peek state with
  | Some Mc_lexer.Trparen ->
    ignore (advance state);
    []
  | _ ->
    let rec more acc =
      let acc = parse_expr state :: acc in
      match advance state with
      | Mc_lexer.Tcomma, _ -> more acc
      | Mc_lexer.Trparen, _ -> List.rev acc
      | t, l -> fail_at l (Printf.sprintf "expected ',' or ')', got %S" (Mc_lexer.token_text t))
    in
    more []

let lvalue_of_expr line = function
  | Var name -> Lvar name
  | Index (name, index) -> Lindex (name, index)
  | Int _ | Unary _ | Binary _ | Call _ -> fail_at line "left side of '=' must be a variable or array element"

let rec parse_block state =
  expect state Mc_lexer.Tlbrace "'{'";
  let rec loop acc =
    match peek state with
    | Some Mc_lexer.Trbrace ->
      ignore (advance state);
      List.rev acc
    | Some _ -> loop (parse_stmt state :: acc)
    | None -> failwith "minic parser: unterminated block"
  in
  loop []

and parse_stmt state =
  match peek state with
  | Some Mc_lexer.Tkw_int ->
    ignore (advance state);
    let name = expect_ident state "a local variable name" in
    expect state Mc_lexer.Tsemicolon "';'";
    Declare name
  | Some Mc_lexer.Tkw_if ->
    ignore (advance state);
    expect state Mc_lexer.Tlparen "'('";
    let condition = parse_expr state in
    expect state Mc_lexer.Trparen "')'";
    let then_block = parse_block state in
    let else_block =
      match peek state with
      | Some Mc_lexer.Tkw_else -> (
        ignore (advance state);
        match peek state with
        | Some Mc_lexer.Tkw_if -> Some [ parse_stmt state ]
        | _ -> Some (parse_block state))
      | _ -> None
    in
    If (condition, then_block, else_block)
  | Some Mc_lexer.Tkw_while ->
    ignore (advance state);
    expect state Mc_lexer.Tlparen "'('";
    let condition = parse_expr state in
    expect state Mc_lexer.Trparen "')'";
    While (condition, parse_block state)
  | Some Mc_lexer.Tkw_for ->
    ignore (advance state);
    expect state Mc_lexer.Tlparen "'('";
    let init =
      match peek state with
      | Some Mc_lexer.Tsemicolon -> None
      | _ -> Some (parse_simple_stmt state)
    in
    expect state Mc_lexer.Tsemicolon "';'";
    let condition =
      match peek state with
      | Some Mc_lexer.Tsemicolon -> Int 1
      | _ -> parse_expr state
    in
    expect state Mc_lexer.Tsemicolon "';'";
    let update =
      match peek state with
      | Some Mc_lexer.Trparen -> None
      | _ -> Some (parse_simple_stmt state)
    in
    expect state Mc_lexer.Trparen "')'";
    For (init, condition, update, parse_block state)
  | Some Mc_lexer.Tkw_break ->
    ignore (advance state);
    expect state Mc_lexer.Tsemicolon "';'";
    Break
  | Some Mc_lexer.Tkw_continue ->
    ignore (advance state);
    expect state Mc_lexer.Tsemicolon "';'";
    Continue
  | Some Mc_lexer.Tkw_return ->
    ignore (advance state);
    let value = parse_expr state in
    expect state Mc_lexer.Tsemicolon "';'";
    Return value
  | _ ->
    let s = parse_simple_stmt state in
    expect state Mc_lexer.Tsemicolon "';'";
    s

(* assignment or expression, without the trailing ';' — shared by plain
   statements and for-headers *)
and parse_simple_stmt state =
  let line = current_line state in
  let e = parse_expr state in
  match peek state with
  | Some Mc_lexer.Tassign ->
    ignore (advance state);
    let value = parse_expr state in
    Assign (lvalue_of_expr line e, value)
  | _ -> Expr e

let parse_params state =
  match peek state with
  | Some Mc_lexer.Trparen ->
    ignore (advance state);
    []
  | _ ->
    let rec more acc =
      expect state Mc_lexer.Tkw_int "'int'";
      let name = expect_ident state "a parameter name" in
      match advance state with
      | Mc_lexer.Tcomma, _ -> more (name :: acc)
      | Mc_lexer.Trparen, _ -> List.rev (name :: acc)
      | t, l -> fail_at l (Printf.sprintf "expected ',' or ')', got %S" (Mc_lexer.token_text t))
    in
    more []

let parse_toplevel state =
  expect state Mc_lexer.Tkw_int "'int'";
  let name = expect_ident state "a name" in
  match advance state with
  | Mc_lexer.Tsemicolon, _ -> `Global (Gscalar name)
  | Mc_lexer.Tlbracket, l -> (
    match advance state with
    | Mc_lexer.Tint size, _ ->
      if size < 1 then fail_at l "array size must be positive";
      expect state Mc_lexer.Trbracket "']'";
      expect state Mc_lexer.Tsemicolon "';'";
      `Global (Garray (name, size))
    | t, l' -> fail_at l' (Printf.sprintf "expected an array size, got %S" (Mc_lexer.token_text t)))
  | Mc_lexer.Tlparen, _ ->
    let params = parse_params state in
    let body = parse_block state in
    `Func { name; params; body }
  | t, l -> fail_at l (Printf.sprintf "expected ';', '[' or '(', got %S" (Mc_lexer.token_text t))

let parse source =
  let state = { tokens = Mc_lexer.tokenize source } in
  let rec loop globals functions =
    match peek state with
    | None -> { globals = List.rev globals; functions = List.rev functions }
    | Some _ -> (
      match parse_toplevel state with
      | `Global g -> loop (g :: globals) functions
      | `Func f -> loop globals (f :: functions))
  in
  loop [] []
