type token =
  | Tint of int
  | Tident of string
  | Tkw_int
  | Tkw_if
  | Tkw_else
  | Tkw_while
  | Tkw_for
  | Tkw_break
  | Tkw_continue
  | Tkw_return
  | Tlparen
  | Trparen
  | Tlbrace
  | Trbrace
  | Tlbracket
  | Trbracket
  | Tsemicolon
  | Tcomma
  | Tassign
  | Top of string

let keyword_of = function
  | "int" -> Some Tkw_int
  | "if" -> Some Tkw_if
  | "else" -> Some Tkw_else
  | "while" -> Some Tkw_while
  | "for" -> Some Tkw_for
  | "break" -> Some Tkw_break
  | "continue" -> Some Tkw_continue
  | "return" -> Some Tkw_return
  | _ -> None

let is_digit c = c >= '0' && c <= '9'

let is_ident_start c = c = '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')

let is_ident_char c = is_ident_start c || is_digit c

let tokenize source =
  let n = String.length source in
  let tokens = ref [] in
  let line = ref 1 in
  let pos = ref 0 in
  let fail msg = failwith (Printf.sprintf "minic lexer, line %d: %s" !line msg) in
  let peek k = if !pos + k < n then Some source.[!pos + k] else None in
  let emit token = tokens := (token, !line) :: !tokens in
  while !pos < n do
    let c = source.[!pos] in
    if c = '\n' then begin
      incr line;
      incr pos
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr pos
    else if c = '/' && peek 1 = Some '/' then begin
      while !pos < n && source.[!pos] <> '\n' do
        incr pos
      done
    end
    else if c = '/' && peek 1 = Some '*' then begin
      pos := !pos + 2;
      let closed = ref false in
      while (not !closed) && !pos < n do
        if source.[!pos] = '\n' then incr line;
        if source.[!pos] = '*' && peek 1 = Some '/' then begin
          closed := true;
          pos := !pos + 2
        end
        else incr pos
      done;
      if not !closed then fail "unterminated comment"
    end
    else if is_digit c then begin
      let start = !pos in
      let hex = c = '0' && (peek 1 = Some 'x' || peek 1 = Some 'X') in
      if hex then pos := !pos + 2;
      let valid ch = if hex then is_digit ch || (Char.lowercase_ascii ch >= 'a' && Char.lowercase_ascii ch <= 'f') else is_digit ch in
      while !pos < n && valid source.[!pos] do
        incr pos
      done;
      let text = String.sub source start (!pos - start) in
      match int_of_string_opt text with
      | Some v -> emit (Tint v)
      | None -> fail (Printf.sprintf "bad integer literal %S" text)
    end
    else if is_ident_start c then begin
      let start = !pos in
      while !pos < n && is_ident_char source.[!pos] do
        incr pos
      done;
      let text = String.sub source start (!pos - start) in
      match keyword_of text with Some kw -> emit kw | None -> emit (Tident text)
    end
    else begin
      let two = if !pos + 1 < n then String.sub source !pos 2 else "" in
      match two with
      | "==" | "!=" | "<=" | ">=" | "<<" | ">>" | "&&" | "||" ->
        emit (Top two);
        pos := !pos + 2
      | _ ->
        (match c with
        | '(' -> emit Tlparen
        | ')' -> emit Trparen
        | '{' -> emit Tlbrace
        | '}' -> emit Trbrace
        | '[' -> emit Tlbracket
        | ']' -> emit Trbracket
        | ';' -> emit Tsemicolon
        | ',' -> emit Tcomma
        | '=' -> emit Tassign
        | '+' | '-' | '*' | '/' | '%' | '&' | '|' | '^' | '<' | '>' | '!' | '~' ->
          emit (Top (String.make 1 c))
        | _ -> fail (Printf.sprintf "illegal character %C" c));
        incr pos
    end
  done;
  List.rev !tokens

let token_text = function
  | Tint v -> string_of_int v
  | Tident s -> s
  | Tkw_int -> "int"
  | Tkw_if -> "if"
  | Tkw_else -> "else"
  | Tkw_while -> "while"
  | Tkw_for -> "for"
  | Tkw_break -> "break"
  | Tkw_continue -> "continue"
  | Tkw_return -> "return"
  | Tlparen -> "("
  | Trparen -> ")"
  | Tlbrace -> "{"
  | Trbrace -> "}"
  | Tlbracket -> "["
  | Trbracket -> "]"
  | Tsemicolon -> ";"
  | Tcomma -> ","
  | Tassign -> "="
  | Top s -> s
