type binop =
  | Add | Sub | Mul | Div | Mod
  | Bit_and | Bit_or | Bit_xor | Shl | Shr
  | Lt | Le | Gt | Ge | Eq | Ne
  | And | Or

type unop = Neg | Not | Bit_not

type expr =
  | Int of int
  | Var of string
  | Index of string * expr
  | Unary of unop * expr
  | Binary of binop * expr * expr
  | Call of string * expr list

type lvalue = Lvar of string | Lindex of string * expr

type stmt =
  | Assign of lvalue * expr
  | Expr of expr
  | If of expr * block * block option
  | While of expr * block
  | For of stmt option * expr * stmt option * block
  | Break
  | Continue
  | Return of expr
  | Declare of string

and block = stmt list

type global = Gscalar of string | Garray of string * int

type func = { name : string; params : string list; body : block }

type program = { globals : global list; functions : func list }

let pp_binop fmt op =
  let text =
    match op with
    | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Mod -> "%"
    | Bit_and -> "&" | Bit_or -> "|" | Bit_xor -> "^" | Shl -> "<<" | Shr -> ">>"
    | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">=" | Eq -> "==" | Ne -> "!="
    | And -> "&&" | Or -> "||"
  in
  Format.pp_print_string fmt text
