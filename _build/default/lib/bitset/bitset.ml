type t = { capacity : int; words : int array }

let bits_per_word = 63 (* OCaml native ints: use 63 bits to stay boxed-free *)

let words_for capacity = (capacity + bits_per_word - 1) / bits_per_word

let create capacity =
  if capacity < 0 then invalid_arg "Bitset.create: negative capacity";
  { capacity; words = Array.make (max 1 (words_for capacity)) 0 }

let capacity s = s.capacity

let copy s = { capacity = s.capacity; words = Array.copy s.words }

let check_index s i op =
  if i < 0 || i >= s.capacity then
    invalid_arg (Printf.sprintf "Bitset.%s: index %d out of [0, %d)" op i s.capacity)

let add s i =
  check_index s i "add";
  let w = i / bits_per_word and b = i mod bits_per_word in
  s.words.(w) <- s.words.(w) lor (1 lsl b)

let remove s i =
  check_index s i "remove";
  let w = i / bits_per_word and b = i mod bits_per_word in
  s.words.(w) <- s.words.(w) land lnot (1 lsl b)

let mem s i =
  if i < 0 || i >= s.capacity then false
  else
    let w = i / bits_per_word and b = i mod bits_per_word in
    s.words.(w) land (1 lsl b) <> 0

let clear s = Array.fill s.words 0 (Array.length s.words) 0

(* Popcount via a 16-bit lookup table: four table probes per 63-bit word.
   [lsr] is a logical shift, so words with bit 62 set are handled too. *)
let popcount_table =
  let t = Bytes.create 65536 in
  for i = 0 to 65535 do
    let rec count x acc = if x = 0 then acc else count (x lsr 1) (acc + (x land 1)) in
    Bytes.unsafe_set t i (Char.chr (count i 0))
  done;
  t

let popcount x =
  let probe v = Char.code (Bytes.unsafe_get popcount_table (v land 0xffff)) in
  probe x + probe (x lsr 16) + probe (x lsr 32) + probe (x lsr 48)

let cardinal s =
  let n = ref 0 in
  for w = 0 to Array.length s.words - 1 do
    n := !n + popcount s.words.(w)
  done;
  !n

let is_empty s =
  let rec loop w = w >= Array.length s.words || (s.words.(w) = 0 && loop (w + 1)) in
  loop 0

let check_compat a b op =
  if a.capacity <> b.capacity then
    invalid_arg
      (Printf.sprintf "Bitset.%s: capacities differ (%d vs %d)" op a.capacity b.capacity)

let binop op name a b =
  check_compat a b name;
  let words = Array.make (Array.length a.words) 0 in
  for w = 0 to Array.length words - 1 do
    words.(w) <- op a.words.(w) b.words.(w)
  done;
  { capacity = a.capacity; words }

let inter a b = binop ( land ) "inter" a b
let union a b = binop ( lor ) "union" a b
let diff a b = binop (fun x y -> x land lnot y) "diff" a b

let inter_cardinal a b =
  check_compat a b "inter_cardinal";
  let n = ref 0 in
  for w = 0 to Array.length a.words - 1 do
    n := !n + popcount (a.words.(w) land b.words.(w))
  done;
  !n

let equal a b =
  check_compat a b "equal";
  let rec loop w =
    w >= Array.length a.words || (a.words.(w) = b.words.(w) && loop (w + 1))
  in
  loop 0

let subset a b =
  check_compat a b "subset";
  let rec loop w =
    w >= Array.length a.words || (a.words.(w) land lnot b.words.(w) = 0 && loop (w + 1))
  in
  loop 0

let disjoint a b =
  check_compat a b "disjoint";
  let rec loop w =
    w >= Array.length a.words || (a.words.(w) land b.words.(w) = 0 && loop (w + 1))
  in
  loop 0

let iter f s =
  for w = 0 to Array.length s.words - 1 do
    let word = ref s.words.(w) in
    while !word <> 0 do
      let b = !word land - !word in
      (* index of lowest set bit: count trailing zeros via popcount of b-1 *)
      let i = (w * bits_per_word) + popcount (b - 1) in
      f i;
      word := !word land lnot b
    done
  done

let fold f s init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) s;
  !acc

let elements s = List.rev (fold (fun i acc -> i :: acc) s [])

let of_list capacity xs =
  let s = create capacity in
  List.iter (add s) xs;
  s

let choose s =
  let rec loop w =
    if w >= Array.length s.words then raise Not_found
    else if s.words.(w) <> 0 then
      let b = s.words.(w) land -s.words.(w) in
      (w * bits_per_word) + popcount (b - 1)
    else loop (w + 1)
  in
  loop 0

let pp fmt s =
  Format.fprintf fmt "{";
  let first = ref true in
  iter
    (fun i ->
      if !first then first := false else Format.fprintf fmt ", ";
      Format.fprintf fmt "%d" i)
    s;
  Format.fprintf fmt "}"
