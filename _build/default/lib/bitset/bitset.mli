(** Dense bit-vector sets over the integer universe [0, capacity).

    The analytical cache model manipulates thousands of sets of
    unique-reference identifiers; the paper (section 2.4) motivates a
    bit-vector representation so that intersection and cardinality run in
    O(capacity / word_size). All sets created with the same [capacity] are
    compatible; mixing capacities in binary operations raises
    [Invalid_argument]. *)

type t

(** [create capacity] is the empty set over universe [0, capacity). *)
val create : int -> t

(** [capacity s] is the universe size [s] was created with. *)
val capacity : t -> int

(** [copy s] is an independent copy of [s]. *)
val copy : t -> t

(** [add s i] inserts [i]. Raises [Invalid_argument] if [i] is out of
    range. *)
val add : t -> int -> unit

(** [remove s i] deletes [i] if present. *)
val remove : t -> int -> unit

(** [mem s i] tests membership; out-of-range indices are never members. *)
val mem : t -> int -> bool

(** [clear s] removes every element. *)
val clear : t -> unit

(** [cardinal s] is the number of elements, computed by population count. *)
val cardinal : t -> int

(** [is_empty s] is [cardinal s = 0] but short-circuits. *)
val is_empty : t -> bool

(** [inter a b] is a fresh set holding the intersection. *)
val inter : t -> t -> t

(** [inter_cardinal a b] is [cardinal (inter a b)] without allocating the
    intermediate set — the inner loop of the postlude algorithm. *)
val inter_cardinal : t -> t -> int

(** [union a b] is a fresh set holding the union. *)
val union : t -> t -> t

(** [diff a b] is a fresh set holding [a \ b]. *)
val diff : t -> t -> t

(** [equal a b] tests element-wise equality. *)
val equal : t -> t -> bool

(** [subset a b] tests whether every element of [a] is in [b]. *)
val subset : t -> t -> bool

(** [disjoint a b] tests whether the intersection is empty. *)
val disjoint : t -> t -> bool

(** [iter f s] applies [f] to each element in increasing order. *)
val iter : (int -> unit) -> t -> unit

(** [fold f s init] folds over elements in increasing order. *)
val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a

(** [elements s] lists the elements in increasing order. *)
val elements : t -> int list

(** [of_list capacity xs] builds a set from a list of elements. *)
val of_list : int -> int list -> t

(** [choose s] is the smallest element. Raises [Not_found] when empty. *)
val choose : t -> int

(** [pp] formats a set as [{e1, e2, ...}]. *)
val pp : Format.formatter -> t -> unit
