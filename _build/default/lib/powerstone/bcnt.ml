open Isa
open Asm

(* Memory map: nibble popcount table at 0 (16 words), data at 16
   (2048 * scale words). Checksum: total bit count in v0. *)

let data_base = 16

let nibble_table =
  Array.init 16 (fun v ->
      let rec count x acc = if x = 0 then acc else count (x lsr 1) (acc + (x land 1)) in
      count v 0)

(* The eight nibble lookups are fully unrolled, as the original compiled
   kernel's inner loop was. *)
let nibble_step _k =
  [ i (Andi (t4, t2, 0xF)); i (Lw (t4, t4, 0)); i (Add (v0, v0, t4)); i (Srl (t2, t2, 4)) ]

let make ~scale =
  if scale < 1 then invalid_arg "Bcnt.make: scale must be >= 1";
  let data_words = 2048 * scale in
  let data = Data_gen.lcg_stream ~seed:0x5eed data_words in
  let program =
    concat
      [
        li t0 data_base;
        li t1 (data_base + data_words);
        [
          move v0 zero;
          label "word_loop";
          i (Bge (t0, t1, "done"));
          i (Lw (t2, t0, 0));
        ];
        concat (List.init 8 nibble_step);
        [
          i (Addi (t0, t0, 1));
          i (J "word_loop");
          label "done";
          i Halt;
        ];
      ]
  in
  let reference () =
    let total = ref 0 in
    Array.iter
      (fun w ->
        let u = W32.u32 w in
        let rec count x acc = if x = 0 then acc else count (x lsr 1) (acc + (x land 1)) in
        total := W32.add !total (count u 0))
      data;
    !total
  in
  {
    Workload.name = (if scale = 1 then "bcnt" else Printf.sprintf "bcnt@%d" scale);
    description = Printf.sprintf "bit counting over %d words via nibble lookup table" data_words;
    program;
    init = [ (0, nibble_table); (data_base, data) ];
    mem_words = max 4096 (2 * (data_base + data_words));
    max_steps = 2_000_000 * scale;
    reference;
  }

let benchmark = make ~scale:1
