type t = {
  name : string;
  description : string;
  program : Asm.item list;
  init : (int * int array) list;
  mem_words : int;
  max_steps : int;
  reference : unit -> int;
}

let run b =
  Machine.run ~mem_words:b.mem_words ~init:b.init ~max_steps:b.max_steps
    (Asm.assemble b.program)

let checksum b = Machine.return_value (run b)

let traces b =
  let itrace = Trace.create ~capacity:4096 () in
  let dtrace = Trace.create ~capacity:4096 () in
  let _ =
    Machine.run ~mem_words:b.mem_words ~init:b.init ~max_steps:b.max_steps ~itrace
      ~dtrace
      (Asm.assemble b.program)
  in
  (itrace, dtrace)

let instruction_trace b = fst (traces b)

let data_trace b = snd (traces b)
