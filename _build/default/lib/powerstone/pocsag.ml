open Isa
open Asm

(* Memory map: received 32-bit codewords at 0 (512 * scale), decoded-
   status array after them (message bits for accepted codewords, -1 for
   rejects), call stack growing down from the top of memory. A codeword
   is (bch31 << 1) | even_parity with bch31 = (data21 << 10) | remainder
   of data*x^10 mod g(x), g = x^10+x^9+x^8+x^6+x^5+x^3+1 (0x769 including
   the leading term). Parity and syndrome are subroutines with real stack
   frames. The kernel re-reads the status array for the final checksum:
   v0 = v0 * 17 + status per codeword. *)

let generator = 0x769

let make_codeword data21 =
  let dividend = data21 lsl 10 in
  let rem = ref dividend in
  for bit = 30 downto 10 do
    if !rem land (1 lsl bit) <> 0 then rem := !rem lxor (generator lsl (bit - 10))
  done;
  let bch31 = dividend lor !rem in
  let parity =
    let rec count x acc = if x = 0 then acc else count (x lsr 1) (acc + (x land 1)) in
    count bch31 0 land 1
  in
  (bch31 lsl 1) lor parity

let make ~scale =
  if scale < 1 then invalid_arg "Pocsag.make: scale must be >= 1";
  let num_codewords = 512 * scale in
  let status_base = num_codewords + 64 in
  let stack_top = status_base + num_codewords + 256 in
  let codewords =
    let data = Data_gen.uniform ~seed:0x90c5 ~bound:(1 lsl 21) num_codewords in
    let noise = Data_gen.uniform ~seed:0x6015 ~bound:256 num_codewords in
    Array.init num_codewords (fun idx ->
        let cw = make_codeword data.(idx) in
        let cw = if noise.(idx) < 32 then cw lxor (1 lsl (noise.(idx) land 31)) else cw in
        W32.sign32 cw)
  in
  let program =
    concat
      [
        li sp stack_top;
        li s6 generator;
        li s1 num_codewords;
        li s7 status_base;
        [
          move s0 zero;
          label "codeword";
          i (Bge (s0, s1, "readback"));
          i (Lw (s2, s0, 0));
          move a0 s2;
          i (Jal "parity");
          move s3 v1;
          move a0 s2;
          i (Jal "syndrome");
          comment "accept iff syndrome = 0 and parity even";
          i (Bne (v1, zero, "reject"));
          i (Bne (s3, zero, "reject"));
          i (Srl (t9, s2, 11));
          i (J "record");
          label "reject";
          i (Addi (t9, zero, -1));
          label "record";
          i (Add (t8, s0, s7));
          i (Sw (t9, t8, 0));
          i (Addi (s0, s0, 1));
          i (J "codeword");
          label "readback";
          move v0 zero;
          move t0 zero;
          label "sum_status";
          i (Bge (t0, s1, "done"));
          i (Add (t2, t0, s7));
          i (Lw (t2, t2, 0));
          i (Addi (t3, zero, 17));
          i (Mul (v0, v0, t3));
          i (Add (v0, v0, t2));
          i (Addi (t0, t0, 1));
          i (J "sum_status");
          label "done";
          i Halt;
          comment "-- int parity(a0): population count of all 32 bits, mod 2";
          label "parity";
          i (Addi (sp, sp, -2));
          i (Sw (ra, sp, 0));
          i (Sw (s4, sp, 1));
          move s4 a0;
          move v1 zero;
          label "parity_loop";
          i (Beq (s4, zero, "parity_done"));
          i (Andi (t2, s4, 1));
          i (Add (v1, v1, t2));
          i (Srl (s4, s4, 1));
          i (J "parity_loop");
          label "parity_done";
          i (Andi (v1, v1, 1));
          i (Lw (ra, sp, 0));
          i (Lw (s4, sp, 1));
          i (Addi (sp, sp, 2));
          i (Jr ra);
          comment "-- int syndrome(a0): remainder of the 31-bit field mod g";
          label "syndrome";
          i (Addi (sp, sp, -3));
          i (Sw (ra, sp, 0));
          i (Sw (s4, sp, 1));
          i (Sw (s5, sp, 2));
          i (Srl (v1, a0, 1));
          i (Addi (s4, zero, 30));
          label "divide";
          i (Addi (s5, zero, 10));
          i (Blt (s4, s5, "divide_done"));
          i (Addi (t6, zero, 1));
          i (Sllv (t6, t6, s4));
          i (And (t7, v1, t6));
          i (Beq (t7, zero, "no_xor"));
          i (Addi (t8, s4, -10));
          i (Sllv (t8, s6, t8));
          i (Xor (v1, v1, t8));
          label "no_xor";
          i (Addi (s4, s4, -1));
          i (J "divide");
          label "divide_done";
          i (Lw (ra, sp, 0));
          i (Lw (s4, sp, 1));
          i (Lw (s5, sp, 2));
          i (Addi (sp, sp, 3));
          i (Jr ra);
        ];
      ]
  in
  let reference () =
    let status = Array.make num_codewords 0 in
    Array.iteri
      (fun idx cw ->
        let parity =
          let rec count x acc = if x = 0 then acc else count (x lsr 1) (acc + (x land 1)) in
          count (W32.u32 cw) 0 land 1
        in
        let syndrome = ref (W32.srl cw 1) in
        for bit = 30 downto 10 do
          if !syndrome land (1 lsl bit) <> 0 then
            syndrome := !syndrome lxor (generator lsl (bit - 10))
        done;
        status.(idx) <- (if !syndrome = 0 && parity = 0 then W32.srl cw 11 else -1))
      codewords;
    Array.fold_left (fun acc st -> W32.add (W32.mul acc 17) st) 0 status
  in
  {
    Workload.name = (if scale = 1 then "pocsag" else Printf.sprintf "pocsag@%d" scale);
    description =
      Printf.sprintf "BCH(31,21) syndrome + parity subroutines over %d pager codewords"
        num_codewords;
    program;
    init = [ (0, codewords) ];
    mem_words = max 2048 (2 * stack_top);
    max_steps = 5_000_000 * scale;
    reference;
  }

let benchmark = make ~scale:1
