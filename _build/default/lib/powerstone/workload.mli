(** A benchmark: a VM program with its input data and a native OCaml
    reference implementation computing the same checksum.

    The checksum convention is the final value of register [v0]; every
    benchmark's VM run is validated against [reference ()] in the test
    suite, which in turn validates the assembly implementations. *)

type t = {
  name : string;
  description : string;
  program : Asm.item list;
  init : (int * int array) list;  (** data-memory segments *)
  mem_words : int;
  max_steps : int;
  reference : unit -> int;  (** the expected checksum *)
}

(** [run benchmark] executes without tracing. *)
val run : t -> Machine.result

(** [checksum benchmark] is the VM-computed checksum. *)
val checksum : t -> int

(** [traces benchmark] executes once, returning the instruction trace and
    the data trace. *)
val traces : t -> Trace.t * Trace.t

(** [instruction_trace b] and [data_trace b] are the two halves of
    {!traces}. *)
val instruction_trace : t -> Trace.t

val data_trace : t -> Trace.t
