open Isa
open Asm

(* Memory map: packed nibble stream at 0, run-length decode table after
   it (16 entries: n -> n for 0..14, 15 -> 255 meaning "add 15 and
   continue"), scanline pixel buffer after the table. Runs alternate
   colour starting white (0) each line; every decoded pixel is stored to
   the line buffer. Checksum: v0 accumulates colour xor column per pixel
   plus a line marker. *)

let width = 400

let decode_table = Array.init 16 (fun n -> if n = 15 then 255 else n)

let make ~scale =
  if scale < 1 then invalid_arg "G3fax.make: scale must be >= 1";
  let lines = 24 * scale in
  let stream, nibble_count = Data_gen.runs_bitstream ~seed:0xfa2 ~lines ~width in
  let table_base = Array.length stream + 16 in
  let line_base = table_base + 16 in
  let program =
    concat
      [
        [
          comment "s0 = nibble index, s1 = run accumulator, s2 = colour";
          move s0 zero;
          move s1 zero;
          move s2 zero;
          comment "s3 = column within line, v0 = checksum";
          move s3 zero;
          move v0 zero;
        ];
        li s4 nibble_count;
        li s5 table_base;
        li s6 line_base;
        [
          label "next_nibble";
          i (Bge (s0, s4, "done"));
          comment "fetch nibble t3 = (stream[idx>>3] >>> (4*(idx&7))) & 15";
          i (Srl (t0, s0, 3));
          i (Lw (t1, t0, 0));
          i (Andi (t2, s0, 7));
          i (Sll (t2, t2, 2));
          i (Srlv (t1, t1, t2));
          i (Andi (t3, t1, 0xF));
          i (Add (t4, t3, s5));
          i (Lw (t4, t4, 0));
          i (Addi (s0, s0, 1));
          i (Addi (t5, zero, 255));
          i (Bne (t4, t5, "run_complete"));
          i (Addi (s1, s1, 15));
          i (J "next_nibble");
          label "run_complete";
          i (Add (s1, s1, t4));
          comment "paint s1 pixels of colour s2 at column s3";
          move t6 zero;
          label "paint";
          i (Bge (t6, s1, "run_done"));
          i (Add (t7, s3, t6));
          i (Add (t8, t7, s6));
          i (Sw (s2, t8, 0));
          i (Xor (t9, s2, t7));
          i (Add (v0, v0, t9));
          i (Addi (t6, t6, 1));
          i (J "paint");
          label "run_done";
          i (Add (s3, s3, s1));
          move s1 zero;
          i (Xori (s2, s2, 1));
          i (Addi (t0, zero, width));
          i (Blt (s3, t0, "next_nibble"));
          comment "end of line: reset column and colour, mark the line";
          move s3 zero;
          move s2 zero;
          i (Addi (v0, v0, 7));
          i (J "next_nibble");
          label "done";
          i Halt;
        ];
      ]
  in
  let reference () =
    let checksum = ref 0 in
    let column = ref 0 in
    let colour = ref 0 in
    let run = ref 0 in
    for idx = 0 to nibble_count - 1 do
      let nibble = (stream.(idx / 8) lsr (4 * (idx mod 8))) land 0xF in
      let entry = decode_table.(nibble) in
      if entry = 255 then run := !run + 15
      else begin
        run := !run + entry;
        for p = 0 to !run - 1 do
          checksum := W32.add !checksum (!colour lxor (!column + p))
        done;
        column := !column + !run;
        run := 0;
        colour := !colour lxor 1;
        if !column >= width then begin
          column := 0;
          colour := 0;
          checksum := W32.add !checksum 7
        end
      end
    done;
    !checksum
  in
  {
    Workload.name = (if scale = 1 then "g3fax" else Printf.sprintf "g3fax@%d" scale);
    description = Printf.sprintf "fax run-length decoder: %d scanlines of %d pixels" lines width;
    program;
    init = [ (0, stream); (table_base, decode_table) ];
    mem_words = max 8192 (2 * (line_base + width));
    max_steps = 5_000_000 * scale;
    reference;
  }

let benchmark = make ~scale:1
