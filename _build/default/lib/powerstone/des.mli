(** PowerStone [des]: a 16-round table-driven Feistel block cipher.

    DESIGN.md substitution note: the original benchmark is DES proper;
    this kernel keeps the DES structure (16 Feistel rounds, 8 S-box
    lookups per round through 512 words of tables, per-round subkeys)
    with synthetic S-box contents and a simplified key schedule, so the
    memory-access pattern — the only thing the cache study consumes — is
    preserved. *)

val benchmark : Workload.t

(** [make ~scale] builds a scaled variant: input sizes (and the trace
    length) grow roughly linearly with [scale]. [benchmark = make
    ~scale:1]. Raises [Invalid_argument] on [scale < 1]. *)
val make : scale:int -> Workload.t
