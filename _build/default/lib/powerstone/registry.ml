let all =
  [
    Adpcm.benchmark;
    Bcnt.benchmark;
    Blit.benchmark;
    Compress.benchmark;
    Crc.benchmark;
    Des.benchmark;
    Engine.benchmark;
    Fir.benchmark;
    G3fax.benchmark;
    Pocsag.benchmark;
    Qurt.benchmark;
    Ucbqsort.benchmark;
  ]

let find name =
  match List.find_opt (fun b -> b.Workload.name = name) all with
  | Some b -> b
  | None -> raise Not_found

let names = List.map (fun b -> b.Workload.name) all

let scaled factor =
  [
    Adpcm.make ~scale:factor;
    Bcnt.make ~scale:factor;
    Blit.make ~scale:factor;
    Compress.make ~scale:factor;
    Crc.make ~scale:factor;
    Des.make ~scale:factor;
    Engine.make ~scale:factor;
    Fir.make ~scale:factor;
    G3fax.make ~scale:factor;
    Pocsag.make ~scale:factor;
    Qurt.make ~scale:factor;
    Ucbqsort.make ~scale:factor;
  ]
