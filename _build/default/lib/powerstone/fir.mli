(** PowerStone [fir]: 32-tap integer FIR filter over 512 samples. *)

val benchmark : Workload.t

(** [make ~scale] builds a scaled variant: input sizes (and the trace
    length) grow roughly linearly with [scale]. [benchmark = make
    ~scale:1]. Raises [Invalid_argument] on [scale < 1]. *)
val make : scale:int -> Workload.t
