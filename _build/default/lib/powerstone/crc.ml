open Isa
open Asm

(* Memory map: CRC table at 0 (256 words, written by the program itself),
   input bytes (one per word) at 256 (4096 * scale). Checksum: the CRC in
   v0. *)

let data_base = 256

let polynomial = 0xEDB88320

let make ~scale =
  if scale < 1 then invalid_arg "Crc.make: scale must be >= 1";
  let data_bytes = 4096 * scale in
  let data = Data_gen.uniform ~seed:0xc4c ~bound:256 data_bytes in
  let program =
    concat
      [
        [
          comment "phase 1: build the reflected CRC-32 table in place";
          move t0 zero;
          i (Addi (t1, zero, 256));
        ];
        li t6 polynomial;
        [
          label "build";
          i (Bge (t0, t1, "digest_setup"));
          move t2 t0;
        ];
        (* eight unrolled bit steps of the table construction *)
        concat
          (List.init 8 (fun bit ->
               let skip = Printf.sprintf "no_poly_%d" bit in
               [
                 i (Andi (t4, t2, 1));
                 i (Srl (t2, t2, 1));
                 i (Beq (t4, zero, skip));
                 i (Xor (t2, t2, t6));
                 label skip;
               ]));
        [
          i (Sw (t2, t0, 0));
          i (Addi (t0, t0, 1));
          i (J "build");
          label "digest_setup";
        ];
        li t0 data_base;
        li t1 (data_base + data_bytes);
        [
          i (Addi (v0, zero, -1));
          label "digest";
          i (Bge (t0, t1, "final"));
          i (Lw (t2, t0, 0));
          i (Xor (t3, v0, t2));
          i (Andi (t3, t3, 0xFF));
          i (Lw (t3, t3, 0));
          i (Srl (t4, v0, 8));
          i (Xor (v0, t4, t3));
          i (Addi (t0, t0, 1));
          i (J "digest");
          label "final";
          i (Addi (t5, zero, -1));
          i (Xor (v0, v0, t5));
          i Halt;
        ];
      ]
  in
  let reference () =
    let table = Array.make 256 0 in
    for b = 0 to 255 do
      let r = ref b in
      for _bit = 1 to 8 do
        let lsb = !r land 1 in
        r := W32.srl !r 1;
        if lsb = 1 then r := W32.sign32 (!r lxor W32.sign32 polynomial)
      done;
      table.(b) <- !r
    done;
    let crc = ref (-1) in
    Array.iter
      (fun byte ->
        let idx = (!crc lxor byte) land 0xFF in
        crc := W32.sign32 (W32.srl !crc 8 lxor table.(idx)))
      data;
    W32.sign32 (!crc lxor -1)
  in
  {
    Workload.name = (if scale = 1 then "crc" else Printf.sprintf "crc@%d" scale);
    description =
      Printf.sprintf "table-driven CRC-32 over %d bytes, table built in-kernel" data_bytes;
    program;
    init = [ (data_base, data) ];
    mem_words = max 8192 (2 * (data_base + data_bytes));
    max_steps = 2_000_000 * scale;
    reference;
  }

let benchmark = make ~scale:1
