open Isa
open Asm

(* Memory map: input bytes at 0 (4096 * scale), dictionary keys after the
   input (4096 words, initialised to -1 = empty), dictionary values after
   the keys. Dictionary keys are (prefix_code << 8) | symbol; hashing is
   xor-folding; codes 0..255 are implicit single symbols and new codes
   start at 256. Checksum: v0 = v0 * 31 + code per emitted code. *)

let table_size = 4096

let first_code = 256

let max_code = table_size - 1

let make ~scale =
  if scale < 1 then invalid_arg "Compress.make: scale must be >= 1";
  let input_len = 4096 * scale in
  let keys_base = input_len in
  let vals_base = keys_base + table_size in
  let input = Data_gen.text_like ~seed:0xc0de input_len in
  let empty_keys = Array.make table_size (-1) in
  let program =
    concat
      [
        [
          comment "s0 = w (current prefix code), s1 = input index, s2 = next_code";
          i (Lw (s0, zero, 0));
          i (Addi (s1, zero, 1));
          i (Addi (s2, zero, first_code));
        ];
        li s3 input_len;
        li s5 keys_base;
        li s6 vals_base;
        [
          move v0 zero;
          label "next_symbol";
          i (Bge (s1, s3, "flush"));
          i (Lw (s4, s1, 0));
          comment "t0 = key = (w << 8) | c ; t1 = probe slot";
          i (Sll (t0, s0, 8));
          i (Or (t0, t0, s4));
          i (Srl (t1, t0, 6));
          i (Xor (t1, t0, t1));
          i (Srl (t2, t0, 12));
          i (Xor (t1, t1, t2));
          i (Andi (t1, t1, table_size - 1));
          label "probe";
          i (Add (t3, t1, s5));
          i (Lw (t4, t3, 0));
          i (Beq (t4, t0, "hit"));
          i (Addi (t5, zero, -1));
          i (Beq (t4, t5, "miss"));
          i (Addi (t1, t1, 1));
          i (Andi (t1, t1, table_size - 1));
          i (J "probe");
          label "hit";
          i (Add (t6, t1, s6));
          i (Lw (s0, t6, 0));
          i (Addi (s1, s1, 1));
          i (J "next_symbol");
          label "miss";
          comment "emit w, insert (key -> next_code) if the dictionary has room";
          i (Addi (t7, zero, 31));
          i (Mul (v0, v0, t7));
          i (Add (v0, v0, s0));
          i (Addi (t8, zero, max_code));
          i (Blt (t8, s2, "skip_insert"));
          i (Sw (t0, t3, 0));
          i (Add (t6, t1, s6));
          i (Sw (s2, t6, 0));
          i (Addi (s2, s2, 1));
          label "skip_insert";
          move s0 s4;
          i (Addi (s1, s1, 1));
          i (J "next_symbol");
          label "flush";
          i (Addi (t7, zero, 31));
          i (Mul (v0, v0, t7));
          i (Add (v0, v0, s0));
          i Halt;
        ];
      ]
  in
  let hash_of_key key = (key lxor (key lsr 6) lxor (key lsr 12)) land (table_size - 1) in
  let reference () =
    let keys = Array.make table_size (-1) in
    let vals = Array.make table_size 0 in
    let next_code = ref first_code in
    let w = ref input.(0) in
    let checksum = ref 0 in
    let emit code = checksum := W32.add (W32.mul !checksum 31) code in
    for idx = 1 to input_len - 1 do
      let c = input.(idx) in
      let key = (!w lsl 8) lor c in
      let rec probe slot =
        if keys.(slot) = key then `Hit vals.(slot)
        else if keys.(slot) = -1 then `Miss slot
        else probe ((slot + 1) land (table_size - 1))
      in
      match probe (hash_of_key key) with
      | `Hit code -> w := code
      | `Miss slot ->
        emit !w;
        if !next_code <= max_code then begin
          keys.(slot) <- key;
          vals.(slot) <- !next_code;
          incr next_code
        end;
        w := c
    done;
    emit !w;
    !checksum
  in
  {
    Workload.name = (if scale = 1 then "compress" else Printf.sprintf "compress@%d" scale);
    description =
      Printf.sprintf "LZW with open-addressing hash dictionary over %d text bytes" input_len;
    program;
    init = [ (0, input); (keys_base, empty_keys) ];
    mem_words = max 16384 (2 * (vals_base + table_size));
    max_steps = 5_000_000 * scale;
    reference;
  }

let benchmark = make ~scale:1
