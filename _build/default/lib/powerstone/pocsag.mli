(** PowerStone [pocsag]: pager-protocol codeword processing — BCH(31,21)
    syndrome computation and parity check over a batch of received
    codewords, a fraction of which carry injected bit errors. *)

val benchmark : Workload.t

(** [make ~scale] builds a scaled variant: input sizes (and the trace
    length) grow roughly linearly with [scale]. [benchmark = make
    ~scale:1]. Raises [Invalid_argument] on [scale < 1]. *)
val make : scale:int -> Workload.t
