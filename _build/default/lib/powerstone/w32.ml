let sign32 x =
  let m = x land 0xFFFFFFFF in
  if m >= 0x80000000 then m - 0x100000000 else m

let u32 x = x land 0xFFFFFFFF

let add a b = sign32 (a + b)

let sub a b = sign32 (a - b)

let mul a b = sign32 (a * b)

let srl x n = u32 x lsr (n land 31)

let sra x n = sign32 (sign32 x asr (n land 31))

let sll x n = sign32 (x lsl (n land 31))
