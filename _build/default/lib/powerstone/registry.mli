(** The 12 PowerStone-style benchmarks of the paper's Tables 5-32. *)

(** [all] lists the benchmarks in the paper's (alphabetical) order:
    adpcm, bcnt, blit, compress, crc, des, engine, fir, g3fax, pocsag,
    qurt, ucbqsort. *)
val all : Workload.t list

(** [find name] looks a benchmark up by name. Raises [Not_found]. *)
val find : string -> Workload.t

(** [names] is the list of benchmark names, in order. *)
val names : string list

(** [scaled factor] is the suite with every kernel's input sizes grown by
    [factor] (names suffixed ["@factor"] for [factor > 1]); used for the
    run-time scaling studies. *)
val scaled : int -> Workload.t list
