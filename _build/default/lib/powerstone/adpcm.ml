open Isa
open Asm

(* Memory map: step-size table at 0 (89), index-adjust table at 96 (16),
   input samples at 128 (800 * scale), output codes just after. Checksum:
   v0 = v0 * 31 + code per sample, plus the final predictor. *)

let step_table =
  [|
    7; 8; 9; 10; 11; 12; 13; 14; 16; 17; 19; 21; 23; 25; 28; 31; 34; 37; 41; 45;
    50; 55; 60; 66; 73; 80; 88; 97; 107; 118; 130; 143; 157; 173; 190; 209; 230;
    253; 279; 307; 337; 371; 408; 449; 494; 544; 598; 658; 724; 796; 876; 963;
    1060; 1166; 1282; 1411; 1552; 1707; 1878; 2066; 2272; 2499; 2749; 3024;
    3327; 3660; 4026; 4428; 4871; 5358; 5894; 6484; 7132; 7845; 8630; 9493;
    10442; 11487; 12635; 13899; 15289; 16818; 18500; 20350; 22385; 24623;
    27086; 29794; 32767;
  |]

let index_table = [| -1; -1; -1; -1; 2; 4; 6; 8; -1; -1; -1; -1; 2; 4; 6; 8 |]

let index_base = 96

let sample_base = 128

let make ~scale =
  if scale < 1 then invalid_arg "Adpcm.make: scale must be >= 1";
  let num_samples = 800 * scale in
  let output_base = sample_base + num_samples in
  let samples = Data_gen.waveform ~seed:0xada num_samples in
  let program =
      concat
        [
          li s3 num_samples;
          li s4 output_base;
          [
            move s0 zero;
            comment "s0 = predicted value, s1 = step index, s2 = sample counter";
            move s1 zero;
            move s2 zero;
            move v0 zero;
            label "sample";
            i (Bge (s2, s3, "finish"));
            i (Addi (t0, s2, sample_base));
            i (Lw (t0, t0, 0));
            comment "t1 = |delta|, t2 = sign nibble";
            i (Sub (t1, t0, s0));
            move t2 zero;
            i (Bge (t1, zero, "positive"));
            i (Addi (t2, zero, 8));
            i (Sub (t1, zero, t1));
            label "positive";
            i (Lw (t3, s1, 0));
            comment "t3 = step, t4 = vpdiff, t5 = code";
            i (Sra (t4, t3, 3));
            move t5 zero;
            i (Blt (t1, t3, "bit2"));
            i (Ori (t5, t5, 4));
            i (Sub (t1, t1, t3));
            i (Add (t4, t4, t3));
            label "bit2";
            i (Sra (t3, t3, 1));
            i (Blt (t1, t3, "bit1"));
            i (Ori (t5, t5, 2));
            i (Sub (t1, t1, t3));
            i (Add (t4, t4, t3));
            label "bit1";
            i (Sra (t3, t3, 1));
            i (Blt (t1, t3, "apply"));
            i (Ori (t5, t5, 1));
            i (Add (t4, t4, t3));
            label "apply";
            i (Beq (t2, zero, "add_diff"));
            i (Sub (s0, s0, t4));
            i (J "clamp");
            label "add_diff";
            i (Add (s0, s0, t4));
            label "clamp";
            i (Addi (t6, zero, 32767));
            i (Bge (t6, s0, "clamp_low"));
            move s0 t6;
            label "clamp_low";
            i (Addi (t6, zero, -32768));
            i (Bge (s0, t6, "code_done"));
            move s0 t6;
            label "code_done";
            i (Or (t5, t5, t2));
            comment "step-index update via the adjust table";
            i (Addi (t7, t5, index_base));
            i (Lw (t7, t7, 0));
            i (Add (s1, s1, t7));
            i (Bge (s1, zero, "index_high"));
            move s1 zero;
            label "index_high";
            i (Addi (t6, zero, 88));
            i (Bge (t6, s1, "emit"));
            move s1 t6;
            label "emit";
            i (Add (t8, s2, s4));
            i (Sw (t5, t8, 0));
            i (Addi (t9, zero, 31));
            i (Mul (v0, v0, t9));
            i (Add (v0, v0, t5));
            i (Addi (s2, s2, 1));
            i (J "sample");
            label "finish";
            i (Add (v0, v0, s0));
            i Halt;
          ];
        ]
  in
  let reference () =
    let valpred = ref 0 in
    let index = ref 0 in
    let checksum = ref 0 in
    Array.iter
      (fun sample ->
        let delta = sample - !valpred in
        let sign = if delta < 0 then 8 else 0 in
        let delta = ref (abs delta) in
        let step = ref step_table.(!index) in
        let vpdiff = ref (!step asr 3) in
        let code = ref 0 in
        if !delta >= !step then begin
          code := !code lor 4;
          delta := !delta - !step;
          vpdiff := !vpdiff + !step
        end;
        step := !step asr 1;
        if !delta >= !step then begin
          code := !code lor 2;
          delta := !delta - !step;
          vpdiff := !vpdiff + !step
        end;
        step := !step asr 1;
        if !delta >= !step then begin
          code := !code lor 1;
          vpdiff := !vpdiff + !step
        end;
        valpred := (if sign = 8 then !valpred - !vpdiff else !valpred + !vpdiff);
        if !valpred > 32767 then valpred := 32767;
        if !valpred < -32768 then valpred := -32768;
        let code = !code lor sign in
        index := !index + index_table.(code);
        if !index < 0 then index := 0;
        if !index > 88 then index := 88;
        checksum := W32.add (W32.mul !checksum 31) code)
      samples;
    W32.add !checksum !valpred
  in

  {
    Workload.name = (if scale = 1 then "adpcm" else Printf.sprintf "adpcm@%d" scale);
    description = Printf.sprintf "IMA ADPCM encoder over %d waveform samples" num_samples;
    program;
    init = [ (0, step_table); (index_base, index_table); (sample_base, samples) ];
    mem_words = max 2048 (2 * (output_base + num_samples));
    max_steps = 2_000_000 * scale;
    reference;
  }

let benchmark = make ~scale:1
