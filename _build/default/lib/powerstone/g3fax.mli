(** PowerStone [g3fax]: group-3 fax scanline decoder — a nibble
    prefix-code run-length stream (15 = continuation) is expanded through
    a decode table into pixel scanlines. *)

val benchmark : Workload.t

(** [make ~scale] builds a scaled variant: input sizes (and the trace
    length) grow roughly linearly with [scale]. [benchmark = make
    ~scale:1]. Raises [Invalid_argument] on [scale < 1]. *)
val make : scale:int -> Workload.t
