lib/powerstone/w32.ml:
