lib/powerstone/workload.mli: Asm Machine Trace
