lib/powerstone/qurt.mli: Workload
