lib/powerstone/adpcm.ml: Array Asm Data_gen Isa Printf W32 Workload
