lib/powerstone/data_gen.mli:
