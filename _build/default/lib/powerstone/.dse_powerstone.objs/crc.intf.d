lib/powerstone/crc.mli: Workload
