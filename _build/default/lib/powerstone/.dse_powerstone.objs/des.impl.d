lib/powerstone/des.ml: Array Asm Data_gen Isa List Printf W32 Workload
