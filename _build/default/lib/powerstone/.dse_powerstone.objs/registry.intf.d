lib/powerstone/registry.mli: Workload
