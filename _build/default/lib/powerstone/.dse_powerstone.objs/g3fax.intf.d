lib/powerstone/g3fax.mli: Workload
