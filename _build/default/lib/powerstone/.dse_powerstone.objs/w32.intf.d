lib/powerstone/w32.mli:
