lib/powerstone/workload.ml: Asm Machine Trace
