lib/powerstone/blit.mli: Workload
