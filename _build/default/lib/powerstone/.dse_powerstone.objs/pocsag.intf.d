lib/powerstone/pocsag.mli: Workload
