lib/powerstone/des.mli: Workload
