lib/powerstone/compress.mli: Workload
