lib/powerstone/bcnt.mli: Workload
