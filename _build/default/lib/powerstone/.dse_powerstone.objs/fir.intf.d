lib/powerstone/fir.mli: Workload
