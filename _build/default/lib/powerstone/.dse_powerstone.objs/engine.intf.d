lib/powerstone/engine.mli: Workload
