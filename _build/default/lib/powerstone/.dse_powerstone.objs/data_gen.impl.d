lib/powerstone/data_gen.ml: Array Char List String W32
