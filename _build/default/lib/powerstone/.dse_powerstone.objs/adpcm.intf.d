lib/powerstone/adpcm.mli: Workload
