lib/powerstone/g3fax.ml: Array Asm Data_gen Isa Printf W32 Workload
