lib/powerstone/registry.ml: Adpcm Bcnt Blit Compress Crc Des Engine Fir G3fax List Pocsag Qurt Ucbqsort Workload
