lib/powerstone/engine.ml: Array Asm Isa Printf W32 Workload
