lib/powerstone/ucbqsort.mli: Workload
