(** PowerStone [crc]: CRC-32 checksum — the 256-entry table is built by
    the kernel itself, then a 4096-byte buffer is digested through it. *)

val benchmark : Workload.t

(** [make ~scale] builds a scaled variant: input sizes (and the trace
    length) grow roughly linearly with [scale]. [benchmark = make
    ~scale:1]. Raises [Invalid_argument] on [scale < 1]. *)
val make : scale:int -> Workload.t
